package setagreement_test

import (
	"context"
	"fmt"
	"testing"

	sa "setagreement"
)

// Allocation ceilings for a solo (uncontended) proposal on a repeated
// object, enforced by the guard tests below so hot-path regressions fail CI
// rather than silently landing. Measured: 7 allocs for a blocking Propose on
// both backends (the lock-free backend pays one version array per Update,
// the mutex backend one copy per Scan; both pay one boxed tuple per Propose
// and one history append per decision), 12 for ProposeAsync (adding the
// future, the proposal wrapper and engine bookkeeping). The ceilings leave a
// little slack over those measurements; raising them requires justifying the
// regression, not just re-measuring.
const (
	soloProposeAllocCeiling      = 10
	soloProposeAsyncAllocCeiling = 16

	// Per-proposal ceiling for a full SubmitAll round (submit + decide +
	// resolve) over 64 solo arena handles. Measured: 7.25 — the slab
	// amortization leaves roughly the blocking path's own allocations plus
	// a fraction of the per-batch slabs, against 12 for the looped
	// ProposeAsync equivalent.
	batchRoundAllocCeiling = 9
)

// soloProposeAllocs measures steady-state allocations of one solo Propose
// (or ProposeAsync resolved through its future) on a fresh repeated object.
func soloProposeAllocs(t *testing.T, backend sa.MemoryBackend, async bool) float64 {
	t.Helper()
	ctx := context.Background()
	r, err := sa.NewRepeated[int](4, 1, sa.WithMemoryBackend(backend))
	if err != nil {
		t.Fatalf("NewRepeated: %v", err)
	}
	h, err := r.Proc(0)
	if err != nil {
		t.Fatalf("Proc: %v", err)
	}
	propose := func() {
		var err error
		if async {
			_, err = h.ProposeAsync(ctx, 7).Value()
		} else {
			_, err = h.Propose(ctx, 7)
		}
		if err != nil {
			t.Fatalf("propose: %v", err)
		}
	}
	// Warm the handle past one-time costs (engine creation on the async
	// path, lazy wait-plan allocation) so the run measures the steady state.
	for i := 0; i < 5; i++ {
		propose()
	}
	return testing.AllocsPerRun(100, propose)
}

// TestProposeSoloAllocs guards the blocking hot path: a solo Propose must
// stay within the allocation ceiling on every backend.
func TestProposeSoloAllocs(t *testing.T) {
	for _, be := range []sa.MemoryBackend{sa.BackendLockFree, sa.BackendLocked} {
		t.Run(fmt.Sprint(be), func(t *testing.T) {
			if n := soloProposeAllocs(t, be, false); n > soloProposeAllocCeiling {
				t.Errorf("solo Propose allocates %.0f/op on %v, ceiling %d",
					n, be, soloProposeAllocCeiling)
			}
		})
	}
}

// TestProposeAsyncSoloAllocs guards the engine-driven hot path likewise.
func TestProposeAsyncSoloAllocs(t *testing.T) {
	for _, be := range []sa.MemoryBackend{sa.BackendLockFree, sa.BackendLocked} {
		t.Run(fmt.Sprint(be), func(t *testing.T) {
			if n := soloProposeAllocs(t, be, true); n > soloProposeAsyncAllocCeiling {
				t.Errorf("solo ProposeAsync allocates %.0f/op on %v, ceiling %d",
					n, be, soloProposeAsyncAllocCeiling)
			}
		})
	}
}

// TestSubmitBatchAllocs guards the batch hot path: one SubmitAll round
// over 64 solo arena handles — submission through decision through future
// resolution — must stay under the per-proposal ceiling. The looped
// ProposeAsync path allocates ~12 per proposal; the batch path's slabs
// must keep it well below that.
func TestSubmitBatchAllocs(t *testing.T) {
	ctx := context.Background()
	const size = 64
	ar, err := sa.NewArena[int](4, 1)
	if err != nil {
		t.Fatalf("NewArena: %v", err)
	}
	handles := make([]*sa.Handle[int], size)
	for i := range handles {
		h, err := ar.Object(fmt.Sprintf("alloc-%d", i)).Proc(0)
		if err != nil {
			t.Fatalf("Proc: %v", err)
		}
		handles[i] = h
	}
	vals := make([]int, size)
	round := func() {
		b, err := sa.SubmitAll(ctx, handles, vals)
		if err != nil {
			t.Fatalf("SubmitAll: %v", err)
		}
		for i := 0; i < size; i++ {
			if _, err := b.Future(i).Value(); err != nil {
				t.Fatalf("proposal %d: %v", i, err)
			}
		}
	}
	// Warm past one-time costs (engine creation, wait plans).
	for i := 0; i < 5; i++ {
		round()
	}
	if n := testing.AllocsPerRun(50, round) / size; n > batchRoundAllocCeiling {
		t.Errorf("batch round allocates %.2f/proposal, ceiling %d", n, batchRoundAllocCeiling)
	}
}
