package setagreement

import (
	"fmt"
	goruntime "runtime"
	"sync"
	"sync/atomic"
	"time"

	iarena "setagreement/internal/arena"
	"setagreement/internal/core"
	"setagreement/internal/shmem"
	"setagreement/internal/snapshot"
	"setagreement/obs"
)

// Arena is a sharded, multi-tenant registry of named agreement objects: the
// serving layer for workloads that coordinate per key — leases, task queues,
// per-entity locks — rather than through one hand-wired object. Objects are
// created lazily on first access and addressed by name:
//
//	ar, _ := setagreement.NewArena[string](4, 1, setagreement.WithIdleTTL(time.Minute))
//	h, _ := ar.Object("user:42").Proc(id)
//	decided, _ := h.Propose(ctx, "lease-me")
//
// Every object of an arena is built from the same mold — same n, k,
// obstruction degree, snapshot runtime, memory backend and codec (set with
// WithObjectOptions) — which is what makes the arena cheap at scale: the
// name→object map is sharded (power-of-two shard count, one RWMutex per
// shard) so lookups contend only within a shard, and evicted objects'
// shared memories are recycled through a pool instead of reallocated, since
// all runtimes in one arena are interchangeable.
//
// Lifecycle: handles claimed through an arena object support Release; a
// released handle's process has permanently left the object. When every
// claimed handle of an object has been released and the object has been
// idle for the configured TTL (WithIdleTTL), a sweep evicts it — an object
// with any live (claimed, unreleased) handle is never evicted. Sweeps run
// incrementally during Object calls and on demand via Sweep. After
// eviction, a retained *ArenaObject fails with ErrEvicted; fetch the key's
// current object with Object again, which recreates it fresh (new
// generation, all process ids claimable again).
//
// An Arena is safe for concurrent use by any number of goroutines.
type Arena[T comparable] struct {
	shards []arenaShard[T]
	hasher iarena.Hasher
	pool   iarena.Pool
	// eng is the async proposal engine every object of the arena shares —
	// created lazily at the arena's first ProposeAsync, so all stalled
	// async proposals across all shards multiplex over one small worker
	// set (the million-key serving shape).
	eng *engineRef

	n, k    int
	oneShot bool
	ttl     time.Duration
	opts    options
	// codecOpt is the WithCodec option value (or nil). Codecs are resolved
	// per object: with the default interning codec, evicting a key releases
	// its interned values, and no single codec mutex spans the arena. A
	// user-supplied codec is necessarily shared by every object — it must
	// use object-independent (stable) codes, which is what WithCodec codecs
	// are for.
	codecOpt any
	impl     snapshot.Impl

	now func() time.Time // injectable for tests

	created      atomic.Int64
	evicted      atomic.Int64
	handlesTotal atomic.Int64

	retiredMu sync.Mutex
	retired   retiredStats
}

// arenaShard is one shard of the name→object map. The RWMutex design was
// chosen over sync.Map after benchmarking the read-mostly lookup path
// (BenchmarkShardMapReadHit in internal/arena); it also keeps eviction a
// plain delete. nextSweep (unix nanos) rate-limits the incremental sweep:
// the lookup hot path pays one atomic load for it, never a shared write.
type arenaShard[T comparable] struct {
	mu        sync.RWMutex
	objs      map[string]*ArenaObject[T]
	nextSweep atomic.Int64
}

// retiredStats accumulates the instrumentation of evicted objects so
// Arena.Stats never shrinks when objects are reclaimed.
type retiredStats struct {
	proposes   int64
	steps      int64
	scans      int64
	waitNS     int64
	wakeups    int64
	spurious   int64
	combined   int64
	adopted    int64
	memSteps   int64
	casRetries int64
}

// touchGran is the granularity of idle-clock updates on the Object hot
// path: lastUse is only re-stored once it is staler than ttl/touchDiv, so
// a hot key costs one atomic load per lookup, not a contended store. To
// compensate, the sweep deadline is extended by the same slack — an object
// is evicted only after being idle for at least the full TTL, possibly up
// to TTL/touchDiv longer.
const touchDiv = 4

func (ar *Arena[T]) touchGran() int64 { return int64(ar.ttl) / touchDiv }

// ArenaOption configures an Arena.
type ArenaOption interface {
	applyArena(*arenaConfig) error
}

type arenaConfig struct {
	shards  int
	ttl     time.Duration
	oneShot bool
	objOpts []Option
}

type arenaOptionFunc func(*arenaConfig) error

func (f arenaOptionFunc) applyArena(c *arenaConfig) error { return f(c) }

// WithShards fixes the shard count of the name→object map. Counts are
// rounded up to a power of two; the default (0) sizes the map to the
// machine (next power of two ≥ 4×GOMAXPROCS).
func WithShards(n int) ArenaOption {
	return arenaOptionFunc(func(c *arenaConfig) error {
		if n < 0 {
			return fmt.Errorf("setagreement: negative shard count %d", n)
		}
		c.shards = n
		return nil
	})
}

// WithIdleTTL enables idle-object eviction: an object all of whose handles
// have been released becomes evictable once it has not been touched (Object
// lookup, claim or release) for at least d. The default (0) disables
// eviction. Idle tracking is coarse on the lookup hot path — touches are
// recorded at d/4 granularity and the sweep compensates by waiting d plus
// that slack — so eviction happens between d and 1.25d of true idleness,
// and a hot key's lookups stay free of contended writes.
func WithIdleTTL(d time.Duration) ArenaOption {
	return arenaOptionFunc(func(c *arenaConfig) error {
		if d < 0 {
			return fmt.Errorf("setagreement: negative idle TTL %v", d)
		}
		c.ttl = d
		return nil
	})
}

// ArenaOneShot makes the arena serve one-shot agreement objects (New)
// instead of repeated ones (NewRepeated, the default).
func ArenaOneShot() ArenaOption {
	return arenaOptionFunc(func(c *arenaConfig) error {
		c.oneShot = true
		return nil
	})
}

// WithObjectOptions supplies the Options every object of the arena is built
// with — WithMemoryBackend, WithSnapshot, WithObstruction, WithBackoff,
// WithCodec. Threading the backend through here is what keeps all objects
// of an arena in one backend family, so their memories are poolable.
func WithObjectOptions(opts ...Option) ArenaOption {
	return arenaOptionFunc(func(c *arenaConfig) error {
		c.objOpts = append(c.objOpts, opts...)
		return nil
	})
}

// NewArena builds an arena whose objects are agreement objects for n
// processes and at most k distinct decisions over domain T. All object
// configuration is validated here, once — Object itself cannot fail on a
// well-formed arena. The validation run pre-materializes one runtime and
// seeds the recycling pool with it.
func NewArena[T comparable](n, k int, aopts ...ArenaOption) (*Arena[T], error) {
	var cfg arenaConfig
	for _, op := range aopts {
		if err := op.applyArena(&cfg); err != nil {
			return nil, err
		}
	}
	o, err := buildOptions(cfg.objOpts)
	if err != nil {
		return nil, err
	}
	// Validate the codec ↔ domain match once; objects resolve their own
	// codec instances at creation.
	if _, err := resolveCodec[T](o.codec); err != nil {
		return nil, err
	}
	ar := &Arena[T]{
		shards:   make([]arenaShard[T], iarena.Shards(cfg.shards)),
		hasher:   iarena.NewHasher(),
		eng:      &engineRef{workers: o.engineWorkers, obsv: observerFor(o.obs)},
		n:        n,
		k:        k,
		oneShot:  cfg.oneShot,
		ttl:      cfg.ttl,
		opts:     o,
		codecOpt: o.codec,
		impl:     o.impl.internal(),
		now:      time.Now,
	}
	for i := range ar.shards {
		ar.shards[i].objs = make(map[string]*ArenaObject[T])
	}
	// Validate the whole object mold once: algorithm parameters and the
	// snapshot-construction × backend combination. The materialized runtime
	// seeds the pool rather than being thrown away.
	alg, err := ar.newAlgorithm()
	if err != nil {
		return nil, err
	}
	mem, wrap, err := snapshot.Materialize(alg.Spec(), ar.impl, n, o.backend.internal())
	if err != nil {
		return nil, err
	}
	ar.pool.Put(iarena.Runtime{Mem: mem, Wrap: wrap, Comb: ar.newCombiner(alg)})
	return ar, nil
}

// newCombiner builds one object's scan-combining slot from the arena's
// mold, or nil when WithScanCombining(false) was configured.
func (ar *Arena[T]) newCombiner(alg core.Algorithm) *shmem.ScanCombiner {
	if ar.opts.noCombining {
		return nil
	}
	return shmem.NewScanCombiner(len(alg.Spec().Snaps))
}

// newAlgorithm builds one object's algorithm from the arena's mold.
func (ar *Arena[T]) newAlgorithm() (core.Algorithm, error) {
	p := core.Params{N: ar.n, M: ar.opts.m, K: ar.k}
	if ar.oneShot {
		return core.NewOneShot(p)
	}
	return core.NewRepeated(p)
}

// Shards returns the shard count of the name→object map.
func (ar *Arena[T]) Shards() int { return len(ar.shards) }

// Len returns the number of live named objects.
func (ar *Arena[T]) Len() int {
	total := 0
	for i := range ar.shards {
		sh := &ar.shards[i]
		sh.mu.RLock()
		total += len(sh.objs)
		sh.mu.RUnlock()
	}
	return total
}

// Object returns the agreement object named key, creating it on first
// access. Concurrent calls with one key observe the same object. The
// returned object stays valid until evicted; afterwards its methods fail
// with ErrEvicted and Object returns the key's next generation. Object
// never returns an already-evicted object, but a caller that lets an
// object sit idle past the TTL before claiming can still lose the race
// with a sweep — treat ErrEvicted from Proc as "fetch the object again".
func (ar *Arena[T]) Object(key string) *ArenaObject[T] {
	sh := &ar.shards[ar.hasher.Shard(key, len(ar.shards))]
	for {
		sh.mu.RLock()
		ao := sh.objs[key]
		sh.mu.RUnlock()
		if ao == nil {
			ao = ar.create(sh, key)
		}
		if ar.ttl > 0 {
			now := ar.now().UnixNano()
			// Coarse touch: re-store the idle clock only once it is
			// staler than the granularity, so a hot key costs one atomic
			// load per lookup instead of a contended store.
			if now-ao.lastUse.Load() > ar.touchGran() {
				ao.lastUse.Store(now)
			}
			// Incremental sweep, rate-limited per shard: at most one
			// sweep per granularity window, won by a single CAS.
			if next := sh.nextSweep.Load(); now > next &&
				sh.nextSweep.CompareAndSwap(next, now+ar.touchGran()) {
				ar.sweepShard(sh, now)
			}
		}
		// A concurrent sweep (or our own, for a different key's idle
		// object — never this one, which we just touched) may have evicted
		// ao between the lookup and here; serve the next generation
		// instead of a dead object. A dead object can sit in the map for
		// the moment between being marked dead and being deleted; yield so
		// its evictor can finish.
		if !ao.Evicted() {
			return ao
		}
		goruntime.Gosched()
	}
}

// create installs a fresh object for key under the shard write lock,
// yielding to a concurrent creator that got there first.
func (ar *Arena[T]) create(sh *arenaShard[T], key string) *ArenaObject[T] {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if ao := sh.objs[key]; ao != nil {
		return ao
	}
	ao := &ArenaObject[T]{key: key, ar: ar}
	alg, err := ar.newAlgorithm()
	if err != nil {
		// Unreachable on a NewArena-validated mold; surfaced via Proc.
		ao.err = err
		return ao
	}
	codec, err := resolveCodec[T](ar.codecOpt)
	if err != nil {
		ao.err = err
		return ao
	}
	rt, ok := ar.pool.Get()
	if !ok {
		m, wrap, err := snapshot.Materialize(alg.Spec(), ar.impl, ar.n, ar.opts.backend.internal())
		if err != nil {
			ao.err = err
			return ao
		}
		rt = iarena.Runtime{Mem: m, Wrap: wrap, Comb: ar.newCombiner(alg)}
	}
	ao.obj = object[T]{
		alg:   alg,
		rt:    &runtime{mem: rt.Mem, wrap: rt.Wrap, opts: ar.opts, eng: ar.eng, comb: rt.Comb},
		codec: codec,
	}
	ao.handles = make([]*Handle[T], ar.n)
	ao.lastUse.Store(ar.now().UnixNano())
	sh.objs[key] = ao
	ar.created.Add(1)
	return ao
}

// Sweep evicts every evictable object — all handles released, idle past the
// TTL — and returns how many were evicted. With no TTL configured it does
// nothing; use Evict for explicit reclamation.
func (ar *Arena[T]) Sweep() int {
	if ar.ttl <= 0 {
		return 0
	}
	now := ar.now().UnixNano()
	total := 0
	for i := range ar.shards {
		total += ar.sweepShard(&ar.shards[i], now)
	}
	return total
}

// sweepShard evicts the shard's evictable objects in three phases: mark
// dead (under the shard lock), fold counters into the retired totals and
// recycle the runtimes (without the shard lock — fold takes retiredMu,
// which must never nest inside a shard lock, see Stats), then delete the
// dead entries. Deleting only after folding is what keeps the Stats
// roll-up monotone: a dead object still in the map is counted through its
// frozen counters until the exact retiredMu-guarded moment its generation
// moves into the retired totals.
func (ar *Arena[T]) sweepShard(sh *arenaShard[T], now int64) int {
	// Extend the deadline by the touch granularity: the coarse touch may
	// under-record recency by up to that much, and "idle at least the TTL"
	// must hold for the true last access.
	deadline := now - int64(ar.ttl) - ar.touchGran()
	var dead []*ArenaObject[T]
	var keys []string
	sh.mu.Lock()
	for key, ao := range sh.objs {
		if ao.markDead(deadline, false) {
			dead = append(dead, ao)
			keys = append(keys, key)
		}
	}
	sh.mu.Unlock()
	if len(dead) == 0 {
		return 0
	}
	for _, ao := range dead {
		ar.fold(ao)
	}
	sh.mu.Lock()
	for i, key := range keys {
		if sh.objs[key] == dead[i] {
			delete(sh.objs, key)
		}
	}
	sh.mu.Unlock()
	ar.evicted.Add(int64(len(dead)))
	return len(dead)
}

// Evict reclaims key's object immediately if every claimed handle has been
// released (ignoring the TTL), reporting whether an eviction happened. An
// object with a live handle is never reclaimed.
func (ar *Arena[T]) Evict(key string) bool {
	sh := &ar.shards[ar.hasher.Shard(key, len(ar.shards))]
	sh.mu.Lock()
	ao := sh.objs[key]
	ok := ao != nil && ao.markDead(0, true)
	sh.mu.Unlock()
	if !ok {
		return false
	}
	ar.fold(ao)
	sh.mu.Lock()
	if sh.objs[key] == ao {
		delete(sh.objs, key)
	}
	sh.mu.Unlock()
	ar.evicted.Add(1)
	return true
}

// ArenaStats is a point-in-time roll-up of an arena's instrumentation: the
// registry counters plus the sum of every handle's Stats across all objects
// and generations (evicted objects' counters are folded in at eviction, so
// the roll-up never shrinks). MemSteps and CASRetries aggregate the
// object-wide backend counters, one contribution per object.
type ArenaStats struct {
	// Objects is the number of live named objects.
	Objects int
	// Created and Evicted count object creations and evictions ever.
	Created, Evicted int64
	// PoolHits counts object creations served by a recycled runtime
	// instead of a fresh allocation.
	PoolHits int64
	// Handles counts handles ever claimed; LiveHandles the claimed,
	// unreleased ones.
	Handles, LiveHandles int64
	// Proposes, Steps, Scans, WaitTime, Wakeups and SpuriousWakeups sum
	// the per-handle counters of every handle ever claimed.
	Proposes, Steps, Scans   int64
	WaitTime                 time.Duration
	Wakeups, SpuriousWakeups int64
	// ScansCombined and ScansAdopted sum the scan-combining counters over
	// every handle ever claimed: scans performed for a wake batch and
	// published, and scans satisfied by adopting a published view.
	ScansCombined, ScansAdopted int64
	// MemSteps and CASRetries sum the backend memory counters over all
	// objects and generations.
	MemSteps, CASRetries int64
	// AsyncInFlight and AsyncParked are gauges (not cumulative counters —
	// they fall as proposals resolve) of the arena's shared async engine:
	// ProposeAsync proposals submitted and not yet resolved, and the subset
	// currently parked on their objects' notifiers rather than advancing.
	// Both are zero until the arena's first ProposeAsync creates the engine.
	AsyncInFlight, AsyncParked int64
	// NotifyWaiters is a gauge summing Notifier.Waiters over the live
	// objects' memories: goroutines blocked in notify-waits plus parked
	// async proposals' wake registrations. It is the arena's live
	// contention signal — which the ROADMAP earmarks for admission and
	// rebalancing decisions — where the cumulative counters above are its
	// history.
	NotifyWaiters int64
}

// Stats rolls up the arena's instrumentation. Safe to call concurrently
// with serving traffic. The roll-up counts every generation exactly once —
// live objects through their handles and memory, evicted ones through the
// retired totals — so successive readings of the cumulative counters never
// decrease: holding retiredMu across the walk makes an eviction's fold
// atomic with respect to the roll-up, and a dead object is deleted from
// its shard only after it has been folded. (The gauges — Objects,
// LiveHandles, AsyncInFlight, AsyncParked, NotifyWaiters — move both ways
// by nature.)
func (ar *Arena[T]) Stats() ArenaStats {
	s := ArenaStats{
		Created:  ar.created.Load(),
		Evicted:  ar.evicted.Load(),
		PoolHits: ar.pool.Stats().Hits,
		Handles:  ar.handlesTotal.Load(),
	}
	if e := ar.eng.peek(); e != nil {
		s.AsyncInFlight = e.InFlight()
		s.AsyncParked = e.Parked()
	}
	ar.retiredMu.Lock()
	defer ar.retiredMu.Unlock()
	r := ar.retired
	s.Proposes, s.Steps, s.Scans = r.proposes, r.steps, r.scans
	s.WaitTime = time.Duration(r.waitNS)
	s.Wakeups, s.SpuriousWakeups = r.wakeups, r.spurious
	s.ScansCombined, s.ScansAdopted = r.combined, r.adopted
	s.MemSteps, s.CASRetries = r.memSteps, r.casRetries
	for i := range ar.shards {
		sh := &ar.shards[i]
		sh.mu.RLock()
		objs := make([]*ArenaObject[T], 0, len(sh.objs))
		for _, ao := range sh.objs {
			objs = append(objs, ao)
		}
		sh.mu.RUnlock()
		for _, ao := range objs {
			if ao.folded {
				// Already in the retired totals we copied above (folded is
				// guarded by retiredMu, which we hold); counting it again
				// would double-count. Its shard entry is about to vanish.
				continue
			}
			// Not yet folded: count it through its own counters — frozen
			// ones if it has just been marked dead.
			live := !ao.Evicted()
			os := ao.Stats()
			if live {
				s.Objects++
				s.LiveHandles += int64(ao.liveHandles())
				s.NotifyWaiters += ao.notifyWaiters()
			}
			s.Proposes += os.Proposes
			s.Steps += os.Steps
			s.Scans += os.Scans
			s.WaitTime += os.WaitTime
			s.Wakeups += os.Wakeups
			s.SpuriousWakeups += os.SpuriousWakeups
			s.ScansCombined += os.ScansCombined
			s.ScansAdopted += os.ScansAdopted
			s.MemSteps += os.MemSteps
			s.CASRetries += os.CASRetries
		}
	}
	return s
}

// Observe returns the arena's structured observability snapshot: the
// per-stage latency histograms, lifecycle counters and — when drain is
// true — the recent-event ring, drained (each event appears in exactly
// one draining snapshot), plus arena-level gauges (live objects, async
// in-flight and parked counts). It requires a collector configured via
// WithObjectOptions(WithObservability(...)); without one it returns nil.
// Safe to call concurrently with serving traffic; obs/obshttp serves the
// same snapshot over HTTP.
func (ar *Arena[T]) Observe(drain bool) *obs.Snapshot {
	s := ar.opts.obs.Snapshot(drain)
	if s == nil {
		return nil
	}
	s.Gauges["arena_objects"] = int64(ar.Len())
	if e := ar.eng.peek(); e != nil {
		s.Gauges["async_in_flight"] = e.InFlight()
		s.Gauges["async_parked"] = e.Parked()
	}
	return s
}

// ArenaObject is one named agreement object served by an arena: the same
// object core as Agreement/Repeated plus per-generation claim bookkeeping.
// Handles are claimed with Proc, as on the standalone objects, and support
// Release; once every handle is released the object can be evicted.
type ArenaObject[T comparable] struct {
	key string
	ar  *Arena[T]
	obj object[T]
	err error // construction error, surfaced at claim time

	lastUse atomic.Int64 // unix nanos of the last touch

	mu      sync.Mutex
	handles []*Handle[T] // indexed by process id; nil = unclaimed
	live    int          // claimed, unreleased handles
	dead    bool         // evicted
	// frozenMemSteps/frozenCASRetries capture the memory counters at
	// eviction: the memory itself is recycled for another key's object, so
	// a retained ArenaObject must never read it again.
	frozenMemSteps   int64
	frozenCASRetries int64
	// folded marks the generation's counters as moved into the arena's
	// retired totals. Guarded by the arena's retiredMu, not ao.mu.
	folded bool
}

// Key returns the name the object is registered under.
func (ao *ArenaObject[T]) Key() string { return ao.key }

// Registers returns the object's register footprint (the paper's
// min(n+2m−k, n)).
func (ao *ArenaObject[T]) Registers() int {
	if ao.err != nil {
		return 0
	}
	return ao.obj.Registers()
}

// Proc claims process id (0 ≤ id < n) on this object generation and returns
// its handle. Each id may be claimed once per generation; after eviction,
// Proc fails with ErrEvicted and a fresh generation (with all ids free) is
// available from Arena.Object.
func (ao *ArenaObject[T]) Proc(id int) (*Handle[T], error) {
	if ao.err != nil {
		return nil, ao.err
	}
	ao.mu.Lock()
	defer ao.mu.Unlock()
	if ao.dead {
		return nil, fmt.Errorf("%w: key %q", ErrEvicted, ao.key)
	}
	if id < 0 || id >= len(ao.handles) {
		return nil, fmt.Errorf("%w: %d of %d", ErrBadID, id, len(ao.handles))
	}
	if ao.handles[id] != nil {
		return nil, fmt.Errorf("%w: process %d already claimed", ErrInUse, id)
	}
	h := ao.obj.handle(id, ao.ar.oneShot)
	h.guard.obsKey = ao.key
	h.onRelease = func() { ao.released() }
	ao.handles[id] = h
	ao.live++
	ao.lastUse.Store(ao.ar.now().UnixNano())
	ao.ar.handlesTotal.Add(1)
	return h, nil
}

// released records one handle leaving; the last release starts the idle
// clock toward eviction.
func (ao *ArenaObject[T]) released() {
	ao.mu.Lock()
	ao.live--
	ao.lastUse.Store(ao.ar.now().UnixNano())
	ao.mu.Unlock()
}

func (ao *ArenaObject[T]) liveHandles() int {
	ao.mu.Lock()
	defer ao.mu.Unlock()
	return ao.live
}

// notifyWaiters reads the object's live-contention gauge — pending waits
// on its memory's notifier. Zero once the object is dead: the memory then
// serves another key and must not be read through this generation.
func (ao *ArenaObject[T]) notifyWaiters() int64 {
	if ao.err != nil {
		return 0
	}
	ao.mu.Lock()
	defer ao.mu.Unlock()
	if ao.dead {
		return 0
	}
	if nt, ok := ao.obj.rt.mem.(shmem.Notifier); ok {
		return nt.Waiters()
	}
	return 0
}

// Evicted reports whether the object has been reclaimed.
func (ao *ArenaObject[T]) Evicted() bool {
	ao.mu.Lock()
	defer ao.mu.Unlock()
	return ao.dead
}

// Stats aggregates the object's instrumentation: per-handle counters summed
// over every handle claimed on this generation, plus the object-wide memory
// counters (MemSteps, CASRetries) taken once. After eviction the memory
// counters stay frozen at their eviction-time values (the memory itself is
// recycled and belongs to another object).
func (ao *ArenaObject[T]) Stats() Stats {
	if ao.err != nil {
		return Stats{}
	}
	ao.mu.Lock()
	dead := ao.dead
	frozenMS, frozenCR := ao.frozenMemSteps, ao.frozenCASRetries
	handles := make([]*Handle[T], 0, len(ao.handles))
	for _, h := range ao.handles {
		if h != nil {
			handles = append(handles, h)
		}
	}
	ao.mu.Unlock()
	var s Stats
	for _, h := range handles {
		s.Proposes += h.stats.proposes.Load()
		s.Steps += h.stats.steps.Load()
		s.Scans += h.stats.scans.Load()
		s.WaitTime += time.Duration(h.stats.waitNS.Load())
		s.Wakeups += h.stats.wakeups.Load()
		s.SpuriousWakeups += h.stats.spurious.Load()
		s.ScansCombined += h.stats.combined.Load()
		s.ScansAdopted += h.stats.adopted.Load()
	}
	if dead {
		s.MemSteps, s.CASRetries = frozenMS, frozenCR
		return s
	}
	mem := ao.obj.rt.mem
	if st, ok := mem.(shmem.Stepper); ok {
		s.MemSteps = st.Steps()
	}
	if cr, ok := mem.(shmem.CASRetrier); ok {
		s.CASRetries = cr.CASRetries()
	}
	return s
}

// markDead transitions the object to dead if it is evictable: not already
// dead, no live handles, and (unless force) idle since before the
// deadline. It freezes the memory counters in the same critical section,
// so Stats never reads the recycled memory afterwards. Called with the
// owning shard lock held; the caller must follow up with Arena.fold and
// only then delete the shard entry.
func (ao *ArenaObject[T]) markDead(idleBefore int64, force bool) bool {
	if ao.err != nil {
		return true // a stillborn object holds no runtime; just drop it
	}
	ao.mu.Lock()
	defer ao.mu.Unlock()
	if ao.dead || ao.live > 0 || (!force && ao.lastUse.Load() > idleBefore) {
		return false
	}
	// The memory is quiescent here: live == 0 means every claimed handle
	// is released (and refuses further Proposes), and new claims need the
	// mutex we hold.
	if st, ok := ao.obj.rt.mem.(shmem.Stepper); ok {
		ao.frozenMemSteps = st.Steps()
	}
	if cr, ok := ao.obj.rt.mem.(shmem.CASRetrier); ok {
		ao.frozenCASRetries = cr.CASRetries()
	}
	ao.dead = true
	return true
}

// fold moves a dead object's counters into the arena's retired totals —
// atomically with respect to Stats, which holds retiredMu across its whole
// roll-up — and recycles the runtime. Called exactly once per dead object
// (markDead returns true once), never with a shard lock held (retiredMu
// is ordered before the shard locks).
func (ar *Arena[T]) fold(ao *ArenaObject[T]) {
	if ao.err != nil {
		return
	}
	s := ao.Stats() // frozen memory counters + per-handle sums
	ar.retiredMu.Lock()
	ar.retired.proposes += s.Proposes
	ar.retired.steps += s.Steps
	ar.retired.scans += s.Scans
	ar.retired.waitNS += int64(s.WaitTime)
	ar.retired.wakeups += s.Wakeups
	ar.retired.spurious += s.SpuriousWakeups
	ar.retired.combined += s.ScansCombined
	ar.retired.adopted += s.ScansAdopted
	ar.retired.memSteps += s.MemSteps
	ar.retired.casRetries += s.CASRetries
	ao.folded = true
	ar.retiredMu.Unlock()
	ar.pool.Put(iarena.Runtime{Mem: ao.obj.rt.mem, Wrap: ao.obj.rt.wrap, Comb: ao.obj.rt.comb})
}
