package setagreement_test

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"setagreement"
	iarena "setagreement/internal/arena"
)

// BenchmarkArenaShards measures the arena serving path — Object(key) over a
// live registry — at 32 goroutines over 256 keys, sweeping the shard count
// from 1 to beyond GOMAXPROCS on both memory backends. At 1 shard every
// lookup contends on one RWMutex; sharding removes that serialization
// point, so on multicore hardware throughput scales with the shard count
// (the acceptance bar is ≥2x from 1 shard to GOMAXPROCS shards on the
// lock-free backend; on a single-core runner the sweep mostly shows the
// flat cost of the lookup itself).
func BenchmarkArenaShards(b *testing.B) {
	const goroutines, nKeys = 32, 256
	keys := make([]string, nKeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("tenant-%04d", i)
	}
	shardCounts := shardSweep()
	for _, be := range []setagreement.MemoryBackend{setagreement.BackendLockFree, setagreement.BackendLocked} {
		for _, shards := range shardCounts {
			name := fmt.Sprintf("backend=%s/shards=%d/goroutines=%d/keys=%d", be, shards, goroutines, nKeys)
			b.Run(name, func(b *testing.B) {
				ar, err := setagreement.NewArena[int](4, 2,
					setagreement.WithShards(shards),
					setagreement.WithObjectOptions(setagreement.WithMemoryBackend(be)))
				if err != nil {
					b.Fatal(err)
				}
				for _, k := range keys {
					ar.Object(k) // pre-create: measure serving, not churn
				}
				b.SetParallelism((goroutines + runtime.GOMAXPROCS(0) - 1) / runtime.GOMAXPROCS(0))
				var worker atomic.Int64
				b.ReportAllocs()
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					i := int(worker.Add(1)) * 17 // spread start keys across workers
					for pb.Next() {
						if ar.Object(keys[i&(nKeys-1)]) == nil {
							b.Error("nil object")
							return
						}
						i++
					}
				})
			})
		}
	}
}

// shardSweep returns the shard counts to benchmark: 1 up to a few times
// GOMAXPROCS in powers of two, always covering GOMAXPROCS itself. Counts
// are normalized through the same rounding NewArena uses (iarena.Shards)
// so benchmark names report the real configuration.
func shardSweep() []int {
	limit := 4 * runtime.GOMAXPROCS(0)
	if limit < 8 {
		limit = 8
	}
	var counts []int
	seen := map[int]bool{}
	add := func(c int) {
		c = iarena.Shards(c)
		if !seen[c] {
			seen[c] = true
			counts = append(counts, c)
		}
	}
	for c := 1; c <= limit; c *= 2 {
		add(c)
	}
	add(runtime.GOMAXPROCS(0))
	return counts
}

// BenchmarkArenaObjectTTL measures the same serving path with idle
// eviction configured: the hot path then additionally loads the idle clock
// (re-storing it only when stale) and checks the shard's sweep deadline.
func BenchmarkArenaObjectTTL(b *testing.B) {
	const nKeys = 256
	keys := make([]string, nKeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("tenant-%04d", i)
	}
	ar, err := setagreement.NewArena[int](4, 2, setagreement.WithIdleTTL(time.Minute))
	if err != nil {
		b.Fatal(err)
	}
	for _, k := range keys {
		ar.Object(k)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			ar.Object(keys[i&(nKeys-1)])
			i++
		}
	})
}

// BenchmarkArenaPropose is the end-to-end per-key coordination path: each
// worker owns one key and drives repeated consensus on it through the
// arena — lookup, then Propose on its claimed handle.
func BenchmarkArenaPropose(b *testing.B) {
	for _, be := range []setagreement.MemoryBackend{setagreement.BackendLockFree, setagreement.BackendLocked} {
		b.Run("backend="+be.String(), func(b *testing.B) {
			// n=2 processes per object (the core's minimum); each worker
			// claims process 0 of its own key and runs solo.
			ar, err := setagreement.NewArena[int](2, 1,
				setagreement.WithObjectOptions(setagreement.WithMemoryBackend(be)))
			if err != nil {
				b.Fatal(err)
			}
			ctx := context.Background()
			var worker atomic.Int64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				key := fmt.Sprintf("worker-%d", worker.Add(1))
				h, err := ar.Object(key).Proc(0)
				if err != nil {
					b.Error(err)
					return
				}
				v := 0
				for pb.Next() {
					if _, err := h.Propose(ctx, v); err != nil {
						b.Error(err)
						return
					}
					v++
				}
			})
		})
	}
}

// BenchmarkArenaProposeWaits is the contended arena path under each wait
// strategy: pairs of workers share a key (processes 0 and 1 of one object)
// and drive repeated consensus against each other, with the strategy
// threaded through the arena's object mold. This is where the wait
// subsystem meets the serving layer: recycled runtimes reset their waiter
// state through the same Resetter path the pool already uses.
func BenchmarkArenaProposeWaits(b *testing.B) {
	strategies := []setagreement.WaitStrategy{
		setagreement.WaitBackoff, setagreement.WaitNotify, setagreement.WaitHybrid,
	}
	const pairs = 4
	for _, strat := range strategies {
		b.Run(fmt.Sprintf("strategy=%s/pairs=%d", strat, pairs), func(b *testing.B) {
			ar, err := setagreement.NewArena[int](2, 1,
				setagreement.WithObjectOptions(
					setagreement.WithWaitStrategy(strat),
					setagreement.WithBackoff(100*time.Microsecond, 5*time.Millisecond, 16)))
			if err != nil {
				b.Fatal(err)
			}
			ctx := context.Background()
			handles := make([]*setagreement.Handle[int], 2*pairs)
			for w := range handles {
				h, err := ar.Object(fmt.Sprintf("pair-%d", w/2)).Proc(w % 2)
				if err != nil {
					b.Fatal(err)
				}
				handles[w] = h
			}
			b.ResetTimer()
			var wg sync.WaitGroup
			for w, h := range handles {
				wg.Add(1)
				go func(w int, h *setagreement.Handle[int]) {
					defer wg.Done()
					for i := 0; i < b.N; i++ {
						if _, err := h.Propose(ctx, 1000*i+w); err != nil {
							b.Errorf("worker %d: %v", w, err)
							return
						}
					}
				}(w, h)
			}
			wg.Wait()
		})
	}
}

// BenchmarkArenaChurn measures the create→claim→propose→release→evict cycle
// that a lease-like workload produces. The arena's runtime pool makes the
// steady state cheap: every creation after the first reuses the evicted
// object's shared memory instead of reallocating registers and snapshot
// versions.
func BenchmarkArenaChurn(b *testing.B) {
	ar, err := setagreement.NewArena[int](2, 1)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := fmt.Sprintf("lease-%d", i&7)
		h, err := ar.Object(key).Proc(0)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := h.Propose(ctx, i); err != nil {
			b.Fatal(err)
		}
		if err := h.Release(); err != nil {
			b.Fatal(err)
		}
		if !ar.Evict(key) {
			b.Fatal("evict failed")
		}
	}
	b.StopTimer()
	if s := ar.Stats(); s.PoolHits == 0 {
		b.Fatal("pool never hit during churn")
	}
}
