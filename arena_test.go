package setagreement

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// fakeClock drives an arena's idle clock deterministically.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1000, 0)} }

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestArenaObjectIdentity(t *testing.T) {
	ar, err := NewArena[int](3, 1)
	if err != nil {
		t.Fatal(err)
	}
	a := ar.Object("alpha")
	if b := ar.Object("alpha"); b != a {
		t.Fatal("same key returned distinct objects")
	}
	if c := ar.Object("beta"); c == a {
		t.Fatal("distinct keys share one object")
	}
	if a.Key() != "alpha" {
		t.Fatalf("Key() = %q", a.Key())
	}
	if got, want := ar.Len(), 2; got != want {
		t.Fatalf("Len() = %d, want %d", got, want)
	}
}

func TestArenaConcurrentObjectSameKey(t *testing.T) {
	// The per-key uniqueness guarantee under concurrency: many goroutines
	// racing Object on the same keys must all observe one object per key.
	// Meaningful under -race.
	ar, err := NewArena[int](2, 1, WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	const goroutines, keys = 16, 8
	got := make([][]*ArenaObject[int], goroutines)
	var wg sync.WaitGroup
	var start sync.WaitGroup
	start.Add(1)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			start.Wait()
			got[g] = make([]*ArenaObject[int], keys)
			for k := 0; k < keys; k++ {
				got[g][k] = ar.Object(fmt.Sprintf("key-%d", k))
			}
		}(g)
	}
	start.Done()
	wg.Wait()
	for k := 0; k < keys; k++ {
		for g := 1; g < goroutines; g++ {
			if got[g][k] != got[0][k] {
				t.Fatalf("key %d: goroutine %d saw a different object", k, g)
			}
		}
	}
	if ar.Len() != keys {
		t.Fatalf("Len() = %d, want %d", ar.Len(), keys)
	}
	if s := ar.Stats(); s.Created != keys {
		t.Fatalf("Created = %d, want %d", s.Created, keys)
	}
}

func TestArenaProposeBothBackends(t *testing.T) {
	for _, be := range []MemoryBackend{BackendLockFree, BackendLocked} {
		t.Run(be.String(), func(t *testing.T) {
			ar, err := NewArena[string](3, 1, WithObjectOptions(WithMemoryBackend(be)))
			if err != nil {
				t.Fatal(err)
			}
			ctx := context.Background()
			// Per-key coordination: on each key, every process's decision
			// agrees (k = 1).
			for _, key := range []string{"job:1", "job:2"} {
				ao := ar.Object(key)
				var handles []*Handle[string]
				for id := 0; id < 3; id++ {
					h, err := ao.Proc(id)
					if err != nil {
						t.Fatal(err)
					}
					handles = append(handles, h)
				}
				var first string
				for id, h := range handles {
					got, err := h.Propose(ctx, fmt.Sprintf("%s-by-%d", key, id))
					if err != nil {
						t.Fatal(err)
					}
					if id == 0 {
						first = got
					} else if got != first {
						t.Fatalf("key %s: consensus diverged: %q vs %q", key, got, first)
					}
				}
			}
		})
	}
}

func TestArenaHandleRelease(t *testing.T) {
	ar, err := NewArena[int](2, 1)
	if err != nil {
		t.Fatal(err)
	}
	ao := ar.Object("x")
	h, err := ao.Proc(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Propose(context.Background(), 7); err != nil {
		t.Fatal(err)
	}
	if err := h.Release(); err != nil {
		t.Fatalf("Release: %v", err)
	}
	if err := h.Release(); err != nil {
		t.Fatalf("second Release not idempotent: %v", err)
	}
	if _, err := h.Propose(context.Background(), 8); !errors.Is(err, ErrReleased) {
		t.Fatalf("Propose after Release = %v, want ErrReleased", err)
	}
	// The id stays consumed on this generation.
	if _, err := ao.Proc(0); !errors.Is(err, ErrInUse) {
		t.Fatalf("re-claim after release = %v, want ErrInUse", err)
	}
}

func TestArenaEvictionNeverReclaimsClaimedHandle(t *testing.T) {
	clock := newFakeClock()
	ar, err := NewArena[int](2, 1, WithIdleTTL(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	ar.now = clock.now

	ao := ar.Object("held")
	h, err := ao.Proc(0)
	if err != nil {
		t.Fatal(err)
	}
	clock.advance(time.Hour) // far past the TTL
	if n := ar.Sweep(); n != 0 {
		t.Fatalf("Sweep evicted %d objects while a handle is claimed", n)
	}
	if ar.Evict("held") {
		t.Fatal("Evict reclaimed an object with a claimed handle")
	}
	if ao.Evicted() {
		t.Fatal("object marked evicted while a handle is claimed")
	}
	// The held handle still works long past the TTL.
	if _, err := h.Propose(context.Background(), 1); err != nil {
		t.Fatal(err)
	}

	// Released + idle → evictable.
	if err := h.Release(); err != nil {
		t.Fatal(err)
	}
	if n := ar.Sweep(); n != 0 {
		t.Fatalf("Sweep evicted %d objects before the TTL elapsed", n)
	}
	clock.advance(2 * time.Second)
	if n := ar.Sweep(); n != 1 {
		t.Fatalf("Sweep evicted %d objects, want 1", n)
	}
	if !ao.Evicted() {
		t.Fatal("object not marked evicted")
	}
	if _, err := ao.Proc(1); !errors.Is(err, ErrEvicted) {
		t.Fatalf("Proc on evicted object = %v, want ErrEvicted", err)
	}
	// The next generation is fresh: all ids claimable again.
	next := ar.Object("held")
	if next == ao {
		t.Fatal("Object returned the evicted generation")
	}
	if _, err := next.Proc(0); err != nil {
		t.Fatalf("claim on next generation: %v", err)
	}
}

func TestArenaPoolRecyclesRuntimes(t *testing.T) {
	clock := newFakeClock()
	ar, err := NewArena[int](2, 1, WithIdleTTL(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	ar.now = clock.now

	ctx := context.Background()
	const rounds = 5
	for i := 0; i < rounds; i++ {
		key := fmt.Sprintf("gen-%d", i)
		ao := ar.Object(key)
		h, err := ao.Proc(0)
		if err != nil {
			t.Fatal(err)
		}
		// A recycled runtime must behave exactly like a fresh one: the
		// decided value is this generation's proposal, never residue.
		got, err := h.Propose(ctx, 1000+i)
		if err != nil {
			t.Fatal(err)
		}
		if got != 1000+i {
			t.Fatalf("round %d decided %d — recycled memory leaked state", i, got)
		}
		if err := h.Release(); err != nil {
			t.Fatal(err)
		}
		clock.advance(2 * time.Second)
		if !ar.Evict(key) && ar.Sweep() == 0 {
			t.Fatalf("round %d: nothing evicted", i)
		}
	}
	s := ar.Stats()
	// NewArena seeds the pool with its validation runtime, and each round
	// recycles one, so every creation is a pool hit.
	if s.PoolHits != rounds {
		t.Fatalf("PoolHits = %d, want %d", s.PoolHits, rounds)
	}
	if s.Created != rounds || s.Evicted != rounds {
		t.Fatalf("Created/Evicted = %d/%d, want %d/%d", s.Created, s.Evicted, rounds, rounds)
	}
}

func TestArenaStatsRollupEqualsHandleSum(t *testing.T) {
	ar, err := NewArena[int](3, 2, WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var handles []*Handle[int]
	for _, key := range []string{"a", "b", "c"} {
		ao := ar.Object(key)
		for id := 0; id < 3; id++ {
			h, err := ao.Proc(id)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := h.Propose(ctx, id*10); err != nil {
				t.Fatal(err)
			}
			handles = append(handles, h)
		}
	}
	var wantProposes, wantSteps, wantScans int64
	for _, h := range handles {
		s := h.Stats()
		wantProposes += s.Proposes
		wantSteps += s.Steps
		wantScans += s.Scans
	}
	got := ar.Stats()
	if got.Proposes != wantProposes || got.Steps != wantSteps || got.Scans != wantScans {
		t.Fatalf("roll-up (proposes=%d steps=%d scans=%d) != handle sum (%d, %d, %d)",
			got.Proposes, got.Steps, got.Scans, wantProposes, wantSteps, wantScans)
	}
	if got.Handles != int64(len(handles)) || got.LiveHandles != int64(len(handles)) {
		t.Fatalf("Handles/Live = %d/%d, want %d/%d", got.Handles, got.LiveHandles, len(handles), len(handles))
	}
	if got.MemSteps == 0 {
		t.Fatal("MemSteps = 0 after real proposes")
	}

	// The roll-up survives eviction: release everything, evict, and the
	// counters must not shrink.
	for _, h := range handles {
		if err := h.Release(); err != nil {
			t.Fatal(err)
		}
	}
	for _, key := range []string{"a", "b", "c"} {
		if !ar.Evict(key) {
			t.Fatalf("Evict(%q) failed with all handles released", key)
		}
	}
	after := ar.Stats()
	if after.Proposes != wantProposes || after.Steps != wantSteps || after.Scans != wantScans {
		t.Fatalf("roll-up shrank after eviction: %+v", after)
	}
	if after.Objects != 0 || after.LiveHandles != 0 {
		t.Fatalf("Objects/Live = %d/%d after full eviction", after.Objects, after.LiveHandles)
	}
}

func TestArenaOneShotKind(t *testing.T) {
	ar, err := NewArena[string](2, 1, ArenaOneShot())
	if err != nil {
		t.Fatal(err)
	}
	h, err := ar.Object("vote").Proc(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Propose(context.Background(), "yes"); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Propose(context.Background(), "again"); !errors.Is(err, ErrAlreadyProposed) {
		t.Fatalf("second one-shot Propose = %v, want ErrAlreadyProposed", err)
	}
	// A done one-shot handle is releasable, so the object can be evicted.
	if err := h.Release(); err != nil {
		t.Fatal(err)
	}
	if !ar.Evict("vote") {
		t.Fatal("Evict failed after release")
	}
}

func TestArenaAmortizedSweep(t *testing.T) {
	clock := newFakeClock()
	ar, err := NewArena[int](2, 1, WithShards(1), WithIdleTTL(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	ar.now = clock.now
	ar.Object("idle") // never claimed; idle from birth
	clock.advance(time.Hour)
	// Object calls alone must trigger the rate-limited shard sweep: the
	// first lookup past the shard's nextSweep deadline runs it.
	for i := 0; i < 16 && ar.Len() > 1; i++ {
		ar.Object("hot")
		clock.advance(time.Second) // move past the per-shard sweep window
	}
	if got := ar.Len(); got != 1 {
		t.Fatalf("amortized sweep never evicted the idle object (Len=%d)", got)
	}
}

func TestArenaCodecIsolation(t *testing.T) {
	// Each object gets its own default interning codec (so evicting a key
	// releases its interned values and no codec mutex spans the arena)...
	ar, err := NewArena[string](2, 1)
	if err != nil {
		t.Fatal(err)
	}
	a, b := ar.Object("a"), ar.Object("b")
	if a.obj.codec == b.obj.codec {
		t.Fatal("two objects share one default interning codec")
	}
	// ...while a user-supplied codec (stable, object-independent codes by
	// contract) is shared as supplied.
	shared := IdentityCodec()
	ai, err := NewArena[int](2, 1, WithObjectOptions(WithCodec(shared)))
	if err != nil {
		t.Fatal(err)
	}
	if ai.Object("a").obj.codec != shared || ai.Object("b").obj.codec != shared {
		t.Fatal("user-supplied codec not threaded through to objects")
	}
}

func TestArenaConfigValidation(t *testing.T) {
	if _, err := NewArena[int](0, 1); err == nil {
		t.Error("NewArena accepted n=0")
	}
	if _, err := NewArena[int](3, 0); err == nil {
		t.Error("NewArena accepted k=0")
	}
	if _, err := NewArena[int](3, 1, WithShards(-1)); err == nil {
		t.Error("WithShards accepted a negative count")
	}
	if _, err := NewArena[int](3, 1, WithIdleTTL(-time.Second)); err == nil {
		t.Error("WithIdleTTL accepted a negative TTL")
	}
	if _, err := NewArena[int](3, 1, WithObjectOptions(WithObstruction(0))); err == nil {
		t.Error("object options not validated at NewArena")
	}
	// Anonymous-only snapshot restrictions do not apply (identified
	// objects), but unknown impls are still rejected through the options.
	if _, err := NewArena[int](3, 1, WithObjectOptions(WithSnapshot(SnapshotImpl(99)))); err == nil {
		t.Error("bad snapshot impl not rejected")
	}
	// Shard count requests round up to powers of two.
	ar, err := NewArena[int](3, 1, WithShards(3))
	if err != nil {
		t.Fatal(err)
	}
	if got := ar.Shards(); got != 4 {
		t.Fatalf("Shards() = %d, want 4", got)
	}
}

func TestArenaReleaseBusyHandle(t *testing.T) {
	ar, err := NewArena[int](2, 1)
	if err != nil {
		t.Fatal(err)
	}
	ao := ar.Object("busy")
	h, err := ao.Proc(0)
	if err != nil {
		t.Fatal(err)
	}
	// Block a Propose mid-flight by claiming the second process and letting
	// contention... simpler: cancel-poison the handle, then Release must
	// still succeed (poisoned handles are releasable).
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := h.Propose(ctx, 1); err == nil {
		t.Fatal("Propose with cancelled context succeeded")
	}
	if err := h.Release(); err != nil {
		t.Fatalf("Release of poisoned handle: %v", err)
	}
	if !ar.Evict("busy") {
		t.Fatal("Evict after poisoned-handle release failed")
	}
}
