package setagreement

import (
	"context"
	"errors"
	"runtime/pprof"
	"sync"
	"sync/atomic"

	"setagreement/internal/core"
	"setagreement/internal/engine"
	"setagreement/obs"
)

// ErrEngineClosed resolves futures whose proposals were still queued or
// parked when their object's async engine shut down. Like cancellation, it
// poisons the handle: the proposal's half-written state cannot be resumed.
var ErrEngineClosed = errors.New("setagreement: async engine closed")

// engineRef lazily creates the proposal engine shared by every handle of
// one standalone object — or, through the arena, by every object of one
// arena, which is what lets one small engine multiplex thousands of keys'
// agreements. Creation is deferred to the first ProposeAsync so purely
// synchronous users never pay for it; peek exposes the engine to stats
// without forcing it into existence.
type engineRef struct {
	workers int
	// obsv, when non-nil, is installed on the engine at creation — before
	// the atomic publish of the engine pointer, which is the happens-before
	// edge SetObserver's contract asks for.
	obsv engine.Observer
	mu   sync.Mutex
	eng  atomic.Pointer[engine.Engine]
}

func (er *engineRef) get() *engine.Engine {
	if e := er.eng.Load(); e != nil {
		return e
	}
	er.mu.Lock()
	defer er.mu.Unlock()
	if e := er.eng.Load(); e != nil {
		return e
	}
	e := engine.New(er.workers)
	if er.obsv != nil {
		e.SetObserver(er.obsv)
	}
	er.eng.Store(e)
	return e
}

// observerFor adapts a collector to the engine's Observer interface,
// mapping the disabled configuration (nil collector) to a nil interface —
// a typed-nil *obs.Collector inside the interface would defeat the
// engine's `obsv != nil` fast path.
func observerFor(c *obs.Collector) engine.Observer {
	if c == nil {
		return nil
	}
	return c
}

func (er *engineRef) peek() *engine.Engine { return er.eng.Load() }

// ProposeAsync submits value v as this process and returns a Future that
// resolves to the decided value — the completion-based form of Propose.
// The call itself never blocks on agreement: the proposal runs on the
// object's engine (WithEngine), which advances it until it would wait,
// then parks it on the memory's change notifier (with the backoff duration
// as the timeout cap) instead of holding a goroutine — N stalled proposals
// across an arena cost O(engine workers) goroutines, not N. On memories
// without the notifier capability a park is a plain timed one; parking
// wakes on notification whenever the capability exists, whatever the sync
// WaitStrategy, because the cap preserves that strategy's schedule either
// way. Handles with no backoff schedule configured run async under the
// default schedule (100µs–10ms cap, window 64) — an async proposal must
// yield, since yield points are where the engine multiplexes.
//
// Lifecycle is exactly Propose's, delivered through the future: ErrInUse
// while any Propose (sync or async) is in flight on the handle,
// ErrAlreadyProposed after a one-shot decision, and poisoning on
// cancellation — a ctx that ends before the proposal decides (even while
// parked) resolves the future with ctx.Err() and every later call fails
// with ErrPoisoned, just as cancelling a blocking Propose would. Engine
// shutdown resolves still-pending futures with ErrEngineClosed, poisoning
// likewise. Solo execution still decides without ever parking: the solo
// detection of the wait layer applies at engine yield points too.
func (h *Handle[T]) ProposeAsync(ctx context.Context, v T) *Future[T] {
	fut := newFuture[T]()
	ap := &asyncProposal[T]{}
	if h.prepareAsync(ctx, fut, ap, v) {
		h.rt.eng.get().Submit(ap)
	}
	return fut
}

// prepareAsync is the submit-side half ProposeAsync and the batch entry
// points (SubmitAll, Arena.SubmitBatch) share: claim the handle, arm the
// guard for engine-driven stepping and fill ap with the proposal to hand
// the engine. fut and ap are caller-allocated so batches can slab-allocate
// both. On an immediate lifecycle failure the future is resolved with the
// error and prepareAsync reports false: nothing reaches the engine.
func (h *Handle[T]) prepareAsync(ctx context.Context, fut *Future[T], ap *asyncProposal[T], v T) bool {
	// The span opens before the claim so even immediate lifecycle failures
	// leave a complete trace; on the disabled path StartSpan returns the
	// nil span and every call below it is a free no-op.
	sp := h.guard.rec.StartSpan(h.guard.obsKey, h.guard.obsProc)
	fut.span = sp
	var zero T
	if err := h.claim(); err != nil {
		sp.Failed()
		fut.resolve(zero, err)
		return false
	}
	// A dead context must fail (and poison, as in Propose) rather than let
	// a zero-step decision quietly succeed.
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			h.st.Store(statePoisoned)
			sp.Canceled()
			fut.resolve(zero, err)
			return false
		}
	}
	*ap = asyncProposal[T]{h: h, fut: fut, ctx: ctx, val: v, span: sp}
	return true
}

// armAsync puts the handle's guard in engine-driven park mode and rebases
// its wait plan. Run by the engine on the proposal's first Advance — not at
// submit time — so the submit path stays a claim plus slab writes; handle
// exclusivity (claim) makes the engine the guard's only writer until the
// proposal finishes.
func (h *Handle[T]) armAsync() {
	g := &h.guard
	g.cur = g.wait
	if g.cur == nil {
		if h.asyncWait == nil {
			h.asyncWait = &waitPlan{
				strategy: h.rt.opts.strategy,
				backoff:  backoffState{min: defaultWaitMin, max: defaultWaitMax, window: defaultWaitWindow},
			}
		}
		g.cur = h.asyncWait
	}
	g.park = true
	g.resetWait()
}

// asyncProposal adapts one engine-driven Propose — the handle, its guard
// in park mode, the algorithm's resumable attempt and the future to
// resolve — to the engine's Proposal interface. The attempt is built
// lazily on the first Advance (the WakeStart wake), keeping encoding and
// attempt construction off the submit path: batch submission then pays
// only claim-and-arm per proposal, and the constructor cost runs on the
// engine, overlapped across workers.
type asyncProposal[T comparable] struct {
	h    *Handle[T]
	fut  *Future[T]
	ctx  context.Context
	att  core.Attempt
	val  T
	span *obs.Span // nil when observability is disabled
}

var _ engine.Proposal = (*asyncProposal[int])(nil)

// Advance implements engine.Proposal: account for the wake, then step the
// machine until it decides, fails, or signals a park.
func (ap *asyncProposal[T]) Advance(w engine.Wake) (engine.Park, bool) {
	h := ap.h
	g := &h.guard
	if w.Reason == engine.WakeStart {
		h.armAsync()
		ap.span.Started()
		ap.att = h.res.Begin(h.codec.Encode(ap.val))
	} else {
		// Wait accounting precedes the wakeup count (the Stats ordering
		// contract), and the solo detector re-bases exactly as after a
		// blocking notify-wait.
		h.stats.waitNS.Add(int64(w.Waited))
		ap.span.Woken(int(w.Reason), w.Waited, w.Pos)
		if w.Reason == engine.WakeNotify {
			h.stats.wakeups.Add(1)
			// A publish woke this proposal: route its next scan through the
			// combining slot, as leader when the engine elected it to
			// produce the batch's shared view.
			g.armCombine(w.Leader)
		}
		g.rebase()
		// The resumed Step runs yield-free (see guardMem.skipYield): the
		// woken proposal takes the loop iteration it was parked in, as a
		// blocking waiter proceeds when AwaitChange returns.
		g.skipYield = true
	}
	var (
		out    int
		err    error
		park   parkSignal
		parked bool
	)
	if ap.span != nil {
		// Label the worker's stepping for CPU profiles: samples taken while
		// this proposal advances carry its object key and wake reason.
		pprof.Do(context.Background(), pprof.Labels("sa_key", g.obsKey, "sa_wake", w.Reason.String()), func(context.Context) {
			out, err, park, parked = h.stepAsync(ap.ctx, ap.att)
		})
	} else {
		out, err, park, parked = h.stepAsync(ap.ctx, ap.att)
	}
	if parked {
		ap.span.Parked(park.cap)
		p := engine.Park{Version: park.version, Cap: park.cap, Ctx: ap.ctx}
		if park.notify {
			p.Notifier = g.notifier
		}
		return p, true
	}
	ap.finish(out, err)
	return engine.Park{}, false
}

// Abort implements engine.Proposal: the engine shut down with this
// proposal queued or parked. Its partial writes stay behind, so the
// handle poisons, exactly as after cancellation.
func (ap *asyncProposal[T]) Abort(err error) {
	if errors.Is(err, engine.ErrClosed) {
		err = ErrEngineClosed
	}
	ap.finish(0, err)
}

// finish commits the proposal's outcome to the handle lifecycle —
// Handle.commit, the very code Propose's tail runs — and resolves the
// future with the result. The span closes with exactly one terminal,
// classified from the outcome, before the future resolves — so a trace's
// terminal always precedes its delivery event.
func (ap *asyncProposal[T]) finish(out int, err error) {
	ap.h.guard.park = false
	dec, cerr := ap.h.commit(out, err)
	switch {
	case cerr == nil:
		ap.span.Decided()
	case errors.Is(cerr, ErrEngineClosed):
		ap.span.Aborted()
	case errors.Is(cerr, context.Canceled) || errors.Is(cerr, context.DeadlineExceeded):
		ap.span.Canceled()
	default:
		ap.span.Failed()
	}
	ap.fut.resolve(dec, cerr)
}

// stepAsync runs the attempt through the handle's guard until it decides,
// its context dies, or a yield point signals a park. It is run's engine
// face: the same guard, the same cancelPanic unwinding, plus the
// parkSignal the blocking path never sees.
func (h *Handle[T]) stepAsync(ctx context.Context, att core.Attempt) (out int, err error, park parkSignal, parked bool) {
	// Checked on every entry — initial and after every park — so a
	// cancellation always resolves the future even when the attempt could
	// decide without touching shared memory (the history shortcut).
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return 0, err, parkSignal{}, false
		}
	}
	g := &h.guard
	g.ctx = ctx
	defer func() {
		g.ctx = nil
		if r := recover(); r != nil {
			switch s := r.(type) {
			case parkSignal:
				park, parked = s, true
			case cancelPanic:
				err = s.err
			default:
				panic(r)
			}
		}
	}()
	for {
		o, done := att.Step(g)
		if done {
			return o, nil, parkSignal{}, false
		}
		// One full Step has completed since the resume; parking is fair
		// game again from the next Step's first yield point.
		g.skipYield = false
	}
}
