// Benchmarks for the async proposal engine: the goroutine cost of stalled
// in-flight proposals (sync holds one goroutine per Propose; async parks
// on the notifier), and the per-call overhead of the future machinery on
// the uncontended path.
package setagreement_test

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"setagreement"
)

// BenchmarkAsyncInFlight compares the two drivers at 1/8/64/512 in-flight
// proposals over a contended arena (8 processes per object, k = 1). Sync
// runs one goroutine per in-flight proposal, the classic shape; async runs
// ONE submitter goroutine multiplexing every future over the arena's
// engine. ns/op is wall time per completed proposal; the max-goroutines
// metric is the point of the subsystem — at 512 in-flight, sync reports
// 512+ while async stays within a small constant of the runtime baseline.
func BenchmarkAsyncInFlight(b *testing.B) {
	for _, inflight := range []int{1, 8, 64, 512} {
		for _, mode := range []string{"sync", "async"} {
			b.Run(fmt.Sprintf("mode=%s/inflight=%d", mode, inflight), func(b *testing.B) {
				benchInFlight(b, mode, inflight)
			})
		}
	}
}

func benchInFlight(b *testing.B, mode string, inflight int) {
	procs := min(inflight, 8)
	objects := (inflight + procs - 1) / procs
	ar, err := setagreement.NewArena[int](8, 1, setagreement.WithObjectOptions(
		setagreement.WithWaitStrategy(setagreement.WaitNotify),
		setagreement.WithBackoff(50*time.Microsecond, 2*time.Millisecond, 16)))
	if err != nil {
		b.Fatalf("NewArena: %v", err)
	}
	handles := make([]*setagreement.Handle[int], 0, inflight)
	for o := 0; o < objects; o++ {
		obj := ar.Object(fmt.Sprintf("bench-%04d", o))
		for p := 0; p < procs && len(handles) < inflight; p++ {
			h, err := obj.Proc(p)
			if err != nil {
				b.Fatalf("Proc: %v", err)
			}
			handles = append(handles, h)
		}
	}
	ctx := context.Background()
	var maxG int64
	sample := func() {
		if g := int64(runtime.NumGoroutine()); g > maxG {
			maxG = g
		}
	}
	b.ResetTimer()
	switch mode {
	case "sync":
		var started atomic.Int64
		var wg sync.WaitGroup
		for i, h := range handles {
			wg.Add(1)
			go func(i int, h *setagreement.Handle[int]) {
				defer wg.Done()
				for round := 0; started.Add(1) <= int64(b.N); round++ {
					if _, err := h.Propose(ctx, 1000*round+i); err != nil {
						b.Errorf("proposer %d: %v", i, err)
						return
					}
				}
			}(i, h)
		}
		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		for sampling := true; sampling; {
			select {
			case <-done:
				sampling = false
			case <-time.After(time.Millisecond):
				sample()
			}
		}
	case "async":
		outstanding := make([]*setagreement.Future[int], len(handles))
		rounds := make([]int, len(handles))
		for i, h := range handles {
			outstanding[i] = h.ProposeAsync(ctx, i)
		}
		for completed := 0; completed < b.N; {
			progressed := false
			for i, f := range outstanding {
				if !f.Resolved() {
					continue
				}
				if _, err := f.Value(); err != nil {
					b.Fatalf("future %d: %v", i, err)
				}
				completed++
				progressed = true
				rounds[i]++
				outstanding[i] = handles[i].ProposeAsync(ctx, 1000*rounds[i]+i)
			}
			sample()
			if !progressed {
				runtime.Gosched()
			}
		}
		b.StopTimer()
		// Drain the tail so no proposal outlives the benchmark.
		for i, f := range outstanding {
			if _, err := f.Value(); err != nil {
				b.Fatalf("drain %d: %v", i, err)
			}
		}
	}
	b.ReportMetric(float64(maxG), "max-goroutines")
}

// BenchmarkProposeAsyncSolo measures the async path's fixed overhead where
// the engine has nothing to multiplex: one uncontended proposal, submitted
// and awaited. The delta against BenchmarkProposeSolo is the price of the
// future, the engine handoff and the resumable-machine bookkeeping.
func BenchmarkProposeAsyncSolo(b *testing.B) {
	for _, be := range []setagreement.MemoryBackend{setagreement.BackendLockFree, setagreement.BackendLocked} {
		b.Run(fmt.Sprintf("backend=%v", be), func(b *testing.B) {
			r, err := setagreement.NewRepeated[int](2, 1, setagreement.WithMemoryBackend(be))
			if err != nil {
				b.Fatalf("NewRepeated: %v", err)
			}
			h, err := r.Proc(0)
			if err != nil {
				b.Fatalf("Proc: %v", err)
			}
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := h.ProposeAsync(ctx, i).Value(); err != nil {
					b.Fatalf("round %d: %v", i, err)
				}
			}
		})
	}
}
