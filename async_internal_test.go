package setagreement

import (
	"context"
	"errors"
	"fmt"
	goruntime "runtime"
	"testing"
	"time"

	"setagreement/internal/shmem"
)

// newParkedAsync builds the deterministic parked state the whitebox tests
// drive: a repeated-agreement object over a register-implemented snapshot
// (solo detection is conservative there — every yield is treated as
// contended), an hour-long cap and a yield before every operation, so a
// ProposeAsync parks at its first yield point, before touching shared
// memory, and stays parked until something wakes it.
func newParkedAsync(t *testing.T, ctx context.Context) (*Repeated[int], *Handle[int], *Future[int]) {
	t.Helper()
	r, err := NewRepeated[int](2, 1,
		WithSnapshot(SnapshotWaitFree),
		WithWaitStrategy(WaitNotify),
		WithBackoff(time.Hour, time.Hour, 1))
	if err != nil {
		t.Fatalf("NewRepeated: %v", err)
	}
	h, err := r.Proc(0)
	if err != nil {
		t.Fatalf("Proc: %v", err)
	}
	fut := h.ProposeAsync(ctx, 41)
	awaitEngineParked(t, r, 1)
	if fut.Resolved() {
		_, err := fut.Value()
		t.Fatalf("proposal resolved (%v) instead of parking", err)
	}
	return r, h, fut
}

func awaitEngineParked(t *testing.T, r *Repeated[int], want int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if e := r.rt.eng.peek(); e != nil && e.Parked() >= want {
			return
		}
		if time.Now().After(deadline) {
			var have int64
			if e := r.rt.eng.peek(); e != nil {
				have = e.Parked()
			}
			t.Fatalf("engine never reached %d parked proposals (have %d)", want, have)
		}
		goruntime.Gosched()
	}
}

// TestAsyncCancelWhileParked is the satellite's core: cancelling a parked
// proposal's context must resolve its future promptly with the context
// error, poison the handle exactly like cancelling a blocking Propose, and
// leave no wait registered on the object's memory.
func TestAsyncCancelWhileParked(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	r, h, fut := newParkedAsync(t, ctx)
	nt, ok := r.rt.mem.(shmem.Notifier)
	if !ok {
		t.Fatalf("runtime memory %T does not expose shmem.Notifier", r.rt.mem)
	}
	if got := nt.Waiters(); got != 1 {
		t.Fatalf("Waiters() = %d with one parked proposal, want 1", got)
	}
	start := time.Now()
	cancel()
	select {
	case <-fut.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("cancellation did not resolve the parked proposal (its cap is an hour)")
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
	if _, err := fut.Value(); !errors.Is(err, context.Canceled) {
		t.Fatalf("future resolved with %v, want context.Canceled", err)
	}
	if got := nt.Waiters(); got != 0 {
		t.Fatalf("Waiters() = %d after cancellation, want 0 (park registration leaked)", got)
	}
	if _, err := h.Propose(context.Background(), 9); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("Propose after cancelled async = %v, want ErrPoisoned", err)
	}
	if e := r.rt.eng.peek(); e.InFlight() != 0 {
		t.Fatalf("engine InFlight = %d after resolution", e.InFlight())
	}
}

// TestAsyncEngineShutdownWithParked: Close on an engine holding parked
// proposals resolves their futures with ErrEngineClosed, poisons the
// handles (their half-written state cannot be resumed) and revokes every
// wake registration.
func TestAsyncEngineShutdownWithParked(t *testing.T) {
	ctx := context.Background()
	r, h, fut := newParkedAsync(t, ctx)
	nt, ok := r.rt.mem.(shmem.Notifier)
	if !ok {
		t.Fatalf("runtime memory %T does not expose shmem.Notifier", r.rt.mem)
	}
	r.rt.eng.get().Close()
	select {
	case <-fut.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("engine Close did not resolve the parked proposal")
	}
	if _, err := fut.Value(); !errors.Is(err, ErrEngineClosed) {
		t.Fatalf("future resolved with %v, want ErrEngineClosed", err)
	}
	if got := nt.Waiters(); got != 0 {
		t.Fatalf("Waiters() = %d after engine shutdown, want 0", got)
	}
	if _, err := h.Propose(ctx, 9); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("Propose after engine shutdown = %v, want ErrPoisoned", err)
	}
	// A poisoned handle's later ProposeAsync fails the same way, through
	// the future, without reaching the closed engine.
	if _, err := h.ProposeAsync(ctx, 9).Value(); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("ProposeAsync after poisoning = %v, want ErrPoisoned", err)
	}
}

// TestAsyncWakeOnForeignWrite: every memory change resumes a parked
// proposal — the event-driven core, now without a goroutine waiting for
// it — and a resumed proposal takes its pending operation before it may
// park again (the woken-waiter-proceeds rule), so a sequence of wakes
// drives a parked proposal all the way to its solo decision. The wakes
// here are whitebox pokes: re-writing a register with its own value
// advances the change version without changing memory contents, and each
// poke happens only while the proposal is provably parked (the memory is
// quiescent then, so read-rewrite cannot clobber a concurrent write).
func TestAsyncWakeOnForeignWrite(t *testing.T) {
	ctx := context.Background()
	r, h, fut := newParkedAsync(t, ctx)
	nt, ok := r.rt.mem.(shmem.Notifier)
	if !ok {
		t.Fatalf("runtime memory %T does not expose shmem.Notifier", r.rt.mem)
	}
	deadline := time.Now().Add(30 * time.Second)
	pokes := 0
	for !fut.Resolved() {
		if time.Now().After(deadline) {
			t.Fatalf("proposal not driven to completion after %d wakes: %+v", pokes, h.Stats())
		}
		if nt.Waiters() == 0 {
			goruntime.Gosched() // the proposal is between park and wake
			continue
		}
		r.rt.mem.Write(0, r.rt.mem.Read(0))
		pokes++
	}
	got, err := fut.Value()
	if err != nil {
		t.Fatalf("future resolved with %v after %d wakes", err, pokes)
	}
	if got != 41 {
		t.Fatalf("solo async decided %d, want its own proposal 41", got)
	}
	s := h.Stats()
	if s.Wakeups < 1 {
		t.Fatalf("parked proposal decided with %d wakeups", s.Wakeups)
	}
	if s.WaitTime <= 0 {
		t.Fatalf("WaitTime = %v after real parks", s.WaitTime)
	}
	// The repeated handle is free again after an async decision. (A sync
	// Propose would block under this test's hour-long conservative waits;
	// the lifecycle word is what matters here.)
	if st := h.st.Load(); st != stateFree {
		t.Fatalf("handle state = %d after async decision, want free", st)
	}
}

// TestArenaAsyncGauges: ArenaStats surfaces the engine gauges and the
// per-object Notifier.Waiters roll-up while async proposals are parked,
// and the gauges return to zero once they resolve.
func TestArenaAsyncGauges(t *testing.T) {
	ar, err := NewArena[int](2, 1, WithObjectOptions(
		WithSnapshot(SnapshotWaitFree),
		WithWaitStrategy(WaitNotify),
		WithBackoff(time.Hour, time.Hour, 1)))
	if err != nil {
		t.Fatalf("NewArena: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const keys = 8
	futs := make([]*Future[int], keys)
	for i := 0; i < keys; i++ {
		h, err := ar.Object(key(i)).Proc(0)
		if err != nil {
			t.Fatalf("Proc: %v", err)
		}
		futs[i] = h.ProposeAsync(ctx, i)
	}
	deadline := time.Now().Add(10 * time.Second)
	for ar.Stats().AsyncParked < keys {
		if time.Now().After(deadline) {
			t.Fatalf("arena never parked all proposals: %+v", ar.Stats())
		}
		goruntime.Gosched()
	}
	s := ar.Stats()
	if s.AsyncInFlight != keys {
		t.Fatalf("AsyncInFlight = %d, want %d", s.AsyncInFlight, keys)
	}
	if s.NotifyWaiters != keys {
		t.Fatalf("NotifyWaiters = %d with %d parked proposals on %d objects, want %d",
			s.NotifyWaiters, keys, keys, keys)
	}
	cancel()
	for _, fut := range futs {
		if err := fut.Err(); !errors.Is(err, context.Canceled) {
			t.Fatalf("future resolved with %v, want context.Canceled", err)
		}
	}
	deadline = time.Now().Add(10 * time.Second)
	for {
		s = ar.Stats()
		if s.AsyncInFlight == 0 && s.AsyncParked == 0 && s.NotifyWaiters == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("gauges did not return to zero: %+v", s)
		}
		goruntime.Gosched()
	}
	if s.Proposes != keys {
		t.Fatalf("arena roll-up Proposes = %d, want %d (async proposes must count)", s.Proposes, keys)
	}
}

// TestAsyncGoroutineEconomy is the acceptance bar in test form: hundreds
// of stalled proposals, parked across hundreds of arena objects, pin no
// goroutines — where the synchronous equivalent holds one blocked
// goroutine each (BenchmarkAsyncInFlight measures that side by side).
func TestAsyncGoroutineEconomy(t *testing.T) {
	const stalled = 512
	ar, err := NewArena[int](2, 1, WithObjectOptions(
		WithSnapshot(SnapshotWaitFree),
		WithWaitStrategy(WaitNotify),
		WithBackoff(time.Hour, time.Hour, 1)))
	if err != nil {
		t.Fatalf("NewArena: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	baseline := goruntime.NumGoroutine()
	futs := make([]*Future[int], stalled)
	for i := 0; i < stalled; i++ {
		h, err := ar.Object(key(i)).Proc(0)
		if err != nil {
			t.Fatalf("Proc: %v", err)
		}
		futs[i] = h.ProposeAsync(ctx, i)
	}
	deadline := time.Now().Add(30 * time.Second)
	for ar.Stats().AsyncParked < stalled {
		if time.Now().After(deadline) {
			t.Fatalf("arena never parked all %d proposals: %+v", stalled, ar.Stats())
		}
		goruntime.Gosched()
	}
	// All 512 proposals are stalled. The sync equivalent would hold 512
	// goroutines blocked in notify-waits; the acceptance bar is ≥10× fewer.
	budget := baseline + stalled/10
	if got := goruntime.NumGoroutine(); got > budget {
		t.Fatalf("NumGoroutine = %d with %d parked proposals (baseline %d); want ≤ %d — parked proposals are pinning goroutines",
			got, stalled, baseline, budget)
	}
	cancel()
	for _, fut := range futs {
		if err := fut.Err(); !errors.Is(err, context.Canceled) {
			t.Fatalf("future resolved with %v, want context.Canceled", err)
		}
	}
}

func key(i int) string { return fmt.Sprintf("key-%04d", i) }
