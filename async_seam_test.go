package setagreement

import (
	"context"
	"errors"
	goruntime "runtime"
	"sync"
	"testing"
	"time"

	"setagreement/internal/engine"
	"setagreement/internal/shmem"
)

// TestAsyncParkPublishAtEveryBoundary drives a real ProposeAsync while a
// publish lands at each boundary of the engine's park protocol in turn —
// after the parked-set registration, after the wake sources arm, and after
// the final commit CAS. Whatever the interleaving, the proposal must keep
// being woken (no lost wakeup at any boundary), decide its own value solo,
// and leave no wake registration behind. The internal engine test checks
// the same boundaries against a fake proposal; this is the end-to-end form
// over the full Handle/guard/algorithm stack.
func TestAsyncParkPublishAtEveryBoundary(t *testing.T) {
	cases := []struct {
		stage engine.ParkStage
		// wantStage must appear in the observed trace: publishes before the
		// commit CAS force the abandoned path; publishes after it wake a
		// committed park.
		wantStage engine.ParkStage
	}{
		{engine.ParkRegistered, engine.ParkAbandoned},
		{engine.ParkArmed, engine.ParkAbandoned},
		{engine.ParkCommitted, engine.ParkCommitted},
	}
	for _, tc := range cases {
		t.Run(tc.stage.String(), func(t *testing.T) {
			r, err := NewRepeated[int](2, 1,
				WithSnapshot(SnapshotWaitFree),
				WithWaitStrategy(WaitNotify),
				WithBackoff(time.Hour, time.Hour, 1))
			if err != nil {
				t.Fatalf("NewRepeated: %v", err)
			}
			h, err := r.Proc(0)
			if err != nil {
				t.Fatalf("Proc: %v", err)
			}
			nt, ok := r.rt.mem.(shmem.Notifier)
			if !ok {
				t.Fatalf("runtime memory %T does not expose shmem.Notifier", r.rt.mem)
			}

			// The hook publishes at the target boundary of EVERY park, so
			// each re-park is immediately contested at the same point and
			// the proposal is driven through the boundary repeatedly until
			// it decides. The poke is safe here: the only proposal is inside
			// park() when the hook runs, so nothing else writes concurrently.
			var mu sync.Mutex
			var trace []engine.ParkStage
			eng := r.rt.eng.get()
			eng.SetParkHook(func(s engine.ParkStage) {
				mu.Lock()
				trace = append(trace, s)
				mu.Unlock()
				if s == tc.stage {
					r.rt.mem.Write(0, r.rt.mem.Read(0))
				}
			})

			fut := h.ProposeAsync(context.Background(), 41)
			select {
			case <-fut.Done():
			case <-time.After(30 * time.Second):
				t.Fatalf("proposal not driven to decision by publishes at %v: %+v", tc.stage, h.Stats())
			}
			got, err := fut.Value()
			if err != nil {
				t.Fatalf("future resolved with %v", err)
			}
			if got != 41 {
				t.Fatalf("solo async decided %d, want its own proposal 41", got)
			}

			mu.Lock()
			sawWant := false
			for _, s := range trace {
				if s == tc.wantStage {
					sawWant = true
				}
			}
			n := len(trace)
			mu.Unlock()
			if n == 0 {
				t.Fatal("proposal decided without parking; the boundary was never exercised")
			}
			if !sawWant {
				t.Fatalf("publish at %v never produced a %v transition (trace length %d)", tc.stage, tc.wantStage, n)
			}

			// Every wake registration and in-flight count drains.
			deadline := time.Now().Add(10 * time.Second)
			for nt.Waiters() != 0 || eng.InFlight() != 0 {
				if time.Now().After(deadline) {
					t.Fatalf("Waiters() = %d, InFlight = %d after decision, want 0/0", nt.Waiters(), eng.InFlight())
				}
				goruntime.Gosched()
			}
		})
	}
}

// swallowNotifier delegates to a real notifier but never delivers wakes:
// RegisterWake records the registration and drops fn, modeling a wake
// publish that is never delivered to the parked proposal (a delayed- or
// lost-visibility wake). Revocation still works, so the engine's source
// cleanup is observable.
type swallowNotifier struct {
	inner shmem.Notifier

	mu         sync.Mutex
	registered int // total RegisterWake calls
	pending    int // registrations neither fired (never) nor revoked
}

func (s *swallowNotifier) Version() uint64 { return s.inner.Version() }

func (s *swallowNotifier) AwaitChange(ctx context.Context, v uint64) (int, error) {
	return s.inner.AwaitChange(ctx, v)
}

func (s *swallowNotifier) RegisterWake(v uint64, fn func()) (cancel func()) {
	s.mu.Lock()
	s.registered++
	s.pending++
	s.mu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			s.mu.Lock()
			s.pending--
			s.mu.Unlock()
		})
	}
}

func (s *swallowNotifier) Waiters() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return int64(s.pending)
}

func (s *swallowNotifier) counts() (registered, pending int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.registered, s.pending
}

// TestAsyncCancelParkedUndeliveredWake cancels a parked proposal whose
// wake publish was never delivered: the proposal parks through a notifier
// that swallows its wake registration, a publish advances the real memory
// (so by version the proposal "should" wake, but the notification is
// lost), and then the context is cancelled. Cancellation must not depend
// on the wake path: the future must resolve with the context error, the
// handle must poison, and the engine must revoke the swallowed
// registration on its way out.
func TestAsyncCancelParkedUndeliveredWake(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	r, err := NewRepeated[int](2, 1,
		WithSnapshot(SnapshotWaitFree),
		WithWaitStrategy(WaitNotify),
		WithBackoff(time.Hour, time.Hour, 1))
	if err != nil {
		t.Fatalf("NewRepeated: %v", err)
	}
	h, err := r.Proc(0)
	if err != nil {
		t.Fatalf("Proc: %v", err)
	}
	if h.guard.notifier == nil {
		t.Fatalf("guard has no notifier on %T", r.rt.mem)
	}
	sw := &swallowNotifier{inner: h.guard.notifier}
	h.guard.notifier = sw

	fut := h.ProposeAsync(ctx, 41)
	awaitEngineParked(t, r, 1)
	if reg, pend := sw.counts(); reg != 1 || pend != 1 {
		t.Fatalf("park registered %d wakes (%d pending), want 1/1 through the swallowing notifier", reg, pend)
	}

	// The wake publish: the real memory's version advances, but the
	// proposal's registration is swallowed — the wake is never delivered,
	// so the proposal stays parked (its timeout cap is an hour).
	r.rt.mem.Write(0, r.rt.mem.Read(0))
	time.Sleep(50 * time.Millisecond)
	if fut.Resolved() {
		_, err := fut.Value()
		t.Fatalf("proposal resolved (%v) despite its wake never being delivered", err)
	}

	cancel()
	select {
	case <-fut.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("cancellation did not resolve the proposal with an undelivered wake")
	}
	if _, err := fut.Value(); !errors.Is(err, context.Canceled) {
		t.Fatalf("future resolved with %v, want context.Canceled", err)
	}
	if _, err := h.Propose(context.Background(), 9); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("Propose after cancelled async = %v, want ErrPoisoned", err)
	}

	// The engine revokes the swallowed registration as it resumes the
	// cancelled task: no waiter may leak even when the wake never fired.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, pend := sw.counts(); pend == 0 {
			break
		}
		if time.Now().After(deadline) {
			_, pend := sw.counts()
			t.Fatalf("swallowed wake registration never revoked (%d pending)", pend)
		}
		goruntime.Gosched()
	}
	if e := r.rt.eng.peek(); e.InFlight() != 0 {
		t.Fatalf("engine InFlight = %d after resolution", e.InFlight())
	}
}
