package setagreement_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"setagreement"
)

// TestProposeAsyncAgreement drives contended k-set agreement entirely
// through futures on both memory backends — the async face of
// TestWaitStrategiesAgree — and checks the same contract: every proposal
// resolves, at most k distinct values are decided, and every decision was
// somebody's proposal.
func TestProposeAsyncAgreement(t *testing.T) {
	const n, k = 6, 2
	for _, be := range []setagreement.MemoryBackend{setagreement.BackendLockFree, setagreement.BackendLocked} {
		t.Run(be.String(), func(t *testing.T) {
			a, err := setagreement.New[int](n, k,
				setagreement.WithMemoryBackend(be),
				setagreement.WithWaitStrategy(setagreement.WaitNotify),
				setagreement.WithBackoff(50*time.Microsecond, 2*time.Millisecond, 32),
			)
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			futs := make([]*setagreement.Future[int], n)
			for id := 0; id < n; id++ {
				h, err := a.Proc(id)
				if err != nil {
					t.Fatalf("Proc(%d): %v", id, err)
				}
				futs[id] = h.ProposeAsync(ctx, 100+id)
			}
			distinct := make(map[int]bool)
			for id, fut := range futs {
				d, err := fut.Value()
				if err != nil {
					t.Fatalf("proposal %d: %v", id, err)
				}
				if d < 100 || d >= 100+n {
					t.Fatalf("process %d decided %d, not a proposed value", id, d)
				}
				distinct[d] = true
			}
			if len(distinct) > k {
				t.Fatalf("%d distinct decisions, want ≤ %d", len(distinct), k)
			}
		})
	}
}

// TestMixedSyncAsyncAgreement splits one contended object between blocking
// Proposes and futures: the two drivers run the same machine over the same
// memory, so the agreement contract must hold across the mix — on both
// backends.
func TestMixedSyncAsyncAgreement(t *testing.T) {
	const n, k = 6, 2
	for _, be := range []setagreement.MemoryBackend{setagreement.BackendLockFree, setagreement.BackendLocked} {
		t.Run(be.String(), func(t *testing.T) {
			r, err := setagreement.NewRepeated[int](n, k,
				setagreement.WithMemoryBackend(be),
				setagreement.WithWaitStrategy(setagreement.WaitNotify),
				setagreement.WithBackoff(50*time.Microsecond, 2*time.Millisecond, 32),
			)
			if err != nil {
				t.Fatalf("NewRepeated: %v", err)
			}
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			const rounds = 3
			decisions := make([][]int, n) // decisions[id][round]
			var wg sync.WaitGroup
			for id := 0; id < n; id++ {
				h, err := r.Proc(id)
				if err != nil {
					t.Fatalf("Proc(%d): %v", id, err)
				}
				decisions[id] = make([]int, rounds)
				wg.Add(1)
				go func(id int, h *setagreement.Handle[int]) {
					defer wg.Done()
					for round := 0; round < rounds; round++ {
						v := 1000*round + 100 + id
						var d int
						var err error
						if id%2 == 0 {
							d, err = h.Propose(ctx, v)
						} else {
							d, err = h.ProposeAsync(ctx, v).Value()
						}
						if err != nil {
							t.Errorf("proc %d round %d: %v", id, round, err)
							return
						}
						decisions[id][round] = d
					}
				}(id, h)
			}
			wg.Wait()
			if t.Failed() {
				return
			}
			for round := 0; round < rounds; round++ {
				distinct := make(map[int]bool)
				for id := 0; id < n; id++ {
					d := decisions[id][round]
					if d/1000 != round || d%1000 < 100 || d%1000 >= 100+n {
						t.Fatalf("round %d: process %d decided %d, not a round-%d proposal", round, id, d, round)
					}
					distinct[d] = true
				}
				if len(distinct) > k {
					t.Fatalf("round %d: %d distinct decisions, want ≤ %d", round, len(distinct), k)
				}
			}
		})
	}
}

// TestProposeAsyncLifecycle pins the handle lifecycle through the async
// entry point: in-flight exclusion, one-shot exhaustion, release, and
// cancel-before-start poisoning.
func TestProposeAsyncLifecycle(t *testing.T) {
	ctx := context.Background()

	t.Run("InUseWhileAsyncInFlight", func(t *testing.T) {
		// An hour-long blind backoff keeps the async proposal in flight
		// (parked on its timer) while the lifecycle is probed.
		r, err := setagreement.NewRepeated[int](2, 1,
			setagreement.WithBackoff(time.Hour, time.Hour, 1),
			setagreement.WithSnapshot(setagreement.SnapshotWaitFree))
		if err != nil {
			t.Fatalf("NewRepeated: %v", err)
		}
		h, err := r.Proc(0)
		if err != nil {
			t.Fatalf("Proc: %v", err)
		}
		cctx, cancel := context.WithCancel(ctx)
		defer cancel()
		fut := h.ProposeAsync(cctx, 1)
		if fut.Resolved() {
			_, err := fut.Value()
			t.Fatalf("hour-capped proposal resolved immediately: %v", err)
		}
		if _, err := h.Propose(ctx, 2); !errors.Is(err, setagreement.ErrInUse) {
			t.Fatalf("sync Propose during async = %v, want ErrInUse", err)
		}
		if _, err := h.ProposeAsync(ctx, 3).Value(); !errors.Is(err, setagreement.ErrInUse) {
			t.Fatalf("second ProposeAsync during async = %v, want ErrInUse", err)
		}
		if err := h.Release(); !errors.Is(err, setagreement.ErrInUse) {
			t.Fatalf("Release during async = %v, want ErrInUse", err)
		}
		cancel()
		if _, err := fut.Value(); !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled in-flight async = %v, want context.Canceled", err)
		}
	})

	t.Run("OneShotExhaustion", func(t *testing.T) {
		a, err := setagreement.New[string](2, 1)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		h, err := a.Proc(0)
		if err != nil {
			t.Fatalf("Proc: %v", err)
		}
		d, err := h.ProposeAsync(ctx, "solo").Value()
		if err != nil {
			t.Fatalf("async one-shot: %v", err)
		}
		if d != "solo" {
			t.Fatalf("solo async decided %q", d)
		}
		if _, err := h.ProposeAsync(ctx, "again").Value(); !errors.Is(err, setagreement.ErrAlreadyProposed) {
			t.Fatalf("second async on one-shot = %v, want ErrAlreadyProposed", err)
		}
		if _, err := h.Propose(ctx, "again"); !errors.Is(err, setagreement.ErrAlreadyProposed) {
			t.Fatalf("sync after async decision = %v, want ErrAlreadyProposed", err)
		}
	})

	t.Run("Released", func(t *testing.T) {
		ar, err := setagreement.NewArena[int](2, 1)
		if err != nil {
			t.Fatalf("NewArena: %v", err)
		}
		h, err := ar.Object("lease").Proc(0)
		if err != nil {
			t.Fatalf("Proc: %v", err)
		}
		if err := h.Release(); err != nil {
			t.Fatalf("Release: %v", err)
		}
		if _, err := h.ProposeAsync(ctx, 1).Value(); !errors.Is(err, setagreement.ErrReleased) {
			t.Fatalf("ProposeAsync after Release = %v, want ErrReleased", err)
		}
	})

	t.Run("CancelBeforeStart", func(t *testing.T) {
		r, err := setagreement.NewRepeated[int](2, 1)
		if err != nil {
			t.Fatalf("NewRepeated: %v", err)
		}
		h, err := r.Proc(0)
		if err != nil {
			t.Fatalf("Proc: %v", err)
		}
		dead, cancel := context.WithCancel(ctx)
		cancel()
		fut := h.ProposeAsync(dead, 1)
		if !fut.Resolved() {
			t.Fatal("dead-context submission did not resolve immediately")
		}
		if _, err := fut.Value(); !errors.Is(err, context.Canceled) {
			t.Fatalf("dead-context async = %v, want context.Canceled", err)
		}
		// Poisoned exactly like a cancelled sync Propose.
		if _, err := h.Propose(ctx, 2); !errors.Is(err, setagreement.ErrPoisoned) {
			t.Fatalf("Propose after cancelled async = %v, want ErrPoisoned", err)
		}
	})
}

// TestFutureValueIdempotent: Done, Value and Err agree and repeat forever,
// from multiple goroutines.
func TestFutureValueIdempotent(t *testing.T) {
	a, err := setagreement.New[int](2, 1)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	h, err := a.Proc(0)
	if err != nil {
		t.Fatalf("Proc: %v", err)
	}
	fut := h.ProposeAsync(context.Background(), 7)
	<-fut.Done()
	if !fut.Resolved() {
		t.Fatal("Resolved() = false after Done closed")
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				d, err := fut.Value()
				if d != 7 || err != nil {
					t.Errorf("Value() = (%d, %v), want (7, nil)", d, err)
					return
				}
				if err := fut.Err(); err != nil {
					t.Errorf("Err() = %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestNotifySoloAsyncNeverParks is the async face of "notify never blocks
// a solo process": with exact solo detection (the atomic runtime), an
// hour-long cap and a yield before every operation, a lone ProposeAsync
// still resolves immediately — its own writes are not contention, so the
// engine never parks it.
func TestNotifySoloAsyncNeverParks(t *testing.T) {
	r, err := setagreement.NewRepeated[int](2, 1,
		setagreement.WithWaitStrategy(setagreement.WaitNotify),
		setagreement.WithBackoff(time.Hour, time.Hour, 1))
	if err != nil {
		t.Fatalf("NewRepeated: %v", err)
	}
	h, err := r.Proc(0)
	if err != nil {
		t.Fatalf("Proc: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	for i := 0; i < 5; i++ {
		if _, err := h.ProposeAsync(ctx, i).Value(); err != nil {
			t.Fatalf("solo async propose %d did not run to completion: %v", i, err)
		}
	}
	s := h.Stats()
	if s.Wakeups != 0 {
		t.Fatalf("solo async proposer recorded %d wakeups", s.Wakeups)
	}
	if s.WaitTime != 0 {
		t.Fatalf("solo async proposer was parked for %v", s.WaitTime)
	}
}

// TestAsyncStatsMonitorConsistency is the Stats race-surface satellite: a
// monitor hammers Handle.Stats while async and sync proposals run, and
// every cumulative counter must read monotone non-decreasing across
// snapshots (each field is an exact atomic; pairs are ordered WaitTime
// before Wakeups). Run under -race in CI's wait-subsystem step.
func TestAsyncStatsMonitorConsistency(t *testing.T) {
	const n = 4
	r, err := setagreement.NewRepeated[int](n, 1,
		setagreement.WithWaitStrategy(setagreement.WaitNotify),
		setagreement.WithBackoff(50*time.Microsecond, time.Millisecond, 8))
	if err != nil {
		t.Fatalf("NewRepeated: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	handles := make([]*setagreement.Handle[int], n)
	for id := range handles {
		if handles[id], err = r.Proc(id); err != nil {
			t.Fatalf("Proc(%d): %v", id, err)
		}
	}
	stop := make(chan struct{})
	var monWG sync.WaitGroup
	monWG.Add(1)
	go func() {
		defer monWG.Done()
		prev := make([]setagreement.Stats, n)
		for {
			select {
			case <-stop:
				return
			default:
			}
			for i, h := range handles {
				s := h.Stats()
				p := prev[i]
				if s.Proposes < p.Proposes || s.Steps < p.Steps || s.Scans < p.Scans ||
					s.WaitTime < p.WaitTime || s.Wakeups < p.Wakeups ||
					s.SpuriousWakeups < p.SpuriousWakeups || s.MemSteps < p.MemSteps ||
					s.CASRetries < p.CASRetries {
					t.Errorf("stats went backwards on handle %d:\n  was %+v\n  now %+v", i, p, s)
					return
				}
				prev[i] = s
			}
		}
	}()
	var wg sync.WaitGroup
	for id, h := range handles {
		wg.Add(1)
		go func(id int, h *setagreement.Handle[int]) {
			defer wg.Done()
			for round := 0; round < 20; round++ {
				var err error
				if round%2 == 0 {
					_, err = h.ProposeAsync(ctx, 100*round+id).Value()
				} else {
					_, err = h.Propose(ctx, 100*round+id)
				}
				if err != nil {
					t.Errorf("proc %d round %d: %v", id, round, err)
					return
				}
			}
		}(id, h)
	}
	wg.Wait()
	close(stop)
	monWG.Wait()
}

// TestArenaAsyncFanout: one goroutine drives many keyed agreements to
// completion through the arena's shared engine — the serving shape
// examples/fanout demonstrates — and the arena roll-up accounts for all
// of them.
func TestArenaAsyncFanout(t *testing.T) {
	const keys = 100
	ar, err := setagreement.NewArena[string](4, 1,
		setagreement.WithObjectOptions(setagreement.WithWaitStrategy(setagreement.WaitNotify)))
	if err != nil {
		t.Fatalf("NewArena: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	futs := make(map[string]*setagreement.Future[string], keys)
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("order-%03d", i)
		h, err := ar.Object(k).Proc(0)
		if err != nil {
			t.Fatalf("Proc(%s): %v", k, err)
		}
		futs[k] = h.ProposeAsync(ctx, "winner:"+k)
	}
	for k, fut := range futs {
		d, err := fut.Value()
		if err != nil {
			t.Fatalf("key %s: %v", k, err)
		}
		if d != "winner:"+k {
			t.Fatalf("key %s decided %q", k, d)
		}
	}
	s := ar.Stats()
	if s.Proposes != keys {
		t.Fatalf("arena Proposes = %d after %d async proposals, want %d", s.Proposes, keys, keys)
	}
	if s.AsyncInFlight != 0 || s.AsyncParked != 0 {
		t.Fatalf("gauges nonzero after completion: %+v", s)
	}
}
