package setagreement

import (
	"context"
	"fmt"

	"setagreement/internal/engine"
)

// BatchOp is one proposal of an arena batch: process Proc of the object
// named Key proposes Value.
type BatchOp[T comparable] struct {
	Key   string
	Proc  int
	Value T
}

// Batch is the submit-side half of one SubmitBatch/SubmitAll call: the
// futures of every proposal in the batch, index-aligned with the submitted
// ops. Collect results either directly (Future(i).Value), in bulk (Wait),
// or — the intended shape at scale — by registering the whole batch with a
// CompletionQueue and draining completions in the order they resolve.
type Batch[T comparable] struct {
	futs    []*Future[T]
	handles []*Handle[T]
}

// Len returns the number of proposals in the batch.
func (b *Batch[T]) Len() int { return len(b.futs) }

// Future returns proposal i's future. Proposals that failed before reaching
// the engine (a claim error, a dead context) have already-resolved futures
// carrying the same error the equivalent ProposeAsync would have returned.
func (b *Batch[T]) Future(i int) *Future[T] { return b.futs[i] }

// Handle returns the handle proposal i was submitted through — for
// Arena.SubmitBatch, the handle it claimed for op i (nil when the claim
// itself failed; the future then carries the error). Useful for follow-up
// proposals on repeated objects and for Release.
func (b *Batch[T]) Handle(i int) *Handle[T] { return b.handles[i] }

// Register attaches every future of the batch to q, tagged with its index,
// so one collector can drain the batch in completion order. Registrations
// are slab-allocated: one allocation for the whole batch. Returns the first
// registration error (a closed queue, a future already registered
// elsewhere) and stops there; earlier registrations stand.
func (b *Batch[T]) Register(q *CompletionQueue[T]) error {
	regs := make([]cqReg[T], len(b.futs))
	for i, f := range b.futs {
		regs[i] = cqReg[T]{q: q, tag: i}
		if err := q.register(f, &regs[i]); err != nil {
			return err
		}
	}
	return nil
}

// Wait blocks until every proposal in the batch has resolved, or ctx ends
// (returning ctx.Err() with the rest still in flight). A nil ctx waits
// indefinitely. Wait returns nil once all futures are resolved, whatever
// their individual outcomes — inspect Future(i) for per-proposal errors.
func (b *Batch[T]) Wait(ctx context.Context) error {
	var ctxDone <-chan struct{}
	if ctx != nil {
		ctxDone = ctx.Done()
	}
	for _, f := range b.futs {
		if f.Resolved() {
			continue
		}
		select {
		case <-f.Done():
		case <-ctxDone:
			return ctx.Err()
		}
	}
	return nil
}

// SubmitBatch claims a handle and submits a proposal for every op, handing
// the whole batch to the arena's engine through one run-queue transition —
// the amortized counterpart of looping ProposeAsync over Object(...).Proc(...).
// Futures, proposal wrappers and engine tasks are slab-allocated per batch,
// so the submit-side cost per proposal drops well below the looped path's
// at fan-out batch sizes (see BenchmarkSubmitBatch).
//
// Per-op failures never fail the batch: an op whose claim fails (an already
// claimed process id, an evicted generation, a dead context) gets an
// already-resolved future carrying that error, exactly as ProposeAsync
// would return, and the rest of the batch proceeds. Note that Proc claims
// are per object generation: SubmitBatch is the fan-out entry point for
// fresh keys, while repeated proposals over retained handles go through
// SubmitAll.
func (ar *Arena[T]) SubmitBatch(ctx context.Context, ops []BatchOp[T]) (*Batch[T], error) {
	b := &Batch[T]{}
	if len(ops) == 0 {
		return b, nil
	}
	futs := make([]Future[T], len(ops))
	aps := make([]asyncProposal[T], len(ops))
	b.futs = make([]*Future[T], len(ops))
	b.handles = make([]*Handle[T], len(ops))
	props := make([]engine.Proposal, 0, len(ops))
	// Consecutive ops on one key (the natural fan-out shape: all contenders
	// of a key submitted together) share a single arena lookup.
	var lastKey string
	var lastObj *ArenaObject[T]
	for i := range ops {
		fut := &futs[i]
		b.futs[i] = fut
		obj := lastObj
		if obj == nil || ops[i].Key != lastKey {
			obj = ar.Object(ops[i].Key)
			lastKey, lastObj = ops[i].Key, obj
		}
		h, err := obj.Proc(ops[i].Proc)
		if err != nil {
			// No handle means no guard to record through; trace the claim
			// failure via the arena's collector directly (nil-safe no-op
			// when observability is off).
			ar.opts.obs.StartSpan(ops[i].Key, int32(ops[i].Proc)).Failed()
			var zero T
			fut.resolve(zero, err)
			continue
		}
		b.handles[i] = h
		if h.prepareAsync(ctx, fut, &aps[i], ops[i].Value) {
			props = append(props, &aps[i])
		}
	}
	if len(props) > 0 {
		ar.eng.get().SubmitBatch(props)
	}
	return b, nil
}

// engineBatch groups one SubmitAll's proposals by their target engine.
// Handles of one arena (or one standalone object) share an engine, so the
// common case is a single group submitted in one SubmitBatch.
type engineBatch struct {
	er    *engineRef
	props []engine.Proposal
}

// SubmitAll submits vals[i] through handles[i] for the whole slice and
// returns the batch of futures — the amortized counterpart of looping
// ProposeAsync over retained handles. Handles sharing an engine (all
// handles of one arena, or of one standalone object) are handed to it as
// one batch through a single run-queue transition; a mixed slice is grouped
// by engine and each group batched. Lifecycle is exactly ProposeAsync's,
// per handle, delivered through the futures: a handle that cannot claim
// (ErrInUse, ErrPoisoned, ...) or whose ctx is already dead resolves its
// future immediately and the rest of the batch proceeds.
//
// SubmitAll errors only on structural misuse — mismatched slice lengths or
// a nil handle — and then submits nothing.
func SubmitAll[T comparable](ctx context.Context, handles []*Handle[T], vals []T) (*Batch[T], error) {
	if len(handles) != len(vals) {
		return nil, fmt.Errorf("setagreement: SubmitAll got %d handles but %d values", len(handles), len(vals))
	}
	for i, h := range handles {
		if h == nil {
			return nil, fmt.Errorf("setagreement: SubmitAll handle %d is nil", i)
		}
	}
	b := &Batch[T]{handles: handles}
	if len(handles) == 0 {
		return b, nil
	}
	futs := make([]Future[T], len(handles))
	aps := make([]asyncProposal[T], len(handles))
	b.futs = make([]*Future[T], len(handles))
	var groups []engineBatch
	for i, h := range handles {
		fut := &futs[i]
		b.futs[i] = fut
		if !h.prepareAsync(ctx, fut, &aps[i], vals[i]) {
			continue
		}
		er := h.rt.eng
		gi := -1
		for j := range groups {
			if groups[j].er == er {
				gi = j
				break
			}
		}
		if gi < 0 {
			groups = append(groups, engineBatch{er: er, props: make([]engine.Proposal, 0, len(handles)-i)})
			gi = len(groups) - 1
		}
		groups[gi].props = append(groups[gi].props, &aps[i])
	}
	for _, g := range groups {
		g.er.get().SubmitBatch(g.props)
	}
	return b, nil
}
