package setagreement_test

// Batch submission tests: Arena.SubmitBatch fan-out (claims, per-op
// failures, agreement per key), SubmitAll over retained handles (repeat
// rounds, structural errors, failure delivery through a completion queue)
// and Batch.Wait semantics.

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	sa "setagreement"
)

// TestSubmitBatchFanout: one SubmitBatch call fans out over fresh arena
// keys — every op gets a claimed handle and a future, contenders of one key
// agree (k=1), and the batch drains through a completion queue with every
// tag delivered exactly once.
func TestSubmitBatchFanout(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	const keys, procs = 8, 3
	ar, err := sa.NewArena[int](procs, 1)
	if err != nil {
		t.Fatalf("NewArena: %v", err)
	}
	ops := make([]sa.BatchOp[int], 0, keys*procs)
	for k := 0; k < keys; k++ {
		for p := 0; p < procs; p++ {
			ops = append(ops, sa.BatchOp[int]{
				Key:   fmt.Sprintf("key-%d", k),
				Proc:  p,
				Value: k*100 + p,
			})
		}
	}
	b, err := ar.SubmitBatch(ctx, ops)
	if err != nil {
		t.Fatalf("SubmitBatch: %v", err)
	}
	if b.Len() != len(ops) {
		t.Fatalf("Len() = %d, want %d", b.Len(), len(ops))
	}

	q := sa.NewCompletionQueue[int]()
	defer q.Close()
	if err := b.Register(q); err != nil {
		t.Fatalf("Register: %v", err)
	}
	decided := make(map[int]int, len(ops)) // op index -> decided value
	for range ops {
		c, err := q.Next(ctx)
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if _, dup := decided[c.Tag]; dup {
			t.Fatalf("tag %d delivered twice", c.Tag)
		}
		v, err := c.Value()
		if err != nil {
			t.Fatalf("op %d (key %s proc %d): %v", c.Tag, ops[c.Tag].Key, ops[c.Tag].Proc, err)
		}
		decided[c.Tag] = v
	}
	// k=1 per key: every contender of a key decided the same proposed value.
	for k := 0; k < keys; k++ {
		base := k * procs
		want := decided[base]
		if want/100 != k {
			t.Fatalf("key %d decided %d, not a value proposed on that key", k, want)
		}
		for p := 1; p < procs; p++ {
			if got := decided[base+p]; got != want {
				t.Fatalf("key %d disagreement: proc 0 decided %d, proc %d decided %d", k, want, p, got)
			}
		}
	}
	// All handles were claimed; Wait on the fully-resolved batch is a no-op.
	for i := range ops {
		if b.Handle(i) == nil {
			t.Fatalf("Handle(%d) = nil for a successful op", i)
		}
	}
	if err := b.Wait(ctx); err != nil {
		t.Fatalf("Wait after drain: %v", err)
	}
}

// TestSubmitBatchPerOpFailures: a claim failure (duplicate proc id in one
// batch) resolves only that op's future — with the error the equivalent
// ProposeAsync would return — and the rest of the batch proceeds.
func TestSubmitBatchPerOpFailures(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	ar, err := sa.NewArena[int](2, 1)
	if err != nil {
		t.Fatalf("NewArena: %v", err)
	}
	b, err := ar.SubmitBatch(ctx, []sa.BatchOp[int]{
		{Key: "dup", Proc: 0, Value: 1},
		{Key: "dup", Proc: 0, Value: 2}, // second claim of proc 0
		{Key: "dup", Proc: 1, Value: 3},
		{Key: "dup", Proc: 9, Value: 4}, // out of range
	})
	if err != nil {
		t.Fatalf("SubmitBatch: %v", err)
	}
	if err := b.Wait(ctx); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if _, err := b.Future(1).Value(); !errors.Is(err, sa.ErrInUse) {
		t.Fatalf("duplicate-claim op = %v, want ErrInUse", err)
	}
	if b.Handle(1) != nil {
		t.Fatal("failed op has a non-nil handle")
	}
	if _, err := b.Future(3).Value(); !errors.Is(err, sa.ErrBadID) {
		t.Fatalf("out-of-range op = %v, want ErrBadID", err)
	}
	v0, err0 := b.Future(0).Value()
	v2, err2 := b.Future(2).Value()
	if err0 != nil || err2 != nil || v0 != v2 {
		t.Fatalf("surviving ops = (%d, %v) and (%d, %v), want one agreed value", v0, err0, v2, err2)
	}
}

// TestSubmitBatchAfterEvict: eviction does not wedge batch fan-out — a
// SubmitBatch after Evict serves the key's fresh generation, while a
// handle retained from the dead generation fails through its future when
// resubmitted, delivering the lifecycle error into the completion queue.
func TestSubmitBatchAfterEvict(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	ar, err := sa.NewArena[int](2, 1)
	if err != nil {
		t.Fatalf("NewArena: %v", err)
	}
	old := ar.Object("k")
	h0, err := old.Proc(0)
	if err != nil {
		t.Fatalf("Proc: %v", err)
	}
	if _, err := h0.Propose(ctx, 1); err != nil {
		t.Fatalf("Propose: %v", err)
	}
	if err := h0.Release(); err != nil {
		t.Fatalf("Release: %v", err)
	}
	if !ar.Evict("k") {
		t.Fatal("Evict with all handles released = false")
	}
	if _, err := old.Proc(1); !errors.Is(err, sa.ErrEvicted) {
		t.Fatalf("Proc on evicted generation = %v, want ErrEvicted", err)
	}

	// The released handle of the dead generation, resubmitted through
	// SubmitAll, fails through its future — and the failure is a completion
	// like any other.
	b, err := sa.SubmitAll(ctx, []*sa.Handle[int]{h0}, []int{5})
	if err != nil {
		t.Fatalf("SubmitAll: %v", err)
	}
	q := sa.NewCompletionQueue[int]()
	defer q.Close()
	if err := b.Register(q); err != nil {
		t.Fatalf("Register: %v", err)
	}
	c, err := q.Next(ctx)
	if err != nil {
		t.Fatalf("Next: %v", err)
	}
	if _, err := c.Value(); !errors.Is(err, sa.ErrReleased) {
		t.Fatalf("released-handle completion = %v, want ErrReleased", err)
	}

	// The fresh generation is fully serviceable in a batch.
	b2, err := ar.SubmitBatch(ctx, []sa.BatchOp[int]{
		{Key: "k", Proc: 0, Value: 7},
		{Key: "k", Proc: 1, Value: 8},
	})
	if err != nil {
		t.Fatalf("SubmitBatch after Evict: %v", err)
	}
	if err := b2.Wait(ctx); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	v0, err := b2.Future(0).Value()
	if err != nil {
		t.Fatalf("fresh generation op: %v", err)
	}
	if v0 != 7 && v0 != 8 {
		t.Fatalf("fresh generation decided %d, want a proposed value", v0)
	}
}

// TestSubmitAllRounds: SubmitAll over retained arena handles is the
// repeat-friendly entry point — successive rounds on the same handles keep
// deciding (repeated objects), and agreement holds per key each round.
func TestSubmitAllRounds(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	const keys, procs = 4, 2
	ar, err := sa.NewArena[int](procs, 1)
	if err != nil {
		t.Fatalf("NewArena: %v", err)
	}
	handles := make([]*sa.Handle[int], 0, keys*procs)
	for k := 0; k < keys; k++ {
		obj := ar.Object(fmt.Sprintf("r-%d", k))
		for p := 0; p < procs; p++ {
			h, err := obj.Proc(p)
			if err != nil {
				t.Fatalf("Proc: %v", err)
			}
			handles = append(handles, h)
		}
	}
	vals := make([]int, len(handles))
	for round := 0; round < 3; round++ {
		for i := range vals {
			vals[i] = round*1000 + i
		}
		b, err := sa.SubmitAll(ctx, handles, vals)
		if err != nil {
			t.Fatalf("round %d SubmitAll: %v", round, err)
		}
		if err := b.Wait(ctx); err != nil {
			t.Fatalf("round %d Wait: %v", round, err)
		}
		for k := 0; k < keys; k++ {
			want, err := b.Future(k * procs).Value()
			if err != nil {
				t.Fatalf("round %d key %d: %v", round, k, err)
			}
			if want < round*1000 || want >= round*1000+len(handles) {
				t.Fatalf("round %d key %d decided %d, not from this round", round, k, want)
			}
			for p := 1; p < procs; p++ {
				if got, _ := b.Future(k*procs + p).Value(); got != want {
					t.Fatalf("round %d key %d disagreement: %d vs %d", round, k, want, got)
				}
			}
		}
	}
}

// TestSubmitAllStructuralErrors: mismatched lengths and nil handles are
// caller bugs — SubmitAll reports them up front and submits nothing, so
// the handles stay claimable.
func TestSubmitAllStructuralErrors(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	r, err := sa.NewRepeated[int](2, 1)
	if err != nil {
		t.Fatalf("NewRepeated: %v", err)
	}
	h, err := r.Proc(0)
	if err != nil {
		t.Fatalf("Proc: %v", err)
	}
	if _, err := sa.SubmitAll(ctx, []*sa.Handle[int]{h}, []int{1, 2}); err == nil {
		t.Fatal("SubmitAll with mismatched lengths succeeded")
	}
	if _, err := sa.SubmitAll(ctx, []*sa.Handle[int]{h, nil}, []int{1, 2}); err == nil {
		t.Fatal("SubmitAll with a nil handle succeeded")
	}
	// Nothing was submitted: the handle is free for a plain Propose.
	if _, err := h.Propose(ctx, 3); err != nil {
		t.Fatalf("Propose after rejected SubmitAll = %v, want success", err)
	}

	// Empty batch: legal, resolved, registrable.
	b, err := sa.SubmitAll[int](ctx, nil, nil)
	if err != nil {
		t.Fatalf("empty SubmitAll: %v", err)
	}
	if b.Len() != 0 {
		t.Fatalf("empty batch Len() = %d", b.Len())
	}
	if err := b.Wait(ctx); err != nil {
		t.Fatalf("empty batch Wait: %v", err)
	}
}

// TestBatchWaitContext: Wait honours its context while proposals are still
// in flight and leaves the futures untouched.
func TestBatchWaitContext(t *testing.T) {
	r, err := sa.NewRepeated[int](2, 1,
		sa.WithSnapshot(sa.SnapshotWaitFree),
		sa.WithWaitStrategy(sa.WaitNotify),
		sa.WithBackoff(time.Hour, time.Hour, 1))
	if err != nil {
		t.Fatalf("NewRepeated: %v", err)
	}
	h, err := r.Proc(0)
	if err != nil {
		t.Fatalf("Proc: %v", err)
	}
	pctx, cancelProposal := context.WithCancel(context.Background())
	defer cancelProposal()
	b, err := sa.SubmitAll(pctx, []*sa.Handle[int]{h}, []int{1})
	if err != nil {
		t.Fatalf("SubmitAll: %v", err)
	}
	short, cancelShort := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancelShort()
	if err := b.Wait(short); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Wait on hour-parked batch = %v, want deadline", err)
	}
	if b.Future(0).Resolved() {
		t.Fatal("aborted Wait resolved the future")
	}
	cancelProposal()
	wait, cancelWait := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancelWait()
	if err := b.Wait(wait); err != nil {
		t.Fatalf("Wait after cancellation: %v", err)
	}
	if _, err := b.Future(0).Value(); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled proposal = %v, want context.Canceled", err)
	}
}

// benchArena builds an arena with size solo handles (one key each, proc 0,
// no contention) sharing one engine — the fixture both benchmark modes and
// the batch alloc guard submit rounds through.
func benchArena(tb testing.TB, size int) []*sa.Handle[int] {
	tb.Helper()
	ar, err := sa.NewArena[int](4, 1)
	if err != nil {
		tb.Fatalf("NewArena: %v", err)
	}
	handles := make([]*sa.Handle[int], size)
	for i := range handles {
		h, err := ar.Object(fmt.Sprintf("bench-%d", i)).Proc(0)
		if err != nil {
			tb.Fatalf("Proc: %v", err)
		}
		handles[i] = h
	}
	return handles
}

// drainBatchRound blocks until every future of one submitted round has
// resolved, failing the test on any proposal error.
func drainBatchRound(tb testing.TB, futs []*sa.Future[int]) {
	tb.Helper()
	for i, f := range futs {
		if _, err := f.Value(); err != nil {
			tb.Fatalf("proposal %d: %v", i, err)
		}
	}
}

// BenchmarkSubmitBatch measures the submit-side cost per proposal of the
// batch entry point against the looped baseline it amortizes: mode=loop
// calls ProposeAsync once per handle, mode=batch hands the same handles to
// SubmitAll in one call. Only submission is timed (the drain runs under
// StopTimer), so ns/proposal and allocs/op compare the handoff itself —
// the acceptance criterion is batch ≤ half of loop at size 64 and above.
func BenchmarkSubmitBatch(b *testing.B) {
	ctx := context.Background()
	for _, size := range []int{8, 64, 256} {
		for _, mode := range []string{"loop", "batch"} {
			b.Run(fmt.Sprintf("mode=%s/size=%d", mode, size), func(b *testing.B) {
				handles := benchArena(b, size)
				vals := make([]int, size)
				futs := make([]*sa.Future[int], size)
				round := func() {
					if mode == "loop" {
						for i, h := range handles {
							futs[i] = h.ProposeAsync(ctx, i)
						}
					} else {
						batch, err := sa.SubmitAll(ctx, handles, vals)
						if err != nil {
							b.Fatalf("SubmitAll: %v", err)
						}
						for i := 0; i < size; i++ {
							futs[i] = batch.Future(i)
						}
					}
				}
				// Warm past one-time costs (engine creation, wait plans).
				round()
				drainBatchRound(b, futs)
				b.ReportAllocs()
				b.ResetTimer()
				for n := 0; n < b.N; n++ {
					round()
					b.StopTimer()
					drainBatchRound(b, futs)
					b.StartTimer()
				}
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*size), "ns/proposal")
			})
		}
	}
}
