// Benchmarks regenerating the paper's evaluation. The paper is a theory
// paper whose single figure (Figure 1) is a table of register bounds; each
// benchmark below regenerates one row family of that table or one
// theorem-level claim, reporting registers and simulator steps as metrics.
// See EXPERIMENTS.md for the paper-vs-measured record.
package setagreement_test

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"setagreement"
	"setagreement/internal/core"
	"setagreement/internal/experiments"
	"setagreement/internal/lowerbound"
	"setagreement/internal/register"
	"setagreement/internal/sched"
	"setagreement/internal/shmem"
	"setagreement/internal/sim"
	"setagreement/internal/snapshot"
)

// benchParams is the standard parameter sweep used across benchmarks.
var benchParams = []core.Params{
	{N: 4, M: 1, K: 1},
	{N: 6, M: 1, K: 2},
	{N: 6, M: 2, K: 3},
	{N: 8, M: 1, K: 3},
	{N: 8, M: 2, K: 5},
	{N: 10, M: 3, K: 5},
}

// runSteps runs the algorithm to completion sequentially and returns steps.
func runSteps(b *testing.B, alg core.Algorithm, instances int) int {
	b.Helper()
	inputs := make([][]int, alg.Params().N)
	for i := range inputs {
		inputs[i] = make([]int, instances)
		for t := range inputs[i] {
			inputs[i][t] = 1000*(t+1) + i
		}
	}
	memSpec, procs := core.System(alg, inputs)
	r, err := sim.NewRunner(memSpec, procs)
	if err != nil {
		b.Fatalf("NewRunner: %v", err)
	}
	defer r.Abort()
	if _, err := r.Run(&sched.Sequential{}, 10_000_000); err != nil {
		b.Fatalf("Run: %v", err)
	}
	if !r.AllDone() {
		b.Fatal("run did not complete")
	}
	return r.Steps()
}

// BenchmarkFig1Table regenerates the full Figure 1 table (formulas plus
// empirical validation of every cell) per iteration.
func BenchmarkFig1Table(b *testing.B) {
	points := []core.Params{{N: 4, M: 1, K: 2}, {N: 6, M: 2, K: 3}}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig1(points, 2, 1); err != nil {
			b.Fatalf("Fig1: %v", err)
		}
	}
}

// BenchmarkOneShot measures the Figure 3 algorithm (Theorem 7 upper bound):
// registers and steps for all n processes to decide.
func BenchmarkOneShot(b *testing.B) {
	for _, p := range benchParams {
		b.Run(p.String(), func(b *testing.B) {
			alg, err := core.NewOneShot(p)
			if err != nil {
				b.Fatalf("NewOneShot: %v", err)
			}
			steps := 0
			for i := 0; i < b.N; i++ {
				steps = runSteps(b, alg, 1)
			}
			b.ReportMetric(float64(steps), "steps")
			b.ReportMetric(float64(alg.Registers()), "registers")
		})
	}
}

// BenchmarkRepeated measures the Figure 4 algorithm (Theorem 8 upper bound)
// over 3 instances.
func BenchmarkRepeated(b *testing.B) {
	for _, p := range benchParams {
		b.Run(p.String(), func(b *testing.B) {
			alg, err := core.NewRepeated(p)
			if err != nil {
				b.Fatalf("NewRepeated: %v", err)
			}
			steps := 0
			for i := 0; i < b.N; i++ {
				steps = runSteps(b, alg, 3)
			}
			b.ReportMetric(float64(steps), "steps")
			b.ReportMetric(float64(alg.Registers()), "registers")
		})
	}
}

// BenchmarkAnonymous measures the Figure 5 algorithm (Theorem 11 upper
// bound) over 3 instances.
func BenchmarkAnonymous(b *testing.B) {
	for _, p := range benchParams {
		b.Run(p.String(), func(b *testing.B) {
			alg, err := core.NewAnonRepeated(p)
			if err != nil {
				b.Fatalf("NewAnonRepeated: %v", err)
			}
			steps := 0
			for i := 0; i < b.N; i++ {
				steps = runSteps(b, alg, 3)
			}
			b.ReportMetric(float64(steps), "steps")
			b.ReportMetric(float64(alg.Registers()), "registers")
		})
	}
}

// BenchmarkCoverAttack measures the Theorem 2 adversary one register below
// the n+m−k bound (where it must win).
func BenchmarkCoverAttack(b *testing.B) {
	cases := []struct {
		p core.Params
		r int
	}{
		{p: core.Params{N: 4, M: 1, K: 1}, r: 3},
		{p: core.Params{N: 6, M: 1, K: 2}, r: 4},
		{p: core.Params{N: 8, M: 1, K: 3}, r: 5},
	}
	for _, tc := range cases {
		b.Run(fmt.Sprintf("%v-r%d", tc.p, tc.r), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				alg, err := core.NewRepeatedComponents(tc.p, tc.r)
				if err != nil {
					b.Fatalf("build: %v", err)
				}
				rep, err := lowerbound.CoverAttack(alg, lowerbound.DefaultCoverOptions())
				if err != nil {
					b.Fatalf("attack: %v", err)
				}
				if rep.Verdict == lowerbound.VerdictNone {
					b.Fatalf("adversary failed below the bound: %s", rep.Detail)
				}
			}
		})
	}
}

// BenchmarkCloneAttack measures the Theorem 10 adversary where the clone
// army fits (it must win).
func BenchmarkCloneAttack(b *testing.B) {
	cases := []struct {
		n, k, r int
	}{
		{n: 8, k: 1, r: 2},
		{n: 10, k: 1, r: 3},
		{n: 16, k: 1, r: 4},
	}
	for _, tc := range cases {
		b.Run(fmt.Sprintf("n%d-k%d-r%d", tc.n, tc.k, tc.r), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				alg, err := core.NewAnonComponents(core.Params{N: tc.n, M: 1, K: tc.k}, tc.r, false)
				if err != nil {
					b.Fatalf("build: %v", err)
				}
				rep, err := lowerbound.CloneAttack(alg, lowerbound.DefaultCloneOptions())
				if err != nil {
					b.Fatalf("attack: %v", err)
				}
				if rep.Verdict != lowerbound.VerdictSafety {
					b.Fatalf("adversary failed where the army fits: %s", rep.Detail)
				}
			}
		})
	}
}

// BenchmarkVsDFGR13 regenerates the comparison with the paper's reference
// [4]: Figure 3's n−k+2 registers against DFGR13's 2(n−k), for m = 1.
func BenchmarkVsDFGR13(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.VsDFGR13(8); err != nil {
			b.Fatalf("VsDFGR13: %v", err)
		}
	}
}

// BenchmarkComponentSweep is the component-count ablation: extra snapshot
// components versus convergence steps.
func BenchmarkComponentSweep(b *testing.B) {
	p := core.Params{N: 6, M: 1, K: 2}
	for extra := 0; extra <= 4; extra += 2 {
		b.Run(fmt.Sprintf("r+%d", extra), func(b *testing.B) {
			alg, err := core.NewOneShotComponents(p, p.N+2*p.M-p.K+extra)
			if err != nil {
				b.Fatalf("build: %v", err)
			}
			steps := 0
			for i := 0; i < b.N; i++ {
				steps = runSteps(b, alg, 1)
			}
			b.ReportMetric(float64(steps), "steps")
		})
	}
}

// BenchmarkSnapshots is the snapshot-substrate ablation: the one-shot
// algorithm over each register construction, counting simulator steps
// (register-based scans cost many reads).
func BenchmarkSnapshots(b *testing.B) {
	p := core.Params{N: 5, M: 1, K: 2}
	alg, err := core.NewOneShot(p)
	if err != nil {
		b.Fatalf("NewOneShot: %v", err)
	}
	inputs := [][]int{{100}, {101}, {102}, {103}, {104}}
	for _, impl := range []snapshot.Impl{
		snapshot.ImplAtomic, snapshot.ImplMW, snapshot.ImplSWEmulation, snapshot.ImplDoubleCollect,
	} {
		b.Run(impl.String(), func(b *testing.B) {
			physical, wrap, err := snapshot.Wire(alg.Spec(), impl, p.N)
			if err != nil {
				b.Fatalf("Wire: %v", err)
			}
			steps := 0
			for i := 0; i < b.N; i++ {
				memSpec, procs := core.WrappedSystem(alg, inputs, physical, wrap)
				r, err := sim.NewRunner(memSpec, procs)
				if err != nil {
					b.Fatalf("NewRunner: %v", err)
				}
				if _, err := r.Run(&sched.Sequential{}, 10_000_000); err != nil {
					r.Abort()
					b.Fatalf("Run: %v", err)
				}
				steps = r.Steps()
				r.Abort()
			}
			b.ReportMetric(float64(steps), "steps")
			b.ReportMetric(float64(physical.RegisterCost(p.N)), "registers")
		})
	}
}

// BenchmarkNativePropose measures wall-clock throughput of the public API:
// n goroutines completing one-shot agreement on real hardware.
func BenchmarkNativePropose(b *testing.B) {
	const n, k = 4, 2
	for _, impl := range []setagreement.SnapshotImpl{
		setagreement.SnapshotAtomic,
		setagreement.SnapshotWaitFree,
		setagreement.SnapshotSingleWriter,
		setagreement.SnapshotDoubleCollect,
	} {
		b.Run(impl.String(), func(b *testing.B) {
			ctx := context.Background()
			for i := 0; i < b.N; i++ {
				a, err := setagreement.New[int](n, k, setagreement.WithSnapshot(impl))
				if err != nil {
					b.Fatalf("New: %v", err)
				}
				var wg sync.WaitGroup
				for id := 0; id < n; id++ {
					h, err := a.Proc(id)
					if err != nil {
						b.Fatalf("Proc: %v", err)
					}
					wg.Add(1)
					go func(id int, h *setagreement.Handle[int]) {
						defer wg.Done()
						if _, err := h.Propose(ctx, 100+id); err != nil {
							b.Errorf("propose: %v", err)
						}
					}(id, h)
				}
				wg.Wait()
			}
		})
	}
}

// BenchmarkProposeSolo measures the uncontended Propose hot path through a
// claimed handle: one process deciding a stream of repeated-consensus
// instances solo. The facade adds no lock, no map lookup, and no per-call
// allocation on this path (the guard memory lives in the handle); allocs/op
// reports what the algorithm and backend themselves cost.
func BenchmarkProposeSolo(b *testing.B) {
	r, err := setagreement.NewRepeated[int](2, 1)
	if err != nil {
		b.Fatalf("NewRepeated: %v", err)
	}
	h, err := r.Proc(0)
	if err != nil {
		b.Fatalf("Proc: %v", err)
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.Propose(ctx, i); err != nil {
			b.Fatalf("propose: %v", err)
		}
	}
	b.ReportMetric(float64(h.Stats().Steps)/float64(b.N), "steps/op")
}

// BenchmarkProposeSoloTyped is BenchmarkProposeSolo over a string domain:
// the interning codec's cost on top of the identity-codec int path.
func BenchmarkProposeSoloTyped(b *testing.B) {
	r, err := setagreement.NewRepeated[string](2, 1)
	if err != nil {
		b.Fatalf("NewRepeated: %v", err)
	}
	h, err := r.Proc(0)
	if err != nil {
		b.Fatalf("Proc: %v", err)
	}
	ctx := context.Background()
	values := [8]string{"a", "b", "c", "d", "e", "f", "g", "h"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.Propose(ctx, values[i&7]); err != nil {
			b.Fatalf("propose: %v", err)
		}
	}
}

// BenchmarkBackendOps compares the two native memory backends (mutex vs
// lock-free) at the substrate level: n goroutines hammer one shared
// n-component snapshot object — one Update then one Scan per round —
// through each of the four snapshot runtimes. This is where the backend
// refactor pays: with the mutex backend every operation of every goroutine
// serializes on one lock; the lock-free backend has no serialization point.
// Double-collect scans are bounded (TryScan) so sustained updates cannot
// stall the measurement.
func BenchmarkBackendOps(b *testing.B) {
	impls := []snapshot.Impl{
		snapshot.ImplAtomic, snapshot.ImplMW, snapshot.ImplSWEmulation, snapshot.ImplDoubleCollect,
	}
	for _, backend := range register.Backends() {
		for _, impl := range impls {
			for _, n := range []int{2, 8, 32} {
				b.Run(fmt.Sprintf("%s/%s/n=%d", backend.Name(), impl, n), func(b *testing.B) {
					_, wrap, err := snapshot.Materialize(shmem.Spec{Snaps: []int{n}}, impl, n, backend)
					if err != nil {
						b.Fatalf("Materialize: %v", err)
					}
					perG := b.N/n + 1
					b.ResetTimer()
					var wg sync.WaitGroup
					for id := 0; id < n; id++ {
						wg.Add(1)
						go func(id int) {
							defer wg.Done()
							wmem := wrap(id)
							ts, bounded := wmem.(shmem.TryScanner)
							for i := 0; i < perG; i++ {
								wmem.Update(0, id, i&0xfff)
								if bounded {
									ts.TryScan(0, 4)
								} else {
									wmem.Scan(0)
								}
							}
						}(id)
					}
					wg.Wait()
				})
			}
		}
	}
}

// BenchmarkBackendPropose compares the backends at the public-API level:
// n goroutines completing one-shot k-set agreement (k = n/2, backoff on)
// for each snapshot runtime.
func BenchmarkBackendPropose(b *testing.B) {
	backends := []setagreement.MemoryBackend{
		setagreement.BackendLocked,
		setagreement.BackendLockFree,
	}
	impls := []setagreement.SnapshotImpl{
		setagreement.SnapshotAtomic,
		setagreement.SnapshotWaitFree,
		setagreement.SnapshotSingleWriter,
		setagreement.SnapshotDoubleCollect,
	}
	for _, backend := range backends {
		for _, impl := range impls {
			for _, n := range []int{2, 8, 32} {
				b.Run(fmt.Sprintf("%s/%s/n=%d", backend, impl, n), func(b *testing.B) {
					ctx := context.Background()
					k := n / 2
					for i := 0; i < b.N; i++ {
						a, err := setagreement.New[int](n, k,
							setagreement.WithSnapshot(impl),
							setagreement.WithMemoryBackend(backend),
							setagreement.WithBackoff(time.Microsecond, time.Millisecond, 64),
						)
						if err != nil {
							b.Fatalf("New: %v", err)
						}
						var wg sync.WaitGroup
						for id := 0; id < n; id++ {
							h, err := a.Proc(id)
							if err != nil {
								b.Fatalf("Proc: %v", err)
							}
							wg.Add(1)
							go func(id int, h *setagreement.Handle[int]) {
								defer wg.Done()
								if _, err := h.Propose(ctx, 100+id); err != nil {
									b.Errorf("propose: %v", err)
								}
							}(id, h)
						}
						wg.Wait()
					}
				})
			}
		}
	}
}

// BenchmarkWaitStrategies compares how contended Proposes spend their yield
// points: blind backoff sleeps against event-driven notify/hybrid waits,
// per backend, at increasing proposer counts over one repeated-consensus
// object. All strategies share one escalation schedule (100µs–5ms cap,
// window 16), so the difference is purely the wait mechanism; wait-ns/op
// and wakeups/op expose it alongside ns/op. The solo case (proposers=1)
// doubles as the no-regression check: an event-driven strategy must never
// put a lone proposer to sleep.
func BenchmarkWaitStrategies(b *testing.B) {
	backends := []setagreement.MemoryBackend{
		setagreement.BackendLockFree,
		setagreement.BackendLocked,
	}
	strategies := []setagreement.WaitStrategy{
		setagreement.WaitBackoff,
		setagreement.WaitNotify,
		setagreement.WaitHybrid,
	}
	for _, backend := range backends {
		for _, strat := range strategies {
			for _, g := range []int{1, 4, 8} {
				b.Run(fmt.Sprintf("%s/%s/proposers=%d", backend, strat, g), func(b *testing.B) {
					n := g
					if n < 2 {
						n = 2
					}
					r, err := setagreement.NewRepeated[int](n, 1,
						setagreement.WithMemoryBackend(backend),
						setagreement.WithWaitStrategy(strat),
						setagreement.WithBackoff(100*time.Microsecond, 5*time.Millisecond, 16),
					)
					if err != nil {
						b.Fatalf("NewRepeated: %v", err)
					}
					handles := make([]*setagreement.Handle[int], g)
					for id := range handles {
						if handles[id], err = r.Proc(id); err != nil {
							b.Fatalf("Proc: %v", err)
						}
					}
					ctx := context.Background()
					b.ResetTimer()
					var wg sync.WaitGroup
					for id, h := range handles {
						wg.Add(1)
						go func(id int, h *setagreement.Handle[int]) {
							defer wg.Done()
							for i := 0; i < b.N; i++ {
								if _, err := h.Propose(ctx, 1000*i+id); err != nil {
									b.Errorf("propose: %v", err)
									return
								}
							}
						}(id, h)
					}
					wg.Wait()
					b.StopTimer()
					var waitNS, wakeups int64
					for _, h := range handles {
						s := h.Stats()
						waitNS += int64(s.WaitTime)
						wakeups += s.Wakeups
					}
					ops := float64(b.N * g)
					b.ReportMetric(float64(waitNS)/ops, "wait-ns/op")
					b.ReportMetric(float64(wakeups)/ops, "wakeups/op")
				})
			}
		}
	}
}

// BenchmarkCoverAttackMTwo measures the Theorem 2 adversary with m = 2
// groups, where the γ fragments are found by exhaustive interleaving
// search.
func BenchmarkCoverAttackMTwo(b *testing.B) {
	p := core.Params{N: 5, M: 2, K: 2}
	for i := 0; i < b.N; i++ {
		alg, err := core.NewRepeatedComponents(p, 4) // bound is 5
		if err != nil {
			b.Fatalf("build: %v", err)
		}
		rep, err := lowerbound.CoverAttack(alg, lowerbound.DefaultCoverOptions())
		if err != nil {
			b.Fatalf("attack: %v", err)
		}
		if rep.Verdict != lowerbound.VerdictSafety {
			b.Fatalf("m=2 adversary failed below the bound: %s", rep.Detail)
		}
	}
}

// BenchmarkSimulatorStep measures the raw cost of one scheduler-granted
// shared-memory step (the simulator's unit of work).
func BenchmarkSimulatorStep(b *testing.B) {
	prog := func(p *sim.Proc) {
		for {
			p.Write(0, 1)
		}
	}
	r, err := sim.NewRunner(shmem.Spec{Regs: 1}, []sim.ProcSpec{{ID: 0, Run: prog}})
	if err != nil {
		b.Fatalf("NewRunner: %v", err)
	}
	defer r.Abort()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Step(0); err != nil {
			b.Fatalf("step: %v", err)
		}
	}
}

// BenchmarkReplicated measures universal-construction throughput: n
// replicas appending operations to the shared log.
func BenchmarkReplicated(b *testing.B) {
	const n = 3
	obj, err := setagreement.NewReplicated[int, int](n,
		func() int { return 0 },
		func(s, d int) int { return s + d },
	)
	if err != nil {
		b.Fatalf("NewReplicated: %v", err)
	}
	replicas := make([]*setagreement.Replica[int, int], n)
	for id := range replicas {
		replicas[id], err = obj.Replica(id)
		if err != nil {
			b.Fatalf("Replica: %v", err)
		}
	}
	ctx := context.Background()
	b.ResetTimer()
	var wg sync.WaitGroup
	for id := 0; id < n; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < b.N; i++ {
				if _, err := replicas[id].Invoke(ctx, 1); err != nil {
					b.Errorf("invoke: %v", err)
					return
				}
			}
		}(id)
	}
	wg.Wait()
}

// BenchmarkNativeRepeated measures sustained repeated-agreement throughput:
// n goroutines deciding a stream of instances through their handles.
func BenchmarkNativeRepeated(b *testing.B) {
	const n = 4
	r, err := setagreement.NewRepeated[int](n, 1)
	if err != nil {
		b.Fatalf("NewRepeated: %v", err)
	}
	handles := make([]*setagreement.Handle[int], n)
	for id := range handles {
		if handles[id], err = r.Proc(id); err != nil {
			b.Fatalf("Proc: %v", err)
		}
	}
	ctx := context.Background()
	b.ResetTimer()
	var wg sync.WaitGroup
	for id := 0; id < n; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < b.N; i++ {
				if _, err := handles[id].Propose(ctx, 1000*i+id); err != nil {
					b.Errorf("propose: %v", err)
					return
				}
			}
		}(id)
	}
	wg.Wait()
}
