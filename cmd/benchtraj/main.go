// Command benchtraj is the perf-trajectory gate seeded by the ROADMAP: it
// compares a current sabench -json document against a committed baseline
// and fails (exit 1) when any cell's p50 latency regressed beyond the
// allowed factor. CI's bench-smoke job runs it on every push against
// bench/baseline-async.json, so a change that triples contended propose
// latency fails the build instead of silently rotting the trajectory.
//
// The check is deliberately trivial: tables are matched by title, rows by
// their identifying columns (everything that is not a measured quantity),
// and only the p50 column is gated. Latencies below the noise floor are
// ignored — microsecond-scale cells vary more across machines than any
// regression they could hide — and rows present in only one document are
// reported but never fail the gate, so reshaping a table does not require
// lockstep baseline edits.
//
// Usage:
//
//	benchtraj -baseline bench/baseline-async.json -current bench-async.json
//	benchtraj -baseline old.json -current new.json -factor 2 -floor 500µs
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"
)

// doc mirrors internal/report's JSON shape.
type doc struct {
	Tables []table `json:"tables"`
}

type table struct {
	Title   string     `json:"title"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
}

// measuredColumns are result columns; everything else identifies a row.
var measuredColumns = map[string]bool{
	"p50": true, "p95": true, "proposes/sec": true, "wakeups": true,
	"spurious": true, "wait-total": true, "goroutines": true,
	"parked-peak": true, "lookups/sec": true, "ops/sec": true,
	"proposes": true, "steps": true, "scans": true, "wait": true,
	"mem-steps": true, "cas-retries": true,
}

func main() {
	var (
		baselinePath = flag.String("baseline", "bench/baseline-async.json", "committed baseline JSON (sabench -json format)")
		currentPath  = flag.String("current", "", "current-run JSON to gate (sabench -json format)")
		factor       = flag.Float64("factor", 3, "fail when current p50 > factor × baseline p50")
		floor        = flag.Duration("floor", time.Millisecond, "ignore cells whose current p50 is below this (machine noise)")
	)
	flag.Usage = func() {
		fmt.Fprint(flag.CommandLine.Output(), `usage: benchtraj -baseline FILE -current FILE [-factor N] [-floor D]

benchtraj gates the repository's perf trajectory: it fails (exit 1) when a
current sabench -json run shows a p50 latency more than -factor times its
committed baseline, for any row the two documents share. Cells below the
-floor are ignored as machine noise; unmatched rows are reported only.

Flags:
`)
		flag.PrintDefaults()
	}
	flag.Parse()
	if *currentPath == "" {
		fmt.Fprintln(os.Stderr, "benchtraj: -current is required")
		flag.Usage()
		os.Exit(2)
	}
	baseline, err := load(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchtraj: %v\n", err)
		os.Exit(2)
	}
	current, err := load(*currentPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchtraj: %v\n", err)
		os.Exit(2)
	}
	regressions, compared := compare(baseline, current, *factor, *floor)
	fmt.Printf("benchtraj: compared %d cells against %s (factor %g, floor %v)\n",
		compared, *baselinePath, *factor, *floor)
	if len(regressions) > 0 {
		for _, r := range regressions {
			fmt.Println("REGRESSION: " + r)
		}
		os.Exit(1)
	}
	fmt.Println("benchtraj: p50 trajectory OK")
}

func load(path string) (doc, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return doc{}, err
	}
	var d doc
	if err := json.Unmarshal(data, &d); err != nil {
		return doc{}, fmt.Errorf("%s: %w", path, err)
	}
	return d, nil
}

// compare gates every shared row's p50 and returns the offending cells.
func compare(baseline, current doc, factor float64, floor time.Duration) (regressions []string, compared int) {
	curTables := make(map[string]table, len(current.Tables))
	for _, t := range current.Tables {
		curTables[t.Title] = t
	}
	for _, base := range baseline.Tables {
		baseP50 := columnIndex(base.Columns, "p50")
		if baseP50 < 0 {
			continue
		}
		cur, ok := curTables[base.Title]
		if !ok {
			fmt.Printf("note: table %q missing from current run\n", base.Title)
			continue
		}
		curP50 := columnIndex(cur.Columns, "p50")
		if curP50 < 0 {
			fmt.Printf("note: table %q lost its p50 column\n", base.Title)
			continue
		}
		curRows := make(map[string][]string, len(cur.Rows))
		for _, row := range cur.Rows {
			curRows[rowKey(cur.Columns, row)] = row
		}
		for _, row := range base.Rows {
			key := rowKey(base.Columns, row)
			curRow, ok := curRows[key]
			if !ok {
				fmt.Printf("note: row [%s] of %q missing from current run\n", key, base.Title)
				continue
			}
			baseD, err1 := time.ParseDuration(row[baseP50])
			curD, err2 := time.ParseDuration(curRow[curP50])
			if err1 != nil || err2 != nil {
				continue // non-duration p50 cells are outside the gate
			}
			compared++
			if curD < floor || baseD <= 0 {
				continue
			}
			if float64(curD) > factor*float64(baseD) {
				regressions = append(regressions,
					fmt.Sprintf("%s [%s]: p50 %v → %v (>%gx)", base.Title, key, baseD, curD, factor))
			}
		}
	}
	return regressions, compared
}

func columnIndex(columns []string, name string) int {
	for i, c := range columns {
		if c == name {
			return i
		}
	}
	return -1
}

// rowKey joins a row's identifying cells (the non-measured columns).
func rowKey(columns []string, row []string) string {
	var parts []string
	for i, c := range columns {
		if i < len(row) && !measuredColumns[c] {
			parts = append(parts, c+"="+row[i])
		}
	}
	return strings.Join(parts, " ")
}
