// Command benchtraj is the perf-trajectory gate seeded by the ROADMAP: it
// compares a current sabench -json document against a committed baseline
// and fails (exit 1) when any cell regressed beyond the allowed factor —
// a p50 latency that grew past -factor times its baseline, or a
// throughput rate (proposes/sec, lookups/sec, ops/sec) that fell below
// baseline divided by -rate-factor. CI's bench-smoke job runs it on every
// push against bench/baseline-async.json, bench/baseline-waits.json,
// bench/baseline-arena.json and bench/baseline-obs.json, so a change that
// triples contended propose latency, craters arena serving throughput or
// regresses a lifecycle stage's latency attribution fails the build
// instead of silently rotting the trajectory.
//
// The check is deliberately trivial: tables are matched by title, rows by
// their identifying columns (everything that is not a measured quantity),
// and only the duration columns (p50, and the obs table's stage-p50 /
// stage-p95) and rate columns are gated. Cells below the noise
// floors are ignored — microsecond-scale latencies and near-idle rates
// vary more across machines than any regression they could hide — and
// rows present in only one document are reported but never fail the gate,
// so reshaping a table does not require lockstep baseline edits.
//
// Usage:
//
//	benchtraj -baseline bench/baseline-async.json -current bench-async.json
//	benchtraj -baseline old.json -current new.json -factor 2 -floor 500µs -rate-factor 2
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"
)

// doc mirrors internal/report's JSON shape.
type doc struct {
	Tables []table `json:"tables"`
}

type table struct {
	Title   string     `json:"title"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
}

// measuredColumns are result columns; everything else identifies a row.
var measuredColumns = map[string]bool{
	"p50": true, "p95": true, "proposes/sec": true, "wakeups": true,
	"spurious": true, "wait-total": true, "goroutines": true,
	"parked-peak": true, "lookups/sec": true, "ops/sec": true,
	"proposes": true, "steps": true, "scans": true, "wait": true,
	"mem-steps": true, "cas-retries": true,
	"combined": true, "adopted": true, "hit%": true,
	"submit-ns/prop": true, "ttfd": true, "ttld": true,
	"count": true, "stage-p50": true, "stage-p95": true,
}

// durationColumns are the gated latency columns: "p50" of the runtime
// tables plus the obs table's per-stage quantiles. Lower is better;
// cells below the -floor are noise.
var durationColumns = map[string]bool{
	"p50": true, "stage-p50": true, "stage-p95": true,
}

// rateColumns are the gated throughput columns: higher is better, so the
// regression direction is inverted relative to p50.
var rateColumns = map[string]bool{
	"proposes/sec": true, "lookups/sec": true, "ops/sec": true,
}

func main() {
	var (
		baselinePath = flag.String("baseline", "bench/baseline-async.json", "committed baseline JSON (sabench -json format)")
		currentPath  = flag.String("current", "", "current-run JSON to gate (sabench -json format)")
		factor       = flag.Float64("factor", 3, "fail when current p50 > factor × baseline p50")
		floor        = flag.Duration("floor", time.Millisecond, "ignore cells whose current p50 is below this (machine noise)")
		rateFactor   = flag.Float64("rate-factor", 3, "fail when current rate < baseline rate ÷ rate-factor")
		rateFloor    = flag.Float64("rate-floor", 1000, "ignore rate cells whose baseline is below this (ops per second)")
	)
	flag.Usage = func() {
		fmt.Fprint(flag.CommandLine.Output(), `usage: benchtraj -baseline FILE -current FILE [-factor N] [-floor D] [-rate-factor N] [-rate-floor R]

benchtraj gates the repository's perf trajectory: it fails (exit 1) when a
current sabench -json run shows, for any row the two documents share, a p50
latency more than -factor times its committed baseline or a throughput rate
(proposes/sec, lookups/sec, ops/sec) below the baseline divided by
-rate-factor. Latency cells below the -floor and rate cells whose baseline
is below -rate-floor are ignored as machine noise; unmatched rows are
reported only.

Flags:
`)
		flag.PrintDefaults()
	}
	flag.Parse()
	if *currentPath == "" {
		fmt.Fprintln(os.Stderr, "benchtraj: -current is required")
		flag.Usage()
		os.Exit(2)
	}
	baseline, err := load(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchtraj: %v\n", err)
		os.Exit(2)
	}
	current, err := load(*currentPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchtraj: %v\n", err)
		os.Exit(2)
	}
	lim := limits{factor: *factor, floor: *floor, rateFactor: *rateFactor, rateFloor: *rateFloor}
	regressions, compared := compare(baseline, current, lim)
	fmt.Printf("benchtraj: compared %d cells against %s (factor %g, floor %v, rate-factor %g, rate-floor %g)\n",
		compared, *baselinePath, *factor, *floor, *rateFactor, *rateFloor)
	if len(regressions) > 0 {
		for _, r := range regressions {
			fmt.Println("REGRESSION: " + r)
		}
		os.Exit(1)
	}
	fmt.Println("benchtraj: trajectory OK")
}

// limits bundles the gate thresholds.
type limits struct {
	factor     float64
	floor      time.Duration
	rateFactor float64
	rateFloor  float64
}

func load(path string) (doc, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return doc{}, err
	}
	var d doc
	if err := json.Unmarshal(data, &d); err != nil {
		return doc{}, fmt.Errorf("%s: %w", path, err)
	}
	return d, nil
}

// compare gates every shared row's p50 and throughput rates and returns the
// offending cells.
func compare(baseline, current doc, lim limits) (regressions []string, compared int) {
	curTables := make(map[string]table, len(current.Tables))
	for _, t := range current.Tables {
		curTables[t.Title] = t
	}
	for _, base := range baseline.Tables {
		gated := gatedColumns(base.Columns)
		if len(gated) == 0 {
			continue
		}
		cur, ok := curTables[base.Title]
		if !ok {
			fmt.Printf("note: table %q missing from current run\n", base.Title)
			continue
		}
		curRows := make(map[string][]string, len(cur.Rows))
		for _, row := range cur.Rows {
			curRows[rowKey(cur.Columns, row)] = row
		}
		for _, row := range base.Rows {
			key := rowKey(base.Columns, row)
			curRow, ok := curRows[key]
			if !ok {
				fmt.Printf("note: row [%s] of %q missing from current run\n", key, base.Title)
				continue
			}
			for _, col := range gated {
				curIdx := columnIndex(cur.Columns, col)
				if curIdx < 0 || curIdx >= len(curRow) {
					continue // column dropped from the current table shape
				}
				baseCell, curCell := row[columnIndex(base.Columns, col)], curRow[curIdx]
				if msg, counted := gateCell(col, baseCell, curCell, lim); counted {
					compared++
					if msg != "" {
						regressions = append(regressions,
							fmt.Sprintf("%s [%s]: %s", base.Title, key, msg))
					}
				}
			}
		}
	}
	return regressions, compared
}

// gatedColumns returns the gate-relevant columns present in the table:
// the duration columns (p50, stage-p50, stage-p95) plus every known rate
// column.
func gatedColumns(columns []string) []string {
	var out []string
	for _, c := range columns {
		if durationColumns[c] || rateColumns[c] {
			out = append(out, c)
		}
	}
	return out
}

// gateCell applies the gate for one column kind to a baseline/current cell
// pair. It returns a non-empty message on regression, and counted=false
// when the cells are unparsable or below the noise floor.
func gateCell(col, baseCell, curCell string, lim limits) (msg string, counted bool) {
	if durationColumns[col] {
		baseD, err1 := time.ParseDuration(baseCell)
		curD, err2 := time.ParseDuration(curCell)
		if err1 != nil || err2 != nil {
			return "", false // non-duration cells are outside the gate
		}
		if curD < lim.floor || baseD <= 0 {
			return "", true
		}
		if float64(curD) > lim.factor*float64(baseD) {
			return fmt.Sprintf("%s %v → %v (>%gx)", col, baseD, curD, lim.factor), true
		}
		return "", true
	}
	baseR, err1 := strconv.ParseFloat(baseCell, 64)
	curR, err2 := strconv.ParseFloat(curCell, 64)
	if err1 != nil || err2 != nil {
		return "", false
	}
	if baseR < lim.rateFloor {
		return "", true
	}
	if curR < baseR/lim.rateFactor {
		return fmt.Sprintf("%s %.0f → %.0f (<1/%gx)", col, baseR, curR, lim.rateFactor), true
	}
	return "", true
}

func columnIndex(columns []string, name string) int {
	for i, c := range columns {
		if c == name {
			return i
		}
	}
	return -1
}

// rowKey joins a row's identifying cells (the non-measured columns).
func rowKey(columns []string, row []string) string {
	var parts []string
	for i, c := range columns {
		if i < len(row) && !measuredColumns[c] {
			parts = append(parts, c+"="+row[i])
		}
	}
	return strings.Join(parts, " ")
}
