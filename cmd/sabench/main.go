// Command sabench regenerates the paper's evaluation: the Figure 1 bounds
// table, the Theorem 2 and Theorem 10 adversary sweeps, the comparison with
// the DFGR13 baseline, the design ablations, the native memory-backend
// throughput table (mutex vs lock-free substrate), and the per-handle
// instrumentation table of the public API.
//
// Usage:
//
//	sabench                                  # all tables, defaults
//	sabench -table fig1 -format markdown
//	sabench -table t2 -n 6 -m 1 -k 2
//	sabench -table t10 -n 12 -k 1 -maxr 5
//	sabench -table backends -backend both
//	sabench -table handles -n 6 -k 2 -backend lockfree
//	sabench -table arena -backend lockfree
//	sabench -table waits -backend lockfree -json
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"setagreement"
	iarena "setagreement/internal/arena"
	"setagreement/internal/core"
	"setagreement/internal/experiments"
	"setagreement/internal/lowerbound"
	"setagreement/internal/register"
	"setagreement/internal/report"
	"setagreement/internal/shmem"
	"setagreement/internal/snapshot"
	"setagreement/obs"
)

func main() {
	var (
		table     = flag.String("table", "all", "which table: fig1, t2, t10, dfgr13, snapshots, components, minreg, probe, latency, backends, handles, arena, waits, scans, async, batch, obs, all")
		n         = flag.Int("n", 6, "number of processes")
		m         = flag.Int("m", 1, "obstruction degree")
		k         = flag.Int("k", 2, "agreement degree")
		maxR      = flag.Int("maxr", 5, "maximum register count for the t10 sweep")
		instances = flag.Int("instances", 3, "instances per repeated run")
		seeds     = flag.Int("seeds", 2, "schedules per check")
		backend   = flag.String("backend", "both", "native memory backend for the backends, handles, arena and waits tables: locked, lockfree, both")
		dur       = flag.Duration("dur", 150*time.Millisecond, "measurement duration per cell of the waits table")
		format    = flag.String("format", "text", "output format: text, markdown, csv")
		jsonOut   = flag.Bool("json", false, "emit results as one machine-readable JSON document (overrides -format)")
	)
	flag.Usage = func() {
		fmt.Fprint(flag.CommandLine.Output(), `usage: sabench [flags]

sabench regenerates the paper's evaluation tables and the runtime
benchmarks of this implementation. Pick one table with -table or run all:

  fig1        register-bound table (the paper's Figure 1)
  t2          Theorem 2 covering-adversary sweep
  t10         Theorem 10 cloning-adversary sweep
  dfgr13      comparison with the DFGR13 baseline algorithm
  snapshots   snapshot-construction ablation
  components  component-count ablation
  minreg      minimum-register audit for selected (n, m, k)
  probe       component-count probe under random schedules
  latency     per-instance step-latency profile
  backends    native shared-memory throughput, mutex vs lock-free
  handles     per-handle instrumentation through the public API
  arena       arena serving throughput: shards x objects x goroutines
  waits       wait-strategy latency: strategy x backend x contention
  scans       scan combining: private vs adopted views x proposers x backend
  async       sync vs async serving: in-flight proposals x backend,
              with goroutine cost (the point of ProposeAsync)
  batch       batch vs looped submission: SubmitAll against a
              ProposeAsync loop, submit-side ns/proposal plus
              completion latency and time-to-first/last-decision
  obs         per-stage latency attribution from an instrumented run
              (WithObservability): the obs collector's histogram
              quantiles for every lifecycle stage, per backend

The -json flag switches the output to one machine-readable document
({"tables": [...]}), the format CI's bench-smoke job archives; the async
and obs tables' JSON is also what cmd/benchtraj gates regressions against.

Examples:
  sabench -table fig1 -format markdown
  sabench -table t2 -n 6 -m 1 -k 2
  sabench -table arena -backend lockfree
  sabench -table waits -backend lockfree -json
  sabench -table async -backend both -json
  sabench -table batch -backend both -json

Flags:
`)
		flag.PrintDefaults()
	}
	flag.Parse()

	if *jsonOut {
		*format = "json"
	}
	if err := run(*table, *n, *m, *k, *maxR, *instances, *seeds, *backend, *dur, *format); err != nil {
		fmt.Fprintf(os.Stderr, "sabench: %v\n", err)
		os.Exit(1)
	}
}

func run(table string, n, m, k, maxR, instances, seeds int, backend string, dur time.Duration, format string) error {
	p := core.Params{N: n, M: m, K: k}
	var tables []*report.Table

	add := func(t *report.Table, err error) error {
		if err != nil {
			return err
		}
		tables = append(tables, t)
		return nil
	}

	wantAll := table == "all"
	ran := false
	if wantAll || table == "fig1" {
		ran = true
		points := fig1Points(n)
		if err := add(experiments.Fig1(points, instances, seeds)); err != nil {
			return err
		}
	}
	if wantAll || table == "t2" {
		ran = true
		if err := add(experiments.Theorem2Sweep(p, lowerbound.DefaultCoverOptions())); err != nil {
			return err
		}
	}
	if wantAll || table == "t10" {
		ran = true
		cloneN := n
		if wantAll {
			cloneN = 12 // large enough to show both sides of the bound
		}
		if err := add(experiments.Theorem10Sweep(cloneN, 1, maxR, lowerbound.DefaultCloneOptions())); err != nil {
			return err
		}
	}
	if wantAll || table == "dfgr13" {
		ran = true
		if err := add(experiments.VsDFGR13(max(n, 5))); err != nil {
			return err
		}
	}
	if wantAll || table == "snapshots" {
		ran = true
		if err := add(experiments.SnapshotAblation(p)); err != nil {
			return err
		}
	}
	if wantAll || table == "components" {
		ran = true
		if err := add(experiments.ComponentAblation(p, 4)); err != nil {
			return err
		}
	}
	if wantAll || table == "minreg" {
		ran = true
		points := []core.Params{
			{N: 3, M: 1, K: 1},
			{N: 4, M: 1, K: 1},
			{N: 5, M: 1, K: 2},
			{N: 5, M: 2, K: 2},
			{N: 6, M: 1, K: 3},
		}
		if err := add(experiments.MinRegistersTable(points, lowerbound.DefaultCoverOptions())); err != nil {
			return err
		}
	}
	if wantAll || table == "probe" {
		ran = true
		if err := add(experiments.ComponentProbe(p, seeds)); err != nil {
			return err
		}
	}
	if wantAll || table == "latency" {
		ran = true
		alg, err := core.NewRepeated(p)
		if err != nil {
			return err
		}
		if err := add(experiments.LatencyProfile(alg, instances, 16)); err != nil {
			return err
		}
	}
	if wantAll || table == "backends" {
		ran = true
		backends, err := selectBackends(backend)
		if err != nil {
			return err
		}
		if err := add(backendThroughput(backends, 150*time.Millisecond)); err != nil {
			return err
		}
	}
	if wantAll || table == "handles" {
		ran = true
		backends, err := selectPublicBackends(backend)
		if err != nil {
			return err
		}
		if err := add(handleStatsTable(backends, n, k)); err != nil {
			return err
		}
	}
	if wantAll || table == "arena" {
		ran = true
		backends, err := selectPublicBackends(backend)
		if err != nil {
			return err
		}
		if err := add(arenaThroughput(backends, 100*time.Millisecond)); err != nil {
			return err
		}
	}
	if wantAll || table == "waits" {
		ran = true
		backends, err := selectPublicBackends(backend)
		if err != nil {
			return err
		}
		if err := add(waitStrategyTable(backends, dur)); err != nil {
			return err
		}
	}
	if wantAll || table == "scans" {
		ran = true
		backends, err := selectPublicBackends(backend)
		if err != nil {
			return err
		}
		if err := add(scansTable(backends, dur)); err != nil {
			return err
		}
	}
	if wantAll || table == "async" {
		ran = true
		backends, err := selectPublicBackends(backend)
		if err != nil {
			return err
		}
		if err := add(asyncTable(backends, dur)); err != nil {
			return err
		}
	}
	if wantAll || table == "batch" {
		ran = true
		backends, err := selectPublicBackends(backend)
		if err != nil {
			return err
		}
		if err := add(batchTable(backends, dur)); err != nil {
			return err
		}
	}
	if wantAll || table == "obs" {
		ran = true
		backends, err := selectPublicBackends(backend)
		if err != nil {
			return err
		}
		if err := add(obsTable(backends, dur)); err != nil {
			return err
		}
	}
	if !ran {
		return fmt.Errorf("unknown table %q", table)
	}

	if format == "json" {
		doc, err := report.JSON(tables...)
		if err != nil {
			return err
		}
		fmt.Print(doc)
		return nil
	}
	for i, t := range tables {
		if i > 0 {
			fmt.Println()
		}
		switch format {
		case "text":
			fmt.Print(t.String())
		case "markdown":
			fmt.Print(t.Markdown())
		case "csv":
			fmt.Print(t.CSV())
		default:
			return fmt.Errorf("unknown format %q", format)
		}
	}
	return nil
}

// selectBackends resolves the -backend flag to native backends.
func selectBackends(name string) ([]shmem.Backend, error) {
	if name == "both" {
		return register.Backends(), nil
	}
	b, err := register.BackendByName(name)
	if err != nil {
		return nil, err
	}
	return []shmem.Backend{b}, nil
}

// selectPublicBackends resolves the -backend flag to public-API backends.
func selectPublicBackends(name string) ([]setagreement.MemoryBackend, error) {
	switch name {
	case "both":
		return []setagreement.MemoryBackend{setagreement.BackendLocked, setagreement.BackendLockFree}, nil
	case "locked":
		return []setagreement.MemoryBackend{setagreement.BackendLocked}, nil
	case "lockfree":
		return []setagreement.MemoryBackend{setagreement.BackendLockFree}, nil
	default:
		return nil, fmt.Errorf("unknown backend %q (have locked, lockfree, both)", name)
	}
}

// handleStatsTable runs one-shot k-set agreement through the public
// handle-first API — n goroutines, each on its claimed handle — and prints
// every handle's Stats: the per-handle shared-memory work (steps, scans,
// backoff sleep) and the object-wide backend counters (total memory steps,
// CAS retries). This is the library's observability surface; the same
// numbers are available to any production caller via Handle.Stats.
func handleStatsTable(backends []setagreement.MemoryBackend, n, k int) (*report.Table, error) {
	t := report.New("Per-handle instrumentation (one-shot agreement, public API)",
		"backend", "handle", "proposes", "steps", "scans", "wait", "wakeups", "mem-steps", "cas-retries")
	for _, be := range backends {
		a, err := setagreement.New[int](n, k,
			setagreement.WithMemoryBackend(be),
			setagreement.WithBackoff(time.Microsecond, time.Millisecond, 64),
		)
		if err != nil {
			return nil, err
		}
		handles := make([]*setagreement.Handle[int], n)
		for id := range handles {
			if handles[id], err = a.Proc(id); err != nil {
				return nil, err
			}
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		var wg sync.WaitGroup
		for id, h := range handles {
			wg.Add(1)
			go func(id int, h *setagreement.Handle[int]) {
				defer wg.Done()
				if _, err := h.Propose(ctx, 100+id); err != nil {
					fmt.Fprintf(os.Stderr, "sabench: handle %d: %v\n", id, err)
				}
			}(id, h)
		}
		wg.Wait()
		cancel()
		for id, h := range handles {
			s := h.Stats()
			t.Add(be.String(), id, s.Proposes, s.Steps, s.Scans,
				s.WaitTime.Round(time.Microsecond).String(), s.Wakeups, s.MemSteps, s.CASRetries)
		}
	}
	return t, nil
}

// waitStrategyTable measures what the wait subsystem is for: Propose
// latency under contention, per wait strategy × backend × proposer count.
// Each cell runs one repeated-agreement object with g goroutines proposing
// in a closed loop for the duration and reports the p50/p95 per-Propose
// latency, throughput, and the notify instrumentation (wakeups, spurious
// wakeups, total blocked time). All strategies share one escalation
// schedule, so the comparison isolates how the yield is spent: blind sleep
// (backoff) against being woken by the write that changes the memory
// (notify, hybrid).
func waitStrategyTable(backends []setagreement.MemoryBackend, dur time.Duration) (*report.Table, error) {
	t := report.New("Wait-strategy Propose latency (repeated agreement, k=1)",
		"backend", "strategy", "proposers", "p50", "p95", "proposes/sec", "wakeups", "spurious", "wait-total", "combined", "adopted")
	strategies := []setagreement.WaitStrategy{
		setagreement.WaitBackoff, setagreement.WaitNotify, setagreement.WaitHybrid,
	}
	for _, be := range backends {
		for _, strat := range strategies {
			for _, proposers := range []int{1, 4, 8} {
				cell, err := measureWaitStrategy(be, strat, proposers, dur)
				if err != nil {
					return nil, err
				}
				t.Add(be.String(), strat.String(), proposers,
					cell.p50.Round(time.Microsecond).String(),
					cell.p95.Round(time.Microsecond).String(),
					fmt.Sprintf("%.0f", cell.rate),
					cell.wakeups, cell.spurious,
					cell.waitTotal.Round(time.Microsecond).String(),
					cell.combined, cell.adopted)
			}
		}
	}
	return t, nil
}

// scansTable measures what scan combining is for: the shared-memory scans a
// wake batch saves, private versus combined, per backend × proposer count.
// Both variants run the notify strategy under identical contention; the
// combining columns report how many scans were served on behalf of a wake
// batch (published) and how many were satisfied without touching shared
// memory at all (adopted). hit% is adopted scans as a share of all scans —
// honest about the fact that combining only engages when waiters genuinely
// block and wake together, which takes sustained contention, not just
// concurrent callers.
func scansTable(backends []setagreement.MemoryBackend, dur time.Duration) (*report.Table, error) {
	t := report.New("Scan combining (repeated agreement, notify strategy, k=1)",
		"backend", "combining", "proposers", "p50", "proposes/sec", "scans", "combined", "adopted", "hit%")
	for _, be := range backends {
		for _, combining := range []bool{false, true} {
			for _, proposers := range []int{1, 4, 8} {
				cell, err := measureWaitStrategy(be, setagreement.WaitNotify, proposers, dur,
					setagreement.WithScanCombining(combining))
				if err != nil {
					return nil, err
				}
				mode := "private"
				if combining {
					mode = "combined"
				}
				hit := 0.0
				if cell.scans > 0 {
					hit = 100 * float64(cell.adopted) / float64(cell.scans)
				}
				t.Add(be.String(), mode, proposers,
					cell.p50.Round(time.Microsecond).String(),
					fmt.Sprintf("%.0f", cell.rate),
					cell.scans, cell.combined, cell.adopted,
					fmt.Sprintf("%.2f", hit))
			}
		}
	}
	return t, nil
}

type waitCell struct {
	p50, p95  time.Duration
	rate      float64
	wakeups   int64
	spurious  int64
	waitTotal time.Duration
	scans     int64
	combined  int64
	adopted   int64
}

// measureWaitStrategy drives one contended repeated-agreement object: g of
// n processes propose in a closed loop for the duration; per-Propose
// latencies are recorded and summarized. Extra options are appended to the
// object's configuration (the scans table toggles combining this way).
func measureWaitStrategy(be setagreement.MemoryBackend, strat setagreement.WaitStrategy, g int, dur time.Duration, extra ...setagreement.Option) (waitCell, error) {
	n := g
	if n < 2 {
		n = 2 // the core's minimum process count
	}
	// One escalation schedule for every strategy, with a window small
	// enough that a Propose crosses several yield points: the comparison
	// isolates how a yield is spent. Blind backoff sleeps at every yield it
	// reaches; the event-driven strategies skip solo yields and end
	// contended ones at the next foreign write.
	opts := append([]setagreement.Option{
		setagreement.WithMemoryBackend(be),
		setagreement.WithWaitStrategy(strat),
		setagreement.WithBackoff(100*time.Microsecond, 5*time.Millisecond, 16),
	}, extra...)
	r, err := setagreement.NewRepeated[int](n, 1, opts...)
	if err != nil {
		return waitCell{}, err
	}
	handles := make([]*setagreement.Handle[int], g)
	for id := range handles {
		if handles[id], err = r.Proc(id); err != nil {
			return waitCell{}, err
		}
	}
	var (
		stop      atomic.Bool
		wg        sync.WaitGroup
		latMu     sync.Mutex
		latencies []time.Duration
		errs      = make([]error, g)
	)
	ctx := context.Background()
	start := time.Now()
	for id, h := range handles {
		wg.Add(1)
		go func(id int, h *setagreement.Handle[int]) {
			defer wg.Done()
			var local []time.Duration
			for round := 0; !stop.Load(); round++ {
				t0 := time.Now()
				if _, err := h.Propose(ctx, 1000*round+id); err != nil {
					errs[id] = fmt.Errorf("waits proposer %d: %w", id, err)
					break
				}
				local = append(local, time.Since(t0))
			}
			latMu.Lock()
			latencies = append(latencies, local...)
			latMu.Unlock()
		}(id, h)
	}
	time.Sleep(dur)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)
	// A failed proposer means the cell's numbers are incomplete: fail the
	// whole run rather than archive a silently corrupted table.
	for _, err := range errs {
		if err != nil {
			return waitCell{}, err
		}
	}

	cell := waitCell{rate: float64(len(latencies)) / elapsed.Seconds()}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	if len(latencies) > 0 {
		cell.p50 = latencies[len(latencies)/2]
		cell.p95 = latencies[len(latencies)*95/100]
	}
	for _, h := range handles {
		s := h.Stats()
		cell.wakeups += s.Wakeups
		cell.spurious += s.SpuriousWakeups
		cell.waitTotal += s.WaitTime
		cell.scans += s.Scans
		cell.combined += s.ScansCombined
		cell.adopted += s.ScansAdopted
	}
	return cell, nil
}

// asyncTable measures what the async proposal engine is for: the cost of
// in-flight proposals, sync versus async, over one contended arena (k=1,
// up to 8 processes per object). Sync drives each in-flight proposal from
// its own goroutine — the classic shape, one blocked goroutine per
// stalled Propose. Async drives every future from ONE submitter goroutine
// over the arena's shared engine, which parks stalled proposals on their
// objects' notifiers. The goroutines column (peak runtime.NumGoroutine) is
// the headline: at 512 in-flight, sync pays 512+, async a small constant.
// p50/p95 are per-proposal completion latencies; parked-peak is the async
// engine's high-water mark of parked proposals.
func asyncTable(backends []setagreement.MemoryBackend, dur time.Duration) (*report.Table, error) {
	t := report.New("Async proposal engine (arena serving, k=1, ≤8 procs/object)",
		"backend", "mode", "in-flight", "p50", "p95", "proposes/sec", "goroutines", "wakeups", "parked-peak")
	for _, be := range backends {
		for _, inflight := range []int{1, 8, 64, 512} {
			for _, mode := range []string{"sync", "async"} {
				cell, err := measureAsync(be, mode, inflight, dur)
				if err != nil {
					return nil, err
				}
				t.Add(be.String(), mode, inflight,
					cell.p50.Round(time.Microsecond).String(),
					cell.p95.Round(time.Microsecond).String(),
					fmt.Sprintf("%.0f", cell.rate),
					cell.goroutines, cell.wakeups, cell.parkedPeak)
			}
		}
	}
	return t, nil
}

type asyncCell struct {
	p50, p95   time.Duration
	rate       float64
	goroutines int64
	wakeups    int64
	parkedPeak int64
}

// measureAsync runs one cell of the async table: `inflight` concurrently
// outstanding proposals over ceil(inflight/8) arena objects for the
// duration.
func measureAsync(be setagreement.MemoryBackend, mode string, inflight int, dur time.Duration) (asyncCell, error) {
	procs := inflight
	if procs > 8 {
		procs = 8
	}
	objects := (inflight + procs - 1) / procs
	ar, err := setagreement.NewArena[int](8, 1, setagreement.WithObjectOptions(
		setagreement.WithMemoryBackend(be),
		setagreement.WithWaitStrategy(setagreement.WaitNotify),
		setagreement.WithBackoff(50*time.Microsecond, 2*time.Millisecond, 16)))
	if err != nil {
		return asyncCell{}, err
	}
	handles := make([]*setagreement.Handle[int], 0, inflight)
	for o := 0; o < objects; o++ {
		obj := ar.Object(fmt.Sprintf("tenant-%04d", o))
		for p := 0; p < procs && len(handles) < inflight; p++ {
			h, err := obj.Proc(p)
			if err != nil {
				return asyncCell{}, err
			}
			handles = append(handles, h)
		}
	}
	ctx := context.Background()
	var (
		cell      asyncCell
		latencies []time.Duration
	)
	sample := func() {
		if g := int64(runtime.NumGoroutine()); g > cell.goroutines {
			cell.goroutines = g
		}
		if p := ar.Stats().AsyncParked; p > cell.parkedPeak {
			cell.parkedPeak = p
		}
	}
	start := time.Now()
	switch mode {
	case "sync":
		var (
			stop  atomic.Bool
			wg    sync.WaitGroup
			latMu sync.Mutex
		)
		errs := make([]error, len(handles))
		for i, h := range handles {
			wg.Add(1)
			go func(i int, h *setagreement.Handle[int]) {
				defer wg.Done()
				var local []time.Duration
				for round := 0; !stop.Load(); round++ {
					t0 := time.Now()
					if _, err := h.Propose(ctx, 1000*round+i); err != nil {
						errs[i] = fmt.Errorf("async-table sync proposer %d: %w", i, err)
						return
					}
					local = append(local, time.Since(t0))
				}
				latMu.Lock()
				latencies = append(latencies, local...)
				latMu.Unlock()
			}(i, h)
		}
		for deadline := start.Add(dur); time.Now().Before(deadline); {
			time.Sleep(dur / 50)
			sample()
		}
		stop.Store(true)
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return asyncCell{}, err
			}
		}
	case "async":
		// Completions drain through a CompletionQueue in the order they
		// resolve. The previous collector polled futures round-robin in
		// submission order, so a proposal that decided early still waited
		// for the scan to come around — inflating every latency by the poll
		// period and skewing p50 toward the scan order, not decision order.
		q := setagreement.NewCompletionQueue[int]()
		defer q.Close()
		submitted := make([]time.Time, len(handles))
		rounds := make([]int, len(handles))
		vals := make([]int, len(handles))
		for i := range vals {
			vals[i] = i
		}
		now := time.Now()
		for i := range submitted {
			submitted[i] = now
		}
		batch, err := setagreement.SubmitAll(ctx, handles, vals)
		if err != nil {
			return asyncCell{}, fmt.Errorf("async-table submit: %w", err)
		}
		if err := batch.Register(q); err != nil {
			return asyncCell{}, fmt.Errorf("async-table register: %w", err)
		}
		dctx, cancel := context.WithDeadline(ctx, start.Add(dur))
		for {
			c, err := q.Next(dctx)
			if err != nil {
				break // deadline: stop resubmitting, drain below
			}
			i := c.Tag
			if _, err := c.Value(); err != nil {
				cancel()
				return asyncCell{}, fmt.Errorf("async-table future %d: %w", i, err)
			}
			latencies = append(latencies, time.Since(submitted[i]))
			rounds[i]++
			submitted[i] = time.Now()
			fut := handles[i].ProposeAsync(ctx, 1000*rounds[i]+i)
			if err := q.Register(fut, i); err != nil {
				cancel()
				return asyncCell{}, fmt.Errorf("async-table register %d: %w", i, err)
			}
			sample()
		}
		cancel()
		// Drain the tail so no proposal outlives its arena.
		for q.Pending() > 0 {
			c, err := q.Next(ctx)
			if err != nil {
				return asyncCell{}, fmt.Errorf("async-table drain: %w", err)
			}
			if _, err := c.Value(); err != nil {
				return asyncCell{}, fmt.Errorf("async-table drain %d: %w", c.Tag, err)
			}
		}
	default:
		return asyncCell{}, fmt.Errorf("unknown async mode %q", mode)
	}
	elapsed := time.Since(start)
	cell.rate = float64(len(latencies)) / elapsed.Seconds()
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	if len(latencies) > 0 {
		cell.p50 = latencies[len(latencies)/2]
		cell.p95 = latencies[len(latencies)*95/100]
	}
	cell.wakeups = ar.Stats().Wakeups
	return cell, nil
}

// batchTable measures the batch submission path against the looped
// baseline it amortizes: mode=loop calls ProposeAsync once per handle,
// mode=batch hands the same handles to SubmitAll in one call. Both drain
// through a CompletionQueue. submit-ns/prop is the submitter's cost per
// proposal for the handoff alone — the number BenchmarkSubmitBatch gates
// at ≥2× in the batch's favor at size 64+; p50/p95 are completion
// latencies from the round's submit start; ttfd/ttld are the mean
// time-to-first- and time-to-last-decision per round, the fan-out
// latencies the fanout example prints.
func batchTable(backends []setagreement.MemoryBackend, dur time.Duration) (*report.Table, error) {
	t := report.New("Batch submission (arena serving, k=1, solo handles)",
		"backend", "mode", "batch", "submit-ns/prop", "p50", "p95", "proposes/sec", "ttfd", "ttld")
	for _, be := range backends {
		for _, size := range []int{8, 64, 256} {
			for _, mode := range []string{"loop", "batch"} {
				cell, err := measureBatch(be, mode, size, dur)
				if err != nil {
					return nil, err
				}
				t.Add(be.String(), mode, size,
					fmt.Sprintf("%.0f", cell.submitNS),
					cell.p50.Round(time.Microsecond).String(),
					cell.p95.Round(time.Microsecond).String(),
					fmt.Sprintf("%.0f", cell.rate),
					cell.ttfd.Round(time.Microsecond).String(),
					cell.ttld.Round(time.Microsecond).String())
			}
		}
	}
	return t, nil
}

type batchCell struct {
	submitNS   float64 // submit-side ns per proposal
	p50, p95   time.Duration
	rate       float64
	ttfd, ttld time.Duration
}

// measureBatch runs one cell of the batch table: rounds of `size` solo
// proposals over retained arena handles (one key each, no contention, so
// the numbers isolate the submission and completion machinery) for the
// duration.
func measureBatch(be setagreement.MemoryBackend, mode string, size int, dur time.Duration) (batchCell, error) {
	ar, err := setagreement.NewArena[int](4, 1, setagreement.WithObjectOptions(
		setagreement.WithMemoryBackend(be),
		setagreement.WithWaitStrategy(setagreement.WaitNotify),
		setagreement.WithBackoff(50*time.Microsecond, 2*time.Millisecond, 16)))
	if err != nil {
		return batchCell{}, err
	}
	handles := make([]*setagreement.Handle[int], size)
	for i := range handles {
		h, err := ar.Object(fmt.Sprintf("slot-%04d", i)).Proc(0)
		if err != nil {
			return batchCell{}, err
		}
		handles[i] = h
	}
	ctx := context.Background()
	vals := make([]int, size)
	futs := make([]*setagreement.Future[int], size)
	var (
		latencies        []time.Duration
		submitNS         int64
		proposals        int
		ttfdSum, ttldSum time.Duration
		rounds           int
	)
	start := time.Now()
	for deadline := start.Add(dur); time.Now().Before(deadline); rounds++ {
		for i := range vals {
			vals[i] = 1000*rounds + i
		}
		q := setagreement.NewCompletionQueue[int]()
		t0 := time.Now()
		if mode == "loop" {
			for i, h := range handles {
				futs[i] = h.ProposeAsync(ctx, vals[i])
			}
			submitNS += time.Since(t0).Nanoseconds()
			for i, f := range futs {
				if err := q.Register(f, i); err != nil {
					return batchCell{}, fmt.Errorf("batch-table register %d: %w", i, err)
				}
			}
		} else {
			b, err := setagreement.SubmitAll(ctx, handles, vals)
			if err != nil {
				return batchCell{}, fmt.Errorf("batch-table submit: %w", err)
			}
			submitNS += time.Since(t0).Nanoseconds()
			if err := b.Register(q); err != nil {
				return batchCell{}, fmt.Errorf("batch-table register: %w", err)
			}
		}
		for seen := 0; seen < size; seen++ {
			c, err := q.Next(ctx)
			if err != nil {
				return batchCell{}, fmt.Errorf("batch-table collect: %w", err)
			}
			if _, err := c.Value(); err != nil {
				return batchCell{}, fmt.Errorf("batch-table proposal %d: %w", c.Tag, err)
			}
			lat := time.Since(t0)
			latencies = append(latencies, lat)
			if seen == 0 {
				ttfdSum += lat
			}
			if seen == size-1 {
				ttldSum += lat
			}
		}
		q.Close()
		proposals += size
	}
	elapsed := time.Since(start)
	var cell batchCell
	cell.submitNS = float64(submitNS) / float64(proposals)
	cell.rate = float64(proposals) / elapsed.Seconds()
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	if len(latencies) > 0 {
		cell.p50 = latencies[len(latencies)/2]
		cell.p95 = latencies[len(latencies)*95/100]
	}
	if rounds > 0 {
		cell.ttfd = ttfdSum / time.Duration(rounds)
		cell.ttld = ttldSum / time.Duration(rounds)
	}
	return cell, nil
}

// obsTable runs the instrumented counterpart of the batch workload — a
// fan-out of two-contender consensuses submitted through SubmitBatch with
// WithObservability on — and reports the collector's own per-stage latency
// attribution: for every lifecycle stage the obs package histograms
// (submit→first-step, park, wake→decide, submit→decide, decide→delivery,
// plus the synchronous Propose path), its observation count and p50/p95.
// Every stage appears in every run, observed or not, so the rows form a
// stable grid cmd/benchtraj can gate stage latencies against
// (bench/baseline-obs.json); stages the schedule never produced (no parks
// on an uncontended run) report count 0 and zero quantiles.
func obsTable(backends []setagreement.MemoryBackend, dur time.Duration) (*report.Table, error) {
	t := report.New("Per-stage latency attribution (instrumented fan-out, k=1, 2 contenders/key)",
		"backend", "stage", "count", "stage-p50", "stage-p95")
	for _, be := range backends {
		col, err := measureObs(be, dur)
		if err != nil {
			return nil, err
		}
		snap := col.Snapshot(false)
		for _, stage := range []obs.Latency{
			obs.LatSubmitToStart, obs.LatPark, obs.LatWakeToDecide,
			obs.LatSubmitToDecide, obs.LatDecideToDeliver,
			obs.LatWait, obs.LatSyncPropose,
		} {
			hs := snap.Latencies[stage.String()]
			t.Add(be.String(), stage.String(), hs.Count,
				hs.Quantile(0.5).Round(time.Microsecond).String(),
				hs.Quantile(0.95).Round(time.Microsecond).String())
		}
	}
	return t, nil
}

// measureObs drives rounds of 128-key two-contender batch fan-outs (fresh
// keys each round, drained through a CompletionQueue) for the duration,
// then a strand of solo synchronous Proposes, all against one instrumented
// arena, and returns its collector.
func measureObs(be setagreement.MemoryBackend, dur time.Duration) (*obs.Collector, error) {
	col := obs.NewCollector(obs.WithRingSize(1 << 12))
	ar, err := setagreement.NewArena[int](2, 1, setagreement.WithObjectOptions(
		setagreement.WithMemoryBackend(be),
		setagreement.WithWaitStrategy(setagreement.WaitNotify),
		setagreement.WithBackoff(50*time.Microsecond, 2*time.Millisecond, 16),
		setagreement.WithObservability(col)))
	if err != nil {
		return nil, err
	}
	ctx := context.Background()
	q := setagreement.NewCompletionQueue[int]()
	defer q.Close()
	const keysPerRound = 128
	ops := make([]setagreement.BatchOp[int], 0, 2*keysPerRound)
	deadline := time.Now().Add(dur)
	for round := 0; round == 0 || time.Now().Before(deadline); round++ {
		ops = ops[:0]
		for i := 0; i < keysPerRound; i++ {
			k := fmt.Sprintf("round-%04d-key-%04d", round, i)
			ops = append(ops,
				setagreement.BatchOp[int]{Key: k, Proc: 0, Value: 2 * i},
				setagreement.BatchOp[int]{Key: k, Proc: 1, Value: 2*i + 1})
		}
		batch, err := ar.SubmitBatch(ctx, ops)
		if err != nil {
			return nil, fmt.Errorf("obs-table submit: %w", err)
		}
		if err := batch.Register(q); err != nil {
			return nil, fmt.Errorf("obs-table register: %w", err)
		}
		for seen := 0; seen < batch.Len(); seen++ {
			c, err := q.Next(ctx)
			if err != nil {
				return nil, fmt.Errorf("obs-table collect: %w", err)
			}
			if _, err := c.Value(); err != nil {
				return nil, fmt.Errorf("obs-table proposal %d: %w", c.Tag, err)
			}
		}
	}
	// The sync strand: the blocking Propose path records wait and
	// sync_propose, which the async fan-out never touches.
	h, err := ar.Object("sync-strand").Proc(0)
	if err != nil {
		return nil, err
	}
	for i := 0; i < 256; i++ {
		if _, err := h.Propose(ctx, i); err != nil {
			return nil, fmt.Errorf("obs-table sync propose: %w", err)
		}
	}
	return col, nil
}

// arenaThroughput measures the arena serving path — Object(key) lookups on
// a pre-populated registry — across shard count × object count × goroutine
// count, per backend. At 1 shard every lookup serializes on one RWMutex; on
// multicore hardware throughput scales with the shard count. The same sweep
// is available as a Go benchmark (BenchmarkArenaShards).
func arenaThroughput(backends []setagreement.MemoryBackend, dur time.Duration) (*report.Table, error) {
	t := report.New("Arena serving throughput (Object lookups/sec, higher is better)",
		"backend", "shards", "objects", "clients", "lookups/sec")
	// Shard counts are normalized to what NewArena actually uses (powers of
	// two) and deduplicated, so the table never attributes one
	// configuration's throughput to another.
	var shardCounts []int
	seen := make(map[int]bool)
	for _, req := range []int{1, 2, 4, runtime.GOMAXPROCS(0)} {
		actual := iarena.Shards(req)
		if !seen[actual] {
			seen[actual] = true
			shardCounts = append(shardCounts, actual)
		}
	}
	for _, be := range backends {
		for _, shards := range shardCounts {
			for _, objects := range []int{16, 256} {
				for _, goroutines := range []int{8, 32} {
					ops, err := measureArenaOps(be, shards, objects, goroutines, dur)
					if err != nil {
						return nil, err
					}
					t.Add(be.String(), shards, objects, goroutines, fmt.Sprintf("%.0f", ops))
				}
			}
		}
	}
	return t, nil
}

// measureArenaOps hammers one arena's Object path from g goroutines over
// `objects` pre-created keys for the duration and returns lookups/sec.
// shards must already be normalized (a power of two, as iarena.Shards
// returns) so the reported configuration matches the measured one.
func measureArenaOps(be setagreement.MemoryBackend, shards, objects, g int, dur time.Duration) (float64, error) {
	ar, err := setagreement.NewArena[int](4, 2,
		setagreement.WithShards(shards),
		setagreement.WithObjectOptions(setagreement.WithMemoryBackend(be)))
	if err != nil {
		return 0, err
	}
	keys := make([]string, objects)
	for i := range keys {
		keys[i] = fmt.Sprintf("tenant-%04d", i)
		ar.Object(keys[i])
	}
	var (
		stop  atomic.Bool
		total atomic.Int64
		wg    sync.WaitGroup
	)
	start := time.Now()
	for w := 0; w < g; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var count int64
			for i := w * 17; !stop.Load(); i++ {
				ar.Object(keys[i%objects])
				count++
			}
			total.Add(count)
		}(w)
	}
	time.Sleep(dur)
	stop.Store(true)
	wg.Wait()
	return float64(total.Load()) / time.Since(start).Seconds(), nil
}

// backendThroughput measures native shared-memory throughput per backend:
// n goroutines hammer one n-component snapshot (one Update then one Scan per
// round) through each snapshot runtime for the given duration. This is the
// wall-clock counterpart of the simulator's step counts — it shows what the
// substrate costs on real hardware, and how the mutex backend serializes
// where the lock-free one scales.
func backendThroughput(backends []shmem.Backend, dur time.Duration) (*report.Table, error) {
	t := report.New("Native backend throughput (shared-memory ops/sec, higher is better)",
		"backend", "snapshot", "clients", "ops/sec")
	impls := []snapshot.Impl{
		snapshot.ImplAtomic, snapshot.ImplMW, snapshot.ImplSWEmulation, snapshot.ImplDoubleCollect,
	}
	for _, be := range backends {
		for _, impl := range impls {
			for _, n := range []int{2, 8} {
				ops, err := measureBackendOps(be, impl, n, dur)
				if err != nil {
					return nil, err
				}
				t.Add(be.Name(), impl.String(), n, fmt.Sprintf("%.0f", ops))
			}
		}
	}
	return t, nil
}

// measureBackendOps runs n goroutines over one shared n-component snapshot
// realized by impl on the backend and returns logical operations per second.
// Double-collect scans are bounded (TryScan) so sustained updates cannot
// starve the measurement loop; a failed attempt still counts as work done.
func measureBackendOps(be shmem.Backend, impl snapshot.Impl, n int, dur time.Duration) (float64, error) {
	_, wrap, err := snapshot.Materialize(shmem.Spec{Snaps: []int{n}}, impl, n, be)
	if err != nil {
		return 0, err
	}
	var (
		stop  atomic.Bool
		total atomic.Int64
		wg    sync.WaitGroup
	)
	start := time.Now()
	for id := 0; id < n; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			wmem := wrap(id)
			ts, bounded := wmem.(shmem.TryScanner)
			var count int64
			for round := 0; !stop.Load(); round++ {
				wmem.Update(0, id, round&0xfff)
				if bounded {
					ts.TryScan(0, 4)
				} else {
					wmem.Scan(0)
				}
				count += 2
			}
			total.Add(count)
		}(id)
	}
	time.Sleep(dur)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)
	return float64(total.Load()) / elapsed.Seconds(), nil
}

// fig1Points picks a representative parameter sweep up to n.
func fig1Points(n int) []core.Params {
	var points []core.Params
	for _, p := range []core.Params{
		{N: 3, M: 1, K: 1},
		{N: 4, M: 1, K: 2},
		{N: 5, M: 2, K: 2},
		{N: 6, M: 1, K: 3},
		{N: 6, M: 2, K: 4},
		{N: 7, M: 3, K: 4},
		{N: 8, M: 2, K: 5},
	} {
		if p.N <= max(n, 8) && p.Validate() == nil {
			points = append(points, p)
		}
	}
	return points
}
