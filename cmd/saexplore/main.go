// Command saexplore model-checks an algorithm in the small: it enumerates
// every configuration reachable within bounded depth (merging equivalent
// configurations) and checks validity and k-agreement in each. A
// non-truncated run is an exhaustive proof for that system size; a
// truncated run is still a far denser audit than schedule sampling.
//
// Usage:
//
//	saexplore -alg oneshot -n 2 -k 1 -depth 64
//	saexplore -alg repeated -n 2 -k 1 -instances 2 -states 50000
package main

import (
	"flag"
	"fmt"
	"os"

	"setagreement/internal/core"
	"setagreement/internal/explore"
	"setagreement/internal/sim"
	"setagreement/internal/spec"
)

func main() {
	var (
		algName   = flag.String("alg", "oneshot", "algorithm: oneshot, repeated, anonymous, anonymous-oneshot")
		n         = flag.Int("n", 2, "number of processes")
		m         = flag.Int("m", 1, "obstruction degree")
		k         = flag.Int("k", 1, "agreement degree")
		instances = flag.Int("instances", 1, "agreement instances per process")
		maxStates = flag.Int("states", 100_000, "maximum distinct configurations")
		maxDepth  = flag.Int("depth", 48, "maximum schedule depth")
	)
	flag.Usage = func() {
		fmt.Fprint(flag.CommandLine.Output(), `usage: saexplore [flags]

saexplore model-checks an algorithm in the small: it enumerates every
configuration reachable within bounded depth (merging equivalent
configurations) and checks validity and k-agreement in each. A
non-truncated run is an exhaustive proof for that system size; a truncated
run is still a far denser audit than schedule sampling.

Examples:
  saexplore -alg oneshot -n 2 -k 1 -depth 64
  saexplore -alg repeated -n 2 -k 1 -instances 2 -states 50000

Flags:
`)
		flag.PrintDefaults()
	}
	flag.Parse()
	if err := run(*algName, *n, *m, *k, *instances, *maxStates, *maxDepth); err != nil {
		fmt.Fprintf(os.Stderr, "saexplore: %v\n", err)
		os.Exit(1)
	}
}

func run(algName string, n, m, k, instances, maxStates, maxDepth int) error {
	p := core.Params{N: n, M: m, K: k}
	var (
		alg core.Algorithm
		err error
	)
	switch algName {
	case "oneshot":
		alg, err = core.NewOneShot(p)
	case "repeated":
		alg, err = core.NewRepeated(p)
	case "anonymous":
		alg, err = core.NewAnonRepeated(p)
	case "anonymous-oneshot":
		alg, err = core.NewAnonOneShot(p)
	default:
		err = fmt.Errorf("unknown algorithm %q", algName)
	}
	if err != nil {
		return err
	}

	inputs := make([][]int, n)
	for i := range inputs {
		inputs[i] = make([]int, instances)
		for t := range inputs[i] {
			inputs[i][t] = 1000*(t+1) + i
		}
	}
	memSpec, _ := core.System(alg, inputs)
	procs := func() []sim.ProcSpec {
		_, ps := core.System(alg, inputs)
		return ps
	}

	decidedStates := 0
	out, err := explore.Run(memSpec, procs,
		explore.Options{MaxStates: maxStates, MaxDepth: maxDepth},
		func(st *explore.State) (bool, error) {
			outs := spec.Collect(st.Runner)
			if err := spec.CheckAll(inputs, outs, k); err != nil {
				return false, fmt.Errorf("VIOLATION at schedule %v: %w", st.Suffix, err)
			}
			if st.Runner.AllDone() {
				decidedStates++
			}
			return false, nil
		})
	if err != nil {
		return err
	}

	fmt.Printf("algorithm        %s (%v), %d instance(s)\n", alg.Name(), p, instances)
	fmt.Printf("configurations   %d distinct (depth ≤ %d)\n", out.States, maxDepth)
	fmt.Printf("fully decided    %d configurations\n", decidedStates)
	if out.Truncated {
		fmt.Printf("coverage         TRUNCATED by bounds (-states/-depth); safety held in every visited configuration\n")
	} else {
		fmt.Printf("coverage         EXHAUSTIVE: every reachable configuration checked\n")
	}
	fmt.Printf("verdict          validity and %d-agreement hold everywhere visited\n", k)
	return nil
}
