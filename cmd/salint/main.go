// salint is the multichecker for the repo's concurrency-contract analyzers
// (internal/analysis/salint): viewmut, stepsafety, atomicword, capassert,
// ctxwait and hotsend — the mechanical form of the read-only view rule, the
// resumable-Step restart-safety rule, the one-atomic-state-word discipline,
// capability-probing, cancellable waits and non-blocking recorder hot
// paths.
//
// Two modes:
//
//	salint [-tests=false] [-github] [patterns...]
//	    Standalone: load the packages (default ./..., test files included)
//	    with the go tool and report findings as file:line:col lines,
//	    optionally followed by GitHub Actions ::error annotations. Exit
//	    status 2 when findings exist, 1 on errors.
//
//	go vet -vettool=$(command -v salint) ./...
//	    Driver mode: cmd/go invokes salint once per package with a JSON
//	    config file (the vet unitchecker protocol: -V=full for the cache
//	    fingerprint, then <unit>.cfg arguments). Dependency-only units
//	    write their (empty) facts file and exit; analysis units type-check
//	    from the export data go vet supplies — no go list subprocess.
//
// Suppression: a finding is silenced by `//lint:ignore <analyzer> reason`
// on its line or the line above; the reason is mandatory.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"strings"

	"setagreement/internal/analysis"
	"setagreement/internal/analysis/salint"
)

func main() {
	vFlag := flag.String("V", "", "print version and exit (vet driver protocol)")
	printFlags := flag.Bool("flags", false, "print flags as JSON and exit (vet driver protocol)")
	tests := flag.Bool("tests", true, "standalone mode: include _test.go files (test package variants)")
	github := flag.Bool("github", false, "standalone mode: also emit GitHub Actions ::error annotations")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: salint [-tests=false] [-github] [packages]\n"+
				"       go vet -vettool=$(command -v salint) [packages]\n\n"+
				"Static enforcement of the repo's concurrency contracts; see\n"+
				"internal/analysis/salint and DESIGN.md \"Statically enforced invariants\".\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *vFlag != "" {
		printVersion(*vFlag)
		return
	}
	if *printFlags {
		printFlagsJSON()
		return
	}
	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(vetUnit(args[0]))
	}
	os.Exit(standalone(args, *tests, *github))
}

// printVersion implements the -V=full handshake: cmd/go fingerprints the
// tool binary to key vet's result cache, expecting the same shape the
// x/tools unitchecker prints.
func printVersion(mode string) {
	if mode != "full" {
		fmt.Fprintf(os.Stderr, "salint: unsupported flag value: -V=%s\n", mode)
		os.Exit(1)
	}
	exe, err := os.Executable()
	if err != nil {
		fatal(err)
	}
	data, err := os.ReadFile(exe)
	if err != nil {
		fatal(err)
	}
	h := sha256.Sum256(data)
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n",
		filepath.Base(exe), string(h[:12]))
}

// printFlagsJSON implements the -flags handshake: cmd/go asks the vettool
// which flags it accepts so it can pass analyzer options through. The
// expected shape is the x/tools analysisflags JSON list.
func printFlagsJSON() {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var flags []jsonFlag
	flag.VisitAll(func(f *flag.Flag) {
		b, ok := f.Value.(interface{ IsBoolFlag() bool })
		flags = append(flags, jsonFlag{f.Name, ok && b.IsBoolFlag(), f.Usage})
	})
	data, err := json.MarshalIndent(flags, "", "\t")
	if err != nil {
		fatal(err)
	}
	os.Stdout.Write(data)
}

// standalone loads patterns with the go tool and checks them.
func standalone(patterns []string, tests, github bool) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	findings, err := salint.CheckPatterns(".", tests, patterns...)
	if err != nil {
		fatal(err)
	}
	salint.Print(os.Stderr, findings, github)
	if len(findings) > 0 {
		return 2
	}
	return 0
}

// vetConfig is the subset of cmd/go's vet unit config salint consumes
// (the unitchecker protocol).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// vetUnit analyzes one package unit on go vet's behalf.
func vetUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fatal(err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fatal(fmt.Errorf("salint: parsing %s: %v", cfgPath, err))
	}
	// The suite has no cross-package facts, so the facts ("vetx") output is
	// always empty — but cmd/go expects the file to exist.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fatal(err)
		}
	}
	if cfg.VetxOnly {
		return 0 // dependency pass: facts only, and ours are empty
	}

	fset := token.NewFileSet()
	files, err := analysis.ParseFiles(fset, cfg.Dir, cfg.GoFiles)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fatal(err)
	}
	imp := analysis.ExportImporter(fset, cfg.PackageFile, cfg.ImportMap)
	pkg, err := analysis.TypeCheck(fset, cfg.ImportPath, files, imp)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fatal(fmt.Errorf("salint: typechecking %s: %v", cfg.ImportPath, err))
	}
	diags, err := analysis.Check(pkg, salint.Analyzers())
	if err != nil {
		fatal(err)
	}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		fmt.Fprintf(os.Stderr, "%s: %s: %s\n", pos, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
