// Command salower runs the executable lower-bound adversaries against an
// algorithm configured with a chosen register count, printing the verdict
// and the witness execution's outputs.
//
// Usage:
//
//	salower -attack cover -n 5 -m 1 -k 1 -r 3     # Theorem 2 adversary
//	salower -attack clone -n 12 -k 1 -r 3         # Theorem 10 adversary
package main

import (
	"flag"
	"fmt"
	"os"

	"setagreement/internal/core"
	"setagreement/internal/lowerbound"
)

func main() {
	var (
		attack = flag.String("attack", "cover", "adversary: cover (Theorem 2), clone (Theorem 10)")
		n      = flag.Int("n", 5, "number of processes")
		m      = flag.Int("m", 1, "obstruction degree")
		k      = flag.Int("k", 1, "agreement degree")
		r      = flag.Int("r", 3, "register count under attack")
	)
	flag.Usage = func() {
		fmt.Fprint(flag.CommandLine.Output(), `usage: salower [flags]

salower runs the executable lower-bound adversaries against an algorithm
configured with a chosen register count, printing the verdict and the
witness execution's outputs. The cover attack realizes Theorem 2 (repeated
k-set agreement needs more than n+m-k-1 registers, by covering); the clone
attack realizes Lemma 9 / Theorem 10 (anonymous k-set agreement needs
~sqrt(m(n/k-2)) registers, by gluing clone armies over matching register
signatures).

Examples:
  salower -attack cover -n 5 -m 1 -k 1 -r 3
  salower -attack clone -n 12 -k 1 -r 3

Flags:
`)
		flag.PrintDefaults()
	}
	flag.Parse()

	if err := run(*attack, *n, *m, *k, *r); err != nil {
		fmt.Fprintf(os.Stderr, "salower: %v\n", err)
		os.Exit(1)
	}
}

func run(attack string, n, m, k, r int) error {
	p := core.Params{N: n, M: m, K: k}
	switch attack {
	case "cover":
		alg, err := core.NewRepeatedComponents(p, r)
		if err != nil {
			return err
		}
		rep, err := lowerbound.CoverAttack(alg, lowerbound.DefaultCoverOptions())
		if err != nil {
			return err
		}
		fmt.Printf("Theorem 2 covering adversary — repeated %d-set agreement, %v\n", k, p)
		fmt.Printf("bound n+m−k = %d, attacked register count = %d\n", n+m-k, r)
		fmt.Printf("verdict: %v\n", rep.Verdict)
		fmt.Printf("detail:  %s\n", rep.Detail)
		if rep.Verdict == lowerbound.VerdictSafety {
			fmt.Printf("witness: instance %d decided %v (α length %d, splice %d steps)\n",
				rep.Instance, rep.Outputs, rep.ScheduleLen, rep.SpliceSteps)
			for j, ph := range rep.Phases {
				fmt.Printf("phase %d: Q=%v P=%v A=%v\n", j+1, ph.Q, ph.P, ph.A)
			}
		}
	case "clone":
		if m != 1 {
			return fmt.Errorf("the clone adversary implements the m=1 construction")
		}
		alg, err := core.NewAnonComponents(p, r, false)
		if err != nil {
			return err
		}
		rep, err := lowerbound.CloneAttack(alg, lowerbound.DefaultCloneOptions())
		if err != nil {
			return err
		}
		fmt.Printf("Theorem 10 clone adversary — anonymous one-shot %d-set agreement, %v\n", k, p)
		fmt.Printf("attacked register count = %d, clone army needed = %d (n = %d)\n",
			r, rep.ProcessesNeeded, n)
		fmt.Printf("verdict: %v\n", rep.Verdict)
		fmt.Printf("detail:  %s\n", rep.Detail)
		if rep.Verdict == lowerbound.VerdictSafety {
			fmt.Printf("witness: outputs %v via %d mains+clones over signature %v\n",
				rep.Outputs, rep.ProcessesUsed, rep.Signature)
		}
	default:
		return fmt.Errorf("unknown attack %q", attack)
	}
	return nil
}
