// Command sasim runs one of the paper's algorithms in the deterministic
// simulator under a chosen schedule and reports the outcome: decisions per
// instance, step counts, distinct registers written, and safety verdicts.
// It can check the paper's lemma invariants after every step, run over
// register-implemented snapshots, and export or display the execution
// trace.
//
// Usage:
//
//	sasim -alg repeated -n 5 -m 1 -k 2 -sched random -seed 7 -instances 3
//	sasim -alg anonymous -n 4 -k 2 -sched eventually-m -timeline
//	sasim -alg oneshot -n 4 -k 2 -snapshot mw -invariants -json trace.jsonl
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"setagreement/internal/core"
	"setagreement/internal/sched"
	"setagreement/internal/sim"
	"setagreement/internal/snapshot"
	"setagreement/internal/spec"
	"setagreement/internal/trace"
)

func main() {
	var (
		algName    = flag.String("alg", "oneshot", "algorithm: oneshot, repeated, anonymous, anonymous-oneshot")
		n          = flag.Int("n", 5, "number of processes")
		m          = flag.Int("m", 1, "obstruction degree")
		k          = flag.Int("k", 2, "agreement degree")
		schedName  = flag.String("sched", "random", "schedule: sequential, roundrobin, random, eventually-m, blocker")
		seed       = flag.Int64("seed", 1, "schedule seed")
		instances  = flag.Int("instances", 1, "agreement instances per process (repeated algorithms)")
		budget     = flag.Int("budget", 1_000_000, "step budget")
		snapName   = flag.String("snapshot", "atomic", "snapshot substrate: atomic, mw, sw, double-collect")
		invariants = flag.Bool("invariants", false, "check the paper's lemma invariants after every step")
		timeline   = flag.Bool("timeline", false, "print an ASCII space-time diagram")
		jsonPath   = flag.String("json", "", "write the execution trace as JSONL to this file")
	)
	flag.Usage = func() {
		fmt.Fprint(flag.CommandLine.Output(), `usage: sasim [flags]

sasim runs one of the paper's algorithms in the deterministic simulator
under a chosen schedule and reports the outcome: decisions per instance,
step counts, distinct registers written, and safety verdicts. It can check
the paper's lemma invariants after every step, run over register-implemented
snapshots, and export or display the execution trace.

Examples:
  sasim -alg repeated -n 5 -m 1 -k 2 -sched random -seed 7 -instances 3
  sasim -alg anonymous -n 4 -k 2 -sched eventually-m -timeline
  sasim -alg oneshot -n 4 -k 2 -snapshot mw -invariants -json trace.jsonl

Flags:
`)
		flag.PrintDefaults()
	}
	flag.Parse()

	cfg := config{
		alg: *algName, n: *n, m: *m, k: *k,
		sched: *schedName, seed: *seed, instances: *instances, budget: *budget,
		snapshot: *snapName, invariants: *invariants, timeline: *timeline, jsonPath: *jsonPath,
	}
	if err := run(cfg); err != nil {
		fmt.Fprintf(os.Stderr, "sasim: %v\n", err)
		os.Exit(1)
	}
}

type config struct {
	alg        string
	n, m, k    int
	sched      string
	seed       int64
	instances  int
	budget     int
	snapshot   string
	invariants bool
	timeline   bool
	jsonPath   string
}

func buildAlg(name string, p core.Params) (core.Algorithm, error) {
	switch name {
	case "oneshot":
		return core.NewOneShot(p)
	case "repeated":
		return core.NewRepeated(p)
	case "anonymous":
		return core.NewAnonRepeated(p)
	case "anonymous-oneshot":
		return core.NewAnonOneShot(p)
	default:
		return nil, fmt.Errorf("unknown algorithm %q", name)
	}
}

func buildSched(name string, p core.Params, seed int64) (sim.Scheduler, error) {
	switch name {
	case "sequential":
		return &sched.Sequential{}, nil
	case "roundrobin":
		return &sched.RoundRobin{}, nil
	case "random":
		return sched.NewRandom(seed), nil
	case "eventually-m":
		movers := make([]int, p.M)
		for i := range movers {
			movers[i] = (int(seed) + i) % p.N
		}
		return sched.NewEventuallyM(movers, 40*p.N, seed), nil
	case "blocker":
		return sched.NewBlocker(), nil
	default:
		return nil, fmt.Errorf("unknown schedule %q", name)
	}
}

func buildImpl(name string) (snapshot.Impl, error) {
	switch name {
	case "atomic":
		return snapshot.ImplAtomic, nil
	case "mw":
		return snapshot.ImplMW, nil
	case "sw":
		return snapshot.ImplSWEmulation, nil
	case "double-collect":
		return snapshot.ImplDoubleCollect, nil
	default:
		return 0, fmt.Errorf("unknown snapshot substrate %q", name)
	}
}

func buildInvariants(algName string, inputs [][]int) []spec.Invariant {
	invs := []spec.Invariant{spec.StoredValidity{Inputs: inputs}}
	switch algName {
	case "oneshot":
		invs = append(invs, spec.Lemma3{})
	case "repeated":
		invs = append(invs, spec.Lemma12{})
	}
	return invs
}

func run(cfg config) error {
	p := core.Params{N: cfg.n, M: cfg.m, K: cfg.k}
	alg, err := buildAlg(cfg.alg, p)
	if err != nil {
		return err
	}
	s, err := buildSched(cfg.sched, p, cfg.seed)
	if err != nil {
		return err
	}
	impl, err := buildImpl(cfg.snapshot)
	if err != nil {
		return err
	}
	if alg.Anonymous() && (impl == snapshot.ImplMW || impl == snapshot.ImplSWEmulation) {
		return fmt.Errorf("snapshot substrate %v needs identifiers; anonymous algorithms support atomic or double-collect", impl)
	}
	if cfg.invariants && impl != snapshot.ImplAtomic {
		return fmt.Errorf("-invariants inspects the atomic snapshot contents; use -snapshot atomic")
	}

	inputs := make([][]int, cfg.n)
	for i := range inputs {
		inputs[i] = make([]int, cfg.instances)
		for t := range inputs[i] {
			inputs[i][t] = 1000*(t+1) + i
		}
	}

	physical, wrap, err := snapshot.Wire(alg.Spec(), impl, p.N)
	if err != nil {
		return err
	}
	memSpec, procs := core.WrappedSystem(alg, inputs, physical, wrap)
	r, err := sim.NewRunner(memSpec, procs)
	if err != nil {
		return err
	}
	defer r.Abort()
	recording := cfg.timeline || cfg.jsonPath != ""
	r.Record(recording)

	var runErr error
	if cfg.invariants {
		runErr = spec.RunWithInvariants(r, s, cfg.budget, buildInvariants(cfg.alg, inputs)...)
	} else {
		_, runErr = r.Run(s, cfg.budget)
	}
	if runErr != nil {
		return runErr
	}

	events := trace.FromLog(r.Log())
	if cfg.timeline {
		fmt.Print(trace.Timeline(events, cfg.n))
		fmt.Println()
	}
	if cfg.jsonPath != "" {
		f, err := os.Create(cfg.jsonPath)
		if err != nil {
			return err
		}
		if err := trace.WriteJSONL(f, events); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("trace          %d events written to %s\n", len(events), cfg.jsonPath)
	}

	fmt.Printf("algorithm      %s (%v)\n", alg.Name(), p)
	fmt.Printf("schedule       %s (seed %d)\n", cfg.sched, cfg.seed)
	fmt.Printf("substrate      %v (%d physical registers)\n", impl, physical.RegisterCost(p.N))
	fmt.Printf("steps          %d (budget %d, all-done=%v)\n", r.Steps(), cfg.budget, r.AllDone())
	fmt.Printf("registers      claimed %d, locations written %d\n", alg.Registers(), r.DistinctWrites())
	if cfg.invariants {
		fmt.Printf("invariants     ok (checked every step)\n")
	}

	outs := spec.Collect(r)
	byInst := outs.ByInstance()
	insts := make([]int, 0, len(byInst))
	for inst := range byInst {
		insts = append(insts, inst)
	}
	sort.Ints(insts)
	for _, inst := range insts {
		vals := byInst[inst]
		sort.Ints(vals)
		fmt.Printf("instance %-4d  outputs %v\n", inst, vals)
	}
	if recording {
		fmt.Println()
		fmt.Print(trace.Summary(events, cfg.n))
	}

	if err := spec.CheckAll(inputs, outs, cfg.k); err != nil {
		fmt.Printf("safety         VIOLATED: %v\n", err)
		return nil
	}
	fmt.Printf("safety         ok (validity + %d-agreement)\n", cfg.k)
	return nil
}
