package setagreement

import (
	"fmt"
	"sync"
)

// Codec translates between a caller's value domain T and the compact
// integer code space the core algorithms execute over. The paper's
// algorithms work over an abstract domain D; the implementation runs them
// over ints, and the codec carries typed values end-to-end through that
// core.
//
// Encode must be deterministic and injective — equal values map to equal
// codes, distinct values to distinct codes — and Decode must invert it:
// the agreement property "at most k distinct decisions" is enforced on
// codes, so a codec that conflates distinct values silently changes what
// the algorithms decide. A codec is shared by every handle of one
// agreement object, so both methods must be safe for concurrent use.
// Decode is only ever asked about codes that Encode produced on the same
// object: k-set agreement validity guarantees every decided value was some
// process's input, and every input is encoded before it reaches shared
// memory.
//
// Small non-negative codes are the fast path of the lock-free memory
// backend (they are interned and stored allocation-free), so codecs should
// prefer dense codes starting at 0 — as the default interning codec does.
type Codec[T comparable] interface {
	// Encode maps v to its integer code.
	Encode(v T) int
	// Decode maps a decided code back to its value.
	Decode(code int) (T, error)
}

// NewInterningCodec returns the default codec for non-int domains: values
// are assigned dense codes 0, 1, 2, ... in first-seen order. Interning is
// local to the codec instance, which is why one codec is shared by all
// handles of an agreement object.
func NewInterningCodec[T comparable]() Codec[T] {
	return &interningCodec[T]{toCode: make(map[T]int)}
}

type interningCodec[T comparable] struct {
	mu     sync.Mutex
	toCode map[T]int
	values []T
}

func (c *interningCodec[T]) Encode(v T) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if code, ok := c.toCode[v]; ok {
		return code
	}
	code := len(c.values)
	c.toCode[v] = code
	c.values = append(c.values, v)
	return code
}

func (c *interningCodec[T]) Decode(code int) (T, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if code < 0 || code >= len(c.values) {
		var zero T
		return zero, fmt.Errorf("setagreement: decided unknown code %d", code)
	}
	return c.values[code], nil
}

// IdentityCodec returns the zero-cost codec for int domains: values are
// their own codes. It is the default when T = int, keeping the int API as
// fast as the core itself.
func IdentityCodec() Codec[int] { return identityCodec{} }

type identityCodec struct{}

func (identityCodec) Encode(v int) int             { return v }
func (identityCodec) Decode(code int) (int, error) { return code, nil }

// defaultCodec picks the codec used when WithCodec is not given: the
// identity codec for int, the interning codec for every other domain.
func defaultCodec[T comparable]() Codec[T] {
	if c, ok := any(identityCodec{}).(Codec[T]); ok {
		return c
	}
	return NewInterningCodec[T]()
}

// resolveCodec turns the WithCodec option value (or nil) into the codec a
// generic entry point will use, rejecting codecs for the wrong domain.
func resolveCodec[T comparable](opt any) (Codec[T], error) {
	if opt == nil {
		return defaultCodec[T](), nil
	}
	c, ok := opt.(Codec[T])
	if !ok {
		var zero T
		return nil, fmt.Errorf("setagreement: WithCodec value of type %T does not implement Codec[%T]", opt, zero)
	}
	return c, nil
}
