package setagreement

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"setagreement/internal/core"
	"setagreement/internal/shmem"
)

// combineGuard builds a Repeated object on the lock-free backend and returns
// process 0's guard with its combiner wired, for driving the combining scan
// path directly.
func combineGuard(t *testing.T) (*guardMem, *runtime) {
	t.Helper()
	r, err := NewRepeated[int](4, 1, WithWaitStrategy(WaitNotify))
	if err != nil {
		t.Fatalf("NewRepeated: %v", err)
	}
	h, err := r.Proc(0)
	if err != nil {
		t.Fatalf("Proc: %v", err)
	}
	g := &h.guard
	if g.comb == nil {
		t.Fatal("guard has no combiner on the notifier-capable backend")
	}
	g.cur = g.wait
	g.resetWait()
	return g, r.rt
}

// TestCombiningAdoptsExactVersion drives the guard's combining path: a view
// published for the exact version the guard observes is adopted without a
// private scan; a view whose version has moved on is rejected and the guard
// scans privately (and publishes in turn).
func TestCombiningAdoptsExactVersion(t *testing.T) {
	g, rt := combineGuard(t)
	sentinel := []shmem.Value{core.Pair{}, core.Pair{}} // recognizably not a real scan
	sentinel[0] = nil

	// Exact version: adopt, no private scan.
	rt.comb.Publish(0, g.notifier.Version(), sentinel)
	g.armCombine(false)
	got := g.Scan(0)
	if &got[0] != &sentinel[0] {
		t.Fatal("guard did not adopt the view published for its exact version")
	}
	if c, a := g.stats.combined.Load(), g.stats.adopted.Load(); c != 0 || a != 1 {
		t.Fatalf("combined=%d adopted=%d after adoption, want 0/1", c, a)
	}

	// Version moved between publish and scan: stale view rejected, private
	// scan published instead.
	rt.comb.Publish(0, g.notifier.Version(), sentinel)
	g.Update(0, 0, core.Pair{Val: 9, ID: 0}) // moves the version past the slot
	g.armCombine(false)
	got = g.Scan(0)
	if len(got) > 0 && &got[0] == &sentinel[0] {
		t.Fatal("guard adopted a view published for an older version")
	}
	if c, a := g.stats.combined.Load(), g.stats.adopted.Load(); c != 1 || a != 1 {
		t.Fatalf("combined=%d adopted=%d after stale fallback, want 1/1", c, a)
	}

	// The fallback's private scan was published for the current version: a
	// second armed scan with no interleaving write adopts it.
	g.armCombine(false)
	g.Scan(0)
	if a := g.stats.adopted.Load(); a != 2 {
		t.Fatalf("adopted=%d after re-scan at unchanged version, want 2", a)
	}

	// The leader never adopts: it is elected to produce the batch's view.
	g.armCombine(true)
	g.Scan(0)
	if c, a := g.stats.combined.Load(), g.stats.adopted.Load(); c != 2 || a != 2 {
		t.Fatalf("combined=%d adopted=%d after leader scan, want 2/2", c, a)
	}

	// Unarmed scans bypass the combiner entirely.
	g.Scan(0)
	if c, a := g.stats.combined.Load(), g.stats.adopted.Load(); c != 2 || a != 2 {
		t.Fatalf("combined=%d adopted=%d after unarmed scan, want 2/2", c, a)
	}
}

// TestCombiningDisabled checks WithScanCombining(false): no combiner is
// built, and the counters stay zero through a contended run.
func TestCombiningDisabled(t *testing.T) {
	r, err := NewRepeated[int](2, 1, WithWaitStrategy(WaitNotify), WithScanCombining(false))
	if err != nil {
		t.Fatalf("NewRepeated: %v", err)
	}
	if r.rt.comb != nil {
		t.Fatal("combiner built despite WithScanCombining(false)")
	}
	h, err := r.Proc(0)
	if err != nil {
		t.Fatalf("Proc: %v", err)
	}
	if h.guard.comb != nil {
		t.Fatal("guard wired a combiner despite WithScanCombining(false)")
	}
	h.guard.armCombine(false) // must be a no-op
	if h.guard.combineArmed {
		t.Fatal("guard armed combining with no combiner")
	}
}

// TestCombiningNoCrossGenerationView recycles an arena object's runtime and
// checks the pool cleared its combining slot: the notifier's version rewinds
// at Reset, so a view from the previous generation must not be adoptable
// when the next generation re-reaches the same version number.
func TestCombiningNoCrossGenerationView(t *testing.T) {
	ar, err := NewArena[int](2, 1)
	if err != nil {
		t.Fatalf("NewArena: %v", err)
	}
	ao := ar.Object("gen1")
	comb := ao.obj.rt.comb
	if comb == nil {
		t.Fatal("arena object has no combiner")
	}
	// Drive the version forward and plant a view for the current version.
	h, err := ao.Proc(0)
	if err != nil {
		t.Fatalf("Proc: %v", err)
	}
	if _, err := h.Propose(context.Background(), 7); err != nil {
		t.Fatalf("Propose: %v", err)
	}
	nt, ok := ao.obj.rt.mem.(shmem.Notifier)
	if !ok {
		t.Fatalf("arena runtime memory %T does not expose shmem.Notifier", ao.obj.rt.mem)
	}
	v := nt.Version()
	stale := []shmem.Value{core.Pair{Val: 7, ID: 0}}
	comb.Publish(0, v, stale)
	if err := h.Release(); err != nil {
		t.Fatalf("Release: %v", err)
	}
	if !ar.Evict("gen1") {
		t.Fatal("Evict refused a fully released object")
	}

	ao2 := ar.Object("gen2")
	if ao2.obj.rt.comb != comb {
		t.Skip("pool did not recycle the runtime; nothing to check")
	}
	nt2, ok := ao2.obj.rt.mem.(shmem.Notifier)
	if !ok {
		t.Fatalf("recycled runtime memory %T does not expose shmem.Notifier", ao2.obj.rt.mem)
	}
	if nt2.Version() != 0 {
		t.Fatalf("recycled notifier version = %d, want 0 after Reset", nt2.Version())
	}
	// Re-reach the old version number in the new generation: the previous
	// tenant's view must not surface.
	for nt.Version() < v {
		ao2.obj.rt.mem.Update(0, 0, core.Pair{Val: 1, ID: 1})
	}
	if view, ok := comb.Adopt(0, v); ok {
		t.Fatalf("previous generation's view %v adoptable after recycling", view)
	}
}

// TestCombiningInterleavedWaitersAdopt drives the schedule under which
// combining pays off in the wild: two waiters woken by the same publish both
// perform their line-7 update, then both scan. The second scanner finds the
// first's view published for the exact version it observes — a version that
// already covers both updates — and adopts it without touching shared
// memory. The adopted view containing the adopter's own update is the
// correctness witness: adoption is indistinguishable from a private scan.
func TestCombiningInterleavedWaitersAdopt(t *testing.T) {
	r, err := NewRepeated[int](4, 1, WithWaitStrategy(WaitNotify))
	if err != nil {
		t.Fatalf("NewRepeated: %v", err)
	}
	h1, err := r.Proc(0)
	if err != nil {
		t.Fatalf("Proc(0): %v", err)
	}
	h2, err := r.Proc(1)
	if err != nil {
		t.Fatalf("Proc(1): %v", err)
	}
	g1, g2 := &h1.guard, &h2.guard
	for _, g := range []*guardMem{g1, g2} {
		g.cur = g.wait
		g.resetWait()
		g.armCombine(false) // both woken by the same publish, no elected leader
	}
	g1.Update(0, 0, core.Pair{Val: 1, ID: 0})
	g2.Update(0, 1, core.Pair{Val: 2, ID: 1})
	v1 := g1.Scan(0) // first scanner publishes
	v2 := g2.Scan(0) // second adopts at the unchanged version
	if &v2[0] != &v1[0] {
		t.Fatal("second waiter did not adopt the first waiter's published view")
	}
	if v2[0] != (core.Pair{Val: 1, ID: 0}) || v2[1] != (core.Pair{Val: 2, ID: 1}) {
		t.Fatalf("adopted view %v does not contain both waiters' updates", v2)
	}
	if c, a := h1.stats.combined.Load(), h1.stats.adopted.Load(); c != 1 || a != 0 {
		t.Fatalf("first waiter combined=%d adopted=%d, want 1/0", c, a)
	}
	if c, a := h2.stats.combined.Load(), h2.stats.adopted.Load(); c != 0 || a != 1 {
		t.Fatalf("second waiter combined=%d adopted=%d, want 0/1", c, a)
	}
}

// TestCombiningWokenWaitersShareScan checks the wake→arm→share chain end to
// end on the real blocking path: two guards block inside the notify wait,
// one foreign update wakes both, and exactly one scan of shared memory
// serves them both — the first to scan publishes, the second adopts.
//
// The wait is driven directly rather than through contended Proposes: an
// obstruction-free proposer repairs any static memory state by itself in
// microseconds, so on a small machine contenders serialize and never block —
// blocking needs a foreign write to land mid-Propose, inside a window a few
// scheduler quanta wide. Parking the guards explicitly makes the one moment
// combining is designed for — several waiters woken by the same publish —
// deterministic instead of a scheduling coincidence.
func TestCombiningWokenWaitersShareScan(t *testing.T) {
	r, err := NewRepeated[int](4, 1,
		WithWaitStrategy(WaitNotify),
		WithBackoff(200*time.Microsecond, 2*time.Millisecond, 1))
	if err != nil {
		t.Fatalf("NewRepeated: %v", err)
	}
	h1, err := r.Proc(0)
	if err != nil {
		t.Fatalf("Proc(0): %v", err)
	}
	h2, err := r.Proc(1)
	if err != nil {
		t.Fatalf("Proc(1): %v", err)
	}
	g1, g2 := &h1.guard, &h2.guard
	raw := r.rt.wrap(2)
	nt, ok := r.rt.mem.(shmem.Notifier)
	if !ok {
		t.Fatalf("runtime memory %T does not expose shmem.Notifier", r.rt.mem)
	}

	// Stage a foreign write after each guard's baseline so the solo detector
	// sees contention and the notify wait actually blocks.
	for _, g := range []*guardMem{g1, g2} {
		g.cur = g.wait
		g.resetWait()
	}
	raw.Update(0, 2, core.Pair{Val: 9, ID: 2})

	var wg sync.WaitGroup
	for _, g := range []*guardMem{g1, g2} {
		wg.Add(1)
		go func(g *guardMem) {
			defer wg.Done()
			g.notifyPause(time.Second)
		}(g)
	}
	// Both waiters are blocked once the notifier counts them; one more
	// foreign update is the shared wake.
	for nt.Waiters() < 2 {
		time.Sleep(10 * time.Microsecond)
	}
	raw.Update(0, 2, core.Pair{Val: 10, ID: 2})
	wg.Wait()

	for i, h := range []*Handle[int]{h1, h2} {
		s := h.Stats()
		if s.Wakeups != 1 {
			t.Fatalf("waiter %d: wakeups=%d, want 1 (woken, not timed out)", i, s.Wakeups)
		}
	}
	if !g1.combineArmed || !g2.combineArmed {
		t.Fatal("woken waiters did not arm combining for their next scan")
	}

	v1 := g1.Scan(0) // first woken waiter scans and publishes
	v2 := g2.Scan(0) // second is served by the same scan
	if &v2[0] != &v1[0] {
		t.Fatal("second woken waiter did not adopt the first's published view")
	}
	if v1[2] != (core.Pair{Val: 10, ID: 2}) {
		t.Fatalf("shared view %v does not include the update that woke the waiters", v1)
	}
	if c, a := h1.stats.combined.Load(), h1.stats.adopted.Load(); c != 1 || a != 0 {
		t.Fatalf("first waiter combined=%d adopted=%d, want 1/0", c, a)
	}
	if c, a := h2.stats.combined.Load(), h2.stats.adopted.Load(); c != 0 || a != 1 {
		t.Fatalf("second waiter combined=%d adopted=%d, want 0/1", c, a)
	}
}

// TestCombiningHammer is the multi-waiter race test: many proposers over one
// notify-strategy object on both backends, sync and async, with combining
// on. Under -race this exercises publish/adopt from every wake path; the
// agreement contract and the counters are checked at the end.
func TestCombiningHammer(t *testing.T) {
	const n, k, rounds = 8, 2, 30
	for _, be := range []MemoryBackend{BackendLockFree, BackendLocked} {
		for _, async := range []bool{false, true} {
			name := fmt.Sprintf("%v/sync", be)
			if async {
				name = fmt.Sprintf("%v/async", be)
			}
			t.Run(name, func(t *testing.T) {
				r, err := NewRepeated[int](n, k,
					WithMemoryBackend(be),
					WithWaitStrategy(WaitNotify),
					WithBackoff(50*time.Microsecond, 2*time.Millisecond, 8))
				if err != nil {
					t.Fatalf("NewRepeated: %v", err)
				}
				ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
				defer cancel()
				handles := make([]*Handle[int], n)
				for id := range handles {
					if handles[id], err = r.Proc(id); err != nil {
						t.Fatalf("Proc(%d): %v", id, err)
					}
				}
				decisions := make([][]int, n)
				var wg sync.WaitGroup
				for id, h := range handles {
					wg.Add(1)
					go func(id int, h *Handle[int]) {
						defer wg.Done()
						for i := 0; i < rounds; i++ {
							var d int
							var err error
							if async {
								d, err = h.ProposeAsync(ctx, id*rounds+i).Value()
							} else {
								d, err = h.Propose(ctx, id*rounds+i)
							}
							if err != nil {
								t.Errorf("proposer %d round %d: %v", id, i, err)
								return
							}
							decisions[id] = append(decisions[id], d)
						}
					}(id, h)
				}
				wg.Wait()
				if t.Failed() {
					return
				}
				var combined, adopted int64
				for i := 0; i < rounds; i++ {
					distinct := make(map[int]bool)
					for id := range decisions {
						distinct[decisions[id][i]] = true
					}
					if len(distinct) > k {
						t.Fatalf("round %d: %d distinct decisions, want ≤ %d", i, len(distinct), k)
					}
				}
				for _, h := range handles {
					s := h.Stats()
					combined += s.ScansCombined
					adopted += s.ScansAdopted
					if s.ScansAdopted > s.Scans {
						t.Fatalf("handle adopted %d of %d scans", s.ScansAdopted, s.Scans)
					}
				}
				t.Logf("%s: combined=%d adopted=%d", name, combined, adopted)
				if adopted > 0 && combined == 0 {
					t.Fatal("views were adopted but none was ever published")
				}
			})
		}
	}
}
