package setagreement

import (
	"context"
	"errors"
	"sync"
)

// ErrCompletionQueueClosed is returned by CompletionQueue.Next once the
// queue is closed and drained, and by Register on a closed queue.
var ErrCompletionQueueClosed = errors.New("setagreement: completion queue closed")

// ErrAlreadyRegistered is returned by Register for a future that is already
// registered with a completion queue: a future delivers to at most one.
var ErrAlreadyRegistered = errors.New("setagreement: future already registered with a completion queue")

// Completion pairs a resolved future with the tag it was registered under.
// The future is resolved by construction, so Value never blocks.
type Completion[T comparable] struct {
	Future *Future[T]
	Tag    int
}

// Value returns the completion's outcome without blocking.
func (c Completion[T]) Value() (T, error) { return c.Future.Value() }

// cqReg is one future's registration: the queue and the caller's tag,
// published together through one atomic pointer so the resolving goroutine
// never reads a half-installed registration.
type cqReg[T comparable] struct {
	q   *CompletionQueue[T]
	tag int
}

// CompletionQueue delivers resolved futures to one collector in completion
// order — the io_uring-style counterpart of batch submission. Register
// attaches any number of in-flight futures (at most one queue per future);
// each is enqueued at the moment it resolves, whatever resolves it: a
// decision, a lifecycle error, context cancellation, arena eviction or
// engine shutdown. One collector goroutine calling Next drains N in-flight
// proposals with no head-of-line blocking and no per-future select.
//
// A CompletionQueue is safe for concurrent use: any number of goroutines
// may Register and Next concurrently (completions are handed out exactly
// once each). The queue is unbounded — it holds at most the futures
// registered and not yet collected — so delivery never blocks the engine's
// resolution path.
type CompletionQueue[T comparable] struct {
	mu      sync.Mutex
	buf     []Completion[T]
	head    int
	closed  bool
	pending int

	sig      chan struct{} // capacity 1: "buf may be non-empty"
	closedCh chan struct{} // closed by Close, wakes every blocked Next
}

// NewCompletionQueue builds an empty completion queue.
func NewCompletionQueue[T comparable]() *CompletionQueue[T] {
	return &CompletionQueue[T]{
		sig:      make(chan struct{}, 1),
		closedCh: make(chan struct{}),
	}
}

// Register attaches a future to the queue: when the future resolves (or at
// Register time, if it already has), a Completion carrying tag is enqueued
// for Next. A future registers with at most one queue, ever; a second
// registration fails with ErrAlreadyRegistered. Registering on a closed
// queue fails with ErrCompletionQueueClosed.
func (q *CompletionQueue[T]) Register(f *Future[T], tag int) error {
	return q.register(f, &cqReg[T]{q: q, tag: tag})
}

func (q *CompletionQueue[T]) register(f *Future[T], r *cqReg[T]) error {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return ErrCompletionQueueClosed
	}
	q.pending++
	q.mu.Unlock()
	if !f.reg.CompareAndSwap(nil, r) {
		q.mu.Lock()
		q.pending--
		q.mu.Unlock()
		return ErrAlreadyRegistered
	}
	// The future may have resolved before the registration landed; the
	// delivered flag makes this and the resolver's own deliver exactly-once.
	if f.Resolved() {
		f.deliver()
	}
	return nil
}

// push enqueues one resolved future. Never blocks (the engine's resolution
// path runs through here). On a closed queue the completion is dropped —
// the future itself stays readable forever; only its queue delivery is
// forfeit.
func (q *CompletionQueue[T]) push(c Completion[T]) {
	q.mu.Lock()
	if q.closed {
		q.pending--
		q.mu.Unlock()
		return
	}
	q.buf = append(q.buf, c)
	q.mu.Unlock()
	select {
	case q.sig <- struct{}{}:
	default:
	}
}

// Next returns the earliest not-yet-collected completion, blocking until
// one resolves, ctx ends (ctx.Err()), or the queue is closed and drained
// (ErrCompletionQueueClosed). A nil ctx waits indefinitely. Completions
// already enqueued when Close is called are still returned, so a collector
// loop naturally drains the tail before seeing ErrCompletionQueueClosed.
func (q *CompletionQueue[T]) Next(ctx context.Context) (Completion[T], error) {
	var ctxDone <-chan struct{}
	if ctx != nil {
		ctxDone = ctx.Done()
	}
	for {
		q.mu.Lock()
		if q.head < len(q.buf) {
			c := q.buf[q.head]
			q.buf[q.head] = Completion[T]{} // release the future for GC
			q.head++
			if q.head == len(q.buf) {
				q.buf = q.buf[:0]
				q.head = 0
			}
			q.pending--
			q.mu.Unlock()
			return c, nil
		}
		closed := q.closed
		q.mu.Unlock()
		if closed {
			return Completion[T]{}, ErrCompletionQueueClosed
		}
		select {
		case <-ctxDone:
			return Completion[T]{}, ctx.Err()
		case <-q.sig:
		case <-q.closedCh:
		}
	}
}

// Pending returns the number of registered futures whose completions have
// not yet been returned by Next — in-flight plus buffered. It is a gauge
// for flow control (cap how much a submitter keeps outstanding), meaningful
// while the queue is open.
func (q *CompletionQueue[T]) Pending() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.pending
}

// Close closes the queue: blocked Next calls wake, buffered completions
// remain collectable, and once they are drained every Next fails with
// ErrCompletionQueueClosed, as does every later Register. Futures still in
// flight stay valid — they resolve as usual and are read directly — but
// their queue delivery is dropped. Close is idempotent and safe to call
// with registrations in flight.
func (q *CompletionQueue[T]) Close() {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return
	}
	q.closed = true
	q.mu.Unlock()
	close(q.closedCh)
}
