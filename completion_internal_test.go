package setagreement

// Whitebox completion-queue test: engine shutdown must drain every
// registered in-flight future into its queue as an ErrEngineClosed
// completion — the collector sees the abort like any other resolution.

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestCompletionQueueEngineClose(t *testing.T) {
	ctx := context.Background()
	r, _, fut := newParkedAsync(t, ctx)
	q := NewCompletionQueue[int]()
	defer q.Close()
	if err := q.Register(fut, 5); err != nil {
		t.Fatalf("Register: %v", err)
	}

	r.rt.eng.get().Close()

	wait, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	c, err := q.Next(wait)
	if err != nil {
		t.Fatalf("Next after engine Close: %v", err)
	}
	if c.Tag != 5 {
		t.Fatalf("completion tag = %d, want 5", c.Tag)
	}
	if _, err := c.Value(); !errors.Is(err, ErrEngineClosed) {
		t.Fatalf("completion resolved with %v, want ErrEngineClosed", err)
	}
	if got := q.Pending(); got != 0 {
		t.Fatalf("Pending() = %d after drain, want 0", got)
	}
}
