package setagreement_test

// Completion-queue contract tests: delivery in completion order (not
// submission order), exactly-once handoff for every resolution path a
// future can take (decision, lifecycle error, cancellation), and the
// lifecycle edges of the queue itself — Close with registrations still in
// flight, context cancellation inside Next, drain-then-fail after Close.

import (
	"context"
	"errors"
	"testing"
	"time"

	sa "setagreement"
)

// parkedProposal is the public-level version of the whitebox parked-async
// fixture: a register-implemented snapshot (solo detection is conservative
// there, so the proposal parks at its first yield) with an hour-long blind
// cap keeps a ProposeAsync in flight until its context is cancelled.
func parkedProposal(t *testing.T) (*sa.Handle[int], context.CancelFunc, *sa.Future[int]) {
	t.Helper()
	r, err := sa.NewRepeated[int](2, 1,
		sa.WithSnapshot(sa.SnapshotWaitFree),
		sa.WithWaitStrategy(sa.WaitNotify),
		sa.WithBackoff(time.Hour, time.Hour, 1))
	if err != nil {
		t.Fatalf("NewRepeated: %v", err)
	}
	h, err := r.Proc(0)
	if err != nil {
		t.Fatalf("Proc: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	fut := h.ProposeAsync(ctx, 41)
	return h, cancel, fut
}

// TestCompletionQueueOrder is the acceptance check for the completion side
// of the batch API: futures are delivered in the order they resolve,
// whatever order they were registered in. Five hour-parked proposals are
// registered 0..4, then resolved (by cancellation) in a scrambled order;
// Next must yield that scrambled order, with no head-of-line blocking on
// the still-parked earlier registrations.
func TestCompletionQueueOrder(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	const n = 5
	q := sa.NewCompletionQueue[int]()
	defer q.Close()
	cancels := make([]context.CancelFunc, n)
	for i := 0; i < n; i++ {
		_, c, fut := parkedProposal(t)
		cancels[i] = c
		defer c()
		if err := q.Register(fut, i); err != nil {
			t.Fatalf("Register(%d): %v", i, err)
		}
	}
	if got := q.Pending(); got != n {
		t.Fatalf("Pending() = %d after %d registrations, want %d", got, n, n)
	}
	for _, i := range []int{3, 0, 4, 2, 1} {
		cancels[i]()
		c, err := q.Next(ctx)
		if err != nil {
			t.Fatalf("Next after cancelling %d: %v", i, err)
		}
		if c.Tag != i {
			t.Fatalf("Next delivered tag %d, want %d (completion order, not registration order)", c.Tag, i)
		}
		if _, err := c.Value(); !errors.Is(err, context.Canceled) {
			t.Fatalf("completion %d resolved with %v, want context.Canceled", i, err)
		}
	}
	if got := q.Pending(); got != 0 {
		t.Fatalf("Pending() = %d after full drain, want 0", got)
	}
}

// TestCompletionQueueNextContext: a Next blocked on an empty queue honours
// its context — it returns ctx.Err() and leaves the queue usable.
func TestCompletionQueueNextContext(t *testing.T) {
	q := sa.NewCompletionQueue[int]()
	defer q.Close()

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := q.Next(ctx)
		errc <- err
	}()
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Next on cancelled ctx = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Next did not return after context cancellation")
	}

	// The queue survives: a registration after the aborted Next delivers.
	a, err := sa.New[int](2, 1)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	h, err := a.Proc(0)
	if err != nil {
		t.Fatalf("Proc: %v", err)
	}
	fut := h.ProposeAsync(context.Background(), 7)
	if err := q.Register(fut, 7); err != nil {
		t.Fatalf("Register after aborted Next: %v", err)
	}
	wait, cancel2 := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel2()
	c, err := q.Next(wait)
	if err != nil || c.Tag != 7 {
		t.Fatalf("Next = (tag %d, %v), want (7, nil)", c.Tag, err)
	}
}

// TestCompletionQueueClose pins the Close contract: buffered completions
// stay drainable, blocked Next calls wake with ErrCompletionQueueClosed
// once drained, later Registers fail, and futures whose registrations were
// still in flight resolve normally — only their queue delivery is dropped.
func TestCompletionQueueClose(t *testing.T) {
	ctx, cancelAll := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancelAll()

	q := sa.NewCompletionQueue[int]()

	// One already-buffered completion (a solo decision resolves promptly).
	a, err := sa.New[int](2, 1)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	h, err := a.Proc(0)
	if err != nil {
		t.Fatalf("Proc: %v", err)
	}
	done := h.ProposeAsync(ctx, 11)
	if _, err := done.Value(); err != nil {
		t.Fatalf("solo async: %v", err)
	}
	if err := q.Register(done, 1); err != nil {
		t.Fatalf("Register resolved future: %v", err)
	}

	// One registration still in flight when Close lands.
	_, cancelParked, parked := parkedProposal(t)
	defer cancelParked()
	if err := q.Register(parked, 2); err != nil {
		t.Fatalf("Register parked future: %v", err)
	}

	q.Close()
	q.Close() // idempotent

	// The buffered completion drains first, then the closed error.
	c, err := q.Next(ctx)
	if err != nil || c.Tag != 1 {
		t.Fatalf("Next after Close = (tag %d, %v), want buffered (1, nil)", c.Tag, err)
	}
	if _, err := q.Next(ctx); !errors.Is(err, sa.ErrCompletionQueueClosed) {
		t.Fatalf("Next on drained closed queue = %v, want ErrCompletionQueueClosed", err)
	}
	if err := q.Register(done, 3); !errors.Is(err, sa.ErrCompletionQueueClosed) {
		t.Fatalf("Register on closed queue = %v, want ErrCompletionQueueClosed", err)
	}

	// The in-flight future is unharmed by the dropped delivery: it resolves
	// with its own outcome and stays readable forever.
	cancelParked()
	if _, err := parked.Value(); !errors.Is(err, context.Canceled) {
		t.Fatalf("future registered on closed queue resolved with %v, want context.Canceled", err)
	}
	if _, err := q.Next(ctx); !errors.Is(err, sa.ErrCompletionQueueClosed) {
		t.Fatalf("Next after dropped delivery = %v, want ErrCompletionQueueClosed", err)
	}
}

// TestCompletionQueueExactlyOnce: every resolution path delivers exactly
// one completion, and a future belongs to at most one queue for life —
// re-registration fails with ErrAlreadyRegistered on any queue, including
// after the future has resolved and been collected.
func TestCompletionQueueExactlyOnce(t *testing.T) {
	ctx, cancelAll := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancelAll()
	q := sa.NewCompletionQueue[string]()
	defer q.Close()

	// Path 1: cancel-before-start — the future is resolved (and the handle
	// poisoned) before Register ever sees it.
	r, err := sa.NewRepeated[string](2, 1)
	if err != nil {
		t.Fatalf("NewRepeated: %v", err)
	}
	h, err := r.Proc(0)
	if err != nil {
		t.Fatalf("Proc: %v", err)
	}
	dead, cancelDead := context.WithCancel(context.Background())
	cancelDead()
	cancelled := h.ProposeAsync(dead, "x")
	if err := q.Register(cancelled, 0); err != nil {
		t.Fatalf("Register cancelled future: %v", err)
	}

	// Path 2: the poisoned handle's next async fails through its future.
	poisoned := h.ProposeAsync(ctx, "y")
	if err := q.Register(poisoned, 1); err != nil {
		t.Fatalf("Register poisoned future: %v", err)
	}

	wantErr := map[int]error{0: context.Canceled, 1: sa.ErrPoisoned}
	for i := 0; i < 2; i++ {
		c, err := q.Next(ctx)
		if err != nil {
			t.Fatalf("Next %d: %v", i, err)
		}
		want, ok := wantErr[c.Tag]
		if !ok {
			t.Fatalf("completion tag %d delivered twice", c.Tag)
		}
		delete(wantErr, c.Tag)
		if _, err := c.Value(); !errors.Is(err, want) {
			t.Fatalf("completion %d resolved with %v, want %v", c.Tag, err, want)
		}
	}

	// Exactly once: both futures collected, nothing further is pending and
	// re-registration is refused everywhere.
	if got := q.Pending(); got != 0 {
		t.Fatalf("Pending() = %d after drain, want 0", got)
	}
	if err := q.Register(cancelled, 9); !errors.Is(err, sa.ErrAlreadyRegistered) {
		t.Fatalf("re-Register on same queue = %v, want ErrAlreadyRegistered", err)
	}
	q2 := sa.NewCompletionQueue[string]()
	defer q2.Close()
	if err := q2.Register(cancelled, 9); !errors.Is(err, sa.ErrAlreadyRegistered) {
		t.Fatalf("re-Register on second queue = %v, want ErrAlreadyRegistered", err)
	}
	probe, cancelProbe := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancelProbe()
	if _, err := q.Next(probe); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Next after exactly-once drain = %v, want deadline (no duplicate delivery)", err)
	}
}
