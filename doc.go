// Package setagreement is a production-oriented implementation of the
// m-obstruction-free k-set agreement algorithms of Delporte-Gallet,
// Fauconnier, Kuznetsov and Ruppert, "On the Space Complexity of Set
// Agreement" (PODC 2015).
//
// k-set agreement lets n processes each propose a value and decide values
// such that at most k distinct values are decided; k = 1 is consensus. The
// algorithms here are m-obstruction-free: they are safe under any schedule
// and guarantee termination whenever at most m processes are executing
// concurrently (m = 1 is classic obstruction-freedom). Space is the paper's
// headline: the non-anonymous algorithms use min(n+2m−k, n) registers and
// the anonymous one (m+1)(n−k)+m²+1.
//
// # Entry points
//
// Three generic entry points mirror the paper's three algorithms, each over
// an arbitrary comparable value domain T (the paper's abstract domain D):
//
//   - New[T] (one-shot, Figure 3): each process proposes once.
//   - NewRepeated[T] (Figure 4): an unbounded ordered sequence of
//     independent agreement instances, as needed by universal constructions.
//   - NewAnonymous[T] / NewAnonymousOneShot[T] (Figure 5): processes have
//     no identifiers at all.
//
// On top of them sit two composition layers:
//
//   - NewReplicated[S, O]: a universal construction — any deterministic
//     sequential state machine replicated over repeated consensus.
//   - NewArena[T]: a sharded, multi-tenant registry serving many named
//     agreement objects — per-key leases, task queues, per-entity locks —
//     with lazy creation, idle eviction (WithIdleTTL) and shared-memory
//     recycling across object generations.
//
// # Handles
//
// The API is handle-first: a goroutine claims its process once — Proc(id)
// on identified objects, Session() on anonymous ones — and then proposes
// through the returned Handle. Claiming resolves the process's shared-
// memory view, lifecycle state and instrumentation up front, so Propose
// itself is lock- and allocation-free in the facade. Values are carried
// through a pluggable Codec (WithCodec); the default interns arbitrary
// comparable values and is the identity for int. Handles claimed through an
// arena additionally support Release, which lets the arena evict and
// recycle objects whose processes have all left.
//
// # Termination
//
// Obstruction-free operations may run forever under sustained contention.
// Use contexts to bound Propose calls, and WithBackoff to make progress
// likely under contention (the scheduling-based approach the paper's
// introduction describes).
//
// # Runtime
//
// The native runtime is pluggable: WithMemoryBackend selects the
// shared-memory substrate (lock-free atomic cells by default, or the
// mutex-serialized reference backend), independently of WithSnapshot's
// choice of snapshot construction. Every handle exposes Stats() — shared-
// memory steps, scans, backend CAS retries, backoff sleep — as the
// observability surface of the runtime; Arena.Stats rolls the same counters
// up across every object it serves.
//
// The repository around this package also contains the deterministic
// simulator, the executable lower-bound adversaries for the paper's
// Theorems 2 and 10, and the benchmark harness reproducing its Figure 1.
// See README.md and DESIGN.md for architecture, and PAPER_MAP.md for a
// section-by-section mapping from the paper's algorithms, lemmas and
// theorems to the code that implements and checks them.
package setagreement
