package setagreement_test

// Documentation health checks, run by the CI docs job: every relative link
// in the top-level markdown files must resolve to a file in the repository,
// and PAPER_MAP.md must cover every exported algorithm entry point of the
// public package.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// docFiles are the markdown files whose links must stay valid.
var docFiles = []string{"README.md", "DESIGN.md", "PAPER_MAP.md"}

// mdLink matches inline markdown links [text](target). Good enough for the
// plain links these files use (no nested brackets, no reference links).
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

func TestDocLinksResolve(t *testing.T) {
	for _, doc := range docFiles {
		data, err := os.ReadFile(doc)
		if err != nil {
			t.Fatalf("reading %s: %v", doc, err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") {
				continue // external links are not checked offline
			}
			target, _, _ = strings.Cut(target, "#") // drop in-page anchors
			if target == "" {
				continue // pure-anchor link within the same file
			}
			path := filepath.FromSlash(target)
			if _, err := os.Stat(path); err != nil {
				t.Errorf("%s links to %q, which does not resolve: %v", doc, m[1], err)
			}
		}
	}
}

// algorithmEntryPoints are the exported constructors of agreement-serving
// objects; each must be traced in PAPER_MAP.md. The completeness of this
// list itself is enforced below against the package source, so adding a new
// New* entry point without documenting it fails this test.
var algorithmEntryPoints = []string{
	"New",
	"NewRepeated",
	"NewAnonymous",
	"NewAnonymousOneShot",
	"NewReplicated",
	"NewArena",
}

// nonAlgorithmConstructors are exported New* functions that construct
// helpers rather than agreement objects; they are documented in godoc, not
// in the paper map.
var nonAlgorithmConstructors = map[string]bool{
	"NewInterningCodec":  true,
	"NewCompletionQueue": true,
}

func TestPaperMapCoversEveryEntryPoint(t *testing.T) {
	data, err := os.ReadFile("PAPER_MAP.md")
	if err != nil {
		t.Fatalf("reading PAPER_MAP.md: %v", err)
	}
	text := string(data)
	for _, name := range algorithmEntryPoints {
		// Entry points are generic; the map writes them as `Name[...]`.
		if !strings.Contains(text, "`"+name+"[") {
			t.Errorf("PAPER_MAP.md does not cover entry point %s", name)
		}
	}

	// Completeness: every exported New* function of the package must be
	// either a listed entry point or an explicitly excluded helper.
	listed := make(map[string]bool, len(algorithmEntryPoints))
	for _, name := range algorithmEntryPoints {
		listed[name] = true
	}
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		t.Fatalf("parsing package: %v", err)
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Recv != nil || !fn.Name.IsExported() {
					continue
				}
				name := fn.Name.Name
				if !strings.HasPrefix(name, "New") {
					continue
				}
				if !listed[name] && !nonAlgorithmConstructors[name] {
					t.Errorf("exported constructor %s is neither traced in PAPER_MAP.md (algorithmEntryPoints) nor excluded (nonAlgorithmConstructors); update the paper map", name)
				}
			}
		}
	}
}
