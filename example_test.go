package setagreement_test

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"setagreement"
)

// ExampleNew runs one-shot 2-set agreement among four goroutines: each
// claims its process handle once, at most two distinct values are decided,
// and each is someone's proposal.
func ExampleNew() {
	const n, k = 4, 2
	a, err := setagreement.New[int](n, k)
	if err != nil {
		fmt.Println("error:", err)
		return
	}

	decisions := make([]int, n)
	var wg sync.WaitGroup
	for id := 0; id < n; id++ {
		h, err := a.Proc(id)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		wg.Add(1)
		go func(id int, h *setagreement.Handle[int]) {
			defer wg.Done()
			out, err := h.Propose(context.Background(), 10+id)
			if err == nil {
				decisions[id] = out
			}
		}(id, h)
	}
	wg.Wait()

	distinct := map[int]bool{}
	for _, v := range decisions {
		distinct[v] = true
	}
	fmt.Println("registers:", a.Registers())
	fmt.Println("at most k distinct:", len(distinct) <= k)
	// Output:
	// registers: 4
	// at most k distinct: true
}

// ExampleNew_typed agrees on string values directly: the default codec
// interns arbitrary comparable values over the int-valued core.
func ExampleNew_typed() {
	a, err := setagreement.New[string](2, 1)
	if err != nil {
		fmt.Println("error:", err)
		return
	}

	outs := make([]string, 2)
	var wg sync.WaitGroup
	for id := 0; id < 2; id++ {
		h, err := a.Proc(id)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		wg.Add(1)
		go func(id int, h *setagreement.Handle[string]) {
			defer wg.Done()
			v, err := h.Propose(context.Background(), []string{"red", "blue"}[id])
			if err == nil {
				outs[id] = v
			}
		}(id, h)
	}
	wg.Wait()

	fmt.Println("agreed:", outs[0] == outs[1])
	fmt.Println("valid:", outs[0] == "red" || outs[0] == "blue")
	// Output:
	// agreed: true
	// valid: true
}

// ExampleNewRepeated decides a sequence of consensus instances: all
// processes see identical decision sequences.
func ExampleNewRepeated() {
	const n, rounds = 3, 4
	r, err := setagreement.NewRepeated[int](n, 1)
	if err != nil {
		fmt.Println("error:", err)
		return
	}

	got := make([][]int, n)
	var wg sync.WaitGroup
	for id := 0; id < n; id++ {
		h, err := r.Proc(id)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		wg.Add(1)
		go func(id int, h *setagreement.Handle[int]) {
			defer wg.Done()
			for round := 0; round < rounds; round++ {
				out, err := h.Propose(context.Background(), 100*round+id)
				if err != nil {
					return
				}
				got[id] = append(got[id], out)
			}
		}(id, h)
	}
	wg.Wait()

	same := true
	for id := 1; id < n; id++ {
		for round := range got[0] {
			if got[id][round] != got[0][round] {
				same = false
			}
		}
	}
	fmt.Println("identical sequences:", same)
	// Output:
	// identical sequences: true
}

// ExampleNewAnonymous shows identifier-free agreement: sessions join without
// any notion of who they are.
func ExampleNewAnonymous() {
	a, err := setagreement.NewAnonymous[int](3, 1)
	if err != nil {
		fmt.Println("error:", err)
		return
	}

	outs := make([]int, 3)
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		s, err := a.Session()
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		wg.Add(1)
		go func(i int, s *setagreement.Handle[int]) {
			defer wg.Done()
			if v, err := s.Propose(context.Background(), 40+i); err == nil {
				outs[i] = v
			}
		}(i, s)
	}
	wg.Wait()

	fmt.Println("consensus:", outs[0] == outs[1] && outs[1] == outs[2])
	// Output:
	// consensus: true
}

// ExampleNewReplicated builds a replicated set via the universal
// construction: every replica converges on the same membership.
func ExampleNewReplicated() {
	obj, err := setagreement.NewReplicated[map[string]bool, string](2,
		func() map[string]bool { return map[string]bool{} },
		func(s map[string]bool, op string) map[string]bool {
			next := make(map[string]bool, len(s)+1)
			for k := range s {
				next[k] = true
			}
			next[op] = true
			return next
		},
	)
	if err != nil {
		fmt.Println("error:", err)
		return
	}

	ra, _ := obj.Replica(0)
	rb, _ := obj.Replica(1)
	ctx := context.Background()

	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); ra.Invoke(ctx, "apple"); ra.Invoke(ctx, "pear") }()
	go func() { defer wg.Done(); rb.Invoke(ctx, "plum") }()
	wg.Wait()

	// Bring both replicas to the same slot count and compare.
	for ra.Slots() < rb.Slots() {
		ra.Sync(ctx)
	}
	for rb.Slots() < ra.Slots() {
		rb.Sync(ctx)
	}
	var members []string
	for k := range ra.State() {
		members = append(members, k)
	}
	sort.Strings(members)
	fmt.Println("members:", members)
	fmt.Println("replicas agree:", fmt.Sprint(ra.State()) == fmt.Sprint(rb.State()))
	// Output:
	// members: [apple pear plum]
	// replicas agree: true
}
