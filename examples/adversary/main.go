// Adversary: watch the paper's Theorem 2 lower bound happen. The covering
// adversary (Figure 2 of the paper) is run against the repeated consensus
// algorithm at every register count from 2 to n: below n+m−k = n it
// constructs a real execution where two values are decided in one consensus
// instance; at n it runs out of processes, exactly as the bound promises.
package main

import (
	"fmt"
	"log"

	"setagreement/internal/core"
	"setagreement/internal/lowerbound"
)

func main() {
	const n = 5
	p := core.Params{N: n, M: 1, K: 1} // repeated consensus: bound is n+m−k = n
	fmt.Printf("Theorem 2: repeated consensus among %d processes needs ≥ %d registers.\n\n", n, n)

	for r := 2; r <= n; r++ {
		alg, err := core.NewRepeatedComponents(p, r)
		if err != nil {
			log.Fatalf("build algorithm: %v", err)
		}
		rep, err := lowerbound.CoverAttack(alg, lowerbound.DefaultCoverOptions())
		if err != nil {
			log.Fatalf("attack: %v", err)
		}
		fmt.Printf("r = %d: %v\n", r, rep.Verdict)
		switch rep.Verdict {
		case lowerbound.VerdictSafety:
			fmt.Printf("        instance %d decided %v — consensus broken\n", rep.Instance, rep.Outputs)
			for j, ph := range rep.Phases {
				if len(ph.P) > 0 {
					fmt.Printf("        phase %d froze processes %v covering %v;\n", j+1, ph.P, ph.A)
					fmt.Printf("                their block write erased group %v's run\n", ph.Q)
				}
			}
		case lowerbound.VerdictNone:
			fmt.Printf("        %s\n", rep.Detail)
		case lowerbound.VerdictLiveness:
			fmt.Printf("        %s\n", rep.Detail)
		}
		fmt.Println()
	}
}
