// Anonymous: a fleet of identical sensors with no identifiers converges on
// at most k calibration values using the paper's anonymous algorithm
// (Figure 5). Anonymity matters when nodes are mass-produced or privacy
// forbids stable identities; the usual n-single-writer-register solutions
// do not apply, and the algorithm instead uses (m+1)(n−k)+m²+1 registers.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"setagreement"
)

func main() {
	const (
		sensors = 5
		k       = 2
		rounds  = 3
	)

	// The value domain is a typed calibration pair — the codec layer
	// carries it through the int-valued core transparently.
	type calibration struct {
		Gain, Offset int
	}

	fleet, err := setagreement.NewAnonymous[calibration](sensors, k,
		setagreement.WithBackoff(10*time.Microsecond, time.Millisecond, 32),
	)
	if err != nil {
		log.Fatalf("create anonymous agreement: %v", err)
	}
	fmt.Printf("anonymous repeated %d-set agreement: %d sensors, %d registers\n\n",
		k, sensors, fleet.Registers())

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Each sensor reads a noisy calibration pair per round and proposes
	// it; the fleet settles on at most k values per round.
	agreed := make([][]calibration, sensors)
	var wg sync.WaitGroup
	for i := 0; i < sensors; i++ {
		session, err := fleet.Session()
		if err != nil {
			log.Fatalf("session: %v", err)
		}
		wg.Add(1)
		go func(i int, s *setagreement.Handle[calibration]) {
			defer wg.Done()
			for round := 0; round < rounds; round++ {
				reading := calibration{Gain: 500 + 10*round + i, Offset: i} // deterministic "noise"
				v, err := s.Propose(ctx, reading)
				if err != nil {
					log.Printf("sensor %d: %v", i, err)
					return
				}
				agreed[i] = append(agreed[i], v)
			}
		}(i, session)
	}
	wg.Wait()

	for round := 0; round < rounds; round++ {
		distinct := make(map[calibration]bool)
		for i := 0; i < sensors; i++ {
			distinct[agreed[i][round]] = true
		}
		vals := make([]calibration, 0, len(distinct))
		for v := range distinct {
			vals = append(vals, v)
		}
		fmt.Printf("round %d: %d distinct calibration pairs %v (bound %d)\n",
			round, len(distinct), vals, k)
		if len(distinct) > k {
			log.Fatal("k-agreement violated")
		}
	}
	fmt.Println("\nno sensor ever used an identifier")
}
