// Command fanout demonstrates the batch proposal API at its intended
// scale: ONE goroutine drives 1,000 keyed agreements to completion over an
// arena. Each key is a consensus (k = 1) between two contenders. The whole
// workload — 2,000 proposals — is submitted through a single SubmitBatch
// call: handles are claimed, futures slab-allocated and the batch handed
// to the arena's engine through one run-queue transition, io_uring style,
// instead of 2,000 ProposeAsync round trips. At any moment hundreds of
// proposals are in flight, contending, parking on their objects' change
// notifiers and resuming on each other's writes, while the process holds
// no goroutine per proposal.
//
// Completions drain through a CompletionQueue in the order keys decide —
// not submission order — so the collector observes time-to-first-decision
// long before the last key settles, with no head-of-line blocking and no
// per-future select.
//
// The run is fully instrumented (WithObservability): after the drain it
// prints the per-stage latency breakdown — submit→first-step, park time,
// wake→decide, decide→delivery — from the collector's histograms. With
// -http the same collector is served live on obshttp's endpoints
// (/metrics, /debug/obs, /debug/pprof/) for the duration of the run;
// combine with -linger to curl them while the workload is in flight.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"runtime"
	"time"

	"setagreement"
	"setagreement/obs"
	"setagreement/obs/obshttp"
)

const keys = 1000

var (
	httpAddr = flag.String("http", "", "serve obshttp endpoints on this address (e.g. localhost:6060)")
	linger   = flag.Duration("linger", 0, "keep serving -http for this long after the run")
)

func main() {
	flag.Parse()

	col := obs.NewCollector(obs.WithRingSize(1 << 14))
	// Two contenders per key, consensus per key, one shared engine.
	ar, err := setagreement.NewArena[string](2, 1,
		setagreement.WithObjectOptions(
			setagreement.WithWaitStrategy(setagreement.WaitNotify),
			setagreement.WithBackoff(50*time.Microsecond, 2*time.Millisecond, 16),
			setagreement.WithObservability(col),
		),
	)
	if err != nil {
		log.Fatal(err)
	}
	if *httpAddr != "" {
		// Serve the arena-enriched snapshot: collector data plus the
		// arena's live gauges.
		go func() {
			h := obshttp.Handler(obshttp.SnapshotterFunc(ar.Observe))
			log.Printf("serving observability on http://%s/metrics", *httpAddr)
			if err := http.ListenAndServe(*httpAddr, h); err != nil {
				log.Printf("obshttp: %v", err)
			}
		}()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	baseline := runtime.NumGoroutine()

	// Submit phase: one BatchOp per contender, one SubmitBatch for all of
	// them. Consecutive ops on a key share the arena lookup, and the engine
	// sees the whole batch as a single descriptor.
	ops := make([]setagreement.BatchOp[string], 0, 2*keys)
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("account-%04d", i)
		ops = append(ops,
			setagreement.BatchOp[string]{Key: k, Proc: 0, Value: "alice@" + k},
			setagreement.BatchOp[string]{Key: k, Proc: 1, Value: "bob@" + k},
		)
	}
	start := time.Now()
	batch, err := ar.SubmitBatch(ctx, ops)
	if err != nil {
		log.Fatal(err)
	}
	submitted := time.Since(start)

	q := setagreement.NewCompletionQueue[string]()
	defer q.Close()
	if err := batch.Register(q); err != nil {
		log.Fatal(err)
	}
	stats := ar.Stats()
	fmt.Printf("submitted %d proposals over %d keys in one SubmitBatch (%v) from one goroutine\n",
		batch.Len(), keys, submitted.Round(10*time.Microsecond))
	fmt.Printf("  in flight: %d, parked: %d, notify waiters: %d\n",
		stats.AsyncInFlight, stats.AsyncParked, stats.NotifyWaiters)
	fmt.Printf("  goroutines: %d (baseline was %d)\n", runtime.NumGoroutine(), baseline)

	// Collect phase: completions arrive in decision order. The decided
	// value of each op is checked against its pair's when the second of the
	// pair lands; first/last decision timestamps fall out of the drain.
	var (
		firstDecision, lastDecision time.Duration
		decided                     = make(map[string]string, keys)
		winners                     = make(map[string]int, 2)
	)
	for seen := 0; seen < batch.Len(); seen++ {
		c, err := q.Next(ctx)
		if err != nil {
			log.Fatal(err)
		}
		v, err := c.Value()
		if err != nil {
			op := ops[c.Tag]
			log.Fatalf("%s/proc %d: %v", op.Key, op.Proc, err)
		}
		if seen == 0 {
			firstDecision = time.Since(start)
		}
		lastDecision = time.Since(start)
		key := ops[c.Tag].Key
		if prev, ok := decided[key]; ok {
			if prev != v {
				log.Fatalf("key %s disagreed: %q vs %q", key, prev, v)
			}
			if v == "alice@"+key {
				winners["alice"]++
			} else {
				winners["bob"]++
			}
		} else {
			decided[key] = v
		}
	}
	stats = ar.Stats()
	fmt.Printf("all %d keys decided and agreed (alice won %d, bob won %d)\n",
		keys, winners["alice"], winners["bob"])
	fmt.Printf("  time to first decision: %v, time to last decision: %v\n",
		firstDecision.Round(10*time.Microsecond), lastDecision.Round(time.Millisecond))
	fmt.Printf("  proposes: %d, wakeups: %d, wait total: %v, mem steps: %d\n",
		stats.Proposes, stats.Wakeups, stats.WaitTime.Round(time.Millisecond), stats.MemSteps)

	// Per-stage latency attribution: where did each proposal's lifetime go?
	snap := ar.Observe(false)
	fmt.Println("per-stage latency (p50 / p95 / count):")
	for _, stage := range []obs.Latency{
		obs.LatSubmitToStart, obs.LatPark, obs.LatWakeToDecide,
		obs.LatSubmitToDecide, obs.LatDecideToDeliver,
	} {
		hs, ok := snap.Latencies[stage.String()]
		if !ok {
			continue
		}
		fmt.Printf("  %-18s %10v %10v %8d\n", stage.String(),
			hs.Quantile(0.5).Round(time.Microsecond),
			hs.Quantile(0.95).Round(time.Microsecond), hs.Count)
	}
	fmt.Printf("  parks: %d, wakes: %d, solo runs: %d, batches expanded: %d, dropped events: %d\n",
		snap.Counters["parks"], snap.Counters["wakes"], snap.Counters["solo_runs"],
		snap.Counters["batches_expanded"], snap.DroppedEvents)

	if *httpAddr != "" && *linger > 0 {
		log.Printf("lingering %v for scrapes of http://%s/metrics", *linger, *httpAddr)
		time.Sleep(*linger)
	}
}
