// Command fanout demonstrates the async proposal engine at its intended
// scale: ONE goroutine drives 1,000 keyed agreements to completion through
// futures over an arena. Each key is a consensus (k = 1) between two
// contenders — both submitted asynchronously by the same driver — so at
// any moment hundreds of proposals are in flight, contending, parking on
// their objects' change notifiers and resuming on each other's writes,
// while the process holds no goroutine per proposal: the engine multiplexes
// them all over a handful of transient workers.
//
// Compare the synchronous shape: 2,000 blocking Proposes would need 2,000
// goroutines. Here the driver submits every proposal, then collects the
// futures; the goroutine count printed mid-flight is the whole story.
package main

import (
	"context"
	"fmt"
	"log"
	"runtime"
	"time"

	"setagreement"
)

const keys = 1000

func main() {
	// Two contenders per key, consensus per key, one shared engine.
	ar, err := setagreement.NewArena[string](2, 1,
		setagreement.WithObjectOptions(
			setagreement.WithWaitStrategy(setagreement.WaitNotify),
			setagreement.WithBackoff(50*time.Microsecond, 2*time.Millisecond, 16),
		),
	)
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	start := time.Now()
	baseline := runtime.NumGoroutine()

	// Submit phase: 2 async proposals per key, 2,000 in flight, still one
	// goroutine. ProposeAsync never blocks on agreement — it hands the
	// proposal to the arena's engine and returns the future.
	type pending struct {
		key        string
		alice, bob *setagreement.Future[string]
	}
	inflight := make([]pending, 0, keys)
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("account-%04d", i)
		obj := ar.Object(k)
		alice, err := obj.Proc(0)
		if err != nil {
			log.Fatal(err)
		}
		bob, err := obj.Proc(1)
		if err != nil {
			log.Fatal(err)
		}
		inflight = append(inflight, pending{
			key:   k,
			alice: alice.ProposeAsync(ctx, "alice@"+k),
			bob:   bob.ProposeAsync(ctx, "bob@"+k),
		})
	}
	stats := ar.Stats()
	fmt.Printf("submitted %d proposals over %d keys from one goroutine\n", 2*keys, keys)
	fmt.Printf("  in flight: %d, parked: %d, notify waiters: %d\n",
		stats.AsyncInFlight, stats.AsyncParked, stats.NotifyWaiters)
	fmt.Printf("  goroutines: %d (baseline was %d)\n", runtime.NumGoroutine(), baseline)

	// Collect phase: every pair must agree on its key's winner.
	winners := make(map[string]int)
	for _, p := range inflight {
		a, err := p.alice.Value()
		if err != nil {
			log.Fatalf("%s/alice: %v", p.key, err)
		}
		b, err := p.bob.Value()
		if err != nil {
			log.Fatalf("%s/bob: %v", p.key, err)
		}
		if a != b {
			log.Fatalf("key %s disagreed: %q vs %q", p.key, a, b)
		}
		if a == "alice@"+p.key {
			winners["alice"]++
		} else {
			winners["bob"]++
		}
	}
	stats = ar.Stats()
	fmt.Printf("all %d keys decided and agreed in %v (alice won %d, bob won %d)\n",
		keys, time.Since(start).Round(time.Millisecond), winners["alice"], winners["bob"])
	fmt.Printf("  proposes: %d, wakeups: %d, wait total: %v, mem steps: %d\n",
		stats.Proposes, stats.Wakeups, stats.WaitTime.Round(time.Millisecond), stats.MemSteps)
}
