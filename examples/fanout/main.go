// Command fanout demonstrates the batch proposal API at its intended
// scale: ONE goroutine drives 1,000 keyed agreements to completion over an
// arena. Each key is a consensus (k = 1) between two contenders. The whole
// workload — 2,000 proposals — is submitted through a single SubmitBatch
// call: handles are claimed, futures slab-allocated and the batch handed
// to the arena's engine through one run-queue transition, io_uring style,
// instead of 2,000 ProposeAsync round trips. At any moment hundreds of
// proposals are in flight, contending, parking on their objects' change
// notifiers and resuming on each other's writes, while the process holds
// no goroutine per proposal.
//
// Completions drain through a CompletionQueue in the order keys decide —
// not submission order — so the collector observes time-to-first-decision
// long before the last key settles, with no head-of-line blocking and no
// per-future select.
package main

import (
	"context"
	"fmt"
	"log"
	"runtime"
	"time"

	"setagreement"
)

const keys = 1000

func main() {
	// Two contenders per key, consensus per key, one shared engine.
	ar, err := setagreement.NewArena[string](2, 1,
		setagreement.WithObjectOptions(
			setagreement.WithWaitStrategy(setagreement.WaitNotify),
			setagreement.WithBackoff(50*time.Microsecond, 2*time.Millisecond, 16),
		),
	)
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	baseline := runtime.NumGoroutine()

	// Submit phase: one BatchOp per contender, one SubmitBatch for all of
	// them. Consecutive ops on a key share the arena lookup, and the engine
	// sees the whole batch as a single descriptor.
	ops := make([]setagreement.BatchOp[string], 0, 2*keys)
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("account-%04d", i)
		ops = append(ops,
			setagreement.BatchOp[string]{Key: k, Proc: 0, Value: "alice@" + k},
			setagreement.BatchOp[string]{Key: k, Proc: 1, Value: "bob@" + k},
		)
	}
	start := time.Now()
	batch, err := ar.SubmitBatch(ctx, ops)
	if err != nil {
		log.Fatal(err)
	}
	submitted := time.Since(start)

	q := setagreement.NewCompletionQueue[string]()
	defer q.Close()
	if err := batch.Register(q); err != nil {
		log.Fatal(err)
	}
	stats := ar.Stats()
	fmt.Printf("submitted %d proposals over %d keys in one SubmitBatch (%v) from one goroutine\n",
		batch.Len(), keys, submitted.Round(10*time.Microsecond))
	fmt.Printf("  in flight: %d, parked: %d, notify waiters: %d\n",
		stats.AsyncInFlight, stats.AsyncParked, stats.NotifyWaiters)
	fmt.Printf("  goroutines: %d (baseline was %d)\n", runtime.NumGoroutine(), baseline)

	// Collect phase: completions arrive in decision order. The decided
	// value of each op is checked against its pair's when the second of the
	// pair lands; first/last decision timestamps fall out of the drain.
	var (
		firstDecision, lastDecision time.Duration
		decided                     = make(map[string]string, keys)
		winners                     = make(map[string]int, 2)
	)
	for seen := 0; seen < batch.Len(); seen++ {
		c, err := q.Next(ctx)
		if err != nil {
			log.Fatal(err)
		}
		v, err := c.Value()
		if err != nil {
			op := ops[c.Tag]
			log.Fatalf("%s/proc %d: %v", op.Key, op.Proc, err)
		}
		if seen == 0 {
			firstDecision = time.Since(start)
		}
		lastDecision = time.Since(start)
		key := ops[c.Tag].Key
		if prev, ok := decided[key]; ok {
			if prev != v {
				log.Fatalf("key %s disagreed: %q vs %q", key, prev, v)
			}
			if v == "alice@"+key {
				winners["alice"]++
			} else {
				winners["bob"]++
			}
		} else {
			decided[key] = v
		}
	}
	stats = ar.Stats()
	fmt.Printf("all %d keys decided and agreed (alice won %d, bob won %d)\n",
		keys, winners["alice"], winners["bob"])
	fmt.Printf("  time to first decision: %v, time to last decision: %v\n",
		firstDecision.Round(10*time.Microsecond), lastDecision.Round(time.Millisecond))
	fmt.Printf("  proposes: %d, wakeups: %d, wait total: %v, mem steps: %d\n",
		stats.Proposes, stats.Wakeups, stats.WaitTime.Round(time.Millisecond), stats.MemSteps)
}
