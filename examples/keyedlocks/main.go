// Command keyedlocks demonstrates per-key coordination through an Arena:
// a fleet of workers competes for leases on named resources, where each
// lease round is one consensus (k = 1) on the arena object named after the
// resource. This is the workload shape the arena serves — many small
// agreement objects created on demand, used briefly, and recycled — as
// opposed to one hand-wired object.
//
// Each worker claims its process handle on the resources it wants, proposes
// itself as the lease holder, and learns the decided holder; all workers
// that contested one key agree on its holder. Handles are then released,
// and the sweep evicts the idle objects, recycling their shared memory for
// the next round of keys.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"setagreement"
)

const (
	workers   = 4
	resources = 6
	rounds    = 3
)

func main() {
	// One arena serves every resource: repeated consensus objects for
	// `workers` processes, lock-free backend, evictable after 50ms idle.
	ar, err := setagreement.NewArena[string](workers, 1,
		setagreement.WithShards(8),
		setagreement.WithIdleTTL(50*time.Millisecond),
		setagreement.WithObjectOptions(
			setagreement.WithMemoryBackend(setagreement.BackendLockFree),
			setagreement.WithBackoff(time.Microsecond, time.Millisecond, 64),
		),
	)
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	for round := 0; round < rounds; round++ {
		keys := make([]string, resources)
		for i := range keys {
			keys[i] = fmt.Sprintf("round%d/resource-%c", round, 'A'+i)
		}

		// Every worker contests every key: claim a handle per key, propose
		// itself as the holder, collect the decided holders.
		holders := make([]map[string]string, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				me := fmt.Sprintf("worker-%d", w)
				holders[w] = make(map[string]string)
				for _, key := range keys {
					h, err := ar.Object(key).Proc(w)
					if err != nil {
						log.Fatalf("%s: claim %s: %v", me, key, err)
					}
					decided, err := h.Propose(ctx, me)
					if err != nil {
						log.Fatalf("%s: propose on %s: %v", me, key, err)
					}
					holders[w][key] = decided
					if err := h.Release(); err != nil {
						log.Fatalf("%s: release %s: %v", me, key, err)
					}
				}
			}(w)
		}
		wg.Wait()

		// Consensus per key: every worker saw the same holder.
		fmt.Printf("round %d leases:\n", round)
		for _, key := range keys {
			holder := holders[0][key]
			for w := 1; w < workers; w++ {
				if holders[w][key] != holder {
					log.Fatalf("consensus violated on %s: %q vs %q", key, holders[w][key], holder)
				}
			}
			fmt.Printf("  %-20s held by %s\n", key, holder)
		}

		// All handles are released; once the TTL passes, the sweep reclaims
		// this round's objects and their memories go back to the pool.
		time.Sleep(60 * time.Millisecond)
		evicted := ar.Sweep()
		fmt.Printf("  swept %d idle objects\n", evicted)
	}

	s := ar.Stats()
	fmt.Printf("\narena totals: objects created %d, evicted %d, pool hits %d\n",
		s.Created, s.Evicted, s.PoolHits)
	fmt.Printf("handles %d, proposes %d, shared-memory steps %d (scans %d), CAS retries %d\n",
		s.Handles, s.Proposes, s.MemSteps, s.Scans, s.CASRetries)
}
