// Ledger: the universal construction the paper's introduction motivates —
// repeated consensus turns any deterministic state machine into a
// linearizable replicated object (Herlihy [8]). Here: a bank ledger
// replicated across four tellers with no leader, no locks, and the paper's
// min(n+2m−k, n) register footprint underneath.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"setagreement"
)

// ledger is the sequential object: account balances.
type ledger map[string]int

// transfer is one operation.
type transfer struct {
	From, To string
	Amount   int
}

func applyTransfer(l ledger, op transfer) ledger {
	next := make(ledger, len(l))
	for k, v := range l {
		next[k] = v
	}
	if op.From != "" {
		next[op.From] -= op.Amount
	}
	next[op.To] += op.Amount
	return next
}

func main() {
	const tellers = 4
	obj, err := setagreement.NewReplicated[ledger, transfer](tellers,
		func() ledger { return ledger{} },
		applyTransfer,
		setagreement.WithBackoff(10*time.Microsecond, time.Millisecond, 32),
	)
	if err != nil {
		log.Fatalf("create replicated ledger: %v", err)
	}
	fmt.Printf("replicated ledger: %d tellers over %d registers\n\n", tellers, obj.Registers())

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	replicas := make([]*setagreement.Replica[ledger, transfer], tellers)
	for id := range replicas {
		replicas[id], err = obj.Replica(id)
		if err != nil {
			log.Fatalf("replica %d: %v", id, err)
		}
	}

	// Each teller deposits into its own branch account and moves money
	// to a shared account, concurrently.
	var wg sync.WaitGroup
	for id := 0; id < tellers; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			branch := fmt.Sprintf("branch-%d", id)
			ops := []transfer{
				{To: branch, Amount: 100},
				{From: branch, To: "shared", Amount: 40},
				{To: branch, Amount: 5},
			}
			for _, op := range ops {
				if _, err := replicas[id].Invoke(ctx, op); err != nil {
					log.Printf("teller %d: %v", id, err)
					return
				}
			}
		}(id)
	}
	wg.Wait()

	// Bring every replica up to the same log length and compare.
	maxSlots := 0
	for _, rp := range replicas {
		if rp.Slots() > maxSlots {
			maxSlots = rp.Slots()
		}
	}
	for id, rp := range replicas {
		for rp.Slots() < maxSlots {
			if _, err := rp.Sync(ctx); err != nil {
				log.Fatalf("teller %d sync: %v", id, err)
			}
		}
	}

	for id, rp := range replicas {
		st := rp.State()
		fmt.Printf("teller %d (%d consensus proposes, %d shared-memory steps) sees shared=%d",
			id, rp.Stats().Proposes, rp.Stats().Steps, st["shared"])
		for b := 0; b < tellers; b++ {
			fmt.Printf(" branch-%d=%d", b, st[fmt.Sprintf("branch-%d", b)])
		}
		fmt.Println()
	}
	want := replicas[0].State()
	for id := 1; id < tellers; id++ {
		st := replicas[id].State()
		for acct, bal := range want {
			if st[acct] != bal {
				log.Fatalf("replicas diverged on %s: %d vs %d", acct, st[acct], bal)
			}
		}
	}
	fmt.Printf("\nall %d replicas agree; shared account = %d (4 tellers × 40)\n",
		tellers, want["shared"])
}
