// Quickstart: six goroutines run one-shot 2-set agreement over the library's
// public API. At most two distinct values are decided, every decided value
// is someone's proposal, and the object occupies min(n+2m−k, n) registers.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"setagreement"
)

func main() {
	const n, k = 6, 2

	agreement, err := setagreement.New[int](n, k,
		// Back off under contention so obstruction-free Propose calls
		// terminate in practice (the scheduling approach the paper's
		// introduction describes).
		setagreement.WithBackoff(10*time.Microsecond, time.Millisecond, 32),
	)
	if err != nil {
		log.Fatalf("create agreement: %v", err)
	}
	fmt.Printf("one-shot %d-set agreement for %d processes over %d registers\n\n",
		k, n, agreement.Registers())

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	decisions := make([]int, n)
	var wg sync.WaitGroup
	for id := 0; id < n; id++ {
		// Each goroutine claims its process handle once, then proposes
		// through it.
		h, err := agreement.Proc(id)
		if err != nil {
			log.Fatalf("claim process %d: %v", id, err)
		}
		wg.Add(1)
		go func(id int, h *setagreement.Handle[int]) {
			defer wg.Done()
			proposal := 100 + id
			decided, err := h.Propose(ctx, proposal)
			if err != nil {
				log.Printf("process %d: %v", id, err)
				return
			}
			decisions[id] = decided
			fmt.Printf("process %d proposed %d, decided %d (%d shared-memory steps)\n",
				id, proposal, decided, h.Stats().Steps)
		}(id, h)
	}
	wg.Wait()

	distinct := make(map[int]bool)
	for _, v := range decisions {
		distinct[v] = true
	}
	fmt.Printf("\n%d distinct decisions (k-agreement bound: %d)\n", len(distinct), k)
}
