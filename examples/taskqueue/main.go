// Taskqueue: repeated consensus as a leaderless replicated log, the use the
// paper motivates via Herlihy's universal construction — a sequence of
// independent agreement instances orders operations.
//
// Four workers each hold a private backlog of jobs. For every slot of the
// shared schedule they propose their own next job; instance t of repeated
// consensus (k = 1) decides which job owns slot t. All workers end up with
// identical schedules without any leader or lock.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"setagreement"
)

const (
	workers = 4
	slots   = 6
)

func main() {
	rep, err := setagreement.NewRepeated[int](workers, 1,
		setagreement.WithBackoff(10*time.Microsecond, time.Millisecond, 32),
	)
	if err != nil {
		log.Fatalf("create repeated agreement: %v", err)
	}
	log.SetFlags(0)
	fmt.Printf("replicated schedule via repeated consensus: %d workers, %d slots, %d registers\n\n",
		workers, slots, rep.Registers())

	// jobs are encoded as worker*100 + local index.
	schedules := make([][]int, workers)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		h, err := rep.Proc(w) // claim this worker's process handle once
		if err != nil {
			log.Fatalf("claim worker %d: %v", w, err)
		}
		wg.Add(1)
		go func(w int, h *setagreement.Handle[int]) {
			defer wg.Done()
			next := 0 // next job from my backlog to offer
			for slot := 0; slot < slots; slot++ {
				myJob := w*100 + next
				winner, err := h.Propose(ctx, myJob)
				if err != nil {
					log.Printf("worker %d: %v", w, err)
					return
				}
				schedules[w] = append(schedules[w], winner)
				if winner == myJob {
					next++ // my job got a slot; offer the next one
				}
			}
		}(w, h)
	}
	wg.Wait()

	for w := 0; w < workers; w++ {
		fmt.Printf("worker %d sees schedule %v\n", w, schedules[w])
	}
	for w := 1; w < workers; w++ {
		for s := range schedules[0] {
			if schedules[w][s] != schedules[0][s] {
				log.Fatalf("schedules diverged at slot %d", s)
			}
		}
	}
	fmt.Println("\nall workers computed identical schedules — no leader, no locks")
}
