package setagreement

// Future is the pending result of a ProposeAsync: it resolves exactly once
// — with the decided value, or with the error the equivalent synchronous
// Propose would have returned (lifecycle errors like ErrInUse, context
// cancellation, ErrEngineClosed at engine shutdown). All methods are safe
// for concurrent use from any number of goroutines, and all reads are
// idempotent: every Value call returns the same pair forever.
//
// Done is the select-friendly face for callers multiplexing many futures
// (see examples/fanout); Value and Err are the blocking conveniences.
type Future[T comparable] struct {
	done chan struct{}
	val  T
	err  error
}

func newFuture[T comparable]() *Future[T] {
	return &Future[T]{done: make(chan struct{})}
}

// resolve delivers the outcome. Called exactly once, by the async driver
// (or by ProposeAsync itself for immediate lifecycle failures); the
// channel close publishes val and err to every reader.
func (f *Future[T]) resolve(v T, err error) {
	f.val, f.err = v, err
	close(f.done)
}

// resolved builds an already-resolved future, for submissions that fail
// before reaching the engine.
func resolvedFuture[T comparable](v T, err error) *Future[T] {
	f := newFuture[T]()
	f.resolve(v, err)
	return f
}

// Done returns a channel that is closed when the proposal has resolved.
// After it is closed, Value and Err return without blocking.
func (f *Future[T]) Done() <-chan struct{} { return f.done }

// Value blocks until the proposal resolves and returns its outcome. It may
// be called any number of times, from any goroutine; every call returns
// the same result.
func (f *Future[T]) Value() (T, error) {
	<-f.done
	return f.val, f.err
}

// Err blocks until the proposal resolves and returns its error, nil on
// success. Like Value, it is idempotent.
func (f *Future[T]) Err() error {
	<-f.done
	return f.err
}

// Resolved reports, without blocking, whether the proposal has resolved.
func (f *Future[T]) Resolved() bool {
	select {
	case <-f.done:
		return true
	default:
		return false
	}
}
