package setagreement

import (
	"sync"
	"sync/atomic"

	"setagreement/obs"
)

// Future is the pending result of a ProposeAsync: it resolves exactly once
// — with the decided value, or with the error the equivalent synchronous
// Propose would have returned (lifecycle errors like ErrInUse, context
// cancellation, ErrEngineClosed at engine shutdown). All methods are safe
// for concurrent use from any number of goroutines, and all reads are
// idempotent: every Value call returns the same pair forever.
//
// Done is the select-friendly face for callers multiplexing a handful of
// futures; Value and Err are the blocking conveniences. For many in-flight
// futures, register them with a CompletionQueue and drain completions in
// the order they resolve instead of selecting per future.
type Future[T comparable] struct {
	// state is 0 while pending, 1 once resolved; the atomic store in
	// resolve publishes val and err to every reader that loads 1.
	state atomic.Uint32
	mu    sync.Mutex // guards the lazy done channel
	done  chan struct{}
	val   T
	err   error

	// Completion-queue delivery: reg is CAS-installed by Register (at most
	// one queue per future, queue and tag published as one pointer);
	// delivered makes the handoff exactly-once whichever side — resolve or
	// a Register that arrives after resolution — performs it.
	reg       atomic.Pointer[cqReg[T]]
	delivered atomic.Bool

	// span is the proposal's lifecycle trace (nil when observability is
	// disabled). Written by the submit path before resolve can run, read
	// by deliver — the exactly-once delivery CAS sequences the two.
	span *obs.Span
}

func newFuture[T comparable]() *Future[T] {
	return &Future[T]{}
}

// closedChan is the Done channel of every already-resolved future: the
// channel is only ever read from, so all resolved futures can share one.
var closedChan = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()

// resolve delivers the outcome. Called exactly once, by the async driver
// (or by the submit path itself for immediate lifecycle failures); the
// state store publishes val and err to every reader, and the future is
// handed to its completion queue, if one is registered.
func (f *Future[T]) resolve(v T, err error) {
	f.val, f.err = v, err
	f.mu.Lock()
	f.state.Store(1)
	done := f.done
	f.mu.Unlock()
	if done != nil {
		close(done)
	}
	f.deliver()
}

// deliver hands the resolved future to its registered completion queue,
// exactly once. Callable only when the future is resolved; a future with no
// queue is untouched (Register delivers later if one arrives).
func (f *Future[T]) deliver() {
	r := f.reg.Load()
	if r == nil || !f.delivered.CompareAndSwap(false, true) {
		return
	}
	// The delivery event fires exactly once, with the CAS, before the push
	// makes the completion collectable.
	f.span.Delivered()
	r.q.push(Completion[T]{Future: f, Tag: r.tag})
}

// resolved builds an already-resolved future, for submissions that fail
// before reaching the engine.
func resolvedFuture[T comparable](v T, err error) *Future[T] {
	f := newFuture[T]()
	f.resolve(v, err)
	return f
}

// Done returns a channel that is closed when the proposal has resolved.
// After it is closed, Value and Err return without blocking.
func (f *Future[T]) Done() <-chan struct{} {
	if f.state.Load() == 1 {
		return closedChan
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.state.Load() == 1 {
		return closedChan
	}
	if f.done == nil {
		f.done = make(chan struct{})
	}
	return f.done
}

// Value blocks until the proposal resolves and returns its outcome. It may
// be called any number of times, from any goroutine; every call returns
// the same result.
func (f *Future[T]) Value() (T, error) {
	if f.state.Load() != 1 {
		<-f.Done()
	}
	return f.val, f.err
}

// Err blocks until the proposal resolves and returns its error, nil on
// success. Like Value, it is idempotent.
func (f *Future[T]) Err() error {
	_, err := f.Value()
	return err
}

// Resolved reports, without blocking, whether the proposal has resolved.
func (f *Future[T]) Resolved() bool { return f.state.Load() == 1 }
