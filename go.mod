module setagreement

go 1.22
