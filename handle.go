package setagreement

import (
	"context"
	goruntime "runtime"
	"sync/atomic"
	"time"

	"setagreement/internal/core"
	"setagreement/internal/shmem"
	"setagreement/obs"
)

// Handle is one claimed process's handle on an agreement object. A handle
// is obtained exactly once per process — Proc(id) on identified objects,
// Session() on anonymous ones — and owns everything that process needs
// across Propose calls: the algorithm's persistent local state, the
// process's resolved view of shared memory, its backoff state, and its
// instrumentation counters. Resolving all of that at claim time is what
// keeps Propose itself free of facade locks, map lookups and per-call
// allocation.
//
// A handle is one process: at most one Propose may be in flight on it (a
// concurrent call fails with ErrInUse), but claiming a handle and reading
// its Stats are safe from any goroutine.
type Handle[T comparable] struct {
	rt      *runtime
	codec   Codec[T]
	proc    core.Process
	res     core.Resumable // proc's resumable face, resolved at claim time
	id      int
	oneShot bool
	st      atomic.Uint32
	guard   guardMem
	stats   handleStats
	// asyncWait is the wait plan engine-driven Proposes fall back to when
	// no schedule is configured (a sync Propose then never yields, but an
	// async one must — yield points are where the engine multiplexes).
	// Allocated at the handle's first ProposeAsync, reused afterwards.
	asyncWait *waitPlan
	// onRelease, when set by the object that issued the handle (the arena
	// does), runs exactly once when Release succeeds. Set before the handle
	// escapes to the caller, never mutated afterwards.
	onRelease func()
}

// handle lifecycle states, stored in Handle.st.
type state = uint32

const (
	stateFree state = iota
	stateBusy
	stateDone
	statePoisoned
	stateReleased
)

// ID returns the process identifier the handle was claimed for, or -1 for
// anonymous sessions.
func (h *Handle[T]) ID() int { return h.id }

// Propose submits value v as this process and returns the decided value.
// On repeated objects successive calls access successive instances; on
// one-shot objects a second call fails with ErrAlreadyProposed. Propose
// blocks until a decision is reached or ctx is cancelled; cancellation
// poisons the handle (its half-finished operation cannot be resumed), and
// every later call fails with ErrPoisoned. A codec Decode failure — only
// possible with a misbehaving custom codec — also poisons the handle.
func (h *Handle[T]) Propose(ctx context.Context, v T) (T, error) {
	if err := h.claim(); err != nil {
		var zero T
		return zero, err
	}
	// Branch-guarded rather than deferred: the disabled path pays one nil
	// check and the solo hot path stays allocation-free either way.
	var start time.Time
	if h.guard.rec != nil {
		start = time.Now()
	}
	out, err := h.run(ctx, h.codec.Encode(v))
	if h.guard.rec != nil {
		h.guard.rec.SyncPropose(time.Since(start), int(h.guard.obsProc))
	}
	return h.commit(out, err)
}

// claim moves the handle free→busy for one Propose (sync or async),
// translating every other lifecycle state into its error.
func (h *Handle[T]) claim() error {
	for {
		// CAS-first: the free→busy transition is the hot path (one atomic
		// op); the state switch below is only reached on lifecycle errors
		// or a lost race.
		if h.st.CompareAndSwap(stateFree, stateBusy) {
			h.stats.proposes.Add(1)
			return nil
		}
		switch h.st.Load() {
		case stateBusy:
			return ErrInUse
		case stateDone:
			return ErrAlreadyProposed
		case statePoisoned:
			return ErrPoisoned
		case stateReleased:
			return ErrReleased
		}
	}
}

// commit ends a claimed Propose with the machine's outcome, shared by the
// sync driver and the async finish so the two paths cannot diverge: any
// error poisons (half-written state cannot be resumed), and the decode
// runs before the lifecycle transition — a decode failure (a misbehaving
// custom codec) must not park a one-shot handle at Done with its decision
// irretrievable; it poisons instead, the handle's typed view of the
// decided code being broken.
func (h *Handle[T]) commit(out int, err error) (T, error) {
	var zero T
	if err != nil {
		h.st.Store(statePoisoned)
		return zero, err
	}
	dec, err := h.codec.Decode(out)
	if err != nil {
		h.st.Store(statePoisoned)
		return zero, err
	}
	if h.oneShot {
		h.st.Store(stateDone)
	} else {
		h.st.Store(stateFree)
	}
	return dec, nil
}

// run executes one Propose of the underlying algorithm through the
// handle's guard. The guard is reused across calls: only the context and
// wait-plan progress change per call.
func (h *Handle[T]) run(ctx context.Context, code int) (out int, err error) {
	// Check cancellation once up front: the per-step gate below never fires
	// for a Propose that decides without touching shared memory (the
	// repeated algorithm's history shortcut), and a call with a dead
	// context must fail rather than quietly succeed.
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
	}
	h.guard.ctx = ctx
	h.guard.cur = h.guard.wait
	h.guard.park = false
	h.guard.resetWait()
	defer func() {
		h.guard.ctx = nil
		if r := recover(); r != nil {
			cp, ok := r.(cancelPanic)
			if !ok {
				panic(r)
			}
			err = cp.err
		}
	}()
	return h.proc.Propose(&h.guard, code), nil
}

// Release permanently retires the handle: every later Propose fails with
// ErrReleased. Releasing is how a process tells the object it has left —
// on arena objects a key whose handles are all released becomes eligible
// for idle eviction, and its shared memory is recycled for the next object.
// Release is idempotent and safe to call on done or poisoned handles; it
// fails with ErrInUse if a Propose is in flight (a handle is one process —
// finish or cancel the operation first). The process id stays consumed:
// release does not make the id claimable again on the same object.
func (h *Handle[T]) Release() error {
	for {
		st := h.st.Load()
		switch st {
		case stateBusy:
			return ErrInUse
		case stateReleased:
			return nil
		}
		if h.st.CompareAndSwap(st, stateReleased) {
			if h.onRelease != nil {
				h.onRelease()
			}
			return nil
		}
	}
}

// Stats is a point-in-time view of a handle's instrumentation. Proposes,
// Steps, Scans, WaitTime, Wakeups and SpuriousWakeups are exact per-handle
// counters; MemSteps and CASRetries come from the object's shared memory
// backend and therefore aggregate over all handles of the object
// (CASRetries is zero on backends that never retry, such as the mutex one).
type Stats struct {
	// Proposes counts Propose calls started on this handle.
	Proposes int64
	// Steps counts shared-memory operations this handle issued.
	Steps int64
	// Scans counts the snapshot scans among those operations.
	Scans int64
	// WaitTime is the total time this handle spent blocked between
	// shared-memory steps: backoff sleeps under WaitBackoff, notifier
	// waits (and their timeout fallbacks) under WaitNotify/WaitHybrid.
	WaitTime time.Duration
	// Wakeups counts notify-waits ended by a memory change rather than by
	// the timeout cap (WaitNotify/WaitHybrid only).
	Wakeups int64
	// SpuriousWakeups counts wakeups the notifier absorbed where the
	// memory's version had not actually advanced; the waiter re-armed.
	SpuriousWakeups int64
	// ScansCombined counts scans this handle performed on behalf of a wake
	// batch and published in the object's combining slot (WithScanCombining).
	ScansCombined int64
	// ScansAdopted counts scans this handle satisfied by adopting a view
	// another process published for the exact change version this handle
	// observed — scans of shared memory that never happened.
	ScansAdopted int64
	// MemSteps counts operations executed by the object's shared memory,
	// across all handles.
	MemSteps int64
	// CASRetries counts failed compare-and-swap installs in the object's
	// memory backend, across all handles.
	CASRetries int64
}

// Stats returns the handle's instrumentation counters. It is safe to call
// concurrently with an in-flight Propose — synchronous or asynchronous —
// e.g. from a monitoring loop.
//
// Consistency under concurrency: every counter is an independent atomic,
// so a snapshot taken mid-Propose is not a single linearization point
// across fields, but each individual counter is exact and monotone
// (successive snapshots never show a field decreasing). Paired fields are
// ordered so a snapshot never tears them the misleading way: WaitTime is
// charged before the Wakeups increment of the wait it ends — for blocking
// waits and engine parks alike — so a snapshot showing a wakeup already
// includes that wakeup's wait time.
func (h *Handle[T]) Stats() Stats {
	s := Stats{
		Proposes:        h.stats.proposes.Load(),
		Steps:           h.stats.steps.Load(),
		Scans:           h.stats.scans.Load(),
		WaitTime:        time.Duration(h.stats.waitNS.Load()),
		Wakeups:         h.stats.wakeups.Load(),
		SpuriousWakeups: h.stats.spurious.Load(),
		ScansCombined:   h.stats.combined.Load(),
		ScansAdopted:    h.stats.adopted.Load(),
	}
	if st, ok := h.rt.mem.(shmem.Stepper); ok {
		s.MemSteps = st.Steps()
	}
	if cr, ok := h.rt.mem.(shmem.CASRetrier); ok {
		s.CASRetries = cr.CASRetries()
	}
	return s
}

// handleStats holds the per-handle counters behind Stats. Counters are
// atomic so Stats can be read while a Propose is running.
type handleStats struct {
	proposes atomic.Int64
	steps    atomic.Int64
	scans    atomic.Int64
	waitNS   atomic.Int64
	wakeups  atomic.Int64
	spurious atomic.Int64
	combined atomic.Int64
	adopted  atomic.Int64
}

// cancelPanic unwinds a Propose blocked inside the algorithm loop when its
// context is cancelled. It never escapes run.
type cancelPanic struct{ err error }

// parkSignal unwinds an engine-driven Propose at a yield point where it
// would otherwise block: version is the notifier version already seen
// (meaningful when notify is set), cap bounds the park like a backoff
// sleep bounds a wait. It never escapes the async driver.
type parkSignal struct {
	version uint64
	cap     time.Duration
	notify  bool
}

// waitPlan is the per-handle state of the configured WaitStrategy: the
// escalation schedule (reused backoffState) plus, for the event-driven
// strategies, the solo-detection baseline — the notifier version and own
// mutation count at the previous yield point, whose deltas tell whether any
// other process has written since.
type waitPlan struct {
	strategy    WaitStrategy
	backoff     backoffState
	lastVersion uint64
	lastOwnMuts uint64
}

// hybridSpinRounds bounds the polling phase of WaitHybrid: the version is
// re-checked this many times (yielding the processor between checks) before
// the strategy falls back to the blocking notify-wait.
const hybridSpinRounds = 32

// guardMem wraps a process's resolved memory with context cancellation,
// the wait strategy and step accounting. One guardMem lives inside each
// handle and is reused across Propose calls — synchronous and asynchronous
// alike, since a handle is one process and runs at most one Propose at a
// time.
type guardMem struct {
	inner shmem.Mem
	ctx   context.Context
	// wait is the configured wait plan (nil when the default strategy has
	// no backoff schedule); cur is the plan the current Propose actually
	// runs under — wait for sync calls, the handle's async fallback when an
	// engine drives a scheduleless handle.
	wait *waitPlan
	cur  *waitPlan
	// park switches the yield points from blocking (sleep or notify-wait)
	// to signaling: instead of holding the goroutine, the guard unwinds
	// with a parkSignal the engine turns into a completion-based park.
	// skipYield suppresses parking until the resumed Step completes (the
	// async driver clears it as each Step returns). A park unwinds the
	// whole Step and a resume re-runs it from the top, so the Step is the
	// unit of restart — and must also be the unit of progress: a woken
	// proposal that could re-park at any of the re-run's yield points
	// would, under a yield-every-op schedule, re-execute its first
	// operation and park at its second forever. Running the resumed Step
	// yield-free is the engine's form of the woken-waiter-proceeds rule.
	park      bool
	skipYield bool
	stats     *handleStats
	// notifier is the memory's change-notification capability, resolved at
	// claim time (nil when the backend lacks it — the event-driven
	// strategies then degrade to plain backoff sleeps). notifyExact records
	// whether the notifier's version ticks exactly once per logical
	// mutation this guard issues (true on the atomic snapshot runtime,
	// where guard operations map 1:1 onto backend operations); only then
	// can own writes be subtracted out for solo detection.
	notifier    shmem.Notifier
	notifyExact bool
	// comb is the object's scan-combining slot (nil when combining is
	// disabled or the memory lacks the Notifier capability). combineArmed
	// marks the guard as freshly woken by a publish — the one moment several
	// processes are known to be looking at the same change — and routes the
	// next scan through the combiner exactly once; combineLead marks the
	// engine-elected leader of the wake batch, which scans and publishes
	// instead of adopting. Solo proposers never wake, never arm, and never
	// touch the slot. Only the owning goroutine touches these fields.
	comb         shmem.ViewCombiner
	combineArmed bool
	combineLead  bool
	// ownMuts counts mutating operations (Write, Update) issued through
	// this guard. Only the owning goroutine touches it.
	ownMuts uint64
	// rec is the object's observability collector (WithObservability; nil
	// when disabled — every call through it is then a nil-receiver no-op).
	// obsKey and obsProc key its events: the arena key the handle's object
	// is registered under ("" for standalone objects) and the process id.
	// Set once at handle creation, never mutated afterwards.
	rec     *obs.Collector
	obsKey  string
	obsProc int32
}

var (
	_ shmem.Mem        = (*guardMem)(nil)
	_ shmem.TryScanner = (*guardMem)(nil)
)

// resetWait rewinds the current wait plan for a fresh Propose: the
// escalation restarts and every memory change before this call counts as
// seen.
func (g *guardMem) resetWait() {
	g.skipYield = false
	g.combineArmed, g.combineLead = false, false
	if g.cur == nil {
		return
	}
	g.cur.backoff.reset()
	if g.notifier != nil {
		g.cur.lastVersion = g.notifier.Version()
		g.cur.lastOwnMuts = g.ownMuts
	}
}

// rebase re-bases the solo detector after an engine park: changes that
// landed while the proposal was parked are visible to its next reads, so
// they must not read as fresh contention at the next yield point.
func (g *guardMem) rebase() {
	if g.cur == nil || g.notifier == nil {
		return
	}
	g.cur.lastVersion = g.notifier.Version()
	g.cur.lastOwnMuts = g.ownMuts
}

func (g *guardMem) pre() {
	g.stats.steps.Add(1)
	if g.ctx != nil {
		select {
		case <-g.ctx.Done():
			panic(cancelPanic{err: g.ctx.Err()})
		default:
		}
	}
	if g.cur != nil {
		if d := g.cur.backoff.step(); d > 0 && !g.skipYield {
			g.pause(d)
		}
	}
}

// pause is one yield point: the strategy decides how the next d is spent —
// or, under an engine, how the park it unwinds into is shaped.
func (g *guardMem) pause(d time.Duration) {
	if g.park {
		g.parkPause(d)
		return
	}
	if g.cur.strategy == WaitBackoff || g.notifier == nil {
		// Blind sleep: the reference strategy, and the capped-backoff
		// fallback for memories without the Notifier capability.
		g.sleep(d)
		return
	}
	g.notifyPause(d)
}

// parkPause is the engine-driven yield point: it never blocks. Solo
// detection applies exactly as in notifyPause — a proposal that has seen
// no foreign write since its last yield keeps stepping, so the engine
// never parks a solo process and m-obstruction-freedom carries over
// unchanged. Otherwise the guard unwinds with the park descriptor: the
// notifier version to wake past (when the memory has one — parking wakes
// on notification regardless of the configured sync strategy, since d
// stays the cap either way and a timed park is all WaitBackoff's blind
// sleep ever bought) and d as the cap.
func (g *guardMem) parkPause(d time.Duration) {
	nt := g.notifier
	if nt == nil {
		panic(parkSignal{cap: d})
	}
	v := nt.Version()
	if g.notifyExact {
		foreign := v-g.cur.lastVersion != g.ownMuts-g.cur.lastOwnMuts
		g.cur.lastVersion = v
		g.cur.lastOwnMuts = g.ownMuts
		if !foreign {
			g.rec.SoloRun()
			return
		}
	}
	panic(parkSignal{version: v, cap: d, notify: true})
}

// notifyPause implements WaitNotify and WaitHybrid at one yield point:
// skip entirely when no other process has written since the last yield
// (waiting solo could only end by timeout — notify never blocks a solo
// process), otherwise block on the notifier with d as the timeout cap,
// after an optional brief polling phase (WaitHybrid). The cap is the
// liveness fallback: the conflicting process may have decided and left, in
// which case no wakeup ever comes and the wait must end on its own.
func (g *guardMem) notifyPause(d time.Duration) {
	nt := g.notifier
	v := nt.Version()
	if g.notifyExact {
		foreign := v-g.cur.lastVersion != g.ownMuts-g.cur.lastOwnMuts
		g.cur.lastVersion = v
		g.cur.lastOwnMuts = g.ownMuts
		if !foreign {
			g.rec.SoloRun()
			return
		}
	}
	start := time.Now()
	woke := false
	defer func() {
		// Wait time is charged before the wakeup is counted (the Stats
		// ordering contract: a snapshot showing a wakeup includes its wait).
		waited := time.Since(start)
		g.stats.waitNS.Add(int64(waited))
		g.rec.Wait(g.obsKey, g.obsProc, waited, woke)
		if woke {
			g.stats.wakeups.Add(1)
			// A publish ended the wait: every process it woke is looking at
			// the same change, so the next scan goes through the combining
			// slot. Sync waiters have no elected leader — whoever scans
			// first publishes, the rest adopt.
			g.armCombine(false)
		}
		// Changes that landed while we waited are visible to our next
		// reads; re-base the solo detector so they are not mistaken for
		// fresh contention at the next yield point.
		g.cur.lastVersion = nt.Version()
		g.cur.lastOwnMuts = g.ownMuts
	}()
	if g.cur.strategy == WaitHybrid {
		for i := 0; i < hybridSpinRounds; i++ {
			if nt.Version() > v {
				woke = true
				return
			}
			goruntime.Gosched()
		}
	}
	ctx := g.ctx
	if ctx == nil {
		ctx = context.Background()
	}
	wctx, cancel := context.WithTimeout(ctx, d)
	spurious, err := nt.AwaitChange(wctx, v)
	cancel()
	g.stats.spurious.Add(int64(spurious))
	if err == nil {
		woke = true
		return
	}
	if g.ctx != nil && g.ctx.Err() != nil {
		panic(cancelPanic{err: g.ctx.Err()})
	}
	// Timeout cap reached with no change: resume stepping, exactly as a
	// blind backoff sleep of d would have.
}

// sleep pauses for the backoff duration without outliving the context: a
// cancelled Propose must return promptly even mid-sleep.
func (g *guardMem) sleep(d time.Duration) {
	start := time.Now()
	defer func() {
		waited := time.Since(start)
		g.stats.waitNS.Add(int64(waited))
		// A blind sleep is a wait no memory change can end: woke=false.
		g.rec.Wait(g.obsKey, g.obsProc, waited, false)
	}()
	if g.ctx == nil {
		// A nil context means the caller opted out of cancellation
		// entirely (plain Propose with no deadline); there is no Done
		// channel to select against, so a plain sleep is the contract.
		//lint:ignore ctxwait nil-context path has no cancellation edge by design
		time.Sleep(d)
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-g.ctx.Done():
		panic(cancelPanic{err: g.ctx.Err()})
	case <-t.C:
	}
}

func (g *guardMem) Read(reg int) shmem.Value {
	g.pre()
	return g.inner.Read(reg)
}

func (g *guardMem) Write(reg int, v shmem.Value) {
	g.pre()
	g.ownMuts++
	g.inner.Write(reg, v)
}

func (g *guardMem) Update(snap, comp int, v shmem.Value) {
	g.pre()
	g.ownMuts++
	g.inner.Update(snap, comp, v)
}

// armCombine routes the next scan through the combining slot (no-op when
// the object has none); lead marks the engine-elected leader of the wake
// batch.
func (g *guardMem) armCombine(lead bool) {
	if g.comb == nil {
		return
	}
	g.combineArmed, g.combineLead = true, lead
}

// takeCombineArm consumes the arm: combining applies to the first scan
// after the wakeup only, after which the woken process is an ordinary
// contender again.
func (g *guardMem) takeCombineArm() (armed, lead bool) {
	armed, lead = g.combineArmed, g.combineLead
	g.combineArmed, g.combineLead = false, false
	return armed, lead
}

// combinedScan serves one scan through the combining slot. The version is
// read before the private scan, so the published pair honors the
// ViewCombiner contract; a view is adopted only when its slot version
// equals the version this process currently observes, which makes it
// indistinguishable from a scan this process performed itself (see the
// contract on shmem.ViewCombiner). The wake leader skips adoption: it is
// elected to produce the view the rest of its batch adopts.
func (g *guardMem) combinedScan(snap int, lead bool) []shmem.Value {
	v := g.notifier.Version()
	if !lead {
		if view, ok := g.comb.Adopt(snap, v); ok {
			g.stats.adopted.Add(1)
			return view
		}
	}
	view := g.inner.Scan(snap)
	g.comb.Publish(snap, v, view)
	g.stats.combined.Add(1)
	return view
}

func (g *guardMem) Scan(snap int) []shmem.Value {
	g.pre()
	g.stats.scans.Add(1)
	if armed, lead := g.takeCombineArm(); armed {
		return g.combinedScan(snap, lead)
	}
	return g.inner.Scan(snap)
}

// TryScan forwards the inner memory's bounded-scan capability so algorithms
// that interleave other work between scan attempts (the anonymous H-register
// poll over a non-blocking substrate) keep working through the guard; each
// attempt passes the cancellation/backoff gate. Wait-free substrates always
// succeed, matching shmem.TryScanner's contract.
func (g *guardMem) TryScan(snap, attempts int) ([]shmem.Value, bool) {
	g.pre()
	g.stats.scans.Add(1)
	armed, lead := g.takeCombineArm()
	var v uint64
	if armed {
		v = g.notifier.Version()
		if !lead {
			if view, ok := g.comb.Adopt(snap, v); ok {
				g.stats.adopted.Add(1)
				return view, true
			}
		}
	}
	var view []shmem.Value
	ok := true
	if ts, isTry := g.inner.(shmem.TryScanner); isTry {
		view, ok = ts.TryScan(snap, attempts)
	} else {
		view = g.inner.Scan(snap)
	}
	if ok && armed {
		// A bounded scan that succeeded is a linearizable scan like any
		// other, and v was read before it — publishable as usual.
		g.comb.Publish(snap, v, view)
		g.stats.combined.Add(1)
	}
	return view, ok
}
