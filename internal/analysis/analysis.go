// Package analysis is a self-contained skeleton of the
// golang.org/x/tools/go/analysis API, carrying the repo's custom analyzers
// (cmd/salint) without an external dependency: an Analyzer inspects one
// type-checked package through a Pass and reports Diagnostics.
//
// Only the slice of the x/tools surface the salint suite needs is
// reproduced — per-package runs, type information, diagnostics — so an
// analyzer written here ports to the real framework by swapping the import
// path. Facts (cross-package analyzer state) are deliberately absent: every
// invariant the suite enforces is checkable package-locally, which is also
// what keeps the `go vet -vettool` driver protocol trivial (dependency
// passes are no-ops).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one static check: a name (the key used by //lint:ignore
// directives and command-line filters), one-paragraph documentation, and
// the per-package run function.
type Analyzer struct {
	// Name identifies the analyzer; it must be a valid Go identifier.
	Name string
	// Doc documents the invariant the analyzer enforces.
	Doc string
	// Run inspects one package and reports findings through pass.Report.
	Run func(pass *Pass) error
}

// Pass is one analyzer's view of one type-checked package.
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer
	// Fset maps token positions of Files to file/line/column.
	Fset *token.FileSet
	// Files are the package's parsed sources, comments included.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo carries the type-checker's expression, definition, use and
	// selection maps for Files.
	TypesInfo *types.Info
	// Report delivers one finding.
	Report func(Diagnostic)
}

// Reportf reports a finding at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding: a position inside the pass's file set and a
// message. The analyzer name is attached by the runner.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// Check runs the analyzers over one loaded package and returns the surviving
// diagnostics — findings not silenced by a //lint:ignore directive — sorted
// by position. Analyzer errors (not findings) are returned as err.
func Check(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	ignores := collectIgnores(pkg.Fset, pkg.Files)
	var out []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
		}
		name := a.Name
		pass.Report = func(d Diagnostic) {
			d.Analyzer = name
			if !ignores.silenced(pkg.Fset, d) {
				out = append(out, d)
			}
		}
		if err := a.Run(pass); err != nil {
			return out, fmt.Errorf("%s: %v", a.Name, err)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos != out[j].Pos {
			return out[i].Pos < out[j].Pos
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}
