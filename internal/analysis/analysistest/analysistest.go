// Package analysistest runs a salint analyzer over a fixture package under
// internal/analysis/testdata/src and compares the diagnostics it produces —
// after //lint:ignore filtering, so suppressions are testable — against
// `// want "regexp"` comments in the fixture source, following the x/tools
// analysistest convention.
//
// Fixture packages import stub dependencies by bare name ("shmem"), resolved
// to sibling directories under testdata/src; standard-library imports are
// resolved from build-cache export data via `go list -export`, so the
// harness needs no network and no GOPATH layout.
package analysistest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/importer"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"setagreement/internal/analysis"
)

// Run loads testdata/src/<fixture>, runs a over it, and reports any mismatch
// between the analyzer's diagnostics and the fixture's want comments.
func Run(t *testing.T, a *analysis.Analyzer, fixture string) {
	t.Helper()
	src, err := srcRoot()
	if err != nil {
		t.Fatal(err)
	}
	imp := &fixtureImporter{fset: token.NewFileSet(), src: src, pkgs: map[string]*types.Package{}}
	pkg, err := imp.load(fixture)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.Check(pkg, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}
	wants, err := collectWants(pkg)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		if !wants.match(pos.Filename, pos.Line, d.Message) {
			t.Errorf("%s:%d: unexpected diagnostic: %s: %s", pos.Filename, pos.Line, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants.unmatched() {
		t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.rx)
	}
}

// srcRoot locates internal/analysis/testdata/src from the test's working
// directory (an analyzer package directory, one level below internal/analysis).
func srcRoot() (string, error) {
	for _, rel := range []string{"../testdata/src", "testdata/src", "../../testdata/src"} {
		abs, err := filepath.Abs(rel)
		if err != nil {
			continue
		}
		if st, err := os.Stat(abs); err == nil && st.IsDir() {
			return abs, nil
		}
	}
	return "", fmt.Errorf("analysistest: cannot locate testdata/src from %q", mustGetwd())
}

func mustGetwd() string {
	wd, _ := os.Getwd()
	return wd
}

// --- fixture loading ------------------------------------------------------

// fixtureImporter type-checks fixture packages from testdata/src and std
// dependencies from `go list -export` build-cache export data.
type fixtureImporter struct {
	fset    *token.FileSet
	src     string
	pkgs    map[string]*types.Package
	exports map[string]string
	gc      types.Importer
}

// load parses and type-checks one fixture package directory.
func (imp *fixtureImporter) load(path string) (*analysis.Package, error) {
	dir := filepath.Join(imp.src, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysistest: fixture %q: %v", path, err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("analysistest: fixture %q has no .go files", path)
	}
	files, err := analysis.ParseFiles(imp.fset, dir, names)
	if err != nil {
		return nil, err
	}
	pkg, err := analysis.TypeCheck(imp.fset, path, files, imp)
	if err != nil {
		return nil, fmt.Errorf("analysistest: typechecking fixture %q: %v", path, err)
	}
	pkg.Dir = dir
	return pkg, nil
}

// Import resolves fixture-local stub packages first, std packages second.
func (imp *fixtureImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := imp.pkgs[path]; ok {
		return pkg, nil
	}
	if st, err := os.Stat(filepath.Join(imp.src, path)); err == nil && st.IsDir() {
		pkg, err := imp.load(path)
		if err != nil {
			return nil, err
		}
		imp.pkgs[path] = pkg.Types
		return pkg.Types, nil
	}
	return imp.stdImport(path)
}

// stdImport reads a standard-library package from export data, running
// `go list -export` on demand to locate (and if needed compile) it.
func (imp *fixtureImporter) stdImport(path string) (*types.Package, error) {
	if imp.exports == nil {
		imp.exports = map[string]string{}
	}
	if _, ok := imp.exports[path]; !ok {
		cmd := exec.Command("go", "list", "-e", "-export", "-deps", "-json", path)
		cmd.Dir = imp.src
		var stderr bytes.Buffer
		cmd.Stderr = &stderr
		out, err := cmd.Output()
		if err != nil {
			return nil, fmt.Errorf("analysistest: go list %s: %v\n%s", path, err, stderr.String())
		}
		dec := json.NewDecoder(bytes.NewReader(out))
		for {
			var p struct{ ImportPath, Export string }
			if err := dec.Decode(&p); err == io.EOF {
				break
			} else if err != nil {
				return nil, err
			}
			if p.Export != "" {
				imp.exports[p.ImportPath] = p.Export
			}
		}
	}
	if imp.gc == nil {
		// The lookup closes over the exports map, which later stdImport
		// calls keep extending; the gc importer reads it per lookup.
		imp.gc = importer.ForCompiler(imp.fset, "gc", func(path string) (io.ReadCloser, error) {
			file, ok := imp.exports[path]
			if !ok {
				return nil, fmt.Errorf("no export data for %q", path)
			}
			return os.Open(file)
		})
	}
	return imp.gc.Import(path)
}

// --- want-comment expectations --------------------------------------------

// want is one expectation: a diagnostic on file:line matching rx.
type want struct {
	file string
	line int
	rx   *regexp.Regexp
	hit  bool
}

type wantSet struct{ list []*want }

const wantPrefix = "// want "

// collectWants parses `// want "rx" ["rx" ...]` comments from the fixture.
func collectWants(pkg *analysis.Package) (*wantSet, error) {
	set := &wantSet{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, wantPrefix)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				rest := strings.TrimSpace(text)
				for rest != "" {
					quoted, err := strconv.QuotedPrefix(rest)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: malformed want comment %q", pos.Filename, pos.Line, c.Text)
					}
					pat, err := strconv.Unquote(quoted)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: %v", pos.Filename, pos.Line, err)
					}
					rx, err := regexp.Compile(pat)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want regexp: %v", pos.Filename, pos.Line, err)
					}
					set.list = append(set.list, &want{file: pos.Filename, line: pos.Line, rx: rx})
					rest = strings.TrimSpace(rest[len(quoted):])
				}
			}
		}
	}
	return set, nil
}

// match consumes the first unhit want on file:line whose regexp matches msg.
func (s *wantSet) match(file string, line int, msg string) bool {
	for _, w := range s.list {
		if !w.hit && w.file == file && w.line == line && w.rx.MatchString(msg) {
			w.hit = true
			return true
		}
	}
	return false
}

// unmatched returns the wants no diagnostic consumed.
func (s *wantSet) unmatched() []*want {
	var out []*want
	for _, w := range s.list {
		if !w.hit {
			out = append(out, w)
		}
	}
	return out
}
