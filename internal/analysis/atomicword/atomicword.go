// Package atomicword implements the salint analyzer for the
// one-atomic-state-word discipline (Handle.st, engine task.st).
//
// Two rules, both package-local:
//
//  1. Mixed access: a struct field that is ever operated on atomically —
//     declared with a sync/atomic type (atomic.Uint32, atomic.Pointer[T],
//     …) or passed by address to a sync/atomic function
//     (atomic.LoadUint32(&s.f)) — must never be read or written plainly.
//     One plain load next to CAS transitions is a data race the race
//     detector only catches if the schedule cooperates; the discipline in
//     handle.go and internal/engine is that the state word is *only*
//     touched through its atomic API. For atomic.* typed fields the
//     compiler already blocks plain arithmetic, so the plain accesses left
//     to catch are copies (x := s.st) and overwrites (s.st = other) — both
//     smuggle a state word past its atomicity.
//
//  2. Bit-testing enum states: constants declared in a plain-iota const
//     group are enumeration points, not flag bits — stateFree is 0,
//     stateBusy is 1, stateDone is 2 — so `st & stateBusy != 0` is a type
//     system hole, not a membership test (it is true for stateDone too).
//     State words must be compared (st == stateBusy), never bit-tested,
//     unless the group is genuinely a flag set: declared with shifts
//     (1 << iota) or marked with a `//salint:flags` comment. Constants
//     whose names end in Mask or Shift are exempt operands — they exist to
//     slice packed words (internal/engine's state|reason|generation word)
//     and masking with them is the intended use.
package atomicword

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"setagreement/internal/analysis"
)

// Analyzer flags plain accesses to atomic fields and bit-tests of enum
// state constants.
var Analyzer = &analysis.Analyzer{
	Name: "atomicword",
	Doc:  "atomic state words must be accessed atomically and compared, not bit-tested",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	checkMixedAccess(pass)
	checkBitTests(pass)
	return nil
}

// --- rule 1: mixed plain/atomic access -----------------------------------

func checkMixedAccess(pass *analysis.Pass) {
	atomicFields := map[types.Object]bool{}

	// Fields declared with sync/atomic types.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				for _, name := range field.Names {
					obj := pass.TypesInfo.Defs[name]
					if obj != nil && isAtomicType(obj.Type()) {
						atomicFields[obj] = true
					}
				}
			}
			return true
		})
	}

	// Fields passed by address to sync/atomic functions.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicFuncCall(pass, call) {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				if obj := fieldObj(pass, un.X); obj != nil {
					atomicFields[obj] = true
				}
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return
	}

	// Plain accesses: selector uses of those fields outside the allowed
	// forms — method-call receiver (s.st.Load()), address-taken (&s.st),
	// and field declaration sites.
	allowed := map[*ast.SelectorExpr]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				// x.f.M(...): the inner selector x.f is a receiver.
				if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
					if inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr); ok {
						allowed[inner] = true
					}
				}
			case *ast.UnaryExpr:
				if n.Op != token.AND {
					return true
				}
				if sel, ok := ast.Unparen(n.X).(*ast.SelectorExpr); ok {
					allowed[sel] = true
				}
			}
			return true
		})
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || allowed[sel] {
				return true
			}
			obj := pass.TypesInfo.Uses[sel.Sel]
			if obj == nil || !atomicFields[obj] {
				return true
			}
			pass.Reportf(sel.Pos(), "plain access to atomic field %s — use its sync/atomic API (one-atomic-state-word rule)", sel.Sel.Name)
			return true
		})
	}
}

// isAtomicType reports whether t is a named type from sync/atomic.
func isAtomicType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && pkg.Path() == "sync/atomic"
}

// isAtomicFuncCall reports whether the call invokes a sync/atomic
// package-level function (atomic.LoadUint32 etc.).
func isAtomicFuncCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	fn, ok := obj.(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic"
}

// fieldObj resolves e to a struct-field object when e is a selector chain
// ending in a field.
func fieldObj(pass *analysis.Pass, e ast.Expr) types.Object {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	if s, ok := pass.TypesInfo.Selections[sel]; ok && s.Kind() == types.FieldVal {
		return s.Obj()
	}
	return nil
}

// --- rule 2: bit-testing enum state constants ----------------------------

func checkBitTests(pass *analysis.Pass) {
	enums := enumConstants(pass)
	if len(enums) == 0 {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok {
				return true
			}
			switch bin.Op {
			case token.AND, token.OR, token.XOR, token.AND_NOT:
			default:
				return true
			}
			for _, operand := range [2]ast.Expr{bin.X, bin.Y} {
				id, ok := ast.Unparen(operand).(*ast.Ident)
				if !ok {
					continue
				}
				if obj := pass.TypesInfo.Uses[id]; obj != nil && enums[obj] {
					pass.Reportf(bin.Pos(), "bit-test of enum state constant %s — state words are compared, not masked (declare the group with shifts or //salint:flags if it really is a flag set)", id.Name)
				}
			}
			return true
		})
	}
}

// enumConstants collects constants from plain-iota const groups: groups
// that use iota without shifts and carry no //salint:flags marker.
// Mask/Shift-named members are exempt — they slice packed words.
func enumConstants(pass *analysis.Pass) map[types.Object]bool {
	enums := map[types.Object]bool{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			usesIota, usesShift := false, false
			for _, spec := range gd.Specs {
				vs := spec.(*ast.ValueSpec)
				for _, v := range vs.Values {
					ast.Inspect(v, func(n ast.Node) bool {
						switch n := n.(type) {
						case *ast.Ident:
							if n.Name == "iota" {
								usesIota = true
							}
						case *ast.BinaryExpr:
							if n.Op == token.SHL || n.Op == token.SHR {
								usesShift = true
							}
						}
						return true
					})
				}
			}
			if !usesIota || usesShift || flagsMarked(gd) {
				continue
			}
			for _, spec := range gd.Specs {
				for _, name := range spec.(*ast.ValueSpec).Names {
					if strings.HasSuffix(name.Name, "Mask") || strings.HasSuffix(name.Name, "Shift") {
						continue
					}
					if obj := pass.TypesInfo.Defs[name]; obj != nil {
						enums[obj] = true
					}
				}
			}
		}
	}
	return enums
}

// flagsMarked reports whether the const group carries a //salint:flags
// marker in its doc comment or on any member's line. The raw comment list
// is scanned, not CommentGroup.Text(), because Text() strips directive
// comments — which is exactly what //salint:flags is.
func flagsMarked(gd *ast.GenDecl) bool {
	if markedGroup(gd.Doc) {
		return true
	}
	for _, spec := range gd.Specs {
		vs := spec.(*ast.ValueSpec)
		if markedGroup(vs.Doc) || markedGroup(vs.Comment) {
			return true
		}
	}
	return false
}

func markedGroup(cg *ast.CommentGroup) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if strings.Contains(c.Text, "salint:flags") {
			return true
		}
	}
	return false
}
