package atomicword_test

import (
	"testing"

	"setagreement/internal/analysis/analysistest"
	"setagreement/internal/analysis/atomicword"
)

func TestAtomicword(t *testing.T) {
	analysistest.Run(t, atomicword.Analyzer, "atomicword")
}
