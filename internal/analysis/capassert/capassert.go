// Package capassert implements the salint analyzer for optional-capability
// type assertions.
//
// shmem capabilities — Notifier, Resetter, ViewCombiner, CASRetrier (and
// the other optional interfaces of the shmem package) — are exactly that:
// optional. The layering contract everywhere in this module is that a
// backend without a capability *degrades* — the wait layer falls back to
// blind backoff without a Notifier, the arena skips recycling without a
// Resetter — and never panics. A single-result assertion
// (mem.(shmem.Notifier)) hard-codes the capability's presence and turns a
// perfectly conformant notifier-less backend into a runtime panic at the
// assertion site.
//
// The analyzer requires every assertion to one of the shmem capability
// interfaces to use the comma-ok form (or a type switch, which cannot
// panic), so the no-capability branch exists and the fallback is at least
// expressible. Interfaces are matched by name and defining package name
// ("shmem"), so the rule covers fixtures and any future shmem-shaped
// package alike.
package capassert

import (
	"go/ast"

	"setagreement/internal/analysis"
)

// capabilities are the optional shmem interfaces whose presence must be
// probed, never assumed.
var capabilities = map[string]bool{
	"Notifier":     true,
	"Resetter":     true,
	"ViewCombiner": true,
	"CASRetrier":   true,
	"Stepper":      true,
	"TryScanner":   true,
}

// Analyzer flags single-result assertions to shmem capability interfaces.
var Analyzer = &analysis.Analyzer{
	Name: "capassert",
	Doc:  "type assertions to shmem capability interfaces must be comma-ok with a fallback",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		// Comma-ok contexts: the assertion is the sole RHS of a two-target
		// assignment or declaration. Type switches never reach the check
		// (their guard has no asserted type recorded).
		ok := map[*ast.TypeAssertExpr]bool{}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) == 2 && len(n.Rhs) == 1 {
					if ta, is := ast.Unparen(n.Rhs[0]).(*ast.TypeAssertExpr); is {
						ok[ta] = true
					}
				}
			case *ast.ValueSpec:
				if len(n.Names) == 2 && len(n.Values) == 1 {
					if ta, is := ast.Unparen(n.Values[0]).(*ast.TypeAssertExpr); is {
						ok[ta] = true
					}
				}
			}
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			ta, is := n.(*ast.TypeAssertExpr)
			if !is || ta.Type == nil || ok[ta] {
				return true
			}
			tv, found := pass.TypesInfo.Types[ta.Type]
			if !found {
				return true
			}
			for name := range capabilities {
				if analysis.NamedFrom(tv.Type, "shmem", name) {
					pass.Reportf(ta.Pos(), "single-result assertion to capability shmem.%s panics on backends without it — use the comma-ok form and degrade", name)
					return true
				}
			}
			return true
		})
	}
	return nil
}
