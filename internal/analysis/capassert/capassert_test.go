package capassert_test

import (
	"testing"

	"setagreement/internal/analysis/analysistest"
	"setagreement/internal/analysis/capassert"
)

func TestCapassert(t *testing.T) {
	analysistest.Run(t, capassert.Analyzer, "capassert")
}
