// Package ctxwait implements the salint analyzer for the PR-4 waiting
// rule: no blind sleeps in propose/wait paths — every wait must be
// context-cancellable.
//
// A Propose whose context is cancelled must return promptly, including
// mid-wait; the wait layer therefore sleeps in a select against ctx.Done()
// (guardMem.sleep) or blocks in AwaitChange, which takes the context
// itself. A bare time.Sleep, or a naked <-time.After(d) receive, holds the
// goroutine for the full duration with no cancellation edge — the exact
// blind-wait shape PR 4 removed.
//
// Flagged in non-test files:
//
//   - any call to time.Sleep,
//   - <-time.After(d) outside a select,
//   - a select case receiving from time.After with no sibling case
//     receiving from a Done() channel (context cancellation or an
//     equivalent shutdown signal).
//
// time.NewTimer/NewTicker are not flagged: their channels only usefully
// appear inside selects, where the Done-sibling rule above applies to the
// time.After form and the reviewer's eye handles the rest. Test files and
// main packages are exempt — tests and the benchmark/demo drivers
// (cmd/sabench, examples/*) legitimately pace load with bare sleeps; the
// rule targets the library layers a Propose can block in. An intentional
// blind sleep in library code (the nil-context fallback in guardMem.sleep)
// carries a //lint:ignore ctxwait directive with its justification.
package ctxwait

import (
	"go/ast"
	"go/token"
	"go/types"

	"setagreement/internal/analysis"
)

// Analyzer flags non-cancellable waits.
var Analyzer = &analysis.Analyzer{
	Name: "ctxwait",
	Doc:  "waits must be context-cancellable: no bare time.Sleep or naked <-time.After in propose/wait paths",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Name() == "main" {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		// Selects get their own treatment; mark the After-receives they
		// contain so the generic walk below skips them.
		inSelect := map[ast.Node]bool{}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectStmt)
			if !ok {
				return true
			}
			checkSelect(pass, sel, inSelect)
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if isTimeFunc(pass, n, "Sleep") {
					pass.Reportf(n.Pos(), "time.Sleep in a propose/wait path is not cancellable — select on the context or use the wait layer")
				}
			case *ast.UnaryExpr:
				if n.Op == token.ARROW && !inSelect[n] && isTimeAfterCall(pass, n.X) {
					pass.Reportf(n.Pos(), "naked <-time.After is not cancellable — select it against the context's Done channel")
				}
			}
			return true
		})
	}
	return nil
}

// checkSelect applies the Done-sibling rule: a case receiving from
// time.After needs another case receiving a cancellation edge.
func checkSelect(pass *analysis.Pass, sel *ast.SelectStmt, inSelect map[ast.Node]bool) {
	var afterRecvs []ast.Node
	hasDone := false
	for _, clause := range sel.Body.List {
		comm, ok := clause.(*ast.CommClause)
		if !ok || comm.Comm == nil {
			continue
		}
		recv := recvExpr(comm.Comm)
		if recv == nil {
			continue
		}
		inSelect[recv] = true
		if isTimeAfterCall(pass, recv.X) {
			afterRecvs = append(afterRecvs, recv)
		}
		if isDoneChannel(recv.X) {
			hasDone = true
		}
	}
	if hasDone {
		return
	}
	for _, r := range afterRecvs {
		pass.Reportf(r.Pos(), "select waits on time.After with no cancellation case — add a ctx.Done() (or equivalent) sibling case")
	}
}

// recvExpr extracts the receive operation of a select case statement.
func recvExpr(stmt ast.Stmt) *ast.UnaryExpr {
	var e ast.Expr
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		e = s.X
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			e = s.Rhs[0]
		}
	}
	if un, ok := ast.Unparen(e).(*ast.UnaryExpr); ok && un.Op == token.ARROW {
		return un
	}
	return nil
}

// isTimeFunc reports whether the call invokes time.<name>.
func isTimeFunc(pass *analysis.Pass, call *ast.CallExpr, name string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	fn, ok := obj.(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "time"
}

// isTimeAfterCall reports whether e is a time.After(...) call.
func isTimeAfterCall(pass *analysis.Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	return ok && isTimeFunc(pass, call, "After")
}

// isDoneChannel reports whether the received expression is a cancellation
// edge: a call to a method named Done (context.Context.Done and the
// shutdown-channel idiom share the name), or a channel-typed selector or
// identifier whose name contains "done", "stop", "quit" or "closed".
func isDoneChannel(e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		return analysis.CalleeName(x) == "Done"
	case *ast.SelectorExpr:
		return doneName(x.Sel.Name)
	case *ast.Ident:
		return doneName(x.Name)
	}
	return false
}

func doneName(name string) bool {
	for _, w := range [4]string{"done", "stop", "quit", "closed"} {
		if containsFold(name, w) {
			return true
		}
	}
	return false
}

// containsFold is a case-insensitive strings.Contains for short ASCII
// needles.
func containsFold(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		j := 0
		for ; j < len(sub); j++ {
			c := s[i+j]
			if c >= 'A' && c <= 'Z' {
				c += 'a' - 'A'
			}
			if c != sub[j] {
				break
			}
		}
		if j == len(sub) {
			return true
		}
	}
	return false
}
