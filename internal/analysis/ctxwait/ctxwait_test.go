package ctxwait_test

import (
	"testing"

	"setagreement/internal/analysis/analysistest"
	"setagreement/internal/analysis/ctxwait"
)

func TestCtxwait(t *testing.T) {
	analysistest.Run(t, ctxwait.Analyzer, "ctxwait")
}
