package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Helpers shared by the salint analyzers. Matching is duck-typed by package
// *name* ("shmem") rather than import path, so the analyzers apply equally
// to the real module and to analysistest fixtures, which import small stub
// packages with the same names and shapes.

// NamedFrom reports whether t (after unwrapping pointers and aliases) is a
// named type called typeName declared in a package named pkgName.
func NamedFrom(t types.Type, pkgName, typeName string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == typeName &&
		obj.Pkg() != nil && obj.Pkg().Name() == pkgName
}

// IsShmemValueSlice reports whether t is []shmem.Value — the type of a
// snapshot view.
func IsShmemValueSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	return NamedFrom(sl.Elem(), "shmem", "Value")
}

// IsMemLike reports whether t looks like a shared memory: its method set
// includes Scan and Update (shmem.Mem and every wrapper of it).
func IsMemLike(t types.Type) bool {
	return hasMethod(t, "Scan") && hasMethod(t, "Update")
}

func hasMethod(t types.Type, name string) bool {
	ms := types.NewMethodSet(t)
	for i := 0; i < ms.Len(); i++ {
		if ms.At(i).Obj().Name() == name {
			return true
		}
	}
	return false
}

// BaseIdent unwraps parens, selectors, index, slice and star expressions to
// the root identifier of an lvalue chain, or nil.
func BaseIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// CalleeName returns the bare name of a call's function — the method name
// for x.M(...), the function name for F(...) — or "".
func CalleeName(call *ast.CallExpr) string {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		return fn.Sel.Name
	}
	return ""
}

// IsTestFile reports whether the file's name (resolved through fset) ends
// in _test.go.
func (p *Pass) IsTestFile(f *ast.File) bool {
	return strings.HasSuffix(p.Fset.Position(f.Pos()).Filename, "_test.go")
}
