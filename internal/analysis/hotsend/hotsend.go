// Package hotsend implements the salint analyzer for the observability
// rule: no blocking channel sends on the proposal/recorder hot paths.
//
// The obs recorder runs inside Propose, ProposeAsync and the engine's
// drain loops — the paths the disabled-overhead guard proves free and the
// enabled path promises never to stall. A bare `ch <- v` there blocks the
// proposal (or a whole engine worker) on a slow consumer; every handoff on
// those paths must be non-blocking — a bounded ring with drop accounting
// (obs.EventRing.TryPush), or a select with an escape case (a default, a
// cancellation edge). The sibling ctxwait analyzer covers the other
// blind-blocking shape, bare time.Sleep, module-wide.
//
// Flagged in non-test files of the hot-path packages (the root
// setagreement package, internal/engine, obs and obs/obshttp):
//
//   - any send statement outside a select,
//   - a send comm case of a single-case select (no escape case).
//
// Packages outside the hot path (the sim harness's lock-step rendezvous
// channels, test scaffolding) are out of scope. An intentional blocking
// send on a hot path carries a //lint:ignore hotsend directive with its
// justification.
package hotsend

import (
	"go/ast"

	"setagreement/internal/analysis"
)

// Analyzer flags blocking channel sends on the recorder/proposal hot paths.
var Analyzer = &analysis.Analyzer{
	Name: "hotsend",
	Doc:  "recorder/proposal hot paths must not block: channel sends need a select with an escape case",
	Run:  run,
}

// hotPackages names the packages whose non-test files form the proposal
// and recorder hot paths.
var hotPackages = map[string]bool{
	"setagreement": true,
	"engine":       true,
	"obs":          true,
	"obshttp":      true,
}

func run(pass *analysis.Pass) error {
	if !hotPackages[pass.Pkg.Name()] {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		// A send that is the comm of a select case with at least one
		// sibling clause (a default, a receive, another send) has an
		// escape; mark those so the walk below flags the rest.
		guarded := map[ast.Node]bool{}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectStmt)
			if !ok {
				return true
			}
			for _, clause := range sel.Body.List {
				comm, ok := clause.(*ast.CommClause)
				if !ok {
					continue
				}
				if send, ok := comm.Comm.(*ast.SendStmt); ok && len(sel.Body.List) > 1 {
					guarded[send] = true
				}
			}
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			if send, ok := n.(*ast.SendStmt); ok && !guarded[send] {
				pass.Reportf(send.Arrow, "blocking channel send on a recorder/proposal hot path — select it against a default or cancellation case, or hand off through a non-blocking ring")
			}
			return true
		})
	}
	return nil
}
