package hotsend_test

import (
	"testing"

	"setagreement/internal/analysis/analysistest"
	"setagreement/internal/analysis/hotsend"
)

func TestHotsend(t *testing.T) {
	analysistest.Run(t, hotsend.Analyzer, "hotsend")
}
