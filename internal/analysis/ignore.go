package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Suppression: a finding is silenced by a directive comment
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// placed on the finding's line or on the line directly above it (staticcheck's
// convention, so one marker style serves both tools). The reason is
// mandatory — a suppression without a recorded justification is itself a
// smell — and <analyzer> may be "all". cmd/salint and the analysistest
// harness both run findings through this filter, so fixtures can exercise
// suppressions too.

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	analyzers []string // lower-case names, or ["all"]
	hasReason bool
}

// ignoreSet maps file name → line → directive.
type ignoreSet map[string]map[int]ignoreDirective

const ignorePrefix = "//lint:ignore "

// collectIgnores parses every //lint:ignore directive in the files.
func collectIgnores(fset *token.FileSet, files []*ast.File) ignoreSet {
	set := ignoreSet{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, ignorePrefix)
				if !ok {
					continue
				}
				fields := strings.Fields(text)
				if len(fields) == 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				byLine := set[pos.Filename]
				if byLine == nil {
					byLine = map[int]ignoreDirective{}
					set[pos.Filename] = byLine
				}
				byLine[pos.Line] = ignoreDirective{
					analyzers: strings.Split(strings.ToLower(fields[0]), ","),
					hasReason: len(fields) > 1,
				}
			}
		}
	}
	return set
}

// silenced reports whether d is covered by a directive on its line or the
// line above.
func (s ignoreSet) silenced(fset *token.FileSet, d Diagnostic) bool {
	if len(s) == 0 {
		return false
	}
	pos := fset.Position(d.Pos)
	byLine := s[pos.Filename]
	if byLine == nil {
		return false
	}
	for _, line := range [2]int{pos.Line, pos.Line - 1} {
		dir, ok := byLine[line]
		if !ok || !dir.hasReason {
			continue
		}
		for _, a := range dir.analyzers {
			if a == "all" || a == strings.ToLower(d.Analyzer) {
				return true
			}
		}
	}
	return false
}
