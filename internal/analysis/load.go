package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// The loader: type-checked packages without golang.org/x/tools.
//
// `go list -e -export -deps -json` enumerates the requested packages plus
// their full dependency closure, with each dependency's compiled export
// data in the build cache; the stdlib gc importer (go/importer with a
// lookup function) reads that export data directly. Only the requested
// packages themselves are parsed and type-checked from source — exactly
// what an analyzer needs — so a whole-module load costs one `go list`
// plus one type-check per target package, no network and no dependency
// on x/tools/go/packages.

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// PkgPath is the go list import path; test variants keep the
	// bracketed form ("p [p.test]").
	PkgPath string
	// Dir is the package directory.
	Dir string
	// ForTest is the path of the package under test for test variants,
	// empty otherwise.
	ForTest string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	// TypesInfo holds the full type-checker output for Files.
	TypesInfo *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	ForTest    string
	ImportMap  map[string]string
	Error      *struct{ Err string }
}

// LoadConfig shapes a Load.
type LoadConfig struct {
	// Dir is the working directory for go list (the module root or below).
	Dir string
	// Tests includes each package's test variants (in-package and external
	// test packages), so _test.go files are analyzed too.
	Tests bool
}

// Load lists patterns with the go tool and returns the matched packages,
// parsed and type-checked. Dependencies are imported from export data, so
// the module must build; a target package that fails to parse or
// type-check fails the Load.
func Load(cfg LoadConfig, patterns ...string) ([]*Package, error) {
	args := []string{"list", "-e", "-export", "-deps", "-json"}
	if cfg.Tests {
		args = append(args, "-test")
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = cfg.Dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}

	exports := map[string]string{}
	var targets []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		// Targets are the non-dependency matches; the synthesized test main
		// ("p.test") is driver scaffolding, not code to lint.
		if !p.Standard && !p.DepOnly && !strings.HasSuffix(p.ImportPath, ".test") {
			if p.Error != nil {
				return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
			}
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	gc := importer.ForCompiler(fset, "gc", exportLookup(exports))
	var pkgs []*Package
	for _, p := range targets {
		if len(p.GoFiles) == 0 {
			continue
		}
		files, err := ParseFiles(fset, p.Dir, p.GoFiles)
		if err != nil {
			return nil, err
		}
		imp := &mappedImporter{inner: gc, importMap: p.ImportMap}
		pkg, err := TypeCheck(fset, p.ImportPath, files, imp)
		if err != nil {
			return nil, fmt.Errorf("typecheck %s: %v", p.ImportPath, err)
		}
		pkg.Dir = p.Dir
		pkg.ForTest = p.ForTest
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// ParseFiles parses the named files (relative names joined to dir) with
// comments, as analysis requires.
func ParseFiles(fset *token.FileSet, dir string, names []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range names {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// TypeCheck type-checks one package's parsed files, resolving imports
// through imp, and returns it as an analysis-ready Package.
func TypeCheck(fset *token.FileSet, path string, files []*ast.File, imp types.Importer) (*Package, error) {
	info := NewInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, err
	}
	return &Package{
		PkgPath:   path,
		Fset:      fset,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}

// NewInfo allocates the full set of type-checker maps analyzers consult.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
}

// ExportImporter builds a types.Importer over explicit export-data files
// (import path → file), with an optional per-package import remap applied
// first. The vettool driver feeds it straight from go vet's cfg.
func ExportImporter(fset *token.FileSet, exports map[string]string, importMap map[string]string) types.Importer {
	return &mappedImporter{
		inner:     importer.ForCompiler(fset, "gc", exportLookup(exports)),
		importMap: importMap,
	}
}

// exportLookup adapts an import-path→file map to the gc importer's lookup.
func exportLookup(exports map[string]string) func(string) (io.ReadCloser, error) {
	return func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
}

// mappedImporter applies a package's ImportMap (vendoring and test-variant
// remapping) before delegating.
type mappedImporter struct {
	inner     types.Importer
	importMap map[string]string
}

func (m *mappedImporter) Import(path string) (*types.Package, error) {
	if mapped, ok := m.importMap[path]; ok {
		path = mapped
	}
	return m.inner.Import(path)
}
