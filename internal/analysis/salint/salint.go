// Package salint assembles the repo's analyzer suite: the six custom
// checks that mechanize the concurrency contracts prose alone used to
// carry. cmd/salint drives it from the command line and from
// `go vet -vettool`; the meta-test in this package runs it over the whole
// module so a violation can never merge.
package salint

import (
	"fmt"
	"io"
	"os"

	"setagreement/internal/analysis"
	"setagreement/internal/analysis/atomicword"
	"setagreement/internal/analysis/capassert"
	"setagreement/internal/analysis/ctxwait"
	"setagreement/internal/analysis/hotsend"
	"setagreement/internal/analysis/stepsafety"
	"setagreement/internal/analysis/viewmut"
)

// Analyzers is the salint suite, in stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		atomicword.Analyzer,
		capassert.Analyzer,
		ctxwait.Analyzer,
		hotsend.Analyzer,
		stepsafety.Analyzer,
		viewmut.Analyzer,
	}
}

// Finding is one diagnostic resolved to a printable position.
type Finding struct {
	File     string
	Line     int
	Col      int
	Analyzer string
	Message  string
}

// CheckPatterns loads the given go list patterns (optionally with test
// variants) and runs the suite, returning every surviving finding.
func CheckPatterns(dir string, tests bool, patterns ...string) ([]Finding, error) {
	pkgs, err := analysis.Load(analysis.LoadConfig{Dir: dir, Tests: tests}, patterns...)
	if err != nil {
		return nil, err
	}
	var out []Finding
	seen := map[Finding]bool{}
	for _, pkg := range pkgs {
		diags, err := analysis.Check(pkg, Analyzers())
		if err != nil {
			return nil, fmt.Errorf("%s: %v", pkg.PkgPath, err)
		}
		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			f := Finding{
				File:     pos.Filename,
				Line:     pos.Line,
				Col:      pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			}
			// A package and its in-package test variant overlap on the
			// non-test files; report each finding once.
			if !seen[f] {
				seen[f] = true
				out = append(out, f)
			}
		}
	}
	return out, nil
}

// Print writes findings in the canonical file:line:col form, optionally
// followed by GitHub Actions ::error annotations so CI failures land as
// inline file/line annotations in the job summary.
func Print(w io.Writer, findings []Finding, github bool) {
	for _, f := range findings {
		fmt.Fprintf(w, "%s:%d:%d: %s: %s\n", f.File, f.Line, f.Col, f.Analyzer, f.Message)
	}
	if github {
		for _, f := range findings {
			fmt.Fprintf(w, "::error file=%s,line=%d,col=%d,title=salint/%s::%s\n", rel(f.File), f.Line, f.Col, f.Analyzer, f.Message)
		}
	}
}

// rel trims the working directory prefix so annotations use repo-relative
// paths, as the GitHub annotation format expects.
func rel(path string) string {
	wd, err := os.Getwd()
	if err != nil || len(path) <= len(wd)+1 || path[:len(wd)] != wd {
		return path
	}
	return path[len(wd)+1:]
}
