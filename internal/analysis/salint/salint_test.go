package salint_test

import (
	"testing"

	"setagreement/internal/analysis/salint"
)

// TestModuleClean is the meta-test: the full suite over every package of
// the module, test variants included, must report zero findings — so a new
// violation of any mechanized contract can never merge.
func TestModuleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module; skipped in -short")
	}
	findings, err := salint.CheckPatterns("../../..", true, "./...")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s:%d:%d: %s: %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
	}
}
