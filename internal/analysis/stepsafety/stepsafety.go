// Package stepsafety implements the salint analyzer for the restart-safety
// contract of resumable attempts (internal/core/resume.go).
//
// The async engine may abandon a Step at any shared-memory operation (the
// guard unwinds with a park signal) and later re-run the Step from the top.
// That is only sound under the rule the Attempt contract states: within one
// Step, every shared-memory operation precedes every mutation of state that
// survives the Step. A Step that first bumps a surviving counter and then
// updates shared memory would, when parked at the update and re-run, bump
// the counter twice for one loop iteration — the restart would be
// observable, which is exactly what the PR-5 correctness argument rules
// out.
//
// Mechanically: in any method named Step whose parameter is a shared memory
// (its method set has Scan and Update — shmem.Mem and every wrapper), the
// analyzer flags assignments to receiver-reachable state (fields of the
// receiver, or of pointers loaded from it, e.g. p := a.p; p.i = ...) that
// appear before the Step's first shared-memory operation — the first call
// on, or passing, the mem parameter. Plain locals are fine anywhere: they
// die with the Step. A Step with no shared-memory operation imposes no
// order, and mutations after the first operation are the algorithms'
// normal decide/adopt bookkeeping.
package stepsafety

import (
	"go/ast"
	"go/token"
	"go/types"

	"setagreement/internal/analysis"
)

// Analyzer flags surviving-state mutations before a Step's first
// shared-memory operation.
var Analyzer = &analysis.Analyzer{
	Name: "stepsafety",
	Doc:  "in Attempt.Step, shared-memory operations must precede surviving local-state mutations (restart safety)",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Name.Name != "Step" || fd.Recv == nil {
				continue
			}
			if mem := memParam(pass, fd); mem != nil {
				checkStep(pass, fd, mem)
			}
		}
	}
	return nil
}

// memParam returns the object of the Step's shared-memory parameter, or nil
// when the method is not an Attempt-shaped Step.
func memParam(pass *analysis.Pass, fd *ast.FuncDecl) types.Object {
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			obj := pass.TypesInfo.Defs[name]
			if obj != nil && analysis.IsMemLike(obj.Type()) {
				return obj
			}
		}
	}
	return nil
}

func checkStep(pass *analysis.Pass, fd *ast.FuncDecl, mem types.Object) {
	// Receiver-reachable roots: the receiver itself plus locals assigned
	// from receiver-rooted chains (aliases like p := a.p). Collected over
	// the whole body first, so an alias introduced on line 1 is known when
	// line 2 writes through it.
	roots := map[types.Object]bool{}
	if len(fd.Recv.List) > 0 && len(fd.Recv.List[0].Names) > 0 {
		if obj := pass.TypesInfo.Defs[fd.Recv.List[0].Names[0]]; obj != nil {
			roots[obj] = true
		}
	}
	for changed := true; changed; { // aliases of aliases, to a fixed point
		changed = false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || (as.Tok != token.DEFINE && as.Tok != token.ASSIGN) || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.TypesInfo.Defs[id]
				if obj == nil {
					obj = pass.TypesInfo.Uses[id]
				}
				if obj == nil || roots[obj] || !isReference(obj.Type()) {
					continue
				}
				if base := analysis.BaseIdent(as.Rhs[i]); base != nil {
					if src := pass.TypesInfo.Uses[base]; src != nil && roots[src] {
						roots[obj] = true
						changed = true
					}
				}
			}
			return true
		})
	}

	// The first shared-memory operation: the earliest call on mem
	// (mem.Update(...)) or passing mem onward (helper(mem, ...) issues
	// operations on the Step's behalf).
	firstOp := token.NoPos
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if !usesObj(pass, call, mem) {
			return true
		}
		if !firstOp.IsValid() || call.Pos() < firstOp {
			firstOp = call.Pos()
		}
		return true
	})
	if !firstOp.IsValid() {
		return // no shared-memory operation: nothing to order against
	}

	report := func(pos token.Pos, what string) {
		if pos < firstOp {
			pass.Reportf(pos, "%s before the Step's first shared-memory operation — restart-unsafe (resumable Attempt contract)", what)
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if survives(pass, lhs, roots) {
					report(lhs.Pos(), "mutation of surviving state")
				}
			}
		case *ast.IncDecStmt:
			if survives(pass, n.X, roots) {
				report(n.X.Pos(), "mutation of surviving state")
			}
		}
		return true
	})
}

// survives reports whether the lvalue writes receiver-reachable state: a
// selector / index chain rooted at the receiver or one of its aliases.
// Writing the root identifier itself (p = nil) rebinds a local, not
// surviving state.
func survives(pass *analysis.Pass, lhs ast.Expr, roots map[types.Object]bool) bool {
	if _, isIdent := ast.Unparen(lhs).(*ast.Ident); isIdent {
		return false
	}
	base := analysis.BaseIdent(lhs)
	if base == nil {
		return false
	}
	obj := pass.TypesInfo.Uses[base]
	return obj != nil && roots[obj]
}

// usesObj reports whether the call is a method call on obj or passes obj as
// an argument.
func usesObj(pass *analysis.Pass, call *ast.CallExpr, obj types.Object) bool {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			return true
		}
	}
	for _, arg := range call.Args {
		if id, ok := ast.Unparen(arg).(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			return true
		}
	}
	return false
}

// isReference reports whether an alias of this type aliases the referent's
// state (pointers, and only pointers, matter for p := a.p aliasing).
func isReference(t types.Type) bool {
	_, ok := t.Underlying().(*types.Pointer)
	return ok
}
