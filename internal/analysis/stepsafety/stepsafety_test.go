package stepsafety_test

import (
	"testing"

	"setagreement/internal/analysis/analysistest"
	"setagreement/internal/analysis/stepsafety"
)

func TestStepsafety(t *testing.T) {
	analysistest.Run(t, stepsafety.Analyzer, "stepsafety")
}
