// Package atomicword exercises the one-atomic-state-word discipline: fields
// touched atomically must never be accessed plainly, and plain-iota enum
// state constants must be compared, not bit-tested.
package atomicword

import "sync/atomic"

type task struct {
	st atomic.Uint32
}

func taskLoad(t *task) uint32 {
	return t.st.Load()
}

func taskAddr(t *task) *atomic.Uint32 {
	return &t.st
}

func taskCopy(t *task) {
	x := t.st // want "plain access to atomic field st"
	_ = x
}

type word struct {
	st uint32
	n  int
}

func wordLoad(w *word) uint32 {
	return atomic.LoadUint32(&w.st)
}

func wordPlainRead(w *word) uint32 {
	return w.st // want "plain access to atomic field st"
}

func wordPlainWrite(w *word) {
	w.st = 0 // want "plain access to atomic field st"
}

func wordPlainField(w *word) int {
	w.n = 1
	return w.n
}

const (
	stFree uint32 = iota
	stBusy
	stDone
)

func bitTest(st uint32) bool {
	return st&stBusy != 0 // want "bit-test of enum state constant stBusy"
}

func compare(st uint32) bool {
	return st == stBusy
}

const (
	flagA uint32 = 1 << iota
	flagB
)

func flagTest(fl uint32) bool {
	return fl&flagA != 0
}

// Marked as a flag set despite the plain iota, so masking is allowed.
//
//salint:flags
const (
	optRetry uint64 = iota
	optNotify
)

func optTest(o uint64) bool {
	return o&optNotify != 0
}

const (
	gQueued uint32 = iota
	gRunning
	gMask uint32 = 7
)

func packedSlice(w uint32) uint32 {
	return w & gMask
}

func packedBitTest(w uint32) bool {
	return w&gRunning != 0 // want "bit-test of enum state constant gRunning"
}
