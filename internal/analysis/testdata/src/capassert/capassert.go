// Package capassert exercises the optional-capability rule: assertions to
// shmem capability interfaces must be comma-ok (or a type switch) so a
// backend without the capability degrades instead of panicking.
package capassert

import "shmem"

func assumeNotifier(m shmem.Mem) uint64 {
	nt := m.(shmem.Notifier) // want "single-result assertion to capability shmem.Notifier"
	return nt.Version()
}

func assumeStepperInline(m shmem.Mem) int64 {
	return m.(shmem.Stepper).Steps() // want "single-result assertion to capability shmem.Stepper"
}

func probeNotifier(m shmem.Mem) uint64 {
	if nt, ok := m.(shmem.Notifier); ok {
		return nt.Version()
	}
	return 0
}

func probeCombiner(m shmem.Mem) ([]shmem.Value, bool) {
	comb, ok := m.(shmem.ViewCombiner)
	if !ok {
		return nil, false
	}
	return comb.Adopt(0, 1)
}

func switchProbe(m shmem.Mem) int64 {
	switch v := m.(type) {
	case shmem.Stepper:
		return v.Steps()
	case shmem.CASRetrier:
		return v.CASRetries()
	default:
		return 0
	}
}

func nonCapability(v any) int {
	return v.(int)
}
