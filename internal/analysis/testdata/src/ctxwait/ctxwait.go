// Package ctxwait exercises the cancellable-wait rule: no blind
// time.Sleep or naked <-time.After in propose/wait paths, and timed select
// waits need a cancellation sibling case.
package ctxwait

import (
	"context"
	"time"
)

func blindSleep(d time.Duration) {
	time.Sleep(d) // want "time.Sleep in a propose/wait path is not cancellable"
}

func nakedAfter(d time.Duration) {
	<-time.After(d) // want "naked <-time.After is not cancellable"
}

func selectNoCancel(c chan int, d time.Duration) int {
	select {
	case v := <-c:
		return v
	case <-time.After(d): // want "select waits on time.After with no cancellation case"
		return 0
	}
}

func selectWithDone(ctx context.Context, d time.Duration) error {
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-time.After(d):
		return nil
	}
}

func selectWithStopChan(stop chan struct{}, d time.Duration) bool {
	select {
	case <-stop:
		return false
	case <-time.After(d):
		return true
	}
}

func timerSelect(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

// suppressedSleep mirrors the nil-context fallback in guardMem.sleep: the
// documented suppression silences the finding.
func suppressedSleep(d time.Duration) {
	//lint:ignore ctxwait no cancellation edge exists on this path by design
	time.Sleep(d)
}
