// Package obs exercises the hot-path send rule: the fixture carries the
// name of an in-scope package, so its non-test sends are analyzed; bare
// sends and escape-less selects are flagged, guarded sends are not.
package obs

func bareSend(c chan int, v int) {
	c <- v // want "blocking channel send on a recorder/proposal hot path"
}

func soloSelectSend(c chan int, v int) {
	select {
	case c <- v: // want "blocking channel send on a recorder/proposal hot path"
	}
}

func trySend(c chan int, v int) bool {
	select {
	case c <- v:
		return true
	default:
		return false
	}
}

func sendOrCancel(c chan int, done chan struct{}, v int) {
	select {
	case c <- v:
	case <-done:
	}
}

// suppressedSend documents an intentional rendezvous; the directive
// silences the finding.
func suppressedSend(c chan int, v int) {
	//lint:ignore hotsend synchronous rendezvous by design
	c <- v
}
