// Package shmem is the fixture stub of the real internal/shmem: the type
// names and method shapes the salint analyzers duck-match (matching is by
// package name, so this stub and the real package hit the same rules), with
// none of the implementation.
package shmem

import "context"

// Value is one stored value.
type Value any

// Mem is the shared-memory interface.
type Mem interface {
	Read(reg int) Value
	Write(reg int, v Value)
	Update(snap, comp int, v Value)
	Scan(snap int) []Value
}

// TryScanner is the bounded-scan capability.
type TryScanner interface {
	TryScan(snap, attempts int) (view []Value, ok bool)
}

// Notifier is the event-driven waiting capability.
type Notifier interface {
	Version() uint64
	AwaitChange(ctx context.Context, v uint64) (spurious int, err error)
	RegisterWake(v uint64, fn func()) (cancel func())
	Waiters() int64
}

// Resetter is the recycling capability.
type Resetter interface {
	Reset()
}

// Stepper is the operation-count capability.
type Stepper interface {
	Steps() int64
}

// CASRetrier is the contention-count capability.
type CASRetrier interface {
	CASRetries() int64
}

// ViewCombiner is the scan-combining capability.
type ViewCombiner interface {
	Adopt(snap int, version uint64) ([]Value, bool)
	Publish(snap int, version uint64, view []Value)
}
