// Package stepsafety exercises the restart-safety rule for resumable
// Steps: surviving (receiver-reachable) state must not be mutated before
// the step's first shared-memory operation.
package stepsafety

import "shmem"

type attempt struct {
	round int
	last  []shmem.Value
}

// Step mutates surviving state before scanning: restart-unsafe.
func (a *attempt) Step(m shmem.Mem) (int, bool) {
	a.round++ // want "mutation of surviving state before the Step's first shared-memory operation"
	view := m.Scan(0)
	a.last = view
	return a.round, false
}

type ordered struct {
	round int
	last  []shmem.Value
}

// Step performs the memory operation first; the surviving mutations after
// it are restart-safe (a restarted step re-executes them from the scan).
func (o *ordered) Step(m shmem.Mem) (int, bool) {
	view := m.Scan(0)
	o.round++
	o.last = view
	return o.round, true
}

type aliased struct {
	n int
}

// Step mutates surviving state through a pointer alias of the receiver;
// the analyzer tracks aliases to a fixed point.
func (c *aliased) Step(m shmem.Mem) (int, bool) {
	self := c
	self.n++ // want "mutation of surviving state before the Step's first shared-memory operation"
	m.Write(0, self.n)
	return self.n, true
}

type localOnly struct {
	n int
}

// Step issues no shared-memory operation, so there is nothing to order
// against: no constraint.
func (c *localOnly) Step(m shmem.Mem) (int, bool) {
	c.n++
	return c.n, false
}

// Prepare is not a Step: the rule does not apply to other methods.
func (c *aliased) Prepare(m shmem.Mem) {
	c.n++
	m.Write(0, nil)
}
