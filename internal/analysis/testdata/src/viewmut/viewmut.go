// Package viewmut exercises the read-only snapshot view rule: writes
// through views obtained from Scan/TryScan/Adopt (or received as view
// parameters) are flagged; mutations of fresh private buffers are not.
package viewmut

import "shmem"

func mutateScan(m shmem.Mem) {
	view := m.Scan(0)
	view[0] = nil // want "write through snapshot view view"
}

func mutateTryScan(ts shmem.TryScanner) {
	view, ok := ts.TryScan(0, 8)
	if !ok {
		return
	}
	view[0] = 1 // want "write through snapshot view view"
}

func mutateAdopted(c shmem.ViewCombiner) {
	view, ok := c.Adopt(0, 1)
	if ok {
		view[0] = nil // want "write through snapshot view view"
	}
}

func mutateParam(view []shmem.Value) {
	view[1] = 7 // want "write through snapshot view view"
}

func copyIntoView(m shmem.Mem, src []shmem.Value) {
	view := m.Scan(0)
	copy(view, src) // want "copy into snapshot view view"
}

func appendToView(m shmem.Mem) []shmem.Value {
	view := m.Scan(0)
	return append(view, nil) // want "append to snapshot view view"
}

func addressEscape(m shmem.Mem) *shmem.Value {
	view := m.Scan(0)
	return &view[0] // want "taking the address of an element of snapshot view view"
}

func resliceStillView(m shmem.Mem) {
	tail := m.Scan(0)[1:]
	tail[0] = nil // want "write through snapshot view tail"
}

// identityProbe is the allowed use of element addresses: comparing backing
// arrays to assert two scans adopted the same published view.
func identityProbe(m shmem.Mem, other []shmem.Value) bool {
	view := m.Scan(0)
	return &view[0] == &other[0]
}

// privateBuffer mirrors internal/register.LockFree.Update: the current view
// is read-only; the mutation lands in a fresh buffer whose length equals the
// view's (the lock-free register's length invariant).
func privateBuffer(cur []shmem.Value, comp int, v shmem.Value) []shmem.Value {
	next := make([]shmem.Value, len(cur))
	copy(next, cur)
	next[comp] = v
	return next
}

// rebindKillsTaint: assigning a fresh slice over the view variable starts a
// private buffer; later writes are fine.
func rebindKillsTaint(m shmem.Mem) {
	view := m.Scan(0)
	view = make([]shmem.Value, 4)
	view[0] = nil
	_ = view
}

// suppressed demonstrates a documented //lint:ignore directive: the
// analysistest harness runs findings through the same filter cmd/salint
// uses, so no diagnostic survives here.
func suppressed(m shmem.Mem) {
	view := m.Scan(0)
	//lint:ignore viewmut fixture exercises the documented-suppression path
	view[0] = nil
}
