// Package viewmut implements the salint analyzer for the shmem read-only
// view rule.
//
// A slice obtained from Scan, TryScan or a combining-slot Adopt is a
// snapshot *view*: backends return their immutable current version
// copy-free (register.LockFree), the wait layer shares one adopted view
// across every process woken by the same publish (shmem.ViewCombiner), and
// MW snapshots embed views in written cells. One stray store through such a
// slice is silent cross-proposer corruption that the race detector can
// miss — the write may race with nothing while still rewriting another
// process's past scan. DESIGN.md states the rule as prose
// ("internal/shmem/doc.go: views are read-only"); this analyzer is its
// mechanical form.
//
// The check is a per-function forward taint pass. Tainted sources:
//
//   - results of calls named Scan/TryScan/Adopt whose result is a
//     []shmem.Value (any receiver — the rule holds through every wrapper),
//   - parameters of type []shmem.Value (a view handed to a helper is still
//     a view: scanutil's helpers are checked this way).
//
// Taint propagates through assignment, re-slicing and parenthesization, and
// dies on reassignment from an untainted expression (v = make(...) starts a
// fresh private buffer). Flagged sinks: element stores (v[i] = x, v[i]++,
// v[i] += x), copy with a tainted destination, append to a tainted slice
// (append may store in place when capacity allows), and taking the address
// of a view element (an escape hatch for all of the above). One carve-out:
// &v[i] appearing directly as an operand of == or != is a backing-array
// identity probe — a pure read, and the canonical way the combining tests
// assert that two scans adopted the same published view — so it is allowed.
package viewmut

import (
	"go/ast"
	"go/token"
	"go/types"

	"setagreement/internal/analysis"
)

// Analyzer flags writes through snapshot views.
var Analyzer = &analysis.Analyzer{
	Name: "viewmut",
	Doc:  "flag writes through []shmem.Value snapshot views (read-only view rule)",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkFunc(pass, fd.Type, fd.Body)
			}
		}
	}
	return nil
}

// checkFunc runs the taint pass over one function body. Function literals
// nested in the body share the surrounding taint state (a captured view is
// still a view), with their own parameters seeded as they are reached.
func checkFunc(pass *analysis.Pass, ftype *ast.FuncType, body *ast.BlockStmt) {
	tainted := map[types.Object]bool{}
	seedParams(pass, ftype, tainted)
	// compared marks expressions that are direct operands of == / != —
	// &v[i] in that position is an identity probe, not a write enabler.
	// ast.Inspect visits parents before children, so a comparison marks its
	// operands before the UnaryExpr case below sees them.
	compared := map[ast.Node]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			seedParams(pass, n.Type, tainted)
		case *ast.AssignStmt:
			checkAssign(pass, n, tainted)
		case *ast.IncDecStmt:
			if idx, ok := ast.Unparen(n.X).(*ast.IndexExpr); ok {
				checkIndexWrite(pass, idx, tainted)
			}
		case *ast.CallExpr:
			checkCall(pass, n, tainted)
		case *ast.BinaryExpr:
			if n.Op == token.EQL || n.Op == token.NEQ {
				compared[ast.Unparen(n.X)] = true
				compared[ast.Unparen(n.Y)] = true
			}
		case *ast.UnaryExpr:
			if n.Op != token.AND || compared[n] {
				return true
			}
			if idx, ok := ast.Unparen(n.X).(*ast.IndexExpr); ok && taintedExpr(pass, idx.X, tainted) {
				pass.Reportf(n.Pos(), "taking the address of an element of snapshot view %s — views are read-only", exprName(idx.X))
			}
		}
		return true
	})
}

// seedParams taints every []shmem.Value parameter.
func seedParams(pass *analysis.Pass, ftype *ast.FuncType, tainted map[types.Object]bool) {
	if ftype.Params == nil {
		return
	}
	for _, field := range ftype.Params.List {
		for _, name := range field.Names {
			obj := pass.TypesInfo.Defs[name]
			if obj != nil && analysis.IsShmemValueSlice(obj.Type()) {
				tainted[obj] = true
			}
		}
	}
}

// checkAssign reports element stores through tainted slices, then updates
// the taint state with the assignment's data flow.
func checkAssign(pass *analysis.Pass, as *ast.AssignStmt, tainted map[types.Object]bool) {
	for _, lhs := range as.Lhs {
		if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
			checkIndexWrite(pass, idx, tainted)
		}
	}
	if as.Tok != token.ASSIGN && as.Tok != token.DEFINE {
		return // compound ops (+= …) never bind a new slice
	}
	switch {
	case len(as.Lhs) == len(as.Rhs):
		for i, lhs := range as.Lhs {
			setTaint(pass, lhs, taintedExpr(pass, as.Rhs[i], tainted), tainted)
		}
	case len(as.Rhs) == 1:
		// view, ok := mem.TryScan(...) / comb.Adopt(...): the view is
		// result 0; every other result is scalar.
		src := sourceCall(pass, as.Rhs[0])
		for i, lhs := range as.Lhs {
			setTaint(pass, lhs, i == 0 && src, tainted)
		}
	}
}

// checkCall reports copy/append sinks with a tainted first argument.
func checkCall(pass *analysis.Pass, call *ast.CallExpr, tainted map[types.Object]bool) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || len(call.Args) == 0 {
		return
	}
	if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok {
		switch b.Name() {
		case "copy":
			if taintedExpr(pass, call.Args[0], tainted) {
				pass.Reportf(call.Pos(), "copy into snapshot view %s — views are read-only", exprName(call.Args[0]))
			}
		case "append":
			if taintedExpr(pass, call.Args[0], tainted) {
				pass.Reportf(call.Pos(), "append to snapshot view %s may store through the shared backing array — views are read-only", exprName(call.Args[0]))
			}
		}
	}
}

// checkIndexWrite reports v[i] used as a store target for tainted v.
func checkIndexWrite(pass *analysis.Pass, idx *ast.IndexExpr, tainted map[types.Object]bool) {
	if taintedExpr(pass, idx.X, tainted) {
		pass.Reportf(idx.Pos(), "write through snapshot view %s — views are read-only (shmem.Mem.Scan contract)", exprName(idx.X))
	}
}

// setTaint records the new taint of an assignment target (identifiers only:
// stores into fields or elements don't rebind a local).
func setTaint(pass *analysis.Pass, lhs ast.Expr, taint bool, tainted map[types.Object]bool) {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	obj := pass.TypesInfo.Defs[id]
	if obj == nil {
		obj = pass.TypesInfo.Uses[id]
	}
	if obj == nil {
		return
	}
	if taint {
		tainted[obj] = true
	} else {
		delete(tainted, obj)
	}
}

// taintedExpr reports whether e evaluates to a tainted view: a tainted
// identifier, a re-slice or parenthesization of one, or a fresh source call.
func taintedExpr(pass *analysis.Pass, e ast.Expr, tainted map[types.Object]bool) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := pass.TypesInfo.Uses[x]
		return obj != nil && tainted[obj]
	case *ast.SliceExpr:
		return taintedExpr(pass, x.X, tainted)
	case *ast.CallExpr:
		return sourceCall(pass, e)
	}
	return false
}

// sourceCall reports whether e is a call to Scan/TryScan/Adopt returning a
// view ([]shmem.Value as the sole or first result).
func sourceCall(pass *analysis.Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	switch analysis.CalleeName(call) {
	case "Scan", "TryScan", "Adopt":
	default:
		return false
	}
	t := pass.TypesInfo.Types[call].Type
	if tup, ok := t.(*types.Tuple); ok {
		if tup.Len() == 0 {
			return false
		}
		t = tup.At(0).Type()
	}
	return analysis.IsShmemValueSlice(t)
}

// exprName renders a short name for the flagged slice expression.
func exprName(e ast.Expr) string {
	if id := analysis.BaseIdent(e); id != nil {
		return id.Name
	}
	return "view"
}
