package viewmut_test

import (
	"testing"

	"setagreement/internal/analysis/analysistest"
	"setagreement/internal/analysis/viewmut"
)

func TestViewmut(t *testing.T) {
	analysistest.Run(t, viewmut.Analyzer, "viewmut")
}
