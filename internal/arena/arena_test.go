package arena

import (
	"fmt"
	"sync"
	"testing"

	"setagreement/internal/register"
	"setagreement/internal/shmem"
)

func TestShards(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{1, 1}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {17, 32},
		{MaxShards, MaxShards}, {MaxShards + 1, MaxShards},
	} {
		if got := Shards(tc.in); got != tc.want {
			t.Errorf("Shards(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
	// The default is a power of two in range.
	d := Shards(0)
	if d < 1 || d > MaxShards || d&(d-1) != 0 {
		t.Errorf("Shards(0) = %d, want a power of two in [1, %d]", d, MaxShards)
	}
}

func TestHasherSpreadsAndIsStable(t *testing.T) {
	h := NewHasher()
	const shards = 8
	counts := make([]int, shards)
	for i := 0; i < 4096; i++ {
		key := fmt.Sprintf("key-%d", i)
		s := h.Shard(key, shards)
		if s < 0 || s >= shards {
			t.Fatalf("Shard(%q) = %d out of range", key, s)
		}
		if again := h.Shard(key, shards); again != s {
			t.Fatalf("Shard(%q) unstable: %d then %d", key, s, again)
		}
		counts[s]++
	}
	// With 4096 keys over 8 shards (512 expected each) any shard below an
	// eighth of expectation indicates a broken hash, not bad luck.
	for s, c := range counts {
		if c < 64 {
			t.Errorf("shard %d got %d of 4096 keys — hash does not spread", s, c)
		}
	}
}

func TestPoolRecyclesResettableMemory(t *testing.T) {
	var p Pool
	if _, ok := p.Get(); ok {
		t.Fatal("empty pool served a runtime")
	}
	spec := shmem.Spec{Regs: 2, Snaps: []int{3}}
	mem, err := register.LockFreeBackend.New(spec)
	if err != nil {
		t.Fatal(err)
	}
	mem.Write(0, 42)
	mem.Update(0, 1, "dirty")
	rt := Runtime{Mem: mem, Wrap: func(int) shmem.Mem { return mem }}
	if !p.Put(rt) {
		t.Fatal("Put dropped a resettable runtime")
	}
	got, ok := p.Get()
	if !ok {
		t.Fatal("Get missed after Put")
	}
	if got.Mem != mem {
		t.Fatal("Get returned a different memory")
	}
	if v := got.Mem.Read(0); v != nil {
		t.Fatalf("recycled memory Read(0) = %v, want nil", v)
	}
	if v := got.Mem.Scan(0); v[1] != nil {
		t.Fatalf("recycled memory Scan(0)[1] = %v, want nil", v[1])
	}
	s := p.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Puts != 1 || s.Drops != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

// unresettable is a Mem without the Resetter capability.
type unresettable struct{ shmem.Mem }

func TestPoolDropsUnresettableMemory(t *testing.T) {
	var p Pool
	mem, err := register.LockedBackend.New(shmem.Spec{Regs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if p.Put(Runtime{Mem: unresettable{mem}}) {
		t.Fatal("Put retained a runtime without Reset support")
	}
	if _, ok := p.Get(); ok {
		t.Fatal("dropped runtime was served")
	}
	if s := p.Stats(); s.Drops != 1 || s.Puts != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestPoolCapBoundsFreeList(t *testing.T) {
	p := Pool{Cap: 2}
	spec := shmem.Spec{Regs: 1}
	for i := 0; i < 5; i++ {
		mem, err := register.LockFreeBackend.New(spec)
		if err != nil {
			t.Fatal(err)
		}
		retained := p.Put(Runtime{Mem: mem, Wrap: func(int) shmem.Mem { return mem }})
		if want := i < 2; retained != want {
			t.Fatalf("Put #%d retained=%v, want %v", i, retained, want)
		}
	}
	if got := p.Len(); got != 2 {
		t.Fatalf("free list length %d, want cap 2", got)
	}
	if s := p.Stats(); s.Puts != 2 || s.Drops != 3 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestPoolConcurrent(t *testing.T) {
	var p Pool
	spec := shmem.Spec{Regs: 1, Snaps: []int{2}}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				rt, ok := p.Get()
				if !ok {
					mem, err := register.LockFreeBackend.New(spec)
					if err != nil {
						t.Error(err)
						return
					}
					rt = Runtime{Mem: mem, Wrap: func(int) shmem.Mem { return mem }}
				}
				rt.Mem.Write(0, i)
				p.Put(rt)
			}
		}()
	}
	wg.Wait()
	s := p.Stats()
	if s.Puts != s.Hits+s.Misses {
		t.Fatalf("put/get imbalance: %+v", s)
	}
}

// BenchmarkShardMapReadHit compares the two candidate shard-map designs on
// the Object() hot path (read-mostly lookup of existing keys): a plain map
// behind a sync.RWMutex versus sync.Map. The RWMutex design wins or ties
// for this access pattern while keeping deletes (eviction) cheap and
// allocation-free, which is why the arena uses it; rerun this benchmark
// before changing that choice.
func BenchmarkShardMapReadHit(b *testing.B) {
	keys := make([]string, 256)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d", i)
	}
	b.Run("rwmutex-map", func(b *testing.B) {
		var mu sync.RWMutex
		m := make(map[string]*int, len(keys))
		for i := range keys {
			v := i
			m[keys[i]] = &v
		}
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				mu.RLock()
				p := m[keys[i&255]]
				mu.RUnlock()
				if p == nil {
					b.Error("missing key")
					return
				}
				i++
			}
		})
	})
	b.Run("sync-map", func(b *testing.B) {
		var m sync.Map
		for i := range keys {
			v := i
			m.Store(keys[i], &v)
		}
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				p, ok := m.Load(keys[i&255])
				if !ok || p == nil {
					b.Error("missing key")
					return
				}
				i++
			}
		})
	})
}
