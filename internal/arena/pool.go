package arena

import (
	"sync"
	"sync/atomic"

	"setagreement/internal/shmem"
)

// Runtime is one agreement object's materialized shared memory: the backend
// allocation plus the per-process wiring over it, exactly the pair
// snapshot.Materialize returns. All objects of one arena share a single
// shmem.Spec (same n, m, k, snapshot construction and backend), which is
// what makes their runtimes interchangeable and poolable.
type Runtime struct {
	Mem  shmem.Mem
	Wrap func(id int) shmem.Mem
	// Comb is the object's scan-combining slot (nil when combining is off
	// or the memory lacks the Notifier capability). It recycles with the
	// memory and is cleared on Put: the notifier's version rewinds on
	// Reset, so a stale slot could match a re-reached version of the next
	// tenant and leak a previous generation's view.
	Comb *shmem.ScanCombiner
}

// Pool recycles the Runtimes of evicted arena objects. An eviction Puts the
// runtime back; the next object creation Gets it instead of allocating a
// fresh backend memory (registers, snapshot versions, wiring closures — the
// dominant allocation of object churn). Put resets the memory through the
// shmem.Resetter capability; memories that do not support Reset are simply
// dropped to the garbage collector, so the pool is an optimization, never a
// requirement on the backend.
//
// The free list is bounded (Cap, default DefaultCap) so that a burst of
// short-lived objects cannot pin its peak working set of shared memories
// for the arena's lifetime: beyond the cap, Put drops the runtime to the
// garbage collector.
//
// The zero Pool is ready to use and safe for concurrent use.
type Pool struct {
	// Cap bounds the free list; 0 means DefaultCap. Set before first use.
	Cap int

	mu   sync.Mutex
	free []Runtime

	hits   atomic.Int64
	misses atomic.Int64
	puts   atomic.Int64
	drops  atomic.Int64
}

// DefaultCap is the free-list bound of a zero Pool: enough to absorb
// ordinary create/evict churn, small enough that retained memories stay
// negligible next to a live arena's working set.
const DefaultCap = 64

// Get pops a recycled runtime, reporting a miss (allocate fresh) when the
// pool is empty.
func (p *Pool) Get() (Runtime, bool) {
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		rt := p.free[n-1]
		p.free[n-1] = Runtime{} // do not retain the popped entry
		p.free = p.free[:n-1]
		p.mu.Unlock()
		p.hits.Add(1)
		return rt, true
	}
	p.mu.Unlock()
	p.misses.Add(1)
	return Runtime{}, false
}

// Put resets rt's memory and returns it to the pool. It reports whether the
// runtime was actually retained: false means the memory lacks the Resetter
// capability, or the free list is at capacity, and the runtime was dropped.
// The caller must guarantee the memory is quiescent — no operation in
// flight and none possible afterwards (the arena guarantees this by
// evicting only objects whose handles are all released).
func (p *Pool) Put(rt Runtime) bool {
	r, ok := rt.Mem.(shmem.Resetter)
	if !ok {
		p.drops.Add(1)
		return false
	}
	cap := p.Cap
	if cap <= 0 {
		cap = DefaultCap
	}
	r.Reset()
	if rt.Comb != nil {
		rt.Comb.Reset()
	}
	p.mu.Lock()
	if len(p.free) >= cap {
		p.mu.Unlock()
		p.drops.Add(1)
		return false
	}
	p.free = append(p.free, rt)
	p.mu.Unlock()
	p.puts.Add(1)
	return true
}

// PoolStats is a point-in-time view of pool traffic.
type PoolStats struct {
	Hits   int64 // Gets served from the free list
	Misses int64 // Gets that required a fresh allocation
	Puts   int64 // runtimes recycled into the pool
	Drops  int64 // runtimes dropped for lack of Reset support
}

// Stats returns the pool counters. Safe concurrently with Get/Put.
func (p *Pool) Stats() PoolStats {
	return PoolStats{
		Hits:   p.hits.Load(),
		Misses: p.misses.Load(),
		Puts:   p.puts.Load(),
		Drops:  p.drops.Load(),
	}
}

// Len returns the current free-list length.
func (p *Pool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.free)
}
