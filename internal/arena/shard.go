// Package arena holds the backend-level building blocks of the public
// Arena: shard sizing and key hashing for the sharded name→object map, and
// the pool that recycles one evicted object's shared memory for the next.
// The generic, typed registry itself lives in the root package (arena.go);
// everything here is deliberately free of type parameters so it can be
// tested and benchmarked in isolation.
package arena

import (
	"hash/maphash"
	"runtime"
)

// MaxShards bounds the shard count; beyond this the per-shard maps are so
// sparse that the extra cache lines cost more than the contention they
// remove.
const MaxShards = 1 << 10

// Shards normalizes a requested shard count: 0 picks a default sized to the
// machine (the next power of two ≥ 4×GOMAXPROCS, so that under full
// parallelism a random key has a ~3/4 chance of an uncontended shard), and
// any other request is rounded up to a power of two so the shard index is a
// mask of the key hash rather than a modulo.
func Shards(requested int) int {
	if requested <= 0 {
		requested = 4 * runtime.GOMAXPROCS(0)
	}
	if requested > MaxShards {
		requested = MaxShards
	}
	return nextPow2(requested)
}

// nextPow2 returns the smallest power of two ≥ v (v ≥ 1).
func nextPow2(v int) int {
	p := 1
	for p < v {
		p <<= 1
	}
	return p
}

// Hasher computes shard indices for string keys. The seed is drawn once per
// arena, so key→shard placement is not predictable across processes (no
// adversarial key set can pin all traffic to one shard deterministically).
// A Hasher is safe for concurrent use; maphash.String is stateless.
type Hasher struct {
	seed maphash.Seed
}

// NewHasher returns a Hasher with a fresh random seed.
func NewHasher() Hasher { return Hasher{seed: maphash.MakeSeed()} }

// Shard maps key to a shard index in [0, shards); shards must be a power of
// two (as Shards returns).
func (h Hasher) Shard(key string, shards int) int {
	return int(maphash.String(h.seed, key) & uint64(shards-1))
}
