// Package baseline provides the comparison algorithms of the paper's
// narrative:
//
//   - DFGR13: the 2(n−k)-register obstruction-free (m = 1) one-shot k-set
//     agreement of Delporte-Gallet, Fauconnier, Gafni and Rajsbaum
//     (NETYS 2013), the paper's reference [4] and the only prior algorithm
//     below n registers. The paper states its Figure 3 algorithm
//     generalizes [4]; this reconstruction instantiates the same
//     scan-adopt-advance convergence scheme over 2(n−k) components
//     (substitution documented in DESIGN.md §4).
//   - FullSpace: the trivial n-register upper bound (Figure 3 run with n
//     components), the folklore baseline the paper's introduction compares
//     against.
//   - Trivial: the k ≥ n case, solved with zero registers by outputting
//     one's own input.
package baseline

import (
	"fmt"

	"setagreement/internal/core"
	"setagreement/internal/shmem"
)

// NewDFGR13 builds the 2(n−k)-register baseline for m = 1. It requires
// k ≤ n−2 so that 2(n−k) ≥ n−k+2, the component count Figure 3's agreement
// argument needs; the paper notes [4]'s separate 2-register special case
// for k = n−1, which is not reproduced here (its pseudocode is not in the
// paper).
func NewDFGR13(n, k int) (core.Algorithm, error) {
	p := core.Params{N: n, M: 1, K: k}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if k > n-2 {
		return nil, fmt.Errorf("baseline: DFGR13 reconstruction needs k ≤ n−2, got n=%d k=%d", n, k)
	}
	inner, err := core.NewOneShotComponents(p, 2*(n-k))
	if err != nil {
		return nil, err
	}
	return &renamed{Algorithm: inner, name: "dfgr13-2(n-k)", regs: 2 * (n - k)}, nil
}

// NewFullSpace builds the trivial n-register baseline: the Figure 3 scheme
// with n components, valid for any 1 ≤ m ≤ k < n.
func NewFullSpace(p core.Params) (core.Algorithm, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	r := p.N
	if min := p.N + 2*p.M - p.K; r < min {
		// n components are enough only when n ≥ n+2m−k, i.e. 2m ≤ k;
		// otherwise fall back to the paper's count (still ≤ n when
		// implemented from single-writer registers).
		r = min
	}
	inner, err := core.NewOneShotComponents(p, r)
	if err != nil {
		return nil, err
	}
	return &renamed{Algorithm: inner, name: "fullspace-n", regs: p.N}, nil
}

// renamed wraps an algorithm with a distinct name and claimed register cost.
type renamed struct {
	core.Algorithm
	name string
	regs int
}

func (r *renamed) Name() string   { return r.name }
func (r *renamed) Registers() int { return r.regs }

// Trivial solves k-set agreement for k ≥ n with zero registers: every
// process outputs its own input (at most n ≤ k distinct outputs).
type Trivial struct {
	n, k int
}

var _ core.Algorithm = (*Trivial)(nil)

// NewTrivial builds the zero-register algorithm. It requires k ≥ n, the
// regime the paper's Section 2 excludes as trivial.
func NewTrivial(n, k int) (*Trivial, error) {
	if k < n {
		return nil, fmt.Errorf("baseline: trivial algorithm needs k ≥ n, got n=%d k=%d", n, k)
	}
	return &Trivial{n: n, k: k}, nil
}

// Name implements core.Algorithm.
func (t *Trivial) Name() string { return "trivial-own-input" }

// Params implements core.Algorithm. M is reported as k since termination is
// wait-free (no shared memory at all).
func (t *Trivial) Params() core.Params { return core.Params{N: t.n, M: t.k, K: t.k} }

// Spec implements core.Algorithm: no shared memory.
func (t *Trivial) Spec() shmem.Spec { return shmem.Spec{} }

// Registers implements core.Algorithm.
func (t *Trivial) Registers() int { return 0 }

// Anonymous implements core.Algorithm: no identifiers are used.
func (t *Trivial) Anonymous() bool { return true }

// NewProcess implements core.Algorithm.
func (t *Trivial) NewProcess(int) core.Process { return trivialProc{} }

type trivialProc struct{}

// Propose outputs the process's own input.
func (trivialProc) Propose(_ shmem.Mem, v int) int { return v }
