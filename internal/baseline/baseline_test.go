package baseline_test

import (
	"testing"

	"setagreement/internal/baseline"
	"setagreement/internal/core"
	"setagreement/internal/sched"
	"setagreement/internal/sim"
	"setagreement/internal/spec"
)

func runOneShot(t *testing.T, alg core.Algorithm, n, k int) {
	t.Helper()
	inputs := make([][]int, n)
	for i := range inputs {
		inputs[i] = []int{100 + i}
	}
	memSpec, procs := core.System(alg, inputs)
	r, err := sim.NewRunner(memSpec, procs)
	if err != nil {
		t.Fatalf("NewRunner: %v", err)
	}
	defer r.Abort()
	if _, err := r.Run(&sched.Sequential{}, 500_000); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !r.AllDone() {
		t.Fatal("not all processes decided")
	}
	outs := spec.Collect(r)
	if err := spec.CheckAll(inputs, outs, k); err != nil {
		t.Fatalf("safety: %v", err)
	}
}

func TestDFGR13(t *testing.T) {
	tests := []struct {
		n, k     int
		wantRegs int
	}{
		{n: 5, k: 2, wantRegs: 6},
		{n: 6, k: 2, wantRegs: 8},
		{n: 8, k: 5, wantRegs: 6},
		{n: 4, k: 2, wantRegs: 4},
	}
	for _, tt := range tests {
		alg, err := baseline.NewDFGR13(tt.n, tt.k)
		if err != nil {
			t.Fatalf("NewDFGR13(%d,%d): %v", tt.n, tt.k, err)
		}
		if got := alg.Registers(); got != tt.wantRegs {
			t.Errorf("n=%d k=%d: Registers = %d, want %d", tt.n, tt.k, got, tt.wantRegs)
		}
		if alg.Name() == "" || alg.Params().M != 1 {
			t.Errorf("n=%d k=%d: bad metadata %q %v", tt.n, tt.k, alg.Name(), alg.Params())
		}
		runOneShot(t, alg, tt.n, tt.k)
	}
}

func TestDFGR13RejectsHighK(t *testing.T) {
	if _, err := baseline.NewDFGR13(4, 3); err == nil {
		t.Fatal("k=n-1 accepted (special case not reconstructed)")
	}
	if _, err := baseline.NewDFGR13(4, 4); err == nil {
		t.Fatal("k=n accepted")
	}
}

func TestFullSpace(t *testing.T) {
	for _, p := range []core.Params{
		{N: 5, M: 1, K: 2},
		{N: 6, M: 2, K: 4},
		{N: 4, M: 2, K: 2}, // 2m > k: falls back to n+2m−k components
	} {
		alg, err := baseline.NewFullSpace(p)
		if err != nil {
			t.Fatalf("NewFullSpace(%v): %v", p, err)
		}
		if got := alg.Registers(); got != p.N {
			t.Errorf("%v: Registers = %d, want n=%d", p, got, p.N)
		}
		runOneShot(t, alg, p.N, p.K)
	}
}

func TestTrivial(t *testing.T) {
	alg, err := baseline.NewTrivial(3, 5)
	if err != nil {
		t.Fatalf("NewTrivial: %v", err)
	}
	if alg.Registers() != 0 || alg.Spec().Regs != 0 || len(alg.Spec().Snaps) != 0 {
		t.Fatal("trivial algorithm claims shared memory")
	}
	runOneShot(t, alg, 3, 5)

	if _, err := baseline.NewTrivial(5, 3); err == nil {
		t.Fatal("k < n accepted by trivial algorithm")
	}
}
