package core

import (
	"setagreement/internal/shmem"
	"setagreement/internal/sim"
)

// Process is one process's handle on an agreement algorithm. A Process holds
// the persistent local state the pseudocode keeps across Propose invocations
// (i, t, history). It is used by a single caller; it is not safe for
// concurrent use.
type Process interface {
	// Propose runs the process's next Propose operation with input v and
	// returns the decided value. For repeated algorithms, successive
	// calls access successive instances; one-shot algorithms support a
	// single call.
	Propose(mem shmem.Mem, v int) int
}

// Algorithm is a register-based set-agreement algorithm: a factory for
// per-process state plus its shared-memory footprint.
type Algorithm interface {
	// Name identifies the algorithm in tables and traces.
	Name() string
	// Params returns the (n, m, k) the algorithm was built for.
	Params() Params
	// Spec is the shared memory the algorithm needs.
	Spec() shmem.Spec
	// Registers is the claimed register cost — the paper's formula —
	// against which experiments audit actual usage.
	Registers() int
	// Anonymous reports whether processes may receive no identifier.
	Anonymous() bool
	// NewProcess creates the persistent local state for one process.
	// id is the process identifier; anonymous algorithms must be given
	// sim.Anonymous and must not use it.
	NewProcess(id int) Process
}

// Driver wraps a Process into a sim.Program that proposes inputs[0],
// inputs[1], ... as instances 1, 2, ... and records each decision.
func Driver(p Process, inputs []int) sim.Program {
	return func(sp *sim.Proc) {
		for t, v := range inputs {
			out := p.Propose(sp, v)
			sp.Output(t+1, out)
		}
	}
}

// System builds the simulator process specs for running alg with the given
// per-process input sequences: inputs[i] is the sequence proposed by process
// i. For anonymous algorithms every process gets ID sim.Anonymous.
func System(alg Algorithm, inputs [][]int) (shmem.Spec, []sim.ProcSpec) {
	return WrappedSystem(alg, inputs, alg.Spec(), nil)
}

// WrappedSystem is System with the algorithm's logical memory presented
// through a per-process wrapper over a different physical memory — used to
// run algorithms over register-implemented snapshots (snapshot.Wire). The
// wrapper receives the process index even for anonymous algorithms (the
// snapshot construction below the algorithm may be identified while the
// algorithm itself is not); a nil wrap is the identity.
func WrappedSystem(alg Algorithm, inputs [][]int, physical shmem.Spec, wrap func(shmem.Mem, int) shmem.Mem) (shmem.Spec, []sim.ProcSpec) {
	procs := make([]sim.ProcSpec, len(inputs))
	for i := range inputs {
		id := i
		if alg.Anonymous() {
			id = sim.Anonymous
		}
		proc := alg.NewProcess(id)
		seq := inputs[i]
		idx := i
		procs[i] = sim.ProcSpec{ID: id, Run: func(sp *sim.Proc) {
			var mem shmem.Mem = sp
			if wrap != nil {
				mem = wrap(sp, idx)
			}
			for t, v := range seq {
				out := proc.Propose(mem, v)
				sp.Output(t+1, out)
			}
		}}
	}
	return physical, procs
}
