package core_test

import (
	"fmt"
	"testing"

	"setagreement/internal/core"
	"setagreement/internal/sched"
	"setagreement/internal/sim"
	"setagreement/internal/spec"
)

const stepBudget = 500_000

// allParams enumerates every valid (n, m, k) with n in [2, maxN].
func allParams(maxN int) []core.Params {
	var out []core.Params
	for n := 2; n <= maxN; n++ {
		for k := 1; k < n; k++ {
			for m := 1; m <= k; m++ {
				out = append(out, core.Params{N: n, M: m, K: k})
			}
		}
	}
	return out
}

// oneShotInputs gives process i the single input 100+i.
func oneShotInputs(n int) [][]int {
	in := make([][]int, n)
	for i := range in {
		in[i] = []int{100 + i}
	}
	return in
}

// repeatedInputs gives process i input 1000*t+i for instance t.
func repeatedInputs(n, instances int) [][]int {
	in := make([][]int, n)
	for i := range in {
		in[i] = make([]int, instances)
		for t := range in[i] {
			in[i][t] = 1000*(t+1) + i
		}
	}
	return in
}

type algoCase struct {
	name  string
	build func(p core.Params) (core.Algorithm, error)
	multi bool // supports repeated instances
}

func algoCases() []algoCase {
	return []algoCase{
		{
			name:  "oneshot-fig3",
			build: func(p core.Params) (core.Algorithm, error) { return core.NewOneShot(p) },
		},
		{
			name:  "repeated-fig4",
			build: func(p core.Params) (core.Algorithm, error) { return core.NewRepeated(p) },
			multi: true,
		},
		{
			name:  "anonymous-fig5",
			build: func(p core.Params) (core.Algorithm, error) { return core.NewAnonRepeated(p) },
			multi: true,
		},
		{
			name:  "anonymous-fig5-oneshot",
			build: func(p core.Params) (core.Algorithm, error) { return core.NewAnonOneShot(p) },
		},
	}
}

// runAndCheck runs the algorithm with the scheduler and checks safety. If
// wantDone is non-nil, it also requires those processes to have terminated.
func runAndCheck(t *testing.T, alg core.Algorithm, inputs [][]int, s sim.Scheduler, wantDone []int) spec.Outputs {
	t.Helper()
	memSpec, procs := core.System(alg, inputs)
	r, err := sim.NewRunner(memSpec, procs)
	if err != nil {
		t.Fatalf("NewRunner: %v", err)
	}
	defer r.Abort()
	if _, err := r.Run(s, stepBudget); err != nil {
		t.Fatalf("Run: %v", err)
	}
	outs := spec.Collect(r)
	if err := spec.CheckAll(inputs, outs, alg.Params().K); err != nil {
		t.Fatalf("safety: %v", err)
	}
	audit := spec.Audit(r, alg.Params().N, alg.Registers())
	if err := audit.Check(); err != nil {
		t.Fatalf("space: %v", err)
	}
	for _, pid := range wantDone {
		if !r.IsDone(pid) {
			t.Fatalf("process %d did not terminate in %d steps (steps used: %d)", pid, stepBudget, r.Steps())
		}
	}
	return outs
}

func TestAlgorithmsSequentialSchedule(t *testing.T) {
	// Every process runs solo to completion in turn: termination is
	// guaranteed (1 ≤ m movers at all times) and all safety properties
	// must hold.
	for _, tc := range algoCases() {
		t.Run(tc.name, func(t *testing.T) {
			for _, p := range allParams(7) {
				alg, err := tc.build(p)
				if err != nil {
					t.Fatalf("%v: build: %v", p, err)
				}
				inputs := oneShotInputs(p.N)
				if tc.multi {
					inputs = repeatedInputs(p.N, 3)
				}
				all := make([]int, p.N)
				for i := range all {
					all[i] = i
				}
				outs := runAndCheck(t, alg, inputs, &sched.Sequential{}, all)
				// Everyone decided every instance.
				for pid, ds := range outs {
					if len(ds) != len(inputs[pid]) {
						t.Fatalf("%v %s: proc %d decided %d of %d instances",
							p, tc.name, pid, len(ds), len(inputs[pid]))
					}
				}
			}
		})
	}
}

func TestAlgorithmsSoloRunDecidesOwnValue(t *testing.T) {
	// A process running solo from the initial configuration must decide
	// its own input (validity plus determinism of a solo run).
	for _, tc := range algoCases() {
		t.Run(tc.name, func(t *testing.T) {
			p := core.Params{N: 4, M: 1, K: 2}
			alg, err := tc.build(p)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			inputs := oneShotInputs(p.N)
			outs := runAndCheck(t, alg, inputs, &sched.Solo{Proc: 2}, []int{2})
			if got := outs[2][0].Val; got != inputs[2][0] {
				t.Fatalf("solo decided %v, want own input %d", got, inputs[2][0])
			}
		})
	}
}

func TestAlgorithmsEventuallyMTermination(t *testing.T) {
	// m-obstruction-freedom: after an arbitrary contended prefix, if only
	// m processes keep moving they must all terminate.
	for _, tc := range algoCases() {
		t.Run(tc.name, func(t *testing.T) {
			for _, p := range allParams(6) {
				for seed := int64(0); seed < 3; seed++ {
					alg, err := tc.build(p)
					if err != nil {
						t.Fatalf("%v: build: %v", p, err)
					}
					inputs := oneShotInputs(p.N)
					if tc.multi {
						inputs = repeatedInputs(p.N, 2)
					}
					movers := make([]int, p.M)
					for i := range movers {
						movers[i] = (int(seed) + i) % p.N
					}
					s := sched.NewEventuallyM(movers, 40*p.N, seed)
					runAndCheck(t, alg, inputs, s, movers)
				}
			}
		})
	}
}

func TestAlgorithmsSafetyUnderRandomSchedules(t *testing.T) {
	// No scheduler may break validity or k-agreement, terminating or not.
	for _, tc := range algoCases() {
		t.Run(tc.name, func(t *testing.T) {
			for _, p := range allParams(6) {
				for seed := int64(0); seed < 4; seed++ {
					alg, err := tc.build(p)
					if err != nil {
						t.Fatalf("%v: build: %v", p, err)
					}
					inputs := oneShotInputs(p.N)
					if tc.multi {
						inputs = repeatedInputs(p.N, 2)
					}
					runAndCheck(t, alg, inputs, sched.NewRandom(seed), nil)
				}
			}
		})
	}
}

func TestAlgorithmsSafetyUnderBlockerSchedule(t *testing.T) {
	for _, tc := range algoCases() {
		t.Run(tc.name, func(t *testing.T) {
			for _, p := range allParams(5) {
				alg, err := tc.build(p)
				if err != nil {
					t.Fatalf("%v: build: %v", p, err)
				}
				inputs := oneShotInputs(p.N)
				if tc.multi {
					inputs = repeatedInputs(p.N, 2)
				}
				memSpec, procs := core.System(alg, inputs)
				r, err := sim.NewRunner(memSpec, procs)
				if err != nil {
					t.Fatalf("NewRunner: %v", err)
				}
				// A bounded adversarial run: safety must hold at
				// every point, so check after a fixed budget.
				if _, err := r.Run(sched.NewBlocker(), 20_000); err != nil {
					t.Fatalf("Run: %v", err)
				}
				outs := spec.Collect(r)
				if err := spec.CheckAll(inputs, outs, p.K); err != nil {
					t.Errorf("%v %s: %v", p, tc.name, err)
				}
				r.Abort()
			}
		})
	}
}

func TestRegisterFormulas(t *testing.T) {
	tests := []struct {
		name string
		p    core.Params
		want map[string]int
	}{
		{
			name: "n5 m1 k2",
			p:    core.Params{N: 5, M: 1, K: 2},
			want: map[string]int{
				"oneshot-fig3":           5, // n+2m-k = 5 ≤ n
				"repeated-fig4":          5,
				"anonymous-fig5":         2*3 + 1 + 1, // (m+1)(n-k)+m²+1 = 8
				"anonymous-fig5-oneshot": 7,
			},
		},
		{
			name: "n6 m2 k3",
			p:    core.Params{N: 6, M: 2, K: 3},
			want: map[string]int{
				"oneshot-fig3":           min(6+4-3, 6), // 6: capped at n
				"repeated-fig4":          6,
				"anonymous-fig5":         3*3 + 4 + 1, // 14
				"anonymous-fig5-oneshot": 13,
			},
		},
		{
			name: "n4 m1 k3 (consensus-adjacent corner)",
			p:    core.Params{N: 4, M: 1, K: 3},
			want: map[string]int{
				"oneshot-fig3":           3, // n+2m-k = 3
				"repeated-fig4":          3,
				"anonymous-fig5":         (1+1)*(4-3) + 1 + 1, // 4
				"anonymous-fig5-oneshot": 3,
			},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			for _, tc := range algoCases() {
				alg, err := tc.build(tt.p)
				if err != nil {
					t.Fatalf("build %s: %v", tc.name, err)
				}
				if got := alg.Registers(); got != tt.want[tc.name] {
					t.Errorf("%s.Registers() = %d, want %d", tc.name, got, tt.want[tc.name])
				}
			}
		})
	}
}

func TestRepeatedHistoryShortcut(t *testing.T) {
	// Process 0 completes several instances solo; process 1 must then
	// adopt process 0's recorded outputs for the instances it missed.
	p := core.Params{N: 2, M: 1, K: 1}
	alg, err := core.NewRepeated(p)
	if err != nil {
		t.Fatalf("NewRepeated: %v", err)
	}
	inputs := repeatedInputs(p.N, 4)
	memSpec, procs := core.System(alg, inputs)
	r, err := sim.NewRunner(memSpec, procs)
	if err != nil {
		t.Fatalf("NewRunner: %v", err)
	}
	defer r.Abort()
	if _, err := r.Run(&sched.Sequential{}, stepBudget); err != nil {
		t.Fatalf("Run: %v", err)
	}
	outs := spec.Collect(r)
	if err := spec.CheckAll(inputs, outs, p.K); err != nil {
		t.Fatalf("safety: %v", err)
	}
	// Consensus: both processes output identical sequences.
	for tIdx := range outs[0] {
		if outs[0][tIdx].Val != outs[1][tIdx].Val {
			t.Fatalf("instance %d: outputs differ: %v vs %v",
				tIdx+1, outs[0][tIdx].Val, outs[1][tIdx].Val)
		}
	}
	// Process 1 ran after process 0 had decided every instance, so it
	// must have adopted process 0's values.
	for tIdx, d := range outs[1] {
		if d.Val != outs[0][tIdx].Val {
			t.Fatalf("instance %d: process 1 did not adopt process 0's value", tIdx+1)
		}
	}
}

func TestOneShotDoubleProposePanics(t *testing.T) {
	alg, err := core.NewOneShot(core.Params{N: 3, M: 1, K: 1})
	if err != nil {
		t.Fatalf("NewOneShot: %v", err)
	}
	inputs := [][]int{{1, 2}, {3}, {4}} // process 0 proposes twice
	memSpec, procs := core.System(alg, inputs)
	r, err := sim.NewRunner(memSpec, procs)
	if err != nil {
		t.Fatalf("NewRunner: %v", err)
	}
	defer r.Abort()
	_, runErr := r.Run(&sched.Sequential{}, stepBudget)
	if runErr == nil {
		t.Fatal("expected second Propose on a one-shot process to fail")
	}
}

func TestAnonymousAlgorithmIgnoresIDs(t *testing.T) {
	// Outputs must be a function of inputs and schedule only: running the
	// anonymous algorithm with rotated process positions but identical
	// schedules and inputs-by-position yields identical outputs.
	p := core.Params{N: 4, M: 2, K: 3}
	inputs := oneShotInputs(p.N)
	schedule := []int{0, 1, 2, 3, 3, 2, 1, 0, 0, 0, 1, 1, 2, 2, 3, 3}

	run := func() map[int][]int {
		alg, err := core.NewAnonOneShot(p)
		if err != nil {
			t.Fatalf("build: %v", err)
		}
		memSpec, procs := core.System(alg, inputs)
		r, err := sim.NewRunner(memSpec, procs)
		if err != nil {
			t.Fatalf("NewRunner: %v", err)
		}
		defer r.Abort()
		if err := r.RunSchedule(schedule); err != nil {
			t.Fatalf("RunSchedule: %v", err)
		}
		// Finish everyone off deterministically.
		if _, err := r.Run(&sched.Sequential{}, stepBudget); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return spec.Collect(r).ByInstance()
	}

	first := fmt.Sprint(run())
	for trial := 0; trial < 3; trial++ {
		if got := fmt.Sprint(run()); got != first {
			t.Fatalf("anonymous run not deterministic: %s vs %s", got, first)
		}
	}
}

func TestConsensusAgreesOnOneValue(t *testing.T) {
	// m=k=1 is consensus: every terminating process outputs the same value.
	for _, n := range []int{2, 3, 5, 8} {
		p := core.Params{N: n, M: 1, K: 1}
		alg, err := core.NewOneShot(p)
		if err != nil {
			t.Fatalf("NewOneShot: %v", err)
		}
		inputs := oneShotInputs(n)
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		outs := runAndCheck(t, alg, inputs, &sched.Sequential{}, all)
		want := outs[0][0].Val
		for pid := range outs {
			if outs[pid][0].Val != want {
				t.Fatalf("n=%d: consensus split: %v vs %v", n, outs[pid][0].Val, want)
			}
		}
	}
}
