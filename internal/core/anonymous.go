package core

import (
	"fmt"

	"setagreement/internal/shmem"
)

// ATuple is the (value, instance, history) tuple the anonymous algorithm of
// Figure 5 stores in snapshot components. Anonymity means no identifier
// field: identically-programmed processes may write identical tuples.
type ATuple struct {
	Val int
	T   int
	His History
}

// String renders the tuple as "(v,t,his)".
func (t ATuple) String() string {
	return fmt.Sprintf("(%d,t%d,%q)", t.Val, t.T, string(t.His))
}

// AnonRepeated is the anonymous m-obstruction-free repeated k-set agreement
// algorithm of Figure 5. It uses a snapshot object with
// r = (m+1)(n−k)+m² components plus one plain register H where fast
// processes publish their output histories, for a total of
// (m+1)(n−k)+m²+1 registers (Theorem 11).
//
// The pseudocode runs two threads per process: thread 1 executes the
// scan/update loop, thread 2 polls H so that processes starved by a
// non-blocking snapshot still terminate. This implementation interleaves
// them deterministically — one H poll per loop iteration, plus one per
// snapshot retry when a register-based non-blocking snapshot is used —
// which is one legal schedule of the two threads and preserves both safety
// (the paper's atomic line-pairs are trivially atomic in a single thread)
// and the starvation-freedom role of H.
type AnonRepeated struct {
	params Params
	r      int
	withH  bool
}

var _ Algorithm = (*AnonRepeated)(nil)

// NewAnonRepeated builds the repeated anonymous algorithm (with H).
func NewAnonRepeated(p Params) (*AnonRepeated, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &AnonRepeated{params: p, r: anonComponents(p), withH: true}, nil
}

// NewAnonOneShot builds the one-shot variant. The paper remarks (end of
// Appendix B) that H is unnecessary for the one-shot case, saving one
// register: (m+1)(n−k)+m² in total.
func NewAnonOneShot(p Params) (*AnonRepeated, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &AnonRepeated{params: p, r: anonComponents(p), withH: false}, nil
}

// NewAnonComponents builds the algorithm with an explicit component count r
// (used by the Theorem 10 lower-bound experiments).
func NewAnonComponents(p Params, r int, withH bool) (*AnonRepeated, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if r < 1 {
		return nil, fmt.Errorf("core: anonymous algorithm needs r ≥ 1 components, got %d", r)
	}
	return &AnonRepeated{params: p, r: r, withH: withH}, nil
}

// anonComponents is (m+1)(n−k)+m², equivalently (m+1)(ℓ−1)+1.
func anonComponents(p Params) int {
	return (p.M+1)*(p.N-p.K) + p.M*p.M
}

// Name implements Algorithm.
func (a *AnonRepeated) Name() string {
	if a.withH {
		return "anonymous-fig5"
	}
	return "anonymous-fig5-oneshot"
}

// Params implements Algorithm.
func (a *AnonRepeated) Params() Params { return a.params }

// Components returns the snapshot component count r.
func (a *AnonRepeated) Components() int { return a.r }

// Spec implements Algorithm: register 0 is H (repeated variant only);
// snapshot object 0 has r components.
func (a *AnonRepeated) Spec() shmem.Spec {
	regs := 0
	if a.withH {
		regs = 1
	}
	return shmem.Spec{Regs: regs, Snaps: []int{a.r}}
}

// Registers implements Algorithm: (m+1)(n−k)+m²(+1) per Theorem 11.
func (a *AnonRepeated) Registers() int {
	if a.withH {
		return a.r + 1
	}
	return a.r
}

// Anonymous implements Algorithm.
func (a *AnonRepeated) Anonymous() bool { return true }

// NewProcess implements Algorithm. Anonymity: the id argument is ignored and
// never stored, so all processes are identically programmed.
func (a *AnonRepeated) NewProcess(int) Process {
	return &anonProc{alg: a}
}

// regH is the register index of H in the repeated variant's memory spec.
const regH = 0

type anonProc struct {
	alg *AnonRepeated
	i   int         // persistent component index
	t   int         // persistent instance counter
	his History     // persistent output history
	att anonAttempt // reused per Propose; no allocation per call
}

var _ Resumable = (*anonProc)(nil)

// Propose is the code of Figure 5 for one invocation: the synchronous
// driver over the resumable machine.
func (p *anonProc) Propose(mem shmem.Mem, v int) int {
	return drive(p.Begin(v), mem)
}

// Begin implements Resumable: lines 10-12 and 15 — t ← t+1, the history
// replay shortcut, pref ← v. The H write of line 9 is a shared-memory
// operation, so it belongs to the Attempt (its first Step), not to the
// process-local prelude; the operation order a sequential run issues is
// unchanged (H write first, before any replay return).
func (p *anonProc) Begin(v int) Attempt {
	p.t++
	p.att = anonAttempt{p: p, t: p.t, pref: v}
	if p.his.Len() >= p.t {
		p.att.out, p.att.done = p.his.At(p.t), true
	}
	return &p.att
}

// anonAttempt carries the loop-local state of Figure 5 across Steps.
type anonAttempt struct {
	p      *anonProc
	t      int
	pref   int
	wroteH bool
	out    int
	done   bool
}

// Step runs one iteration of the Figure 5 loop, after the one-time H write
// of line 9 (or replays the decision Begin already reached).
func (a *anonAttempt) Step(mem shmem.Mem) (int, bool) {
	p := a.p
	alg, t := p.alg, a.t
	if alg.withH && !a.wroteH {
		// line 9: write history into H.
		mem.Write(regH, p.his)
		a.wroteH = true
	}
	if a.done {
		return a.out, true
	}
	m := alg.params.M
	ell := alg.params.Ell() // line 16: ℓ ← n+m−k
	r := alg.r

	// Thread 2 (lines 32-36), interleaved once per iteration: if
	// |H| ≥ t, adopt its t-th value.
	if alg.withH {
		if w, ok := p.pollH(mem, t); ok {
			a.out, a.done = w, true
			return w, true
		}
	}

	// line 18: update ith component with (pref, t, history).
	mem.Update(0, p.i, ATuple{Val: a.pref, T: t, His: p.his})
	// line 19: s ← scan of A. Over a non-blocking snapshot substrate a
	// scan can starve; thread 2's H poll is interleaved between bounded
	// retry rounds, which is a legal schedule of the pseudocode's two
	// parallel threads and is what rescues starved processes (Appendix
	// B's final argument).
	s, rescued, w := p.scanInterleavingH(mem, t)
	if rescued {
		a.out, a.done = w, true
		return w, true
	}

	// lines 20-22: adopt the history of any process past t.
	for _, x := range s {
		if tu, ok := x.(ATuple); ok && tu.T > t {
			p.his = tu.His
			a.out, a.done = p.his.At(t), true
			return a.out, true
		}
	}

	// lines 23-26: decide on the most frequent value if at most m
	// distinct entries and every entry is a t-tuple.
	if allTTuples(s, t) && distinctCount(s) <= m {
		w := mostFrequentValue(s)
		p.his = p.his.Append(w)
		a.out, a.done = w, true
		return w, true
	}

	// lines 27-28: if my preference appears in fewer than ℓ components
	// and some other value fills at least ℓ, adopt it.
	if countValT(s, a.pref, t) < ell {
		if nv, ok := dominantValue(s, t, ell); ok {
			a.pref = nv
		}
	}
	// line 29: advance i unconditionally.
	p.i = (p.i + 1) % r
	return 0, false
}

// pollH implements thread 2's body: if H holds a history covering instance
// t, adopt it and output its t-th value.
func (p *anonProc) pollH(mem shmem.Mem, t int) (int, bool) {
	if h, ok := mem.Read(regH).(History); ok && h.Len() >= t {
		w := h.At(t)
		p.his = p.his.Append(w)
		return w, true
	}
	return 0, false
}

// scanInterleavingH scans the snapshot; when the memory supports bounded
// scan attempts (a non-blocking substrate), it interleaves an H poll
// between attempts so a starved scanner still terminates once some fast
// process has published a long enough history. rescued=true means the H
// shortcut fired, with w the output.
func (p *anonProc) scanInterleavingH(mem shmem.Mem, t int) (s []shmem.Value, rescued bool, w int) {
	ts, bounded := mem.(shmem.TryScanner)
	if !bounded {
		return mem.Scan(0), false, 0
	}
	for {
		if view, ok := ts.TryScan(0, 4); ok {
			return view, false, 0
		}
		if p.alg.withH {
			if out, ok := p.pollH(mem, t); ok {
				return nil, true, out
			}
		}
	}
}

// allTTuples reports whether every entry of s is a tuple of instance exactly
// t (the decision precondition of line 23).
func allTTuples(s []shmem.Value, t int) bool {
	for _, x := range s {
		tu, ok := x.(ATuple)
		if !ok || tu.T != t {
			return false
		}
	}
	return true
}

// mostFrequentValue returns the value occurring in the most components,
// breaking ties by first occurrence so the choice is deterministic.
func mostFrequentValue(s []shmem.Value) int {
	counts := make(map[int]int, len(s))
	firstAt := make(map[int]int, len(s))
	for j, x := range s {
		tu := x.(ATuple)
		counts[tu.Val]++
		if _, seen := firstAt[tu.Val]; !seen {
			firstAt[tu.Val] = j
		}
	}
	best, bestCount, bestFirst := 0, -1, len(s)
	for val, c := range counts {
		if c > bestCount || (c == bestCount && firstAt[val] < bestFirst) {
			best, bestCount, bestFirst = val, c, firstAt[val]
		}
	}
	return best
}

// countValT counts components holding (val, t, *) — any history.
func countValT(s []shmem.Value, val, t int) int {
	n := 0
	for _, x := range s {
		if tu, ok := x.(ATuple); ok && tu.T == t && tu.Val == val {
			n++
		}
	}
	return n
}

// dominantValue returns a value held with instance t by at least ell
// components, if any, choosing the most frequent (ties by first occurrence).
func dominantValue(s []shmem.Value, t, ell int) (int, bool) {
	counts := make(map[int]int, len(s))
	firstAt := make(map[int]int, len(s))
	for j, x := range s {
		tu, ok := x.(ATuple)
		if !ok || tu.T != t {
			continue
		}
		counts[tu.Val]++
		if _, seen := firstAt[tu.Val]; !seen {
			firstAt[tu.Val] = j
		}
	}
	best, bestCount, bestFirst, found := 0, 0, len(s), false
	for val, c := range counts {
		if c < ell {
			continue
		}
		if !found || c > bestCount || (c == bestCount && firstAt[val] < bestFirst) {
			best, bestCount, bestFirst, found = val, c, firstAt[val], true
		}
	}
	return best, found
}
