package core_test

import (
	"testing"

	"setagreement/internal/core"
	"setagreement/internal/sched"
	"setagreement/internal/sim"
	"setagreement/internal/spec"
)

// TestTerminationWithCrashes: n−m processes crash mid-execution; the m
// survivors keep moving and must terminate (a crash is indistinguishable
// from never being scheduled, so m-obstruction-freedom applies), and safety
// must hold including the crashed processes' earlier decisions.
func TestTerminationWithCrashes(t *testing.T) {
	for _, tc := range algoCases() {
		t.Run(tc.name, func(t *testing.T) {
			for _, p := range allParams(6) {
				for trial := 0; trial < 2; trial++ {
					alg, err := tc.build(p)
					if err != nil {
						t.Fatalf("%v: build: %v", p, err)
					}
					inputs := oneShotInputs(p.N)
					if tc.multi {
						inputs = repeatedInputs(p.N, 2)
					}
					// Survivors: the last m processes; everyone
					// else crashes after a small quota.
					quota := make(map[int]int)
					for pid := 0; pid < p.N-p.M; pid++ {
						quota[pid] = 3 + 5*trial + pid
					}
					s := sched.NewCrashing(&sched.RoundRobin{}, quota)
					memSpec, procs := core.System(alg, inputs)
					r, err := sim.NewRunner(memSpec, procs)
					if err != nil {
						t.Fatalf("NewRunner: %v", err)
					}
					if _, err := r.Run(s, stepBudget); err != nil {
						r.Abort()
						t.Fatalf("%v %s: run: %v", p, tc.name, err)
					}
					for pid := p.N - p.M; pid < p.N; pid++ {
						if !r.IsDone(pid) {
							r.Abort()
							t.Fatalf("%v %s trial %d: survivor %d did not terminate",
								p, tc.name, trial, pid)
						}
					}
					outs := spec.Collect(r)
					if err := spec.CheckAll(inputs, outs, p.K); err != nil {
						r.Abort()
						t.Fatalf("%v %s: %v", p, tc.name, err)
					}
					r.Abort()
				}
			}
		})
	}
}

// TestCrashedProcessWritesStayHarmless: a process crashed while poised to
// write (a "hidden bullet") must not break agreement when its write is the
// very thing covering arguments exploit — here we just check safety across
// crash points swept over an execution prefix.
func TestCrashedProcessWritesStayHarmless(t *testing.T) {
	p := core.Params{N: 4, M: 1, K: 1}
	for crashAt := 1; crashAt <= 20; crashAt++ {
		alg, err := core.NewOneShot(p)
		if err != nil {
			t.Fatalf("NewOneShot: %v", err)
		}
		inputs := oneShotInputs(p.N)
		quota := map[int]int{0: crashAt}
		s := sched.NewCrashing(&sched.RoundRobin{}, quota)
		memSpec, procs := core.System(alg, inputs)
		r, err := sim.NewRunner(memSpec, procs)
		if err != nil {
			t.Fatalf("NewRunner: %v", err)
		}
		if _, err := r.Run(s, stepBudget); err != nil {
			r.Abort()
			t.Fatalf("crashAt=%d: %v", crashAt, err)
		}
		for pid := 1; pid < p.N; pid++ {
			if !r.IsDone(pid) {
				r.Abort()
				t.Fatalf("crashAt=%d: process %d stuck", crashAt, pid)
			}
		}
		outs := spec.Collect(r)
		if err := spec.CheckAll(inputs, outs, p.K); err != nil {
			r.Abort()
			t.Fatalf("crashAt=%d: %v", crashAt, err)
		}
		r.Abort()
	}
}
