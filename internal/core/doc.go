// Package core implements the three set-agreement algorithms of the paper
// "On the Space Complexity of Set Agreement" (Delporte-Gallet, Fauconnier,
// Kuznetsov, Ruppert; PODC 2015):
//
//   - OneShot: the m-obstruction-free one-shot k-set agreement algorithm of
//     Figure 3, using a snapshot object with n+2m−k components.
//   - Repeated: the repeated k-set agreement algorithm of Figure 4, same
//     space, with history shortcuts across instances.
//   - AnonRepeated / AnonOneShot: the anonymous algorithm of Figure 5, using
//     a snapshot with (m+1)(n−k)+m² components plus (repeated only) one
//     extra register H.
//
// Algorithms are written against shmem.Mem, so they run unchanged on the
// deterministic simulator (package sim) and on the native in-process runtime
// (package register).
//
// # The Algorithm and Process contract
//
// An Algorithm is a factory plus a footprint: Spec() declares the shared
// memory it needs (registers and snapshot component counts), Registers()
// the paper's claimed register cost that experiments audit against, and
// NewProcess(id) creates one process's persistent local state — what the
// pseudocode keeps across operations of a single process (the current
// instance number, the output history, the preferred value). A Process is
// used by one caller at a time; every shared-memory effect flows through
// the Mem passed to Propose, never through hidden state, which is what
// lets the facade resolve a process's memory view once at handle-claim
// time and what keeps the simulator's step accounting exact.
//
// Each algorithm also has a *Components constructor (NewOneShotComponents,
// NewRepeatedComponents, NewAnonComponents) taking an explicit component
// count r instead of the paper's formula: larger r preserves correctness
// (the pigeonhole arguments only need the formula as a lower bound on r),
// and smaller r is how the lower-bound adversaries in package lowerbound
// exhibit counterexample executions.
//
// The paper's lemma-level safety arguments are executable: package spec
// checks validity, k-agreement and m-obstruction-freedom over simulated
// runs, and its invariants (Lemma 3, Lemma 12, stored-value validity) can
// be checked after every simulator step.
package core
