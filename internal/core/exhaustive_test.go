package core_test

import (
	"fmt"
	"testing"

	"setagreement/internal/core"
	"setagreement/internal/explore"
	"setagreement/internal/sim"
	"setagreement/internal/spec"
)

// exhaustiveCheck model-checks an algorithm: every configuration reachable
// within the bounds is visited and its outputs checked for validity and
// k-agreement. Unlike the schedule-sampling tests, a pass here covers every
// interleaving up to the depth bound.
func exhaustiveCheck(t *testing.T, alg core.Algorithm, inputs [][]int, opts explore.Options) *explore.Outcome {
	t.Helper()
	memSpec, _ := core.System(alg, inputs)
	procs := func() []sim.ProcSpec {
		_, ps := core.System(alg, inputs)
		return ps
	}
	out, err := explore.Run(memSpec, procs, opts, func(st *explore.State) (bool, error) {
		outs := spec.Collect(st.Runner)
		if err := spec.CheckAll(inputs, outs, alg.Params().K); err != nil {
			return false, fmt.Errorf("at suffix %v: %w", st.Suffix, err)
		}
		return false, nil
	})
	if err != nil {
		t.Fatalf("%s: %v", alg.Name(), err)
	}
	return out
}

func TestOneShotExhaustiveTwoProcesses(t *testing.T) {
	// Consensus between two processes, all interleavings to completion.
	alg, err := core.NewOneShot(core.Params{N: 2, M: 1, K: 1})
	if err != nil {
		t.Fatalf("NewOneShot: %v", err)
	}
	inputs := [][]int{{100}, {101}}
	out := exhaustiveCheck(t, alg, inputs, explore.Options{MaxStates: 60_000, MaxDepth: 64})
	t.Logf("visited %d states (truncated=%v)", out.States, out.Truncated)
	if out.States < 100 {
		t.Fatalf("suspiciously few states: %d", out.States)
	}
}

func TestOneShotExhaustiveThreeProcesses(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive exploration is slow")
	}
	// 2-set agreement among three processes: bounded-depth full cover.
	alg, err := core.NewOneShot(core.Params{N: 3, M: 1, K: 2})
	if err != nil {
		t.Fatalf("NewOneShot: %v", err)
	}
	inputs := [][]int{{100}, {101}, {102}}
	out := exhaustiveCheck(t, alg, inputs, explore.Options{MaxStates: 30_000, MaxDepth: 24})
	t.Logf("visited %d states (truncated=%v)", out.States, out.Truncated)
}

func TestRepeatedExhaustiveTwoProcesses(t *testing.T) {
	// Two instances of repeated consensus between two processes.
	alg, err := core.NewRepeated(core.Params{N: 2, M: 1, K: 1})
	if err != nil {
		t.Fatalf("NewRepeated: %v", err)
	}
	inputs := [][]int{{100, 200}, {101, 201}}
	out := exhaustiveCheck(t, alg, inputs, explore.Options{MaxStates: 40_000, MaxDepth: 40})
	t.Logf("visited %d states (truncated=%v)", out.States, out.Truncated)
}

func TestAnonymousExhaustiveTwoProcesses(t *testing.T) {
	alg, err := core.NewAnonOneShot(core.Params{N: 2, M: 1, K: 1})
	if err != nil {
		t.Fatalf("NewAnonOneShot: %v", err)
	}
	inputs := [][]int{{100}, {101}}
	out := exhaustiveCheck(t, alg, inputs, explore.Options{MaxStates: 40_000, MaxDepth: 48})
	t.Logf("visited %d states (truncated=%v)", out.States, out.Truncated)
}

func TestOneShotExhaustiveDecisionReachability(t *testing.T) {
	// Liveness in the small: from every reachable configuration within
	// the bound, letting process 0 run solo must lead to its decision
	// (obstruction-freedom from arbitrary reachable configurations, not
	// just the initial one).
	p := core.Params{N: 2, M: 1, K: 1}
	alg, err := core.NewOneShot(p)
	if err != nil {
		t.Fatalf("NewOneShot: %v", err)
	}
	inputs := [][]int{{100}, {101}}
	memSpec, _ := core.System(alg, inputs)
	procs := func() []sim.ProcSpec {
		_, ps := core.System(alg, inputs)
		return ps
	}
	checked := 0
	_, err = explore.Run(memSpec, procs,
		explore.Options{MaxStates: 800, MaxDepth: 14},
		func(st *explore.State) (bool, error) {
			if st.Runner.IsDone(0) {
				return false, nil
			}
			// Replay this configuration privately and run proc 0 solo.
			full := append([]int(nil), st.Suffix...)
			r, err := sim.Replay(memSpec, procs(), full)
			if err != nil {
				return false, err
			}
			defer r.Abort()
			for steps := 0; !r.IsDone(0); steps++ {
				if steps > 10_000 {
					return false, fmt.Errorf("solo run from %v did not decide", st.Suffix)
				}
				if _, err := r.Step(0); err != nil {
					return false, err
				}
			}
			checked++
			return false, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if checked == 0 {
		t.Fatal("no configurations checked")
	}
	t.Logf("solo-termination verified from %d configurations", checked)
}
