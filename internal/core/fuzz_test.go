package core

import (
	"testing"

	"setagreement/internal/shmem"
)

// FuzzHistoryAppendAt: appends never corrupt earlier entries and At agrees
// with Values for arbitrary histories.
func FuzzHistoryAppendAt(f *testing.F) {
	f.Add(0, 1, -5)
	f.Add(1<<30, -(1 << 30), 0)
	f.Fuzz(func(t *testing.T, a, b, c int) {
		h := History("").Append(a).Append(b).Append(c)
		if h.Len() != 3 {
			t.Fatalf("Len = %d", h.Len())
		}
		vals := h.Values()
		want := []int{a, b, c}
		for i, w := range want {
			if vals[i] != w || h.At(i+1) != w {
				t.Fatalf("entry %d: %d/%d, want %d", i, vals[i], h.At(i+1), w)
			}
		}
	})
}

// FuzzScanHelpers: the scan helpers never panic and satisfy their basic
// contracts on arbitrary pair vectors.
func FuzzScanHelpers(f *testing.F) {
	f.Add(3, 1, 2, 1, 7, 7)
	f.Add(0, 0, 0, 0, 0, 0)
	f.Fuzz(func(t *testing.T, n, v1, id1, v2, id2, i int) {
		size := ((n%6)+6)%6 + 2
		vec := make([]shmem.Value, size)
		for j := range vec {
			switch j % 3 {
			case 0:
				vec[j] = Pair{Val: v1, ID: id1}
			case 1:
				vec[j] = Pair{Val: v2, ID: id2}
			}
		}
		d := distinctCount(vec)
		if d < 1 || d > size {
			t.Fatalf("distinctCount = %d of %d", d, size)
		}
		if j, ok := minDupIndex(vec); ok {
			if vec[j] == nil {
				t.Fatal("duplicate index points at ⊥")
			}
			found := false
			for j2 := j + 1; j2 < size; j2++ {
				if vec[j2] == vec[j] {
					found = true
				}
			}
			if !found {
				t.Fatalf("index %d not actually duplicated", j)
			}
		}
		idx := ((i % size) + size) % size
		mine := vec[idx]
		if mine == nil {
			mine = Pair{Val: v1, ID: 99}
		}
		_ = allOthersForeign(vec, idx, mine)
	})
}
