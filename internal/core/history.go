package core

import (
	"fmt"
	"strconv"
	"strings"
)

// History is the sequence of values a process has output in earlier
// instances of repeated set agreement, encoded as a string so that the
// register tuples carrying it stay comparable with == (the pseudocode
// compares whole tuples for identity).
//
// The empty History is the empty sequence.
type History string

// HistoryOf builds a History from values.
func HistoryOf(vals ...int) History {
	var h History
	for _, v := range vals {
		h = h.Append(v)
	}
	return h
}

// Len returns the number of values in the sequence.
func (h History) Len() int {
	if h == "" {
		return 0
	}
	return strings.Count(string(h), ",") + 1
}

// At returns the t-th value, 1-based as in the paper. It panics if t is out
// of range; callers check Len first, exactly as the pseudocode does.
func (h History) At(t int) int {
	parts := strings.Split(string(h), ",")
	if t < 1 || t > len(parts) || h == "" {
		panic(fmt.Sprintf("core: history %q has no instance %d", h, t))
	}
	v, err := strconv.Atoi(parts[t-1])
	if err != nil {
		panic(fmt.Sprintf("core: corrupt history %q: %v", h, err))
	}
	return v
}

// Append returns the history extended with v.
func (h History) Append(v int) History {
	if h == "" {
		return History(strconv.Itoa(v))
	}
	return h + History(","+strconv.Itoa(v))
}

// Values decodes the full sequence.
func (h History) Values() []int {
	if h == "" {
		return nil
	}
	parts := strings.Split(string(h), ",")
	out := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil {
			panic(fmt.Sprintf("core: corrupt history %q: %v", h, err))
		}
		out[i] = v
	}
	return out
}
