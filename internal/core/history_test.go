package core

import "testing"

func TestHistoryBasics(t *testing.T) {
	var h History
	if h.Len() != 0 {
		t.Fatalf("empty history Len = %d, want 0", h.Len())
	}
	h = h.Append(5)
	h = h.Append(-3)
	h = h.Append(0)
	if h.Len() != 3 {
		t.Fatalf("Len = %d, want 3", h.Len())
	}
	tests := []struct {
		give int
		want int
	}{
		{give: 1, want: 5},
		{give: 2, want: -3},
		{give: 3, want: 0},
	}
	for _, tt := range tests {
		if got := h.At(tt.give); got != tt.want {
			t.Errorf("At(%d) = %d, want %d", tt.give, got, tt.want)
		}
	}
	vals := h.Values()
	if len(vals) != 3 || vals[0] != 5 || vals[1] != -3 || vals[2] != 0 {
		t.Fatalf("Values = %v", vals)
	}
}

func TestHistoryOf(t *testing.T) {
	h := HistoryOf(1, 2, 3)
	if h.Len() != 3 || h.At(2) != 2 {
		t.Fatalf("HistoryOf = %q", h)
	}
	if HistoryOf().Len() != 0 {
		t.Fatal("HistoryOf() not empty")
	}
}

func TestHistoryComparable(t *testing.T) {
	a := HistoryOf(1, 2)
	b := HistoryOf(1).Append(2)
	if a != b {
		t.Fatalf("equal histories compare unequal: %q vs %q", a, b)
	}
	if HistoryOf(12) == HistoryOf(1, 2) {
		t.Fatal("distinct histories compare equal")
	}
}

func TestHistoryAtPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("At out of range did not panic")
		}
	}()
	HistoryOf(1).At(2)
}
