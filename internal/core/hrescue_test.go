package core_test

import (
	"testing"

	"setagreement/internal/core"
	"setagreement/internal/sim"
	"setagreement/internal/snapshot"
)

// floodThenOne builds a schedule where process 1 takes `flood` steps for
// every single step of process 0.
func floodThenOne(rounds, flood int) []int {
	var s []int
	for i := 0; i < rounds; i++ {
		for j := 0; j < flood; j++ {
			s = append(s, 1)
		}
		s = append(s, 0)
	}
	return s
}

// runAnonFlood runs the anonymous algorithm (with or without H) over the
// non-blocking double-collect substrate with process 0 heavily outpaced by
// process 1, and reports whether the starved process 0 completed its first
// Propose.
func runAnonFlood(t *testing.T, withH bool) bool {
	t.Helper()
	p := core.Params{N: 2, M: 1, K: 1}
	alg, err := core.NewAnonComponents(p, 4, withH)
	if err != nil {
		t.Fatalf("NewAnonComponents: %v", err)
	}
	physical, wrap, err := snapshot.Wire(alg.Spec(), snapshot.ImplDoubleCollect, p.N)
	if err != nil {
		t.Fatalf("Wire: %v", err)
	}
	// Process 1 proposes more instances than the schedule can consume,
	// so it floods for the whole run (it keeps making progress and, with
	// H, keeps publishing ever longer histories); process 0 proposes
	// once and is starved.
	inputs := [][]int{{100}, make([]int, 2000)}
	for i := range inputs[1] {
		inputs[1][i] = 200 + i
	}
	memSpec, procs := core.WrappedSystem(alg, inputs, physical, wrap)
	r, err := sim.NewRunner(memSpec, procs)
	if err != nil {
		t.Fatalf("NewRunner: %v", err)
	}
	defer r.Abort()
	if err := r.RunSchedule(floodThenOne(1500, 25)); err != nil {
		t.Fatalf("RunSchedule: %v", err)
	}
	return len(r.Outputs(0)) >= 1
}

// TestHRegisterRescuesStarvedProcess is Theorem 11's deepest liveness
// point, exercised end to end: over the non-blocking snapshot, a process
// starved by a fast writer can never complete a scan, but Figure 5's H
// register — polled by thread 2 between scan attempts — lets it adopt a
// fast process's published output. Without H (the one-shot variant run in
// the same setting) the starved process never terminates.
func TestHRegisterRescuesStarvedProcess(t *testing.T) {
	if !runAnonFlood(t, true) {
		t.Fatal("starved process not rescued by H")
	}
	if runAnonFlood(t, false) {
		t.Fatal("starved process terminated without H under continuous flooding (flood too weak to test the rescue)")
	}
}
