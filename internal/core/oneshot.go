package core

import (
	"fmt"

	"setagreement/internal/shmem"
)

// Pair is the (value, identifier) pair the one-shot algorithm of Figure 3
// stores in snapshot components.
type Pair struct {
	Val int
	ID  int
}

// String renders the pair as "(v,id)".
func (p Pair) String() string { return fmt.Sprintf("(%d,p%d)", p.Val, p.ID) }

// OneShot is the m-obstruction-free one-shot k-set agreement algorithm of
// Figure 3. It uses one snapshot object with r = n+2m−k components; by
// Theorem 7 this costs min(n+2m−k, n) registers once the snapshot is
// implemented from registers.
type OneShot struct {
	params Params
	r      int
}

var _ Algorithm = (*OneShot)(nil)

// NewOneShot builds the algorithm for the given parameters.
func NewOneShot(p Params) (*OneShot, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &OneShot{params: p, r: p.N + 2*p.M - p.K}, nil
}

// NewOneShotComponents builds the algorithm with an explicit component count
// r instead of the paper's n+2m−k. Larger r preserves correctness (the
// pigeonhole argument of Lemma 4 only needs r ≥ n+2m−k); smaller r is used
// by the lower-bound experiments to exhibit failures. It returns an error
// only for non-positive r.
func NewOneShotComponents(p Params, r int) (*OneShot, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if r < 1 {
		return nil, fmt.Errorf("core: one-shot needs r ≥ 1 components, got %d", r)
	}
	return &OneShot{params: p, r: r}, nil
}

// Name implements Algorithm.
func (a *OneShot) Name() string { return "oneshot-fig3" }

// Params implements Algorithm.
func (a *OneShot) Params() Params { return a.params }

// Components returns the snapshot component count r.
func (a *OneShot) Components() int { return a.r }

// Spec implements Algorithm: one snapshot object with r components.
func (a *OneShot) Spec() shmem.Spec { return shmem.Spec{Snaps: []int{a.r}} }

// Registers implements Algorithm: min(n+2m−k, n) per Theorem 7.
func (a *OneShot) Registers() int { return min(a.r, a.params.N) }

// Anonymous implements Algorithm.
func (a *OneShot) Anonymous() bool { return false }

// NewProcess implements Algorithm.
func (a *OneShot) NewProcess(id int) Process {
	return &oneShotProc{alg: a, id: id}
}

type oneShotProc struct {
	alg      *OneShot
	id       int
	proposed bool
	att      oneShotAttempt // reused per Propose; no allocation per call
}

var _ Resumable = (*oneShotProc)(nil)

// Propose is the code of Figure 3 for the process with identifier id: the
// synchronous driver over the resumable machine.
func (p *oneShotProc) Propose(mem shmem.Mem, v int) int {
	return drive(p.Begin(v), mem)
}

// Begin implements Resumable: the one-shot guard plus the loop's initial
// state (pref ← v, i ← 0).
func (p *oneShotProc) Begin(v int) Attempt {
	if p.proposed {
		panic("core: one-shot Propose invoked twice on the same process")
	}
	p.proposed = true
	p.att = oneShotAttempt{p: p, pref: v, mine: Pair{Val: v, ID: p.id}}
	return &p.att
}

// oneShotAttempt carries the loop-local state of Figure 3 across Steps.
// mine is (pref, id) pre-boxed as a shmem.Value: the pair is written every
// iteration and compared against every scan entry, and boxing it once per
// preference (Begin and each adoption) instead of per Step keeps the
// iteration allocation-free.
type oneShotAttempt struct {
	p    *oneShotProc
	pref int
	i    int
	mine shmem.Value
}

// Step runs one iteration of the Figure 3 loop.
func (a *oneShotAttempt) Step(mem shmem.Mem) (int, bool) {
	p := a.p
	r, m := p.alg.r, p.alg.params.M

	// line 7: update ith component of A with (pref, id)
	mem.Update(0, a.i, a.mine)
	// line 8: s ← scan of A
	s := mem.Scan(0)

	// lines 9-10: if |{s[j]}| ≤ m and no component is ⊥, output the
	// value of the first duplicated pair and halt.
	if !hasNil(s) && distinctCount(s) <= m {
		if j1, ok := minDupIndex(s); ok {
			return s[j1].(Pair).Val, true
		}
		// Unreachable when r > m (pigeonhole); with an undersized
		// experimental r every entry can be distinct, in which case
		// the rule cannot fire.
		a.i = (a.i + 1) % r
		return 0, false
	}

	// lines 11-13: if my pair appears nowhere but position i and some
	// pair appears twice, adopt the first duplicated value.
	//
	// Lemma 5 states the loop dichotomy: each iteration either keeps
	// pref and advances i, or *changes* pref and keeps i. A duplicated
	// pair may carry the value the process already prefers (under
	// another identifier); adopting it would change nothing, so that
	// iteration must advance i instead — otherwise a solo process
	// facing stale duplicated pairs of its own value would spin
	// forever, contradicting Lemma 5.
	if allOthersForeign(s, a.i, a.mine) {
		if j1, ok := minDupIndex(s); ok && s[j1].(Pair).Val != a.pref {
			a.pref = s[j1].(Pair).Val
			a.mine = Pair{Val: a.pref, ID: p.id}
			return 0, false
		}
	}
	// line 14: otherwise advance to the next component.
	a.i = (a.i + 1) % r
	return 0, false
}
