package core

import (
	"fmt"
)

// Params are the three parameters of m-obstruction-free k-set agreement
// among n processes. The paper requires 1 ≤ m ≤ k < n: if k ≥ n the problem
// is trivial (output your own input), and if m > k it is unsolvable with
// registers (Lemma 1 of the paper).
type Params struct {
	N int // number of processes
	M int // obstruction degree: termination promised when ≤ M processes run
	K int // agreement degree: at most K distinct outputs per instance
}

// Validate reports whether the parameters are in the paper's range.
func (p Params) Validate() error {
	if p.N < 2 {
		return fmt.Errorf("core: need n ≥ 2 processes, got n=%d", p.N)
	}
	if p.M < 1 {
		return fmt.Errorf("core: need m ≥ 1, got m=%d", p.M)
	}
	if p.M > p.K {
		return fmt.Errorf("core: m-obstruction-free k-set agreement requires m ≤ k (Lemma 1), got m=%d k=%d", p.M, p.K)
	}
	if p.K >= p.N {
		return fmt.Errorf("core: k-set agreement is trivial for k ≥ n, got k=%d n=%d", p.K, p.N)
	}
	return nil
}

// Ell is ℓ = n−k+m, the number of "late" processes that the algorithms force
// to agree on at most m values.
func (p Params) Ell() int { return p.N - p.K + p.M }

// String renders the parameters as "n=..,m=..,k=..".
func (p Params) String() string {
	return fmt.Sprintf("n=%d,m=%d,k=%d", p.N, p.M, p.K)
}
