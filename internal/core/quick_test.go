package core_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"setagreement/internal/core"
	"setagreement/internal/sched"
	"setagreement/internal/sim"
	"setagreement/internal/spec"
)

// TestQuickHistoryRoundTrip: any int sequence survives the History encoding.
func TestQuickHistoryRoundTrip(t *testing.T) {
	prop := func(vals []int) bool {
		var h core.History
		for _, v := range vals {
			h = h.Append(v)
		}
		if h.Len() != len(vals) {
			return false
		}
		got := h.Values()
		for i, v := range vals {
			if got[i] != v || h.At(i+1) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickHistoryAppendIsInjective: distinct sequences encode distinctly.
func TestQuickHistoryAppendIsInjective(t *testing.T) {
	prop := func(a, b []int8) bool {
		ha, hb := core.History(""), core.History("")
		for _, v := range a {
			ha = ha.Append(int(v))
		}
		for _, v := range b {
			hb = hb.Append(int(v))
		}
		same := len(a) == len(b)
		if same {
			for i := range a {
				if a[i] != b[i] {
					same = false
					break
				}
			}
		}
		return (ha == hb) == same
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// quickConfig is a randomly drawn system configuration.
type quickConfig struct {
	p        core.Params
	algIdx   int
	seed     int64
	prefix   int
	instants int
}

// drawConfig builds a valid random configuration from a seed.
func drawConfig(r *rand.Rand) quickConfig {
	n := 2 + r.Intn(5) // 2..6
	k := 1 + r.Intn(n-1)
	m := 1 + r.Intn(k)
	return quickConfig{
		p:        core.Params{N: n, M: m, K: k},
		algIdx:   r.Intn(4),
		seed:     r.Int63(),
		prefix:   r.Intn(400),
		instants: 1 + r.Intn(2),
	}
}

// TestQuickSafetyUnderRandomSystems: validity and k-agreement hold for
// random (n, m, k), algorithm, schedule seed and contention prefix.
func TestQuickSafetyUnderRandomSystems(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		cfg := drawConfig(r)
		var (
			alg core.Algorithm
			err error
		)
		switch cfg.algIdx {
		case 0:
			alg, err = core.NewOneShot(cfg.p)
			cfg.instants = 1
		case 1:
			alg, err = core.NewRepeated(cfg.p)
		case 2:
			alg, err = core.NewAnonRepeated(cfg.p)
		default:
			alg, err = core.NewAnonOneShot(cfg.p)
			cfg.instants = 1
		}
		if err != nil {
			t.Logf("build %v: %v", cfg.p, err)
			return false
		}
		inputs := make([][]int, cfg.p.N)
		for i := range inputs {
			inputs[i] = make([]int, cfg.instants)
			for ti := range inputs[i] {
				inputs[i][ti] = 1000*(ti+1) + i
			}
		}
		memSpec, procs := core.System(alg, inputs)
		runner, err := sim.NewRunner(memSpec, procs)
		if err != nil {
			t.Logf("runner: %v", err)
			return false
		}
		defer runner.Abort()
		if _, err := runner.Run(sched.NewRandom(cfg.seed), cfg.prefix); err != nil {
			t.Logf("random: %v", err)
			return false
		}
		if _, err := runner.Run(&sched.Sequential{}, 3_000_000); err != nil {
			t.Logf("drain: %v", err)
			return false
		}
		outs := spec.Collect(runner)
		if err := spec.CheckAll(inputs, outs, cfg.p.K); err != nil {
			t.Logf("cfg %+v: %v", cfg, err)
			return false
		}
		return runner.AllDone()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickEllAndFormulas: algebraic identities of the parameter formulas.
func TestQuickEllAndFormulas(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		cfg := drawConfig(r)
		p := cfg.p
		// r_anon = (m+1)(n−k)+m² = (m+1)(ℓ−1)+1 (the appendix identity).
		anonR := (p.M+1)*(p.N-p.K) + p.M*p.M
		if anonR != (p.M+1)*(p.Ell()-1)+1 {
			return false
		}
		// The one-shot component count exceeds m (pigeonhole applies)
		// and the register cost never exceeds n.
		if p.N+2*p.M-p.K <= p.M {
			return false
		}
		return min(p.N+2*p.M-p.K, p.N) <= p.N
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
