package core

import (
	"fmt"

	"setagreement/internal/shmem"
)

// RTuple is the (value, identifier, instance, history) tuple the repeated
// algorithm of Figure 4 stores in snapshot components. A tuple with T == t
// is what the paper calls a "t-tuple".
type RTuple struct {
	Val int
	ID  int
	T   int
	His History
}

// String renders the tuple as "(v,pid,t,his)".
func (t RTuple) String() string {
	return fmt.Sprintf("(%d,p%d,t%d,%q)", t.Val, t.ID, t.T, string(t.His))
}

// Repeated is the m-obstruction-free repeated k-set agreement algorithm of
// Figure 4. Space matches the one-shot algorithm: a snapshot object with
// r = n+2m−k components, min(n+2m−k, n) registers (Theorem 8).
type Repeated struct {
	params Params
	r      int
}

var _ Algorithm = (*Repeated)(nil)

// NewRepeated builds the algorithm for the given parameters.
func NewRepeated(p Params) (*Repeated, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Repeated{params: p, r: p.N + 2*p.M - p.K}, nil
}

// NewRepeatedComponents builds the algorithm with an explicit component
// count r. Values below n+2m−k are used by the Theorem 2 lower-bound
// experiments; the algorithm then loses either k-agreement or liveness.
func NewRepeatedComponents(p Params, r int) (*Repeated, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if r < 1 {
		return nil, fmt.Errorf("core: repeated needs r ≥ 1 components, got %d", r)
	}
	return &Repeated{params: p, r: r}, nil
}

// Name implements Algorithm.
func (a *Repeated) Name() string { return "repeated-fig4" }

// Params implements Algorithm.
func (a *Repeated) Params() Params { return a.params }

// Components returns the snapshot component count r.
func (a *Repeated) Components() int { return a.r }

// Spec implements Algorithm.
func (a *Repeated) Spec() shmem.Spec { return shmem.Spec{Snaps: []int{a.r}} }

// Registers implements Algorithm: min(n+2m−k, n) per Theorem 8.
func (a *Repeated) Registers() int { return min(a.r, a.params.N) }

// Anonymous implements Algorithm.
func (a *Repeated) Anonymous() bool { return false }

// NewProcess implements Algorithm. The returned process owns the persistent
// local variables i, t and history of the pseudocode.
func (a *Repeated) NewProcess(id int) Process {
	p := &repeatedProc{alg: a, id: id}
	// The is-a-t-tuple predicate reads the live attempt's instance through p,
	// so one closure serves every Propose of the process instead of costing
	// an allocation per call.
	p.isT = func(v shmem.Value) bool {
		tu, ok := v.(RTuple)
		return ok && tu.T == p.att.t
	}
	return p
}

type repeatedProc struct {
	alg *Repeated
	id  int
	i   int                    // persistent component index
	t   int                    // persistent instance counter
	his History                // persistent output history
	att repeatedAttempt        // reused per Propose; no allocation per call
	isT func(shmem.Value) bool // is-a-t-tuple for the current attempt
}

var _ Resumable = (*repeatedProc)(nil)

// Propose is the code of Figure 4 for one invocation: the synchronous
// driver over the resumable machine.
func (p *repeatedProc) Propose(mem shmem.Mem, v int) int {
	return drive(p.Begin(v), mem)
}

// Begin implements Resumable: lines 8-11 — t ← t+1, the history replay
// shortcut (an Attempt that is done before its first Step), pref ← v.
func (p *repeatedProc) Begin(v int) Attempt {
	p.t++
	t := p.t
	p.att = repeatedAttempt{p: p, t: t, pref: v,
		mine: RTuple{Val: v, ID: p.id, T: t, His: p.his},
		isT:  p.isT}
	if p.his.Len() >= p.t {
		p.att.out, p.att.done = p.his.At(p.t), true
	}
	return &p.att
}

// repeatedAttempt carries the loop-local state of Figure 4 across Steps.
// mine is (pref, id, t, his) pre-boxed as a shmem.Value, built once per
// Propose (re-boxed on each adoption); isT is the process's shared
// is-a-t-tuple predicate. Both are consulted every iteration and neither
// costs the iteration an allocation. The history mine embeds is stable for
// the attempt: p.his only changes on the paths that decide and end the
// attempt.
type repeatedAttempt struct {
	p    *repeatedProc
	t    int
	pref int
	out  int
	done bool
	mine shmem.Value
	isT  func(shmem.Value) bool
}

// Step runs one iteration of the Figure 4 loop (or replays the decision
// Begin already reached).
func (a *repeatedAttempt) Step(mem shmem.Mem) (int, bool) {
	if a.done {
		return a.out, true
	}
	p, t := a.p, a.t
	r, m := p.alg.r, p.alg.params.M

	// line 13: update ith component with (pref, id, t, history).
	mem.Update(0, p.i, a.mine)
	// line 14: s ← scan of A.
	s := mem.Scan(0)

	// lines 15-16: shortcut — adopt the history of any process already
	// past instance t.
	for _, x := range s {
		if tu, ok := x.(RTuple); ok && tu.T > t {
			p.his = tu.His
			a.out, a.done = p.his.At(t), true
			return a.out, true
		}
	}

	// lines 17-21: decide if at most m distinct entries and no entry is
	// ⊥ or from an earlier instance. (Entries from later instances were
	// handled above, so every entry is a t-tuple.)
	if p.canDecide(s, t, m) {
		if j1, ok := minDupIndex(s); ok {
			w := s[j1].(RTuple).Val
			p.his = p.his.Append(w)
			a.out, a.done = w, true
			return w, true
		}
		// Only reachable with an experimentally undersized r ≤ m: no
		// duplicate to pick, keep looping.
	}

	// lines 22-24: adopt the value of the first duplicated t-tuple if my
	// own tuple appears nowhere else and some t-tuple is duplicated. As
	// in the one-shot algorithm, an iteration adopts only if it actually
	// changes pref (the dichotomy of Lemma 5, reused by Lemma 14);
	// otherwise it advances i.
	adopted := false
	if allOthersForeign(s, p.i, a.mine) {
		if j1, ok := minDupIndexWhere(s, a.isT); ok && s[j1].(RTuple).Val != a.pref {
			a.pref = s[j1].(RTuple).Val
			a.mine = RTuple{Val: a.pref, ID: p.id, T: t, His: p.his}
			adopted = true
		}
	}
	if !adopted {
		// line 25: advance to the next component.
		p.i = (p.i + 1) % r
	}
	return 0, false
}

// canDecide checks the condition of line 17: every component holds a tuple
// of instance ≥ t (neither ⊥ nor a stale t′<t tuple) and at most m distinct
// entries appear.
func (p *repeatedProc) canDecide(s []shmem.Value, t, m int) bool {
	for _, x := range s {
		tu, ok := x.(RTuple)
		if !ok || tu.T < t {
			return false
		}
	}
	return distinctCount(s) <= m
}
