package core

import "setagreement/internal/shmem"

// Attempt is one in-flight Propose of a resumable algorithm, cut at loop
// granularity: each Step runs one iteration of the pseudocode's retry loop
// (a bounded number of shared-memory operations, never a wait) and reports
// whether the invocation decided. An Attempt belongs to the Process that
// began it and is driven by a single caller at a time.
//
// Restartability is the contract that lets an event loop abandon a Step
// partway — unwound at a shared-memory operation — and later call Step
// again from the top: within one Step, every shared-memory operation
// precedes every mutation of state that survives the Step, and re-issuing
// those operations re-writes exactly what the abandoned execution wrote
// (the process's current tuple). A restarted Step is therefore
// indistinguishable from one extra iteration of the pseudocode's loop,
// which the algorithms' safety arguments already cover; only the step
// count pays.
type Attempt interface {
	// Step runs one loop iteration against mem. done=true means the
	// invocation decided on `decided`; the Attempt must not be stepped
	// again afterwards.
	Step(mem shmem.Mem) (decided int, done bool)
}

// Resumable is implemented by processes whose Propose is exposed as a
// resumable machine: Begin performs the invocation's process-local prelude
// (instance accounting, an immediate decision from the history shortcut)
// and returns the Attempt that runs its loop. Propose on such a process is
// exactly Begin followed by Step until done — the synchronous driver over
// the same machine an asynchronous engine multiplexes.
//
// Begin must be called at most once per Propose invocation (it advances
// persistent per-process state), and the returned Attempt is only valid
// until the next Begin. Every algorithm in this package is Resumable.
type Resumable interface {
	Process
	// Begin starts one Propose invocation with input v.
	Begin(v int) Attempt
}

// drive is the synchronous Propose driver shared by the algorithms: step
// the attempt to completion.
func drive(a Attempt, mem shmem.Mem) int {
	for {
		if out, done := a.Step(mem); done {
			return out
		}
	}
}
