package core

import "setagreement/internal/shmem"

// Helpers for analyzing scan results, shared by the three algorithms. All of
// them treat nil as the paper's ⊥.
//
// The scans these helpers see are r = n+2m−k components — a handful in any
// realistic configuration — so up to smallScanMax entries they run pairwise
// comparison loops: no map, no hashing of interface values, no allocation
// on the Propose hot path. Beyond that (only reachable through the
// experimental NewOneShotComponents/NewRepeatedComponents constructors) they
// fall back to the original map-based forms, which the equivalence tests in
// scanutil_test.go hold them to.

// smallScanMax bounds the pairwise paths: r² stays at most 4096 cheap
// interface comparisons, well below the constant cost of building a map.
const smallScanMax = 64

// distinctCount returns |{s[j] : 0 ≤ j < r}|, the number of distinct entries
// in the scan, counting ⊥ as one entry if present (the pseudocode's set
// includes whatever the components hold).
func distinctCount(s []shmem.Value) int {
	if len(s) > smallScanMax {
		return distinctCountMap(s)
	}
	n := 0
	for j, v := range s {
		seen := false
		for i := 0; i < j; i++ {
			if s[i] == v {
				seen = true
				break
			}
		}
		if !seen {
			n++
		}
	}
	return n
}

func distinctCountMap(s []shmem.Value) int {
	seen := make(map[shmem.Value]bool, len(s))
	for _, v := range s {
		seen[v] = true
	}
	return len(seen)
}

// hasNil reports whether any component is ⊥. (Already allocation-free for
// every r; listed here for completeness of the scan-analysis surface.)
func hasNil(s []shmem.Value) bool {
	for _, v := range s {
		if v == nil {
			return true
		}
	}
	return false
}

// minDupIndex returns the smallest j1 such that some j2 > j1 has
// s[j1] == s[j2] with s[j1] ≠ ⊥, and whether one exists.
func minDupIndex(s []shmem.Value) (int, bool) {
	if len(s) > smallScanMax {
		return minDupIndexMap(s)
	}
	for j1, v := range s {
		if v == nil {
			continue
		}
		for j2 := j1 + 1; j2 < len(s); j2++ {
			if s[j2] == v {
				return j1, true
			}
		}
	}
	return 0, false
}

func minDupIndexMap(s []shmem.Value) (int, bool) {
	first := make(map[shmem.Value]int, len(s))
	best, found := 0, false
	for j, v := range s {
		if v == nil {
			continue
		}
		if f, ok := first[v]; ok {
			if !found || f < best {
				best, found = f, true
			}
			continue
		}
		first[v] = j
	}
	return best, found
}

// minDupIndexWhere is minDupIndex restricted to entries satisfying pred.
// (Equal entries agree on pred, so testing the first occurrence suffices.)
func minDupIndexWhere(s []shmem.Value, pred func(shmem.Value) bool) (int, bool) {
	if len(s) > smallScanMax {
		return minDupIndexWhereMap(s, pred)
	}
	for j1, v := range s {
		if v == nil || !pred(v) {
			continue
		}
		for j2 := j1 + 1; j2 < len(s); j2++ {
			if s[j2] == v {
				return j1, true
			}
		}
	}
	return 0, false
}

func minDupIndexWhereMap(s []shmem.Value, pred func(shmem.Value) bool) (int, bool) {
	first := make(map[shmem.Value]int, len(s))
	best, found := 0, false
	for j, v := range s {
		if v == nil || !pred(v) {
			continue
		}
		if f, ok := first[v]; ok {
			if !found || f < best {
				best, found = f, true
			}
			continue
		}
		first[v] = j
	}
	return best, found
}

// allOthersForeign reports the pseudocode condition
// "∀j ≠ i, s[j] ∉ {⊥, mine}": every component other than i is a non-⊥ value
// different from mine.
func allOthersForeign(s []shmem.Value, i int, mine shmem.Value) bool {
	for j, v := range s {
		if j == i {
			continue
		}
		if v == nil || v == mine {
			return false
		}
	}
	return true
}
