package core

import "setagreement/internal/shmem"

// Helpers for analyzing scan results, shared by the three algorithms. All of
// them treat nil as the paper's ⊥.

// distinctCount returns |{s[j] : 0 ≤ j < r}|, the number of distinct entries
// in the scan, counting ⊥ as one entry if present (the pseudocode's set
// includes whatever the components hold).
func distinctCount(s []shmem.Value) int {
	seen := make(map[shmem.Value]bool, len(s))
	for _, v := range s {
		seen[v] = true
	}
	return len(seen)
}

// hasNil reports whether any component is ⊥.
func hasNil(s []shmem.Value) bool {
	for _, v := range s {
		if v == nil {
			return true
		}
	}
	return false
}

// minDupIndex returns the smallest j1 such that some j2 > j1 has
// s[j1] == s[j2] with s[j1] ≠ ⊥, and whether one exists.
func minDupIndex(s []shmem.Value) (int, bool) {
	first := make(map[shmem.Value]int, len(s))
	best, found := 0, false
	for j, v := range s {
		if v == nil {
			continue
		}
		if f, ok := first[v]; ok {
			if !found || f < best {
				best, found = f, true
			}
			continue
		}
		first[v] = j
	}
	return best, found
}

// minDupIndexWhere is minDupIndex restricted to entries satisfying pred.
func minDupIndexWhere(s []shmem.Value, pred func(shmem.Value) bool) (int, bool) {
	first := make(map[shmem.Value]int, len(s))
	best, found := 0, false
	for j, v := range s {
		if v == nil || !pred(v) {
			continue
		}
		if f, ok := first[v]; ok {
			if !found || f < best {
				best, found = f, true
			}
			continue
		}
		first[v] = j
	}
	return best, found
}

// allOthersForeign reports the pseudocode condition
// "∀j ≠ i, s[j] ∉ {⊥, mine}": every component other than i is a non-⊥ value
// different from mine.
func allOthersForeign(s []shmem.Value, i int, mine shmem.Value) bool {
	for j, v := range s {
		if j == i {
			continue
		}
		if v == nil || v == mine {
			return false
		}
	}
	return true
}
