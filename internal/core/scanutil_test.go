package core

import (
	"testing"

	"setagreement/internal/shmem"
)

func TestDistinctCount(t *testing.T) {
	tests := []struct {
		name string
		give []shmem.Value
		want int
	}{
		{name: "empty", give: nil, want: 0},
		{name: "all nil", give: []shmem.Value{nil, nil}, want: 1},
		{name: "mixed", give: []shmem.Value{Pair{1, 1}, Pair{1, 1}, Pair{2, 1}, nil}, want: 3},
		{name: "distinct", give: []shmem.Value{1, 2, 3}, want: 3},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := distinctCount(tt.give); got != tt.want {
				t.Fatalf("distinctCount = %d, want %d", got, tt.want)
			}
		})
	}
}

func TestMinDupIndex(t *testing.T) {
	tests := []struct {
		name      string
		give      []shmem.Value
		wantIdx   int
		wantFound bool
	}{
		{name: "no dup", give: []shmem.Value{1, 2, 3}, wantFound: false},
		{name: "nil not dup", give: []shmem.Value{nil, nil, 1}, wantFound: false},
		{name: "simple", give: []shmem.Value{7, 8, 7}, wantIdx: 0, wantFound: true},
		{name: "min of two dups", give: []shmem.Value{9, 8, 8, 9}, wantIdx: 0, wantFound: true},
		{name: "later dup", give: []shmem.Value{1, 8, 8}, wantIdx: 1, wantFound: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			idx, found := minDupIndex(tt.give)
			if found != tt.wantFound || (found && idx != tt.wantIdx) {
				t.Fatalf("minDupIndex = %d,%v want %d,%v", idx, found, tt.wantIdx, tt.wantFound)
			}
		})
	}
}

func TestMinDupIndexWhere(t *testing.T) {
	s := []shmem.Value{
		RTuple{Val: 1, ID: 1, T: 1},
		RTuple{Val: 1, ID: 1, T: 1},
		RTuple{Val: 2, ID: 2, T: 2},
		RTuple{Val: 2, ID: 2, T: 2},
	}
	isT2 := func(v shmem.Value) bool { return v.(RTuple).T == 2 }
	idx, found := minDupIndexWhere(s, isT2)
	if !found || idx != 2 {
		t.Fatalf("minDupIndexWhere = %d,%v want 2,true", idx, found)
	}
	isT3 := func(v shmem.Value) bool { return v.(RTuple).T == 3 }
	if _, found := minDupIndexWhere(s, isT3); found {
		t.Fatal("found duplicate where predicate excludes all")
	}
}

func TestAllOthersForeign(t *testing.T) {
	mine := Pair{Val: 5, ID: 3}
	tests := []struct {
		name string
		give []shmem.Value
		i    int
		want bool
	}{
		{name: "all foreign", give: []shmem.Value{Pair{1, 1}, mine, Pair{2, 2}}, i: 1, want: true},
		{name: "nil elsewhere", give: []shmem.Value{nil, mine, Pair{2, 2}}, i: 1, want: false},
		{name: "mine elsewhere", give: []shmem.Value{mine, mine, Pair{2, 2}}, i: 1, want: false},
		{name: "own slot ignored", give: []shmem.Value{Pair{1, 1}, nil, Pair{2, 2}}, i: 1, want: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := allOthersForeign(tt.give, tt.i, mine); got != tt.want {
				t.Fatalf("allOthersForeign = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestHasNil(t *testing.T) {
	if hasNil([]shmem.Value{1, 2}) {
		t.Fatal("hasNil on full scan")
	}
	if !hasNil([]shmem.Value{1, nil}) {
		t.Fatal("hasNil missed nil")
	}
}

// scanCases generates scans exercising the pairwise fast paths against the
// map fallbacks: all-⊥, all-equal, all-distinct, and pseudo-random mixes
// with duplicates at assorted positions, at sizes on both sides of
// smallScanMax.
func scanCases() [][]shmem.Value {
	sizes := []int{0, 1, 2, 7, smallScanMax, smallScanMax + 1, 100}
	var cases [][]shmem.Value
	for _, n := range sizes {
		allNil := make([]shmem.Value, n)
		cases = append(cases, allNil)
		same := make([]shmem.Value, n)
		distinct := make([]shmem.Value, n)
		mixed := make([]shmem.Value, n)
		for i := range same {
			same[i] = Pair{Val: 1, ID: 1}
			distinct[i] = Pair{Val: i, ID: i}
			// Deterministic mix: duplicates every third slot, ⊥ every
			// seventh, ids folded to force collisions.
			switch {
			case i%7 == 3:
				mixed[i] = nil
			case i%3 == 0:
				mixed[i] = RTuple{Val: i % 5, ID: i % 4, T: i % 2}
			default:
				mixed[i] = Pair{Val: i % 6, ID: i % 3}
			}
		}
		cases = append(cases, same, distinct, mixed)
	}
	return cases
}

// TestScanHelpersMatchMapVersions holds the allocation-free pairwise paths
// to the original map-based implementations over generated scans.
func TestScanHelpersMatchMapVersions(t *testing.T) {
	pred := func(v shmem.Value) bool {
		p, ok := v.(Pair)
		return ok && p.Val%2 == 0
	}
	for ci, s := range scanCases() {
		if got, want := distinctCount(s), distinctCountMap(s); got != want {
			t.Errorf("case %d (len %d): distinctCount = %d, map version = %d", ci, len(s), got, want)
		}
		gi, gok := minDupIndex(s)
		wi, wok := minDupIndexMap(s)
		if gok != wok || (gok && gi != wi) {
			t.Errorf("case %d (len %d): minDupIndex = %d,%v, map version = %d,%v", ci, len(s), gi, gok, wi, wok)
		}
		gi, gok = minDupIndexWhere(s, pred)
		wi, wok = minDupIndexWhereMap(s, pred)
		if gok != wok || (gok && gi != wi) {
			t.Errorf("case %d (len %d): minDupIndexWhere = %d,%v, map version = %d,%v", ci, len(s), gi, gok, wi, wok)
		}
	}
}

// TestScanHelpersSmallNoAlloc pins the satellite's goal: at realistic r the
// helpers allocate nothing.
func TestScanHelpersSmallNoAlloc(t *testing.T) {
	s := []shmem.Value{Pair{1, 1}, Pair{2, 2}, Pair{1, 1}, nil, Pair{3, 1}}
	pred := func(v shmem.Value) bool { _, ok := v.(Pair); return ok }
	if n := testing.AllocsPerRun(100, func() {
		distinctCount(s)
		hasNil(s)
		minDupIndex(s)
		minDupIndexWhere(s, pred)
		allOthersForeign(s, 1, Pair{1, 1})
	}); n != 0 {
		t.Fatalf("scan helpers allocate %v per run at r=5, want 0", n)
	}
}

func TestParamsValidate(t *testing.T) {
	tests := []struct {
		name    string
		give    Params
		wantErr bool
	}{
		{name: "consensus 3", give: Params{N: 3, M: 1, K: 1}},
		{name: "full range", give: Params{N: 10, M: 3, K: 7}},
		{name: "m exceeds k", give: Params{N: 5, M: 3, K: 2}, wantErr: true},
		{name: "k not below n", give: Params{N: 4, M: 1, K: 4}, wantErr: true},
		{name: "m zero", give: Params{N: 4, M: 0, K: 1}, wantErr: true},
		{name: "one process", give: Params{N: 1, M: 1, K: 1}, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.give.Validate()
			if (err != nil) != tt.wantErr {
				t.Fatalf("Validate(%v) err = %v, wantErr %v", tt.give, err, tt.wantErr)
			}
		})
	}
}

func TestEll(t *testing.T) {
	p := Params{N: 10, M: 2, K: 5}
	if got := p.Ell(); got != 7 {
		t.Fatalf("Ell = %d, want 7", got)
	}
}
