package core

import (
	"testing"

	"setagreement/internal/shmem"
)

func TestDistinctCount(t *testing.T) {
	tests := []struct {
		name string
		give []shmem.Value
		want int
	}{
		{name: "empty", give: nil, want: 0},
		{name: "all nil", give: []shmem.Value{nil, nil}, want: 1},
		{name: "mixed", give: []shmem.Value{Pair{1, 1}, Pair{1, 1}, Pair{2, 1}, nil}, want: 3},
		{name: "distinct", give: []shmem.Value{1, 2, 3}, want: 3},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := distinctCount(tt.give); got != tt.want {
				t.Fatalf("distinctCount = %d, want %d", got, tt.want)
			}
		})
	}
}

func TestMinDupIndex(t *testing.T) {
	tests := []struct {
		name      string
		give      []shmem.Value
		wantIdx   int
		wantFound bool
	}{
		{name: "no dup", give: []shmem.Value{1, 2, 3}, wantFound: false},
		{name: "nil not dup", give: []shmem.Value{nil, nil, 1}, wantFound: false},
		{name: "simple", give: []shmem.Value{7, 8, 7}, wantIdx: 0, wantFound: true},
		{name: "min of two dups", give: []shmem.Value{9, 8, 8, 9}, wantIdx: 0, wantFound: true},
		{name: "later dup", give: []shmem.Value{1, 8, 8}, wantIdx: 1, wantFound: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			idx, found := minDupIndex(tt.give)
			if found != tt.wantFound || (found && idx != tt.wantIdx) {
				t.Fatalf("minDupIndex = %d,%v want %d,%v", idx, found, tt.wantIdx, tt.wantFound)
			}
		})
	}
}

func TestMinDupIndexWhere(t *testing.T) {
	s := []shmem.Value{
		RTuple{Val: 1, ID: 1, T: 1},
		RTuple{Val: 1, ID: 1, T: 1},
		RTuple{Val: 2, ID: 2, T: 2},
		RTuple{Val: 2, ID: 2, T: 2},
	}
	isT2 := func(v shmem.Value) bool { return v.(RTuple).T == 2 }
	idx, found := minDupIndexWhere(s, isT2)
	if !found || idx != 2 {
		t.Fatalf("minDupIndexWhere = %d,%v want 2,true", idx, found)
	}
	isT3 := func(v shmem.Value) bool { return v.(RTuple).T == 3 }
	if _, found := minDupIndexWhere(s, isT3); found {
		t.Fatal("found duplicate where predicate excludes all")
	}
}

func TestAllOthersForeign(t *testing.T) {
	mine := Pair{Val: 5, ID: 3}
	tests := []struct {
		name string
		give []shmem.Value
		i    int
		want bool
	}{
		{name: "all foreign", give: []shmem.Value{Pair{1, 1}, mine, Pair{2, 2}}, i: 1, want: true},
		{name: "nil elsewhere", give: []shmem.Value{nil, mine, Pair{2, 2}}, i: 1, want: false},
		{name: "mine elsewhere", give: []shmem.Value{mine, mine, Pair{2, 2}}, i: 1, want: false},
		{name: "own slot ignored", give: []shmem.Value{Pair{1, 1}, nil, Pair{2, 2}}, i: 1, want: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := allOthersForeign(tt.give, tt.i, mine); got != tt.want {
				t.Fatalf("allOthersForeign = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestHasNil(t *testing.T) {
	if hasNil([]shmem.Value{1, 2}) {
		t.Fatal("hasNil on full scan")
	}
	if !hasNil([]shmem.Value{1, nil}) {
		t.Fatal("hasNil missed nil")
	}
}

func TestParamsValidate(t *testing.T) {
	tests := []struct {
		name    string
		give    Params
		wantErr bool
	}{
		{name: "consensus 3", give: Params{N: 3, M: 1, K: 1}},
		{name: "full range", give: Params{N: 10, M: 3, K: 7}},
		{name: "m exceeds k", give: Params{N: 5, M: 3, K: 2}, wantErr: true},
		{name: "k not below n", give: Params{N: 4, M: 1, K: 4}, wantErr: true},
		{name: "m zero", give: Params{N: 4, M: 0, K: 1}, wantErr: true},
		{name: "one process", give: Params{N: 1, M: 1, K: 1}, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.give.Validate()
			if (err != nil) != tt.wantErr {
				t.Fatalf("Validate(%v) err = %v, wantErr %v", tt.give, err, tt.wantErr)
			}
		})
	}
}

func TestEll(t *testing.T) {
	p := Params{N: 10, M: 2, K: 5}
	if got := p.Ell(); got != 7 {
		t.Fatalf("Ell = %d, want 7", got)
	}
}
