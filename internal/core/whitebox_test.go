package core

import (
	"testing"

	"setagreement/internal/shmem"
)

// scriptedMem feeds an algorithm canned scan results and records its
// updates, isolating single pseudocode branches from whole executions.
type scriptedMem struct {
	t       *testing.T
	scans   [][]shmem.Value
	next    int
	updates []struct {
		comp int
		val  shmem.Value
	}
	regs map[int]shmem.Value
	// readOverride pins Read results regardless of writes (models other
	// processes re-publishing a register, e.g. the H register of Fig 5).
	readOverride map[int]shmem.Value
}

var _ shmem.Mem = (*scriptedMem)(nil)

func newScriptedMem(t *testing.T, scans ...[]shmem.Value) *scriptedMem {
	return &scriptedMem{t: t, scans: scans, regs: make(map[int]shmem.Value)}
}

func (m *scriptedMem) Read(reg int) shmem.Value {
	if v, ok := m.readOverride[reg]; ok {
		return v
	}
	return m.regs[reg]
}

func (m *scriptedMem) Write(reg int, v shmem.Value) { m.regs[reg] = v }

func (m *scriptedMem) Update(snap, comp int, v shmem.Value) {
	if snap != 0 {
		m.t.Fatalf("unexpected snapshot %d", snap)
	}
	m.updates = append(m.updates, struct {
		comp int
		val  shmem.Value
	}{comp, v})
}

func (m *scriptedMem) Scan(int) []shmem.Value {
	if m.next >= len(m.scans) {
		m.t.Fatal("algorithm scanned more often than scripted")
	}
	s := m.scans[m.next]
	m.next++
	return s
}

// pairs builds a scan vector of Pair values; nil entries stay ⊥.
func pairs(ps ...any) []shmem.Value {
	out := make([]shmem.Value, len(ps))
	for i, p := range ps {
		if p != nil {
			out[i] = p
		}
	}
	return out
}

func TestOneShotDecidesFirstDuplicatedValue(t *testing.T) {
	// Figure 3 lines 9-10: no ⊥, ≤ m distinct pairs → output the value
	// of the smallest duplicated index.
	p := Params{N: 4, M: 2, K: 3}
	alg, err := NewOneShot(p) // r = 4+4-3 = 5
	if err != nil {
		t.Fatalf("NewOneShot: %v", err)
	}
	mem := newScriptedMem(t,
		pairs(Pair{9, 8}, Pair{5, 7}, Pair{9, 8}, Pair{5, 7}, Pair{5, 7}),
	)
	got := alg.NewProcess(0).Propose(mem, 1)
	if got != 9 { // min duplicated index is 0 (Pair{9,8} at 0 and 2)
		t.Fatalf("decided %d, want 9", got)
	}
	if len(mem.updates) != 1 || mem.updates[0].comp != 0 {
		t.Fatalf("updates = %v", mem.updates)
	}
}

func TestOneShotAdoptsDuplicatedValueWithoutAdvancing(t *testing.T) {
	// Figure 3 lines 11-13: my pair appears only at my position, another
	// pair is duplicated → adopt its value and stay at component i.
	p := Params{N: 3, M: 2, K: 2} // r = 5
	alg, err := NewOneShot(p)
	if err != nil {
		t.Fatalf("NewOneShot: %v", err)
	}
	mine := Pair{1, 0}
	mem := newScriptedMem(t,
		// Scan 1: 3 distinct pairs > m, my pair only at i=0, (7,2)
		// duplicated first → adopt 7, stay at i=0.
		pairs(mine, Pair{7, 2}, Pair{7, 2}, Pair{9, 1}, Pair{9, 1}),
		// Scan 2 (after re-updating i=0 with pref 7): 2 distinct ≤ m
		// → decide the first duplicated value, 7.
		pairs(Pair{7, 0}, Pair{7, 2}, Pair{7, 2}, Pair{7, 2}, Pair{7, 2}),
	)
	got := alg.NewProcess(0).Propose(mem, 1)
	if got != 7 {
		t.Fatalf("decided %d, want 7", got)
	}
	if len(mem.updates) != 2 {
		t.Fatalf("update count = %d, want 2", len(mem.updates))
	}
	if mem.updates[1].comp != 0 {
		t.Fatalf("adoption advanced i: second update at %d", mem.updates[1].comp)
	}
	if mem.updates[1].val != (Pair{7, 0}) {
		t.Fatalf("second update = %v, want adopted pref", mem.updates[1].val)
	}
}

func TestOneShotAdvanceWhenDuplicateCarriesOwnPref(t *testing.T) {
	// The Lemma 5 dichotomy regression test: the duplicated pair carries
	// the value I already prefer (under another id) — adopting would
	// change nothing, so the iteration must advance i instead of
	// spinning at i forever.
	p := Params{N: 4, M: 1, K: 3} // r = 3
	alg, err := NewOneShot(p)
	if err != nil {
		t.Fatalf("NewOneShot: %v", err)
	}
	mem := newScriptedMem(t,
		// pref is 7; the duplicate is (7, id=2): same value.
		pairs(Pair{7, 0}, Pair{7, 2}, Pair{7, 2}),
		// i advanced to 1; after update the memory converges.
		pairs(Pair{7, 0}, Pair{7, 0}, Pair{7, 2}),
		pairs(Pair{7, 0}, Pair{7, 0}, Pair{7, 0}),
	)
	got := alg.NewProcess(0).Propose(mem, 7)
	if got != 7 {
		t.Fatalf("decided %d, want 7", got)
	}
	if mem.updates[1].comp != 1 {
		t.Fatalf("i did not advance after same-value duplicate: updates %v", mem.updates)
	}
}

func TestOneShotNoDecisionWhileBottomPresent(t *testing.T) {
	// ⊥ anywhere blocks the decision even with one distinct pair.
	p := Params{N: 4, M: 1, K: 3}
	alg, err := NewOneShot(p)
	if err != nil {
		t.Fatalf("NewOneShot: %v", err)
	}
	mem := newScriptedMem(t,
		pairs(Pair{1, 0}, Pair{1, 0}, nil),        // ⊥ at 2: no decision, advance
		pairs(Pair{1, 0}, Pair{1, 0}, nil),        // still ⊥ (scripted), advance to 2
		pairs(Pair{1, 0}, Pair{1, 0}, Pair{1, 0}), // decide
	)
	got := alg.NewProcess(0).Propose(mem, 1)
	if got != 1 {
		t.Fatalf("decided %d, want 1", got)
	}
	if len(mem.updates) != 3 || mem.updates[1].comp != 1 || mem.updates[2].comp != 2 {
		t.Fatalf("updates = %v, want advance through components", mem.updates)
	}
}

func TestRepeatedShortcutAdoptsHigherInstanceHistory(t *testing.T) {
	// Figure 4 lines 15-16: a tuple from instance t' > t short-circuits
	// the whole loop; the process adopts that history and outputs its
	// t-th value.
	p := Params{N: 3, M: 1, K: 1} // r = 4
	alg, err := NewRepeated(p)
	if err != nil {
		t.Fatalf("NewRepeated: %v", err)
	}
	his := HistoryOf(42, 43)
	mem := newScriptedMem(t,
		pairs(RTuple{Val: 99, ID: 2, T: 3, His: his}, nil, nil, nil),
	)
	proc := alg.NewProcess(0)
	if got := proc.Propose(mem, 1); got != 42 {
		t.Fatalf("instance 1 decided %d, want 42 from adopted history", got)
	}
	// Instance 2 replays the adopted history without shared memory.
	mem2 := newScriptedMem(t)
	if got := proc.Propose(mem2, 5); got != 43 {
		t.Fatalf("instance 2 decided %d, want 43", got)
	}
	if len(mem2.updates) != 0 || mem2.next != 0 {
		t.Fatal("history replay touched shared memory")
	}
}

func TestRepeatedStaleTupleBlocksDecision(t *testing.T) {
	// Figure 4 line 17: a t' < t tuple anywhere forbids deciding even if
	// everything else matches.
	p := Params{N: 3, M: 1, K: 1} // r = 4
	alg, err := NewRepeated(p)
	if err != nil {
		t.Fatalf("NewRepeated: %v", err)
	}
	proc := alg.NewProcess(0)
	stale := RTuple{Val: 9, ID: 2, T: 1, His: ""}
	// First Propose: decide instance 1 normally (all own tuples).
	mem1 := newScriptedMem(t,
		pairs(RTuple{Val: 5, ID: 0, T: 1, His: ""}, nil, nil, nil),
		pairs(RTuple{Val: 5, ID: 0, T: 1, His: ""}, RTuple{Val: 5, ID: 0, T: 1, His: ""}, nil, nil),
		pairs(RTuple{Val: 5, ID: 0, T: 1, His: ""}, RTuple{Val: 5, ID: 0, T: 1, His: ""}, RTuple{Val: 5, ID: 0, T: 1, His: ""}, nil),
		pairs(RTuple{Val: 5, ID: 0, T: 1, His: ""}, RTuple{Val: 5, ID: 0, T: 1, His: ""}, RTuple{Val: 5, ID: 0, T: 1, His: ""}, RTuple{Val: 5, ID: 0, T: 1, His: ""}),
	)
	if got := proc.Propose(mem1, 5); got != 5 {
		t.Fatalf("instance 1 decided %d", got)
	}
	// Second Propose: one stale t=1 tuple blocks; once it is gone,
	// decide.
	t2 := RTuple{Val: 7, ID: 0, T: 2, His: HistoryOf(5)}
	mem2 := newScriptedMem(t,
		pairs(t2, t2, t2, stale), // stale blocks → advance
		pairs(t2, t2, t2, t2),    // clean → decide
	)
	if got := proc.Propose(mem2, 7); got != 7 {
		t.Fatalf("instance 2 decided %d, want 7", got)
	}
	if len(mem2.updates) != 2 {
		t.Fatalf("updates = %v, want block-then-decide", mem2.updates)
	}
}

func TestAnonymousHelpers(t *testing.T) {
	s := []shmem.Value{
		ATuple{Val: 5, T: 2, His: "1"},
		ATuple{Val: 5, T: 2, His: "2"}, // same value, different history
		ATuple{Val: 9, T: 2, His: "1"},
		ATuple{Val: 5, T: 2, His: "1"},
	}
	if !allTTuples(s, 2) || allTTuples(s, 1) {
		t.Fatal("allTTuples misclassified")
	}
	if got := mostFrequentValue(s); got != 5 {
		t.Fatalf("mostFrequentValue = %d, want 5", got)
	}
	if got := countValT(s, 5, 2); got != 3 {
		t.Fatalf("countValT = %d, want 3", got)
	}
	if got := countValT(s, 5, 1); got != 0 {
		t.Fatalf("countValT wrong instance = %d", got)
	}
	if v, ok := dominantValue(s, 2, 3); !ok || v != 5 {
		t.Fatalf("dominantValue = %d,%v want 5,true", v, ok)
	}
	if _, ok := dominantValue(s, 2, 4); ok {
		t.Fatal("dominantValue found a value above its count")
	}
	// Tie break by first occurrence.
	tie := []shmem.Value{
		ATuple{Val: 9, T: 1}, ATuple{Val: 5, T: 1},
		ATuple{Val: 5, T: 1}, ATuple{Val: 9, T: 1},
	}
	if got := mostFrequentValue(tie); got != 9 {
		t.Fatalf("tie break = %d, want first-seen 9", got)
	}
}

func TestAnonymousAdoptsDominantValue(t *testing.T) {
	// Figure 5 lines 27-28: pref held by < ℓ components, another value by
	// ≥ ℓ → adopt; i advances every iteration regardless.
	p := Params{N: 4, M: 1, K: 2} // ℓ = 3, r = 2*2+1 = 5
	alg, err := NewAnonOneShot(p)
	if err != nil {
		t.Fatalf("NewAnonOneShot: %v", err)
	}
	other := ATuple{Val: 7, T: 1, His: ""}
	mem := newScriptedMem(t,
		// 4 copies of 7 (≥ ℓ=3), my 1 appears once (< ℓ) → adopt 7.
		pairs(ATuple{Val: 1, T: 1}, other, other, other, other),
		// Now everything is 7-tuples: 1 distinct ≤ m → decide 7.
		pairs(other, other, other, other, other),
	)
	got := alg.NewProcess(-1).Propose(mem, 1)
	if got != 7 {
		t.Fatalf("decided %d, want 7", got)
	}
	if mem.updates[1].comp != 1 {
		t.Fatalf("i did not advance: updates %v", mem.updates)
	}
	if mem.updates[1].val != (ATuple{Val: 7, T: 1, His: ""}) {
		t.Fatalf("second update %v, want adopted pref 7", mem.updates[1].val)
	}
}

func TestAnonymousHRegisterShortcut(t *testing.T) {
	// Figure 5 thread 2: |H| ≥ t lets a process adopt H's t-th value
	// without touching the snapshot.
	p := Params{N: 4, M: 1, K: 2}
	alg, err := NewAnonRepeated(p)
	if err != nil {
		t.Fatalf("NewAnonRepeated: %v", err)
	}
	mem := newScriptedMem(t) // any Scan call would fail the test
	// H is kept at a long history by (modeled) fast processes, surviving
	// this process's own line-9 writes.
	mem.readOverride = map[int]shmem.Value{0: HistoryOf(11, 12)}
	proc := alg.NewProcess(-1)
	if got := proc.Propose(mem, 1); got != 11 {
		t.Fatalf("instance 1 decided %d, want 11 from H", got)
	}
	if got := proc.Propose(mem, 2); got != 12 {
		t.Fatalf("instance 2 decided %d, want 12 from H", got)
	}
	if len(mem.updates) != 0 {
		t.Fatal("H shortcut touched the snapshot")
	}
	// The process published its (empty, then grown) history to H at the
	// start of each Propose... the second Propose wrote its length-1
	// history over H? No: it wrote before reading H — check the write
	// protocol happened (register 0 written twice).
	if mem.regs[0] == nil {
		t.Fatal("H was never written")
	}
}
