package engine_test

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"setagreement/internal/engine"
)

func TestSubmitBatchRunsAll(t *testing.T) {
	e := engine.New(2)
	defer e.Close()
	const proposals = 64
	var done sync.WaitGroup
	done.Add(proposals)
	ps := make([]engine.Proposal, proposals)
	for i := range ps {
		ps[i] = newTestProposal(func(w engine.Wake) (engine.Park, bool) {
			if w.Reason != engine.WakeStart {
				t.Errorf("batch proposal first-advanced with reason %v", w.Reason)
			}
			done.Done()
			return engine.Park{}, false
		})
	}
	e.SubmitBatch(ps)
	waitWG(t, &done)
	deadline := time.Now().Add(10 * time.Second)
	for e.InFlight() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("InFlight() = %d after the whole batch finished", e.InFlight())
		}
		runtime.Gosched()
	}
}

func TestSubmitBatchEmptyIsNoOp(t *testing.T) {
	e := engine.New(1)
	defer e.Close()
	e.SubmitBatch(nil)
	e.SubmitBatch([]engine.Proposal{})
	if got := e.InFlight(); got != 0 {
		t.Fatalf("InFlight() = %d after empty batches, want 0", got)
	}
}

func TestSubmitBatchPreservesOrderBeyondWorkers(t *testing.T) {
	// With one worker held by a gate, the rest of the batch must drain in
	// submission order (fresh submissions are FIFO; only notify wakes are
	// reordered).
	e := engine.New(1)
	defer e.Close()
	gate := make(chan struct{})
	var order []int
	var mu sync.Mutex
	var done sync.WaitGroup
	const tail = 8
	done.Add(tail)
	ps := make([]engine.Proposal, 0, tail+1)
	ps = append(ps, newTestProposal(func(engine.Wake) (engine.Park, bool) {
		<-gate
		return engine.Park{}, false
	}))
	for i := 0; i < tail; i++ {
		i := i
		ps = append(ps, newTestProposal(func(engine.Wake) (engine.Park, bool) {
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			done.Done()
			return engine.Park{}, false
		}))
	}
	e.SubmitBatch(ps)
	close(gate)
	waitWG(t, &done)
	mu.Lock()
	defer mu.Unlock()
	for i, got := range order {
		if got != i {
			t.Fatalf("batch drained out of order: position %d ran proposal %d (order %v)", i, got, order)
		}
	}
}

func TestSubmitBatchClosedAbortsAll(t *testing.T) {
	e := engine.New(2)
	e.Close()
	const proposals = 4
	ps := make([]engine.Proposal, proposals)
	aborted := make([]*testProposal, proposals)
	for i := range ps {
		p := newTestProposal(func(engine.Wake) (engine.Park, bool) {
			t.Error("proposal advanced on a closed engine")
			return engine.Park{}, false
		})
		ps[i], aborted[i] = p, p
	}
	e.SubmitBatch(ps)
	for i, p := range aborted {
		select {
		case err := <-p.aborted:
			if !errors.Is(err, engine.ErrClosed) {
				t.Fatalf("proposal %d aborted with %v, want ErrClosed", i, err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("proposal %d not aborted by closed-engine SubmitBatch", i)
		}
	}
	if got := e.InFlight(); got != 0 {
		t.Fatalf("InFlight() = %d after closed-engine batch, want 0", got)
	}
}

// orderNotifier is a Notifier whose Waiters() gauge is preset by the test:
// the wake-ordering test parks proposals on notifiers of differing
// contention and fires their registrations by hand.
type orderNotifier struct {
	waiters int64

	mu   sync.Mutex
	ver  uint64
	regs []func()
}

func (n *orderNotifier) Version() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.ver
}

func (n *orderNotifier) AwaitChange(ctx context.Context, v uint64) (int, error) {
	return 0, ctx.Err()
}

func (n *orderNotifier) RegisterWake(v uint64, fn func()) (cancel func()) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.ver > v {
		fn()
		return func() {}
	}
	n.regs = append(n.regs, fn)
	return func() {}
}

func (n *orderNotifier) Waiters() int64 { return n.waiters }

// publish advances the version and fires every registration.
func (n *orderNotifier) publish() {
	n.mu.Lock()
	n.ver++
	regs := n.regs
	n.regs = nil
	n.mu.Unlock()
	for _, fn := range regs {
		fn()
	}
}

func TestWakeBatchAdvancesLeastContendedFirst(t *testing.T) {
	// Three proposals park on objects of contention 5, 1 and 3. While the
	// single worker is held busy, one "publish" wakes all three; the engine
	// must drain the wake batch least-contended-object-first (1, 3, 5), not
	// in wake-arrival order (5, 1, 3).
	e := engine.New(1)
	defer e.Close()
	notifiers := []*orderNotifier{{waiters: 5}, {waiters: 1}, {waiters: 3}}
	var mu sync.Mutex
	var order []int64
	var done sync.WaitGroup
	done.Add(len(notifiers))
	for _, n := range notifiers {
		n := n
		e.Submit(newTestProposal(func(w engine.Wake) (engine.Park, bool) {
			if w.Reason == engine.WakeStart {
				return engine.Park{Notifier: n, Version: n.Version(), Cap: time.Hour}, true
			}
			if w.Reason != engine.WakeNotify {
				t.Errorf("woken with reason %v, want notify", w.Reason)
			}
			mu.Lock()
			order = append(order, n.waiters)
			mu.Unlock()
			done.Done()
			return engine.Park{}, false
		}))
	}
	awaitParked(t, e, int64(len(notifiers)))
	// Hold the only worker so the wakes pile up on the run queue instead of
	// being picked up one by one as they arrive.
	gate := make(chan struct{})
	released := make(chan struct{})
	e.Submit(newTestProposal(func(engine.Wake) (engine.Park, bool) {
		close(released)
		<-gate
		return engine.Park{}, false
	}))
	<-released
	for _, n := range notifiers {
		n.publish()
	}
	// All three wakes must be queued before the worker frees up.
	deadline := time.Now().Add(10 * time.Second)
	for e.Parked() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("wakes did not drain the parked set (still %d parked)", e.Parked())
		}
		runtime.Gosched()
	}
	close(gate)
	waitWG(t, &done)
	mu.Lock()
	defer mu.Unlock()
	want := []int64{1, 3, 5}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("wake batch advanced in contention order %v, want %v (least first)", order, want)
		}
	}
}

// countProposal is the cheapest possible proposal, for submit-side
// benchmarks: it finishes on its first advance.
type countProposal struct{ done *atomic.Int64 }

func (p *countProposal) Advance(engine.Wake) (engine.Park, bool) {
	p.done.Add(1)
	return engine.Park{}, false
}
func (p *countProposal) Abort(error) { p.done.Add(1) }

// BenchmarkEngineSubmit measures the engine-side submit cost per proposal:
// one Submit call per proposal (mode=loop) against one SubmitBatch for the
// whole slice (mode=batch), at batch sizes around the amortization target.
// The proposals are no-ops, so the numbers isolate the handoff itself —
// task allocation, the in-flight counter and the run-queue lock.
func BenchmarkEngineSubmit(b *testing.B) {
	for _, size := range []int{8, 64, 256} {
		for _, mode := range []string{"loop", "batch"} {
			b.Run(mode+"/size="+itoa(size), func(b *testing.B) {
				e := engine.New(4)
				defer e.Close()
				var done atomic.Int64
				ps := make([]engine.Proposal, size)
				for i := range ps {
					ps[i] = &countProposal{done: &done}
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if mode == "loop" {
						for _, p := range ps {
							e.Submit(p)
						}
					} else {
						e.SubmitBatch(ps)
					}
					b.StopTimer()
					want := int64(i+1) * int64(size)
					for done.Load() < want {
						runtime.Gosched()
					}
					b.StartTimer()
				}
				b.StopTimer()
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*size), "ns/proposal")
			})
		}
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
