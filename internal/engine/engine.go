// Package engine is the notifier-driven proposal multiplexer: a small
// worker pool that drives many resumable proposals, parking each one that
// would block on a completion-style wake registration
// (shmem.Notifier.RegisterWake) plus a timeout timer and an optional
// context watch — all callbacks, no goroutines — so N stalled proposals
// across any number of agreement objects cost O(workers) goroutines
// instead of N; with every proposal parked they cost none at all, the
// drain goroutines being transient.
//
// The engine is deadlock-free by the very property the paper proves:
// m-obstruction-freedom. A proposal a worker advances while every other
// proposal is parked or queued is running solo, and a solo run always
// decides — so a worker can never be stuck holding a proposal that needs
// another queued proposal to move. Beyond m concurrently running
// proposals the usual caveat applies, exactly as for goroutine-per-Propose
// execution: progress then comes from the park caps (a parked proposal
// resumes stepping after its cap even if no wakeup arrives), which bound
// every wait just like the backoff schedule bounds a blind sleep.
//
// The engine knows nothing about agreement, codecs or handles: a Proposal
// is anything that can be advanced until it either finishes or asks to be
// parked. The public package's async layer adapts its propose machinery to
// this interface.
package engine

import (
	"container/heap"
	"context"
	"errors"
	"runtime"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	"setagreement/internal/shmem"
)

// ErrClosed is the error parked and queued proposals are aborted with when
// the engine shuts down, and the abort reason for submissions to a closed
// engine.
var ErrClosed = errors.New("engine: closed")

// WakeReason says why a proposal is being advanced.
type WakeReason int

const (
	// WakeStart is the first advance after Submit.
	WakeStart WakeReason = iota
	// WakeNotify means the memory the proposal parked on changed.
	WakeNotify
	// WakeTimeout means the park's cap elapsed with no change — the
	// liveness fallback, equivalent to a blind backoff sleep ending.
	WakeTimeout
	// WakeCancel means the proposal's context ended while it was parked.
	WakeCancel
)

// String names the reason.
func (r WakeReason) String() string {
	switch r {
	case WakeStart:
		return "start"
	case WakeNotify:
		return "notify"
	case WakeTimeout:
		return "timeout"
	case WakeCancel:
		return "cancel"
	default:
		return "wake(?)"
	}
}

// Wake describes one resumption: the reason and, for resumptions of a
// parked proposal, how long it was parked. The proposal uses it for its
// own wait accounting.
type Wake struct {
	Reason WakeReason
	Waited time.Duration
	// Pos is the run-queue position the wake placed the proposal at: 0
	// when it was handed directly to a drain goroutine, the insertion
	// index otherwise (for batch submissions, the proposal's index within
	// its batch). Advisory, for observability only — by the time the
	// proposal actually runs the queue ahead of it has drained.
	Pos int
	// Leader marks at most one WakeNotify resumption among those the
	// engine is advancing at any moment. When a publish wakes a batch of
	// parked proposals, the leader is the natural candidate to perform
	// the shared scan and publish it in the combining slot while the rest
	// adopt first (see shmem.ViewCombiner); the engine elects it so the
	// batch does not all race to scan. Purely advisory — a non-leader
	// that finds no view to adopt scans privately, and correctness never
	// depends on who is leader.
	Leader bool
}

// Park describes how a proposal that would block wants to wait.
type Park struct {
	// Notifier, when non-nil, wakes the proposal at the first mutation
	// that takes the memory's version past Version. Nil parks on the cap
	// alone (a blind timed park, for memories without the capability).
	Notifier shmem.Notifier
	// Version is the change version the proposal has already seen.
	Version uint64
	// Cap bounds the park: with no wakeup by then, the proposal resumes
	// stepping anyway. Must be positive; it is what keeps a park from
	// outliving vanished contention.
	Cap time.Duration
	// Ctx, when non-nil, wakes the proposal when the context ends, so
	// cancellation interrupts a park as promptly as it interrupts a
	// blocking wait.
	Ctx context.Context
}

// Proposal is the engine's view of one multiplexed operation.
type Proposal interface {
	// Advance runs the proposal until it finishes or would block.
	// parked=false means the proposal is done — it has already delivered
	// its own outcome (resolved its future); the engine merely drops it.
	// parked=true hands the engine the park descriptor. Advance runs on
	// an engine worker; it must return rather than block, and must not
	// panic.
	Advance(w Wake) (park Park, parked bool)
	// Abort tells a proposal the engine will never advance again (it was
	// queued or parked at engine shutdown, or submitted after it) to
	// deliver err as its outcome. Called at most once, and never after
	// Advance reported done.
	Abort(err error)
}

// Observer receives engine-level lifecycle callbacks: drain-goroutine
// spawns and exits, batch-descriptor expansions and engine shutdown.
// Implementations must be safe for concurrent use and must not block —
// callbacks run on drain goroutines and inside Close. The public
// package's obs.Collector implements it; a nil Observer (the default)
// disables the callbacks entirely.
type Observer interface {
	// DrainStarted: a transient drain goroutine spawned.
	DrainStarted()
	// DrainStopped: a drain goroutine exited, releasing its slot.
	DrainStopped()
	// BatchExpanded: one batch descriptor of n proposals was materialized
	// into its per-proposal task slab.
	BatchExpanded(n int)
	// EngineClosed: the engine shut down, aborting the given number of
	// queued and parked proposals.
	EngineClosed(aborted int)
}

// task states, kept with the pending wake reason and the park generation
// in one atomic word so racing wakers, the parker and the closer agree on
// a single transition. Layout: bits 0-2 state, bits 3-5 reason, bits 6+
// the generation — incremented at every park, captured by that park's
// wake sources, and part of every CAS. The generation is what makes a
// stale wake inert end to end: a source of park N that was popped or
// drained before revocation could otherwise land after the task has
// re-parked as N+1 and cut that park short; with the generation in the
// CASed word, its compare can only match its own park.
const (
	stQueued    uint64 = iota // in the run queue; reason bits say why
	stRunning                 // a worker is inside Advance
	stParking                 // Advance asked to park; wake sources arming
	stParked                  // parked; wake sources armed
	stDead                    // aborted; never advanced again
	stMask      = 7
	reasonShift = 3
	genShift    = 6
)

// word assembles a task state word.
func word(state uint64, reason WakeReason, gen uint64) uint64 {
	return state | uint64(reason)<<reasonShift | gen<<genShift
}

// task wraps one submitted proposal with its park bookkeeping. The wake
// source fields are owned by whichever goroutine holds the task through a
// state transition on st (all transitions are CASes on the one atomic, so
// ownership hands off with it); wakers never touch them — a waker only
// CASes st and enqueues.
type task struct {
	p  Proposal
	st atomic.Uint64

	// batch, when non-nil, marks this task as an unexpanded batch
	// descriptor: it carries SubmitBatch's proposals instead of running one
	// itself. The first drain goroutine to dequeue it materializes the
	// per-proposal task slab (see expand) — submission stays O(1) in batch
	// size on the submitter's side of the handoff.
	batch []Proposal

	// gauge is the contention of the object the task last parked on —
	// Notifier.Waiters() sampled at park time, 0 for blind parks. It is
	// atomic because the run-queue insert reads it for queued tasks while
	// the parker (a different goroutine across parks) wrote it; advisory
	// only, so a stale sample costs ordering quality, never correctness.
	gauge atomic.Int64

	// pos is the run-queue position of the task's latest enqueue, reported
	// to the proposal as Wake.Pos. Written by whoever enqueues the task —
	// under e.mu for queue inserts, before the go statement for direct
	// spawns — both of which happen-before the drain's read in run.
	pos int32

	parkStart  time.Time
	cancelWake func()      // notifier registration, nil when none
	cap        *capEntry   // deadline in the engine's timer wheel
	stopCtx    func() bool // context watch, nil when none
}

// Engine multiplexes proposals over at most `workers` concurrent drain
// goroutines. The goroutines are transient: one is spawned when work
// arrives and none is free, and it exits when the run queue is empty — so
// an engine whose proposals are all parked (or that is idle) holds zero
// goroutines, and the configured worker count is a concurrency ceiling,
// not a standing pool. An Engine is safe for concurrent use.
type Engine struct {
	workers int

	mu     sync.Mutex
	queue  []*task
	parked map[*task]struct{}
	active int // drain goroutines currently alive (≤ workers)
	closed bool

	inFlight atomic.Int64
	wg       sync.WaitGroup

	// leadFree elects the combining leader among notify-woken proposals:
	// the worker that claims it (CAS true→false) advances its proposal
	// with Wake.Leader set and releases it when the Advance returns, so
	// exactly one notify wake is mid-advance as leader at any moment.
	leadFree atomic.Bool

	caps capWheel

	// obsv, when non-nil, receives the engine's lifecycle callbacks.
	// Installed by SetObserver before the engine serves traffic, never
	// mutated afterwards.
	obsv Observer

	// parkHook, when non-nil, is called at each boundary of the park
	// protocol (see ParkStage). Test seam only; set before any Submit.
	parkHook func(ParkStage)
}

// ParkStage identifies a boundary inside the park protocol at which a
// concurrent publish could race the parking task. The stages let a
// deterministic test drive a wakeup into each window of park() in turn —
// including the window between the decision to park and the wake-source
// registration, which the notifier's version re-check is what keeps from
// losing wakeups.
type ParkStage int

const (
	// ParkRegistered: the task has entered the parked set but no wake
	// source is armed yet. A publish here is only caught by the version
	// re-check inside Notifier.RegisterWake.
	ParkRegistered ParkStage = iota
	// ParkArmed: all wake sources are armed, final stParking→stParked CAS
	// not yet attempted. A publish here fires the registered callback,
	// which CASes the still-parking task to queued.
	ParkArmed
	// ParkCommitted: the final CAS succeeded; the task is parked and any
	// publish from now on is an ordinary wake.
	ParkCommitted
	// ParkAbandoned: the final CAS failed because a wake source (or Close)
	// moved the task first; the parker is about to re-enqueue or abort it.
	ParkAbandoned
)

// String names the stage.
func (s ParkStage) String() string {
	switch s {
	case ParkRegistered:
		return "registered"
	case ParkArmed:
		return "armed"
	case ParkCommitted:
		return "committed"
	case ParkAbandoned:
		return "abandoned"
	default:
		return "stage(?)"
	}
}

// SetParkHook installs a test seam invoked at each ParkStage boundary of
// every park. It must be installed before proposals are submitted and the
// hook must be safe to call from drain goroutines. Passing nil removes it.
func (e *Engine) SetParkHook(fn func(ParkStage)) { e.parkHook = fn }

// SetObserver installs the engine's lifecycle observer. Like SetParkHook
// it must be installed before proposals are submitted; the publisher of
// the engine pointer (the lazy engineRef in the public package) provides
// the happens-before edge to the drain goroutines that read it.
func (e *Engine) SetObserver(o Observer) { e.obsv = o }

// New builds an engine with the given worker count; workers < 1 selects
// GOMAXPROCS.
func New(workers int) *Engine {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	e := &Engine{workers: workers, parked: make(map[*task]struct{})}
	e.leadFree.Store(true)
	e.caps.e = e
	return e
}

// stopSources revokes a task's unfired wake sources. Callable only by the
// goroutine that owns the task through its current state transition.
func (e *Engine) stopSources(t *task) {
	if t.cancelWake != nil {
		t.cancelWake()
		t.cancelWake = nil
	}
	if t.cap != nil {
		e.caps.remove(t.cap)
		t.cap = nil
	}
	if t.stopCtx != nil {
		t.stopCtx()
		t.stopCtx = nil
	}
}

// Workers returns the worker-pool size.
func (e *Engine) Workers() int { return e.workers }

// InFlight returns the number of submitted proposals not yet finished or
// aborted — running, queued and parked together.
func (e *Engine) InFlight() int64 { return e.inFlight.Load() }

// Parked returns the number of proposals currently parked (waiting on a
// wake source rather than holding a worker).
func (e *Engine) Parked() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return int64(len(e.parked))
}

// Submit hands the engine one proposal. On a closed engine the proposal is
// aborted with ErrClosed before Submit returns.
func (e *Engine) Submit(p Proposal) {
	t := &task{p: p}
	t.st.Store(word(stQueued, WakeStart, 0))
	e.inFlight.Add(1)
	e.enqueue(t)
}

// SubmitBatch hands the engine many proposals through one run-queue
// transition, io_uring style: the submitter enqueues a single batch
// descriptor — one allocation, one in-flight move, one lock acquisition,
// at most one goroutine spawn, whatever the batch size — and rings the
// bell once. The first drain goroutine to reach the descriptor expands it
// into the per-proposal task slab on the engine's side of the handoff
// (see expand), so the materialization cost overlaps useful work instead
// of serializing the submitter. The batch's proposals start in submission
// order. On a closed engine every proposal is aborted with ErrClosed
// before SubmitBatch returns. The slice is owned by the engine once
// submitted; the caller must not reuse it.
func (e *Engine) SubmitBatch(ps []Proposal) {
	if len(ps) == 0 {
		return
	}
	e.inFlight.Add(int64(len(ps)))
	t := &task{batch: ps}
	t.st.Store(word(stQueued, WakeStart, 0))
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		e.abort(t)
		return
	}
	if e.active < e.workers {
		e.active++
		e.wg.Add(1)
		e.mu.Unlock()
		t.pos = 0
		go e.drain(t)
		return
	}
	t.pos = int32(len(e.queue))
	e.queue = append(e.queue, t)
	e.mu.Unlock()
}

// expand materializes a batch descriptor into its per-proposal task slab:
// the tail of the batch is queued (spawning drains up to the worker
// ceiling for it), and the head task is returned for the calling drain to
// run directly. Returns nil if the engine closed first — the batch is
// then fully aborted and the caller releases its slot.
func (e *Engine) expand(bt *task) *task {
	ps := bt.batch
	bt.batch = nil
	tasks := make([]task, len(ps))
	for i := range tasks {
		tasks[i].p = ps[i]
		tasks[i].pos = int32(i) // batch-relative position, reported via Wake.Pos
		tasks[i].st.Store(word(stQueued, WakeStart, 0))
	}
	if o := e.obsv; o != nil {
		o.BatchExpanded(len(ps))
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		for i := range tasks {
			e.abort(&tasks[i])
		}
		return nil
	}
	spawn := min(e.workers-e.active, len(tasks)-1)
	e.active += spawn
	e.wg.Add(spawn)
	for i := 1 + spawn; i < len(tasks); i++ {
		e.queue = append(e.queue, &tasks[i])
	}
	e.mu.Unlock()
	for i := 0; i < spawn; i++ {
		go e.drain(&tasks[1+i])
	}
	return &tasks[0]
}

// enqueue puts a woken (or fresh) task on the run queue, spawning a drain
// goroutine when one is allowed and none would pick it up. On a closed
// engine the task is aborted instead.
func (e *Engine) enqueue(t *task) {
	e.mu.Lock()
	delete(e.parked, t)
	if e.closed {
		e.mu.Unlock()
		e.abort(t)
		return
	}
	if e.active < e.workers {
		e.active++
		e.wg.Add(1)
		e.mu.Unlock()
		t.pos = 0
		go e.drain(t)
		return
	}
	e.insertLocked(t)
	e.mu.Unlock()
}

// insertLocked places t on the run queue. Fresh submissions and
// timeout/cancel wakes append FIFO. A notify wake is placed
// least-contended-object-first within the contiguous run of notify-woken
// tasks at the queue's tail — the wake batch one publish produced. Under
// obstruction-freedom the least-contended proposal is the one closest to
// running solo, so it decides (and frees its slot, and stops contending
// with the rest of its batch) fastest; draining a wake batch in that order
// retires it sooner than FIFO does. Only the tail run is reordered: a
// notify wake never jumps tasks woken by other causes, so timeout and
// cancel wakes keep their arrival order and nothing starves.
func (e *Engine) insertLocked(t *task) {
	if WakeReason(t.st.Load()>>reasonShift&stMask) != WakeNotify {
		t.pos = int32(len(e.queue))
		e.queue = append(e.queue, t)
		return
	}
	g := t.gauge.Load()
	i := len(e.queue)
	for i > 0 {
		prev := e.queue[i-1]
		// Queued tasks' state words are stable while e.mu is held (leaving
		// the queue requires the lock), so the reason bits read here are
		// those of the wake that enqueued prev.
		if WakeReason(prev.st.Load()>>reasonShift&stMask) != WakeNotify ||
			prev.gauge.Load() <= g {
			break
		}
		i--
	}
	t.pos = int32(i)
	e.queue = append(e.queue, nil)
	copy(e.queue[i+1:], e.queue[i:len(e.queue)-1])
	e.queue[i] = t
}

// abort delivers ErrClosed to a task the engine will never advance again.
// The caller must have won the task's terminal transition (or hold it
// exclusively, as enqueue does for a task it just removed).
func (e *Engine) abort(t *task) {
	t.st.Store(stDead)
	e.stopSources(t)
	if t.batch != nil {
		// An unexpanded batch descriptor: abort every proposal it carries.
		for _, p := range t.batch {
			p.Abort(ErrClosed)
		}
		e.inFlight.Add(-int64(len(t.batch)))
		t.batch = nil
		return
	}
	t.p.Abort(ErrClosed)
	e.inFlight.Add(-1)
}

// drain is the entry point of one transient drain goroutine: it reports
// the spawn/exit to the observer and, when one is installed, runs the
// loop under a pprof goroutine label so CPU profiles attribute engine
// work to the drain role.
func (e *Engine) drain(t *task) {
	defer e.wg.Done()
	if o := e.obsv; o != nil {
		o.DrainStarted()
		defer o.DrainStopped()
		pprof.Do(context.Background(), pprof.Labels("sa_role", "engine_drain"), func(context.Context) {
			e.drainLoop(t)
		})
		return
	}
	e.drainLoop(t)
}

// drainLoop advances its task, then keeps pulling queued tasks until the
// queue is empty (or the engine closes) and exits, releasing its
// concurrency slot. Parked tasks respawn drains through enqueue when they
// wake.
func (e *Engine) drainLoop(t *task) {
	for {
		if t.batch != nil {
			if t = e.expand(t); t == nil {
				e.mu.Lock()
				e.active--
				e.mu.Unlock()
				return
			}
		}
		e.run(t)
		e.mu.Lock()
		if len(e.queue) == 0 || e.closed {
			e.active--
			e.mu.Unlock()
			return
		}
		t = e.queue[0]
		e.queue = e.queue[1:]
		e.mu.Unlock()
	}
}

// run advances one dequeued task until it finishes or parks.
func (e *Engine) run(t *task) {
	s := t.st.Load()
	w := Wake{Reason: WakeReason(s >> reasonShift & stMask), Pos: int(t.pos)}
	t.st.Store(word(stRunning, 0, s>>genShift))
	// The task reached the queue either fresh (no sources armed) or through
	// a waker's CAS on its state word, which hands this worker ownership of
	// the wake sources the parker armed; the ones that did not fire are
	// revoked here, before they can misfire on the next park.
	if w.Reason != WakeStart {
		w.Waited = time.Since(t.parkStart)
	}
	e.stopSources(t)
	if w.Reason == WakeNotify && e.leadFree.CompareAndSwap(true, false) {
		w.Leader = true
		defer e.leadFree.Store(true)
	}
	park, parked := t.p.Advance(w)
	if !parked {
		e.inFlight.Add(-1)
		return
	}
	e.park(t, park)
}

// park arms the task's wake sources and releases the worker. The state
// word choreographs the race with wakers: sources are armed in state
// stParking; a source that fires that early CASes to stQueued but leaves
// enqueueing to this goroutine, which detects the lost final CAS.
func (e *Engine) park(t *task, park Park) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		e.abort(t)
		return
	}
	e.parked[t] = struct{}{}
	e.mu.Unlock()
	if e.parkHook != nil {
		e.parkHook(ParkRegistered)
	}

	t.parkStart = time.Now()
	// Sample the object's contention before registering this park's own
	// wake: if a publish later wakes a whole batch, the run-queue insert
	// orders the batch least-contended-first by this gauge.
	if park.Notifier != nil {
		t.gauge.Store(park.Notifier.Waiters())
	} else {
		t.gauge.Store(0)
	}
	gen := t.st.Load()>>genShift + 1
	t.st.Store(word(stParking, 0, gen))
	if park.Notifier != nil {
		t.cancelWake = park.Notifier.RegisterWake(park.Version, func() { e.wake(t, WakeNotify, gen) })
	}
	t.cap = e.caps.add(t, park.Cap, gen)
	if park.Ctx != nil {
		t.stopCtx = context.AfterFunc(park.Ctx, func() { e.wake(t, WakeCancel, gen) })
	}
	if e.parkHook != nil {
		e.parkHook(ParkArmed)
	}
	if t.st.CompareAndSwap(word(stParking, 0, gen), word(stParked, 0, gen)) {
		if e.parkHook != nil {
			e.parkHook(ParkCommitted)
		}
		return
	}
	if e.parkHook != nil {
		e.parkHook(ParkAbandoned)
	}
	// A wake source fired while sources were still arming (or Close marked
	// the task dead). This goroutine still owns the task: finish the job
	// the waker left to it.
	s := t.st.Load()
	if s&stMask == stDead {
		// Close won the transition; it skipped tasks in stParking, so the
		// cleanup and abort are this goroutine's.
		e.stopSources(t)
		t.p.Abort(ErrClosed)
		e.inFlight.Add(-1)
		e.mu.Lock()
		delete(e.parked, t)
		e.mu.Unlock()
		return
	}
	e.enqueue(t)
}

// wake is called by a task's wake sources, each carrying the generation
// of the park that armed it. The winning source moves the task to the run
// queue; losers see the state word already moved on — a different state
// or a newer generation — and do nothing, so a stale timer or a late
// notification can neither double-enqueue nor cut a later park short.
func (e *Engine) wake(t *task, reason WakeReason, gen uint64) {
	next := word(stQueued, reason, gen)
	for {
		s := t.st.Load()
		if s>>genShift != gen {
			return
		}
		switch s & stMask {
		case stParked:
			if t.st.CompareAndSwap(s, next) {
				e.enqueue(t)
				return
			}
		case stParking:
			// Sources are still arming; the parker's final CAS will fail
			// and it enqueues on this goroutine's behalf (it still owns
			// the source fields — this callback must not touch them).
			if t.st.CompareAndSwap(s, next) {
				return
			}
		default:
			return
		}
	}
}

// Close shuts the engine down: queued and parked proposals are aborted
// with ErrClosed, drain goroutines exit, and later Submits abort
// immediately. Proposals being advanced at the moment of Close finish
// their current Advance; if that Advance parks, the park aborts. Close
// blocks until the drains have exited and is idempotent.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		e.wg.Wait()
		return
	}
	e.closed = true
	queued := e.queue
	e.queue = nil
	var parked []*task
	for t := range e.parked {
		parked = append(parked, t)
	}
	e.mu.Unlock()

	// Count the proposals this shutdown aborts before abort() consumes the
	// batch descriptors. Parked tasks are always single proposals.
	aborted := len(parked)
	for _, t := range queued {
		if t.batch != nil {
			aborted += len(t.batch)
		} else {
			aborted++
		}
	}
	for _, t := range queued {
		e.abort(t)
	}
	for _, t := range parked {
		e.reclaim(t)
	}
	e.wg.Wait()
	if o := e.obsv; o != nil {
		o.EngineClosed(aborted)
	}
}

// reclaim aborts one task found in the parked set at Close. The task's
// parker may still be between registering the task and arming its sources
// (stRunning/stParking), or a waker may be moving it to the queue; the
// state word arbitrates:
//
//   - stParked: this goroutine wins the transition, owns the sources
//     (handed off by the parker's final CAS) and aborts here.
//   - stParking: the transition is won here but the parker still owns the
//     arming sources; its failed final CAS makes it clean up and abort.
//   - stRunning: the parker registered the task but has not begun arming;
//     wait for the state to move (bounded by one scheduling of the parker).
//   - stQueued/stDead: a waker or an earlier path got there first; its
//     enqueue lands on the closed engine and aborts.
func (e *Engine) reclaim(t *task) {
	for {
		s := t.st.Load()
		switch s & stMask {
		case stParked:
			if t.st.CompareAndSwap(s, stDead) {
				e.stopSources(t)
				t.p.Abort(ErrClosed)
				e.inFlight.Add(-1)
				e.mu.Lock()
				delete(e.parked, t)
				e.mu.Unlock()
				return
			}
		case stParking:
			if t.st.CompareAndSwap(s, stDead) {
				return // the parker's failed final CAS cleans up and aborts
			}
		case stRunning:
			runtime.Gosched()
		default:
			return
		}
	}
}

// capWheel is the engine's single shared cap timer: every park's deadline
// lives in one min-heap served by one time.Timer, re-armed to the earliest
// entry. One timer callback per expiry batch replaces one per park —
// time.AfterFunc runs each callback in its own goroutine, so per-task
// timers would let a storm of simultaneous cap expiries (hundreds of
// proposals parked together under one schedule) momentarily spawn a
// goroutine per parked proposal, exactly the cost the engine exists to
// avoid. Entries are removed eagerly when another wake source wins, so a
// long-capped park revoked early holds no memory until its deadline.
type capWheel struct {
	e *Engine

	mu      sync.Mutex
	entries capHeap
	timer   *time.Timer
}

// capEntry is one parked task's deadline; idx is its heap position, -1
// once popped or removed; gen is the park generation the wake carries.
type capEntry struct {
	when time.Time
	t    *task
	gen  uint64
	idx  int
}

// add schedules a timeout wake for t after d, on park generation gen.
func (w *capWheel) add(t *task, d time.Duration, gen uint64) *capEntry {
	en := &capEntry{when: time.Now().Add(d), t: t, gen: gen}
	w.mu.Lock()
	heap.Push(&w.entries, en)
	if en.idx == 0 {
		w.rearmLocked()
	}
	w.mu.Unlock()
	return en
}

// remove revokes a not-yet-fired entry; firing and removal race only
// through w.mu, and the idx sentinel makes both idempotent.
func (w *capWheel) remove(en *capEntry) {
	w.mu.Lock()
	if en.idx >= 0 {
		heap.Remove(&w.entries, en.idx)
		en.idx = -1
	}
	w.mu.Unlock()
}

// rearmLocked points the timer at the earliest deadline. A stale shorter
// arming is harmless: fire finds nothing due and re-arms.
func (w *capWheel) rearmLocked() {
	if len(w.entries) == 0 {
		return
	}
	d := time.Until(w.entries[0].when)
	if d < 0 {
		d = 0
	}
	if w.timer == nil {
		w.timer = time.AfterFunc(d, w.fire)
	} else {
		w.timer.Reset(d)
	}
}

// fire wakes every due task and re-arms for the next deadline. Wakes run
// outside the wheel lock: a wake enqueues (engine lock) and the resumed
// task's next park calls add (wheel lock) — neither may nest inside it.
func (w *capWheel) fire() {
	var due []*capEntry
	w.mu.Lock()
	now := time.Now()
	for len(w.entries) > 0 && !w.entries[0].when.After(now) {
		en := heap.Pop(&w.entries).(*capEntry)
		en.idx = -1
		due = append(due, en)
	}
	w.rearmLocked()
	w.mu.Unlock()
	for _, en := range due {
		w.e.wake(en.t, WakeTimeout, en.gen)
	}
}

// capHeap implements container/heap ordered by deadline, maintaining each
// entry's idx for O(log n) removal.
type capHeap []*capEntry

func (h capHeap) Len() int           { return len(h) }
func (h capHeap) Less(i, j int) bool { return h[i].when.Before(h[j].when) }
func (h capHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i]; h[i].idx = i; h[j].idx = j }
func (h *capHeap) Push(x any)        { en := x.(*capEntry); en.idx = len(*h); *h = append(*h, en) }
func (h *capHeap) Pop() any {
	old := *h
	n := len(old)
	en := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return en
}
