package engine_test

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"setagreement/internal/engine"
	"setagreement/internal/shmem"
)

// testProposal adapts a closure to engine.Proposal and records aborts.
type testProposal struct {
	advance func(w engine.Wake) (engine.Park, bool)
	aborted chan error
}

func newTestProposal(advance func(w engine.Wake) (engine.Park, bool)) *testProposal {
	return &testProposal{advance: advance, aborted: make(chan error, 1)}
}

func (p *testProposal) Advance(w engine.Wake) (engine.Park, bool) { return p.advance(w) }
func (p *testProposal) Abort(err error)                           { p.aborted <- err }

func awaitParked(t *testing.T, e *engine.Engine, want int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for e.Parked() < want {
		if time.Now().After(deadline) {
			t.Fatalf("engine never reached %d parked proposals (have %d)", want, e.Parked())
		}
		runtime.Gosched()
	}
}

func TestEngineRunsToCompletion(t *testing.T) {
	e := engine.New(2)
	defer e.Close()
	const proposals = 32
	var done sync.WaitGroup
	done.Add(proposals)
	for i := 0; i < proposals; i++ {
		steps := 0
		e.Submit(newTestProposal(func(w engine.Wake) (engine.Park, bool) {
			if w.Reason != engine.WakeStart {
				t.Errorf("non-parking proposal woken with reason %v", w.Reason)
			}
			steps++
			done.Done()
			return engine.Park{}, false
		}))
	}
	waitWG(t, &done)
	deadline := time.Now().Add(10 * time.Second)
	for e.InFlight() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("InFlight() = %d after every proposal finished", e.InFlight())
		}
		runtime.Gosched()
	}
}

func TestEngineNotifyWakeResumesPark(t *testing.T) {
	e := engine.New(1)
	defer e.Close()
	var b shmem.Broadcast
	resumed := make(chan engine.Wake, 1)
	e.Submit(newTestProposal(func(w engine.Wake) (engine.Park, bool) {
		if w.Reason == engine.WakeStart {
			return engine.Park{Notifier: &b, Version: b.Version(), Cap: time.Hour}, true
		}
		resumed <- w
		return engine.Park{}, false
	}))
	awaitParked(t, e, 1)
	if got := b.Waiters(); got != 1 {
		t.Fatalf("Waiters() = %d with one parked proposal, want 1", got)
	}
	b.Publish()
	select {
	case w := <-resumed:
		if w.Reason != engine.WakeNotify {
			t.Fatalf("resumed with reason %v, want notify", w.Reason)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("publish did not resume the parked proposal")
	}
	if got := b.Waiters(); got != 0 {
		t.Fatalf("Waiters() = %d after resume, want 0", got)
	}
}

func TestEngineTimeoutResumesPark(t *testing.T) {
	e := engine.New(1)
	defer e.Close()
	var b shmem.Broadcast
	resumed := make(chan engine.Wake, 1)
	start := time.Now()
	e.Submit(newTestProposal(func(w engine.Wake) (engine.Park, bool) {
		if w.Reason == engine.WakeStart {
			return engine.Park{Notifier: &b, Version: b.Version(), Cap: 20 * time.Millisecond}, true
		}
		resumed <- w
		return engine.Park{}, false
	}))
	select {
	case w := <-resumed:
		if w.Reason != engine.WakeTimeout {
			t.Fatalf("resumed with reason %v, want timeout", w.Reason)
		}
		if w.Waited <= 0 {
			t.Fatalf("Waited = %v for a real park", w.Waited)
		}
		if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
			t.Fatalf("timeout fired after %v, before the cap", elapsed)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cap did not resume the parked proposal")
	}
	// The losing wake source (the notifier registration) must be revoked.
	deadline := time.Now().Add(10 * time.Second)
	for b.Waiters() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("Waiters() = %d after a timeout resume; registration leaked", b.Waiters())
		}
		runtime.Gosched()
	}
}

func TestEngineCancelResumesParkPromptly(t *testing.T) {
	e := engine.New(1)
	defer e.Close()
	var b shmem.Broadcast
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	finished := make(chan struct{})
	e.Submit(newTestProposal(func(w engine.Wake) (engine.Park, bool) {
		if w.Reason == engine.WakeStart {
			return engine.Park{Notifier: &b, Version: b.Version(), Cap: time.Hour, Ctx: ctx}, true
		}
		if w.Reason != engine.WakeCancel {
			t.Errorf("resumed with reason %v, want cancel", w.Reason)
		}
		close(finished)
		return engine.Park{}, false
	}))
	awaitParked(t, e, 1)
	cancel()
	select {
	case <-finished:
	case <-time.After(10 * time.Second):
		t.Fatal("cancellation did not resume the parked proposal (an hour-long cap would)")
	}
	deadline := time.Now().Add(10 * time.Second)
	for b.Waiters() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("Waiters() = %d after a cancelled park; registration leaked", b.Waiters())
		}
		runtime.Gosched()
	}
}

func TestEngineCloseAbortsParkedProposals(t *testing.T) {
	e := engine.New(2)
	var b shmem.Broadcast
	const proposals = 8
	props := make([]*testProposal, proposals)
	for i := range props {
		p := newTestProposal(func(w engine.Wake) (engine.Park, bool) {
			if w.Reason != engine.WakeStart {
				t.Errorf("parked proposal advanced (reason %v) on a closing engine", w.Reason)
			}
			return engine.Park{Notifier: &b, Version: b.Version(), Cap: time.Hour}, true
		})
		props[i] = p
		e.Submit(p)
	}
	awaitParked(t, e, proposals)
	e.Close()
	for i, p := range props {
		select {
		case err := <-p.aborted:
			if !errors.Is(err, engine.ErrClosed) {
				t.Fatalf("proposal %d aborted with %v, want ErrClosed", i, err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("proposal %d not aborted by Close", i)
		}
	}
	if got := e.InFlight(); got != 0 {
		t.Fatalf("InFlight() = %d after Close, want 0", got)
	}
	if got := e.Parked(); got != 0 {
		t.Fatalf("Parked() = %d after Close, want 0", got)
	}
	if got := b.Waiters(); got != 0 {
		t.Fatalf("Waiters() = %d after Close, want 0 (registrations must be revoked)", got)
	}
	// Submitting after Close aborts immediately.
	p := newTestProposal(func(engine.Wake) (engine.Park, bool) {
		t.Error("proposal advanced on a closed engine")
		return engine.Park{}, false
	})
	e.Submit(p)
	select {
	case err := <-p.aborted:
		if !errors.Is(err, engine.ErrClosed) {
			t.Fatalf("post-Close submit aborted with %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("post-Close submit not aborted")
	}
}

func TestEngineGoroutineEconomy(t *testing.T) {
	// The reason the engine exists: hundreds of parked proposals must not
	// pin goroutines. 512 proposals park for an hour on a 4-worker engine;
	// the process's goroutine count stays within a small constant of the
	// baseline, where 512 blocked Proposes would each hold one.
	const proposals, workers = 512, 4
	baseline := runtime.NumGoroutine()
	e := engine.New(workers)
	defer e.Close()
	var b shmem.Broadcast
	for i := 0; i < proposals; i++ {
		e.Submit(newTestProposal(func(w engine.Wake) (engine.Park, bool) {
			return engine.Park{Notifier: &b, Version: b.Version() + 1000, Cap: time.Hour}, true
		}))
	}
	awaitParked(t, e, proposals)
	if got := runtime.NumGoroutine(); got > baseline+workers+8 {
		t.Fatalf("NumGoroutine = %d with %d parked proposals (baseline %d, workers %d); parked work is pinning goroutines",
			got, proposals, baseline, workers)
	}
	if got := e.InFlight(); got != proposals {
		t.Fatalf("InFlight() = %d, want %d", got, proposals)
	}
}

func TestEngineParkWakeChurn(t *testing.T) {
	// Race coverage: proposals that repeatedly park race a publisher
	// hammering the notifier, so notifier wakes, timeouts and re-parks
	// interleave every way. Every proposal must still finish.
	e := engine.New(4)
	defer e.Close()
	var b shmem.Broadcast
	const proposals, parks = 32, 20
	var done sync.WaitGroup
	done.Add(proposals)
	var finished atomic.Int64
	for i := 0; i < proposals; i++ {
		remaining := parks
		e.Submit(newTestProposal(func(w engine.Wake) (engine.Park, bool) {
			if remaining == 0 {
				finished.Add(1)
				done.Done()
				return engine.Park{}, false
			}
			remaining--
			return engine.Park{Notifier: &b, Version: b.Version(), Cap: time.Millisecond}, true
		}))
	}
	stop := make(chan struct{})
	var pub sync.WaitGroup
	pub.Add(1)
	go func() {
		defer pub.Done()
		for {
			select {
			case <-stop:
				return
			default:
				b.Publish()
			}
		}
	}()
	waitWG(t, &done)
	close(stop)
	pub.Wait()
	if got := finished.Load(); got != proposals {
		t.Fatalf("%d proposals finished, want %d", got, proposals)
	}
}

func TestEngineNotifyLeaderElection(t *testing.T) {
	// One publish wakes a batch of parked proposals. The engine must mark
	// at most one of the concurrently advancing notify wakes as Leader,
	// and the first notify advance to run must get it (leadership is free
	// before the batch).
	e := engine.New(4)
	defer e.Close()
	var b shmem.Broadcast
	const proposals = 8
	var concurrent, everLeader atomic.Int32
	gate := make(chan struct{})
	advanced := make(chan struct{}, proposals)
	for i := 0; i < proposals; i++ {
		e.Submit(newTestProposal(func(w engine.Wake) (engine.Park, bool) {
			if w.Reason == engine.WakeStart {
				return engine.Park{Notifier: &b, Version: b.Version(), Cap: time.Hour}, true
			}
			if w.Leader {
				if n := concurrent.Add(1); n > 1 {
					t.Errorf("%d concurrent leaders", n)
				}
				everLeader.Add(1)
				<-gate // hold leadership while the rest of the batch advances
				concurrent.Add(-1)
			}
			advanced <- struct{}{}
			return engine.Park{}, false
		}))
	}
	awaitParked(t, e, proposals)
	b.Publish()
	// The first notify advance claims leadership and holds it on the gate;
	// every other member of the batch must advance leaderless meanwhile.
	for i := 0; i < proposals-1; i++ {
		select {
		case <-advanced:
		case <-time.After(10 * time.Second):
			t.Fatal("batch did not advance while the leader held its advance")
		}
	}
	close(gate)
	select {
	case <-advanced:
	case <-time.After(10 * time.Second):
		t.Fatal("leader never finished")
	}
	if got := everLeader.Load(); got != 1 {
		t.Fatalf("%d leaders across one wake batch, want 1", got)
	}
}

func waitWG(t *testing.T, wg *sync.WaitGroup) {
	t.Helper()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("timed out waiting")
	}
}
