package engine_test

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"setagreement/internal/engine"
	"setagreement/internal/shmem"
)

// TestParkPublishAtEveryBoundary drives a memory publish into each window of
// the park protocol in turn — before the wake registration exists, after the
// sources are armed but before the final CAS, and after the park committed —
// and asserts the proposal resumes with a notify wake and no leaked waiter
// registration in every case. The first window is the lost-wakeup race the
// notifier's version re-check closes; this pins it deterministically.
func TestParkPublishAtEveryBoundary(t *testing.T) {
	cases := []struct {
		stage engine.ParkStage
		want  []engine.ParkStage // full stage trace of the single park
	}{
		{engine.ParkRegistered, []engine.ParkStage{engine.ParkRegistered, engine.ParkArmed, engine.ParkAbandoned}},
		{engine.ParkArmed, []engine.ParkStage{engine.ParkRegistered, engine.ParkArmed, engine.ParkAbandoned}},
		{engine.ParkCommitted, []engine.ParkStage{engine.ParkRegistered, engine.ParkArmed, engine.ParkCommitted}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.stage.String(), func(t *testing.T) {
			e := engine.New(1)
			defer e.Close()
			var b shmem.Broadcast
			var once sync.Once
			stages := make(chan engine.ParkStage, 8)
			e.SetParkHook(func(s engine.ParkStage) {
				stages <- s
				if s == tc.stage {
					once.Do(func() { b.Publish() })
				}
			})
			resumed := make(chan engine.Wake, 1)
			e.Submit(newTestProposal(func(w engine.Wake) (engine.Park, bool) {
				if w.Reason == engine.WakeStart {
					return engine.Park{Notifier: &b, Version: b.Version(), Cap: time.Hour}, true
				}
				resumed <- w
				return engine.Park{}, false
			}))

			select {
			case w := <-resumed:
				if w.Reason != engine.WakeNotify {
					t.Fatalf("resumed with reason %v, want notify", w.Reason)
				}
			case <-time.After(10 * time.Second):
				t.Fatalf("publish at stage %v never resumed the parked proposal (lost wakeup)", tc.stage)
			}
			deadline := time.Now().Add(10 * time.Second)
			for e.InFlight() != 0 || b.Waiters() != 0 {
				if time.Now().After(deadline) {
					t.Fatalf("after resume: InFlight=%d Waiters=%d, want 0/0", e.InFlight(), b.Waiters())
				}
				runtime.Gosched()
			}

			var got []engine.ParkStage
			for len(got) < len(tc.want) {
				select {
				case s := <-stages:
					got = append(got, s)
				case <-time.After(10 * time.Second):
					t.Fatalf("park stages = %v, want %v", got, tc.want)
				}
			}
			for i, s := range tc.want {
				if got[i] != s {
					t.Fatalf("park stages = %v, want %v", got, tc.want)
				}
			}
			select {
			case s := <-stages:
				t.Fatalf("unexpected extra park stage %v after %v", s, got)
			default:
			}
		})
	}
}
