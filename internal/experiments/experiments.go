// Package experiments implements the reproduction harness: one entry point
// per claim of the paper's evaluation (its Figure 1 bounds table and the
// theorem-level results behind it). cmd/sabench prints these tables;
// bench_test.go wraps them as benchmarks. EXPERIMENTS.md records the
// paper-vs-measured outcomes.
package experiments

import (
	"fmt"
	"math"

	"setagreement/internal/baseline"
	"setagreement/internal/core"
	"setagreement/internal/lowerbound"
	"setagreement/internal/report"
	"setagreement/internal/sched"
	"setagreement/internal/sim"
	"setagreement/internal/snapshot"
	"setagreement/internal/spec"
)

// CheckResult is the outcome of validating one algorithm empirically.
type CheckResult struct {
	Algorithm        string
	Params           core.Params
	RegistersClaimed int
	LocationsWritten int
	SequentialSteps  int // steps for all n processes to decide, one by one
	ContendedSteps   int // steps under a contended prefix + drain
	SafetyOK         bool
	TerminationOK    bool
	Err              error
}

// inputsFor builds per-process input sequences with distinct values.
func inputsFor(n, instances int) [][]int {
	in := make([][]int, n)
	for i := range in {
		in[i] = make([]int, instances)
		for t := range in[i] {
			in[i][t] = 1000*(t+1) + i
		}
	}
	return in
}

// runToCompletion drives a fresh system under s then drains sequentially.
func runToCompletion(alg core.Algorithm, inputs [][]int, s sim.Scheduler, prefix, budget int) (*sim.Runner, error) {
	memSpec, procs := core.System(alg, inputs)
	r, err := sim.NewRunner(memSpec, procs)
	if err != nil {
		return nil, err
	}
	if s != nil {
		if _, err := r.Run(s, prefix); err != nil {
			r.Abort()
			return nil, err
		}
	}
	if _, err := r.Run(&sched.Sequential{}, budget); err != nil {
		r.Abort()
		return nil, err
	}
	if !r.AllDone() {
		r.Abort()
		return nil, fmt.Errorf("experiments: %s did not complete within %d steps", alg.Name(), budget)
	}
	return r, nil
}

// Validate measures one algorithm: register audit, steps to decide
// (sequential and contended), safety under random schedules, and
// termination under eventually-m schedules.
func Validate(alg core.Algorithm, instances, seeds int) CheckResult {
	p := alg.Params()
	res := CheckResult{Algorithm: alg.Name(), Params: p, RegistersClaimed: alg.Registers()}
	inputs := inputsFor(p.N, instances)
	const budget = 5_000_000

	// Sequential run: everyone decides solo in turn.
	r, err := runToCompletion(alg, inputs, nil, 0, budget)
	if err != nil {
		res.Err = err
		return res
	}
	res.SequentialSteps = r.Steps()
	res.LocationsWritten = r.DistinctWrites()
	outs := spec.Collect(r)
	res.SafetyOK = spec.CheckAll(inputs, outs, p.K) == nil &&
		spec.Audit(r, p.N, alg.Registers()).Check() == nil
	r.Abort()

	// Contended runs: random prefix then drain; safety must hold.
	for seed := int64(0); seed < int64(seeds); seed++ {
		r, err := runToCompletion(alg, inputs, sched.NewRandom(seed), 50*p.N, budget)
		if err != nil {
			res.Err = err
			return res
		}
		if seed == 0 {
			res.ContendedSteps = r.Steps()
		}
		if spec.CheckAll(inputs, spec.Collect(r), p.K) != nil {
			res.SafetyOK = false
		}
		r.Abort()
	}

	// Termination: eventually-m schedules must let all movers finish.
	res.TerminationOK = true
	for seed := int64(0); seed < int64(seeds); seed++ {
		movers := make([]int, p.M)
		for i := range movers {
			movers[i] = (int(seed) + i) % p.N
		}
		memSpec, procs := core.System(alg, inputs)
		runner, err := sim.NewRunner(memSpec, procs)
		if err != nil {
			res.Err = err
			return res
		}
		if _, err := runner.Run(sched.NewEventuallyM(movers, 40*p.N, seed), budget); err != nil {
			runner.Abort()
			res.Err = err
			return res
		}
		for _, mv := range movers {
			if !runner.IsDone(mv) {
				res.TerminationOK = false
			}
		}
		runner.Abort()
	}
	return res
}

// boolMark renders a check outcome.
func boolMark(ok bool) string {
	if ok {
		return "ok"
	}
	return "FAIL"
}

// Fig1 reproduces the paper's Figure 1: for each parameter point, the four
// table cells with their formula values, plus empirical validation of the
// upper bounds (the lower-bound rows are validated by the adversary sweeps,
// Theorem2Sweep and Theorem10Sweep).
func Fig1(points []core.Params, instances, seeds int) (*report.Table, error) {
	t := report.New(
		"Figure 1 — registers for m-obstruction-free k-set agreement (formula = paper, used/steps = measured)",
		"n,m,k", "cell", "lower", "upper", "regs", "written", "seq-steps", "safety", "term")
	for _, p := range points {
		type cell struct {
			name    string
			lower   string
			upper   string
			build   func() (core.Algorithm, error)
			repeats int
		}
		anonLower := fmt.Sprintf("√(m(n/k−2))=%.1f", sqrtf(float64(p.M)*(float64(p.N)/float64(p.K)-2)))
		cells := []cell{
			{
				name: "non-anon repeated", repeats: 3,
				lower: fmt.Sprintf("n+m−k=%d", p.N+p.M-p.K),
				upper: fmt.Sprintf("min(n+2m−k,n)=%d", min(p.N+2*p.M-p.K, p.N)),
				build: func() (core.Algorithm, error) { return core.NewRepeated(p) },
			},
			{
				name: "non-anon one-shot", repeats: 1,
				lower: "2 [4]",
				upper: fmt.Sprintf("min(n+2m−k,n)=%d", min(p.N+2*p.M-p.K, p.N)),
				build: func() (core.Algorithm, error) { return core.NewOneShot(p) },
			},
			{
				name: "anonymous repeated", repeats: 3,
				lower: fmt.Sprintf("n+m−k=%d", p.N+p.M-p.K),
				upper: fmt.Sprintf("(m+1)(n−k)+m²+1=%d", (p.M+1)*(p.N-p.K)+p.M*p.M+1),
				build: func() (core.Algorithm, error) { return core.NewAnonRepeated(p) },
			},
			{
				name: "anonymous one-shot", repeats: 1,
				lower: anonLower,
				upper: fmt.Sprintf("(m+1)(n−k)+m²=%d", (p.M+1)*(p.N-p.K)+p.M*p.M),
				build: func() (core.Algorithm, error) { return core.NewAnonOneShot(p) },
			},
		}
		for _, c := range cells {
			alg, err := c.build()
			if err != nil {
				return nil, err
			}
			inst := instances
			if c.repeats == 1 {
				inst = 1
			}
			res := Validate(alg, inst, seeds)
			if res.Err != nil {
				return nil, fmt.Errorf("experiments: %s %v: %w", c.name, p, res.Err)
			}
			t.Add(p.String(), c.name, c.lower, c.upper,
				res.RegistersClaimed, res.LocationsWritten, res.SequentialSteps,
				boolMark(res.SafetyOK), boolMark(res.TerminationOK))
		}
	}
	return t, nil
}

func sqrtf(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Sqrt(x)
}

// Theorem2Sweep runs the covering adversary against the repeated algorithm
// for every register count from 2 up to just above the n+m−k bound,
// reporting who wins where.
func Theorem2Sweep(p core.Params, opts lowerbound.CoverOptions) (*report.Table, error) {
	t := report.New(
		fmt.Sprintf("Theorem 2 — covering adversary vs Figure 4 (%v, bound n+m−k=%d)", p, p.N+p.M-p.K),
		"registers", "verdict", "instance", "distinct-outputs", "detail")
	for r := 2; r <= p.N+p.M-p.K+1; r++ {
		alg, err := core.NewRepeatedComponents(p, r)
		if err != nil {
			return nil, err
		}
		rep, err := lowerbound.CoverAttack(alg, opts)
		if err != nil {
			return nil, err
		}
		t.Add(r, rep.Verdict, rep.Instance, len(rep.Outputs), rep.Detail)
	}
	return t, nil
}

// Theorem10Sweep runs the clone adversary against the anonymous one-shot
// algorithm for growing register counts, reporting the clone-army size
// against n — the empirical face of the √(m(n/k−2)) bound.
func Theorem10Sweep(n, k int, maxR int, opts lowerbound.CloneOptions) (*report.Table, error) {
	t := report.New(
		fmt.Sprintf("Theorem 10 — clone adversary vs anonymous one-shot (n=%d, k=%d, m=1)", n, k),
		"registers", "army-needed", "fits-n", "verdict", "distinct-outputs", "detail")
	for r := 2; r <= maxR; r++ {
		alg, err := core.NewAnonComponents(core.Params{N: n, M: 1, K: k}, r, false)
		if err != nil {
			return nil, err
		}
		rep, err := lowerbound.CloneAttack(alg, opts)
		if err != nil {
			return nil, err
		}
		fits := "no"
		if rep.ProcessesNeeded > 0 && rep.ProcessesNeeded <= n {
			fits = "yes"
		}
		t.Add(r, rep.ProcessesNeeded, fits, rep.Verdict, len(rep.Outputs), rep.Detail)
	}
	return t, nil
}

// VsDFGR13 compares the paper's Figure 3 algorithm against the
// reconstructed [4] baseline and the n-register folklore baseline for
// m = 1: register counts and sequential steps to decide. The paper's claim:
// n−k+2 beats 2(n−k) for all k < n−2, ties at k = n−2.
func VsDFGR13(n int) (*report.Table, error) {
	t := report.New(
		fmt.Sprintf("Comparison with DFGR13 [4] — m=1, n=%d (registers and steps, sequential run)", n),
		"k", "fig3-regs", "dfgr13-regs", "fullspace-regs", "fig3-steps", "dfgr13-steps")
	for k := 1; k <= n-2; k++ {
		p := core.Params{N: n, M: 1, K: k}
		fig3, err := core.NewOneShot(p)
		if err != nil {
			return nil, err
		}
		dfgr, err := baseline.NewDFGR13(n, k)
		if err != nil {
			return nil, err
		}
		full, err := baseline.NewFullSpace(p)
		if err != nil {
			return nil, err
		}
		res3 := Validate(fig3, 1, 1)
		resD := Validate(dfgr, 1, 1)
		if res3.Err != nil {
			return nil, res3.Err
		}
		if resD.Err != nil {
			return nil, resD.Err
		}
		t.Add(k, fig3.Registers(), dfgr.Registers(), full.Registers(),
			res3.SequentialSteps, resD.SequentialSteps)
	}
	return t, nil
}

// SnapshotAblation reruns the one-shot algorithm over every snapshot
// implementation, reporting physical registers and steps (register-based
// snapshots turn one scan into many reads, which the simulator counts).
func SnapshotAblation(p core.Params) (*report.Table, error) {
	t := report.New(
		fmt.Sprintf("Ablation — snapshot implementation under Figure 3 (%v)", p),
		"impl", "physical-regs", "seq-steps", "safety")
	alg, err := core.NewOneShot(p)
	if err != nil {
		return nil, err
	}
	inputs := inputsFor(p.N, 1)
	for _, impl := range []snapshot.Impl{
		snapshot.ImplAtomic, snapshot.ImplMW, snapshot.ImplSWEmulation, snapshot.ImplDoubleCollect,
	} {
		physical, wrap, err := snapshot.Wire(alg.Spec(), impl, p.N)
		if err != nil {
			return nil, err
		}
		memSpec, procs := core.WrappedSystem(alg, inputs, physical, wrap)
		r, err := sim.NewRunner(memSpec, procs)
		if err != nil {
			return nil, err
		}
		if _, err := r.Run(&sched.Sequential{}, 10_000_000); err != nil {
			r.Abort()
			return nil, err
		}
		outs := spec.Collect(r)
		safe := spec.CheckAll(inputs, outs, p.K) == nil && r.AllDone()
		t.Add(impl, physical.RegisterCost(p.N), r.Steps(), boolMark(safe))
		r.Abort()
	}
	return t, nil
}

// ComponentAblation sweeps the snapshot component count r of the one-shot
// algorithm from the paper's n+2m−k upwards: extra components cost space
// but change convergence steps.
func ComponentAblation(p core.Params, extra int) (*report.Table, error) {
	t := report.New(
		fmt.Sprintf("Ablation — component count r under Figure 3 (%v, paper r=%d)", p, p.N+2*p.M-p.K),
		"r", "seq-steps", "contended-steps", "safety")
	for r := p.N + 2*p.M - p.K; r <= p.N+2*p.M-p.K+extra; r++ {
		alg, err := core.NewOneShotComponents(p, r)
		if err != nil {
			return nil, err
		}
		res := Validate(alg, 1, 2)
		if res.Err != nil {
			return nil, res.Err
		}
		t.Add(r, res.SequentialSteps, res.ContendedSteps, boolMark(res.SafetyOK))
	}
	return t, nil
}
