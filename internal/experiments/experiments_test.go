package experiments

import (
	"strings"
	"testing"

	"setagreement/internal/core"
	"setagreement/internal/lowerbound"
)

func TestValidateRepeated(t *testing.T) {
	alg, err := core.NewRepeated(core.Params{N: 4, M: 1, K: 2})
	if err != nil {
		t.Fatalf("NewRepeated: %v", err)
	}
	res := Validate(alg, 2, 2)
	if res.Err != nil {
		t.Fatalf("Validate: %v", res.Err)
	}
	if !res.SafetyOK || !res.TerminationOK {
		t.Fatalf("checks failed: %+v", res)
	}
	if res.SequentialSteps == 0 || res.ContendedSteps == 0 {
		t.Fatalf("no steps measured: %+v", res)
	}
	if res.RegistersClaimed != 4 { // min(4+2-2, 4)
		t.Fatalf("RegistersClaimed = %d", res.RegistersClaimed)
	}
	if res.LocationsWritten > res.RegistersClaimed {
		t.Fatalf("wrote %d locations, claimed %d", res.LocationsWritten, res.RegistersClaimed)
	}
}

func TestFig1SmallSweep(t *testing.T) {
	points := []core.Params{
		{N: 4, M: 1, K: 1},
		{N: 5, M: 2, K: 3},
	}
	table, err := Fig1(points, 2, 1)
	if err != nil {
		t.Fatalf("Fig1: %v", err)
	}
	if len(table.Rows) != 8 { // 4 cells per point
		t.Fatalf("rows = %d, want 8", len(table.Rows))
	}
	s := table.String()
	if strings.Contains(s, "FAIL") {
		t.Fatalf("Fig1 contains failures:\n%s", s)
	}
	if !strings.Contains(s, "non-anon repeated") || !strings.Contains(s, "anonymous one-shot") {
		t.Fatalf("missing cells:\n%s", s)
	}
}

func TestTheorem2SweepShape(t *testing.T) {
	p := core.Params{N: 4, M: 1, K: 1}
	table, err := Theorem2Sweep(p, lowerbound.DefaultCoverOptions())
	if err != nil {
		t.Fatalf("Theorem2Sweep: %v", err)
	}
	// r = 2..5: below bound (4) must be violations, at/above none.
	for _, row := range table.Rows {
		r, verdict := row[0], row[1]
		switch r {
		case "2", "3":
			if verdict == lowerbound.VerdictNone.String() {
				t.Errorf("r=%s: verdict %s, want violation", r, verdict)
			}
		case "4", "5":
			if verdict != lowerbound.VerdictNone.String() {
				t.Errorf("r=%s: verdict %s, want none", r, verdict)
			}
		}
	}
}

func TestTheorem10SweepShape(t *testing.T) {
	table, err := Theorem10Sweep(10, 1, 4, lowerbound.DefaultCloneOptions())
	if err != nil {
		t.Fatalf("Theorem10Sweep: %v", err)
	}
	// n=10, k=1: army 2(1+r(r-1)/2) = 4, 8, 14 for r=2,3,4:
	// fits for r=2,3 (attack wins), not r=4.
	want := map[string]string{
		"2": lowerbound.VerdictSafety.String(),
		"3": lowerbound.VerdictSafety.String(),
		"4": lowerbound.VerdictNone.String(),
	}
	for _, row := range table.Rows {
		if w, ok := want[row[0]]; ok && row[3] != w {
			t.Errorf("r=%s: verdict %s, want %s (%s)", row[0], row[3], w, row[5])
		}
	}
}

func TestVsDFGR13Shape(t *testing.T) {
	table, err := VsDFGR13(8)
	if err != nil {
		t.Fatalf("VsDFGR13: %v", err)
	}
	if len(table.Rows) != 6 { // k = 1..6
		t.Fatalf("rows = %d, want 6", len(table.Rows))
	}
	// Paper claim: fig3 (n−k+2) ≤ dfgr13 (2(n−k)) for k ≤ n−2, strictly
	// fewer for k < n−2.
	for _, row := range table.Rows {
		k, fig3, dfgr := atoi(t, row[0]), atoi(t, row[1]), atoi(t, row[2])
		if k < 6 && fig3 >= dfgr {
			t.Errorf("k=%d: fig3 %d not below dfgr13 %d", k, fig3, dfgr)
		}
		if k == 6 && fig3 != dfgr {
			t.Errorf("k=n-2: fig3 %d != dfgr13 %d", fig3, dfgr)
		}
	}
}

func TestSnapshotAblationShape(t *testing.T) {
	table, err := SnapshotAblation(core.Params{N: 4, M: 1, K: 2})
	if err != nil {
		t.Fatalf("SnapshotAblation: %v", err)
	}
	if len(table.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(table.Rows))
	}
	for _, row := range table.Rows {
		if row[3] != "ok" {
			t.Errorf("impl %s not safe", row[0])
		}
	}
	// Register-based snapshots must cost strictly more steps than atomic.
	atomic := atoi(t, table.Rows[0][2])
	for _, row := range table.Rows[1:] {
		if atoi(t, row[2]) <= atomic {
			t.Errorf("impl %s steps %s not above atomic %d", row[0], row[2], atomic)
		}
	}
}

func TestComponentAblationShape(t *testing.T) {
	table, err := ComponentAblation(core.Params{N: 5, M: 1, K: 2}, 3)
	if err != nil {
		t.Fatalf("ComponentAblation: %v", err)
	}
	if len(table.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(table.Rows))
	}
	for _, row := range table.Rows {
		if row[3] != "ok" {
			t.Errorf("r=%s not safe", row[0])
		}
	}
}

func atoi(t *testing.T, s string) int {
	t.Helper()
	n := 0
	for _, c := range s {
		if c < '0' || c > '9' {
			t.Fatalf("not a number: %q", s)
		}
		n = n*10 + int(c-'0')
	}
	return n
}
