package experiments

import (
	"fmt"
	"sort"

	"setagreement/internal/core"
	"setagreement/internal/lowerbound"
	"setagreement/internal/report"
	"setagreement/internal/sched"
	"setagreement/internal/sim"
	"setagreement/internal/spec"
)

// MinRegistersTable locates the empirical space minimum for repeated k-set
// agreement across a parameter sweep and compares it with Theorem 2's
// n+m−k. The adversary defines "minimum": the smallest register count at
// which it stops finding counterexamples.
func MinRegistersTable(points []core.Params, opts lowerbound.CoverOptions) (*report.Table, error) {
	t := report.New(
		"Empirical space minimum for repeated k-set agreement vs Theorem 2",
		"n,m,k", "theorem n+m−k", "empirical min", "match")
	for _, p := range points {
		want := p.N + p.M - p.K
		got, _, err := lowerbound.MinRegisters(p, want+2, opts)
		if err != nil {
			return nil, fmt.Errorf("experiments: min registers %v: %w", p, err)
		}
		match := "yes"
		if got != want {
			match = "NO"
		}
		t.Add(p.String(), want, got, match)
	}
	return t, nil
}

// ComponentProbe probes the paper's §7 question downward: does the Figure 4
// algorithm itself survive with fewer than its designed n+2m−k components?
// Each row combines two views: sampled eventually-m schedules (safety and
// termination under random testing) and the Theorem 2 covering adversary's
// verdict. The instructive shape: below n+m−k, sampling alone says "ok"
// while the adversary constructs a violation — random testing cannot see
// what covering arguments can. Between n+m−k and n+2m−k is the paper's §7
// open territory: this algorithm happens to survive the sampled schedules
// there, and the adversary provably cannot win, but no proof covers the
// gap. This does not answer the open problem; it maps it.
func ComponentProbe(p core.Params, seeds int) (*report.Table, error) {
	design := p.N + 2*p.M - p.K
	bound := p.N + p.M - p.K
	t := report.New(
		fmt.Sprintf("Probe — Figure 4 below its design point (%v, design r=%d, Theorem 2 bound=%d)",
			p, design, bound),
		"r", "sampled-safety", "sampled-termination", "adversary", "note")
	for r := max(2, bound-1); r <= design; r++ {
		alg, err := core.NewRepeatedComponents(p, r)
		if err != nil {
			return nil, err
		}
		inputs := inputsFor(p.N, 2)
		safety, termination := true, true
		for seed := int64(0); seed < int64(seeds); seed++ {
			movers := make([]int, p.M)
			for i := range movers {
				movers[i] = (int(seed) + i) % p.N
			}
			memSpec, procs := core.System(alg, inputs)
			runner, err := sim.NewRunner(memSpec, procs)
			if err != nil {
				return nil, err
			}
			if _, err := runner.Run(sched.NewEventuallyM(movers, 40*p.N, seed), 400_000); err != nil {
				runner.Abort()
				return nil, err
			}
			for _, mv := range movers {
				if !runner.IsDone(mv) {
					termination = false
				}
			}
			if spec.CheckAll(inputs, spec.Collect(runner), p.K) != nil {
				safety = false
			}
			runner.Abort()
		}
		rep, err := lowerbound.CoverAttack(alg, lowerbound.DefaultCoverOptions())
		if err != nil {
			return nil, err
		}
		note := ""
		switch {
		case r == design:
			note = "design point"
		case r < bound:
			note = "below Theorem 2 bound: adversary constructs the violation sampling missed"
		default:
			note = "§7 open territory (bound ≤ r < design)"
		}
		t.Add(r, boolMark(safety), boolMark(termination), rep.Verdict, note)
	}
	return t, nil
}

// LatencyProfile measures the distribution of steps-to-decide for one
// algorithm across many seeded contended runs: min / median / max total
// steps until all processes decide all instances.
func LatencyProfile(alg core.Algorithm, instances, runs int) (*report.Table, error) {
	p := alg.Params()
	inputs := inputsFor(p.N, instances)
	var totals []int
	for seed := int64(0); seed < int64(runs); seed++ {
		r, err := runToCompletion(alg, inputs, sched.NewRandom(seed), 60*p.N, 5_000_000)
		if err != nil {
			return nil, err
		}
		totals = append(totals, r.Steps())
		r.Abort()
	}
	sort.Ints(totals)
	t := report.New(
		fmt.Sprintf("Latency profile — %s (%v, %d instances, %d contended runs)",
			alg.Name(), p, instances, runs),
		"metric", "steps")
	t.Add("min", totals[0])
	t.Add("median", totals[len(totals)/2])
	t.Add("p90", totals[len(totals)*9/10])
	t.Add("max", totals[len(totals)-1])
	return t, nil
}
