package experiments

import (
	"strings"
	"testing"

	"setagreement/internal/core"
	"setagreement/internal/lowerbound"
)

func TestMinRegistersTable(t *testing.T) {
	points := []core.Params{
		{N: 4, M: 1, K: 1},
		{N: 5, M: 1, K: 2},
	}
	table, err := MinRegistersTable(points, lowerbound.DefaultCoverOptions())
	if err != nil {
		t.Fatalf("MinRegistersTable: %v", err)
	}
	for _, row := range table.Rows {
		if row[3] != "yes" {
			t.Errorf("%s: empirical minimum %s != theorem %s", row[0], row[2], row[1])
		}
	}
}

func TestComponentProbe(t *testing.T) {
	table, err := ComponentProbe(core.Params{N: 5, M: 1, K: 2}, 2)
	if err != nil {
		t.Fatalf("ComponentProbe: %v", err)
	}
	if len(table.Rows) == 0 {
		t.Fatal("empty probe")
	}
	// The design point must be fully green and unattackable.
	last := table.Rows[len(table.Rows)-1]
	if last[1] != "ok" || last[2] != "ok" {
		t.Fatalf("design point unhealthy: %v", last)
	}
	if last[3] != "no-counterexample" {
		t.Fatalf("adversary won at the design point: %v", last)
	}
	if !strings.Contains(last[4], "design point") {
		t.Fatalf("design point not labelled: %v", last)
	}
	// Below the Theorem 2 bound the adversary must win even though
	// sampled schedules look fine.
	first := table.Rows[0]
	if first[3] == "no-counterexample" {
		t.Fatalf("adversary failed below the bound: %v", first)
	}
}

func TestLatencyProfile(t *testing.T) {
	alg, err := core.NewRepeated(core.Params{N: 4, M: 1, K: 2})
	if err != nil {
		t.Fatalf("NewRepeated: %v", err)
	}
	table, err := LatencyProfile(alg, 2, 8)
	if err != nil {
		t.Fatalf("LatencyProfile: %v", err)
	}
	if len(table.Rows) != 4 {
		t.Fatalf("rows = %d", len(table.Rows))
	}
	// min ≤ median ≤ p90 ≤ max.
	prev := 0
	for _, row := range table.Rows {
		v := atoi(t, row[1])
		if v < prev {
			t.Fatalf("profile not monotone: %v", table.Rows)
		}
		prev = v
	}
}
