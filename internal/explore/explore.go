// Package explore performs bounded exhaustive exploration of the
// deterministic simulator's state space — model checking in the small.
//
// From a base configuration (an optional replayed schedule prefix) it
// enumerates every configuration reachable by steps of a chosen process
// subset, merging configurations with equal state signatures (sound for
// deterministic programs; see sim.StateSignature). Uses:
//
//   - exhaustive safety verification of the agreement algorithms for tiny
//     systems: every reachable configuration of every schedule is checked,
//     not just sampled schedules;
//   - the exact escape oracle of the Theorem 2 covering adversary for
//     m > 1, where "no fragment by Q_j writes outside A_j" quantifies over
//     all interleavings of Q_j;
//   - the search for γ fragments in which a group of m processes decides m
//     distinct values (Lemma 1 promises existence; exploration finds one).
package explore

import (
	"fmt"

	"setagreement/internal/shmem"
	"setagreement/internal/sim"
)

// Options bound an exploration.
type Options struct {
	// MaxStates caps the number of distinct configurations visited.
	MaxStates int
	// MaxDepth caps the number of steps beyond the base prefix.
	MaxDepth int
	// Procs restricts branching to these process indices; empty means
	// all processes.
	Procs []int
	// Base is a schedule prefix replayed before exploration starts.
	Base []int
	// Allow, when non-nil, filters transitions: a process is only
	// stepped from a configuration if Allow returns true for it there
	// (e.g. to prune fragments that would write outside a covered set).
	Allow func(r *sim.Runner, pid int) bool
}

// DefaultOptions returns bounds suitable for tiny systems.
func DefaultOptions() Options {
	return Options{MaxStates: 20_000, MaxDepth: 200}
}

// State is one reachable configuration handed to the visit callback.
type State struct {
	// Runner is parked at the configuration. The callback must not step
	// or abort it.
	Runner *sim.Runner
	// Suffix is the schedule from the base configuration to here.
	Suffix []int
	// Depth is len(Suffix).
	Depth int
	// Enabled lists the processes the exploration may step from here:
	// live, in the chosen subset, and permitted by Allow. A configuration
	// with live processes but an empty Enabled set is stuck under the
	// model's transition rule — for wait-style models where Allow encodes
	// "blocked until woken", that is a deadlock (e.g. a lost wakeup).
	Enabled []int
}

// Outcome summarizes an exploration.
type Outcome struct {
	// States is the number of distinct configurations visited.
	States int
	// Truncated reports whether MaxStates or MaxDepth cut the frontier:
	// if false, every configuration reachable by the chosen processes
	// was visited (the exploration is exhaustive).
	Truncated bool
	// Stopped reports whether the visit callback ended the search.
	Stopped bool
	// Found is the suffix at which the callback stopped the search.
	Found []int
}

// Visit inspects a configuration. Returning stop=true ends the search with
// Outcome.Stopped set; returning an error aborts it.
type Visit func(st *State) (stop bool, err error)

// Run explores breadth-first. procs is a factory for fresh process specs
// (each replay needs fresh algorithm state).
func Run(spec shmem.Spec, procs func() []sim.ProcSpec, opts Options, visit Visit) (*Outcome, error) {
	if opts.MaxStates <= 0 || opts.MaxDepth <= 0 {
		return nil, fmt.Errorf("explore: bounds must be positive, got %+v", opts)
	}
	out := &Outcome{}
	seen := make(map[string]bool)
	type node struct {
		suffix []int
		depth  int
	}
	queue := []node{{}}

	replayTo := func(suffix []int) (*sim.Runner, error) {
		full := make([]int, 0, len(opts.Base)+len(suffix))
		full = append(full, opts.Base...)
		full = append(full, suffix...)
		return sim.Replay(spec, procs(), full)
	}

	branch := opts.Procs
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]

		r, err := replayTo(cur.suffix)
		if err != nil {
			return nil, err
		}
		sig := r.StateSignature()
		if seen[sig] {
			r.Abort()
			continue
		}
		seen[sig] = true
		out.States++

		candidates := branch
		if len(candidates) == 0 {
			candidates = make([]int, r.NumProcs())
			for i := range candidates {
				candidates[i] = i
			}
		}
		var enabled []int
		for _, pid := range candidates {
			if r.IsDone(pid) {
				continue
			}
			if opts.Allow != nil && !opts.Allow(r, pid) {
				continue
			}
			enabled = append(enabled, pid)
		}

		stop, err := visit(&State{Runner: r, Suffix: cur.suffix, Depth: cur.depth, Enabled: enabled})
		if err != nil {
			r.Abort()
			return nil, err
		}
		if stop {
			out.Stopped = true
			out.Found = append([]int(nil), cur.suffix...)
			r.Abort()
			return out, nil
		}
		if out.States >= opts.MaxStates || cur.depth >= opts.MaxDepth {
			out.Truncated = true
			r.Abort()
			continue
		}

		for _, pid := range enabled {
			next := make([]int, len(cur.suffix)+1)
			copy(next, cur.suffix)
			next[len(cur.suffix)] = pid
			queue = append(queue, node{suffix: next, depth: cur.depth + 1})
		}
		r.Abort()
	}
	return out, nil
}
