package explore

import (
	"errors"
	"testing"

	"setagreement/internal/shmem"
	"setagreement/internal/sim"
)

// writerProgram writes its id to reg 0, reads it back, outputs.
func writerProgram(p *sim.Proc) {
	p.Write(0, p.ID())
	p.Output(1, p.Read(0))
}

func writerProcs() []sim.ProcSpec {
	return []sim.ProcSpec{
		{ID: 1, Run: writerProgram},
		{ID: 2, Run: writerProgram},
	}
}

func TestRunVisitsAllStates(t *testing.T) {
	var depths []int
	out, err := Run(shmem.Spec{Regs: 1}, writerProcs, DefaultOptions(),
		func(st *State) (bool, error) {
			depths = append(depths, st.Depth)
			return false, nil
		})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if out.Truncated {
		t.Fatal("tiny system truncated")
	}
	if out.States != len(depths) {
		t.Fatalf("States = %d, visits = %d", out.States, len(depths))
	}
	// The initial state plus at least the four distinct orderings'
	// states; with merging, strictly fewer than the 2^6 naive paths.
	if out.States < 5 || out.States > 40 {
		t.Fatalf("unexpected state count %d", out.States)
	}
}

func TestRunStopsOnVisit(t *testing.T) {
	out, err := Run(shmem.Spec{Regs: 1}, writerProcs, DefaultOptions(),
		func(st *State) (bool, error) {
			// Stop when both processes have decided.
			return st.Runner.AllDone(), nil
		})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !out.Stopped {
		t.Fatal("never reached an all-done state")
	}
	if len(out.Found) != 6 { // 3 steps per process
		t.Fatalf("Found = %v", out.Found)
	}
}

func TestRunRespectsProcsRestriction(t *testing.T) {
	out, err := Run(shmem.Spec{Regs: 1}, writerProcs,
		Options{MaxStates: 1000, MaxDepth: 50, Procs: []int{0}},
		func(st *State) (bool, error) {
			for _, pid := range st.Suffix {
				if pid != 0 {
					t.Fatalf("branched on process %d", pid)
				}
			}
			return false, nil
		})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Solo runs are linear: exactly initial + 3 states.
	if out.States != 4 {
		t.Fatalf("States = %d, want 4", out.States)
	}
}

func TestRunBaseSchedule(t *testing.T) {
	// Base prefix runs process 0 to completion; exploration of process 1
	// starts from there.
	out, err := Run(shmem.Spec{Regs: 1}, writerProcs,
		Options{MaxStates: 1000, MaxDepth: 50, Base: []int{0, 0, 0}, Procs: []int{1}},
		func(st *State) (bool, error) {
			if !st.Runner.IsDone(0) {
				t.Fatal("base prefix not applied")
			}
			return false, nil
		})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if out.States != 4 {
		t.Fatalf("States = %d, want 4", out.States)
	}
}

func TestRunTruncation(t *testing.T) {
	// An infinite program must truncate at the depth bound.
	loop := func() []sim.ProcSpec {
		return []sim.ProcSpec{{ID: 0, Run: func(p *sim.Proc) {
			for i := 0; ; i++ {
				p.Write(0, i) // distinct values: no state merging
			}
		}}}
	}
	out, err := Run(shmem.Spec{Regs: 1}, loop,
		Options{MaxStates: 100_000, MaxDepth: 10},
		func(*State) (bool, error) { return false, nil })
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !out.Truncated {
		t.Fatal("infinite system not truncated")
	}
	if out.States != 11 { // depths 0..10
		t.Fatalf("States = %d, want 11", out.States)
	}
}

func TestRunMergesConvergentStates(t *testing.T) {
	// Two processes writing the same constant: interleavings converge to
	// identical configurations, which must merge.
	procs := func() []sim.ProcSpec {
		mk := func() sim.Program {
			return func(p *sim.Proc) {
				p.Write(0, "same")
				p.Write(0, "same")
			}
		}
		return []sim.ProcSpec{{ID: sim.Anonymous, Run: mk()}, {ID: sim.Anonymous, Run: mk()}}
	}
	out, err := Run(shmem.Spec{Regs: 1}, procs, DefaultOptions(),
		func(*State) (bool, error) { return false, nil })
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Naive tree: sum over interleavings ≥ 20 nodes; with merging the
	// count collapses (positions (i,j) with i,j ∈ 0..2, minus unreachable).
	if out.Truncated || out.States >= 20 {
		t.Fatalf("merging ineffective: %d states (truncated=%v)", out.States, out.Truncated)
	}
}

func TestRunErrorPropagation(t *testing.T) {
	boom := errors.New("boom")
	_, err := Run(shmem.Spec{Regs: 1}, writerProcs, DefaultOptions(),
		func(*State) (bool, error) { return false, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if _, err := Run(shmem.Spec{Regs: 1}, writerProcs, Options{}, nil); err == nil {
		t.Fatal("zero bounds accepted")
	}
}
