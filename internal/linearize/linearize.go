// Package linearize checks concurrent snapshot histories for
// linearizability in the style of Wing and Gong: it searches for a total
// order of the operations that respects real time (an operation that
// finished before another began must come first) and snapshot semantics
// (every Scan returns, for each component, the value of the latest
// preceding Update to it, or the initial nil).
//
// It is used by the test suites to validate the register-based snapshot
// constructions of package snapshot against executions of the deterministic
// simulator, whose step indices provide exact operation intervals.
package linearize

import (
	"fmt"
	"sort"

	"setagreement/internal/shmem"
)

// Op is one completed operation of a snapshot history.
type Op struct {
	// Proc identifies the calling process (used only for error text).
	Proc int
	// Inv and Res are the inclusive real-time interval of the operation:
	// Inv is the first instant it may take effect, Res the last. Two
	// operations are concurrent iff their intervals overlap.
	Inv, Res int
	// IsScan selects the semantics: Scan returns View; Update writes
	// Val to component Comp.
	IsScan bool
	Comp   int
	Val    shmem.Value
	View   []shmem.Value
}

// String renders the op for failure messages.
func (o Op) String() string {
	if o.IsScan {
		return fmt.Sprintf("p%d scan->%v @[%d,%d]", o.Proc, o.View, o.Inv, o.Res)
	}
	return fmt.Sprintf("p%d update(%d,%v) @[%d,%d]", o.Proc, o.Comp, o.Val, o.Inv, o.Res)
}

// Result is the outcome of a linearizability check.
type Result struct {
	OK bool
	// Witness is a valid linearization (indices into the input ops) when
	// OK.
	Witness []int
}

// CheckSnapshot decides whether the history is linearizable as a snapshot
// object with the given component count and all-nil initial state. The
// search is exponential in the worst case; histories should stay small
// (tens of operations).
func CheckSnapshot(components int, ops []Op) Result {
	c := &checker{
		components: components,
		ops:        ops,
		state:      make([]shmem.Value, components),
		used:       make([]bool, len(ops)),
		memo:       make(map[string]bool),
	}
	// Candidate exploration in a fixed order keeps the search
	// deterministic: earlier responses first.
	c.order = make([]int, len(ops))
	for i := range c.order {
		c.order[i] = i
	}
	sort.SliceStable(c.order, func(a, b int) bool {
		return ops[c.order[a]].Res < ops[c.order[b]].Res
	})
	if c.search(0) {
		return Result{OK: true, Witness: c.witness}
	}
	return Result{OK: false}
}

type checker struct {
	components int
	ops        []Op
	order      []int
	state      []shmem.Value
	used       []bool
	witness    []int
	memo       map[string]bool
}

// key encodes the used-set; the snapshot state is a function of the set of
// applied updates only up to per-component order, so the memo key includes
// the state too.
func (c *checker) key() string {
	b := make([]byte, 0, len(c.used)+16*c.components)
	for _, u := range c.used {
		if u {
			b = append(b, '1')
		} else {
			b = append(b, '0')
		}
	}
	b = append(b, '|')
	for _, v := range c.state {
		b = append(b, fmt.Sprintf("%v;", v)...)
	}
	return string(b)
}

// search tries to linearize the remaining operations; done counts
// linearized ops.
func (c *checker) search(done int) bool {
	if done == len(c.ops) {
		return true
	}
	k := c.key()
	if c.memo[k] {
		return false
	}

	// minRes over unlinearized ops: a candidate must have Inv ≤ minRes,
	// else the minRes op (already responded) would be ordered after an
	// operation that had not yet been invoked.
	minRes := int(^uint(0) >> 1)
	for i, op := range c.ops {
		if !c.used[i] && op.Res < minRes {
			minRes = op.Res
		}
	}
	for _, i := range c.order {
		if c.used[i] || c.ops[i].Inv > minRes {
			continue
		}
		op := c.ops[i]
		if op.IsScan {
			if !viewMatches(op.View, c.state) {
				continue
			}
			c.used[i] = true
			c.witness = append(c.witness, i)
			if c.search(done + 1) {
				return true
			}
			c.witness = c.witness[:len(c.witness)-1]
			c.used[i] = false
			continue
		}
		prev := c.state[op.Comp]
		c.state[op.Comp] = op.Val
		c.used[i] = true
		c.witness = append(c.witness, i)
		if c.search(done + 1) {
			return true
		}
		c.witness = c.witness[:len(c.witness)-1]
		c.used[i] = false
		c.state[op.Comp] = prev
	}
	c.memo[k] = true
	return false
}

func viewMatches(view, state []shmem.Value) bool {
	if len(view) != len(state) {
		return false
	}
	for i := range view {
		if view[i] != state[i] {
			return false
		}
	}
	return true
}
