package linearize

import (
	"testing"

	"setagreement/internal/shmem"
)

func upd(proc, inv, res, comp int, val shmem.Value) Op {
	return Op{Proc: proc, Inv: inv, Res: res, Comp: comp, Val: val}
}

func scan(proc, inv, res int, view ...shmem.Value) Op {
	return Op{Proc: proc, Inv: inv, Res: res, IsScan: true, View: view}
}

func TestSequentialHistory(t *testing.T) {
	ops := []Op{
		upd(0, 0, 0, 0, "a"),
		scan(0, 1, 1, "a", nil),
		upd(1, 2, 2, 1, "b"),
		scan(1, 3, 3, "a", "b"),
	}
	res := CheckSnapshot(2, ops)
	if !res.OK {
		t.Fatal("sequential history rejected")
	}
	if len(res.Witness) != 4 {
		t.Fatalf("witness = %v", res.Witness)
	}
}

func TestEmptyAndInitialState(t *testing.T) {
	if !CheckSnapshot(3, nil).OK {
		t.Fatal("empty history rejected")
	}
	if !CheckSnapshot(2, []Op{scan(0, 0, 5, nil, nil)}).OK {
		t.Fatal("initial scan of nils rejected")
	}
	if CheckSnapshot(2, []Op{scan(0, 0, 5, "x", nil)}).OK {
		t.Fatal("scan inventing a value accepted")
	}
}

func TestConcurrentUpdateVisibleOrNot(t *testing.T) {
	// An update concurrent with a scan may or may not be seen.
	base := upd(0, 0, 10, 0, "a")
	if !CheckSnapshot(1, []Op{base, scan(1, 5, 6, "a")}).OK {
		t.Fatal("concurrent update seen: rejected")
	}
	if !CheckSnapshot(1, []Op{base, scan(1, 5, 6, nil)}).OK {
		t.Fatal("concurrent update unseen: rejected")
	}
}

func TestRealTimeOrderEnforced(t *testing.T) {
	// The update finished before the scan began: it must be visible.
	ops := []Op{
		upd(0, 0, 1, 0, "a"),
		scan(1, 5, 6, nil),
	}
	if CheckSnapshot(1, ops).OK {
		t.Fatal("scan missing a completed update accepted")
	}
}

func TestStaleViewRejected(t *testing.T) {
	// Two sequential updates to the same component; a later scan must
	// not return the first value.
	ops := []Op{
		upd(0, 0, 1, 0, "old"),
		upd(0, 2, 3, 0, "new"),
		scan(1, 4, 5, "old"),
	}
	if CheckSnapshot(1, ops).OK {
		t.Fatal("stale view accepted")
	}
}

func TestSnapshotAtomicityViolation(t *testing.T) {
	// The classic non-atomic double-read anomaly: scans S1 and S2 that
	// each see one of two sequential updates but in opposite orders
	// cannot be linearized.
	ops := []Op{
		upd(0, 0, 1, 0, "x"), // comp0 ← x, done early
		upd(0, 2, 3, 1, "y"), // comp1 ← y, strictly later
		// S1 sees y but not x: impossible in any order.
		scan(1, 4, 5, nil, "y"),
	}
	if CheckSnapshot(2, ops).OK {
		t.Fatal("inverted visibility accepted")
	}
}

func TestConcurrentScansMayDisagreeConsistently(t *testing.T) {
	// Two scans concurrent with one update: one sees it, one does not —
	// fine as long as the one that saw it can linearize after it.
	ops := []Op{
		upd(0, 0, 10, 0, "v"),
		scan(1, 1, 2, nil),
		scan(2, 3, 4, "v"),
	}
	if !CheckSnapshot(1, ops).OK {
		t.Fatal("consistent disagreement rejected")
	}
	// Reversed real-time order of the two scans: the later scan returns
	// the older view — not linearizable.
	ops = []Op{
		upd(0, 0, 10, 0, "v"),
		scan(1, 1, 2, "v"),
		scan(2, 3, 4, nil),
	}
	if CheckSnapshot(1, ops).OK {
		t.Fatal("new-then-old visibility accepted")
	}
}

func TestWitnessIsValidLinearization(t *testing.T) {
	ops := []Op{
		upd(0, 0, 4, 0, "a"),
		upd(1, 1, 5, 0, "b"),
		scan(2, 2, 6, "a"),
		scan(2, 7, 8, "b"),
	}
	res := CheckSnapshot(1, ops)
	if !res.OK {
		t.Fatal("valid history rejected")
	}
	// Replay the witness and confirm semantics.
	state := make([]shmem.Value, 1)
	for _, i := range res.Witness {
		op := ops[i]
		if op.IsScan {
			for c, v := range op.View {
				if state[c] != v {
					t.Fatalf("witness %v invalid at op %v", res.Witness, op)
				}
			}
			continue
		}
		state[op.Comp] = op.Val
	}
}

func TestOpString(t *testing.T) {
	if upd(1, 0, 1, 2, "v").String() == "" || scan(1, 0, 1, "v").String() == "" {
		t.Fatal("empty op strings")
	}
}
