package lowerbound

import (
	"fmt"
	"sort"

	"setagreement/internal/core"
	"setagreement/internal/sim"
)

// CloneOptions bound the Theorem 10 adversary.
type CloneOptions struct {
	// Values is how many distinct input values to probe for matching
	// register signatures.
	Values int
	// SoloBudget is the step budget for each probing solo run; exceeding
	// it is a liveness failure (a solo run must terminate).
	SoloBudget int
}

// DefaultCloneOptions returns generous defaults for small systems.
func DefaultCloneOptions() CloneOptions {
	return CloneOptions{Values: 64, SoloBudget: 200_000}
}

// CloneReport is the outcome of the anonymous clone-and-glue adversary.
type CloneReport struct {
	Verdict Verdict
	Detail  string
	// Outputs are the distinct values decided in the glued execution.
	Outputs []int
	K       int
	// Locations is the writable-location count of the attacked algorithm.
	Locations int
	// Signature is the shared register sequence R of the glued groups.
	Signature []sim.Loc
	// Groups is the number of value groups glued (k+1 on success).
	Groups int
	// ProcessesUsed counts mains plus clones in the glued execution.
	ProcessesUsed int
	// ProcessesNeeded is c·(m + q(q−1)/2) for the best candidate
	// signature, even if it exceeded n.
	ProcessesNeeded int
}

func (r *CloneReport) String() string {
	return fmt.Sprintf("clone attack on %d locations (k=%d): %v — outputs %v, |R|=%d, procs %d/%d (%s)",
		r.Locations, r.K, r.Verdict, r.Outputs, len(r.Signature), r.ProcessesUsed, r.ProcessesNeeded, r.Detail)
}

// soloTrace is the record of one value's solo execution.
type soloTrace struct {
	val    int
	steps  []sim.Op // executed shared-memory ops in order
	sig    []sim.Loc
	output int
}

// sigKey renders a signature for grouping.
func sigKey(sig []sim.Loc) string {
	s := ""
	for _, l := range sig {
		s += l.String() + "|"
	}
	return s
}

// CloneAttack runs the Lemma 9 / Theorem 10 construction against an
// anonymous one-shot algorithm for m = 1: it probes solo executions of many
// input values, finds k+1 values whose executions write the same register
// sequence R, and glues them together with paused clones so that every group
// runs exactly as if solo, outputting k+1 distinct values.
//
// The attack needs n ≥ (k+1)(1 + q(q−1)/2) processes, q = |R|: this is the
// source of the √(m(n/k−2)) bound. When n is too small for the clone army
// the verdict is VerdictNone, which is the expected outcome at or above the
// bound.
func CloneAttack(alg core.Algorithm, opts CloneOptions) (*CloneReport, error) {
	if !alg.Anonymous() {
		return nil, fmt.Errorf("lowerbound: CloneAttack needs an anonymous algorithm (Theorem 10)")
	}
	p := alg.Params()
	if p.M != 1 {
		return nil, fmt.Errorf("lowerbound: CloneAttack implements the m=1 construction, got m=%d", p.M)
	}
	if opts.Values <= 0 || opts.SoloBudget <= 0 {
		return nil, fmt.Errorf("lowerbound: all CloneOptions must be positive")
	}

	report := &CloneReport{K: p.K}
	mem, err := sim.NewMemory(alg.Spec())
	if err != nil {
		return nil, err
	}
	report.Locations = mem.NumLocations()

	// Phase 1: probe solo executions α(v) and group by signature R(v).
	groups := make(map[string][]*soloTrace)
	for v := 1; v <= opts.Values; v++ {
		tr, verdict, detail, err := soloProbe(alg, v, opts.SoloBudget)
		if err != nil {
			return nil, err
		}
		if verdict == VerdictLiveness {
			report.Verdict = VerdictLiveness
			report.Detail = detail
			return report, nil
		}
		groups[sigKey(tr.sig)] = append(groups[sigKey(tr.sig)], tr)
	}

	// Phase 2: find a signature shared by ≥ k+1 values that fits the
	// process budget n.
	c := p.K + 1
	var best []*soloTrace
	bestNeeded := 0
	for _, g := range groups {
		if len(g) < c {
			continue
		}
		q := len(g[0].sig)
		needed := c * (1 + q*(q-1)/2)
		if best == nil || needed < bestNeeded {
			best, bestNeeded = g[:c], needed
		}
	}
	if best == nil {
		report.Verdict = VerdictNone
		report.Detail = fmt.Sprintf("no register sequence shared by %d of %d probed values", c, opts.Values)
		return report, nil
	}
	report.Signature = best[0].sig
	report.Groups = c
	report.ProcessesNeeded = bestNeeded
	if bestNeeded > p.N {
		report.Verdict = VerdictNone
		report.Detail = fmt.Sprintf("clone army needs %d processes but n=%d (the √(m(n/k−2)) bound holds here)",
			bestNeeded, p.N)
		return report, nil
	}

	// Phase 3: glue.
	return glue(alg, best, report)
}

// soloProbe runs one anonymous process with input v solo, recording its
// shared-memory trace and its distinct-first-write signature.
func soloProbe(alg core.Algorithm, v, budget int) (*soloTrace, Verdict, string, error) {
	procs := []sim.ProcSpec{{
		ID:  sim.Anonymous,
		Run: core.Driver(alg.NewProcess(sim.Anonymous), []int{v}),
	}}
	r, err := sim.NewRunner(alg.Spec(), procs)
	if err != nil {
		return nil, VerdictNone, "", err
	}
	defer r.Abort()
	r.Record(true)

	for steps := 0; !r.IsDone(0); steps++ {
		if steps > budget {
			return nil, VerdictLiveness,
				fmt.Sprintf("solo run with input %d did not terminate in %d steps", v, budget), nil
		}
		if _, err := r.Step(0); err != nil {
			return nil, VerdictNone, "", err
		}
		if err := r.Err(); err != nil {
			return nil, VerdictNone, "", err
		}
	}
	tr := &soloTrace{val: v}
	seen := make(map[sim.Loc]bool)
	for _, rec := range r.Log() {
		tr.steps = append(tr.steps, rec.Op)
		if rec.Op.IsWrite() {
			if loc, ok := rec.Op.Target(); ok && !seen[loc] {
				seen[loc] = true
				tr.sig = append(tr.sig, loc)
			}
		}
	}
	outs := r.Outputs(0)
	if len(outs) != 1 {
		return nil, VerdictNone, "", fmt.Errorf("lowerbound: solo run decided %d instances, want 1", len(outs))
	}
	tr.output = outs[0].Val.(int)
	return tr, VerdictNone, "", nil
}

// glueGroup is the runtime state of one value group during the glue.
type glueGroup struct {
	tr   *soloTrace
	main int // runner index of the main process
	// clones[j][u] is the runner index of the clone released in stage
	// j+2's block write to restore R_{u+1} (0-based: stage j covers
	// sig[0..j-1], clone pauses before the trace's last write to sig[u]
	// prior to the stage boundary).
	clones [][]int
	// pauseAt[cloneIdx] is the main-trace write ordinal at which that
	// clone freezes (it shadows the main until poised at that write).
	// Keyed by runner index.
	pauseAt map[int]int
	// cuts[j] is the index in tr.steps of the first write to sig[j]
	// (j = 0..q−1); cuts[q] = len(tr.steps).
	cuts []int
	// lastWrite[j][u] is the index in tr.steps of the last write to
	// sig[u] strictly before cuts[j].
	lastWrite [][]int
}

// glue builds and runs the glued execution of Lemma 9's claim, stages
// j = 0..q, and counts distinct outputs.
func glue(alg core.Algorithm, group []*soloTrace, report *CloneReport) (*CloneReport, error) {
	q := len(report.Signature)
	c := len(group)

	// Build the process universe: per group, 1 main + q(q−1)/2 clones,
	// all with the group's input (anonymous and identically programmed).
	var procs []sim.ProcSpec
	glueGroups := make([]*glueGroup, c)
	for gi, tr := range group {
		g := &glueGroup{tr: tr, pauseAt: make(map[int]int)}
		g.main = len(procs)
		procs = append(procs, sim.ProcSpec{
			ID:  sim.Anonymous,
			Run: core.Driver(alg.NewProcess(sim.Anonymous), []int{tr.val}),
		})
		g.computeCuts(report.Signature)

		g.clones = make([][]int, q+1)
		for j := 2; j <= q; j++ {
			g.clones[j] = make([]int, j-1)
			for u := 0; u < j-1; u++ {
				idx := len(procs)
				procs = append(procs, sim.ProcSpec{
					ID:  sim.Anonymous,
					Run: core.Driver(alg.NewProcess(sim.Anonymous), []int{tr.val}),
				})
				g.clones[j][u] = idx
				g.pauseAt[idx] = g.lastWrite[j-1][u]
			}
		}
		glueGroups[gi] = g
	}
	report.ProcessesUsed = len(procs)
	if len(procs) > alg.Params().N {
		report.Verdict = VerdictNone
		report.Detail = fmt.Sprintf("universe of %d processes exceeds n=%d", len(procs), alg.Params().N)
		return report, nil
	}

	r, err := sim.NewRunner(alg.Spec(), procs)
	if err != nil {
		return nil, err
	}
	defer r.Abort()

	gl := &gluer{r: r, groups: glueGroups, sig: report.Signature}
	if err := gl.run(); err != nil {
		return nil, fmt.Errorf("lowerbound: glue: %w", err)
	}

	distinct := make(map[int]bool)
	for _, g := range glueGroups {
		outs := r.Outputs(g.main)
		if len(outs) != 1 {
			return nil, fmt.Errorf("lowerbound: glued main for value %d decided %d instances", g.tr.val, len(outs))
		}
		distinct[outs[0].Val.(int)] = true
	}
	for v := range distinct {
		report.Outputs = append(report.Outputs, v)
	}
	sort.Ints(report.Outputs)
	if len(distinct) > report.K {
		report.Verdict = VerdictSafety
		report.Detail = fmt.Sprintf("%d distinct outputs exceed k=%d in a legal %d-process execution",
			len(distinct), report.K, len(procs))
	} else {
		report.Verdict = VerdictNone
		report.Detail = fmt.Sprintf("glued execution produced only %d distinct outputs", len(distinct))
	}
	return report, nil
}

// computeCuts fills cuts and lastWrite from the solo trace.
func (g *glueGroup) computeCuts(sig []sim.Loc) {
	q := len(sig)
	locIdx := make(map[sim.Loc]int, q)
	for i, l := range sig {
		locIdx[l] = i
	}
	g.cuts = make([]int, q+1)
	for i := range g.cuts {
		g.cuts[i] = -1
	}
	g.cuts[q] = len(g.tr.steps)
	// lastSeen[u] tracks the most recent write index to sig[u].
	lastSeen := make([]int, q)
	for i := range lastSeen {
		lastSeen[i] = -1
	}
	g.lastWrite = make([][]int, q+1)
	next := 0 // next signature register expected to be first-written
	for si, op := range g.tr.steps {
		if !op.IsWrite() {
			continue
		}
		loc, _ := op.Target()
		u := locIdx[loc]
		if u == next {
			g.cuts[next] = si
			// Record lastWrite snapshot at this cut: last writes
			// strictly before the first write to sig[next].
			snap := make([]int, q)
			copy(snap, lastSeen)
			g.lastWrite[next] = snap
			next++
		}
		lastSeen[u] = si
	}
	// Snapshot at the end (stage q uses lastWrite[q] only conceptually).
	final := make([]int, q)
	copy(final, lastSeen)
	g.lastWrite[q] = final
}

// gluer drives the staged glued execution. It tracks per-process executed
// step counts so that clones can shadow their main and freeze exactly at
// their pause ordinals.
type gluer struct {
	r      *sim.Runner
	groups []*glueGroup
	sig    []sim.Loc
	steps  map[int]int // runner index -> executed step count
}

func (gl *gluer) step(idx int) (sim.Op, error) {
	op, err := gl.r.Step(idx)
	if err != nil {
		return op, err
	}
	if gl.steps == nil {
		gl.steps = make(map[int]int)
	}
	gl.steps[idx]++
	return op, gl.r.Err()
}

// run executes β_0 then stages 1..q of the claim in Lemma 9's proof.
func (gl *gluer) run() error {
	q := len(gl.sig)
	// β_0: every main (with shadows) runs its maximal write-free prefix,
	// parking poised at its first write.
	for _, g := range gl.groups {
		if err := gl.advanceMain(g, g.cuts0()); err != nil {
			return err
		}
	}
	for j := 1; j <= q; j++ {
		for _, g := range gl.groups {
			// Block write: release the stage-j clones, one step
			// each, restoring sig[0..j-2] to the group's own last
			// written values.
			for _, cl := range g.stageClones(j) {
				if _, err := gl.step(cl); err != nil {
					return fmt.Errorf("block write stage %d: %w", j, err)
				}
			}
			// Main continues: first step writes sig[j-1], then on
			// to poised at the first write to sig[j] (or to
			// completion in the final stage).
			target := len(g.tr.steps)
			if j < q {
				target = g.cuts[j]
			}
			if err := gl.advanceMain(g, target); err != nil {
				return err
			}
		}
	}
	return nil
}

func (g *glueGroup) cuts0() int {
	if len(g.cuts) > 0 && g.cuts[0] >= 0 {
		return g.cuts[0]
	}
	return len(g.tr.steps)
}

func (g *glueGroup) stageClones(j int) []int {
	if j < 2 || j >= len(g.clones) || g.clones[j] == nil {
		return nil
	}
	return g.clones[j]
}

// advanceMain steps the main until it has executed `until` trace steps,
// shadowing each step with every clone that has not yet reached its pause
// ordinal, and verifying the main replays its solo trace exactly (the
// invisibility invariant of the construction).
func (gl *gluer) advanceMain(g *glueGroup, until int) error {
	for done := gl.steps[g.main]; done < until; done = gl.steps[g.main] {
		op, err := gl.step(g.main)
		if err != nil {
			return fmt.Errorf("main step %d (value %d): %w", done, g.tr.val, err)
		}
		if op != g.tr.steps[done] {
			return fmt.Errorf("glued main for value %d diverged from its solo trace at step %d: %v vs %v",
				g.tr.val, done, op, g.tr.steps[done])
		}
		// Shadows replicate the step immediately, in deterministic
		// stage order; a clone whose pause ordinal is this step stays
		// poised instead.
		for j := 2; j < len(g.clones); j++ {
			for _, cl := range g.clones[j] {
				// A clone shadows while strictly below its pause
				// ordinal; at the ordinal it stays poised, and
				// once released (count = pause+1) it never moves
				// again.
				if gl.steps[cl] == done && done < g.pauseAt[cl] {
					if _, err := gl.step(cl); err != nil {
						return fmt.Errorf("clone shadow step: %w", err)
					}
				}
			}
		}
	}
	return nil
}
