package lowerbound

import (
	"testing"

	"setagreement/internal/core"
)

func mustAnon(t *testing.T, p core.Params, r int) core.Algorithm {
	t.Helper()
	alg, err := core.NewAnonComponents(p, r, false)
	if err != nil {
		t.Fatalf("NewAnonComponents: %v", err)
	}
	return alg
}

func TestCloneAttackBeatsUndersizedAnonymous(t *testing.T) {
	// With few components and many processes, the clone army fits and
	// the glued execution must output k+1 distinct values.
	tests := []struct {
		p core.Params
		r int
	}{
		// k=1: needs n ≥ 2(1+r(r-1)/2).
		{p: core.Params{N: 8, M: 1, K: 1}, r: 2},  // needs 4
		{p: core.Params{N: 10, M: 1, K: 1}, r: 3}, // needs 8
		{p: core.Params{N: 16, M: 1, K: 1}, r: 4}, // needs 14
		// k=2: needs n ≥ 3(1+r(r-1)/2).
		{p: core.Params{N: 9, M: 1, K: 2}, r: 2},  // needs 6
		{p: core.Params{N: 12, M: 1, K: 2}, r: 3}, // needs 12
	}
	for _, tt := range tests {
		rep, err := CloneAttack(mustAnon(t, tt.p, tt.r), DefaultCloneOptions())
		if err != nil {
			t.Fatalf("%v r=%d: %v", tt.p, tt.r, err)
		}
		if rep.Verdict != VerdictSafety {
			t.Errorf("%v r=%d: verdict %v (%s), want safety violation",
				tt.p, tt.r, rep.Verdict, rep.Detail)
			continue
		}
		if len(rep.Outputs) != tt.p.K+1 {
			t.Errorf("%v r=%d: %d distinct outputs, want %d", tt.p, tt.r, len(rep.Outputs), tt.p.K+1)
		}
		if rep.ProcessesUsed > tt.p.N {
			t.Errorf("%v r=%d: used %d processes > n", tt.p, tt.r, rep.ProcessesUsed)
		}
	}
}

func TestCloneAttackFailsWhenCloneArmyTooBig(t *testing.T) {
	// Same component counts but too few processes: the attack must
	// report that the bound holds (n < (k+1)(1 + r(r-1)/2)).
	tests := []struct {
		p core.Params
		r int
	}{
		{p: core.Params{N: 3, M: 1, K: 1}, r: 2},  // needs 4 > 3
		{p: core.Params{N: 7, M: 1, K: 1}, r: 3},  // needs 8 > 7
		{p: core.Params{N: 11, M: 1, K: 2}, r: 3}, // needs 12 > 11
	}
	for _, tt := range tests {
		rep, err := CloneAttack(mustAnon(t, tt.p, tt.r), DefaultCloneOptions())
		if err != nil {
			t.Fatalf("%v r=%d: %v", tt.p, tt.r, err)
		}
		if rep.Verdict != VerdictNone {
			t.Errorf("%v r=%d: verdict %v (%s), want none", tt.p, tt.r, rep.Verdict, rep.Detail)
		}
		if rep.ProcessesNeeded <= tt.p.N && rep.ProcessesNeeded != 0 {
			t.Errorf("%v r=%d: ProcessesNeeded=%d should exceed n=%d",
				tt.p, tt.r, rep.ProcessesNeeded, tt.p.N)
		}
	}
}

func TestCloneAttackOnPaperSizedAlgorithm(t *testing.T) {
	// The paper-sized anonymous algorithm has r = (m+1)(n−k)+m² > √n
	// components, so the clone army can never fit: verdict none.
	p := core.Params{N: 6, M: 1, K: 2}
	alg, err := core.NewAnonOneShot(p)
	if err != nil {
		t.Fatalf("NewAnonOneShot: %v", err)
	}
	rep, err := CloneAttack(alg, DefaultCloneOptions())
	if err != nil {
		t.Fatalf("CloneAttack: %v", err)
	}
	if rep.Verdict != VerdictNone {
		t.Errorf("verdict %v (%s), want none", rep.Verdict, rep.Detail)
	}
}

func TestCloneAttackRejectsNonAnonymous(t *testing.T) {
	alg, err := core.NewOneShot(core.Params{N: 4, M: 1, K: 1})
	if err != nil {
		t.Fatalf("NewOneShot: %v", err)
	}
	if _, err := CloneAttack(alg, DefaultCloneOptions()); err == nil {
		t.Fatal("CloneAttack accepted a non-anonymous algorithm")
	}
}

func TestCloneAttackRejectsMGreaterThanOne(t *testing.T) {
	alg, err := core.NewAnonOneShot(core.Params{N: 6, M: 2, K: 3})
	if err != nil {
		t.Fatalf("NewAnonOneShot: %v", err)
	}
	if _, err := CloneAttack(alg, DefaultCloneOptions()); err == nil {
		t.Fatal("CloneAttack accepted m>1")
	}
}

func TestCloneReportString(t *testing.T) {
	rep := &CloneReport{Verdict: VerdictSafety, K: 1, Outputs: []int{1, 2}}
	if rep.String() == "" {
		t.Fatal("empty report string")
	}
}
