package lowerbound

import (
	"fmt"
	"sort"

	"setagreement/internal/core"
	"setagreement/internal/explore"
	"setagreement/internal/sim"
)

// CoverOptions bound the Theorem 2 adversary.
type CoverOptions struct {
	// FragmentBudget is the maximum number of solo steps per member when
	// hunting for a write outside the covered set before declaring the
	// group covered. Exceeded budgets are re-validated during the splice.
	FragmentBudget int
	// GammaBudget is the maximum number of steps a spliced fragment may
	// take to finish instance s+1; exceeding it is a liveness failure
	// (the fragment runs with at most m movers).
	GammaBudget int
	// MaxInstances is the input supply per process. The attack fails with
	// an error if the covering execution consumes it.
	MaxInstances int
	// ExploreStates and ExploreDepth bound the exhaustive escape oracle
	// used for groups of more than one process (m > 1); an exploration
	// that finishes within the bounds makes the covering exact.
	ExploreStates int
	ExploreDepth  int
	// SplitProbes bounds the per-group search for a γ interleaving in
	// which all group members decide distinct values (the execution
	// Lemma 1 promises). Zero disables the search (groups then run
	// sequentially and may under-deliver for m > 1).
	SplitProbes int
}

// DefaultCoverOptions returns generous defaults for small systems.
func DefaultCoverOptions() CoverOptions {
	return CoverOptions{
		FragmentBudget: 5000,
		GammaBudget:    100_000,
		MaxInstances:   64,
		ExploreStates:  30_000,
		ExploreDepth:   60,
		SplitProbes:    400,
	}
}

// CoverPhase records one phase of the covering construction: the final group
// Q_j, the frozen block writers P_j, and the covered locations A_j
// (parallel to P_j: P_j[i] is poised to write A_j[i]).
type CoverPhase struct {
	Q []int
	P []int
	A []sim.Loc
}

// CoverReport is the adversary's outcome.
type CoverReport struct {
	Verdict  Verdict
	Detail   string
	Instance int // the attacked instance s+1
	// Outputs are the distinct values decided in the attacked instance of
	// the spliced execution, sorted.
	Outputs []int
	K       int
	// Locations is the number of writable locations of the attacked
	// algorithm (the register count under attack).
	Locations int
	Phases    []CoverPhase
	// ScheduleLen is the length of the covering execution α (pass 1).
	ScheduleLen int
	// SpliceSteps is the total steps of the spliced witness execution.
	SpliceSteps int
}

func (r *CoverReport) String() string {
	return fmt.Sprintf("cover attack on %d locations (k=%d): %v — instance %d outputs %v (%s)",
		r.Locations, r.K, r.Verdict, r.Instance, r.Outputs, r.Detail)
}

// coverInput is the deterministic input of process id for instance t
// (1-based): distinct across processes and instances, so the fresh instance
// s+1 has pairwise distinct inputs.
func coverInput(id, t int) int { return 1000*t + id }

// CoverAttack runs the Theorem 2 construction against a repeated
// set-agreement algorithm. The algorithm's writable locations play the role
// of the registers; to attack below the bound, build the algorithm with
// fewer than n+m−k locations (e.g. core.NewRepeatedComponents).
//
// Anonymous algorithms are attacked too: the construction distinguishes
// processes by position and input, never by identifier, and the n+m−k
// bound applies to anonymous repeated agreement as a corollary (the
// anonymous-repeated row of the paper's Figure 1).
func CoverAttack(alg core.Algorithm, opts CoverOptions) (*CoverReport, error) {
	if opts.FragmentBudget <= 0 || opts.GammaBudget <= 0 || opts.MaxInstances <= 0 {
		return nil, fmt.Errorf("lowerbound: all CoverOptions budgets must be positive")
	}
	p := alg.Params()
	b := &coverBuilder{alg: alg, p: p, opts: opts}
	return b.run()
}

type coverBuilder struct {
	alg  core.Algorithm
	p    core.Params
	opts CoverOptions

	schedule []int
	splice2  []int // pass-2 schedule: α segments plus γ steps
	phases   []*coverPhase
	memAfter []*sim.Memory // memory after each β_j (pass-1 ground truth)
}

type coverPhase struct {
	q     []int
	pList []int
	aList []sim.Loc
	aSet  map[sim.Loc]bool
	djPos int // schedule position of D_j (γ_j insertion point)
}

func (ph *coverPhase) export() CoverPhase {
	out := CoverPhase{
		Q: append([]int(nil), ph.q...),
		P: append([]int(nil), ph.pList...),
		A: append([]sim.Loc(nil), ph.aList...),
	}
	return out
}

// newProcs builds fresh process specs; pass 1 and pass 2 must use fresh
// algorithm state. Anonymous algorithms get no identifier — the adversary
// only ever addresses processes by index.
func (b *coverBuilder) newProcs() []sim.ProcSpec {
	procs := make([]sim.ProcSpec, b.p.N)
	for i := 0; i < b.p.N; i++ {
		inputs := make([]int, b.opts.MaxInstances)
		for t := range inputs {
			inputs[t] = coverInput(i, t+1)
		}
		id := i
		if b.alg.Anonymous() {
			id = sim.Anonymous
		}
		procs[i] = sim.ProcSpec{ID: id, Run: core.Driver(b.alg.NewProcess(id), inputs)}
	}
	return procs
}

func (b *coverBuilder) run() (*CoverReport, error) {
	report := &CoverReport{K: b.p.K}

	// Pass 1: build the covering execution α.
	r1, err := sim.NewRunner(b.alg.Spec(), b.newProcs())
	if err != nil {
		return nil, err
	}
	defer r1.Abort()
	report.Locations = r1.Memory().NumLocations()

	verdict, detail, err := b.buildAlpha(r1)
	if err != nil {
		return nil, err
	}
	if verdict != VerdictSafety { // construction could not proceed
		report.Verdict = verdict
		report.Detail = detail
		report.ScheduleLen = len(b.schedule)
		for _, ph := range b.phases {
			report.Phases = append(report.Phases, ph.export())
		}
		return report, nil
	}
	report.ScheduleLen = len(b.schedule)
	for _, ph := range b.phases {
		report.Phases = append(report.Phases, ph.export())
	}

	// s = one more than the largest completed instance count: no process
	// of α has started instance s+1.
	s := 0
	for i := 0; i < r1.NumProcs(); i++ {
		if c := len(r1.Outputs(i)); c > s {
			s = c
		}
	}
	s++
	target := s + 1
	report.Instance = target
	if target > b.opts.MaxInstances {
		return nil, fmt.Errorf("lowerbound: covering execution reached instance %d; raise MaxInstances (%d)",
			target, b.opts.MaxInstances)
	}

	// Pass 2: splice the γ fragments into α and re-execute.
	return b.splice(report, target)
}

// buildAlpha runs the construction of Figure 2, phase by phase, on r1.
// It returns VerdictSafety when the construction completed (the splice will
// decide the final verdict), or VerdictNone with a reason when it could not.
func (b *coverBuilder) buildAlpha(r1 *sim.Runner) (Verdict, string, error) {
	k, m, n := b.p.K, b.p.M, b.p.N
	c := (k + 1 + m - 1) / m // ⌈(k+1)/m⌉

	inQ := make(map[int]bool)  // current members of any group (final so far)
	ever := make(map[int]bool) // ever rostered, for fresh-first picking

	// pick selects count processes outside `exclude`, preferring processes
	// never rostered before.
	pick := func(count int, exclude map[int]bool) ([]int, bool) {
		var fresh, reused []int
		for i := 0; i < n; i++ {
			if exclude[i] {
				continue
			}
			if ever[i] {
				reused = append(reused, i)
			} else {
				fresh = append(fresh, i)
			}
		}
		pool := append(fresh, reused...)
		if len(pool) < count {
			return nil, false
		}
		return pool[:count], true
	}

	step := func(pid int) error {
		if _, err := r1.Step(pid); err != nil {
			return err
		}
		b.schedule = append(b.schedule, pid)
		return r1.Err()
	}

	for j := 1; j <= c-1; j++ {
		size := m
		if j == 1 {
			size = k + 1 - (c-1)*m
		}
		ph := &coverPhase{aSet: make(map[sim.Loc]bool)}
		frozen := make(map[int]bool)

		members, ok := pick(size, union(inQ, frozen))
		if !ok {
			return VerdictNone, fmt.Sprintf("phase %d: not enough processes to form Q_%d", j, j), nil
		}
		ph.q = members
		for _, q := range members {
			inQ[q] = true
			ever[q] = true
		}

		// Covering loop: extend α_j until no fragment by Q_j escapes A_j.
		for {
			if len(ph.aSet) == r1.Memory().NumLocations() {
				break // every location covered: exact
			}
			escQ, escLoc, found, err := b.findEscape(r1, ph, step)
			if err != nil {
				return VerdictNone, "", err
			}
			if !found {
				break // budget-covered; re-validated during splice
			}
			// Freeze escQ poised at its write to escLoc; swap in a
			// replacement.
			ph.pList = append(ph.pList, escQ)
			ph.aList = append(ph.aList, escLoc)
			ph.aSet[escLoc] = true
			frozen[escQ] = true
			delete(inQ, escQ)
			repl, ok := pick(1, union(inQ, frozen))
			if !ok {
				return VerdictNone,
					fmt.Sprintf("phase %d: no replacement process after covering %d locations (the bound holds here)",
						j, len(ph.aSet)), nil
			}
			for i, q := range ph.q {
				if q == escQ {
					ph.q[i] = repl[0]
				}
			}
			inQ[repl[0]] = true
			ever[repl[0]] = true
		}

		ph.djPos = len(b.schedule)
		b.phases = append(b.phases, ph)

		// β_j: the frozen processes perform their poised writes, one
		// step each, obliterating A_j.
		for _, pid := range ph.pList {
			if err := step(pid); err != nil {
				return VerdictNone, "", err
			}
		}
		b.memAfter = append(b.memAfter, r1.Memory().Clone())
	}

	// Q_c: m fresh processes; D_c is the end of α.
	qc, ok := pick(m, inQ)
	if !ok {
		return VerdictNone, "not enough processes to form Q_c", nil
	}
	phc := &coverPhase{q: qc, djPos: len(b.schedule), aSet: make(map[sim.Loc]bool)}
	b.phases = append(b.phases, phc)
	return VerdictSafety, "", nil
}

// findEscape extends α_j by steps of Q_j members until some member is poised
// to write outside A_j. Solo fragments per member decide the question for
// m = 1 (fragments of a single deterministic process are solo runs); for
// larger groups a bounded exhaustive exploration over all interleavings of
// the group decides it — exactly, when the exploration completes within its
// bounds.
func (b *coverBuilder) findEscape(r1 *sim.Runner, ph *coverPhase, step func(int) error) (int, sim.Loc, bool, error) {
	escapeAt := func(r *sim.Runner, pid int) (sim.Loc, bool) {
		op, ok := r.Poised(pid)
		if !ok || !op.IsWrite() {
			return sim.Loc{}, false
		}
		loc, ok := op.Target()
		return loc, ok && !ph.aSet[loc]
	}

	// Solo fragments per member.
	for _, q := range ph.q {
		for budget := b.opts.FragmentBudget; budget > 0; budget-- {
			if _, ok := r1.Poised(q); !ok {
				return 0, sim.Loc{}, false,
					fmt.Errorf("lowerbound: process %d exhausted its %d instances during covering; raise MaxInstances",
						q, b.opts.MaxInstances)
			}
			if loc, esc := escapeAt(r1, q); esc {
				return q, loc, true, nil
			}
			if err := step(q); err != nil {
				return 0, sim.Loc{}, false, err
			}
		}
	}
	if len(ph.q) == 1 {
		return 0, sim.Loc{}, false, nil
	}

	// Interleaved fragments: exhaustive bounded search over Q_j-only
	// continuations from the current configuration.
	out, err := explore.Run(b.alg.Spec(), b.newProcs, explore.Options{
		MaxStates: b.opts.ExploreStates,
		MaxDepth:  b.opts.ExploreDepth,
		Procs:     append([]int(nil), ph.q...),
		Base:      append([]int(nil), b.schedule...),
	}, func(st *explore.State) (bool, error) {
		for _, q := range ph.q {
			if _, esc := escapeAt(st.Runner, q); esc {
				return true, nil
			}
		}
		return false, nil
	})
	if err != nil {
		return 0, sim.Loc{}, false, err
	}
	if !out.Stopped {
		return 0, sim.Loc{}, false, nil
	}
	// Apply the escaping fragment to α and report the poised member.
	for _, pid := range out.Found {
		if err := step(pid); err != nil {
			return 0, sim.Loc{}, false, err
		}
	}
	for _, q := range ph.q {
		if loc, esc := escapeAt(r1, q); esc {
			return q, loc, true, nil
		}
	}
	return 0, sim.Loc{}, false, fmt.Errorf("lowerbound: internal error: explored escape vanished on replay")
}

// gammaFailure reports a γ fragment that could not proceed: a liveness
// failure or an approximate covering detected at splice time.
type gammaFailure struct {
	verdict Verdict
	detail  string
}

// stepGamma advances process q by one step within γ of phase ph, enforcing
// the A_j containment (except in the last phase) and appending the step to
// the splice schedule. A non-nil *gammaFailure means the fragment is
// invalid; error means infrastructure failure.
func (b *coverBuilder) stepGamma(r2 *sim.Runner, ph *coverPhase, phaseIdx, q int, last bool) (*gammaFailure, error) {
	op, ok := r2.Poised(q)
	if !ok {
		return nil, fmt.Errorf("lowerbound: γ process %d terminated early; raise MaxInstances", q)
	}
	if !last && op.IsWrite() {
		if loc, ok := op.Target(); ok && !ph.aSet[loc] {
			return &gammaFailure{
				verdict: VerdictNone,
				detail: fmt.Sprintf("covering of phase %d was approximate: γ fragment wrote %v outside A_%d",
					phaseIdx+1, loc, phaseIdx+1),
			}, nil
		}
	}
	if _, err := r2.Step(q); err != nil {
		return nil, fmt.Errorf("lowerbound: γ step: %w", err)
	}
	b.splice2 = append(b.splice2, q)
	return nil, r2.Err()
}

// runGammaMember steps q until it has output instance `until`.
func (b *coverBuilder) runGammaMember(r2 *sim.Runner, ph *coverPhase, phaseIdx, q, until int, last bool) (*gammaFailure, error) {
	for steps := 0; !hasInstance(r2.Outputs(q), until); steps++ {
		if steps > b.opts.GammaBudget {
			return &gammaFailure{
				verdict: VerdictLiveness,
				detail: fmt.Sprintf("γ_%d: process %d did not complete instance %d within %d steps (m-obstruction-freedom violated)",
					phaseIdx+1, q, until, b.opts.GammaBudget),
			}, nil
		}
		if fail, err := b.stepGamma(r2, ph, phaseIdx, q, last); fail != nil || err != nil {
			return fail, err
		}
	}
	return nil, nil
}

// splice re-executes α with the γ fragments inserted at each D_j and counts
// the distinct outputs of the fresh instance.
func (b *coverBuilder) splice(report *CoverReport, target int) (*CoverReport, error) {
	r2, err := sim.NewRunner(b.alg.Spec(), b.newProcs())
	if err != nil {
		return nil, err
	}
	defer r2.Abort()

	runSegment := func(seg []int) error {
		if err := r2.RunSchedule(seg); err != nil {
			return fmt.Errorf("lowerbound: splice α segment: %w", err)
		}
		b.splice2 = append(b.splice2, seg...)
		return nil
	}

	pos := 0
	for j, ph := range b.phases {
		// α segment up to D_j.
		if err := runSegment(b.schedule[pos:ph.djPos]); err != nil {
			return nil, err
		}
		pos = ph.djPos

		// γ_j: the group runs with ≤ m movers until every member has
		// output the attacked instance. Members first reach the
		// instance's doorstep one by one; then, for groups larger
		// than one, an interleaving is searched in which the members
		// decide pairwise distinct values (Lemma 1 promises one
		// exists); sequential execution is the fallback.
		last := j == len(b.phases)-1
		for _, q := range ph.q {
			fail, err := b.runGammaMember(r2, ph, j, q, target-1, last)
			if err != nil {
				return nil, err
			}
			if fail != nil {
				report.Verdict = fail.verdict
				report.Detail = fail.detail
				return report, nil
			}
		}
		if len(ph.q) > 1 && b.opts.SplitProbes > 0 {
			if err := b.searchSplit(r2, ph, j, target, last); err != nil {
				return nil, err
			}
		}
		for _, q := range ph.q {
			fail, err := b.runGammaMember(r2, ph, j, q, target, last)
			if err != nil {
				return nil, err
			}
			if fail != nil {
				report.Verdict = fail.verdict
				report.Detail = fail.detail
				return report, nil
			}
		}

		// β_j follows immediately in α; run it and verify the splice
		// restored pass-1 memory exactly.
		if !last {
			end := pos + len(ph.pList)
			if err := runSegment(b.schedule[pos:end]); err != nil {
				return nil, err
			}
			pos = end
			if !r2.Memory().Equal(b.memAfter[j]) {
				return nil, fmt.Errorf("lowerbound: internal error: memory diverged after β_%d", j+1)
			}
		}
	}

	// Count distinct outputs of the attacked instance.
	distinct := make(map[int]bool)
	for i := 0; i < r2.NumProcs(); i++ {
		for _, d := range r2.Outputs(i) {
			if d.Instance == target {
				if v, ok := d.Val.(int); ok {
					distinct[v] = true
				}
			}
		}
	}
	for v := range distinct {
		report.Outputs = append(report.Outputs, v)
	}
	sort.Ints(report.Outputs)
	report.SpliceSteps = r2.Steps()
	if len(distinct) > b.p.K {
		report.Verdict = VerdictSafety
		report.Detail = fmt.Sprintf("%d distinct outputs in instance %d exceed k=%d", len(distinct), target, b.p.K)
	} else {
		report.Verdict = VerdictNone
		report.Detail = fmt.Sprintf("spliced execution produced only %d distinct outputs (≤ k=%d)", len(distinct), b.p.K)
	}
	return report, nil
}

// searchSplit looks for an interleaving of the group's instance-target runs
// in which the members decide pairwise distinct values, probing patterns of
// the form "leader runs u steps solo, then round-robin" on private replays
// of the current splice prefix. The winning probe's schedule is applied to
// r2. Finding nothing is not an error — the caller falls back to the
// sequential fragment.
func (b *coverBuilder) searchSplit(r2 *sim.Runner, ph *coverPhase, phaseIdx, target int, last bool) error {
	g := len(ph.q)
	base := append([]int(nil), b.splice2...)
	perLeader := b.opts.SplitProbes / g
	if perLeader < 1 {
		perLeader = 1
	}
	apply := func(sched []int) error {
		for _, pid := range sched {
			fail, err := b.stepGamma(r2, ph, phaseIdx, pid, last)
			if err != nil {
				return err
			}
			if fail != nil {
				return fmt.Errorf("lowerbound: internal error: winning probe invalid on replay: %s", fail.detail)
			}
		}
		return nil
	}

	// Fast path: cheap leader/offset patterns.
	for leader := 0; leader < g; leader++ {
		for offset := 0; offset < perLeader; offset++ {
			sched, found, err := b.probeSplit(base, ph, target, last, leader, offset)
			if err != nil {
				return err
			}
			if found {
				return apply(sched)
			}
		}
	}

	// Exhaustive bounded search over the group's interleavings, pruning
	// fragments that would leave the covered set.
	allow := func(r *sim.Runner, pid int) bool {
		if last {
			return true
		}
		op, ok := r.Poised(pid)
		if !ok || !op.IsWrite() {
			return true
		}
		loc, ok := op.Target()
		return !ok || ph.aSet[loc]
	}
	distinctTargets := func(r *sim.Runner) (int, bool) {
		distinct := make(map[int]bool, g)
		for _, q := range ph.q {
			found := false
			for _, d := range r.Outputs(q) {
				if d.Instance == target {
					found = true
					if v, ok := d.Val.(int); ok {
						distinct[v] = true
					}
				}
			}
			if !found {
				return 0, false
			}
		}
		return len(distinct), true
	}
	depth := g * (4*b.alg.Spec().RegisterCost(b.p.N) + 4*len(ph.aSet) + 30)
	out, err := explore.Run(b.alg.Spec(), b.newProcs, explore.Options{
		MaxStates: b.opts.ExploreStates,
		MaxDepth:  depth,
		Procs:     append([]int(nil), ph.q...),
		Base:      base,
		Allow:     allow,
	}, func(st *explore.State) (bool, error) {
		d, all := distinctTargets(st.Runner)
		return all && d == g, nil
	})
	if err != nil {
		return err
	}
	if out.Stopped {
		return apply(out.Found)
	}
	return nil
}

// probeSplit replays the splice prefix privately and drives the group with
// one candidate pattern until every member outputs the target instance. It
// reports the recorded schedule when the members' target outputs are
// pairwise distinct.
func (b *coverBuilder) probeSplit(base []int, ph *coverPhase, target int, last bool, leader, offset int) ([]int, bool, error) {
	r, err := sim.Replay(b.alg.Spec(), b.newProcs(), base)
	if err != nil {
		return nil, false, err
	}
	defer r.Abort()

	var recorded []int
	step := func(q int) (ok bool, err error) {
		op, poised := r.Poised(q)
		if !poised {
			return false, nil // inputs exhausted: invalid probe
		}
		if !last && op.IsWrite() {
			if loc, lok := op.Target(); lok && !ph.aSet[loc] {
				return false, nil // fragment escapes A_j: invalid probe
			}
		}
		if _, err := r.Step(q); err != nil {
			return false, err
		}
		recorded = append(recorded, q)
		return true, r.Err()
	}
	decided := func(q int) bool { return hasInstance(r.Outputs(q), target) }

	lead := ph.q[leader]
	for i := 0; i < offset && !decided(lead); i++ {
		ok, err := step(lead)
		if err != nil || !ok {
			return nil, false, err
		}
	}
	for budget := b.opts.GammaBudget; budget > 0; budget-- {
		all := true
		progressed := false
		for i := 0; i < len(ph.q); i++ {
			q := ph.q[(leader+1+i)%len(ph.q)]
			if decided(q) {
				continue
			}
			all = false
			ok, err := step(q)
			if err != nil || !ok {
				return nil, false, err
			}
			progressed = true
		}
		if all {
			distinct := make(map[int]bool, len(ph.q))
			for _, q := range ph.q {
				for _, d := range r.Outputs(q) {
					if d.Instance == target {
						if v, vok := d.Val.(int); vok {
							distinct[v] = true
						}
					}
				}
			}
			return recorded, len(distinct) == len(ph.q), nil
		}
		if !progressed {
			return nil, false, nil
		}
	}
	return nil, false, nil
}

func hasInstance(ds []sim.Decision, inst int) bool {
	for _, d := range ds {
		if d.Instance == inst {
			return true
		}
	}
	return false
}

func union(a, b map[int]bool) map[int]bool {
	out := make(map[int]bool, len(a)+len(b))
	for k := range a {
		out[k] = true
	}
	for k := range b {
		out[k] = true
	}
	return out
}
