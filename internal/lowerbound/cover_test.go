package lowerbound

import (
	"testing"

	"setagreement/internal/core"
)

func mustRepeated(t *testing.T, p core.Params, r int) core.Algorithm {
	t.Helper()
	alg, err := core.NewRepeatedComponents(p, r)
	if err != nil {
		t.Fatalf("NewRepeatedComponents: %v", err)
	}
	return alg
}

func TestCoverAttackBeatsUndersizedConsensus(t *testing.T) {
	// Repeated consensus (m=k=1) needs n registers (Theorem 2 with
	// m=k=1: n+m−k = n). With r < n the covering adversary must win.
	for _, n := range []int{3, 4, 5, 6} {
		for r := 2; r < n; r++ {
			p := core.Params{N: n, M: 1, K: 1}
			rep, err := CoverAttack(mustRepeated(t, p, r), DefaultCoverOptions())
			if err != nil {
				t.Fatalf("n=%d r=%d: %v", n, r, err)
			}
			if rep.Verdict != VerdictSafety && rep.Verdict != VerdictLiveness {
				t.Errorf("n=%d r=%d: verdict %v (%s), want a violation", n, r, rep.Verdict, rep.Detail)
			}
			if rep.Verdict == VerdictSafety && len(rep.Outputs) <= p.K {
				t.Errorf("n=%d r=%d: safety verdict with %v outputs", n, r, rep.Outputs)
			}
		}
	}
}

func TestCoverAttackFailsAtTheBound(t *testing.T) {
	// At r = n+m−k (and above) the construction must run out of
	// processes or fail to splice: no counterexample.
	tests := []core.Params{
		{N: 3, M: 1, K: 1},
		{N: 4, M: 1, K: 1},
		{N: 5, M: 1, K: 2},
		{N: 5, M: 2, K: 2},
		{N: 6, M: 1, K: 3},
	}
	for _, p := range tests {
		bound := p.N + p.M - p.K
		for _, r := range []int{bound, bound + 1} {
			rep, err := CoverAttack(mustRepeated(t, p, r), DefaultCoverOptions())
			if err != nil {
				t.Fatalf("%v r=%d: %v", p, r, err)
			}
			if rep.Verdict != VerdictNone {
				t.Errorf("%v r=%d (at/above bound): verdict %v (%s), want none",
					p, r, rep.Verdict, rep.Detail)
			}
		}
	}
}

func TestCoverAttackBeatsUndersizedSetAgreement(t *testing.T) {
	// k > m cases below the bound n+m−k.
	tests := []struct {
		p core.Params
		r int
	}{
		{p: core.Params{N: 5, M: 1, K: 2}, r: 3}, // bound 4
		{p: core.Params{N: 6, M: 1, K: 2}, r: 4}, // bound 5
		{p: core.Params{N: 6, M: 1, K: 3}, r: 3}, // bound 4
		{p: core.Params{N: 7, M: 1, K: 3}, r: 4}, // bound 5
	}
	for _, tt := range tests {
		rep, err := CoverAttack(mustRepeated(t, tt.p, tt.r), DefaultCoverOptions())
		if err != nil {
			t.Fatalf("%v r=%d: %v", tt.p, tt.r, err)
		}
		if rep.Verdict == VerdictNone {
			t.Errorf("%v r=%d (below bound %d): no violation found (%s)",
				tt.p, tt.r, tt.p.N+tt.p.M-tt.p.K, rep.Detail)
		}
		if rep.Verdict == VerdictSafety {
			if len(rep.Outputs) <= tt.p.K {
				t.Errorf("%v r=%d: safety verdict with outputs %v", tt.p, tt.r, rep.Outputs)
			}
			if len(rep.Phases) == 0 {
				t.Errorf("%v r=%d: no phases recorded", tt.p, tt.r)
			}
		}
	}
}

func TestCoverAttackBeatsUndersizedMTwo(t *testing.T) {
	// m=2 groups: the γ split search must find interleavings where each
	// group of 2 decides 2 distinct values, so k+1 outputs land in total.
	tests := []struct {
		p core.Params
		r int
	}{
		{p: core.Params{N: 5, M: 2, K: 2}, r: 4}, // bound 5
		{p: core.Params{N: 5, M: 2, K: 2}, r: 3},
		{p: core.Params{N: 6, M: 2, K: 3}, r: 4}, // bound 5
		{p: core.Params{N: 6, M: 2, K: 2}, r: 5}, // bound 6
	}
	for _, tt := range tests {
		rep, err := CoverAttack(mustRepeated(t, tt.p, tt.r), DefaultCoverOptions())
		if err != nil {
			t.Fatalf("%v r=%d: %v", tt.p, tt.r, err)
		}
		if rep.Verdict != VerdictSafety {
			t.Errorf("%v r=%d (below bound %d): verdict %v (%s), want safety violation",
				tt.p, tt.r, tt.p.N+tt.p.M-tt.p.K, rep.Verdict, rep.Detail)
			continue
		}
		if len(rep.Outputs) <= tt.p.K {
			t.Errorf("%v r=%d: only %d outputs", tt.p, tt.r, len(rep.Outputs))
		}
	}
}

func TestCoverAttackFailsAtTheBoundMTwo(t *testing.T) {
	tests := []struct {
		p core.Params
		r int
	}{
		{p: core.Params{N: 5, M: 2, K: 2}, r: 5},
		{p: core.Params{N: 6, M: 2, K: 3}, r: 5},
	}
	for _, tt := range tests {
		rep, err := CoverAttack(mustRepeated(t, tt.p, tt.r), DefaultCoverOptions())
		if err != nil {
			t.Fatalf("%v r=%d: %v", tt.p, tt.r, err)
		}
		if rep.Verdict != VerdictNone {
			t.Errorf("%v r=%d (at bound): verdict %v (%s), want none",
				tt.p, tt.r, rep.Verdict, rep.Detail)
		}
	}
}

func TestCoverAttackBeatsUndersizedAnonymousRepeated(t *testing.T) {
	// The anonymous-repeated row of Figure 1 has the same n+m−k lower
	// bound (a corollary of Theorem 2); the covering adversary applies
	// unchanged because it never uses identifiers.
	tests := []struct {
		p core.Params
		r int
	}{
		{p: core.Params{N: 4, M: 1, K: 1}, r: 3}, // bound 4
		{p: core.Params{N: 5, M: 1, K: 2}, r: 3}, // bound 4
		{p: core.Params{N: 6, M: 1, K: 3}, r: 3}, // bound 4
	}
	for _, tt := range tests {
		// withH=false: H is only a helper register; disabling it keeps
		// the algorithm repeated while making the location count
		// exactly r (the count under attack).
		alg, err := core.NewAnonComponents(tt.p, tt.r, false)
		if err != nil {
			t.Fatalf("NewAnonComponents: %v", err)
		}
		rep, err := CoverAttack(alg, DefaultCoverOptions())
		if err != nil {
			t.Fatalf("%v r=%d: %v", tt.p, tt.r, err)
		}
		if rep.Verdict == VerdictNone {
			t.Errorf("%v r=%d (below bound %d): no violation found (%s)",
				tt.p, tt.r, tt.p.N+tt.p.M-tt.p.K, rep.Detail)
		}
	}
}

func TestCoverAttackAnonymousRepeatedHoldsAtBound(t *testing.T) {
	p := core.Params{N: 4, M: 1, K: 1}
	// The paper-sized anonymous algorithm has (m+1)(n−k)+m²+1 = 8
	// registers, far above the bound of 4: no counterexample.
	alg, err := core.NewAnonRepeated(p)
	if err != nil {
		t.Fatalf("NewAnonRepeated: %v", err)
	}
	rep, err := CoverAttack(alg, DefaultCoverOptions())
	if err != nil {
		t.Fatalf("CoverAttack: %v", err)
	}
	if rep.Verdict != VerdictNone {
		t.Errorf("verdict %v (%s), want none", rep.Verdict, rep.Detail)
	}
}

func TestCoverAttackRejectsBadOptions(t *testing.T) {
	alg := mustRepeated(t, core.Params{N: 4, M: 1, K: 1}, 3)
	if _, err := CoverAttack(alg, CoverOptions{}); err == nil {
		t.Fatal("zero budgets accepted")
	}
}

func TestCoverReportString(t *testing.T) {
	rep := &CoverReport{Verdict: VerdictSafety, K: 1, Locations: 2, Instance: 2, Outputs: []int{1, 2}}
	if rep.String() == "" {
		t.Fatal("empty report string")
	}
	for _, v := range []Verdict{VerdictNone, VerdictSafety, VerdictLiveness, Verdict(99)} {
		if v.String() == "" {
			t.Fatal("empty verdict string")
		}
	}
}
