package lowerbound

import (
	"fmt"

	"setagreement/internal/core"
)

// MinRegisters empirically locates the space lower bound for repeated k-set
// agreement: it runs the covering adversary against the Figure 4 algorithm
// at every register count from 2 upward and returns the smallest count at
// which the adversary finds no counterexample. For every point the paper's
// Theorem 2 covers, the result is n+m−k.
//
// The per-count reports are returned for the full sweep (index 0 is count
// 2). maxR caps the search; if the adversary still wins at maxR, an error
// is returned.
func MinRegisters(p core.Params, maxR int, opts CoverOptions) (int, []*CoverReport, error) {
	if err := p.Validate(); err != nil {
		return 0, nil, err
	}
	if maxR < 2 {
		return 0, nil, fmt.Errorf("lowerbound: maxR must be ≥ 2, got %d", maxR)
	}
	var reports []*CoverReport
	for r := 2; r <= maxR; r++ {
		alg, err := core.NewRepeatedComponents(p, r)
		if err != nil {
			return 0, nil, err
		}
		rep, err := CoverAttack(alg, opts)
		if err != nil {
			return 0, nil, err
		}
		reports = append(reports, rep)
		if rep.Verdict == VerdictNone {
			return r, reports, nil
		}
	}
	return 0, reports, fmt.Errorf("lowerbound: adversary still wins at %d registers; raise maxR", maxR)
}
