package lowerbound

import (
	"testing"

	"setagreement/internal/core"
)

func TestMinRegistersMatchesTheorem2(t *testing.T) {
	// The empirical minimum must be exactly n+m−k everywhere.
	tests := []core.Params{
		{N: 3, M: 1, K: 1},
		{N: 4, M: 1, K: 1},
		{N: 5, M: 1, K: 2},
		{N: 6, M: 1, K: 3},
		{N: 5, M: 2, K: 2},
	}
	for _, p := range tests {
		want := p.N + p.M - p.K
		got, reports, err := MinRegisters(p, want+2, DefaultCoverOptions())
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if got != want {
			t.Errorf("%v: empirical minimum %d, theorem says %d", p, got, want)
		}
		// Every count below the minimum had a counterexample.
		for i, rep := range reports[:len(reports)-1] {
			if rep.Verdict == VerdictNone {
				t.Errorf("%v: no counterexample at %d registers (below minimum)", p, i+2)
			}
		}
	}
}

func TestMinRegistersValidation(t *testing.T) {
	if _, _, err := MinRegisters(core.Params{N: 1, M: 1, K: 1}, 5, DefaultCoverOptions()); err == nil {
		t.Fatal("invalid params accepted")
	}
	if _, _, err := MinRegisters(core.Params{N: 4, M: 1, K: 1}, 1, DefaultCoverOptions()); err == nil {
		t.Fatal("maxR < 2 accepted")
	}
	// maxR below the true bound: the adversary keeps winning.
	if _, _, err := MinRegisters(core.Params{N: 5, M: 1, K: 1}, 3, DefaultCoverOptions()); err == nil {
		t.Fatal("expected an error when the sweep is capped below the bound")
	}
}
