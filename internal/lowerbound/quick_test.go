package lowerbound

import (
	"math/rand"
	"testing"
	"testing/quick"

	"setagreement/internal/core"
)

// TestQuickCoverVerdictBoundary: for random small m=1 parameter points and
// register counts, the covering adversary's verdict is exactly determined
// by whether the count is below n+m−k. This is Theorem 2 as a property
// test.
func TestQuickCoverVerdictBoundary(t *testing.T) {
	if testing.Short() {
		t.Skip("adversary sweeps are slow")
	}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(4) // 3..6
		k := 1 + rng.Intn(n-1)
		p := core.Params{N: n, M: 1, K: k}
		bound := p.N + p.M - p.K
		r := 2 + rng.Intn(bound) // 2..bound+1
		alg, err := core.NewRepeatedComponents(p, r)
		if err != nil {
			t.Logf("build %v r=%d: %v", p, r, err)
			return false
		}
		rep, err := CoverAttack(alg, DefaultCoverOptions())
		if err != nil {
			t.Logf("attack %v r=%d: %v", p, r, err)
			return false
		}
		if r < bound {
			if rep.Verdict == VerdictNone {
				t.Logf("%v r=%d below bound %d: %s", p, r, bound, rep.Detail)
				return false
			}
			return true
		}
		if rep.Verdict != VerdictNone {
			t.Logf("%v r=%d at/above bound %d: %v", p, r, bound, rep.Verdict)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCloneVerdictBoundary: the clone adversary's verdict is exactly
// determined by whether the clone army fits in n — Theorem 10 as a
// property test.
func TestQuickCloneVerdictBoundary(t *testing.T) {
	if testing.Short() {
		t.Skip("adversary sweeps are slow")
	}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(12) // 4..15
		k := 1 + rng.Intn(2)  // 1..2
		if k >= n {
			return true
		}
		r := 2 + rng.Intn(3) // 2..4
		p := core.Params{N: n, M: 1, K: k}
		alg, err := core.NewAnonComponents(p, r, false)
		if err != nil {
			t.Logf("build: %v", err)
			return false
		}
		rep, err := CloneAttack(alg, DefaultCloneOptions())
		if err != nil {
			t.Logf("attack: %v", err)
			return false
		}
		army := (k + 1) * (1 + r*(r-1)/2)
		if army <= n {
			return rep.Verdict == VerdictSafety && len(rep.Outputs) == k+1
		}
		return rep.Verdict == VerdictNone
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
