// Package lowerbound makes the paper's two lower-bound proofs executable as
// adversaries:
//
//   - CoverAttack implements the covering construction of Theorem 2
//     (Figure 2 of the paper): against a repeated set-agreement algorithm
//     using fewer than n+m−k registers, it builds an execution in which
//     groups of processes run invisibly (their writes are obliterated by
//     block writes of frozen "covering" processes) and splices in fragments
//     that decide k+1 distinct values in a fresh instance.
//
//   - CloneAttack implements the anonymous clone-and-glue construction of
//     Lemma 9 / Theorem 10: against an anonymous one-shot algorithm it finds
//     k+1 input values whose solo executions write the same register
//     sequence, then interleaves them with paused clones so that each run is
//     invisible to the others, producing k+1 distinct outputs.
//
// A lower bound is a proof about all algorithms, so the adversaries report a
// three-valued verdict: VerdictSafety (a concrete execution violating
// k-agreement was constructed and re-executed), VerdictLiveness (the
// algorithm failed to terminate where m-obstruction-freedom requires it), or
// VerdictNone (no counterexample found within the configured bounds — the
// expected outcome at or above the bound).
//
// The constructions are exact for m = 1, where execution fragments by a
// single process are deterministic solo runs (the covering oracle closes
// either by saturating all registers or by a bounded solo run, and every
// approximation is re-validated during the splice). For m > 1 the escape
// search is a heuristic over per-member solo fragments; a wrongly declared
// cover is detected during the splice and reported as VerdictNone rather
// than a false violation.
package lowerbound

// Verdict classifies the outcome of an adversary run.
type Verdict int

const (
	// VerdictNone means no counterexample was found within bounds.
	VerdictNone Verdict = iota
	// VerdictSafety means a concrete execution with more than k distinct
	// outputs in one instance was constructed and verified by re-execution.
	VerdictSafety
	// VerdictLiveness means a process running with at most m movers
	// failed to complete a Propose within the step budget.
	VerdictLiveness
)

// String returns the verdict name.
func (v Verdict) String() string {
	switch v {
	case VerdictNone:
		return "no-counterexample"
	case VerdictSafety:
		return "safety-violation"
	case VerdictLiveness:
		return "liveness-failure"
	default:
		return "verdict(?)"
	}
}
