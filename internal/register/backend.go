package register

import (
	"fmt"

	"setagreement/internal/shmem"
)

// LockedBackend creates mutex-guarded memories (see Locked).
var LockedBackend shmem.Backend = shmem.BackendFunc{
	BackendName: "locked",
	Factory: func(spec shmem.Spec) (shmem.Mem, error) {
		return NewLocked(spec)
	},
}

// LockFreeBackend creates lock-free memories (see LockFree).
var LockFreeBackend shmem.Backend = shmem.BackendFunc{
	BackendName: "lockfree",
	Factory: func(spec shmem.Spec) (shmem.Mem, error) {
		return NewLockFree(spec)
	},
}

// Backends lists every native backend, for sweeps in tests and benchmarks.
func Backends() []shmem.Backend {
	return []shmem.Backend{LockedBackend, LockFreeBackend}
}

// BackendByName resolves a backend by its Name, for command-line flags.
func BackendByName(name string) (shmem.Backend, error) {
	for _, b := range Backends() {
		if b.Name() == name {
			return b, nil
		}
	}
	return nil, fmt.Errorf("register: unknown backend %q (have locked, lockfree)", name)
}
