package register_test

import (
	"testing"

	"setagreement/internal/register"
	"setagreement/internal/shmem"
)

// forEachBackend runs the test once per native backend. The Mem contract
// itself is covered per backend by the shmemtest conformance suite (see
// conformance_test.go); tests here cover only what is register-specific.
func forEachBackend(t *testing.T, f func(t *testing.T, b shmem.Backend)) {
	for _, b := range register.Backends() {
		b := b
		t.Run(b.Name(), func(t *testing.T) { f(t, b) })
	}
}

func TestBackendByName(t *testing.T) {
	for _, want := range register.Backends() {
		got, err := register.BackendByName(want.Name())
		if err != nil {
			t.Fatalf("BackendByName(%q): %v", want.Name(), err)
		}
		if got.Name() != want.Name() {
			t.Fatalf("BackendByName(%q) = %q", want.Name(), got.Name())
		}
	}
	if _, err := register.BackendByName("sharded-numa"); err == nil {
		t.Fatal("unknown backend accepted")
	}
}
