package register_test

import (
	"testing"

	"setagreement/internal/register"
	"setagreement/internal/shmem"
	"setagreement/internal/shmem/shmemtest"
)

// TestBackendConformance runs the shared shmem.Mem conformance suite
// against every native backend. New backends must be added to
// register.Backends() and pass this without changes here.
func TestBackendConformance(t *testing.T) {
	forEachBackend(t, func(t *testing.T, b shmem.Backend) {
		shmemtest.Run(t, b)
	})
}

// TestConformanceSuiteCoversRegistry guards against a backend being added
// to the registry without a distinct name (names key flags and reports).
func TestConformanceSuiteCoversRegistry(t *testing.T) {
	seen := map[string]bool{}
	for _, b := range register.Backends() {
		if b.Name() == "" {
			t.Fatal("backend with empty name")
		}
		if seen[b.Name()] {
			t.Fatalf("duplicate backend name %q", b.Name())
		}
		seen[b.Name()] = true
	}
}
