// Package register provides the native in-process shared-memory runtime: the
// substrate for running the paper's algorithms between real goroutines
// rather than simulated processes.
//
// The runtime is pluggable (shmem.Backend): two backends realize the
// atomic-register model of the paper with different synchronization
// strategies.
//
//   - Locked: a single mutex guards each operation. Simple and obviously
//     linearizable, but every operation of every goroutine serializes on one
//     lock.
//   - LockFree: per-register atomic pointer cells and immutable-version
//     CAS snapshots (one atomic pointer per snapshot object). Reads,
//     writes and scans are wait-free single atomic operations; updates
//     install a new immutable version by compare-and-swap and are
//     lock-free.
//
// Both backends implement the optional shmem capabilities they can honor:
// Stepper (operation counts, effect visible no later than the increment),
// Resetter (restore initial state for pooled reuse — the arena recycles
// evicted objects' memories through this), and, on LockFree only,
// CASRetrier (failed version installs, a direct contention signal).
//
// Register-based snapshot constructions from package snapshot can be layered
// on top of either backend via snapshot.Wire for end-to-end register-only
// runs. Conformance to the shmem.Mem contract is enforced by running
// shmem/shmemtest against every backend in Backends(); linearizability
// under real concurrency is checked by this package's test suites.
package register
