package register_test

import (
	"sync"
	"testing"

	"setagreement/internal/linearize"
	"setagreement/internal/shmem"
)

// TestBackendSnapshotLinearizability validates each native backend's
// snapshot primitive against the linearizability checker under real
// goroutine concurrency. Operation intervals come from the runtime's
// operation counter: an op was invoked after the caller's previous op
// completed and took effect by its own completion count. Both backends
// guarantee an operation's effect is visible no later than its counter
// increment (shmem.Stepper), which makes these intervals conservative.
func TestBackendSnapshotLinearizability(t *testing.T) {
	const comps, procs, rounds = 2, 3, 3
	forEachBackend(t, func(t *testing.T, b shmem.Backend) {
		for trial := 0; trial < 20; trial++ {
			mem, err := b.New(shmem.Spec{Snaps: []int{comps}})
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			clock, ok := mem.(shmem.Stepper)
			if !ok {
				t.Fatalf("backend memory %T does not expose shmem.Stepper", mem)
			}
			var (
				mu  sync.Mutex
				ops []linearize.Op
			)
			record := func(op linearize.Op) {
				mu.Lock()
				ops = append(ops, op)
				mu.Unlock()
			}
			var wg sync.WaitGroup
			for id := 0; id < procs; id++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					prev := int(clock.Steps())
					for round := 0; round < rounds; round++ {
						val := id*100 + round
						mem.Update(0, id%comps, val)
						now := int(clock.Steps())
						record(linearize.Op{Proc: id, Inv: prev + 1, Res: now,
							Comp: id % comps, Val: val})
						prev = now
						view := mem.Scan(0)
						now = int(clock.Steps())
						record(linearize.Op{Proc: id, Inv: prev + 1, Res: now,
							IsScan: true, View: view})
						prev = now
					}
				}(id)
			}
			wg.Wait()
			if res := linearize.CheckSnapshot(comps, ops); !res.OK {
				for _, op := range ops {
					t.Logf("  %v", op)
				}
				t.Fatalf("trial %d: %s snapshot history not linearizable", trial, b.Name())
			}
		}
	})
}

// TestBackendRegisterLinearizability drives plain Read/Write registers of
// each backend from concurrent goroutines and checks the resulting history
// with the same checker, modeling a register as a 1-component snapshot
// (Write = Update, Read = 1-component Scan).
func TestBackendRegisterLinearizability(t *testing.T) {
	const procs, rounds = 3, 3
	forEachBackend(t, func(t *testing.T, b shmem.Backend) {
		for trial := 0; trial < 20; trial++ {
			mem, err := b.New(shmem.Spec{Regs: 1})
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			clock, ok := mem.(shmem.Stepper)
			if !ok {
				t.Fatalf("backend memory %T does not expose shmem.Stepper", mem)
			}
			var (
				mu  sync.Mutex
				ops []linearize.Op
			)
			record := func(op linearize.Op) {
				mu.Lock()
				ops = append(ops, op)
				mu.Unlock()
			}
			var wg sync.WaitGroup
			for id := 0; id < procs; id++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					prev := int(clock.Steps())
					for round := 0; round < rounds; round++ {
						val := id*100 + round
						mem.Write(0, val)
						now := int(clock.Steps())
						record(linearize.Op{Proc: id, Inv: prev + 1, Res: now,
							Comp: 0, Val: val})
						prev = now
						got := mem.Read(0)
						now = int(clock.Steps())
						record(linearize.Op{Proc: id, Inv: prev + 1, Res: now,
							IsScan: true, View: []shmem.Value{got}})
						prev = now
					}
				}(id)
			}
			wg.Wait()
			if res := linearize.CheckSnapshot(1, ops); !res.OK {
				for _, op := range ops {
					t.Logf("  %v", op)
				}
				t.Fatalf("trial %d: %s register history not linearizable", trial, b.Name())
			}
		}
	})
}
