package register_test

import (
	"sync"
	"testing"

	"setagreement/internal/linearize"
	"setagreement/internal/register"
	"setagreement/internal/shmem"
)

// TestNativeSnapshotLinearizability validates the native runtime's snapshot
// primitive against the linearizability checker under real goroutine
// concurrency. Operation intervals come from the runtime's operation
// counter: an op was invoked after the caller's previous op completed and
// took effect by its own completion count.
func TestNativeSnapshotLinearizability(t *testing.T) {
	const comps, procs, rounds = 2, 3, 3
	for trial := 0; trial < 20; trial++ {
		n, err := register.NewNative(shmem.Spec{Snaps: []int{comps}})
		if err != nil {
			t.Fatalf("NewNative: %v", err)
		}
		var (
			mu  sync.Mutex
			ops []linearize.Op
		)
		record := func(op linearize.Op) {
			mu.Lock()
			ops = append(ops, op)
			mu.Unlock()
		}
		var wg sync.WaitGroup
		for id := 0; id < procs; id++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				prev := int(n.Steps())
				for round := 0; round < rounds; round++ {
					val := id*100 + round
					n.Update(0, id%comps, val)
					now := int(n.Steps())
					record(linearize.Op{Proc: id, Inv: prev + 1, Res: now,
						Comp: id % comps, Val: val})
					prev = now
					view := n.Scan(0)
					now = int(n.Steps())
					record(linearize.Op{Proc: id, Inv: prev + 1, Res: now,
						IsScan: true, View: view})
					prev = now
				}
			}(id)
		}
		wg.Wait()
		if res := linearize.CheckSnapshot(comps, ops); !res.OK {
			for _, op := range ops {
				t.Logf("  %v", op)
			}
			t.Fatalf("trial %d: native snapshot history not linearizable", trial)
		}
	}
}
