package register

import (
	"context"
	"sync"

	"setagreement/internal/shmem"
)

// Locked is an in-process shared memory guarded by one mutex. All processes
// share one Locked; its methods are safe for concurrent use. Values stored
// must be treated as immutable by callers, as everywhere in this module.
//
// Change notification (shmem.Notifier) uses the shared broadcast helper —
// the mutex-guarded equivalent of a condition variable whose waits are
// context-cancellable: every mutation publishes under the memory's mutex,
// waiters block on the broadcast channel outside it. The broadcast's own
// lock only nests inside the memory mutex, never the other way, so the
// pairing cannot deadlock.
type Locked struct {
	mu    sync.Mutex
	regs  []shmem.Value
	snaps [][]shmem.Value

	steps  int64 // operations executed, for reporting
	notify shmem.Broadcast
}

var (
	_ shmem.Mem      = (*Locked)(nil)
	_ shmem.Stepper  = (*Locked)(nil)
	_ shmem.Resetter = (*Locked)(nil)
	_ shmem.Notifier = (*Locked)(nil)
)

// NewLocked allocates mutex-guarded native memory for the spec.
func NewLocked(spec shmem.Spec) (*Locked, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	n := &Locked{
		regs:  make([]shmem.Value, spec.Regs),
		snaps: make([][]shmem.Value, len(spec.Snaps)),
	}
	for i, r := range spec.Snaps {
		n.snaps[i] = make([]shmem.Value, r)
	}
	return n, nil
}

// Read implements shmem.Mem.
func (n *Locked) Read(reg int) shmem.Value {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.steps++
	return n.regs[reg]
}

// Write implements shmem.Mem.
func (n *Locked) Write(reg int, v shmem.Value) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.steps++
	n.regs[reg] = v
	n.notify.Publish()
}

// Update implements shmem.Mem.
func (n *Locked) Update(snap, comp int, v shmem.Value) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.steps++
	n.snaps[snap][comp] = v
	n.notify.Publish()
}

// Scan implements shmem.Mem.
func (n *Locked) Scan(snap int) []shmem.Value {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.steps++
	src := n.snaps[snap]
	out := make([]shmem.Value, len(src))
	copy(out, src)
	return out
}

// Steps implements shmem.Stepper.
func (n *Locked) Steps() int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.steps
}

// Reset implements shmem.Resetter: it restores the initial all-nil state and
// zeroes the step counter. The caller must guarantee no operation is in
// flight. Snapshot slices are zeroed in place — Scan hands out copies, so no
// previously returned view is affected.
func (n *Locked) Reset() {
	n.mu.Lock()
	defer n.mu.Unlock()
	for i := range n.regs {
		n.regs[i] = nil
	}
	for _, s := range n.snaps {
		for i := range s {
			s[i] = nil
		}
	}
	n.steps = 0
	n.notify.Reset()
}

// Version implements shmem.Notifier.
func (n *Locked) Version() uint64 { return n.notify.Version() }

// AwaitChange implements shmem.Notifier.
func (n *Locked) AwaitChange(ctx context.Context, v uint64) (int, error) {
	return n.notify.AwaitChange(ctx, v)
}

// RegisterWake implements shmem.Notifier. Callbacks fire under the memory
// mutex (Publish runs inside it), one more reason the Notifier contract
// forbids them from touching the memory.
func (n *Locked) RegisterWake(v uint64, fn func()) (cancel func()) {
	return n.notify.RegisterWake(v, fn)
}

// Waiters implements shmem.Notifier.
func (n *Locked) Waiters() int64 { return n.notify.Waiters() }
