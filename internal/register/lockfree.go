package register

import (
	"context"
	"sync/atomic"
	"unsafe"

	"setagreement/internal/shmem"
)

// LockFree is an in-process shared memory with no locks. Plain registers
// are per-register atomic pointer cells (a Read or Write is one atomic load
// or store, so operations on distinct registers never contend); each
// snapshot object is a single atomic pointer to an immutable version — a
// component-value slice replaced whole by Update via compare-and-swap, and
// returned by Scan directly, copy-free, under shmem.Mem's read-only view
// contract. All processes share one LockFree; its methods are safe for
// concurrent use. Values stored must be treated as immutable by callers,
// as everywhere in this module.
//
// Linearizability by construction: every operation on a snapshot object is
// one atomic action on that object's version pointer. Scan linearizes at
// its single load — the loaded version is immutable, so the view is a
// consistent cut by definition, and the versions themselves are totally
// ordered, so concurrent scans can never return incomparable views. Update
// linearizes at its successful compare-and-swap, which installs a new
// version derived from the exact version it displaces; a failed CAS means
// a concurrent Update linearized first and the loop retries from its
// version. Update is therefore lock-free (some Update always completes)
// though an individual Update is not wait-free; Read, Write and Scan are
// wait-free.
//
// A per-writer-cell seqlock was rejected here: with concurrent writers a
// version-validated collect can observe one in-flight store while missing
// an earlier one, letting two overlapping scans return crosswise
// incomparable views — and neither version check nor the classic
// pre/post-increment discipline closes that window without serializing
// writers. The single version pointer does, at the cost of one small
// allocation per Update.
//
// The step counter is incremented after an operation's effect, so a caller
// that reads Steps before and after an operation gets a conservative
// real-time interval for it (used by the linearizability test harnesses).
//
// Change notification (shmem.Notifier) is a broadcast generation: every
// Write and every successful Update advance an atomic version and wake any
// blocked waiter by swapping out a broadcast channel (shmem.Broadcast).
// When no one waits, the write path pays two uncontended atomics and the
// wait machinery is never touched.
type LockFree struct {
	regs    []atomic.Pointer[shmem.Value]
	snaps   []lfSnap
	steps   atomic.Int64
	retries atomic.Int64
	notify  shmem.Broadcast
}

// lfSnap is one snapshot object: an atomic pointer to the first element of
// the current immutable r-element version. Pointing at the element rather
// than at a slice header halves Update's allocation cost — the header would
// have to be heap-allocated to be CASed, while unsafe.Slice rebuilds it for
// free (r is fixed for the object's lifetime). The element pointer is a
// sound CAS identity: every version comes from its own make, and an address
// can only be reused after its array is unreachable — impossible while any
// loaded pointer to it (including a CAS argument) exists, so ABA cannot
// occur.
type lfSnap struct {
	r   int
	cur atomic.Pointer[shmem.Value]
}

// view returns the version the pointer identifies as a slice.
//
// unsafeptr audit: this is the only unsafe in the package, and it never
// round-trips a pointer through uintptr — unsafe.Slice takes the typed
// element pointer directly, so the GC always sees a live pointer and go
// vet's unsafeptr rules have nothing to flag. What unsafe.Slice cannot
// check is the length: p must point to element 0 of an array of exactly
// s.r elements or the rebuilt header reads out of bounds. checkLen guards
// that invariant at every store into cur.
func (s *lfSnap) view(p *shmem.Value) []shmem.Value { return unsafe.Slice(p, s.r) }

// checkLen admits next as a version of this snapshot object: every pointer
// stored into cur must identify an array of exactly s.r elements (the
// unsafe.Slice length invariant above — r is fixed for the object's
// lifetime, so a shorter array would surface as an out-of-bounds view on a
// later Scan, far from the store that broke the rule). All stores to cur
// go through this check. The read-only side of the same contract — a
// scanned view is never written, only copied into a fresh next buffer of
// the same length — is what the viewmut analyzer enforces (see the
// privateBuffer fixture in internal/analysis/testdata/src/viewmut, which
// mirrors exactly this Update shape).
func (s *lfSnap) checkLen(next []shmem.Value) *shmem.Value {
	if len(next) != s.r {
		panic("register: lock-free version length diverged from snapshot arity (unsafe.Slice invariant)")
	}
	//lint:ignore viewmut next is this snapshot's freshly built version, not a shared view; the element pointer is how a version is installed
	return &next[0]
}

var (
	_ shmem.Mem        = (*LockFree)(nil)
	_ shmem.Stepper    = (*LockFree)(nil)
	_ shmem.CASRetrier = (*LockFree)(nil)
	_ shmem.Resetter   = (*LockFree)(nil)
	_ shmem.Notifier   = (*LockFree)(nil)
)

// boxedInts interns boxed small non-negative ints, the dominant value type
// stored by the agreement algorithms (proposals, rounds, ids). Interning
// lets Write and Update publish a pointer into this immutable table instead
// of heap-allocating a box per store — the single biggest cost of the
// lock-free write path. The table is filled once at init and never written
// afterwards, so sharing its addresses across goroutines is race free.
var boxedInts [8192]shmem.Value

func init() {
	for i := range boxedInts {
		boxedInts[i] = i
	}
}

// boxValue returns a shareable pointer holding v, interned when possible.
// The explicit new on the miss path keeps v itself from escaping, so the
// interned path performs no allocation at all.
func boxValue(v shmem.Value) *shmem.Value {
	if i, ok := v.(int); ok && i >= 0 && i < len(boxedInts) {
		return &boxedInts[i]
	}
	p := new(shmem.Value)
	*p = v
	return p
}

// NewLockFree allocates lock-free native memory for the spec.
func NewLockFree(spec shmem.Spec) (*LockFree, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	m := &LockFree{
		regs:  make([]atomic.Pointer[shmem.Value], spec.Regs),
		snaps: make([]lfSnap, len(spec.Snaps)),
	}
	for i, r := range spec.Snaps {
		initial := make([]shmem.Value, r)
		m.snaps[i].r = r
		m.snaps[i].cur.Store(m.snaps[i].checkLen(initial))
	}
	return m, nil
}

// Read implements shmem.Mem.
func (m *LockFree) Read(reg int) shmem.Value {
	p := m.regs[reg].Load()
	m.steps.Add(1)
	if p == nil {
		return nil
	}
	return *p
}

// Write implements shmem.Mem.
func (m *LockFree) Write(reg int, v shmem.Value) {
	m.regs[reg].Store(boxValue(v))
	m.notify.Publish()
	m.steps.Add(1)
}

// Update implements shmem.Mem.
func (m *LockFree) Update(snap, comp int, v shmem.Value) {
	s := &m.snaps[snap]
	for {
		curp := s.cur.Load()
		next := make([]shmem.Value, s.r)
		copy(next, s.view(curp))
		next[comp] = v
		if s.cur.CompareAndSwap(curp, s.checkLen(next)) {
			m.notify.Publish()
			m.steps.Add(1)
			return
		}
		m.retries.Add(1)
	}
}

// Scan implements shmem.Mem.
func (m *LockFree) Scan(snap int) []shmem.Value {
	s := &m.snaps[snap]
	cur := s.cur.Load()
	m.steps.Add(1)
	return s.view(cur)
}

// Steps implements shmem.Stepper.
func (m *LockFree) Steps() int64 { return m.steps.Load() }

// CASRetries implements shmem.CASRetrier: each count is one Update install
// that lost to a concurrent update and had to rebuild its version.
func (m *LockFree) CASRetries() int64 { return m.retries.Load() }

// Version implements shmem.Notifier.
func (m *LockFree) Version() uint64 { return m.notify.Version() }

// AwaitChange implements shmem.Notifier.
func (m *LockFree) AwaitChange(ctx context.Context, v uint64) (int, error) {
	return m.notify.AwaitChange(ctx, v)
}

// RegisterWake implements shmem.Notifier.
func (m *LockFree) RegisterWake(v uint64, fn func()) (cancel func()) {
	return m.notify.RegisterWake(v, fn)
}

// Waiters implements shmem.Notifier.
func (m *LockFree) Waiters() int64 { return m.notify.Waiters() }

// Reset implements shmem.Resetter: it restores the initial all-nil state and
// zeroes the counters. The caller must guarantee no operation is in flight.
// Previously scanned versions stay immutable — Reset installs fresh initial
// versions rather than mutating old ones.
func (m *LockFree) Reset() {
	for i := range m.regs {
		m.regs[i].Store(nil)
	}
	for i := range m.snaps {
		initial := make([]shmem.Value, m.snaps[i].r)
		m.snaps[i].cur.Store(m.snaps[i].checkLen(initial))
	}
	m.steps.Store(0)
	m.retries.Store(0)
	m.notify.Reset()
}
