// Package register provides the native in-process shared-memory runtime: the
// substrate for running the paper's algorithms between real goroutines
// rather than simulated processes.
//
// Registers and snapshot objects are linearizable by construction (a single
// mutex guards each operation), which matches the atomic-register model of
// the paper. Register-based snapshot constructions from package snapshot can
// be layered on top via snapshot.Wire for end-to-end register-only runs.
package register

import (
	"sync"

	"setagreement/internal/shmem"
)

// Native is an in-process shared memory. All processes share one Native; its
// methods are safe for concurrent use. Values stored must be treated as
// immutable by callers, as everywhere in this module.
type Native struct {
	mu    sync.Mutex
	regs  []shmem.Value
	snaps [][]shmem.Value

	steps int64 // operations executed, for reporting
}

var _ shmem.Mem = (*Native)(nil)

// NewNative allocates native memory for the spec.
func NewNative(spec shmem.Spec) (*Native, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	n := &Native{
		regs:  make([]shmem.Value, spec.Regs),
		snaps: make([][]shmem.Value, len(spec.Snaps)),
	}
	for i, r := range spec.Snaps {
		n.snaps[i] = make([]shmem.Value, r)
	}
	return n, nil
}

// Read implements shmem.Mem.
func (n *Native) Read(reg int) shmem.Value {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.steps++
	return n.regs[reg]
}

// Write implements shmem.Mem.
func (n *Native) Write(reg int, v shmem.Value) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.steps++
	n.regs[reg] = v
}

// Update implements shmem.Mem.
func (n *Native) Update(snap, comp int, v shmem.Value) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.steps++
	n.snaps[snap][comp] = v
}

// Scan implements shmem.Mem.
func (n *Native) Scan(snap int) []shmem.Value {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.steps++
	src := n.snaps[snap]
	out := make([]shmem.Value, len(src))
	copy(out, src)
	return out
}

// Steps returns the number of shared-memory operations executed so far.
func (n *Native) Steps() int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.steps
}
