package register_test

import (
	"sync"
	"testing"

	"setagreement/internal/register"
	"setagreement/internal/shmem"
)

func TestNativeBasics(t *testing.T) {
	n, err := register.NewNative(shmem.Spec{Regs: 2, Snaps: []int{3}})
	if err != nil {
		t.Fatalf("NewNative: %v", err)
	}
	if got := n.Read(0); got != nil {
		t.Fatalf("initial read = %v", got)
	}
	n.Write(1, "x")
	if got := n.Read(1); got != "x" {
		t.Fatalf("read = %v, want x", got)
	}
	n.Update(0, 2, 7)
	s := n.Scan(0)
	if len(s) != 3 || s[2] != 7 || s[0] != nil {
		t.Fatalf("scan = %v", s)
	}
	if n.Steps() != 5 {
		t.Fatalf("steps = %d, want 5", n.Steps())
	}
	// Scan returns a copy.
	s[0] = "mutated"
	if n.Scan(0)[0] != nil {
		t.Fatal("scan result aliased internal state")
	}
}

func TestNativeRejectsBadSpec(t *testing.T) {
	if _, err := register.NewNative(shmem.Spec{Regs: -1}); err == nil {
		t.Fatal("negative regs accepted")
	}
	if _, err := register.NewNative(shmem.Spec{Snaps: []int{0}}); err == nil {
		t.Fatal("empty snapshot accepted")
	}
}

func TestNativeConcurrentUse(t *testing.T) {
	// Hammer all operations from many goroutines; run with -race.
	n, err := register.NewNative(shmem.Spec{Regs: 4, Snaps: []int{4}})
	if err != nil {
		t.Fatalf("NewNative: %v", err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				n.Write(i%4, g*1000+i)
				_ = n.Read((i + 1) % 4)
				n.Update(0, i%4, g)
				_ = n.Scan(0)
			}
		}(g)
	}
	wg.Wait()
	if n.Steps() != 8*500*4 {
		t.Fatalf("steps = %d, want %d", n.Steps(), 8*500*4)
	}
	// Every register holds some written value (not corrupted).
	for reg := 0; reg < 4; reg++ {
		if _, ok := n.Read(reg).(int); !ok {
			t.Fatalf("register %d holds %v", reg, n.Read(reg))
		}
	}
}

func TestNativeScanIsAtomicUnderWriters(t *testing.T) {
	// A scan taken while two goroutines keep the two components equal
	// (writing the same value to both, under one lock-step each) must
	// never see a "torn" half-update... with the mutex runtime each op
	// is atomic, so the scan sees some prefix of the update sequence.
	n, err := register.NewNative(shmem.Spec{Snaps: []int{2}})
	if err != nil {
		t.Fatalf("NewNative: %v", err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			n.Update(0, 0, i)
			n.Update(0, 1, i)
		}
	}()
	for i := 0; i < 2000; i++ {
		s := n.Scan(0)
		a, aok := s[0].(int)
		b, bok := s[1].(int)
		if !aok && s[0] != nil || !bok && s[1] != nil {
			t.Fatalf("corrupt scan %v", s)
		}
		if aok && bok && (a-b) > 1 {
			t.Fatalf("scan skew %d vs %d", a, b)
		}
	}
	close(stop)
	wg.Wait()
}
