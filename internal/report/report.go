// Package report renders experiment results as aligned text, markdown and
// CSV tables — the output layer of the benchmark harness (cmd/sabench and
// bench_test.go).
package report

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Table is a simple column-oriented result table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// New creates a table with a title and column headers.
func New(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// Add appends a row; cells are stringified with %v.
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprintf("%v", c)
	}
	t.Rows = append(t.Rows, row)
}

// widths computes per-column display widths.
func (t *Table) widths() []int {
	w := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		w[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(w) && len(cell) > w[i] {
				w[i] = len(cell)
			}
		}
	}
	return w
}

// String renders the table aligned for terminals.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	w := t.widths()
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", w[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", w[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Markdown renders the table as GitHub-flavored markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "### %s\n\n", t.Title)
	}
	fmt.Fprintf(&b, "| %s |\n", strings.Join(t.Columns, " | "))
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = "---"
	}
	fmt.Fprintf(&b, "| %s |\n", strings.Join(sep, " | "))
	for _, row := range t.Rows {
		fmt.Fprintf(&b, "| %s |\n", strings.Join(row, " | "))
	}
	return b.String()
}

// JSON renders one or more tables as a machine-readable document:
// {"tables": [{"title": ..., "columns": [...], "rows": [[...]]}]}. This is
// the format CI's bench-smoke job archives, so external tooling can track
// the repository's perf trajectory without scraping the text tables.
func JSON(tables ...*Table) (string, error) {
	type jsonTable struct {
		Title   string     `json:"title"`
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
	}
	doc := struct {
		Tables []jsonTable `json:"tables"`
	}{Tables: make([]jsonTable, 0, len(tables))}
	for _, t := range tables {
		// Normalize nil slices to empty ones so consumers can iterate both
		// fields without null checks.
		rows := t.Rows
		if rows == nil {
			rows = [][]string{}
		}
		cols := t.Columns
		if cols == nil {
			cols = []string{}
		}
		doc.Tables = append(doc.Tables, jsonTable{Title: t.Title, Columns: cols, Rows: rows})
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return "", err
	}
	return string(out) + "\n", nil
}

// CSV renders the table as comma-separated values with a header row. Cells
// containing commas or quotes are quoted.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				cell = "\"" + strings.ReplaceAll(cell, "\"", "\"\"") + "\""
			}
			b.WriteString(cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}
