package report

import (
	"strings"
	"testing"
)

func sample() *Table {
	t := New("Bounds", "case", "lower", "upper")
	t.Add("repeated", 5, 6)
	t.Add("one-shot, long", 2, "min(n+2m-k, n)")
	return t
}

func TestString(t *testing.T) {
	s := sample().String()
	if !strings.Contains(s, "Bounds") || !strings.Contains(s, "min(n+2m-k, n)") {
		t.Fatalf("missing content:\n%s", s)
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("line count = %d:\n%s", len(lines), s)
	}
	// Alignment: both data rows start their second column at the same
	// offset as the header's.
	if strings.Index(lines[1], "lower") != strings.Index(lines[4], "2") {
		t.Fatalf("columns misaligned:\n%s", s)
	}
}

func TestMarkdown(t *testing.T) {
	md := sample().Markdown()
	if !strings.Contains(md, "### Bounds") {
		t.Fatalf("missing title:\n%s", md)
	}
	if !strings.Contains(md, "| case | lower | upper |") {
		t.Fatalf("missing header:\n%s", md)
	}
	if !strings.Contains(md, "| --- | --- | --- |") {
		t.Fatalf("missing separator:\n%s", md)
	}
}

func TestCSV(t *testing.T) {
	tb := New("", "a", "b")
	tb.Add("x,y", `say "hi"`)
	csv := tb.CSV()
	want := "a,b\n\"x,y\",\"say \"\"hi\"\"\"\n"
	if csv != want {
		t.Fatalf("CSV = %q, want %q", csv, want)
	}
}
