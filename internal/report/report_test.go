package report

import (
	"encoding/json"
	"strings"
	"testing"
)

func sample() *Table {
	t := New("Bounds", "case", "lower", "upper")
	t.Add("repeated", 5, 6)
	t.Add("one-shot, long", 2, "min(n+2m-k, n)")
	return t
}

func TestString(t *testing.T) {
	s := sample().String()
	if !strings.Contains(s, "Bounds") || !strings.Contains(s, "min(n+2m-k, n)") {
		t.Fatalf("missing content:\n%s", s)
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("line count = %d:\n%s", len(lines), s)
	}
	// Alignment: both data rows start their second column at the same
	// offset as the header's.
	if strings.Index(lines[1], "lower") != strings.Index(lines[4], "2") {
		t.Fatalf("columns misaligned:\n%s", s)
	}
}

func TestMarkdown(t *testing.T) {
	md := sample().Markdown()
	if !strings.Contains(md, "### Bounds") {
		t.Fatalf("missing title:\n%s", md)
	}
	if !strings.Contains(md, "| case | lower | upper |") {
		t.Fatalf("missing header:\n%s", md)
	}
	if !strings.Contains(md, "| --- | --- | --- |") {
		t.Fatalf("missing separator:\n%s", md)
	}
}

func TestJSON(t *testing.T) {
	doc, err := JSON(sample(), New("Empty", "only-header"))
	if err != nil {
		t.Fatalf("JSON: %v", err)
	}
	var parsed struct {
		Tables []struct {
			Title   string     `json:"title"`
			Columns []string   `json:"columns"`
			Rows    [][]string `json:"rows"`
		} `json:"tables"`
	}
	if err := json.Unmarshal([]byte(doc), &parsed); err != nil {
		t.Fatalf("output does not round-trip as JSON: %v\n%s", err, doc)
	}
	if len(parsed.Tables) != 2 {
		t.Fatalf("table count = %d, want 2", len(parsed.Tables))
	}
	first := parsed.Tables[0]
	if first.Title != "Bounds" || len(first.Columns) != 3 || len(first.Rows) != 2 {
		t.Fatalf("first table = %+v", first)
	}
	if first.Rows[1][2] != "min(n+2m-k, n)" {
		t.Fatalf("cell round-trip = %q", first.Rows[1][2])
	}
	// A rowless table must serialize rows as [] (not null) so consumers can
	// iterate without nil checks.
	if parsed.Tables[1].Rows == nil || !strings.Contains(doc, `"rows": []`) {
		t.Fatalf("empty table rows not serialized as []:\n%s", doc)
	}
}

func TestCSV(t *testing.T) {
	tb := New("", "a", "b")
	tb.Add("x,y", `say "hi"`)
	csv := tb.CSV()
	want := "a,b\n\"x,y\",\"say \"\"hi\"\"\"\n"
	if csv != want {
		t.Fatalf("CSV = %q, want %q", csv, want)
	}
}
