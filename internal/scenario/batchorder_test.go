package scenario_test

// Batch-submission determinism: the engine-level counterpart of this
// package's world determinism properties. A batch submitted to a
// single-worker engine executes sequentially, so the decided value of
// every key is a pure function of the batch's within-key submission order
// — permuting ops across independent keys, or switching between the batch
// entry point and a ProposeAsync loop, must never change any decided
// value. The test sweeps seeded permutations and compares the full
// decision vector of each run against the canonical ordering's.

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	sa "setagreement"
)

// decideBatch builds a fresh single-worker arena, submits one proposal per
// (key, proc) pair in the order given, and returns the decided value per
// key. loop selects a ProposeAsync loop over the batch entry point.
func decideBatch(t *testing.T, ops []sa.BatchOp[int], keys int, loop bool) []int {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	ar, err := sa.NewArena[int](4, 1, sa.WithObjectOptions(sa.WithEngine(1)))
	if err != nil {
		t.Fatalf("NewArena: %v", err)
	}
	futs := make([]*sa.Future[int], len(ops))
	if loop {
		for i, op := range ops {
			h, err := ar.Object(op.Key).Proc(op.Proc)
			if err != nil {
				t.Fatalf("Proc(%s, %d): %v", op.Key, op.Proc, err)
			}
			futs[i] = h.ProposeAsync(ctx, op.Value)
		}
	} else {
		b, err := ar.SubmitBatch(ctx, ops)
		if err != nil {
			t.Fatalf("SubmitBatch: %v", err)
		}
		for i := 0; i < b.Len(); i++ {
			futs[i] = b.Future(i)
		}
	}
	decided := make([]int, keys)
	for i := range decided {
		decided[i] = -1
	}
	for i, f := range futs {
		v, err := f.Value()
		if err != nil {
			t.Fatalf("op %d (%s/%d): %v", i, ops[i].Key, ops[i].Proc, err)
		}
		k := ops[i].Value / 10 // values are key*10+proc by construction
		if decided[k] != -1 && decided[k] != v {
			t.Fatalf("key %d decided both %d and %d in one run", k, decided[k], v)
		}
		decided[k] = v
	}
	return decided
}

// TestBatchSubmissionOrderDeterminism: for a fixed within-key order,
// every cross-key permutation of the batch — and the equivalent
// ProposeAsync loop — decides the same value per key on a single-worker
// engine.
func TestBatchSubmissionOrderDeterminism(t *testing.T) {
	const keys, procs = 6, 3
	canonical := make([]sa.BatchOp[int], 0, keys*procs)
	for k := 0; k < keys; k++ {
		for p := 0; p < procs; p++ {
			canonical = append(canonical, sa.BatchOp[int]{
				Key:   fmt.Sprintf("key-%d", k),
				Proc:  p,
				Value: k*10 + p,
			})
		}
	}
	want := decideBatch(t, canonical, keys, false)
	for k, v := range want {
		// Single worker, sequential drain: each key's first-submitted
		// contender runs solo and decides its own value.
		if v != k*10 {
			t.Fatalf("canonical run: key %d decided %d, want %d", k, v, k*10)
		}
	}

	// The ProposeAsync loop in the same order is decision-equivalent.
	if got := decideBatch(t, canonical, keys, true); !equal(got, want) {
		t.Fatalf("looped submission decided %v, batch decided %v", got, want)
	}

	// Seeded cross-key permutations: shuffle the keys' interleaving while
	// preserving each key's internal order, as a batch built from any
	// traversal of independent per-key work-lists would.
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 5; trial++ {
		perm := permuteAcrossKeys(rng, canonical, keys, procs)
		if got := decideBatch(t, perm, keys, false); !equal(got, want) {
			t.Fatalf("trial %d: permuted batch decided %v, want %v", trial, got, want)
		}
	}
}

// permuteAcrossKeys interleaves the per-key op queues in random order,
// preserving within-key order (a riffle of the keys' sequences).
func permuteAcrossKeys(rng *rand.Rand, ops []sa.BatchOp[int], keys, procs int) []sa.BatchOp[int] {
	next := make([]int, keys) // per-key cursor into its proc sequence
	out := make([]sa.BatchOp[int], 0, len(ops))
	remaining := len(ops)
	for remaining > 0 {
		k := rng.Intn(keys)
		if next[k] >= procs {
			continue
		}
		out = append(out, ops[k*procs+next[k]])
		next[k]++
		remaining--
	}
	return out
}

func equal(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
