package scenario

import (
	"fmt"

	"setagreement/internal/explore"
	"setagreement/internal/shmem"
	"setagreement/internal/sim"
)

// This file models the engine's park→wake→resume protocol as simulator
// programs so the explorer can check it exhaustively. The protocol under
// test is the Dekker-style handshake shared by engine.Engine.park and
// shmem.Broadcast:
//
//	waiter:    register as parked; RE-CHECK the published version;
//	           if it moved, deregister and proceed; else block until woken
//	publisher: publish; then wake every registered waiter
//
// The model checks two invariants over every interleaving:
//
//	no lost wakeup        — no reachable state has a live, blocked waiter
//	                        that no transition can ever free (the waiter
//	                        missed the only publish);
//	no decided-but-parked — no reachable state shows a waiter that has
//	                        delivered its outcome while still registered
//	                        in the parked set.
//
// The re-check is load-bearing: CheckParkWake(recheck=false) exhibits the
// lost wakeup, which is exactly the window TestParkPublishAtEveryBoundary
// drives through the real engine. (The real engine also arms a timeout cap
// per park, so even a protocol bug would cost latency, not liveness; the
// model omits the cap to give the checker teeth.)

// parkModelSpec returns the memory layout for `waiters` waiters: register 0
// is the published flag, then a (parked, wake) register pair per waiter.
func parkModelSpec(waiters int) shmem.Spec {
	return shmem.Spec{Regs: 1 + 2*waiters}
}

func parkedReg(pid int) int { return 1 + 2*pid }
func wakeReg(pid int) int   { return 2 + 2*pid }

// parkModelProcs builds the model's process specs: pids 0..waiters-1 are
// waiters, pid `waiters` is the publisher. recheck selects the correct
// protocol or the broken variant that skips the post-registration check.
func parkModelProcs(waiters int, recheck bool) []sim.ProcSpec {
	procs := make([]sim.ProcSpec, 0, waiters+1)
	for i := 0; i < waiters; i++ {
		pid := i
		procs = append(procs, sim.ProcSpec{ID: pid, Run: func(p *sim.Proc) {
			if p.Read(0) == 1 { // fast path: published before parking
				p.Output(1, 1)
				return
			}
			p.Write(parkedReg(pid), 1) // register in the parked set
			if recheck && p.Read(0) == 1 {
				// The publish raced the registration; the version
				// re-check catches it. Deregister and proceed.
				p.Write(parkedReg(pid), 0)
				p.Output(1, 1)
				return
			}
			for p.Read(wakeReg(pid)) != 1 {
				// Blocked park: the explorer only steps this read once a
				// wake is present (see the Allow filter), so the branch
				// models "parked" rather than a spin.
			}
			p.Write(parkedReg(pid), 0)
			p.Output(1, 1)
		}})
	}
	procs = append(procs, sim.ProcSpec{ID: waiters, Run: func(p *sim.Proc) {
		p.Write(0, 1) // publish
		for i := 0; i < waiters; i++ {
			if p.Read(parkedReg(i)) == 1 {
				p.Write(wakeReg(i), 1)
			}
		}
	}})
	return procs
}

// ParkWakeViolation is one invariant breach found by CheckParkWake.
type ParkWakeViolation struct {
	// Kind is "lost-wakeup" or "decided-but-parked".
	Kind string
	// Schedule reaches the violating state from the initial one.
	Schedule []int
	Detail   string
}

// ParkWakeReport summarizes a model check.
type ParkWakeReport struct {
	// States is the number of distinct configurations visited.
	States int
	// Exhaustive reports that every reachable configuration was checked.
	Exhaustive bool
	// Violation is nil when both invariants held everywhere.
	Violation *ParkWakeViolation
}

// CheckParkWake explores every interleaving of `waiters` parking waiters
// against one publisher and checks the no-lost-wakeup and
// no-decided-but-parked invariants. recheck=true is the engine's protocol;
// recheck=false is the broken variant the check must catch.
func CheckParkWake(waiters int, recheck bool, maxStates int) (*ParkWakeReport, error) {
	if waiters < 1 {
		return nil, fmt.Errorf("scenario: need at least one waiter, got %d", waiters)
	}
	if maxStates <= 0 {
		maxStates = 50_000
	}
	opts := explore.DefaultOptions()
	opts.MaxStates = maxStates
	opts.MaxDepth = 16 * (waiters + 1)
	opts.Allow = func(r *sim.Runner, pid int) bool {
		if pid >= waiters {
			return true
		}
		op, ok := r.Poised(pid)
		if !ok || op.Kind != sim.OpRead || op.Reg != wakeReg(pid) {
			return true
		}
		// A waiter blocked on its wake register only runs once the wake
		// is present: parked proposals consume no schedule.
		return r.Memory().Read(op.Reg) == 1
	}

	report := &ParkWakeReport{}
	visit := func(st *explore.State) (bool, error) {
		r := st.Runner
		for i := 0; i < waiters; i++ {
			if len(r.Outputs(i)) > 0 && r.Memory().Read(parkedReg(i)) == 1 {
				report.Violation = &ParkWakeViolation{
					Kind:     "decided-but-parked",
					Schedule: append([]int(nil), st.Suffix...),
					Detail:   fmt.Sprintf("waiter %d delivered its outcome while still in the parked set", i),
				}
				return true, nil
			}
		}
		if len(st.Enabled) == 0 && !r.AllDone() {
			stuck := -1
			for i := 0; i < waiters; i++ {
				if !r.IsDone(i) {
					stuck = i
					break
				}
			}
			report.Violation = &ParkWakeViolation{
				Kind:     "lost-wakeup",
				Schedule: append([]int(nil), st.Suffix...),
				Detail:   fmt.Sprintf("waiter %d is parked with no transition left to wake it", stuck),
			}
			return true, nil
		}
		return false, nil
	}

	out, err := explore.Run(parkModelSpec(waiters), func() []sim.ProcSpec {
		return parkModelProcs(waiters, recheck)
	}, opts, visit)
	if err != nil {
		return nil, err
	}
	report.States = out.States
	report.Exhaustive = !out.Truncated && !out.Stopped
	return report, nil
}
