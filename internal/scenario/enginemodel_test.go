package scenario

import "testing"

// TestParkWakeModelExhaustive checks the engine's park/wake protocol model
// for every interleaving at n ≤ 3 simulated processes (1–2 waiters plus the
// publisher): no lost wakeup, no decided-but-parked waiter.
func TestParkWakeModelExhaustive(t *testing.T) {
	for _, waiters := range []int{1, 2} {
		rep, err := CheckParkWake(waiters, true, 200_000)
		if err != nil {
			t.Fatalf("waiters=%d: %v", waiters, err)
		}
		if rep.Violation != nil {
			t.Fatalf("waiters=%d: %s after schedule %v: %s",
				waiters, rep.Violation.Kind, rep.Violation.Schedule, rep.Violation.Detail)
		}
		if !rep.Exhaustive {
			t.Fatalf("waiters=%d: exploration truncated at %d states; raise the bound", waiters, rep.States)
		}
		t.Logf("waiters=%d: %d states, exhaustive, no violation", waiters, rep.States)
	}
}

// TestParkWakeModelCatchesMissingRecheck gives the checker teeth: without
// the post-registration version re-check, the publish can land between the
// decision to park and the registration, and the model check must exhibit
// the resulting lost wakeup.
func TestParkWakeModelCatchesMissingRecheck(t *testing.T) {
	for _, waiters := range []int{1, 2} {
		rep, err := CheckParkWake(waiters, false, 200_000)
		if err != nil {
			t.Fatalf("waiters=%d: %v", waiters, err)
		}
		if rep.Violation == nil {
			t.Fatalf("waiters=%d: broken protocol passed the model check (%d states)", waiters, rep.States)
		}
		if rep.Violation.Kind != "lost-wakeup" {
			t.Fatalf("waiters=%d: violation kind = %s, want lost-wakeup", waiters, rep.Violation.Kind)
		}
		if len(rep.Violation.Schedule) == 0 {
			t.Fatalf("waiters=%d: violation carries no repro schedule", waiters)
		}
		t.Logf("waiters=%d: lost wakeup after %v", waiters, rep.Violation.Schedule)
	}
}
