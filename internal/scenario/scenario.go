// Package scenario is a deterministic world harness over the simulator:
// multi-process worlds hosting process groups, pluggable schedulers
// (round-robin, seeded-random, latency-skewed weights, and an adversarial
// scheduler that stalls the processes closest to deciding), fault injection
// (crash at a chosen step, recovery as a fresh restart of the resumable step
// machine), and delayed-visibility memory where writes propagate to reader
// subsets after a scheduler-controlled delay.
//
// Every run is a pure function of (WorldSpec, seed, schedule): the harness
// serializes each run as an event list, and WorldSpec.Replay re-executes a
// recorded event list byte-identically — a failing seed is a repro, not a
// flake. Property suites in this package sweep validity/k-agreement under
// crash faults at 50–500 processes, and an explore-backed model of the
// engine's park→wake→resume protocol checks for lost wakeups exhaustively
// in small configurations.
package scenario

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"setagreement/internal/core"
	"setagreement/internal/sim"
	"setagreement/internal/spec"
)

// DefaultMaxEvents bounds a run when Options.MaxEvents is zero.
const DefaultMaxEvents = 1 << 20

// Options tune one world.
type Options struct {
	// Seed derives every random choice the harness itself makes (delay
	// draws). Schedulers are seeded separately by their constructors so a
	// scheduler change does not perturb the world's own randomness.
	Seed int64
	// MaxEvents caps the run length; 0 means DefaultMaxEvents.
	MaxEvents int
	// NoTrace disables []sim.StepRecord collection. The event list — the
	// replayable part — is always recorded; the step trace exists for
	// byte-identical trace comparison and costs memory on huge runs.
	NoTrace bool
	// Visibility, when non-nil, interposes delayed-visibility memory. When
	// nil, per-group write delays (Group.SetDelay) build an equivalent
	// policy; with neither, processes share the flat atomic memory.
	//
	// Delayed visibility models worlds weaker than atomic registers:
	// agreement safety is only claimed over atomic memory, so property
	// sweeps leave this off and liveness/wakeup tests turn it on.
	Visibility *VisibilityPolicy
}

// WorldSpec describes a reproducible world: everything a run depends on
// except the schedule, which the scheduler (seeded separately) provides.
type WorldSpec struct {
	// Name labels traces and artifacts.
	Name string
	// Algorithm builds a fresh algorithm instance. It is called once per
	// World so replays never share mutable algorithm state.
	Algorithm func() (core.Algorithm, error)
	// Configure creates groups and registers faults on the fresh world.
	// Optional; a nil Configure yields one group of n processes proposing
	// their own indices.
	Configure func(w *World) error
	// Options tune the world.
	Options Options
}

// EventKind discriminates Event.
type EventKind int

const (
	// EvStep steps process Pid's poised operation.
	EvStep EventKind = iota
	// EvCrash crashes process Pid (sim.Runner.Crash).
	EvCrash
	// EvRecover restarts crashed process Pid (sim.Runner.Recover).
	EvRecover
	// EvDeliver applies buffered write number Pid (a visibility sequence
	// number, not a process) to shared memory.
	EvDeliver
)

// String names the kind.
func (k EventKind) String() string {
	switch k {
	case EvStep:
		return "step"
	case EvCrash:
		return "crash"
	case EvRecover:
		return "recover"
	case EvDeliver:
		return "deliver"
	default:
		return "event(?)"
	}
}

// Event is one transition of a world run. A run's event list plus its
// WorldSpec reproduce the run exactly.
type Event struct {
	Kind EventKind `json:"k"`
	// Pid is the process stepped/crashed/recovered, or the buffered-write
	// sequence number for EvDeliver.
	Pid int `json:"p"`
}

// Fault is one planned crash or recovery, firing when the world clock (the
// count of executed process steps) reaches Step.
type Fault struct {
	Step int
	Kind EventKind // EvCrash or EvRecover
	Pid  int
}

// Group is a contiguous block of processes sharing scheduling weight, write
// delay and input assignment. Configure-time only.
type Group struct {
	w     *World
	First int // first pid of the group
	N     int

	weight float64
	delay  func(rng *rand.Rand) int
	inputs func(local int) []int
}

// Pids returns the group's process indices.
func (g *Group) Pids() []int {
	pids := make([]int, g.N)
	for i := range pids {
		pids[i] = g.First + i
	}
	return pids
}

// SetWeight sets the group's scheduling weight (default 1), consumed by
// weighted schedulers: a weight-0.1 group is stepped ~10× more rarely than a
// weight-1 group — skewed latency.
func (g *Group) SetWeight(wt float64) { g.weight = wt }

// SetDelay gives every write by the group a fixed visibility delay of d
// world steps.
func (g *Group) SetDelay(d int) {
	g.delay = func(*rand.Rand) int { return d }
}

// SetDelayFn gives every write by the group a visibility delay drawn from f
// (called with the world's deterministic rng).
func (g *Group) SetDelayFn(f func(rng *rand.Rand) int) { g.delay = f }

// SetInputs assigns input sequences: local is the index within the group,
// and the returned slice is proposed instance by instance. The default is
// one instance with the process's pid as input.
func (g *Group) SetInputs(f func(local int) []int) { g.inputs = f }

// CrashAt plans a crash of the group's local-th process at the given world
// step.
func (g *Group) CrashAt(local, step int) { g.w.CrashAt(g.First+local, step) }

// RecoverAt plans a recovery of the group's local-th process at the given
// world step.
func (g *Group) RecoverAt(local, step int) { g.w.RecoverAt(g.First+local, step) }

// procState is the harness-held half of one process: the resumable machine
// and instance cursor live here, outside the program goroutine, so a crash
// kills only the goroutine and a recovery re-enters the same machine — the
// restart-safety contract of core.Attempt.Step makes re-running the
// abandoned step from the top harmless.
type procState struct {
	pid    int
	res    core.Resumable
	att    core.Attempt
	inputs []int
	next   int // instances decided so far
	out    int // decided value awaiting output
	hasOut bool
}

// World is one constructed scenario: a runner, its groups, the fault plan
// and the event record. Build one with WorldSpec.New, drive it with Run or
// Replay, and read the Result; a World is single-use and not safe for
// concurrent use.
type World struct {
	spec   WorldSpec
	opts   Options
	alg    core.Algorithm
	groups []*Group
	faults []Fault

	r       *sim.Runner
	vis     *delayedVis
	procs   []*procState
	inputs  [][]int
	weights []float64

	clock     int // executed process steps
	stepsBy   []int
	events    []Event
	nextFault int
	started   bool
	closed    bool
}

// New builds the world: runs Configure, validates the group layout against
// the algorithm's n, launches the runner and parks every process at its
// first operation.
func (s WorldSpec) New() (*World, error) {
	if s.Algorithm == nil {
		return nil, errors.New("scenario: WorldSpec.Algorithm is nil")
	}
	alg, err := s.Algorithm()
	if err != nil {
		return nil, err
	}
	w := &World{spec: s, opts: s.Options, alg: alg}
	if s.Configure != nil {
		if err := s.Configure(w); err != nil {
			return nil, err
		}
	}
	if err := w.start(); err != nil {
		return nil, err
	}
	return w, nil
}

// CreateGroup appends a group of n processes. Groups partition 0..n-1 in
// creation order and must cover the algorithm's n exactly by start time.
func (w *World) CreateGroup(n int) *Group {
	if w.started {
		panic("scenario: CreateGroup after the world started")
	}
	first := 0
	for _, g := range w.groups {
		first += g.N
	}
	g := &Group{w: w, First: first, N: n, weight: 1}
	w.groups = append(w.groups, g)
	return g
}

// CrashAt plans a crash of process pid once the world clock reaches step. A
// crash of an already-terminated process is skipped (and so is its paired
// recovery), keeping plans valid across schedules.
func (w *World) CrashAt(pid, step int) {
	w.faults = append(w.faults, Fault{Step: step, Kind: EvCrash, Pid: pid})
}

// RecoverAt plans a recovery of process pid once the world clock reaches
// step. Recovery restarts the process's program against its surviving
// harness state; a recovery of a process that never crashed is skipped.
func (w *World) RecoverAt(pid, step int) {
	w.faults = append(w.faults, Fault{Step: step, Kind: EvRecover, Pid: pid})
}

func (w *World) start() error {
	n := w.alg.Params().N
	covered := 0
	for _, g := range w.groups {
		covered += g.N
	}
	if len(w.groups) == 0 {
		w.CreateGroup(n)
		covered = n
	}
	if covered != n {
		return fmt.Errorf("scenario: groups cover %d processes, algorithm has n=%d", covered, n)
	}
	w.started = true

	w.inputs = make([][]int, n)
	w.procs = make([]*procState, n)
	w.weights = make([]float64, n)
	w.stepsBy = make([]int, n)
	specs := make([]sim.ProcSpec, n)
	for _, g := range w.groups {
		for local := 0; local < g.N; local++ {
			pid := g.First + local
			in := []int{pid}
			if g.inputs != nil {
				in = g.inputs(local)
			}
			id := pid
			if w.alg.Anonymous() {
				id = sim.Anonymous
			}
			res, ok := w.alg.NewProcess(id).(core.Resumable)
			if !ok {
				return fmt.Errorf("scenario: algorithm %s is not resumable; crash recovery needs core.Resumable", w.alg.Name())
			}
			st := &procState{pid: pid, res: res, inputs: in}
			w.inputs[pid] = in
			w.procs[pid] = st
			w.weights[pid] = g.weight
			specs[pid] = sim.ProcSpec{ID: id, Run: w.program(st)}
		}
	}
	sort.SliceStable(w.faults, func(i, j int) bool {
		a, b := w.faults[i], w.faults[j]
		if a.Step != b.Step {
			return a.Step < b.Step
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.Pid < b.Pid
	})

	r, err := sim.NewRunner(w.alg.Spec(), specs)
	if err != nil {
		return err
	}
	w.r = r
	r.Record(!w.opts.NoTrace)

	policy := w.opts.Visibility
	if policy == nil {
		policy = w.groupPolicy()
	}
	if policy != nil {
		w.vis = newDelayedVis(r.Memory(), *policy, w.opts.Seed, func() int { return w.clock })
		r.SetMemHook(w.vis)
	}
	return nil
}

// groupPolicy folds per-group write delays into a VisibilityPolicy, or nil
// when no group has one.
func (w *World) groupPolicy() *VisibilityPolicy {
	any := false
	delays := make([]func(*rand.Rand) int, len(w.procs))
	for _, g := range w.groups {
		if g.delay == nil {
			continue
		}
		any = true
		for local := 0; local < g.N; local++ {
			delays[g.First+local] = g.delay
		}
	}
	if !any {
		return nil
	}
	return &VisibilityPolicy{
		Delay: func(pid int, _ sim.Loc, rng *rand.Rand) int {
			if delays[pid] == nil {
				return 0
			}
			return delays[pid](rng)
		},
		DropOnCrash: true,
	}
}

// program wraps st into the process's sim program. The loop is written so
// that every harness-state mutation sits between two simulator steps: a
// crash can only land on a poised operation, so recovery either re-runs an
// attempt step (restart-safe) or re-issues the pending Output with the same
// already-decided value — each instance decides exactly once with exactly
// one value, across any number of crash/recovery cycles.
func (w *World) program(st *procState) sim.Program {
	return func(p *sim.Proc) {
		for st.next < len(st.inputs) {
			if !st.hasOut {
				if st.att == nil {
					st.att = st.res.Begin(st.inputs[st.next])
				}
				for {
					out, done := st.att.Step(p)
					if done {
						st.out, st.hasOut = out, true
						st.att = nil
						break
					}
				}
			}
			p.Output(st.next+1, st.out)
			st.hasOut = false
			st.next++
		}
	}
}

// Runner exposes the underlying runner for inspection (memory contents,
// poised ops). Callers must not step or abort it directly; drive the world
// through Run or Replay.
func (w *World) Runner() *sim.Runner { return w.r }

// NumProcs returns the number of processes.
func (w *World) NumProcs() int { return len(w.procs) }

// Clock returns the number of process steps executed.
func (w *World) Clock() int { return w.clock }

// StepsOf returns how many steps process pid has executed.
func (w *World) StepsOf(pid int) int { return w.stepsBy[pid] }

// Live reports whether pid can be stepped (not terminated, not crashed).
func (w *World) Live(pid int) bool { return !w.r.IsDone(pid) }

// WeightOf returns pid's scheduling weight.
func (w *World) WeightOf(pid int) float64 { return w.weights[pid] }

// Poised returns pid's next operation, false if it cannot step.
func (w *World) Poised(pid int) (sim.Op, bool) { return w.r.Poised(pid) }

// AppendLive appends the live pids to buf (in pid order) and returns it.
func (w *World) AppendLive(buf []int) []int {
	for pid := range w.procs {
		if !w.r.IsDone(pid) {
			buf = append(buf, pid)
		}
	}
	return buf
}

// exec applies one event and records it.
func (w *World) exec(ev Event) error {
	switch ev.Kind {
	case EvStep:
		if _, err := w.r.Step(ev.Pid); err != nil {
			return fmt.Errorf("scenario: step p%d: %w", ev.Pid, err)
		}
		w.clock++
		w.stepsBy[ev.Pid]++
	case EvCrash:
		if err := w.r.Crash(ev.Pid); err != nil {
			return fmt.Errorf("scenario: crash p%d: %w", ev.Pid, err)
		}
		if w.vis != nil && w.vis.policy.DropOnCrash {
			w.vis.dropFor(ev.Pid)
		}
	case EvRecover:
		st := w.procs[ev.Pid]
		if err := w.r.Recover(ev.Pid, w.program(st)); err != nil {
			return fmt.Errorf("scenario: recover p%d: %w", ev.Pid, err)
		}
	case EvDeliver:
		if w.vis == nil {
			return fmt.Errorf("scenario: deliver event %d without visibility policy", ev.Pid)
		}
		if err := w.vis.deliver(ev.Pid); err != nil {
			return err
		}
	default:
		return fmt.Errorf("scenario: unknown event kind %d", ev.Kind)
	}
	w.events = append(w.events, ev)
	if err := w.r.Err(); err != nil {
		return err
	}
	return nil
}

// applyDueFaults fires every planned fault whose step has been reached.
// Crashes of terminated processes and recoveries of never-crashed processes
// are skipped without recording an event.
func (w *World) applyDueFaults(force bool) error {
	for w.nextFault < len(w.faults) {
		f := w.faults[w.nextFault]
		if !force && f.Step > w.clock {
			return nil
		}
		w.nextFault++
		switch f.Kind {
		case EvCrash:
			if w.r.IsDone(f.Pid) {
				continue
			}
		case EvRecover:
			if !w.r.Crashed(f.Pid) {
				continue
			}
		default:
			return fmt.Errorf("scenario: fault kind %v is not a fault", f.Kind)
		}
		if err := w.exec(Event{Kind: f.Kind, Pid: f.Pid}); err != nil {
			return err
		}
		if force {
			return nil
		}
	}
	return nil
}

// deliverDue applies every buffered write whose delay has elapsed, oldest
// first, never overtaking an older write to the same location.
func (w *World) deliverDue() error {
	for w.vis != nil {
		seq, ok := w.vis.nextDue(w.clock)
		if !ok {
			return nil
		}
		if err := w.exec(Event{Kind: EvDeliver, Pid: seq}); err != nil {
			return err
		}
	}
	return nil
}

// Run drives the world with the scheduler until every process terminated,
// the scheduler stops, or the event budget runs out. The returned Result is
// complete even when err is non-nil (it then holds the partial run). The
// world is closed afterwards.
func (w *World) Run(s Scheduler) (*Result, error) {
	if w.closed {
		return nil, errors.New("scenario: world already ran")
	}
	max := w.opts.MaxEvents
	if max <= 0 {
		max = DefaultMaxEvents
	}
	for len(w.events) < max {
		if err := w.applyDueFaults(false); err != nil {
			return w.finish(err)
		}
		if err := w.deliverDue(); err != nil {
			return w.finish(err)
		}
		if w.r.AllDone() {
			if w.nextFault < len(w.faults) {
				// Only faults remain (e.g. a recovery scheduled past
				// the last live step): fast-forward to the next one.
				if err := w.applyDueFaults(true); err != nil {
					return w.finish(err)
				}
				continue
			}
			break
		}
		pid, ok := s.Next(w)
		if !ok {
			break
		}
		if err := w.exec(Event{Kind: EvStep, Pid: pid}); err != nil {
			return w.finish(err)
		}
	}
	return w.finish(nil)
}

// replay re-executes a recorded event list verbatim.
func (w *World) replay(events []Event) (*Result, error) {
	if w.closed {
		return nil, errors.New("scenario: world already ran")
	}
	for i, ev := range events {
		if err := w.exec(ev); err != nil {
			return w.finish(fmt.Errorf("scenario: replay diverged at event %d (%v p%d): %w", i, ev.Kind, ev.Pid, err))
		}
	}
	return w.finish(nil)
}

// Replay rebuilds the world from the spec and re-executes a recorded event
// list. With the same spec the run is reproduced exactly — same trace, same
// outputs.
func (s WorldSpec) Replay(events []Event) (*Result, error) {
	w, err := s.New()
	if err != nil {
		return nil, err
	}
	return w.replay(events)
}

// finish collects the result and closes the world.
func (w *World) finish(runErr error) (*Result, error) {
	res := &Result{
		Name:      w.spec.Name,
		Seed:      w.opts.Seed,
		Params:    w.alg.Params(),
		Events:    w.events,
		Trace:     w.r.Log(),
		Steps:     w.clock,
		Completed: w.r.AllDone(),
		Inputs:    w.inputs,
		Outputs:   spec.Collect(w.r),
	}
	if w.vis != nil {
		res.Undelivered = w.vis.pendingCount()
	}
	w.Close()
	return res, runErr
}

// Close aborts the runner, releasing every program goroutine. Idempotent;
// Run and Replay close the world themselves.
func (w *World) Close() {
	if w.closed {
		return
	}
	w.closed = true
	w.r.Abort()
}

// Result is everything a finished run produced. Events (with the spec) make
// it replayable; Trace makes two runs byte-comparable.
type Result struct {
	Name      string
	Seed      int64
	Params    core.Params
	Events    []Event
	Trace     []sim.StepRecord
	Steps     int
	Completed bool
	Inputs    [][]int
	Outputs   spec.Outputs
	// Undelivered counts writes still buffered by the visibility policy at
	// the end of the run (never made globally visible).
	Undelivered int
}

// Check verifies well-formedness, validity and k-agreement of the run's
// outputs — crash faults may suppress decisions but never corrupt them.
func (res *Result) Check() error {
	return spec.CheckAll(res.Inputs, res.Outputs, res.Params.K)
}
