package scenario

import (
	"math/rand"
	"testing"

	"setagreement/internal/core"
	"setagreement/internal/sim"
)

func oneShotAlg(n, m, k int) func() (core.Algorithm, error) {
	return func() (core.Algorithm, error) {
		alg, err := core.NewOneShot(core.Params{N: n, M: m, K: k})
		if err != nil {
			return nil, err
		}
		return alg, nil
	}
}

func repeatedAlg(n, m, k int) func() (core.Algorithm, error) {
	return func() (core.Algorithm, error) {
		alg, err := core.NewRepeated(core.Params{N: n, M: m, K: k})
		if err != nil {
			return nil, err
		}
		return alg, nil
	}
}

// crashPlan configures one group of n processes with seeded crashes of all
// but `survivors` of them within the first `window` steps.
func crashPlan(n, survivors, window int, seed int64) func(w *World) error {
	return func(w *World) error {
		w.CreateGroup(n)
		rng := rand.New(rand.NewSource(seed))
		perm := rng.Perm(n)
		for _, pid := range perm[:n-survivors] {
			w.CrashAt(pid, 1+rng.Intn(window))
		}
		return nil
	}
}

func TestWorldRunDeterminism(t *testing.T) {
	const seed = 42
	spec := WorldSpec{
		Name:      "determinism",
		Algorithm: oneShotAlg(8, 2, 3),
		Configure: crashPlan(8, 2, 60, seed),
		Options:   Options{Seed: seed},
	}
	run := func() *Result {
		w, err := spec.New()
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		res, err := w.Run(NewRandom(seed))
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return res
	}
	a, b := run(), run()
	if !a.Completed || !b.Completed {
		t.Fatalf("runs incomplete: %v/%v", a.Completed, b.Completed)
	}
	if ta, tb := TraceText(a.Trace), TraceText(b.Trace); ta != tb {
		t.Fatalf("same (spec, seed) produced different traces:\n--- a ---\n%s--- b ---\n%s", ta, tb)
	}
	if ea, eb := EventsText(a.Events), EventsText(b.Events); ea != eb {
		t.Fatalf("same (spec, seed) produced different events:\n%s\nvs\n%s", ea, eb)
	}
	if err := a.Check(); err != nil {
		t.Fatalf("safety: %v", err)
	}

	// Replaying the recorded event list reproduces the run byte-identically.
	rep, err := spec.Replay(a.Events)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if TraceText(rep.Trace) != TraceText(a.Trace) {
		t.Fatal("replay trace differs from the recorded run")
	}
	if EventsText(rep.Events) != EventsText(a.Events) {
		t.Fatal("replay events differ from the recorded run")
	}
}

func TestWorldCrashRecoveryRestartSafety(t *testing.T) {
	// Crash p0 at every early step in turn; p0's resumable attempt is
	// restarted from the top on recovery (the stepsafety contract), and
	// each instance still decides exactly once with one value. Recovery is
	// scheduled after the survivors finish, so the recovered process runs
	// solo and m-obstruction-freedom guarantees it decides.
	for s := 1; s <= 40; s++ {
		spec := WorldSpec{
			Name:      "crash-recovery",
			Algorithm: oneShotAlg(3, 2, 2),
			Configure: func(w *World) error {
				w.CreateGroup(3)
				w.CrashAt(0, s)
				w.RecoverAt(0, 100_000)
				return nil
			},
			Options: Options{Seed: int64(s)},
		}
		w, err := spec.New()
		if err != nil {
			t.Fatalf("s=%d New: %v", s, err)
		}
		res, err := w.Run(NewRoundRobin())
		if err != nil {
			t.Fatalf("s=%d Run: %v", s, err)
		}
		if !res.Completed {
			t.Fatalf("s=%d incomplete after %d events", s, len(res.Events))
		}
		if err := res.Check(); err != nil {
			t.Fatalf("s=%d safety across crash/recovery: %v", s, err)
		}
		for pid, outs := range res.Outputs {
			if len(outs) != 1 {
				t.Fatalf("s=%d process %d decided %d times, want exactly 1 (%v)", s, pid, len(outs), outs)
			}
		}
	}
}

func TestWorldRepeatedInstancesAcrossCrash(t *testing.T) {
	// Repeated algorithm, several instances per process, crash/recovery in
	// the middle: instance order and exactly-once decisions must survive.
	spec := WorldSpec{
		Name:      "repeated-crash",
		Algorithm: repeatedAlg(3, 2, 2),
		Configure: func(w *World) error {
			g := w.CreateGroup(3)
			g.SetInputs(func(local int) []int { return []int{local, 10 + local, 20 + local} })
			w.CrashAt(1, 15)
			w.RecoverAt(1, 200_000)
			return nil
		},
		Options: Options{Seed: 7},
	}
	w, err := spec.New()
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res, err := w.Run(NewRoundRobin())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Completed {
		t.Fatalf("incomplete after %d events", len(res.Events))
	}
	if err := res.Check(); err != nil {
		t.Fatalf("safety: %v", err)
	}
	for pid, outs := range res.Outputs {
		if len(outs) != 3 {
			t.Fatalf("process %d decided %d instances, want 3 (%v)", pid, len(outs), outs)
		}
	}
}

func TestAdversarialStallsNearDeciders(t *testing.T) {
	spec := WorldSpec{
		Name:      "adversarial-unit",
		Algorithm: oneShotAlg(2, 1, 1),
		Options:   Options{Seed: 3},
	}
	w, err := spec.New()
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer w.Close()

	// Drive round-robin until exactly one process is poised to decide.
	near, far := -1, -1
	for i := 0; i < 1000 && near < 0; i++ {
		op0, ok0 := w.Poised(0)
		op1, ok1 := w.Poised(1)
		if ok0 && ok1 {
			if op0.Kind == sim.OpOutput && op1.Kind != sim.OpOutput {
				near, far = 0, 1
				break
			}
			if op1.Kind == sim.OpOutput && op0.Kind != sim.OpOutput {
				near, far = 1, 0
				break
			}
		}
		pid := i % 2
		if !w.Live(pid) {
			pid = 1 - pid
		}
		if !w.Live(pid) {
			break
		}
		if err := w.exec(Event{Kind: EvStep, Pid: pid}); err != nil {
			t.Fatalf("step: %v", err)
		}
	}
	if near < 0 {
		t.Fatal("never reached a state with exactly one near-decider")
	}

	const patience = 3
	adv := NewAdversarial(1, patience)
	for i := 0; i < patience; i++ {
		pid, ok := adv.Next(w)
		if !ok || pid != far {
			t.Fatalf("pick %d: adversary chose %d, want to starve %d by stepping %d", i, pid, near, far)
		}
	}
	pid, ok := adv.Next(w)
	if !ok || pid != near {
		t.Fatalf("patience exhausted: adversary chose %d, want forced release of %d", pid, near)
	}
}

func TestAdversarialWorldStillSafe(t *testing.T) {
	spec := WorldSpec{
		Name:      "adversarial-run",
		Algorithm: oneShotAlg(6, 2, 3),
		Configure: crashPlan(6, 2, 80, 11),
		Options:   Options{Seed: 11},
	}
	w, err := spec.New()
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res, err := w.Run(NewAdversarial(11, 50))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Completed {
		t.Fatalf("incomplete after %d events", len(res.Events))
	}
	if err := res.Check(); err != nil {
		t.Fatalf("safety under adversarial scheduling: %v", err)
	}
}

func TestWeightedSchedulerSkews(t *testing.T) {
	// Enough instances that the event cap cuts the run while every process
	// is still live — the skew is then visible in the step counts rather
	// than washed out by fast processes finishing early.
	manyInstances := func(local int) []int {
		in := make([]int, 200)
		for i := range in {
			in[i] = local
		}
		return in
	}
	spec := WorldSpec{
		Name:      "weighted",
		Algorithm: repeatedAlg(4, 2, 3),
		Configure: func(w *World) error {
			fast := w.CreateGroup(2)
			fast.SetInputs(manyInstances)
			slow := w.CreateGroup(2)
			slow.SetInputs(manyInstances)
			slow.SetWeight(0.02)
			return nil
		},
		Options: Options{Seed: 5, MaxEvents: 4000},
	}
	w, err := spec.New()
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	fastSteps := func() int { return w.StepsOf(0) + w.StepsOf(1) }
	slowSteps := func() int { return w.StepsOf(2) + w.StepsOf(3) }
	if _, err := w.Run(NewWeighted(5)); err != nil {
		t.Fatalf("Run: %v", err)
	}
	f, sl := fastSteps(), slowSteps()
	if f < 5*sl {
		t.Fatalf("weight 1 group took %d steps vs weight-0.02 group's %d; want ≥ 5× skew", f, sl)
	}
}

func TestWorldGroupValidation(t *testing.T) {
	spec := WorldSpec{
		Name:      "bad-groups",
		Algorithm: oneShotAlg(4, 2, 3),
		Configure: func(w *World) error {
			w.CreateGroup(3) // n=4: one process short
			return nil
		},
	}
	if _, err := spec.New(); err == nil {
		t.Fatal("New accepted groups covering 3 of 4 processes")
	}
}

func TestWorldSingleUse(t *testing.T) {
	spec := WorldSpec{Name: "single-use", Algorithm: oneShotAlg(3, 2, 2)}
	w, err := spec.New()
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := w.Run(NewRoundRobin()); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if _, err := w.Run(NewRoundRobin()); err == nil {
		t.Fatal("second Run on a closed world succeeded")
	}
}

func TestArtifactRoundtrip(t *testing.T) {
	const seed = 23
	spec := WorldSpec{
		Name:      "artifact",
		Algorithm: oneShotAlg(6, 2, 3),
		Configure: crashPlan(6, 2, 60, seed),
		Options:   Options{Seed: seed},
	}
	w, err := spec.New()
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res, err := w.Run(NewAdversarial(seed, 40))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}

	// Treat the run as a failure: package it, reload it, replay it.
	art := NewArtifact(res, "synthetic failure for roundtrip")
	path, err := art.Save(t.TempDir())
	if err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := LoadArtifact(path)
	if err != nil {
		t.Fatalf("LoadArtifact: %v", err)
	}
	if loaded.Seed != seed || len(loaded.Events) != len(res.Events) {
		t.Fatalf("artifact roundtrip lost data: seed=%d events=%d", loaded.Seed, len(loaded.Events))
	}
	rep, err := spec.Replay(loaded.Events)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if TraceText(rep.Trace) != TraceText(res.Trace) {
		t.Fatal("replayed failure trace differs from the original")
	}
	for pid := range res.Outputs {
		if len(rep.Outputs[pid]) != len(res.Outputs[pid]) {
			t.Fatalf("replay outputs differ for process %d", pid)
		}
		for j, d := range res.Outputs[pid] {
			if rep.Outputs[pid][j] != d {
				t.Fatalf("replay decision differs for process %d: %v vs %v", pid, rep.Outputs[pid][j], d)
			}
		}
	}
}
