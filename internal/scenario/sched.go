package scenario

import (
	"math/rand"

	"setagreement/internal/sim"
)

// Scheduler picks which live process steps next. Schedulers own their
// randomness (seeded at construction) so that a run is a pure function of
// (spec, scheduler seed).
type Scheduler interface {
	// Next returns the pid to step; ok=false ends the run. Next must only
	// return live processes.
	Next(w *World) (pid int, ok bool)
}

// RoundRobin cycles over live processes in pid order.
type RoundRobin struct {
	cursor int
}

// NewRoundRobin returns a fair cyclic scheduler.
func NewRoundRobin() *RoundRobin { return &RoundRobin{} }

// Next picks the next live pid at or after the cursor.
func (s *RoundRobin) Next(w *World) (int, bool) {
	n := w.NumProcs()
	for i := 0; i < n; i++ {
		pid := (s.cursor + i) % n
		if w.Live(pid) {
			s.cursor = pid + 1
			return pid, true
		}
	}
	return 0, false
}

// Random steps a uniformly random live process each time.
type Random struct {
	rng *rand.Rand
	buf []int
}

// NewRandom returns a seeded uniform scheduler.
func NewRandom(seed int64) *Random {
	return &Random{rng: rand.New(rand.NewSource(seed))}
}

// Next picks a live pid uniformly.
func (s *Random) Next(w *World) (int, bool) {
	s.buf = w.AppendLive(s.buf[:0])
	if len(s.buf) == 0 {
		return 0, false
	}
	return s.buf[s.rng.Intn(len(s.buf))], true
}

// Weighted steps live processes with probability proportional to their
// group weight — a skewed-latency world where low-weight groups run slow.
type Weighted struct {
	rng *rand.Rand
	buf []int
}

// NewWeighted returns a seeded weighted scheduler.
func NewWeighted(seed int64) *Weighted {
	return &Weighted{rng: rand.New(rand.NewSource(seed))}
}

// Next draws a live pid with probability ∝ WeightOf(pid).
func (s *Weighted) Next(w *World) (int, bool) {
	s.buf = w.AppendLive(s.buf[:0])
	if len(s.buf) == 0 {
		return 0, false
	}
	total := 0.0
	for _, pid := range s.buf {
		total += w.WeightOf(pid)
	}
	if total <= 0 {
		return s.buf[s.rng.Intn(len(s.buf))], true
	}
	x := s.rng.Float64() * total
	for _, pid := range s.buf {
		x -= w.WeightOf(pid)
		if x < 0 {
			return pid, true
		}
	}
	return s.buf[len(s.buf)-1], true
}

// Adversarial preferentially stalls the processes closest to deciding: a
// live process poised on an Output step is starved while any other live
// process can run, for up to `patience` consecutive picks — the covering
// adversary's move of holding a poised decision back while the rest of the
// world advances. Patience keeps runs finite: after `patience` consecutive
// stalls one near-decider is released (the paper's adversary never has to
// release; a terminating test does).
type Adversarial struct {
	rng      *rand.Rand
	patience int
	starved  int
	live     []int
	near     []int
	far      []int
}

// NewAdversarial returns a seeded adversarial scheduler with the given
// patience (≤ 0 means 1000 stalls).
func NewAdversarial(seed int64, patience int) *Adversarial {
	if patience <= 0 {
		patience = 1000
	}
	return &Adversarial{rng: rand.New(rand.NewSource(seed)), patience: patience}
}

// Next stalls near-deciders while patience lasts.
func (s *Adversarial) Next(w *World) (int, bool) {
	s.live = w.AppendLive(s.live[:0])
	if len(s.live) == 0 {
		return 0, false
	}
	s.near, s.far = s.near[:0], s.far[:0]
	for _, pid := range s.live {
		if op, ok := w.Poised(pid); ok && op.Kind == sim.OpOutput {
			s.near = append(s.near, pid)
		} else {
			s.far = append(s.far, pid)
		}
	}
	if len(s.near) == 0 {
		s.starved = 0
		return s.far[s.rng.Intn(len(s.far))], true
	}
	if len(s.far) == 0 || s.starved >= s.patience {
		s.starved = 0
		return s.near[s.rng.Intn(len(s.near))], true
	}
	s.starved++
	return s.far[s.rng.Intn(len(s.far))], true
}
