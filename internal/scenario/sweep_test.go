package scenario

import (
	"fmt"
	"math/rand"
	"os"
	"testing"
)

// sweepWorld builds one randomized crash-fault world: two groups (one
// latency-skewed), inputs drawn from a small set so k-agreement has
// something to disagree about, and all but m processes crashed at seeded
// steps within an O(n) window.
func sweepWorld(n, m, k int, seed int64) WorldSpec {
	return WorldSpec{
		Name:      fmt.Sprintf("sweep-n%d", n),
		Algorithm: oneShotAlg(n, m, k),
		Configure: func(w *World) error {
			rng := rand.New(rand.NewSource(seed))
			heavy := w.CreateGroup(n / 2)
			heavy.SetInputs(func(local int) []int { return []int{100 + local%7} })
			light := w.CreateGroup(n - n/2)
			light.SetInputs(func(local int) []int { return []int{200 + local%7} })
			light.SetWeight(0.25)
			perm := rng.Perm(n)
			for _, pid := range perm[:n-m] {
				w.CrashAt(pid, 1+rng.Intn(40*n))
			}
			return nil
		},
		Options: Options{Seed: seed, MaxEvents: 400_000},
	}
}

// sweepScheduler rotates scheduler families across seeds.
func sweepScheduler(seed int64) Scheduler {
	switch seed % 3 {
	case 0:
		return NewRandom(seed)
	case 1:
		return NewWeighted(seed)
	default:
		return NewAdversarial(seed, 200)
	}
}

// artifactDir resolves where failing-seed replay artifacts go: the CI
// upload directory when set, a test temp dir otherwise.
func artifactDir(t *testing.T) string {
	if dir := os.Getenv("SCENARIO_ARTIFACT_DIR"); dir != "" {
		if err := os.MkdirAll(dir, 0o755); err == nil {
			return dir
		}
	}
	return t.TempDir()
}

// failSeed logs the seed and writes the replay artifact before failing.
func failSeed(t *testing.T, res *Result, seed int64, reason string) {
	t.Helper()
	art := NewArtifact(res, reason)
	path, err := art.Save(artifactDir(t))
	if err != nil {
		path = fmt.Sprintf("(artifact save failed: %v)", err)
	}
	t.Fatalf("seed %d: %s\nreplay artifact: %s", seed, reason, path)
}

// TestScenarioSweep is the randomized property sweep: for each seed, a
// 50-process crash-fault world under a rotated scheduler family must stay
// valid, well-formed and within k distinct decisions, and the surviving m
// processes must all decide. 64 seeds in short mode.
func TestScenarioSweep(t *testing.T) {
	const n, m, k = 50, 3, 5
	seeds := 256
	if testing.Short() {
		seeds = 64
	}
	for s := 0; s < seeds; s++ {
		seed := int64(s)
		spec := sweepWorld(n, m, k, seed)
		w, err := spec.New()
		if err != nil {
			t.Fatalf("seed %d: New: %v", seed, err)
		}
		res, err := w.Run(sweepScheduler(seed))
		if err != nil {
			failSeed(t, res, seed, fmt.Sprintf("run error: %v", err))
		}
		if err := res.Check(); err != nil {
			failSeed(t, res, seed, fmt.Sprintf("safety violation: %v", err))
		}
		if !res.Completed {
			failSeed(t, res, seed, fmt.Sprintf("survivors did not decide within %d events", len(res.Events)))
		}
	}
}

// TestScenarioCrashSweep500 is the 500-process crash-fault world — the
// scale point of the acceptance criteria, also exercised under -race in CI.
func TestScenarioCrashSweep500(t *testing.T) {
	const n, m, k = 500, 2, 3
	const seed = 1
	spec := WorldSpec{
		Name:      "sweep-500",
		Algorithm: oneShotAlg(n, m, k),
		Configure: func(w *World) error {
			rng := rand.New(rand.NewSource(seed))
			w.CreateGroup(n).SetInputs(func(local int) []int { return []int{local % 10} })
			perm := rng.Perm(n)
			for _, pid := range perm[:n-m] {
				w.CrashAt(pid, 1+rng.Intn(5_000))
			}
			return nil
		},
		// The step trace of a run this size is all memory traffic and no
		// information: events alone make the run replayable.
		Options: Options{Seed: seed, MaxEvents: 400_000, NoTrace: true},
	}
	w, err := spec.New()
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res, err := w.Run(NewRandom(seed))
	if err != nil {
		failSeed(t, res, seed, fmt.Sprintf("run error: %v", err))
	}
	if err := res.Check(); err != nil {
		failSeed(t, res, seed, fmt.Sprintf("safety violation: %v", err))
	}
	if !res.Completed {
		failSeed(t, res, seed, fmt.Sprintf("survivors did not decide within %d events", len(res.Events)))
	}
	crashes := 0
	for _, ev := range res.Events {
		if ev.Kind == EvCrash {
			crashes++
		}
	}
	if crashes < n-m-50 {
		t.Fatalf("only %d crashes fired (plan: %d); world too short to be meaningful", crashes, n-m)
	}
}
