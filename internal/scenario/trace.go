package scenario

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"setagreement/internal/sim"
)

// TraceText renders a step trace one line per step, deterministically —
// byte-identical traces mean identical executions at operation granularity.
func TraceText(trace []sim.StepRecord) string {
	var b strings.Builder
	for _, rec := range trace {
		fmt.Fprintf(&b, "#%d p%d %s", rec.Index, rec.Proc, rec.Op.String())
		if rec.Op.Kind == sim.OpRead {
			fmt.Fprintf(&b, " = %v", rec.Result)
		}
		if rec.Op.Kind == sim.OpScan {
			fmt.Fprintf(&b, " = %v", rec.ScanResult)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// EventsText renders an event list one line per event.
func EventsText(events []Event) string {
	var b strings.Builder
	for i, ev := range events {
		fmt.Fprintf(&b, "#%d %s %d\n", i, ev.Kind, ev.Pid)
	}
	return b.String()
}

// Artifact is a failing run packaged for offline replay: the spec's name
// and seed plus the exact event list. WorldSpec.Replay of Events under the
// same spec reproduces the run; Reason says what failed.
type Artifact struct {
	Name   string  `json:"name"`
	Seed   int64   `json:"seed"`
	Reason string  `json:"reason"`
	Events []Event `json:"events"`
}

// NewArtifact packages a failed result.
func NewArtifact(res *Result, reason string) *Artifact {
	return &Artifact{Name: res.Name, Seed: res.Seed, Reason: reason, Events: res.Events}
}

// Save writes the artifact as JSON into dir and returns the file path.
func (a *Artifact) Save(dir string) (string, error) {
	data, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return "", err
	}
	name := fmt.Sprintf("%s-seed%d.json", a.Name, a.Seed)
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// LoadArtifact reads an artifact written by Save.
func LoadArtifact(path string) (*Artifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var a Artifact
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, err
	}
	return &a, nil
}
