package scenario

import (
	"fmt"
	"math/rand"
	"strings"

	"setagreement/internal/shmem"
	"setagreement/internal/sim"
)

// VisibilityPolicy describes how long writes stay private before becoming
// globally visible — a model of worlds weaker than atomic shared memory
// (store buffers, partitions healing after a delay). The writer always sees
// its own buffered writes; EarlyReaders may see them before delivery; every
// other process sees them only once the world delivers them to the shared
// memory.
//
// Delivery goes through sim.Memory's ordinary mutators, so the
// shmem.Notifier exact-version contract is preserved: one version advance
// per write, charged at the moment the write becomes globally visible, and
// its effect is readable no later than that advance. Writes to the same
// location deliver in write order (per-location FIFO), so delayed delivery
// reorders across locations but never inverts a location's final value.
type VisibilityPolicy struct {
	// Delay returns how many world steps a write by pid to loc stays
	// buffered. Zero (or negative) applies the write immediately, with no
	// deliver event. The rng is the world's own (seeded) source.
	Delay func(pid int, loc sim.Loc, rng *rand.Rand) int
	// EarlyReaders, when non-nil, lists processes (besides the writer)
	// that see the write while it is still buffered.
	EarlyReaders func(pid int, loc sim.Loc, rng *rand.Rand) []int
	// DropOnCrash discards a crashed process's buffered writes: the crash
	// happened before the writes propagated, so they never become visible.
	DropOnCrash bool
}

// pendingWrite is one buffered write awaiting delivery.
type pendingWrite struct {
	seq   int
	pid   int
	loc   sim.Loc
	val   shmem.Value
	due   int // world clock at which the write may deliver
	early []int
}

// delayedVis implements sim.MemHook over the runner's memory. It is driven
// by the world: the hook buffers writes and overlays reads, and the world
// turns due buffered writes into EvDeliver events.
type delayedVis struct {
	mem     *sim.Memory
	policy  VisibilityPolicy
	rng     *rand.Rand
	now     func() int
	pending []pendingWrite // in write (seq) order
	nextSeq int
}

func newDelayedVis(mem *sim.Memory, policy VisibilityPolicy, seed int64, now func() int) *delayedVis {
	return &delayedVis{
		mem:    mem,
		policy: policy,
		// Salted so the visibility stream is independent of scheduler
		// seeds derived from the same base seed.
		rng: rand.New(rand.NewSource(seed ^ 0x64656c6179)),
		now: now,
	}
}

var _ sim.MemHook = (*delayedVis)(nil)

// buffer enqueues a write, or applies it immediately for zero delay.
func (d *delayedVis) buffer(pid int, loc sim.Loc, v shmem.Value) {
	delay := 0
	if d.policy.Delay != nil {
		delay = d.policy.Delay(pid, loc, d.rng)
	}
	if delay <= 0 {
		d.mem.Set(loc, v)
		return
	}
	var early []int
	if d.policy.EarlyReaders != nil {
		early = d.policy.EarlyReaders(pid, loc, d.rng)
	}
	d.pending = append(d.pending, pendingWrite{
		seq:   d.nextSeq,
		pid:   pid,
		loc:   loc,
		val:   v,
		due:   d.now() + delay,
		early: early,
	})
	d.nextSeq++
}

// visibleTo reports whether a buffered write is readable by pid.
func (p *pendingWrite) visibleTo(pid int) bool {
	if p.pid == pid {
		return true
	}
	for _, e := range p.early {
		if e == pid {
			return true
		}
	}
	return false
}

func (d *delayedVis) Read(pid, reg int) shmem.Value {
	loc := sim.Loc{Snap: sim.SnapNone, Reg: reg}
	for i := len(d.pending) - 1; i >= 0; i-- {
		if p := &d.pending[i]; p.loc == loc && p.visibleTo(pid) {
			return p.val
		}
	}
	return d.mem.Read(reg)
}

func (d *delayedVis) Write(pid, reg int, v shmem.Value) {
	d.buffer(pid, sim.Loc{Snap: sim.SnapNone, Reg: reg}, v)
}

func (d *delayedVis) Update(pid, snap, comp int, v shmem.Value) {
	d.buffer(pid, sim.Loc{Snap: snap, Reg: comp}, v)
}

func (d *delayedVis) Scan(pid, snap int) []shmem.Value {
	base := d.mem.Scan(snap)
	out := make([]shmem.Value, len(base))
	copy(out, base)
	for i := range d.pending {
		p := &d.pending[i]
		if p.loc.Snap == snap && p.visibleTo(pid) {
			out[p.loc.Reg] = p.val // seq order: newest visible wins
		}
	}
	return out
}

// nextDue returns the lowest-seq deliverable write: due by now, and not
// behind an older buffered write to the same location.
func (d *delayedVis) nextDue(clock int) (int, bool) {
	blocked := make(map[sim.Loc]bool, len(d.pending))
	for i := range d.pending {
		p := &d.pending[i]
		if !blocked[p.loc] && p.due <= clock {
			return p.seq, true
		}
		blocked[p.loc] = true
	}
	return 0, false
}

// deliver applies buffered write seq to the shared memory — the write's one
// notifier version advance is charged here.
func (d *delayedVis) deliver(seq int) error {
	for i := range d.pending {
		p := d.pending[i]
		if p.seq != seq {
			continue
		}
		for j := 0; j < i; j++ {
			if d.pending[j].loc == p.loc {
				return fmt.Errorf("scenario: delivery of write %d would overtake write %d to %v", seq, d.pending[j].seq, p.loc)
			}
		}
		d.pending = append(d.pending[:i], d.pending[i+1:]...)
		d.mem.Set(p.loc, p.val)
		return nil
	}
	return fmt.Errorf("scenario: no buffered write %d", seq)
}

// dropFor discards pid's buffered writes (crash before propagation).
func (d *delayedVis) dropFor(pid int) {
	kept := d.pending[:0]
	for _, p := range d.pending {
		if p.pid != pid {
			kept = append(kept, p)
		}
	}
	d.pending = kept
}

func (d *delayedVis) pendingCount() int { return len(d.pending) }

// Signature folds the buffer into sim.StateSignature so explorations over
// delayed-visibility worlds stay sound.
func (d *delayedVis) Signature() string {
	var b strings.Builder
	for i := range d.pending {
		p := &d.pending[i]
		fmt.Fprintf(&b, "%d:p%d:%v=%v@%d;", p.seq, p.pid, p.loc, p.val, p.due)
	}
	return b.String()
}
