package scenario

import (
	"math/rand"
	"testing"

	"setagreement/internal/shmem"
	"setagreement/internal/sim"
)

func newVisMem(t *testing.T, spec shmem.Spec) *sim.Memory {
	t.Helper()
	mem, err := sim.NewMemory(spec)
	if err != nil {
		t.Fatalf("NewMemory: %v", err)
	}
	return mem
}

func TestDelayedWriteVisibility(t *testing.T) {
	mem := newVisMem(t, shmem.Spec{Regs: 2})
	clock := 0
	pol := VisibilityPolicy{
		Delay: func(pid int, _ sim.Loc, _ *rand.Rand) int {
			if pid == 0 {
				return 3
			}
			return 0
		},
	}
	d := newDelayedVis(mem, pol, 1, func() int { return clock })

	v0 := mem.Version()
	d.Write(0, 0, 7)

	// The writer sees its own buffered write; nobody else does; and the
	// notifier version has NOT advanced — no publish before delivery.
	if got := d.Read(0, 0); got != 7 {
		t.Fatalf("writer read = %v, want 7", got)
	}
	if got := d.Read(1, 0); got != nil {
		t.Fatalf("other process read buffered write: %v", got)
	}
	if mem.Version() != v0 {
		t.Fatalf("buffered write advanced the version: %d -> %d", v0, mem.Version())
	}
	if _, ok := d.nextDue(clock); ok {
		t.Fatal("write deliverable before its delay elapsed")
	}

	// Delivery applies the write through the memory: exactly one version
	// advance, charged at delivery, and everyone sees the value.
	clock = 3
	seq, ok := d.nextDue(clock)
	if !ok {
		t.Fatal("write not deliverable at its due step")
	}
	if err := d.deliver(seq); err != nil {
		t.Fatalf("deliver: %v", err)
	}
	if mem.Version() != v0+1 {
		t.Fatalf("delivery advanced version by %d, want exactly 1", mem.Version()-v0)
	}
	if got := d.Read(1, 0); got != 7 {
		t.Fatalf("post-delivery read = %v, want 7", got)
	}
	if d.pendingCount() != 0 {
		t.Fatalf("pending = %d after delivery", d.pendingCount())
	}

	// A zero-delay writer bypasses the buffer entirely.
	d.Write(1, 1, 9)
	if mem.Version() != v0+2 || mem.Read(1) != 9 {
		t.Fatalf("zero-delay write not applied immediately: ver=%d reg1=%v", mem.Version(), mem.Read(1))
	}
}

func TestDelayedWritesSameLocationFIFO(t *testing.T) {
	mem := newVisMem(t, shmem.Spec{Regs: 1})
	clock := 0
	delays := []int{5, 1}
	i := 0
	pol := VisibilityPolicy{Delay: func(int, sim.Loc, *rand.Rand) int { d := delays[i]; i++; return d }}
	d := newDelayedVis(mem, pol, 1, func() int { return clock })

	d.Write(0, 0, "old") // due at 5
	d.Write(0, 0, "new") // due at 1

	// The second write is due first but must not overtake the first.
	clock = 2
	if _, ok := d.nextDue(clock); ok {
		t.Fatal("younger write deliverable ahead of older write to the same location")
	}
	if err := d.deliver(1); err == nil {
		t.Fatal("out-of-order delivery accepted")
	}
	clock = 5
	seq, ok := d.nextDue(clock)
	if !ok || seq != 0 {
		t.Fatalf("nextDue = %d,%v; want 0,true", seq, ok)
	}
	if err := d.deliver(seq); err != nil {
		t.Fatalf("deliver old: %v", err)
	}
	seq, ok = d.nextDue(clock)
	if !ok || seq != 1 {
		t.Fatalf("nextDue after first delivery = %d,%v; want 1,true", seq, ok)
	}
	if err := d.deliver(seq); err != nil {
		t.Fatalf("deliver new: %v", err)
	}
	if got := mem.Read(0); got != "new" {
		t.Fatalf("final value = %v, want \"new\" (FIFO preserved)", got)
	}
}

func TestDelayedScanOverlayAndEarlyReaders(t *testing.T) {
	mem := newVisMem(t, shmem.Spec{Snaps: []int{3}})
	clock := 0
	pol := VisibilityPolicy{
		Delay:        func(int, sim.Loc, *rand.Rand) int { return 10 },
		EarlyReaders: func(int, sim.Loc, *rand.Rand) []int { return []int{2} },
	}
	d := newDelayedVis(mem, pol, 1, func() int { return clock })

	d.Update(0, 0, 1, "x")
	if got := d.Scan(0, 0)[1]; got != "x" {
		t.Fatalf("writer scan overlay = %v, want x", got)
	}
	if got := d.Scan(2, 0)[1]; got != "x" {
		t.Fatalf("early reader scan overlay = %v, want x", got)
	}
	if got := d.Scan(1, 0)[1]; got != nil {
		t.Fatalf("non-early reader saw buffered update: %v", got)
	}
	if got := mem.Scan(0)[1]; got != nil {
		t.Fatalf("buffered update reached shared memory early: %v", got)
	}
}

func TestCrashDropsBufferedWrites(t *testing.T) {
	mem := newVisMem(t, shmem.Spec{Regs: 2})
	clock := 0
	pol := VisibilityPolicy{Delay: func(int, sim.Loc, *rand.Rand) int { return 4 }, DropOnCrash: true}
	d := newDelayedVis(mem, pol, 1, func() int { return clock })

	v0 := mem.Version()
	d.Write(0, 0, 7)
	d.Write(1, 1, 8)
	d.dropFor(0)
	if d.pendingCount() != 1 {
		t.Fatalf("pending = %d after drop, want 1", d.pendingCount())
	}
	clock = 4
	seq, ok := d.nextDue(clock)
	if !ok {
		t.Fatal("survivor's write not deliverable")
	}
	if err := d.deliver(seq); err != nil {
		t.Fatalf("deliver: %v", err)
	}
	if mem.Read(0) != nil || mem.Read(1) != 8 {
		t.Fatalf("memory = (%v, %v), want (nil, 8): crashed write must never surface", mem.Read(0), mem.Read(1))
	}
	if mem.Version() != v0+1 {
		t.Fatalf("version advanced %d times, want 1", mem.Version()-v0)
	}
}

// TestWorldDelayedVisibilityReplay runs a whole world under per-group write
// delay and asserts the deliver events are part of the replayable record.
func TestWorldDelayedVisibilityReplay(t *testing.T) {
	spec := WorldSpec{
		Name:      "visibility-world",
		Algorithm: oneShotAlg(3, 2, 2),
		Configure: func(w *World) error {
			g := w.CreateGroup(3)
			g.SetDelay(4)
			return nil
		},
		Options: Options{Seed: 9, MaxEvents: 5000},
	}
	w, err := spec.New()
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res, err := w.Run(NewRandom(9))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	delivers := 0
	for _, ev := range res.Events {
		if ev.Kind == EvDeliver {
			delivers++
		}
	}
	if delivers == 0 {
		t.Fatal("no deliver events despite a write delay")
	}
	rep, err := spec.Replay(res.Events)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if TraceText(rep.Trace) != TraceText(res.Trace) {
		t.Fatal("delayed-visibility replay diverged from the recorded run")
	}
	if rep.Undelivered != res.Undelivered {
		t.Fatalf("replay left %d undelivered writes, original %d", rep.Undelivered, res.Undelivered)
	}
}
