// Package sched provides schedulers for the deterministic simulator: the
// sources of asynchrony in an execution. A scheduler chooses, step by step,
// which process moves next.
//
// The m-obstruction-freedom progress condition of the paper quantifies over
// executions in which at most m processes take infinitely many steps; the
// EventuallyM scheduler generates exactly such executions (an arbitrary
// finite contended prefix followed by steps of at most m movers), which is
// how termination is tested.
package sched

import (
	"math/rand"

	"setagreement/internal/sim"
)

// live returns the indices of processes that have not terminated.
func live(r *sim.Runner) []int {
	var out []int
	for i := 0; i < r.NumProcs(); i++ {
		if !r.IsDone(i) {
			out = append(out, i)
		}
	}
	return out
}

// RoundRobin steps live processes in cyclic index order.
type RoundRobin struct {
	next int
}

var _ sim.Scheduler = (*RoundRobin)(nil)

// Next implements sim.Scheduler.
func (s *RoundRobin) Next(r *sim.Runner) (int, bool) {
	n := r.NumProcs()
	for tries := 0; tries < n; tries++ {
		pid := s.next % n
		s.next++
		if !r.IsDone(pid) {
			return pid, true
		}
	}
	return 0, false
}

// Random steps a uniformly random live process, from a seeded source so runs
// are reproducible.
type Random struct {
	rng *rand.Rand
}

var _ sim.Scheduler = (*Random)(nil)

// NewRandom returns a Random scheduler with the given seed.
func NewRandom(seed int64) *Random {
	return &Random{rng: rand.New(rand.NewSource(seed))}
}

// Next implements sim.Scheduler.
func (s *Random) Next(r *sim.Runner) (int, bool) {
	l := live(r)
	if len(l) == 0 {
		return 0, false
	}
	return l[s.rng.Intn(len(l))], true
}

// Solo runs a single process to completion, then stops. It generates the
// executions quantified over by plain obstruction-freedom.
type Solo struct {
	// Proc is the index of the process allowed to move.
	Proc int
}

var _ sim.Scheduler = (*Solo)(nil)

// Next implements sim.Scheduler.
func (s *Solo) Next(r *sim.Runner) (int, bool) {
	if r.IsDone(s.Proc) {
		return 0, false
	}
	return s.Proc, true
}

// Sequential runs each live process to completion in index order: process 0
// solo until done, then process 1, and so on.
type Sequential struct{}

var _ sim.Scheduler = (*Sequential)(nil)

// Next implements sim.Scheduler.
func (s *Sequential) Next(r *sim.Runner) (int, bool) {
	for i := 0; i < r.NumProcs(); i++ {
		if !r.IsDone(i) {
			return i, true
		}
	}
	return 0, false
}

// EventuallyM generates m-obstruction-free executions: a random contended
// prefix of PrefixSteps steps in which every process may move, after which
// only the processes in Movers move (round-robin among live movers). The
// paper's m-obstruction-freedom property promises that each mover then
// completes every operation.
type EventuallyM struct {
	Movers      []int
	PrefixSteps int
	rng         *rand.Rand
}

var _ sim.Scheduler = (*EventuallyM)(nil)

// NewEventuallyM returns an EventuallyM scheduler with a seeded random
// contended prefix.
func NewEventuallyM(movers []int, prefixSteps int, seed int64) *EventuallyM {
	m := make([]int, len(movers))
	copy(m, movers)
	return &EventuallyM{
		Movers:      m,
		PrefixSteps: prefixSteps,
		rng:         rand.New(rand.NewSource(seed)),
	}
}

// Next implements sim.Scheduler.
func (s *EventuallyM) Next(r *sim.Runner) (int, bool) {
	if r.Steps() < s.PrefixSteps {
		l := live(r)
		if len(l) == 0 {
			return 0, false
		}
		return l[s.rng.Intn(len(l))], true
	}
	// Round-robin over live movers, starting from a rotating offset so
	// that all movers advance.
	n := len(s.Movers)
	for tries := 0; tries < n; tries++ {
		pid := s.Movers[(r.Steps()+tries)%n]
		if !r.IsDone(pid) {
			return pid, true
		}
	}
	return 0, false
}

// Fixed replays a predetermined schedule, skipping entries for terminated
// processes, then stops.
type Fixed struct {
	Schedule []int
	pos      int
}

var _ sim.Scheduler = (*Fixed)(nil)

// Next implements sim.Scheduler.
func (s *Fixed) Next(r *sim.Runner) (int, bool) {
	for s.pos < len(s.Schedule) {
		pid := s.Schedule[s.pos]
		s.pos++
		if pid >= 0 && pid < r.NumProcs() && !r.IsDone(pid) {
			return pid, true
		}
	}
	return 0, false
}

// Crashing wraps another scheduler with permanent crash faults: each
// process in Quota is allowed that many steps and then never scheduled
// again. A crash in the asynchronous model is indistinguishable from never
// being scheduled, which is exactly what this produces; combined with at
// most m surviving movers it generates the fault-prone executions for which
// m-obstruction-freedom still promises termination.
type Crashing struct {
	Inner sim.Scheduler
	Quota map[int]int
	taken map[int]int
}

var _ sim.Scheduler = (*Crashing)(nil)

// NewCrashing wraps inner, crashing each process in quota after its steps.
func NewCrashing(inner sim.Scheduler, quota map[int]int) *Crashing {
	q := make(map[int]int, len(quota))
	for pid, steps := range quota {
		q[pid] = steps
	}
	return &Crashing{Inner: inner, Quota: q, taken: make(map[int]int)}
}

// Crashed reports whether pid has exhausted its quota.
func (s *Crashing) Crashed(pid int) bool {
	quota, limited := s.Quota[pid]
	return limited && s.taken[pid] >= quota
}

// Next implements sim.Scheduler.
func (s *Crashing) Next(r *sim.Runner) (int, bool) {
	if s.taken == nil {
		s.taken = make(map[int]int)
	}
	for tries := 0; tries < 4*r.NumProcs(); tries++ {
		pid, ok := s.Inner.Next(r)
		if !ok {
			return 0, false
		}
		if s.Crashed(pid) {
			continue
		}
		s.taken[pid]++
		return pid, true
	}
	return 0, false
}

// Blocker is an adversarial heuristic that tries to keep processes from
// deciding: whenever some live process is poised to write, it prefers the
// poised writer whose target was least recently written (spreading writes to
// maximize disruption of others' scans); otherwise it steps the live process
// with the fewest steps so far. It never violates safety — no scheduler can —
// but it stresses the convergence arguments of the algorithms.
type Blocker struct {
	stepsBy  map[int]int
	lastW    map[sim.Loc]int
	tick     int
	prefRead bool
}

var _ sim.Scheduler = (*Blocker)(nil)

// NewBlocker returns a Blocker scheduler.
func NewBlocker() *Blocker {
	return &Blocker{stepsBy: make(map[int]int), lastW: make(map[sim.Loc]int)}
}

// Next implements sim.Scheduler.
func (s *Blocker) Next(r *sim.Runner) (int, bool) {
	l := live(r)
	if len(l) == 0 {
		return 0, false
	}
	s.tick++
	best, bestScore := -1, 0
	for _, pid := range l {
		op, ok := r.Poised(pid)
		if !ok {
			continue
		}
		if op.IsWrite() {
			loc, _ := op.Target()
			score := s.tick - s.lastW[loc]
			if best == -1 || score > bestScore {
				best, bestScore = pid, score
			}
		}
	}
	if best >= 0 && !s.prefRead {
		s.prefRead = true
		op, _ := r.Poised(best)
		if loc, ok := op.Target(); ok {
			s.lastW[loc] = s.tick
		}
		s.stepsBy[best]++
		return best, true
	}
	s.prefRead = false
	// Step the laggard.
	best = l[0]
	for _, pid := range l {
		if s.stepsBy[pid] < s.stepsBy[best] {
			best = pid
		}
	}
	s.stepsBy[best]++
	return best, true
}
