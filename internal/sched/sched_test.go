package sched

import (
	"testing"

	"setagreement/internal/shmem"
	"setagreement/internal/sim"
)

// loopProgram writes forever.
func loopProgram(p *sim.Proc) {
	for {
		p.Write(0, p.ID())
	}
}

// finiteProgram writes `steps` times then outputs.
func finiteProgram(steps int) sim.Program {
	return func(p *sim.Proc) {
		for i := 0; i < steps; i++ {
			p.Write(0, p.ID())
		}
		p.Output(1, p.ID())
	}
}

func newRunner(t *testing.T, progs ...sim.Program) *sim.Runner {
	t.Helper()
	specs := make([]sim.ProcSpec, len(progs))
	for i, pr := range progs {
		specs[i] = sim.ProcSpec{ID: i, Run: pr}
	}
	r, err := sim.NewRunner(shmem.Spec{Regs: 1}, specs)
	if err != nil {
		t.Fatalf("NewRunner: %v", err)
	}
	t.Cleanup(r.Abort)
	return r
}

func TestRoundRobinCycles(t *testing.T) {
	r := newRunner(t, loopProgram, loopProgram, loopProgram)
	s := &RoundRobin{}
	var order []int
	for i := 0; i < 6; i++ {
		pid, ok := s.Next(r)
		if !ok {
			t.Fatal("scheduler stopped early")
		}
		order = append(order, pid)
		if _, err := r.Step(pid); err != nil {
			t.Fatalf("step: %v", err)
		}
	}
	want := []int{0, 1, 2, 0, 1, 2}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestRoundRobinSkipsDone(t *testing.T) {
	r := newRunner(t, finiteProgram(1), loopProgram)
	s := &RoundRobin{}
	res, err := r.Run(s, 50)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !r.IsDone(0) {
		t.Fatal("finite process not done")
	}
	if res.Steps != 50 {
		t.Fatalf("steps = %d, want budget exhausted (50)", res.Steps)
	}
}

func TestRandomIsSeeded(t *testing.T) {
	runOrder := func(seed int64) []int {
		r := newRunner(t, loopProgram, loopProgram, loopProgram)
		s := NewRandom(seed)
		var order []int
		for i := 0; i < 20; i++ {
			pid, ok := s.Next(r)
			if !ok {
				t.Fatal("stopped early")
			}
			order = append(order, pid)
			if _, err := r.Step(pid); err != nil {
				t.Fatalf("step: %v", err)
			}
		}
		return order
	}
	a, b := runOrder(7), runOrder(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged: %v vs %v", a, b)
		}
	}
}

func TestSoloOnlyMovesOneProcess(t *testing.T) {
	r := newRunner(t, loopProgram, finiteProgram(3))
	s := &Solo{Proc: 1}
	res, err := r.Run(s, 100)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !r.IsDone(1) {
		t.Fatal("solo process did not finish")
	}
	if res.Steps != 4 { // 3 writes + output
		t.Fatalf("steps = %d, want 4", res.Steps)
	}
	for _, pid := range res.Schedule {
		if pid != 1 {
			t.Fatalf("solo schedule moved process %d", pid)
		}
	}
}

func TestSequentialRunsInOrder(t *testing.T) {
	r := newRunner(t, finiteProgram(2), finiteProgram(2))
	s := &Sequential{}
	res, err := r.Run(s, 100)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Completed {
		t.Fatal("not completed")
	}
	// All of process 0's steps precede process 1's.
	seenOne := false
	for _, pid := range res.Schedule {
		if pid == 1 {
			seenOne = true
		} else if seenOne {
			t.Fatalf("schedule interleaved: %v", res.Schedule)
		}
	}
}

func TestEventuallyMRestrictsMovers(t *testing.T) {
	r := newRunner(t, loopProgram, loopProgram, loopProgram, finiteProgram(5))
	s := NewEventuallyM([]int{3}, 20, 1)
	res, err := r.Run(s, 200)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !r.IsDone(3) {
		t.Fatal("mover did not finish")
	}
	for idx, pid := range res.Schedule {
		if idx >= 20 && pid != 3 {
			t.Fatalf("non-mover %d stepped at %d after prefix", pid, idx)
		}
	}
}

func TestFixedSchedule(t *testing.T) {
	r := newRunner(t, finiteProgram(2), finiteProgram(2))
	s := &Fixed{Schedule: []int{0, 1, 0, 1, 0, 1}}
	res, err := r.Run(s, 100)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Completed {
		t.Fatalf("not completed; schedule run: %v", res.Schedule)
	}
}

func TestCrashingEnforcesQuotas(t *testing.T) {
	r := newRunner(t, loopProgram, loopProgram, finiteProgram(10))
	s := NewCrashing(&RoundRobin{}, map[int]int{0: 2, 1: 0})
	res, err := r.Run(s, 200)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	counts := make(map[int]int)
	for _, pid := range res.Schedule {
		counts[pid]++
	}
	if counts[0] != 2 {
		t.Fatalf("process 0 took %d steps, quota 2", counts[0])
	}
	if counts[1] != 0 {
		t.Fatalf("process 1 took %d steps, quota 0", counts[1])
	}
	if !r.IsDone(2) {
		t.Fatal("unrestricted process did not finish")
	}
	if !s.Crashed(0) || !s.Crashed(1) || s.Crashed(2) {
		t.Fatal("Crashed reporting wrong")
	}
}

func TestCrashingStopsWhenAllCrashedOrDone(t *testing.T) {
	r := newRunner(t, loopProgram, finiteProgram(2))
	s := NewCrashing(&RoundRobin{}, map[int]int{0: 1})
	res, err := r.Run(s, 1000)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Process 0 crashed after 1 step, process 1 finished: the schedule
	// must terminate well under the budget.
	if res.Steps >= 1000 {
		t.Fatalf("scheduler spun: %d steps", res.Steps)
	}
	if !r.IsDone(1) {
		t.Fatal("finite process did not finish")
	}
}

func TestBlockerMaintainsProgressAccounting(t *testing.T) {
	// Blocker is adversarial but must still only pick live processes.
	r := newRunner(t, finiteProgram(4), finiteProgram(4), finiteProgram(4))
	s := NewBlocker()
	res, err := r.Run(s, 1000)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Completed {
		t.Fatal("blocker failed to eventually finish finite programs")
	}
}
