package shmem

// Backend is a named factory for shared memories: the substrate layer the
// native runtime is built on. A Backend turns a Spec into a fresh Mem whose
// operations are linearizable and safe for concurrent use by any number of
// goroutines. The algorithm and snapshot-construction layers above are
// written against Mem only, so any Backend (mutex-based, lock-free, and
// future sharded or persistent ones) can carry every snapshot runtime.
type Backend interface {
	// Name identifies the backend in flags, benchmarks and reports.
	Name() string
	// New allocates a fresh shared memory for the spec. The returned Mem
	// is shared by all processes of one agreement object.
	New(spec Spec) (Mem, error)
}

// Stepper is an optional capability of a Mem: a count of shared-memory
// operations executed so far. Backends expose it for step accounting and so
// test harnesses can derive real-time operation intervals from a monotonic
// per-memory clock. Implementations must guarantee that an operation's
// effect is visible no later than the counter increment it is charged to.
type Stepper interface {
	// Steps returns the number of operations executed so far.
	Steps() int64
}

// CASRetrier is an optional capability of a Mem: a count of failed
// compare-and-swap installs in the memory's lock-free update path.
// Backends expose it so callers can observe contention directly — every
// retry is one concurrent update that linearized first. Backends that
// never retry (mutex-serialized ones) simply omit the capability.
type CASRetrier interface {
	// CASRetries returns the number of failed CAS attempts so far.
	CASRetries() int64
}

// Resetter is an optional capability of a Mem: restore the memory to its
// initial state (every register nil, every snapshot component nil, all
// counters zero), so the allocation can be recycled for a fresh agreement
// object instead of going back to the garbage collector. Reset must only be
// called while no other goroutine is performing operations on the memory;
// the caller is responsible for that quiescence (the arena guarantees it by
// evicting an object only once every handle has been released). Concurrent
// reads of optional counters (Stepper, CASRetrier) remain safe.
type Resetter interface {
	// Reset restores the memory to the state a fresh New(spec) would have.
	Reset()
}

// BackendFunc adapts a name and a factory function to the Backend interface,
// for lightweight backend definitions and test doubles.
type BackendFunc struct {
	BackendName string
	Factory     func(Spec) (Mem, error)
}

var _ Backend = BackendFunc{}

// Name implements Backend.
func (b BackendFunc) Name() string { return b.BackendName }

// New implements Backend.
func (b BackendFunc) New(spec Spec) (Mem, error) { return b.Factory(spec) }
