package shmem

import "sync/atomic"

// ViewCombiner is the capability the wait layer uses to share one scan
// result among processes woken by the same publish: a version-keyed
// combining slot. A woken process that performs a private scan publishes
// {version, view}; processes woken by the same version adopt the published
// view instead of re-scanning. The capability only makes sense over a
// memory with the Notifier capability — the version that keys the slot is
// the notifier's exact change version.
//
// The correctness contract mirrors the Notifier's: a publisher must read
// the version BEFORE performing its scan, and an adopter must only use a
// view whose slot version equals the version it read at adoption time.
// Under the Notifier rule "an operation's effect is visible no later than
// its version advance", version equality across the publish/adopt window
// proves no operation completed in between, so the adopted view differs
// from a private scan only in effects of still-concurrent operations —
// which a private scan could legally include or miss anyway. An adopted
// view is therefore indistinguishable from a scan the adopter performed
// itself; linearizability and m-obstruction-freedom are untouched.
type ViewCombiner interface {
	// Adopt returns the published view for snapshot object snap if its slot
	// version equals version (the adopter's current notifier version).
	Adopt(snap int, version uint64) ([]Value, bool)
	// Publish offers {version, view} for snapshot object snap, where
	// version was read from the notifier before the scan that produced
	// view. Slots only move forward: an older version never displaces a
	// newer one.
	Publish(snap int, version uint64, view []Value)
}

// ScanCombiner is the standard ViewCombiner: one atomic combining slot per
// snapshot object, holding an immutable {version, view} pair installed by
// compare-and-swap. Adopt is one atomic load; Publish is one allocation
// plus a forward-only CAS. The zero slot (nil) matches no version.
//
// Reset clears every slot for memories recycled through the Resetter
// capability: the notifier's version rewinds to zero on Reset, so a stale
// slot could otherwise match a re-reached version of the next generation
// and leak a previous tenant's view. Like every Reset in this package it
// requires quiescence — no scan in flight.
type ScanCombiner struct {
	slots []atomic.Pointer[combinedView]
}

// combinedView is one published scan: the version read before the scan and
// the view it produced. Immutable after installation.
type combinedView struct {
	version uint64
	view    []Value
}

var _ ViewCombiner = (*ScanCombiner)(nil)

// NewScanCombiner builds a combiner with one slot per snapshot object.
func NewScanCombiner(snaps int) *ScanCombiner {
	return &ScanCombiner{slots: make([]atomic.Pointer[combinedView], snaps)}
}

// Adopt implements ViewCombiner.
func (c *ScanCombiner) Adopt(snap int, version uint64) ([]Value, bool) {
	cur := c.slots[snap].Load()
	if cur == nil || cur.version != version {
		return nil, false
	}
	return cur.view, true
}

// Publish implements ViewCombiner.
func (c *ScanCombiner) Publish(snap int, version uint64, view []Value) {
	slot := &c.slots[snap]
	next := &combinedView{version: version, view: view}
	for {
		cur := slot.Load()
		if cur != nil && cur.version >= version {
			return
		}
		if slot.CompareAndSwap(cur, next) {
			return
		}
	}
}

// Reset clears every slot; see the type comment for when it must be called.
func (c *ScanCombiner) Reset() {
	for i := range c.slots {
		c.slots[i].Store(nil)
	}
}
