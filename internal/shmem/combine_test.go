package shmem

import (
	"sync"
	"testing"
)

func TestScanCombinerAdoptMatchesVersion(t *testing.T) {
	c := NewScanCombiner(2)
	if _, ok := c.Adopt(0, 0); ok {
		t.Fatal("empty slot adopted")
	}
	view := []Value{1, 2, 3}
	c.Publish(0, 7, view)
	got, ok := c.Adopt(0, 7)
	if !ok {
		t.Fatal("matching version not adopted")
	}
	if &got[0] != &view[0] {
		t.Fatal("adopted view is not the published slice")
	}
	// The version moved on between publish and adopt: stale view rejected.
	if _, ok := c.Adopt(0, 8); ok {
		t.Fatal("adopted a view published for an older version")
	}
	// Slots are per snapshot object.
	if _, ok := c.Adopt(1, 7); ok {
		t.Fatal("adopted across snapshot objects")
	}
}

func TestScanCombinerPublishForwardOnly(t *testing.T) {
	c := NewScanCombiner(1)
	newer := []Value{"new"}
	older := []Value{"old"}
	c.Publish(0, 9, newer)
	c.Publish(0, 4, older)
	got, ok := c.Adopt(0, 9)
	if !ok || got[0] != "new" {
		t.Fatalf("older publish displaced newer slot: %v %v", got, ok)
	}
	if _, ok := c.Adopt(0, 4); ok {
		t.Fatal("older publish installed over newer slot")
	}
}

func TestScanCombinerReset(t *testing.T) {
	c := NewScanCombiner(1)
	c.Publish(0, 3, []Value{"gen1"})
	c.Reset()
	// After Reset the notifier's version rewinds; the next generation
	// re-reaching version 3 must not see the previous generation's view.
	if _, ok := c.Adopt(0, 3); ok {
		t.Fatal("view survived Reset into the next generation")
	}
}

// TestScanCombinerConcurrent hammers one slot from publishers and adopters;
// run under -race this checks the slot's publication safety, and the
// version check ensures no adopter ever gets a view keyed to the wrong
// version.
func TestScanCombinerConcurrent(t *testing.T) {
	c := NewScanCombiner(1)
	const versions = 200
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for v := uint64(1); v <= versions; v++ {
				c.Publish(0, v, []Value{v})
			}
		}(w)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for v := uint64(1); v <= versions; v++ {
				if view, ok := c.Adopt(0, v); ok {
					if len(view) != 1 || view[0].(uint64) != v {
						t.Errorf("version %d adopted view %v", v, view)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}
