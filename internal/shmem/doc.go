// Package shmem defines the shared-memory interface that all set-agreement
// algorithms in this repository are written against.
//
// The same algorithm code runs on two substrates:
//
//   - the deterministic simulator (package sim), where every shared-memory
//     operation is a scheduler-granted step, and
//   - the native in-process runtime (package register), where operations are
//     executed directly by goroutines against a pluggable Backend (lock-free
//     atomic cells by default, or a mutex-guarded reference implementation).
//
// The model is the standard asynchronous shared memory of the paper: a fixed
// set of multi-writer multi-reader atomic registers, plus multi-writer atomic
// snapshot objects (which the paper builds from registers, citing its
// references [1,5,7,13]; this repository also provides register-based
// snapshot constructions in package snapshot).
//
// # The Mem contract
//
// A Mem is one process's handle to shared memory; each of its four
// operations — Read, Write, Update, Scan — is a single atomic step in the
// paper's model, linearizable and safe for unbounded goroutine concurrency.
// Two rules matter to every implementor and caller:
//
//   - The read-only view rule: a slice returned by Scan must be treated as
//     read-only and is stable — later operations never change it.
//     Implementations may hand out an immutable shared version (the
//     lock-free backend does) or a fresh copy (the mutex backend does);
//     callers must not write into either. Symmetrically, values stored into
//     memory must be treated as immutable by everyone afterwards.
//   - A Mem value is one process's view: implementations must tolerate any
//     number of concurrent processes, but a single Mem value is used by one
//     process at a time.
//
// # Optional capabilities
//
// Backends advertise extra powers through optional interfaces on the Mem
// they return:
//
//   - Stepper: a monotonic operation counter. An operation's effect must be
//     visible no later than the counter increment it is charged to, which
//     is what lets the linearizability harnesses derive conservative
//     real-time intervals from counter readings.
//   - CASRetrier: the count of failed compare-and-swap installs in a
//     lock-free update path — a direct contention signal (each retry is one
//     concurrent update that linearized first). Backends that never retry
//     simply omit the capability.
//   - TryScanner: bounded scan attempts, provided by wait-free substrates
//     trivially and by the non-blocking double-collect construction so
//     callers can interleave other work between attempts.
//   - Resetter: restore the memory to its initial state so the allocation
//     can be recycled for a fresh agreement object (the arena's pool uses
//     this). Reset requires quiescence; concurrent counter reads stay safe.
//   - Notifier: event-driven waiting for memory changes — an exact change
//     version plus a blocking, context-cancellable AwaitChange. This is
//     what lets the runtime's wait strategies replace blind backoff
//     sleeps with being woken by the write that changes the memory a
//     contended process is waiting on. The Broadcast helper implements it
//     for any backend that calls Publish after each mutation.
//
// # Backend conformance
//
// Package shmem/shmemtest is the executable form of this contract: any
// Backend must pass shmemtest.Run unchanged — initial state, read-own-write,
// object independence, scan view stability, instance isolation, step and
// CAS-retry accounting, notifier semantics (exact versions, no lost
// wakeups, leak-free cancellation), reset semantics, scan atomicity and
// comparability under concurrent updaters, and a race-detector hammer. Add
// a new backend to register.Backends() and the existing test matrix picks
// it up.
package shmem
