package shmem

import (
	"context"
	"sync"
	"sync/atomic"
)

// Notifier is an optional capability of a Mem: event-driven waiting for
// memory changes. It is what turns contended progress from timer-polling
// into being woken by the write that changes the memory a process is
// waiting on.
//
// The contract:
//
//   - Version is a change counter that advances by exactly one for every
//     mutating operation (Write, Update) and never otherwise; Read and Scan
//     do not advance it. The "exactly one" part lets a caller that counts
//     its own mutations tell whether anyone else has written — the solo
//     detection the wait strategies rely on to never block a lone process.
//   - An operation's effect must be visible no later than the version
//     advance it is charged to, so a waiter released by AwaitChange can
//     immediately re-read memory and observe the write that woke it.
//   - AwaitChange(ctx, v) blocks until Version() > v or ctx is done.
//     Wakeups may be spurious internally (the implementation re-arms and
//     reports how many times that happened), but wakeups must never be
//     lost: a waiter blocked on version v must be released by any write
//     that installs a version v' > v, no matter how the two race.
//   - Waiters reports how many goroutines are currently blocked inside
//     AwaitChange, so tests and monitors can check that cancellation leaves
//     no waiter behind.
//
// Version's absolute value is meaningful only between a reading and a later
// wait on the same memory; Reset (see Resetter) may rewind it, which is
// safe because Reset already requires quiescence — no operation, and hence
// no wait, in flight.
type Notifier interface {
	// Version returns the memory's current change version.
	Version() uint64
	// AwaitChange blocks until Version() > v or ctx is done. It returns the
	// number of spurious wakeups it absorbed while waiting, and ctx.Err()
	// if the context ended the wait.
	AwaitChange(ctx context.Context, v uint64) (spurious int, err error)
	// Waiters returns the number of goroutines currently blocked in
	// AwaitChange.
	Waiters() int64
}

// Broadcast is a reusable implementation of the Notifier capability for
// backends: an atomic version plus a lazily allocated broadcast channel
// that Publish swaps out (close-and-replace) when waiters exist. Backends
// embed one and call Publish after each mutating operation's effect.
//
// The write hot path pays one atomic add and one atomic load when no one is
// waiting; the channel machinery is touched only by waiters and by writes
// that actually have someone to wake. The no-lost-wakeup argument: a waiter
// registers itself (waiter count), then acquires the current channel, then
// re-checks the version before sleeping; Publish advances the version
// before checking the waiter count. Under sequentially consistent atomics
// either the publisher sees the waiter and closes its channel, or the
// waiter's re-check sees the new version — there is no interleaving in
// which both miss.
//
// The zero Broadcast is ready to use.
type Broadcast struct {
	version atomic.Uint64
	waiters atomic.Int64

	mu sync.Mutex
	ch chan struct{} // current broadcast channel; nil until a waiter arms
}

var _ Notifier = (*Broadcast)(nil)

// Version implements Notifier.
func (b *Broadcast) Version() uint64 { return b.version.Load() }

// Waiters implements Notifier.
func (b *Broadcast) Waiters() int64 { return b.waiters.Load() }

// Publish records one mutation: the version advances by exactly one and any
// blocked waiter is released. Call it after the mutation's effect is
// visible.
func (b *Broadcast) Publish() {
	b.version.Add(1)
	if b.waiters.Load() == 0 {
		return
	}
	b.broadcast()
}

// broadcast closes the current channel, releasing every goroutine blocked
// on it; the next waiter allocates a fresh one.
func (b *Broadcast) broadcast() {
	b.mu.Lock()
	if b.ch != nil {
		close(b.ch)
		b.ch = nil
	}
	b.mu.Unlock()
}

// AwaitChange implements Notifier.
func (b *Broadcast) AwaitChange(ctx context.Context, v uint64) (int, error) {
	if b.version.Load() > v {
		return 0, nil
	}
	b.waiters.Add(1)
	defer b.waiters.Add(-1)
	spurious := 0
	for {
		b.mu.Lock()
		if b.ch == nil {
			b.ch = make(chan struct{})
		}
		ch := b.ch
		b.mu.Unlock()
		// Re-check after acquiring the exact channel we would sleep on:
		// any Publish after this load closes ch, so a wakeup cannot be
		// lost between the check and the select.
		if b.version.Load() > v {
			return spurious, nil
		}
		select {
		case <-ch:
			if b.version.Load() > v {
				return spurious, nil
			}
			spurious++ // woken by a stale or racing broadcast; re-arm
		case <-ctx.Done():
			return spurious, ctx.Err()
		}
	}
}

// Reset rewinds the version to zero and wakes any straggling waiter, for
// memories recycled through the Resetter capability. Like Reset on the
// memory itself, it must only be called while quiescent — in particular
// with no waiter legitimately blocked (the defensive wakeup turns a
// latent hang from a leaked waiter into a visible spurious return).
func (b *Broadcast) Reset() {
	b.version.Store(0)
	b.broadcast()
}
