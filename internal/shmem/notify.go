package shmem

import (
	"context"
	"sync"
	"sync/atomic"
)

// Notifier is an optional capability of a Mem: event-driven waiting for
// memory changes. It is what turns contended progress from timer-polling
// into being woken by the write that changes the memory a process is
// waiting on.
//
// The contract:
//
//   - Version is a change counter that advances by exactly one for every
//     mutating operation (Write, Update) and never otherwise; Read and Scan
//     do not advance it. The "exactly one" part lets a caller that counts
//     its own mutations tell whether anyone else has written — the solo
//     detection the wait strategies rely on to never block a lone process.
//   - An operation's effect must be visible no later than the version
//     advance it is charged to, so a waiter released by AwaitChange can
//     immediately re-read memory and observe the write that woke it.
//   - AwaitChange(ctx, v) blocks until Version() > v or ctx is done.
//     Wakeups may be spurious internally (the implementation re-arms and
//     reports how many times that happened), but wakeups must never be
//     lost: a waiter blocked on version v must be released by any write
//     that installs a version v' > v, no matter how the two race.
//   - RegisterWake is the completion-based (proactor) form of the same
//     wait: instead of blocking a goroutine, it registers a callback to run
//     once when Version() > v. It obeys the same no-lost-wakeup rule as
//     AwaitChange, so an engine can park thousands of stalled operations on
//     one memory at the cost of zero goroutines.
//   - Waiters reports how many operations are currently waiting on the
//     memory — goroutines blocked inside AwaitChange plus wake callbacks
//     registered and not yet fired — so tests and monitors can check that
//     cancellation leaves nothing behind, and so schedulers can read
//     per-object contention.
//
// Version's absolute value is meaningful only between a reading and a later
// wait on the same memory; Reset (see Resetter) may rewind it, which is
// safe because Reset already requires quiescence — no operation, and hence
// no wait, in flight.
type Notifier interface {
	// Version returns the memory's current change version.
	Version() uint64
	// AwaitChange blocks until Version() > v or ctx is done. It returns the
	// number of spurious wakeups it absorbed while waiting, and ctx.Err()
	// if the context ended the wait.
	AwaitChange(ctx context.Context, v uint64) (spurious int, err error)
	// RegisterWake arranges for fn to be called exactly once when
	// Version() > v. If the version is already past v, fn runs synchronously
	// before RegisterWake returns; otherwise it runs on the goroutine of the
	// mutation that advances the version past v, so fn must be brief, must
	// not block and must not itself operate on the memory — some backends
	// publish while holding their own locks (hand off to a queue, don't do
	// the work in fn). The
	// returned cancel is idempotent and revokes a not-yet-fired
	// registration; after cancel returns, fn will not be called unless it
	// already was.
	RegisterWake(v uint64, fn func()) (cancel func())
	// Waiters returns the number of waits currently pending on the memory:
	// goroutines blocked in AwaitChange plus unfired RegisterWake
	// registrations.
	Waiters() int64
}

// Broadcast is a reusable implementation of the Notifier capability for
// backends: an atomic version plus a lazily allocated broadcast channel
// that Publish swaps out (close-and-replace) when waiters exist. Backends
// embed one and call Publish after each mutating operation's effect.
//
// The write hot path pays one atomic add and one atomic load when no one is
// waiting; the channel machinery is touched only by waiters and by writes
// that actually have someone to wake. The no-lost-wakeup argument: a waiter
// registers itself (waiter count), then acquires the current channel, then
// re-checks the version before sleeping; Publish advances the version
// before checking the waiter count. Under sequentially consistent atomics
// either the publisher sees the waiter and closes its channel, or the
// waiter's re-check sees the new version — there is no interleaving in
// which both miss.
//
// The callback side (RegisterWake) shares the argument: a registration is
// installed (pending count, then the node, both under mu), then the version
// is re-checked before the registrar leaves; Publish advances the version
// before checking the pending count. Either the publisher sees the pending
// registration and drains it under mu, or the registrar's re-check sees the
// new version and fires immediately — again no interleaving misses both.
//
// The zero Broadcast is ready to use.
type Broadcast struct {
	version atomic.Uint64
	waiters atomic.Int64
	pending atomic.Int64 // RegisterWake registrations not yet fired

	mu   sync.Mutex
	ch   chan struct{}         // current broadcast channel; nil until a waiter arms
	regs map[*wakeReg]struct{} // live registrations; nil until one arms
}

// wakeReg is one RegisterWake registration. Its identity (the pointer) is
// what Publish, cancel and Reset race over; membership in Broadcast.regs,
// guarded by Broadcast.mu, decides who fires or revokes it — exactly once.
type wakeReg struct {
	after uint64
	fn    func()
}

var _ Notifier = (*Broadcast)(nil)

// Version implements Notifier.
func (b *Broadcast) Version() uint64 { return b.version.Load() }

// Waiters implements Notifier: blocked AwaitChange callers plus unfired
// RegisterWake registrations.
func (b *Broadcast) Waiters() int64 { return b.waiters.Load() + b.pending.Load() }

// Publish records one mutation: the version advances by exactly one, any
// blocked waiter is released and any registration the new version satisfies
// is fired. Call it after the mutation's effect is visible.
func (b *Broadcast) Publish() {
	b.version.Add(1)
	if b.waiters.Load() == 0 && b.pending.Load() == 0 {
		return
	}
	b.broadcast(false)
}

// broadcast closes the current channel, releasing every goroutine blocked
// on it (the next waiter allocates a fresh one), and fires the satisfied
// wake registrations — all of them when all is set (Reset's defensive
// drain). Callbacks run outside the lock: a callback may re-register
// without deadlocking, and membership in b.regs (checked and cleared under
// mu) keeps each registration's fire exactly-once even when broadcasts
// race.
func (b *Broadcast) broadcast(all bool) {
	v := b.version.Load()
	var fire []func()
	b.mu.Lock()
	if b.ch != nil {
		close(b.ch)
		b.ch = nil
	}
	for r := range b.regs {
		if all || r.after < v {
			delete(b.regs, r)
			b.pending.Add(-1)
			fire = append(fire, r.fn)
		}
	}
	b.mu.Unlock()
	for _, fn := range fire {
		fn()
	}
}

// RegisterWake implements Notifier.
func (b *Broadcast) RegisterWake(after uint64, fn func()) (cancel func()) {
	r := &wakeReg{after: after, fn: fn}
	b.mu.Lock()
	if b.regs == nil {
		b.regs = make(map[*wakeReg]struct{})
	}
	b.regs[r] = struct{}{}
	b.pending.Add(1)
	// Re-check after the registration is visible: any Publish after this
	// load finds pending > 0 and drains under mu, so a wakeup cannot be
	// lost between the caller's version read and the registration.
	if b.version.Load() > after {
		delete(b.regs, r)
		b.pending.Add(-1)
		b.mu.Unlock()
		fn()
		return func() {}
	}
	b.mu.Unlock()
	return func() {
		b.mu.Lock()
		if _, ok := b.regs[r]; ok {
			delete(b.regs, r)
			b.pending.Add(-1)
		}
		b.mu.Unlock()
	}
}

// AwaitChange implements Notifier.
func (b *Broadcast) AwaitChange(ctx context.Context, v uint64) (int, error) {
	if b.version.Load() > v {
		return 0, nil
	}
	b.waiters.Add(1)
	defer b.waiters.Add(-1)
	spurious := 0
	for {
		b.mu.Lock()
		if b.ch == nil {
			b.ch = make(chan struct{})
		}
		ch := b.ch
		b.mu.Unlock()
		// Re-check after acquiring the exact channel we would sleep on:
		// any Publish after this load closes ch, so a wakeup cannot be
		// lost between the check and the select.
		if b.version.Load() > v {
			return spurious, nil
		}
		select {
		case <-ch:
			if b.version.Load() > v {
				return spurious, nil
			}
			spurious++ // woken by a stale or racing broadcast; re-arm
		case <-ctx.Done():
			return spurious, ctx.Err()
		}
	}
}

// Reset rewinds the version to zero, wakes any straggling waiter and fires
// any straggling registration, for memories recycled through the Resetter
// capability. Like Reset on the memory itself, it must only be called while
// quiescent — in particular with no wait legitimately pending (the
// defensive drain turns a latent hang from a leaked waiter or registration
// into a visible spurious wake).
func (b *Broadcast) Reset() {
	b.version.Store(0)
	b.broadcast(true)
}
