package shmem_test

import (
	"context"
	"runtime"
	"sync"
	"testing"
	"time"

	"setagreement/internal/shmem"
)

// The backend-facing behavior of Broadcast (wakeups, cancellation, reset)
// is conformance-checked through every backend in shmemtest; the tests here
// pin down the helper's own contract at the unit level, including the
// arm/publish race no backend test can force deterministically.

func TestBroadcastFastPath(t *testing.T) {
	var b shmem.Broadcast
	if got := b.Version(); got != 0 {
		t.Fatalf("zero Broadcast Version() = %d", got)
	}
	b.Publish()
	b.Publish()
	if got := b.Version(); got != 2 {
		t.Fatalf("Version() = %d after 2 publishes", got)
	}
	// A wait on an already-superseded version returns without blocking.
	if sp, err := b.AwaitChange(context.Background(), 0); err != nil || sp != 0 {
		t.Fatalf("AwaitChange(past version) = (%d, %v)", sp, err)
	}
}

func TestBroadcastArmPublishRace(t *testing.T) {
	// Hammer the exact interleaving the no-lost-wakeup argument covers: a
	// waiter arming at version v while the publisher concurrently installs
	// v+1. Whichever side wins the race, the wait must return.
	var b shmem.Broadcast
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for i := 0; i < 2000; i++ {
		v := b.Version()
		done := make(chan error, 1)
		go func() {
			_, err := b.AwaitChange(ctx, v)
			done <- err
		}()
		b.Publish()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("round %d: %v", i, err)
			}
		case <-ctx.Done():
			t.Fatalf("round %d: lost wakeup", i)
		}
	}
}

func TestBroadcastManyWaitersOnePublish(t *testing.T) {
	var b shmem.Broadcast
	const waiters = 16
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	v := b.Version()
	var wg sync.WaitGroup
	errs := make(chan error, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := b.AwaitChange(ctx, v)
			errs <- err
		}()
	}
	for b.Waiters() < waiters {
		runtime.Gosched()
	}
	b.Publish()
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := b.Waiters(); got != 0 {
		t.Fatalf("Waiters() = %d after release", got)
	}
}

func TestBroadcastRegisterWakeArmPublishRace(t *testing.T) {
	// The callback counterpart of the arm/publish race: a registration on
	// version v races a publisher installing v+1. Whichever side wins, the
	// callback must run — synchronously from RegisterWake when the
	// registrar loses, from Publish's drain when it wins — and exactly once.
	var b shmem.Broadcast
	for i := 0; i < 2000; i++ {
		v := b.Version()
		done := make(chan struct{})
		go b.Publish()
		b.RegisterWake(v, func() { close(done) })
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatalf("round %d: lost callback wakeup", i)
		}
	}
	if got := b.Waiters(); got != 0 {
		t.Fatalf("Waiters() = %d after all registrations fired", got)
	}
}

func TestBroadcastRegisterWakeReentrant(t *testing.T) {
	// A callback may re-register from inside the fire (the engine's re-park
	// shape). Publish drains outside its lock, so this must neither deadlock
	// nor lose the chained registration.
	var b shmem.Broadcast
	done := make(chan struct{})
	b.RegisterWake(b.Version(), func() {
		b.RegisterWake(b.Version(), func() { close(done) })
	})
	b.Publish() // fires the outer callback, which chains the inner one
	b.Publish() // fires the inner one
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("chained registration never fired")
	}
}

func TestBroadcastResetDrainsRegistrations(t *testing.T) {
	// Reset's defensive drain: a registration leaked past quiescence fires
	// (visibly, spuriously) instead of hanging its owner forever.
	var b shmem.Broadcast
	fired := false
	b.RegisterWake(b.Version()+100, func() { fired = true })
	b.Reset()
	if !fired {
		t.Fatal("Reset did not drain the straggling registration")
	}
	if got := b.Waiters(); got != 0 {
		t.Fatalf("Waiters() = %d after Reset", got)
	}
}

func TestBroadcastCancellationCountsDown(t *testing.T) {
	var b shmem.Broadcast
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := b.AwaitChange(ctx, b.Version())
		done <- err
	}()
	for b.Waiters() == 0 {
		runtime.Gosched()
	}
	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancellation did not release the waiter")
	}
	if got := b.Waiters(); got != 0 {
		t.Fatalf("Waiters() = %d after cancellation", got)
	}
}
