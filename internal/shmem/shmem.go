package shmem

import "fmt"

// Value is the contents of a register or snapshot component. Algorithms store
// comparable values (ints and small comparable structs) so that scan results
// can be compared with ==, as the paper's pseudocode does.
type Value any

// Mem is one process's handle to shared memory. Each method is a single
// atomic operation (a "step" in the paper's model). Implementations must be
// safe for concurrent use by the processes they were handed to; a single Mem
// value is used by one process only.
type Mem interface {
	// Read returns the current value of register reg.
	Read(reg int) Value
	// Write sets register reg to v.
	Write(reg int, v Value)
	// Update writes v to component comp of snapshot object snap.
	Update(snap, comp int, v Value)
	// Scan returns an atomic view of all components of snapshot object snap.
	// The returned slice must be treated as read-only by the caller and is
	// stable: later operations never change it. Implementations may return
	// a slice shared with other scans (e.g. an immutable version) or a
	// fresh copy.
	Scan(snap int) []Value
}

// TryScanner is an optional capability of a Mem: a bounded scan attempt.
// Wait-free snapshot substrates always succeed; non-blocking ones (the
// anonymous double-collect of the paper's reference [7]) may fail after the
// given number of retry rounds, letting the caller interleave other work —
// which is how Figure 5's thread 2 (the H-register poll) is realized when
// the snapshot below the algorithm can starve.
type TryScanner interface {
	// TryScan attempts a scan of snapshot snap with at most `attempts`
	// internal retry rounds. ok=false means no consistent view was
	// obtained; the caller may retry.
	TryScan(snap, attempts int) (view []Value, ok bool)
}

// Spec describes how much shared memory an algorithm needs: a number of plain
// MWMR registers and, for each snapshot object, its component count.
type Spec struct {
	Regs  int
	Snaps []int
}

// RegisterCost is the total number of registers the specified memory costs
// when every snapshot object is implemented from registers, charging each
// r-component snapshot min(r, n) registers as in Theorems 7, 8 and 11 of the
// paper (r MWMR registers when r <= n, else n single-writer registers).
func (s Spec) RegisterCost(n int) int {
	total := s.Regs
	for _, r := range s.Snaps {
		total += min(r, n)
	}
	return total
}

// Validate reports whether the spec is well formed.
func (s Spec) Validate() error {
	if s.Regs < 0 {
		return fmt.Errorf("shmem: negative register count %d", s.Regs)
	}
	for i, r := range s.Snaps {
		if r <= 0 {
			return fmt.Errorf("shmem: snapshot %d has non-positive component count %d", i, r)
		}
	}
	return nil
}
