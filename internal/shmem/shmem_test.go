package shmem_test

import (
	"fmt"
	"testing"

	"setagreement/internal/shmem"
)

func TestSpecValidate(t *testing.T) {
	cases := []struct {
		spec shmem.Spec
		ok   bool
	}{
		{shmem.Spec{}, true},
		{shmem.Spec{Regs: 0, Snaps: nil}, true},
		{shmem.Spec{Regs: 5}, true},
		{shmem.Spec{Snaps: []int{1}}, true},
		{shmem.Spec{Regs: 2, Snaps: []int{3, 1, 7}}, true},
		{shmem.Spec{Regs: -1}, false},
		{shmem.Spec{Regs: -100, Snaps: []int{2}}, false},
		{shmem.Spec{Snaps: []int{0}}, false},
		{shmem.Spec{Snaps: []int{-2}}, false},
		{shmem.Spec{Snaps: []int{3, 0}}, false},
		{shmem.Spec{Regs: 1, Snaps: []int{1, 2, -1}}, false},
	}
	for _, tc := range cases {
		err := tc.spec.Validate()
		if tc.ok && err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", tc.spec, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("Validate(%+v) = nil, want error", tc.spec)
		}
	}
}

func TestSpecValidateErrorNamesOffender(t *testing.T) {
	err := shmem.Spec{Snaps: []int{2, 0}}.Validate()
	if err == nil {
		t.Fatal("want error")
	}
	if got := err.Error(); got != "shmem: snapshot 1 has non-positive component count 0" {
		t.Fatalf("error = %q", got)
	}
}

func TestSpecRegisterCost(t *testing.T) {
	cases := []struct {
		spec shmem.Spec
		n    int
		want int
	}{
		{shmem.Spec{}, 4, 0},
		{shmem.Spec{Regs: 3}, 4, 3},
		// r <= n: each snapshot costs its component count.
		{shmem.Spec{Snaps: []int{2}}, 4, 2},
		{shmem.Spec{Regs: 1, Snaps: []int{2, 3}}, 4, 6},
		// r > n: capped at n (the single-writer emulation branch).
		{shmem.Spec{Snaps: []int{9}}, 4, 4},
		{shmem.Spec{Regs: 2, Snaps: []int{9, 2}}, 4, 8},
		// r == n boundary.
		{shmem.Spec{Snaps: []int{4}}, 4, 4},
	}
	for _, tc := range cases {
		if got := tc.spec.RegisterCost(tc.n); got != tc.want {
			t.Errorf("RegisterCost(%+v, n=%d) = %d, want %d", tc.spec, tc.n, got, tc.want)
		}
	}
}

func TestBackendFunc(t *testing.T) {
	called := 0
	b := shmem.BackendFunc{
		BackendName: "fake",
		Factory: func(spec shmem.Spec) (shmem.Mem, error) {
			called++
			if err := spec.Validate(); err != nil {
				return nil, err
			}
			return nil, fmt.Errorf("fake backend: not implemented")
		},
	}
	if b.Name() != "fake" {
		t.Fatalf("Name = %q", b.Name())
	}
	if _, err := b.New(shmem.Spec{Regs: 1}); err == nil {
		t.Fatal("factory error not propagated")
	}
	if called != 1 {
		t.Fatalf("factory called %d times", called)
	}
}
