// Package shmemtest is a reusable conformance suite for shmem.Backend
// implementations. Every native backend (and any future one: sharded,
// NUMA-aware, persistent) must pass Run; it checks the Mem contract that
// the algorithm and snapshot-construction layers rely on — initial state,
// read-own-write, scan view stability, object independence, step
// accounting, atomicity of scans under concurrent updaters, and the
// change-notification capability (exact version accounting, no lost
// wakeups — blocking and completion-based alike — and cancellation that
// leaves no waiter behind).
//
// Run uses only the public shmem interfaces, so it lives beside the
// contract it checks rather than beside any one implementation.
package shmemtest

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"setagreement/internal/shmem"
)

// Run executes the full conformance suite against the backend as subtests.
func Run(t *testing.T, b shmem.Backend) {
	t.Run("RejectsBadSpec", func(t *testing.T) { rejectsBadSpec(t, b) })
	t.Run("InitialState", func(t *testing.T) { initialState(t, b) })
	t.Run("ReadOwnWrite", func(t *testing.T) { readOwnWrite(t, b) })
	t.Run("ObjectIndependence", func(t *testing.T) { objectIndependence(t, b) })
	t.Run("ScanViewStability", func(t *testing.T) { scanViewStability(t, b) })
	t.Run("InstanceIsolation", func(t *testing.T) { instanceIsolation(t, b) })
	t.Run("StepAccounting", func(t *testing.T) { stepAccounting(t, b) })
	t.Run("CASRetryAccounting", func(t *testing.T) { casRetryAccounting(t, b) })
	RunNotifier(t, b)
	t.Run("ResetRestoresInitialState", func(t *testing.T) { resetRestoresInitialState(t, b) })
	t.Run("ScanAtomicUnderUpdaters", func(t *testing.T) { scanAtomicUnderUpdaters(t, b) })
	t.Run("ScanComparability", func(t *testing.T) { scanComparability(t, b) })
	t.Run("ConcurrentHammer", func(t *testing.T) { concurrentHammer(t, b) })
}

// RunNotifier executes only the change-notification conformance checks
// against the backend. It exists for substrates whose memories implement
// shmem.Notifier but not the full concurrent-Mem contract — the simulated
// memory of internal/sim, whose cells are scheduler-owned and unlocked,
// while its notifier is internally synchronized like every other.
func RunNotifier(t *testing.T, b shmem.Backend) {
	t.Run("NotifierVersionCountsMutations", func(t *testing.T) { notifierVersionCountsMutations(t, b) })
	t.Run("NotifierWakeup", func(t *testing.T) { notifierWakeup(t, b) })
	t.Run("NotifierNoLostWakeups", func(t *testing.T) { notifierNoLostWakeups(t, b) })
	t.Run("NotifierRegisterWake", func(t *testing.T) { notifierRegisterWake(t, b) })
	t.Run("NotifierRegisterWakeNoLostWakeups", func(t *testing.T) { notifierRegisterWakeNoLostWakeups(t, b) })
	t.Run("NotifierCancellation", func(t *testing.T) { notifierCancellation(t, b) })
	t.Run("NotifierReset", func(t *testing.T) { notifierReset(t, b) })
}

func mustNew(t *testing.T, b shmem.Backend, spec shmem.Spec) shmem.Mem {
	t.Helper()
	m, err := b.New(spec)
	if err != nil {
		t.Fatalf("%s.New(%+v): %v", b.Name(), spec, err)
	}
	return m
}

func rejectsBadSpec(t *testing.T, b shmem.Backend) {
	for _, spec := range []shmem.Spec{
		{Regs: -1},
		{Snaps: []int{0}},
		{Snaps: []int{2, -3}},
		{Regs: -5, Snaps: []int{1}},
	} {
		if _, err := b.New(spec); err == nil {
			t.Errorf("%s.New(%+v) accepted an invalid spec", b.Name(), spec)
		}
	}
}

func initialState(t *testing.T, b shmem.Backend) {
	m := mustNew(t, b, shmem.Spec{Regs: 3, Snaps: []int{2, 4}})
	for reg := 0; reg < 3; reg++ {
		if got := m.Read(reg); got != nil {
			t.Errorf("initial Read(%d) = %v, want nil", reg, got)
		}
	}
	for snap, comps := range []int{2, 4} {
		view := m.Scan(snap)
		if len(view) != comps {
			t.Fatalf("Scan(%d) has %d components, want %d", snap, len(view), comps)
		}
		for c, v := range view {
			if v != nil {
				t.Errorf("initial Scan(%d)[%d] = %v, want nil", snap, c, v)
			}
		}
	}
}

func readOwnWrite(t *testing.T, b shmem.Backend) {
	m := mustNew(t, b, shmem.Spec{Regs: 2})
	for i := 0; i < 10; i++ {
		m.Write(0, i)
		if got := m.Read(0); got != i {
			t.Fatalf("Read after Write(0,%d) = %v", i, got)
		}
	}
	// Values of any comparable type round-trip unchanged.
	type pair struct{ A, B int }
	m.Write(1, pair{1, 2})
	if got := m.Read(1); got != (pair{1, 2}) {
		t.Fatalf("struct round-trip = %v", got)
	}
}

func objectIndependence(t *testing.T, b shmem.Backend) {
	m := mustNew(t, b, shmem.Spec{Regs: 2, Snaps: []int{2, 2}})
	m.Write(0, "r0")
	m.Update(0, 0, "s0c0")
	m.Update(1, 1, "s1c1")
	if got := m.Read(1); got != nil {
		t.Errorf("Read(1) = %v, want nil (registers must be independent)", got)
	}
	if v := m.Scan(0); v[0] != "s0c0" || v[1] != nil {
		t.Errorf("Scan(0) = %v", v)
	}
	if v := m.Scan(1); v[0] != nil || v[1] != "s1c1" {
		t.Errorf("Scan(1) = %v (snapshot objects must be independent)", v)
	}
	if got := m.Read(0); got != "r0" {
		t.Errorf("Read(0) = %v (updates must not clobber registers)", got)
	}
}

func scanViewStability(t *testing.T, b shmem.Backend) {
	// A returned view is stable: later updates must never change it. This
	// catches a backend that exposes live mutable state instead of a copy
	// or an immutable version.
	m := mustNew(t, b, shmem.Spec{Snaps: []int{3}})
	m.Update(0, 1, 42)
	view := m.Scan(0)
	m.Update(0, 0, "later")
	m.Update(0, 1, "later")
	m.Update(0, 2, "later")
	if view[0] != nil || view[1] != 42 || view[2] != nil {
		t.Fatalf("earlier scan view changed retroactively: %v", view)
	}
	if again := m.Scan(0); again[0] != "later" || again[1] != "later" || again[2] != "later" {
		t.Fatalf("scan after updates = %v", again)
	}
}

func instanceIsolation(t *testing.T, b shmem.Backend) {
	// Two memories from one backend must not share state.
	a := mustNew(t, b, shmem.Spec{Regs: 1, Snaps: []int{1}})
	c := mustNew(t, b, shmem.Spec{Regs: 1, Snaps: []int{1}})
	a.Write(0, "a")
	a.Update(0, 0, "as")
	if got := c.Read(0); got != nil {
		t.Errorf("second instance Read = %v, want nil", got)
	}
	if v := c.Scan(0); v[0] != nil {
		t.Errorf("second instance Scan = %v", v)
	}
}

func stepAccounting(t *testing.T, b shmem.Backend) {
	m := mustNew(t, b, shmem.Spec{Regs: 1, Snaps: []int{2}})
	clock, ok := m.(shmem.Stepper)
	if !ok {
		t.Skipf("%s does not expose step counts", b.Name())
	}
	if got := clock.Steps(); got != 0 {
		t.Fatalf("fresh memory Steps() = %d", got)
	}
	m.Write(0, 1)
	m.Read(0)
	m.Update(0, 0, 2)
	m.Scan(0)
	if got := clock.Steps(); got != 4 {
		t.Fatalf("Steps() = %d after 4 operations, want 4", got)
	}
}

func casRetryAccounting(t *testing.T, b shmem.Backend) {
	// The CASRetrier capability: zero on a fresh memory, still zero after
	// uncontended operations (a solo updater never loses a CAS), and
	// monotonic under contention.
	m := mustNew(t, b, shmem.Spec{Regs: 1, Snaps: []int{2}})
	rc, ok := m.(shmem.CASRetrier)
	if !ok {
		t.Skipf("%s does not expose CAS retry counts", b.Name())
	}
	if got := rc.CASRetries(); got != 0 {
		t.Fatalf("fresh memory CASRetries() = %d", got)
	}
	m.Write(0, 1)
	m.Read(0)
	m.Update(0, 0, 2)
	m.Update(0, 1, 3)
	m.Scan(0)
	if got := rc.CASRetries(); got != 0 {
		t.Fatalf("uncontended operations retried %d times", got)
	}
	const updaters, iters = 4, 300
	var wg sync.WaitGroup
	for u := 0; u < updaters; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				m.Update(0, u%2, i)
			}
		}(u)
	}
	mid := rc.CASRetries()
	wg.Wait()
	end := rc.CASRetries()
	if mid < 0 || end < mid {
		t.Fatalf("CASRetries not monotonic: read %d then %d", mid, end)
	}
}

// notifyTimeout bounds every wait the notifier conformance checks perform:
// long enough that a slow CI runner never trips it, short enough that a
// lost wakeup fails the suite instead of hanging it.
const notifyTimeout = 10 * time.Second

// awaitWaiters polls until the notifier reports at least want blocked
// waiters, so a test's write provably races a fully armed wait.
func awaitWaiters(t *testing.T, nt shmem.Notifier, want int64) {
	t.Helper()
	deadline := time.Now().Add(notifyTimeout)
	for nt.Waiters() < want {
		if time.Now().After(deadline) {
			t.Fatalf("notifier never reached %d waiters (have %d)", want, nt.Waiters())
		}
		runtime.Gosched()
	}
}

func notifierVersionCountsMutations(t *testing.T, b shmem.Backend) {
	// The version contract: advance by exactly one per mutating operation
	// (Write, Update), never on Read or Scan. Exactness is what lets a
	// caller that counts its own mutations detect foreign writes — the
	// solo detection of the wait strategies.
	m := mustNew(t, b, shmem.Spec{Regs: 2, Snaps: []int{2}})
	nt, ok := m.(shmem.Notifier)
	if !ok {
		t.Skipf("%s does not expose change notification", b.Name())
	}
	v0 := nt.Version()
	m.Read(0)
	m.Scan(0)
	if got := nt.Version(); got != v0 {
		t.Fatalf("version advanced %d by reads/scans", got-v0)
	}
	m.Write(0, 1)
	m.Write(1, 2)
	m.Update(0, 0, 3)
	if got := nt.Version(); got != v0+3 {
		t.Fatalf("version advanced %d after 3 mutations, want 3", got-v0)
	}
	if got := nt.Waiters(); got != 0 {
		t.Fatalf("idle memory reports %d waiters", got)
	}
}

func notifierWakeup(t *testing.T, b shmem.Backend) {
	// The no-lost-wakeup core: a waiter provably blocked on version v must
	// be released by any write installing v' > v. Exercised for both
	// mutation kinds, repeatedly.
	m := mustNew(t, b, shmem.Spec{Regs: 1, Snaps: []int{2}})
	nt, ok := m.(shmem.Notifier)
	if !ok {
		t.Skipf("%s does not expose change notification", b.Name())
	}
	ctx, cancel := context.WithTimeout(context.Background(), notifyTimeout)
	defer cancel()
	for i := 0; i < 25; i++ {
		v := nt.Version()
		done := make(chan error, 1)
		go func() {
			_, err := nt.AwaitChange(ctx, v)
			done <- err
		}()
		awaitWaiters(t, nt, 1)
		if i%2 == 0 {
			m.Write(0, i)
		} else {
			m.Update(0, i%2, i)
		}
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("round %d: AwaitChange: %v", i, err)
			}
		case <-time.After(notifyTimeout):
			t.Fatalf("round %d: waiter not released by a write (lost wakeup)", i)
		}
	}
	if got := nt.Waiters(); got != 0 {
		t.Fatalf("%d waiters left after all were released", got)
	}
}

func notifierNoLostWakeups(t *testing.T, b shmem.Backend) {
	// Several waiters chase a known number of writes, re-arming after each
	// wakeup, while the writer runs as fast as it can: every arm/publish
	// interleaving is exercised. A single lost wakeup leaves a waiter
	// blocked until the context deadline fails the test.
	m := mustNew(t, b, shmem.Spec{Regs: 1})
	nt, ok := m.(shmem.Notifier)
	if !ok {
		t.Skipf("%s does not expose change notification", b.Name())
	}
	const waiters, writes = 4, 500
	target := nt.Version() + writes
	ctx, cancel := context.WithTimeout(context.Background(), notifyTimeout)
	defer cancel()
	errs := make(chan error, waiters)
	var wg sync.WaitGroup
	for w := 0; w < waiters; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				v := nt.Version()
				if v >= target {
					errs <- nil
					return
				}
				if _, err := nt.AwaitChange(ctx, v); err != nil {
					errs <- fmt.Errorf("waiter gave up at version %d of %d: %w", v, target, err)
					return
				}
			}
		}()
	}
	for i := 0; i < writes; i++ {
		m.Write(0, i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func notifierRegisterWake(t *testing.T, b shmem.Backend) {
	// The completion-based wait: a registration on version v fires exactly
	// once when a mutation installs v' > v; a cancelled registration never
	// fires; a registration on an already-passed version fires synchronously;
	// pending registrations are visible through Waiters.
	m := mustNew(t, b, shmem.Spec{Regs: 1, Snaps: []int{1}})
	nt, ok := m.(shmem.Notifier)
	if !ok {
		t.Skipf("%s does not expose change notification", b.Name())
	}

	// Already-passed version: fires before RegisterWake returns.
	m.Write(0, "pre")
	fired := 0
	cancel := nt.RegisterWake(0, func() { fired++ })
	if fired != 1 {
		t.Fatalf("registration on a passed version fired %d times synchronously, want 1", fired)
	}
	cancel() // must be a no-op on an already-fired registration
	if fired != 1 {
		t.Fatalf("cancel after fire changed the count to %d", fired)
	}

	// Armed registration: counted as a waiter, fired exactly once per kind
	// of mutation, and never again by later mutations.
	for round, mutate := range []func(){
		func() { m.Write(0, "wake") },
		func() { m.Update(0, 0, "wake") },
	} {
		var n atomic.Int64
		nt.RegisterWake(nt.Version(), func() { n.Add(1) })
		if got := nt.Waiters(); got != 1 {
			t.Fatalf("round %d: Waiters() = %d with one pending registration, want 1", round, got)
		}
		mutate()
		if got := n.Load(); got != 1 {
			t.Fatalf("round %d: registration fired %d times after the mutation, want 1", round, got)
		}
		mutate()
		if got := n.Load(); got != 1 {
			t.Fatalf("round %d: registration re-fired (%d) on a later mutation", round, got)
		}
		if got := nt.Waiters(); got != 0 {
			t.Fatalf("round %d: Waiters() = %d after the registration fired, want 0", round, got)
		}
	}

	// Cancelled registration: never fires, leaves no waiter behind.
	var n atomic.Int64
	cancel = nt.RegisterWake(nt.Version(), func() { n.Add(1) })
	cancel()
	cancel() // idempotent
	if got := nt.Waiters(); got != 0 {
		t.Fatalf("Waiters() = %d after cancellation, want 0", got)
	}
	m.Write(0, "after-cancel")
	if got := n.Load(); got != 0 {
		t.Fatalf("cancelled registration fired %d times", got)
	}
}

func notifierRegisterWakeNoLostWakeups(t *testing.T, b shmem.Backend) {
	// Registrations race a writer running flat out: every arm/publish
	// interleaving must either fire synchronously (version already past) or
	// be fired by a later publish — and each exactly once. A lost callback
	// leaves the counter short; a double fire overshoots it.
	m := mustNew(t, b, shmem.Spec{Regs: 1})
	nt, ok := m.(shmem.Notifier)
	if !ok {
		t.Skipf("%s does not expose change notification", b.Name())
	}
	const registrars, rounds = 4, 300
	var fired atomic.Int64
	stop := make(chan struct{})
	var writerWG, regWG sync.WaitGroup
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			m.Write(0, i)
		}
	}()
	for r := 0; r < registrars; r++ {
		regWG.Add(1)
		go func(r int) {
			defer regWG.Done()
			for i := 0; i < rounds; i++ {
				done := make(chan struct{})
				var once atomic.Int64
				nt.RegisterWake(nt.Version(), func() {
					if once.Add(1) == 1 {
						fired.Add(1)
						close(done)
					}
				})
				select {
				case <-done:
				case <-time.After(notifyTimeout):
					t.Errorf("registrar %d round %d never fired under a running writer (lost wakeup)", r, i)
					return
				}
				if got := once.Load(); got != 1 {
					t.Errorf("registrar %d round %d fired %d times", r, i, got)
					return
				}
			}
		}(r)
	}
	regWG.Wait()
	close(stop)
	writerWG.Wait()
	if got, want := fired.Load(), int64(registrars*rounds); got != want && !t.Failed() {
		t.Fatalf("%d registrations fired, want %d", got, want)
	}
	if got := nt.Waiters(); got != 0 {
		t.Fatalf("%d waiters left after all registrations fired", got)
	}
}

func notifierCancellation(t *testing.T, b shmem.Backend) {
	// Context cancellation must release a blocked waiter promptly and
	// leave no waiter registered on the object.
	m := mustNew(t, b, shmem.Spec{Regs: 1})
	nt, ok := m.(shmem.Notifier)
	if !ok {
		t.Skipf("%s does not expose change notification", b.Name())
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := nt.AwaitChange(ctx, nt.Version())
		done <- err
	}()
	awaitWaiters(t, nt, 1)
	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Fatalf("cancelled AwaitChange returned %v, want context.Canceled", err)
		}
	case <-time.After(notifyTimeout):
		t.Fatal("cancellation did not release the waiter")
	}
	if got := nt.Waiters(); got != 0 {
		t.Fatalf("%d waiters leaked after cancellation", got)
	}
	// The notifier still works after an abandoned wait.
	ctx2, cancel2 := context.WithTimeout(context.Background(), notifyTimeout)
	defer cancel2()
	v := nt.Version()
	go func() {
		awaitWaiters(t, nt, 1)
		m.Write(0, "wake")
	}()
	if _, err := nt.AwaitChange(ctx2, v); err != nil {
		t.Fatalf("AwaitChange after cancellation: %v", err)
	}
}

func notifierReset(t *testing.T, b shmem.Backend) {
	// Recycling a memory through Reset rewinds the change version with the
	// rest of the state, and the notifier keeps working for the next
	// generation (the arena pool path).
	m := mustNew(t, b, shmem.Spec{Regs: 1, Snaps: []int{1}})
	nt, ok := m.(shmem.Notifier)
	if !ok {
		t.Skipf("%s does not expose change notification", b.Name())
	}
	r, ok := m.(shmem.Resetter)
	if !ok {
		t.Skipf("%s does not support Reset", b.Name())
	}
	m.Write(0, 1)
	m.Update(0, 0, 2)
	if nt.Version() == 0 {
		t.Fatal("version did not advance before Reset")
	}
	r.Reset()
	if got := nt.Version(); got != 0 {
		t.Fatalf("post-reset Version() = %d, want 0", got)
	}
	ctx, cancel := context.WithTimeout(context.Background(), notifyTimeout)
	defer cancel()
	done := make(chan error, 1)
	go func() {
		_, err := nt.AwaitChange(ctx, nt.Version())
		done <- err
	}()
	awaitWaiters(t, nt, 1)
	m.Write(0, "next-generation")
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("post-reset AwaitChange: %v", err)
		}
	case <-time.After(notifyTimeout):
		t.Fatal("post-reset write did not wake the waiter")
	}
}

func resetRestoresInitialState(t *testing.T, b shmem.Backend) {
	// The Resetter capability: after Reset, the memory is indistinguishable
	// from a fresh New(spec) — all registers and components nil, counters
	// zero — and views scanned before the Reset stay stable. This is what
	// lets a pool recycle one object's memory for the next.
	m := mustNew(t, b, shmem.Spec{Regs: 2, Snaps: []int{3}})
	r, ok := m.(shmem.Resetter)
	if !ok {
		t.Skipf("%s does not support Reset", b.Name())
	}
	m.Write(0, "x")
	m.Write(1, 7)
	m.Update(0, 0, 1)
	m.Update(0, 2, "y")
	before := m.Scan(0)
	r.Reset()
	if before[0] != 1 || before[1] != nil || before[2] != "y" {
		t.Fatalf("pre-reset scan view changed retroactively: %v", before)
	}
	for reg := 0; reg < 2; reg++ {
		if got := m.Read(reg); got != nil {
			t.Errorf("post-reset Read(%d) = %v, want nil", reg, got)
		}
	}
	view := m.Scan(0)
	if len(view) != 3 {
		t.Fatalf("post-reset Scan has %d components, want 3", len(view))
	}
	for c, v := range view {
		if v != nil {
			t.Errorf("post-reset Scan[%d] = %v, want nil", c, v)
		}
	}
	// Counter capabilities restart from zero (3 ops since Reset: 2 reads +
	// 1 scan... read them afresh to stay exact).
	if clock, ok := m.(shmem.Stepper); ok {
		base := clock.Steps()
		m.Write(0, 1)
		if got := clock.Steps(); got != base+1 {
			t.Errorf("post-reset Steps() advanced %d, want 1", got-base)
		}
		if base != 3 { // Read(0), Read(1), Scan(0) above
			t.Errorf("Steps() = %d right after Reset+3 ops, want 3 (counter not zeroed)", base)
		}
	}
	if rc, ok := m.(shmem.CASRetrier); ok {
		if got := rc.CASRetries(); got != 0 {
			t.Errorf("post-reset CASRetries() = %d, want 0", got)
		}
	}
	// The memory is fully usable after Reset.
	m.Update(0, 1, "again")
	if v := m.Scan(0); v[1] != "again" {
		t.Fatalf("post-reset Update/Scan = %v", v)
	}
}

func scanAtomicUnderUpdaters(t *testing.T, b shmem.Backend) {
	// One updater keeps the components in lock-step; an atomic scan may
	// lag the writer by at most one update, never show a torn pair.
	m := mustNew(t, b, shmem.Spec{Snaps: []int{2}})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			m.Update(0, 0, i)
			m.Update(0, 1, i)
		}
	}()
	for i := 0; i < 2000; i++ {
		view := m.Scan(0)
		first, fok := view[0].(int)
		second, sok := view[1].(int)
		if (!fok && view[0] != nil) || (!sok && view[1] != nil) {
			t.Fatalf("corrupt scan %v", view)
		}
		if fok && sok && first-second > 1 {
			t.Fatalf("torn scan: %d vs %d", first, second)
		}
	}
	close(stop)
	wg.Wait()
}

func scanComparability(t *testing.T, b shmem.Backend) {
	// The snapshot total-order property: because an atomic snapshot's
	// states are totally ordered, any two scans — by any processes, at
	// any time — must return componentwise comparable views when every
	// component's update sequence is monotonic. This is the check that
	// catches multi-writer races single-updater atomicity tests cannot:
	// two overlapping scans each observing a different in-flight update
	// return crosswise incomparable views (seen by a version-validated
	// collect, for example), which no single-scanner test detects.
	const updaters, scanners, scansEach = 3, 3, 400
	m := mustNew(t, b, shmem.Spec{Snaps: []int{updaters}})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for u := 0; u < updaters; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			for i := 1; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				m.Update(0, u, i)
			}
		}(u)
	}
	views := make([][][]shmem.Value, scanners)
	var swg sync.WaitGroup
	for s := 0; s < scanners; s++ {
		swg.Add(1)
		go func(s int) {
			defer swg.Done()
			for i := 0; i < scansEach; i++ {
				views[s] = append(views[s], m.Scan(0))
			}
		}(s)
	}
	swg.Wait()
	close(stop)
	wg.Wait()

	all := make([][]shmem.Value, 0, scanners*scansEach)
	for _, vs := range views {
		all = append(all, vs...)
	}
	for i := 0; i < len(all); i++ {
		for j := i + 1; j < len(all); j++ {
			if !comparable_(all[i], all[j]) {
				t.Fatalf("incomparable views (snapshot states are not totally ordered):\n  %v\n  %v",
					all[i], all[j])
			}
		}
	}
}

// comparable_ reports whether v <= w or w <= v componentwise, with nil
// below every int.
func comparable_(v, w []shmem.Value) bool {
	le := func(a, b []shmem.Value) bool {
		for i := range a {
			ai, aok := a[i].(int)
			bi, bok := b[i].(int)
			switch {
			case !aok: // nil <= anything
			case !bok:
				return false // int > nil
			case ai > bi:
				return false
			}
		}
		return true
	}
	return le(v, w) || le(w, v)
}

func concurrentHammer(t *testing.T, b shmem.Backend) {
	// All operations from many goroutines at once; meaningful under -race.
	const goroutines, iters = 8, 300
	m := mustNew(t, b, shmem.Spec{Regs: 4, Snaps: []int{4}})
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				m.Write(i%4, fmt.Sprintf("g%d.%d", g, i))
				_ = m.Read((i + 1) % 4)
				m.Update(0, i%4, g)
				if view := m.Scan(0); len(view) != 4 {
					t.Errorf("scan len = %d", len(view))
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if clock, ok := m.(shmem.Stepper); ok {
		if got, want := clock.Steps(), int64(goroutines*iters*4); got != want {
			t.Fatalf("Steps() = %d, want %d", got, want)
		}
	}
}
