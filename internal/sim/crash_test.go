package sim

import (
	"runtime"
	"testing"
	"time"

	"setagreement/internal/shmem"
)

// loopProgram spins forever on shared memory: each iteration is one read
// step, so the process always has a poised op and never terminates on its
// own. Used to pin goroutine-leak behavior of Crash and Abort.
func loopProgram(p *Proc) {
	for {
		p.Read(0)
	}
}

// waitGoroutines polls until the goroutine count drops to at most want.
func waitGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("goroutines = %d, want <= %d (leak)", runtime.NumGoroutine(), want)
}

func TestCrashReleasesProgramGoroutine(t *testing.T) {
	base := runtime.NumGoroutine()
	spec := shmem.Spec{Regs: 1}
	procs := []ProcSpec{
		{ID: 0, Run: loopProgram},
		{ID: 1, Run: loopProgram},
		{ID: 2, Run: loopProgram},
	}
	r, err := NewRunner(spec, procs)
	if err != nil {
		t.Fatalf("NewRunner: %v", err)
	}
	for i := 0; i < 6; i++ {
		if _, err := r.Step(i % 3); err != nil {
			t.Fatalf("step: %v", err)
		}
	}

	// Crash one process: exactly its goroutine must exit, with its poised
	// op discarded rather than executed.
	stepsBefore := r.Steps()
	if err := r.Crash(1); err != nil {
		t.Fatalf("Crash: %v", err)
	}
	if r.Steps() != stepsBefore {
		t.Fatalf("crash executed a step: %d -> %d", stepsBefore, r.Steps())
	}
	if !r.IsDone(1) || !r.Crashed(1) {
		t.Fatalf("after crash: done=%v crashed=%v, want true/true", r.IsDone(1), r.Crashed(1))
	}
	if _, ok := r.Poised(1); ok {
		t.Fatal("crashed process still poised")
	}
	waitGoroutines(t, base+2)

	// Stepping a crashed process fails; the others keep running.
	if _, err := r.Step(1); err != ErrProcDone {
		t.Fatalf("step crashed proc: err = %v, want ErrProcDone", err)
	}
	if _, err := r.Step(0); err != nil {
		t.Fatalf("step survivor: %v", err)
	}

	// Abort frees the rest.
	r.Abort()
	waitGoroutines(t, base)
}

func TestRecoverRestartsProgram(t *testing.T) {
	spec := shmem.Spec{Regs: 2}
	// The program reads a harness-held cell so the restart is observable:
	// first life writes 1 and parks on reads; the recovered life writes 2.
	lives := 0
	prog := func(p *Proc) {
		lives++
		p.Write(0, lives)
		for {
			p.Read(1)
		}
	}
	r, err := NewRunner(spec, []ProcSpec{{ID: 5, Run: prog}})
	if err != nil {
		t.Fatalf("NewRunner: %v", err)
	}
	defer r.Abort()

	if _, err := r.Step(0); err != nil {
		t.Fatalf("step: %v", err)
	}
	if got := r.Memory().Read(0); got != 1 {
		t.Fatalf("reg0 = %v, want 1", got)
	}
	if err := r.Recover(0, prog); err == nil {
		t.Fatal("Recover of a live process succeeded, want error")
	}
	if err := r.Crash(0); err != nil {
		t.Fatalf("Crash: %v", err)
	}
	if err := r.Crash(0); err != ErrProcDone {
		t.Fatalf("double crash: err = %v, want ErrProcDone", err)
	}
	sigCrashed := r.StateSignature()
	if err := r.Recover(0, prog); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if r.IsDone(0) || r.Crashed(0) {
		t.Fatalf("after recover: done=%v crashed=%v, want false/false", r.IsDone(0), r.Crashed(0))
	}
	if sig := r.StateSignature(); sig == sigCrashed {
		t.Fatal("recovery did not change the state signature")
	}
	// The recovered program restarts from the top: same ID, fresh run.
	op, ok := r.Poised(0)
	if !ok || op.Kind != OpWrite || op.Reg != 0 {
		t.Fatalf("recovered poised = %v, %v; want write r0", op, ok)
	}
	if _, err := r.Step(0); err != nil {
		t.Fatalf("step recovered: %v", err)
	}
	if got := r.Memory().Read(0); got != 2 {
		t.Fatalf("reg0 after recovered write = %v, want 2 (second life)", got)
	}
	if lives != 2 {
		t.Fatalf("lives = %d, want 2", lives)
	}
}

// recordingHook routes every op to the underlying memory and records which
// pid touched it, proving Step consults the hook for all four op kinds.
type recordingHook struct {
	mem  *Memory
	seen []string
}

func (h *recordingHook) Read(pid, reg int) shmem.Value {
	h.seen = append(h.seen, "r")
	return h.mem.Read(reg)
}

func (h *recordingHook) Write(pid, reg int, v shmem.Value) {
	h.seen = append(h.seen, "w")
	h.mem.Write(reg, v)
}

func (h *recordingHook) Update(pid, snap, comp int, v shmem.Value) {
	h.seen = append(h.seen, "u")
	h.mem.Update(snap, comp, v)
}

func (h *recordingHook) Scan(pid, snap int) []shmem.Value {
	h.seen = append(h.seen, "s")
	return h.mem.Scan(snap)
}

func (h *recordingHook) Signature() string { return "recording" }

func TestMemHookInterceptsAllOps(t *testing.T) {
	spec := shmem.Spec{Regs: 1, Snaps: []int{2}}
	prog := func(p *Proc) {
		p.Write(0, 9)
		if p.Read(0) != 9 {
			p.Output(1, "bad")
			return
		}
		p.Update(0, 1, "x")
		if p.Scan(0)[1] != "x" {
			p.Output(1, "bad")
			return
		}
		p.Output(1, "ok")
	}
	r, err := NewRunner(spec, []ProcSpec{{ID: 0, Run: prog}})
	if err != nil {
		t.Fatalf("NewRunner: %v", err)
	}
	defer r.Abort()
	h := &recordingHook{mem: r.Memory()}
	r.SetMemHook(h)
	for !r.AllDone() {
		if _, err := r.Step(0); err != nil {
			t.Fatalf("step: %v", err)
		}
	}
	if got := r.Outputs(0)[0].Val; got != "ok" {
		t.Fatalf("program saw %v through hook, want ok", got)
	}
	want := []string{"w", "r", "u", "s"}
	if len(h.seen) != len(want) {
		t.Fatalf("hook saw %v, want %v", h.seen, want)
	}
	for i := range want {
		if h.seen[i] != want[i] {
			t.Fatalf("hook saw %v, want %v", h.seen, want)
		}
	}
	// A hook with a Signature contributes to the state signature.
	if sig := r.StateSignature(); !containsStr(sig, "hook:recording") {
		t.Fatalf("state signature %q missing hook signature", sig)
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
