package sim

import (
	"testing"

	"setagreement/internal/shmem"
)

// TestLastStepTracksGlobalIndices: a process's LastStep matches the global
// position of each of its executed steps.
func TestLastStepTracksGlobalIndices(t *testing.T) {
	var observed []int
	prog := func(p *Proc) {
		if p.LastStep() != -1 {
			t.Error("LastStep before any step should be -1")
		}
		for i := 0; i < 3; i++ {
			p.Write(0, i)
			observed = append(observed, p.LastStep())
		}
	}
	idle := func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Write(1, i)
		}
	}
	r, err := NewRunner(shmem.Spec{Regs: 2}, []ProcSpec{{ID: 0, Run: prog}, {ID: 1, Run: idle}})
	if err != nil {
		t.Fatalf("NewRunner: %v", err)
	}
	defer r.Abort()
	// Interleave: 1, 0, 1, 0, 1, 0 → proc 0's steps are globals 1, 3, 5.
	if err := r.RunSchedule([]int{1, 0, 1, 0, 1, 0}); err != nil {
		t.Fatalf("RunSchedule: %v", err)
	}
	want := []int{1, 3, 5}
	if len(observed) != len(want) {
		t.Fatalf("observed %v", observed)
	}
	for i := range want {
		if observed[i] != want[i] {
			t.Fatalf("observed %v, want %v", observed, want)
		}
	}
}

// TestPoisedAfterOutput: a process that outputs mid-program is poised at its
// next operation afterwards, and the output op itself is inspectable.
func TestPoisedAfterOutput(t *testing.T) {
	prog := func(p *Proc) {
		p.Output(1, 42)
		p.Write(0, 1)
	}
	r, err := NewRunner(shmem.Spec{Regs: 1}, []ProcSpec{{ID: 0, Run: prog}})
	if err != nil {
		t.Fatalf("NewRunner: %v", err)
	}
	defer r.Abort()
	op, ok := r.Poised(0)
	if !ok || op.Kind != OpOutput || op.Reg != 1 || op.Val != 42 {
		t.Fatalf("poised = %v, %v", op, ok)
	}
	if _, err := r.Step(0); err != nil {
		t.Fatalf("step: %v", err)
	}
	op, ok = r.Poised(0)
	if !ok || op.Kind != OpWrite {
		t.Fatalf("poised after output = %v, %v", op, ok)
	}
}

// TestOpStringAndTarget covers the Op helpers.
func TestOpStringAndTarget(t *testing.T) {
	tests := []struct {
		op        Op
		wantWrite bool
		wantLoc   bool
	}{
		{op: Op{Kind: OpRead, Snap: SnapNone, Reg: 3}, wantLoc: true},
		{op: Op{Kind: OpWrite, Snap: SnapNone, Reg: 1, Val: 5}, wantWrite: true, wantLoc: true},
		{op: Op{Kind: OpUpdate, Snap: 0, Reg: 2, Val: "x"}, wantWrite: true, wantLoc: true},
		{op: Op{Kind: OpScan, Snap: 0}, wantLoc: true},
		{op: Op{Kind: OpOutput, Reg: 1, Val: 9}},
	}
	for _, tt := range tests {
		if tt.op.String() == "" {
			t.Fatalf("empty string for %v", tt.op.Kind)
		}
		if tt.op.IsWrite() != tt.wantWrite {
			t.Fatalf("%v IsWrite = %v", tt.op, tt.op.IsWrite())
		}
		if _, ok := tt.op.Target(); ok != tt.wantLoc {
			t.Fatalf("%v Target ok = %v", tt.op, ok)
		}
	}
	loc := Loc{Snap: SnapNone, Reg: 2}
	if loc.String() != "r2" {
		t.Fatalf("loc string = %s", loc.String())
	}
	loc = Loc{Snap: 1, Reg: 0}
	if loc.String() != "s1[0]" {
		t.Fatalf("loc string = %s", loc.String())
	}
}
