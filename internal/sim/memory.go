package sim

import (
	"context"
	"fmt"

	"setagreement/internal/shmem"
)

// Memory is the shared state of a simulated system: a bank of plain MWMR
// registers plus zero or more multi-writer snapshot objects. All registers
// and components are initially nil (the paper's ⊥).
//
// Memory is owned by the Runner; simulated processes access it only through
// scheduler-granted steps, so the cells themselves need no locking. The
// change-notification capability (shmem.Notifier, via the shared Broadcast
// helper) is the exception: it is internally synchronized, so a
// deterministic scheduler can drive wait/wakeup interleavings — granting a
// mutation step provably wakes whoever is parked on the memory's version —
// and the shmemtest Notifier conformance checks run against the simulated
// substrate exactly as against the native backends.
type Memory struct {
	regs  []shmem.Value
	snaps [][]shmem.Value

	notify shmem.Broadcast
}

var (
	_ shmem.Mem      = (*Memory)(nil)
	_ shmem.Notifier = (*Memory)(nil)
	_ shmem.Resetter = (*Memory)(nil)
)

// NewMemory allocates memory for the given spec.
func NewMemory(spec shmem.Spec) (*Memory, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	m := &Memory{
		regs:  make([]shmem.Value, spec.Regs),
		snaps: make([][]shmem.Value, len(spec.Snaps)),
	}
	for i, r := range spec.Snaps {
		m.snaps[i] = make([]shmem.Value, r)
	}
	return m, nil
}

// Spec returns the shape of the memory.
func (m *Memory) Spec() shmem.Spec {
	spec := shmem.Spec{Regs: len(m.regs), Snaps: make([]int, len(m.snaps))}
	for i, s := range m.snaps {
		spec.Snaps[i] = len(s)
	}
	return spec
}

// Read returns register reg.
func (m *Memory) Read(reg int) shmem.Value {
	return m.regs[reg]
}

// Write sets register reg.
func (m *Memory) Write(reg int, v shmem.Value) {
	m.regs[reg] = v
	m.notify.Publish()
}

// Update sets component comp of snapshot snap.
func (m *Memory) Update(snap, comp int, v shmem.Value) {
	m.snaps[snap][comp] = v
	m.notify.Publish()
}

// Scan copies out the components of snapshot snap.
func (m *Memory) Scan(snap int) []shmem.Value {
	src := m.snaps[snap]
	out := make([]shmem.Value, len(src))
	copy(out, src)
	return out
}

// Get returns the value at an arbitrary location.
func (m *Memory) Get(l Loc) shmem.Value {
	if l.Snap == SnapNone {
		return m.regs[l.Reg]
	}
	return m.snaps[l.Snap][l.Reg]
}

// Set stores a value at an arbitrary location. It is a mutation like Write
// and Update, so it publishes a change — an adversary's direct store wakes
// a parked waiter exactly as an algorithm's write would.
func (m *Memory) Set(l Loc, v shmem.Value) {
	if l.Snap == SnapNone {
		m.regs[l.Reg] = v
	} else {
		m.snaps[l.Snap][l.Reg] = v
	}
	m.notify.Publish()
}

// Version implements shmem.Notifier.
func (m *Memory) Version() uint64 { return m.notify.Version() }

// AwaitChange implements shmem.Notifier.
func (m *Memory) AwaitChange(ctx context.Context, v uint64) (int, error) {
	return m.notify.AwaitChange(ctx, v)
}

// RegisterWake implements shmem.Notifier.
func (m *Memory) RegisterWake(v uint64, fn func()) (cancel func()) {
	return m.notify.RegisterWake(v, fn)
}

// Waiters implements shmem.Notifier.
func (m *Memory) Waiters() int64 { return m.notify.Waiters() }

// Reset implements shmem.Resetter: every cell back to nil (the paper's ⊥)
// and the change version rewound, under the usual quiescence obligation.
func (m *Memory) Reset() {
	for i := range m.regs {
		m.regs[i] = nil
	}
	for _, s := range m.snaps {
		for i := range s {
			s[i] = nil
		}
	}
	m.notify.Reset()
}

// Locations returns every writable location in the memory, registers first,
// then snapshot components in object order.
func (m *Memory) Locations() []Loc {
	locs := make([]Loc, 0, m.NumLocations())
	for r := range m.regs {
		locs = append(locs, Loc{Snap: SnapNone, Reg: r})
	}
	for s, comps := range m.snaps {
		for c := range comps {
			locs = append(locs, Loc{Snap: s, Reg: c})
		}
	}
	return locs
}

// NumLocations returns the total count of writable locations.
func (m *Memory) NumLocations() int {
	n := len(m.regs)
	for _, s := range m.snaps {
		n += len(s)
	}
	return n
}

// Clone returns a deep copy of the memory shape and contents. Values
// themselves are immutable by convention (ints, strings, small comparable
// structs), so a shallow copy of each cell suffices.
func (m *Memory) Clone() *Memory {
	c := &Memory{
		regs:  make([]shmem.Value, len(m.regs)),
		snaps: make([][]shmem.Value, len(m.snaps)),
	}
	copy(c.regs, m.regs)
	for i, s := range m.snaps {
		c.snaps[i] = make([]shmem.Value, len(s))
		copy(c.snaps[i], s)
	}
	return c
}

// Equal reports whether two memories have identical shape and contents.
// Values must be comparable; non-comparable values make Equal return false.
func (m *Memory) Equal(o *Memory) bool {
	if len(m.regs) != len(o.regs) || len(m.snaps) != len(o.snaps) {
		return false
	}
	for i := range m.regs {
		if !valueEqual(m.regs[i], o.regs[i]) {
			return false
		}
	}
	for i := range m.snaps {
		if len(m.snaps[i]) != len(o.snaps[i]) {
			return false
		}
		for j := range m.snaps[i] {
			if !valueEqual(m.snaps[i][j], o.snaps[i][j]) {
				return false
			}
		}
	}
	return true
}

func valueEqual(a, b shmem.Value) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	defer func() { recover() }() //nolint:errcheck // non-comparable values compare unequal
	return a == b
}

// String renders the memory contents for debugging.
func (m *Memory) String() string {
	s := "regs["
	for i, v := range m.regs {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%v", v)
	}
	s += "]"
	for i, snap := range m.snaps {
		s += fmt.Sprintf(" s%d[", i)
		for j, v := range snap {
			if j > 0 {
				s += " "
			}
			s += fmt.Sprintf("%v", v)
		}
		s += "]"
	}
	return s
}
