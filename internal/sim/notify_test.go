package sim_test

import (
	"context"
	"testing"
	"time"

	"setagreement/internal/shmem"
	"setagreement/internal/shmem/shmemtest"
	"setagreement/internal/sim"
)

// memoryBackend adapts sim.NewMemory to shmem.Backend so the simulated
// substrate runs the same Notifier conformance checks as the native ones.
// Only the notifier subset applies: the memory's cells are scheduler-owned
// and unlocked, so the full concurrent-Mem suite does not.
var memoryBackend = shmem.BackendFunc{
	BackendName: "sim",
	Factory: func(spec shmem.Spec) (shmem.Mem, error) {
		return sim.NewMemory(spec)
	},
}

func TestSimNotifierConformance(t *testing.T) {
	shmemtest.RunNotifier(t, memoryBackend)
}

// TestRunnerStepDrivesWakeups is what the simulator notifier is for: the
// deterministic scheduler decides, by granting a single step, the exact
// moment a parked waiter wakes. Before the granted mutation the registered
// wake provably has not fired; after it, it provably has — a wait/wakeup
// interleaving pinned step by step rather than left to the Go scheduler.
func TestRunnerStepDrivesWakeups(t *testing.T) {
	writer := func(p *sim.Proc) {
		p.Write(0, "first")
		p.Write(0, "second")
	}
	r, err := sim.NewRunner(shmem.Spec{Regs: 1}, []sim.ProcSpec{{ID: 0, Run: writer}})
	if err != nil {
		t.Fatalf("NewRunner: %v", err)
	}
	defer r.Abort()
	mem := r.Memory()

	fired := make(chan struct{}, 2)
	mem.RegisterWake(mem.Version(), func() { fired <- struct{}{} })
	select {
	case <-fired:
		t.Fatal("wake fired before the scheduler granted any step")
	default:
	}
	if _, err := r.Step(0); err != nil { // grant the first Write
		t.Fatalf("Step: %v", err)
	}
	select {
	case <-fired:
	case <-time.After(10 * time.Second):
		t.Fatal("granted mutation step did not fire the registered wake")
	}
	if got := mem.Version(); got != 1 {
		t.Fatalf("Version() = %d after one granted mutation, want 1", got)
	}

	// A blocking wait is released by the next granted step the same way.
	done := make(chan error, 1)
	go func() {
		_, err := mem.AwaitChange(context.Background(), mem.Version())
		done <- err
	}()
	deadline := time.Now().Add(10 * time.Second)
	for mem.Waiters() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never armed")
		}
	}
	if _, err := r.Step(0); err != nil { // grant the second Write
		t.Fatalf("Step: %v", err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("AwaitChange released with %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("granted step did not release the blocked waiter")
	}
}
