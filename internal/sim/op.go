package sim

import (
	"fmt"

	"setagreement/internal/shmem"
)

// OpKind enumerates the kinds of steps a simulated process can take.
type OpKind uint8

// The step kinds. Read/Write touch plain registers, Update/Scan touch
// snapshot objects, Output records a decision without touching shared memory
// (it corresponds to the "response" step of the paper's model).
const (
	OpRead OpKind = iota + 1
	OpWrite
	OpUpdate
	OpScan
	OpOutput
)

// String returns the conventional lower-case name of the op kind.
func (k OpKind) String() string {
	switch k {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpUpdate:
		return "update"
	case OpScan:
		return "scan"
	case OpOutput:
		return "output"
	default:
		return fmt.Sprintf("opkind(%d)", uint8(k))
	}
}

// Op is a single poised or executed shared-memory operation.
type Op struct {
	Kind OpKind
	// Snap is the snapshot object index for Update/Scan, and SnapNone for
	// plain register operations.
	Snap int
	// Reg is the register index (Read/Write), the component index
	// (Update), or the agreement instance number (Output).
	Reg int
	// Val is the value being written (Write/Update) or decided (Output).
	Val shmem.Value
}

// SnapNone marks an Op that targets a plain register rather than a snapshot.
const SnapNone = -1

// IsWrite reports whether the op mutates shared memory.
func (o Op) IsWrite() bool { return o.Kind == OpWrite || o.Kind == OpUpdate }

// Target returns the memory location the op addresses and whether it
// addresses one at all (Output does not).
func (o Op) Target() (Loc, bool) {
	switch o.Kind {
	case OpRead, OpWrite:
		return Loc{Snap: SnapNone, Reg: o.Reg}, true
	case OpUpdate:
		return Loc{Snap: o.Snap, Reg: o.Reg}, true
	case OpScan:
		// A scan reads the whole object; report component 0 as its
		// nominal target. Callers that care about full coverage use
		// Op.Kind directly.
		return Loc{Snap: o.Snap, Reg: 0}, true
	default:
		return Loc{}, false
	}
}

// String renders the op compactly, e.g. "write r3=v" or "update s0[2]=v".
func (o Op) String() string {
	switch o.Kind {
	case OpRead:
		return fmt.Sprintf("read r%d", o.Reg)
	case OpWrite:
		return fmt.Sprintf("write r%d=%v", o.Reg, o.Val)
	case OpUpdate:
		return fmt.Sprintf("update s%d[%d]=%v", o.Snap, o.Reg, o.Val)
	case OpScan:
		return fmt.Sprintf("scan s%d", o.Snap)
	case OpOutput:
		return fmt.Sprintf("output inst%d=%v", o.Reg, o.Val)
	default:
		return o.Kind.String()
	}
}

// Loc identifies a single writable shared-memory location: a plain register
// (Snap == SnapNone) or one component of a snapshot object.
type Loc struct {
	Snap int
	Reg  int
}

// String renders the location, e.g. "r3" or "s0[2]".
func (l Loc) String() string {
	if l.Snap == SnapNone {
		return fmt.Sprintf("r%d", l.Reg)
	}
	return fmt.Sprintf("s%d[%d]", l.Snap, l.Reg)
}
