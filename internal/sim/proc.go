package sim

import (
	"fmt"

	"setagreement/internal/shmem"
)

// Program is the code of one simulated process. It runs in its own goroutine
// and interacts with shared memory exclusively through the Proc it is given;
// every shared-memory call blocks until the scheduler grants the step.
//
// Programs must be deterministic functions of their inputs and of the values
// returned by their shared-memory operations. This is what makes executions
// replayable from schedules, which the lower-bound adversaries rely on.
type Program func(p *Proc)

// ProcSpec describes one process to simulate: its algorithm-visible
// identifier (Anonymous for anonymous algorithms) and its program.
type ProcSpec struct {
	ID  int
	Run Program
}

// Anonymous is the ID given to processes of anonymous algorithms. The
// simulator never reveals the process index to such programs.
const Anonymous = -1

// Decision records one output produced by a process: the agreement instance
// it belongss to (1-based, as in the paper) and the decided value.
type Decision struct {
	Instance int
	Val      shmem.Value
}

type procEvent struct {
	op    Op
	done  bool
	panic any // non-nil if the program panicked (excluding aborts)
}

type grantMsg struct {
	val    shmem.Value
	vec    []shmem.Value
	step   int // global index of the step that produced this grant
	poison bool
}

// abortSignal is the sentinel panic value used to unwind program goroutines
// when a Runner is aborted.
type abortSignal struct{}

// Proc is a simulated process's handle to shared memory. It implements
// shmem.Mem. All methods must be called from the process's own program
// goroutine.
type Proc struct {
	idx      int // index within the runner
	id       int // algorithm-visible identifier, or Anonymous
	events   chan procEvent
	grant    chan grantMsg
	lastStep int // global index of this process's most recent step
}

var _ shmem.Mem = (*Proc)(nil)

// ID returns the process's algorithm-visible identifier, or Anonymous.
func (p *Proc) ID() int { return p.id }

// Read performs an atomic register read as one step.
func (p *Proc) Read(reg int) shmem.Value {
	g := p.do(Op{Kind: OpRead, Snap: SnapNone, Reg: reg})
	return g.val
}

// Write performs an atomic register write as one step.
func (p *Proc) Write(reg int, v shmem.Value) {
	p.do(Op{Kind: OpWrite, Snap: SnapNone, Reg: reg, Val: v})
}

// Update performs an atomic snapshot update as one step.
func (p *Proc) Update(snap, comp int, v shmem.Value) {
	p.do(Op{Kind: OpUpdate, Snap: snap, Reg: comp, Val: v})
}

// Scan performs an atomic snapshot scan as one step.
func (p *Proc) Scan(snap int) []shmem.Value {
	g := p.do(Op{Kind: OpScan, Snap: snap})
	return g.vec
}

// Output records a decision for the given agreement instance. It is a step
// (so schedulers control when responses happen) but touches no shared memory.
func (p *Proc) Output(instance int, v shmem.Value) {
	p.do(Op{Kind: OpOutput, Reg: instance, Val: v})
}

// LastStep returns the global index of the process's most recent executed
// step, or -1 before its first step. Only the process's own goroutine may
// call it; it is the logical clock used to timestamp operation intervals
// for linearizability checking.
func (p *Proc) LastStep() int { return p.lastStep }

func (p *Proc) do(op Op) grantMsg {
	p.events <- procEvent{op: op}
	g := <-p.grant
	if g.poison {
		panic(abortSignal{})
	}
	p.lastStep = g.step
	return g
}

func (p *Proc) start(run Program) {
	go func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(abortSignal); ok {
					// Aborted by the runner, which is already
					// draining; report a clean exit.
					p.events <- procEvent{done: true}
					return
				}
				p.events <- procEvent{done: true, panic: r}
				return
			}
			p.events <- procEvent{done: true}
		}()
		run(p)
	}()
}

// ProgramError is returned by Runner methods when a program goroutine
// panicked.
type ProgramError struct {
	Proc  int
	Panic any
}

func (e *ProgramError) Error() string {
	return fmt.Sprintf("sim: process %d panicked: %v", e.Proc, e.Panic)
}
