package sim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"setagreement/internal/shmem"
)

// quickProgram builds a deterministic program parameterized by a seed: a
// fixed sequence of reads and writes derived from the seed and from the
// values it reads.
func quickProgram(seed int64, regs, length int) Program {
	return func(p *Proc) {
		x := uint64(seed)*2654435761 + 11
		acc := 0
		for i := 0; i < length; i++ {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			reg := int(x % uint64(regs))
			if x&1 == 0 {
				p.Write(reg, acc+i)
			} else {
				if v, ok := p.Read(reg).(int); ok {
					acc += v % 7
				}
			}
		}
		p.Output(1, acc)
	}
}

// TestQuickReplayDeterminism: any system replayed through the same schedule
// reaches the same signature, memory and outputs.
func TestQuickReplayDeterminism(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(3)
		regs := 1 + rng.Intn(4)
		lengths := make([]int, n)
		for i := range lengths {
			lengths[i] = 8 + rng.Intn(6)
		}
		spec := shmem.Spec{Regs: regs}
		mk := func() []ProcSpec {
			ps := make([]ProcSpec, n)
			for i := range ps {
				ps[i] = ProcSpec{ID: i, Run: quickProgram(seed+int64(i), regs, lengths[i])}
			}
			return ps
		}
		schedule := make([]int, 30+rng.Intn(40))
		for i := range schedule {
			schedule[i] = rng.Intn(n)
		}
		r1, err := Replay(spec, mk(), schedule)
		if err != nil {
			return false
		}
		defer r1.Abort()
		r2, err := Replay(spec, mk(), schedule)
		if err != nil {
			return false
		}
		defer r2.Abort()
		return r1.StateSignature() == r2.StateSignature() &&
			r1.Memory().Equal(r2.Memory()) &&
			r1.Steps() == r2.Steps()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSignatureSeparatesSchedules: runs that diverge in memory or
// poised state have different signatures.
func TestQuickSignatureSeparatesSchedules(t *testing.T) {
	prop := func(seed int64) bool {
		spec := shmem.Spec{Regs: 2}
		mk := func() []ProcSpec {
			return []ProcSpec{
				{ID: 0, Run: quickProgram(seed, 2, 8)},
				{ID: 1, Run: quickProgram(seed+999, 2, 8)},
			}
		}
		r1, err := Replay(spec, mk(), []int{0, 0, 0})
		if err != nil {
			return false
		}
		defer r1.Abort()
		r2, err := Replay(spec, mk(), []int{1, 1, 1})
		if err != nil {
			return false
		}
		defer r2.Abort()
		// The two schedules advance different processes: poised state
		// differs, so signatures must differ.
		return r1.StateSignature() != r2.StateSignature()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickMemoryCloneIndependence: mutating a clone never affects the
// original and Equal agrees with deep comparison.
func TestQuickMemoryCloneIndependence(t *testing.T) {
	prop := func(vals []int, snapVals []int) bool {
		m, err := NewMemory(shmem.Spec{Regs: 4, Snaps: []int{3}})
		if err != nil {
			return false
		}
		for i, v := range vals {
			m.Write(i%4, v)
		}
		for i, v := range snapVals {
			m.Update(0, i%3, v)
		}
		c := m.Clone()
		if !m.Equal(c) || !c.Equal(m) {
			return false
		}
		c.Write(0, "mutated")
		return m.Read(0) != shmem.Value("mutated")
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickWriteAccounting: the distinct-writes count equals the number of
// distinct locations named by write ops in the schedule.
func TestQuickWriteAccounting(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		regs := 2 + rng.Intn(4)
		writes := make([]int, 10+rng.Intn(20))
		want := make(map[int]bool)
		for i := range writes {
			writes[i] = rng.Intn(regs)
			want[writes[i]] = true
		}
		prog := func(p *Proc) {
			for _, reg := range writes {
				p.Write(reg, reg)
			}
		}
		r, err := NewRunner(shmem.Spec{Regs: regs}, []ProcSpec{{ID: 0, Run: prog}})
		if err != nil {
			return false
		}
		defer r.Abort()
		for !r.AllDone() {
			if _, err := r.Step(0); err != nil {
				return false
			}
		}
		return r.DistinctWrites() == len(want)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
