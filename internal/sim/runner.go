package sim

import (
	"errors"
	"fmt"

	"setagreement/internal/shmem"
)

// Runner drives a set of simulated processes over a shared Memory. It is the
// single owner of the memory: processes advance only when Step (or a helper
// built on it) executes their poised operation, so an execution is fully
// determined by the sequence of process indices stepped.
//
// A Runner must be released with Abort (or run to completion) so that its
// program goroutines exit; helpers such as Replay and RunSchedule do this
// automatically when asked.
type Runner struct {
	mem     *Memory
	procs   []*Proc
	pending []*Op
	done    []bool
	crashed []bool
	failed  []error
	outputs [][]Decision
	steps   int
	aborted bool
	hook    MemHook

	written map[Loc]int // location -> write count
	read    map[Loc]int

	// digests[i] hashes the sequence of results process i has received.
	// Deterministic programs are functions of (input, past results), so
	// equal memory + equal digests + equal poised ops identify
	// configurations with identical futures — the soundness basis of
	// state-space exploration (package explore).
	digests []uint64

	recording bool
	log       []StepRecord
}

// StepRecord is one executed step of an execution trace.
type StepRecord struct {
	Index int // 0-based position in the execution
	Proc  int // process index
	Op    Op
	// Result is the value returned to the process: the read value for
	// OpRead, nil otherwise. Scan results are recorded in ScanResult.
	Result shmem.Value
	// ScanResult is the vector returned for OpScan, nil otherwise.
	ScanResult []shmem.Value
}

// ErrProcDone is returned by Step when the target process has already
// finished its program.
var ErrProcDone = errors.New("sim: process has terminated")

// ErrAborted is returned by Step after the runner has been aborted.
var ErrAborted = errors.New("sim: runner aborted")

// MemHook intercepts the shared-memory operations the runner executes on
// behalf of its processes. A hook sees which process performs each operation,
// which lets it model per-process memory views (delayed visibility,
// partitions) that the flat Memory cannot express. Implementations must go
// through the runner's Memory for any effect that should be globally visible,
// so that notification versions stay exact. Output steps never reach the
// hook: a decision is local to the deciding process.
//
// A hook that also implements Signature() string contributes that string to
// StateSignature, keeping state-space exploration sound when the hook holds
// execution-relevant state (e.g. buffered writes).
type MemHook interface {
	Read(pid, reg int) shmem.Value
	Write(pid, reg int, v shmem.Value)
	Update(pid, snap, comp int, v shmem.Value)
	Scan(pid, snap int) []shmem.Value
}

// SetMemHook installs (or, with nil, removes) a memory hook. It must be
// called before the execution is extended past the point the hook is meant
// to observe; installing one mid-run is allowed but the hook only sees
// operations executed after installation.
func (r *Runner) SetMemHook(h MemHook) { r.hook = h }

// NewRunner allocates memory for spec, launches one goroutine per process
// spec and parks each at its first operation (or termination).
func NewRunner(spec shmem.Spec, procs []ProcSpec) (*Runner, error) {
	mem, err := NewMemory(spec)
	if err != nil {
		return nil, err
	}
	if len(procs) == 0 {
		return nil, errors.New("sim: no processes")
	}
	r := &Runner{
		mem:     mem,
		procs:   make([]*Proc, len(procs)),
		pending: make([]*Op, len(procs)),
		done:    make([]bool, len(procs)),
		crashed: make([]bool, len(procs)),
		failed:  make([]error, len(procs)),
		outputs: make([][]Decision, len(procs)),
		written: make(map[Loc]int),
		read:    make(map[Loc]int),
		digests: make([]uint64, len(procs)),
	}
	for i := range r.digests {
		r.digests[i] = fnvOffset
	}
	for i, ps := range procs {
		p := &Proc{
			idx:      i,
			id:       ps.ID,
			events:   make(chan procEvent),
			grant:    make(chan grantMsg),
			lastStep: -1,
		}
		r.procs[i] = p
		p.start(ps.Run)
	}
	for i := range r.procs {
		r.sync(i)
	}
	return r, nil
}

// sync waits until process i is parked at a poised op or has terminated.
func (r *Runner) sync(i int) {
	if r.done[i] || r.pending[i] != nil {
		return
	}
	ev := <-r.procs[i].events
	if ev.done {
		r.done[i] = true
		if ev.panic != nil {
			r.failed[i] = &ProgramError{Proc: i, Panic: ev.panic}
		}
		return
	}
	op := ev.op
	r.pending[i] = &op
}

// Record turns step logging on or off. Logging is off by default; traces of
// long executions are large.
func (r *Runner) Record(on bool) { r.recording = on }

// NumProcs returns the number of simulated processes.
func (r *Runner) NumProcs() int { return len(r.procs) }

// Steps returns the number of steps executed so far.
func (r *Runner) Steps() int { return r.steps }

// Memory returns the shared memory. Callers must not mutate it while the
// execution is still being extended, except through Step.
func (r *Runner) Memory() *Memory { return r.mem }

// IsDone reports whether process i has terminated.
func (r *Runner) IsDone(i int) bool { return r.done[i] }

// AllDone reports whether every process has terminated.
func (r *Runner) AllDone() bool {
	for _, d := range r.done {
		if !d {
			return false
		}
	}
	return true
}

// Err returns the first program panic observed, if any.
func (r *Runner) Err() error {
	for _, e := range r.failed {
		if e != nil {
			return e
		}
	}
	return nil
}

// Poised returns the operation process i will perform on its next step. The
// second result is false if the process has terminated.
func (r *Runner) Poised(i int) (Op, bool) {
	if r.pending[i] == nil {
		return Op{}, false
	}
	return *r.pending[i], true
}

// Outputs returns the decisions recorded by process i so far. The returned
// slice is shared; callers must not mutate it.
func (r *Runner) Outputs(i int) []Decision { return r.outputs[i] }

// Log returns the recorded step log (empty unless Record(true) was set).
func (r *Runner) Log() []StepRecord { return r.log }

// WriteCount returns the number of writes executed per location.
func (r *Runner) WriteCount() map[Loc]int { return r.written }

// DistinctWrites returns how many distinct locations have been written.
// This is the space-use metric audited against the paper's bounds.
func (r *Runner) DistinctWrites() int { return len(r.written) }

// WriteSet returns the set of written locations.
func (r *Runner) WriteSet() map[Loc]bool {
	set := make(map[Loc]bool, len(r.written))
	for l := range r.written {
		set[l] = true
	}
	return set
}

// Step executes the poised operation of process i and parks the process at
// its next operation (or termination). It returns the executed operation.
func (r *Runner) Step(i int) (Op, error) {
	if r.aborted {
		return Op{}, ErrAborted
	}
	if i < 0 || i >= len(r.procs) {
		return Op{}, fmt.Errorf("sim: no process %d", i)
	}
	if r.done[i] {
		return Op{}, ErrProcDone
	}
	op := *r.pending[i]
	rec := StepRecord{Index: r.steps, Proc: i, Op: op}

	var g grantMsg
	switch op.Kind {
	case OpRead:
		if r.hook != nil {
			g.val = r.hook.Read(i, op.Reg)
		} else {
			g.val = r.mem.Read(op.Reg)
		}
		rec.Result = g.val
		r.read[Loc{Snap: SnapNone, Reg: op.Reg}]++
	case OpWrite:
		if r.hook != nil {
			r.hook.Write(i, op.Reg, op.Val)
		} else {
			r.mem.Write(op.Reg, op.Val)
		}
		r.written[Loc{Snap: SnapNone, Reg: op.Reg}]++
	case OpUpdate:
		if r.hook != nil {
			r.hook.Update(i, op.Snap, op.Reg, op.Val)
		} else {
			r.mem.Update(op.Snap, op.Reg, op.Val)
		}
		r.written[Loc{Snap: op.Snap, Reg: op.Reg}]++
	case OpScan:
		if r.hook != nil {
			g.vec = r.hook.Scan(i, op.Snap)
		} else {
			g.vec = r.mem.Scan(op.Snap)
		}
		rec.ScanResult = g.vec
		for c := range g.vec {
			r.read[Loc{Snap: op.Snap, Reg: c}]++
		}
	case OpOutput:
		r.outputs[i] = append(r.outputs[i], Decision{Instance: op.Reg, Val: op.Val})
	default:
		return Op{}, fmt.Errorf("sim: process %d poised invalid op kind %v", i, op.Kind)
	}
	r.steps++
	if r.recording {
		r.log = append(r.log, rec)
	}
	r.digests[i] = mixStep(r.digests[i], op, g)

	r.pending[i] = nil
	g.step = r.steps - 1
	r.procs[i].grant <- g
	r.sync(i)
	return op, nil
}

// Crash halts process i mid-execution: its poised operation is discarded
// without being executed and its program goroutine is poisoned and reaped, so
// a crashed process never leaks a parked goroutine. The process reads as done
// (and Crashed) afterwards; its earlier decisions remain recorded. A crash is
// only possible at an operation boundary — exactly the granularity at which
// the paper's crash-fault model lets a process stop.
func (r *Runner) Crash(i int) error {
	if r.aborted {
		return ErrAborted
	}
	if i < 0 || i >= len(r.procs) {
		return fmt.Errorf("sim: no process %d", i)
	}
	if r.done[i] {
		return ErrProcDone
	}
	p := r.procs[i]
	r.pending[i] = nil
	p.grant <- grantMsg{poison: true}
	for {
		ev := <-p.events
		if ev.done {
			break
		}
		// The program swallowed the poison (e.g. its own recover) and
		// issued another op; poison again.
		p.grant <- grantMsg{poison: true}
	}
	r.done[i] = true
	r.crashed[i] = true
	return nil
}

// Crashed reports whether process i was stopped by Crash and has not been
// restarted by Recover since.
func (r *Runner) Crashed(i int) bool {
	if i < 0 || i >= len(r.procs) {
		return false
	}
	return r.crashed[i]
}

// Recover restarts a crashed process with a fresh run of program run (the
// slot keeps its index and ID). The program typically re-enters a resumable
// step machine held outside the goroutine; the restart-safety contract on
// core.Attempt.Step guarantees re-running an abandoned step from the top is
// harmless. The result digest is reset with a recovery marker so state
// signatures distinguish pre- and post-crash configurations.
func (r *Runner) Recover(i int, run Program) error {
	if r.aborted {
		return ErrAborted
	}
	if i < 0 || i >= len(r.procs) {
		return fmt.Errorf("sim: no process %d", i)
	}
	if !r.crashed[i] {
		return fmt.Errorf("sim: process %d has not crashed", i)
	}
	old := r.procs[i]
	p := &Proc{
		idx:      i,
		id:       old.id,
		events:   make(chan procEvent),
		grant:    make(chan grantMsg),
		lastStep: -1,
	}
	r.procs[i] = p
	r.done[i] = false
	r.crashed[i] = false
	r.failed[i] = nil
	r.digests[i] = mixRecovery(r.digests[i])
	p.start(run)
	r.sync(i)
	return nil
}

// Abort unwinds every still-running program goroutine. The runner cannot be
// stepped afterwards. Abort is idempotent.
func (r *Runner) Abort() {
	if r.aborted {
		return
	}
	r.aborted = true
	for i, p := range r.procs {
		if r.done[i] {
			continue
		}
		// The process is parked waiting for a grant; poison it and
		// wait for the clean-exit event.
		r.pending[i] = nil
		p.grant <- grantMsg{poison: true}
		for {
			ev := <-p.events
			if ev.done {
				r.done[i] = true
				break
			}
			// The program swallowed the poison (e.g. its own
			// recover) and issued another op; poison again.
			p.grant <- grantMsg{poison: true}
		}
	}
}

// Scheduler chooses which process takes the next step of an execution.
type Scheduler interface {
	// Next returns the index of the process to step. ok=false ends the
	// execution. Next must only return processes that are not done.
	Next(r *Runner) (pid int, ok bool)
}

// RunResult summarizes a completed (or truncated) execution.
type RunResult struct {
	Steps     int
	Completed bool // every process terminated
	Schedule  []int
}

// Run drives the runner with the scheduler for at most maxSteps steps or
// until every process terminates or the scheduler stops. It records the
// schedule it followed so the execution can be replayed.
func (r *Runner) Run(s Scheduler, maxSteps int) (RunResult, error) {
	res := RunResult{}
	for r.steps < maxSteps && !r.AllDone() {
		pid, ok := s.Next(r)
		if !ok {
			break
		}
		if _, err := r.Step(pid); err != nil {
			return res, fmt.Errorf("sim: schedule step %d (proc %d): %w", r.steps, pid, err)
		}
		res.Schedule = append(res.Schedule, pid)
		if err := r.Err(); err != nil {
			return res, err
		}
	}
	res.Steps = r.steps
	res.Completed = r.AllDone()
	return res, nil
}

// RunSchedule steps the runner through a fixed schedule, skipping entries for
// processes that have already terminated (this makes prefixes of recorded
// schedules safely replayable even when the suffix changes decisions).
func (r *Runner) RunSchedule(schedule []int) error {
	for _, pid := range schedule {
		if pid < 0 || pid >= len(r.procs) {
			return fmt.Errorf("sim: schedule names process %d of %d", pid, len(r.procs))
		}
		if r.done[pid] {
			continue
		}
		if _, err := r.Step(pid); err != nil {
			return err
		}
		if err := r.Err(); err != nil {
			return err
		}
	}
	return nil
}

// Replay builds a fresh runner and steps it through the schedule. The caller
// owns the returned runner and must Abort it when finished.
func Replay(spec shmem.Spec, procs []ProcSpec, schedule []int) (*Runner, error) {
	r, err := NewRunner(spec, procs)
	if err != nil {
		return nil, err
	}
	if err := r.RunSchedule(schedule); err != nil {
		r.Abort()
		return nil, err
	}
	return r, nil
}
