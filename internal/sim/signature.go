package sim

import (
	"fmt"
	"strings"
)

// FNV-1a constants for the per-process result digests.
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

func mixBytes(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return h
}

// mixStep folds one executed step into a process digest: the op and, for
// reads and scans, the returned values — everything the program's local
// state can depend on.
func mixStep(h uint64, op Op, g grantMsg) uint64 {
	h = mixBytes(h, op.String())
	switch op.Kind {
	case OpRead:
		h = mixBytes(h, fmt.Sprintf("=%v", g.val))
	case OpScan:
		h = mixBytes(h, fmt.Sprintf("=%v", g.vec))
	}
	return h
}

// mixRecovery folds a crash-recovery boundary into a process digest. The
// recovered program restarts from scratch, but its slot's future still
// depends on how many lives it has had (the restarted program replays its
// attempt against current memory), so the marker keeps signatures of pre-
// and post-crash configurations distinct.
func mixRecovery(h uint64) uint64 {
	return mixBytes(h, "|recover")
}

// StateSignature identifies the runner's configuration: the shared memory,
// each process's liveness and poised operation, and each process's result
// digest. Two runners of the same system with equal signatures have
// identical futures under identical schedules (programs are deterministic
// functions of their inputs and past results), which makes the signature a
// sound merge key for state-space exploration. A MemHook that implements
// Signature() string contributes its own state as well.
func (r *Runner) StateSignature() string {
	var b strings.Builder
	b.WriteString(r.mem.String())
	for i := range r.procs {
		if r.done[i] {
			if r.crashed[i] {
				fmt.Fprintf(&b, "|p%d:crashed", i)
			} else {
				fmt.Fprintf(&b, "|p%d:done", i)
			}
			continue
		}
		fmt.Fprintf(&b, "|p%d:%016x:", i, r.digests[i])
		if r.pending[i] != nil {
			b.WriteString(r.pending[i].String())
		}
	}
	if s, ok := r.hook.(interface{ Signature() string }); ok {
		b.WriteString("|hook:")
		b.WriteString(s.Signature())
	}
	return b.String()
}
