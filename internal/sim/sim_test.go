package sim

import (
	"testing"

	"setagreement/internal/shmem"
)

// pingProgram writes its id to register 0, reads register 1 and outputs it.
func pingProgram(out int) Program {
	return func(p *Proc) {
		p.Write(0, p.ID())
		v := p.Read(1)
		_ = v
		p.Output(1, out)
	}
}

func TestRunnerBasicSteps(t *testing.T) {
	spec := shmem.Spec{Regs: 2}
	r, err := NewRunner(spec, []ProcSpec{{ID: 7, Run: pingProgram(42)}})
	if err != nil {
		t.Fatalf("NewRunner: %v", err)
	}
	defer r.Abort()

	op, ok := r.Poised(0)
	if !ok || op.Kind != OpWrite || op.Reg != 0 {
		t.Fatalf("poised = %v, %v; want write r0", op, ok)
	}
	if _, err := r.Step(0); err != nil {
		t.Fatalf("step 1: %v", err)
	}
	if got := r.Memory().Read(0); got != 7 {
		t.Fatalf("reg0 = %v, want 7", got)
	}
	op, ok = r.Poised(0)
	if !ok || op.Kind != OpRead || op.Reg != 1 {
		t.Fatalf("poised = %v, %v; want read r1", op, ok)
	}
	if _, err := r.Step(0); err != nil {
		t.Fatalf("step 2: %v", err)
	}
	if _, err := r.Step(0); err != nil { // output
		t.Fatalf("step 3: %v", err)
	}
	if !r.IsDone(0) {
		t.Fatal("process not done after output")
	}
	outs := r.Outputs(0)
	if len(outs) != 1 || outs[0].Instance != 1 || outs[0].Val != 42 {
		t.Fatalf("outputs = %v, want [{1 42}]", outs)
	}
	if _, err := r.Step(0); err != ErrProcDone {
		t.Fatalf("step after done: err = %v, want ErrProcDone", err)
	}
}

func TestRunnerSnapshotOps(t *testing.T) {
	spec := shmem.Spec{Snaps: []int{3}}
	prog := func(p *Proc) {
		p.Update(0, 1, "x")
		s := p.Scan(0)
		if s[1] != "x" {
			p.Output(1, "bad")
			return
		}
		p.Output(1, "ok")
	}
	r, err := NewRunner(spec, []ProcSpec{{ID: 0, Run: prog}})
	if err != nil {
		t.Fatalf("NewRunner: %v", err)
	}
	defer r.Abort()
	for !r.AllDone() {
		if _, err := r.Step(0); err != nil {
			t.Fatalf("step: %v", err)
		}
	}
	if got := r.Outputs(0)[0].Val; got != "ok" {
		t.Fatalf("scan result check = %v, want ok", got)
	}
	if r.DistinctWrites() != 1 {
		t.Fatalf("distinct writes = %d, want 1", r.DistinctWrites())
	}
	want := Loc{Snap: 0, Reg: 1}
	if !r.WriteSet()[want] {
		t.Fatalf("write set %v missing %v", r.WriteSet(), want)
	}
}

func TestRunnerInterleavingIsScheduleDetermined(t *testing.T) {
	// Two processes race on register 0; the scheduled order decides what
	// each reads.
	prog := func(p *Proc) {
		p.Write(0, p.ID())
		p.Output(1, p.Read(0))
	}
	specs := []ProcSpec{{ID: 1, Run: prog}, {ID: 2, Run: prog}}
	mem := shmem.Spec{Regs: 1}

	run := func(schedule []int) (a, b shmem.Value) {
		r, err := Replay(mem, specs, schedule)
		if err != nil {
			t.Fatalf("replay: %v", err)
		}
		defer r.Abort()
		return r.Outputs(0)[0].Val, r.Outputs(1)[0].Val
	}

	a, b := run([]int{0, 1, 0, 1, 0, 1})
	if a != 2 || b != 2 {
		t.Fatalf("alternating: outputs %v,%v want 2,2", a, b)
	}
	a, b = run([]int{0, 0, 0, 1, 1, 1})
	if a != 1 || b != 2 {
		t.Fatalf("sequential: outputs %v,%v want 1,2", a, b)
	}
}

func TestRunnerDeterministicReplay(t *testing.T) {
	prog := func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Write(i%2, p.ID()*10+i)
			_ = p.Read((i + 1) % 2)
		}
		p.Output(1, p.ID())
	}
	specs := []ProcSpec{{ID: 1, Run: prog}, {ID: 2, Run: prog}, {ID: 3, Run: prog}}
	mem := shmem.Spec{Regs: 2}
	schedule := []int{0, 1, 2, 2, 1, 0, 0, 1, 2, 1, 1, 1, 2, 2, 0, 0, 0, 2, 2, 1, 0}

	r1, err := Replay(mem, specs, schedule)
	if err != nil {
		t.Fatalf("replay 1: %v", err)
	}
	defer r1.Abort()
	r2, err := Replay(mem, specs, schedule)
	if err != nil {
		t.Fatalf("replay 2: %v", err)
	}
	defer r2.Abort()

	if !r1.Memory().Equal(r2.Memory()) {
		t.Fatalf("memories differ:\n%v\n%v", r1.Memory(), r2.Memory())
	}
	if r1.Steps() != r2.Steps() {
		t.Fatalf("steps differ: %d vs %d", r1.Steps(), r2.Steps())
	}
}

func TestRunnerAbortMidExecution(t *testing.T) {
	// A program that loops forever; Abort must unwind it cleanly.
	prog := func(p *Proc) {
		for {
			p.Write(0, 1)
			_ = p.Read(0)
		}
	}
	r, err := NewRunner(shmem.Spec{Regs: 1}, []ProcSpec{{ID: 0, Run: prog}, {ID: 1, Run: prog}})
	if err != nil {
		t.Fatalf("NewRunner: %v", err)
	}
	for i := 0; i < 10; i++ {
		if _, err := r.Step(i % 2); err != nil {
			t.Fatalf("step: %v", err)
		}
	}
	r.Abort()
	if _, err := r.Step(0); err != ErrAborted {
		t.Fatalf("step after abort: err = %v, want ErrAborted", err)
	}
	r.Abort() // idempotent
}

func TestRunnerProgramPanicSurfaced(t *testing.T) {
	prog := func(p *Proc) {
		p.Write(0, 1)
		panic("boom")
	}
	r, err := NewRunner(shmem.Spec{Regs: 1}, []ProcSpec{{ID: 0, Run: prog}})
	if err != nil {
		t.Fatalf("NewRunner: %v", err)
	}
	defer r.Abort()
	if _, err := r.Step(0); err != nil {
		t.Fatalf("step: %v", err)
	}
	if err := r.Err(); err == nil {
		t.Fatal("expected program panic to surface via Err")
	}
}

func TestRunnerRecording(t *testing.T) {
	r, err := NewRunner(shmem.Spec{Regs: 2}, []ProcSpec{{ID: 5, Run: pingProgram(1)}})
	if err != nil {
		t.Fatalf("NewRunner: %v", err)
	}
	defer r.Abort()
	r.Record(true)
	for !r.AllDone() {
		if _, err := r.Step(0); err != nil {
			t.Fatalf("step: %v", err)
		}
	}
	log := r.Log()
	if len(log) != 3 {
		t.Fatalf("log length = %d, want 3", len(log))
	}
	if log[0].Op.Kind != OpWrite || log[1].Op.Kind != OpRead || log[2].Op.Kind != OpOutput {
		t.Fatalf("log ops = %v %v %v", log[0].Op, log[1].Op, log[2].Op)
	}
}

func TestRunScheduleSkipsDoneProcs(t *testing.T) {
	short := func(p *Proc) { p.Write(0, 1) }
	long := func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Write(0, i)
		}
	}
	r, err := NewRunner(shmem.Spec{Regs: 1}, []ProcSpec{{ID: 0, Run: short}, {ID: 1, Run: long}})
	if err != nil {
		t.Fatalf("NewRunner: %v", err)
	}
	defer r.Abort()
	// Schedule names proc 0 more often than it has steps.
	if err := r.RunSchedule([]int{0, 0, 0, 1, 0, 1, 1, 1, 1}); err != nil {
		t.Fatalf("RunSchedule: %v", err)
	}
	if !r.AllDone() {
		t.Fatal("expected both processes done")
	}
}

func TestMemoryCloneAndEqual(t *testing.T) {
	m, err := NewMemory(shmem.Spec{Regs: 2, Snaps: []int{3}})
	if err != nil {
		t.Fatalf("NewMemory: %v", err)
	}
	m.Write(0, 10)
	m.Update(0, 2, "z")
	c := m.Clone()
	if !m.Equal(c) {
		t.Fatal("clone not equal to original")
	}
	c.Write(1, 99)
	if m.Equal(c) {
		t.Fatal("mutating clone affected equality unexpectedly")
	}
	if m.Read(1) != nil {
		t.Fatal("clone mutation leaked into original")
	}
	if got := m.NumLocations(); got != 5 {
		t.Fatalf("NumLocations = %d, want 5", got)
	}
}

func TestMemorySpecRoundTrip(t *testing.T) {
	spec := shmem.Spec{Regs: 4, Snaps: []int{2, 6}}
	m, err := NewMemory(spec)
	if err != nil {
		t.Fatalf("NewMemory: %v", err)
	}
	got := m.Spec()
	if got.Regs != 4 || len(got.Snaps) != 2 || got.Snaps[0] != 2 || got.Snaps[1] != 6 {
		t.Fatalf("Spec round trip = %+v", got)
	}
	if got.RegisterCost(5) != 4+2+5 {
		t.Fatalf("RegisterCost = %d, want 11", got.RegisterCost(5))
	}
}

func TestBadSpecRejected(t *testing.T) {
	if _, err := NewMemory(shmem.Spec{Regs: -1}); err == nil {
		t.Fatal("negative regs accepted")
	}
	if _, err := NewMemory(shmem.Spec{Snaps: []int{0}}); err == nil {
		t.Fatal("zero-component snapshot accepted")
	}
	if _, err := NewRunner(shmem.Spec{Regs: 1}, nil); err == nil {
		t.Fatal("empty process list accepted")
	}
}
