// Package snapshot provides the multi-writer snapshot objects the paper's
// algorithms are written against, in four implementations:
//
//   - Atomic: the snapshot as a primitive of the underlying memory (one
//     atomic step per operation). This is the default substrate; the paper
//     treats snapshots as given, citing register constructions [1,5,7,13].
//   - MW: a wait-free r-component multi-writer snapshot from r MWMR
//     registers using embedded scans (the construction family of Afek et
//     al. [1], multi-writer variant as used by Ellen-Fatourou-Ruppert [5]).
//   - SWEmulation: an r-component multi-writer snapshot from n single-writer
//     components (Vitányi-Awerbuch-style [13] timestamped emulation layered
//     over an inner snapshot), realizing the min(·, n) branch of Theorems
//     7/8.
//   - DoubleCollect: a non-blocking snapshot from r registers usable by
//     anonymous processes, standing in for the Guerraoui-Ruppert anonymous
//     construction [7] (see the type's documentation for the substitution).
//
// All register-based implementations are expressed against shmem.Mem
// Read/Write only, so they run on both the simulator and the native runtime,
// and their step costs are visible to the simulator's accounting.
//
// # Wiring and materializing
//
// Wire is the layout computation: given an algorithm's shmem.Spec and an
// Impl, it returns the physical register spec that realization costs plus a
// per-process wrapper presenting the algorithm's logical memory over the
// physical one. Materialize additionally allocates the physical memory from
// a shmem.Backend. Because the wiring is expressed against shmem.Mem alone,
// every construction runs on every backend; the full construction × backend
// matrix is covered by the conformance and linearizability suites. The
// per-process wrapper keeps all shared state in the backend memory itself —
// wrapper objects hold only process-local state — which is what lets an
// arena recycle a materialized (memory, wrapper) pair for a fresh object
// after a Reset.
package snapshot
