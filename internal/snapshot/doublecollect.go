package snapshot

import "setagreement/internal/shmem"

// dcCell is one register of a DoubleCollect snapshot: the value plus a tag
// for change detection.
type dcCell struct {
	Val shmem.Value
	Wid int // writer identifier; Anonymous (-1) for anonymous processes
	Seq int // writer-local write counter
}

// Anonymous marks cells written by anonymous processes.
const Anonymous = -1

// DoubleCollect is a non-blocking r-component snapshot from r MWMR
// registers: a Scan repeats collects until two consecutive collects are
// identical; an Update writes its register directly. Scans may starve under
// continual updates (non-blocking, not wait-free), which is the progress
// level the paper's anonymous algorithm is designed to tolerate — its H
// register rescues processes starved in the snapshot.
//
// Substitution note (DESIGN.md §4): the paper's anonymous algorithm cites
// the Guerraoui-Ruppert anonymous snapshot [7], whose change detection
// embeds unboundedly growing views. Here cells are tagged with a
// writer-local sequence number instead; identically-programmed anonymous
// processes can in principle write identical (value, seq) cells and mask a
// change. For the tuples the Figure 5 algorithm stores, identical cells are
// interchangeable (the algorithm's decisions depend only on multisets of
// tuples), so the substitution preserves its safety and progress behaviour.
// Identified processes (Wid ≥ 0) get sound change detection outright.
type DoubleCollect struct {
	mem  shmem.Mem
	base int
	r    int
	id   int
	seq  int
	// Collect scratch, lazily sized to r. A handle is owned by one process
	// (see Object), so reuse across Scans is race-free; only the returned
	// view must be freshly allocated (callers keep it).
	bufA, bufB []dcCell
}

var _ Object = (*DoubleCollect)(nil)

// NewDoubleCollect returns a handle for the snapshot in registers
// [base, base+r) of mem. id may be Anonymous.
func NewDoubleCollect(mem shmem.Mem, base, r, id int) *DoubleCollect {
	return &DoubleCollect{mem: mem, base: base, r: r, id: id}
}

// Components implements Object.
func (s *DoubleCollect) Components() int { return s.r }

// RegistersNeeded returns the register cost of the snapshot.
func (s *DoubleCollect) RegistersNeeded() int { return s.r }

// Update implements Object.
func (s *DoubleCollect) Update(comp int, v shmem.Value) {
	s.seq++
	s.mem.Write(s.base+comp, dcCell{Val: v, Wid: s.id, Seq: s.seq})
}

// collectInto fills buf (allocating it on first use) with one collect. The
// assignment is unconditional so a reused buffer never keeps a stale cell
// where the register still holds its zero value.
func (s *DoubleCollect) collectInto(buf []dcCell) []dcCell {
	if buf == nil {
		buf = make([]dcCell, s.r)
	}
	for j := 0; j < s.r; j++ {
		c, _ := s.mem.Read(s.base + j).(dcCell)
		buf[j] = c
	}
	return buf
}

// Scan implements Object.
func (s *DoubleCollect) Scan() []shmem.Value {
	for {
		if out, ok := s.TryScan(16); ok {
			return out
		}
	}
}

// TryScan attempts at most `attempts` collect rounds, reporting failure if
// no two consecutive collects agree — the bounded form through which
// callers interleave other work (shmem.TryScanner).
func (s *DoubleCollect) TryScan(attempts int) ([]shmem.Value, bool) {
	s.bufA = s.collectInto(s.bufA)
	prev := s.bufA
	s.bufB = s.collectInto(s.bufB)
	cur := s.bufB
	for round := 0; round < attempts; round++ {
		same := true
		for j := range cur {
			if cur[j] != prev[j] {
				same = false
				break
			}
		}
		if same {
			out := make([]shmem.Value, s.r)
			for j, c := range cur {
				if c.Seq > 0 {
					out[j] = c.Val
				}
			}
			return out, true
		}
		prev, cur = cur, s.collectInto(prev)
	}
	return nil, false
}
