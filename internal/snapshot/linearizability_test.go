package snapshot_test

import (
	"fmt"
	"sync"
	"testing"

	"setagreement/internal/linearize"
	"setagreement/internal/register"
	"setagreement/internal/shmem"
	"setagreement/internal/sim"
	"setagreement/internal/snapshot"
)

// recordingObj wraps an Object and logs every operation with its exact
// real-time interval, derived from the simulator's step clock: an operation
// is invoked right after the process's previous step and takes effect by
// its last step.
type recordingObj struct {
	inner snapshot.Object
	proc  *sim.Proc
	id    int
	log   *[]linearize.Op
}

func (r *recordingObj) update(comp int, v shmem.Value) {
	inv := r.proc.LastStep() + 1
	r.inner.Update(comp, v)
	*r.log = append(*r.log, linearize.Op{
		Proc: r.id, Inv: inv, Res: r.proc.LastStep(), Comp: comp, Val: v,
	})
}

func (r *recordingObj) scan() {
	inv := r.proc.LastStep() + 1
	view := r.inner.Scan()
	*r.log = append(*r.log, linearize.Op{
		Proc: r.id, Inv: inv, Res: r.proc.LastStep(), IsScan: true, View: view,
	})
}

// linScript is one process's operation sequence: alternating updates (to a
// component derived from its id and round) and scans.
func linScript(id, rounds, comps int) func(*recordingObj) {
	return func(obj *recordingObj) {
		for round := 0; round < rounds; round++ {
			obj.update((id+round)%comps, fmt.Sprintf("p%d.%d", id, round))
			obj.scan()
		}
	}
}

// runLinearizabilityHistory executes n processes over one shared snapshot
// under the schedule and returns the logged history.
func runLinearizabilityHistory(t *testing.T, impl snapshot.Impl, comps, n, rounds int, schedule []int) []linearize.Op {
	t.Helper()
	logical := shmem.Spec{Snaps: []int{comps}}
	physical, wrap, err := snapshot.Wire(logical, impl, n)
	if err != nil {
		t.Fatalf("Wire: %v", err)
	}
	var log []linearize.Op
	specs := make([]sim.ProcSpec, n)
	for i := 0; i < n; i++ {
		id := i
		specs[i] = sim.ProcSpec{ID: id, Run: func(p *sim.Proc) {
			mem := wrap(p, id)
			obj := &recordingObj{inner: snapshot.NewAtomic(mem, 0, comps), proc: p, id: id, log: &log}
			linScript(id, rounds, comps)(obj)
		}}
	}
	r, err := sim.NewRunner(physical, specs)
	if err != nil {
		t.Fatalf("NewRunner: %v", err)
	}
	defer r.Abort()
	if err := r.RunSchedule(schedule); err != nil {
		t.Fatalf("RunSchedule: %v", err)
	}
	// Drain: everyone finishes (sequentially, so ops complete).
	for i := 0; i < n; i++ {
		for !r.IsDone(i) {
			if _, err := r.Step(i); err != nil {
				t.Fatalf("drain: %v", err)
			}
		}
	}
	return log
}

func TestSnapshotLinearizability(t *testing.T) {
	// Every register-based construction must produce linearizable
	// histories under many adversarial interleavings. This is the main
	// correctness evidence for the substrate beneath Theorems 7/8/11.
	impls := []snapshot.Impl{
		snapshot.ImplAtomic,
		snapshot.ImplMW,
		snapshot.ImplSWEmulation,
		snapshot.ImplDoubleCollect,
	}
	configs := []struct {
		comps, n, rounds int
	}{
		{comps: 2, n: 2, rounds: 2},
		{comps: 2, n: 3, rounds: 2},
		{comps: 3, n: 2, rounds: 3},
	}
	for _, impl := range impls {
		impl := impl
		t.Run(impl.String(), func(t *testing.T) {
			for _, cfg := range configs {
				for seed := 0; seed < 30; seed++ {
					schedule := pseudoSchedule(cfg.n, 600, seed*7+1)
					history := runLinearizabilityHistory(t, impl, cfg.comps, cfg.n, cfg.rounds, schedule)
					res := linearize.CheckSnapshot(cfg.comps, history)
					if !res.OK {
						for _, op := range history {
							t.Logf("  %v", op)
						}
						t.Fatalf("%v comps=%d n=%d rounds=%d seed=%d: history not linearizable",
							impl, cfg.comps, cfg.n, cfg.rounds, seed)
					}
				}
			}
		})
	}
}

// TestSnapshotLinearizabilityNativeBackends runs every snapshot
// construction over every native backend with real goroutine concurrency
// (not the simulator) and checks the recorded histories. Operation
// intervals come from the backend's step counter (shmem.Stepper): a logical
// Update/Scan spans several physical register steps, and both backends
// guarantee a physical operation's effect is visible no later than its
// counter increment, so [steps-before+1, steps-after] conservatively
// contains the logical operation's linearization point. Run with -race.
func TestSnapshotLinearizabilityNativeBackends(t *testing.T) {
	const comps, procs, rounds, trials = 2, 3, 2, 10
	impls := []snapshot.Impl{
		snapshot.ImplAtomic,
		snapshot.ImplMW,
		snapshot.ImplSWEmulation,
		snapshot.ImplDoubleCollect,
	}
	for _, backend := range register.Backends() {
		backend := backend
		t.Run(backend.Name(), func(t *testing.T) {
			for _, impl := range impls {
				impl := impl
				t.Run(impl.String(), func(t *testing.T) {
					for trial := 0; trial < trials; trial++ {
						history := runNativeHistory(t, backend, impl, comps, procs, rounds)
						if res := linearize.CheckSnapshot(comps, history); !res.OK {
							for _, op := range history {
								t.Logf("  %v", op)
							}
							t.Fatalf("%s/%v trial %d: native history not linearizable",
								backend.Name(), impl, trial)
						}
					}
				})
			}
		})
	}
}

// runNativeHistory executes procs goroutines over one logical snapshot,
// realized by impl on the backend, and returns the recorded history.
func runNativeHistory(t *testing.T, backend shmem.Backend, impl snapshot.Impl, comps, procs, rounds int) []linearize.Op {
	t.Helper()
	logical := shmem.Spec{Snaps: []int{comps}}
	mem, wrap, err := snapshot.Materialize(logical, impl, procs, backend)
	if err != nil {
		t.Fatalf("Materialize: %v", err)
	}
	clock, ok := mem.(shmem.Stepper)
	if !ok {
		t.Fatalf("materialized memory %T does not expose shmem.Stepper", mem)
	}
	var (
		mu  sync.Mutex
		log []linearize.Op
	)
	record := func(op linearize.Op) {
		mu.Lock()
		log = append(log, op)
		mu.Unlock()
	}
	var wg sync.WaitGroup
	for id := 0; id < procs; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			wmem := wrap(id)
			prev := int(clock.Steps())
			for round := 0; round < rounds; round++ {
				val := fmt.Sprintf("p%d.%d", id, round)
				wmem.Update(0, (id+round)%comps, val)
				now := int(clock.Steps())
				record(linearize.Op{Proc: id, Inv: prev + 1, Res: now,
					Comp: (id + round) % comps, Val: val})
				prev = now
				view := wmem.Scan(0)
				now = int(clock.Steps())
				record(linearize.Op{Proc: id, Inv: prev + 1, Res: now,
					IsScan: true, View: view})
				prev = now
			}
		}(id)
	}
	wg.Wait()
	return log
}

func TestSnapshotLinearizabilityUnderSoloBursts(t *testing.T) {
	// Long solo bursts interleaved at operation boundaries: the simplest
	// adversary for embedded-scan borrowing (one process scans while the
	// other writes repeatedly).
	for _, impl := range []snapshot.Impl{snapshot.ImplMW, snapshot.ImplSWEmulation} {
		t.Run(impl.String(), func(t *testing.T) {
			for burst := 1; burst <= 9; burst += 2 {
				var schedule []int
				for round := 0; round < 40; round++ {
					for i := 0; i < burst; i++ {
						schedule = append(schedule, round%2)
					}
					schedule = append(schedule, (round+1)%2)
				}
				history := runLinearizabilityHistory(t, impl, 2, 2, 3, schedule)
				if res := linearize.CheckSnapshot(2, history); !res.OK {
					t.Fatalf("burst=%d: history not linearizable", burst)
				}
			}
		})
	}
}
