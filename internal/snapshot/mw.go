package snapshot

import "setagreement/internal/shmem"

// mwCell is the content of one register of an MW snapshot: the component
// value, a per-register sequence number, the writer's identifier, and the
// writer's embedded scan. Change detection compares (Seq, Wid) pairs; views
// are never compared.
type mwCell struct {
	Val  shmem.Value
	Seq  int
	Wid  int
	View []shmem.Value
}

// MW is a wait-free r-component multi-writer snapshot implemented from r
// MWMR registers with unbounded sequence numbers and embedded scans.
//
// Update(j, v) performs an (embedded) Scan, reads register j, and writes
// (v, seq+1, id, view). Scan repeatedly collects all registers; if two
// consecutive collects are identical it returns the direct view; otherwise,
// as soon as it has observed two writes by the same process, it borrows that
// process's embedded view. Because each process performs its embedded scan
// after its previous write, a twice-observed writer's second view was
// obtained entirely within the scanner's interval — the classic argument of
// Afek et al., counted per writer rather than per register to remain sound
// with multi-writer registers.
type MW struct {
	mem  shmem.Mem
	base int // registers [base, base+r)
	r    int
	id   int // writer identifier; must be non-negative
	// Scan scratch, lazily sized. A handle is owned by one process (see
	// Object) so reuse across Scans is race-free; returned views are always
	// freshly allocated (callers keep them, and Update embeds them in
	// written cells). movedWid/movedN replace the per-Scan writer→count map:
	// at most r distinct writers appear per round, so a linear scratch scan
	// is cheaper than hashing and allocates nothing after the first Scan.
	bufA, bufB []mwCell
	movedWid   []int
	movedN     []int
}

var _ Object = (*MW)(nil)

// NewMW returns process id's handle to the snapshot living in registers
// [base, base+r) of mem.
func NewMW(mem shmem.Mem, base, r, id int) *MW {
	return &MW{mem: mem, base: base, r: r, id: id}
}

// Components implements Object.
func (s *MW) Components() int { return s.r }

// RegistersNeeded returns the register cost of an r-component MW snapshot.
func (s *MW) RegistersNeeded() int { return s.r }

// collectInto fills buf (allocating it on first use) with one collect. The
// assignment is unconditional so a reused buffer never keeps a stale cell
// where the register still holds its zero value.
func (s *MW) collectInto(buf []mwCell) []mwCell {
	if buf == nil {
		buf = make([]mwCell, s.r)
	}
	for j := 0; j < s.r; j++ {
		c, _ := s.mem.Read(s.base + j).(mwCell)
		buf[j] = c
	}
	return buf
}

// sawMoved records one observed write by wid and reports whether wid has now
// been observed twice.
func (s *MW) sawMoved(wid int) bool {
	for i, w := range s.movedWid {
		if w == wid {
			s.movedN[i]++
			return s.movedN[i] >= 2
		}
	}
	s.movedWid = append(s.movedWid, wid)
	s.movedN = append(s.movedN, 1)
	return false
}

func values(cells []mwCell) []shmem.Value {
	out := make([]shmem.Value, len(cells))
	for j, c := range cells {
		if c.Seq > 0 {
			out[j] = c.Val
		}
	}
	return out
}

// Update implements Object.
func (s *MW) Update(comp int, v shmem.Value) {
	view := s.Scan()
	cur, _ := s.mem.Read(s.base + comp).(mwCell)
	s.mem.Write(s.base+comp, mwCell{Val: v, Seq: cur.Seq + 1, Wid: s.id, View: view})
}

// Scan implements Object.
func (s *MW) Scan() []shmem.Value {
	s.movedWid = s.movedWid[:0] // writer id -> observed writes
	s.movedN = s.movedN[:0]
	s.bufA = s.collectInto(s.bufA)
	prev := s.bufA
	s.bufB = s.collectInto(s.bufB)
	cur := s.bufB
	for {
		same := true
		for j := range cur {
			if cur[j].Seq != prev[j].Seq || cur[j].Wid != prev[j].Wid {
				same = false
				if s.sawMoved(cur[j].Wid) {
					// Borrow the embedded view of the
					// twice-observed writer's latest write.
					out := make([]shmem.Value, s.r)
					copy(out, cur[j].View)
					return out
				}
			}
		}
		if same {
			return values(cur)
		}
		prev, cur = cur, s.collectInto(prev)
	}
}
