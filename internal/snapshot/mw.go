package snapshot

import "setagreement/internal/shmem"

// mwCell is the content of one register of an MW snapshot: the component
// value, a per-register sequence number, the writer's identifier, and the
// writer's embedded scan. Change detection compares (Seq, Wid) pairs; views
// are never compared.
type mwCell struct {
	Val  shmem.Value
	Seq  int
	Wid  int
	View []shmem.Value
}

// MW is a wait-free r-component multi-writer snapshot implemented from r
// MWMR registers with unbounded sequence numbers and embedded scans.
//
// Update(j, v) performs an (embedded) Scan, reads register j, and writes
// (v, seq+1, id, view). Scan repeatedly collects all registers; if two
// consecutive collects are identical it returns the direct view; otherwise,
// as soon as it has observed two writes by the same process, it borrows that
// process's embedded view. Because each process performs its embedded scan
// after its previous write, a twice-observed writer's second view was
// obtained entirely within the scanner's interval — the classic argument of
// Afek et al., counted per writer rather than per register to remain sound
// with multi-writer registers.
type MW struct {
	mem  shmem.Mem
	base int // registers [base, base+r)
	r    int
	id   int // writer identifier; must be non-negative
}

var _ Object = (*MW)(nil)

// NewMW returns process id's handle to the snapshot living in registers
// [base, base+r) of mem.
func NewMW(mem shmem.Mem, base, r, id int) *MW {
	return &MW{mem: mem, base: base, r: r, id: id}
}

// Components implements Object.
func (s *MW) Components() int { return s.r }

// RegistersNeeded returns the register cost of an r-component MW snapshot.
func (s *MW) RegistersNeeded() int { return s.r }

func (s *MW) collect() []mwCell {
	out := make([]mwCell, s.r)
	for j := 0; j < s.r; j++ {
		if c, ok := s.mem.Read(s.base + j).(mwCell); ok {
			out[j] = c
		}
	}
	return out
}

func values(cells []mwCell) []shmem.Value {
	out := make([]shmem.Value, len(cells))
	for j, c := range cells {
		if c.Seq > 0 {
			out[j] = c.Val
		}
	}
	return out
}

// Update implements Object.
func (s *MW) Update(comp int, v shmem.Value) {
	view := s.Scan()
	cur, _ := s.mem.Read(s.base + comp).(mwCell)
	s.mem.Write(s.base+comp, mwCell{Val: v, Seq: cur.Seq + 1, Wid: s.id, View: view})
}

// Scan implements Object.
func (s *MW) Scan() []shmem.Value {
	moved := make(map[int]int) // writer id -> observed writes
	prev := s.collect()
	for {
		cur := s.collect()
		same := true
		for j := range cur {
			if cur[j].Seq != prev[j].Seq || cur[j].Wid != prev[j].Wid {
				same = false
				moved[cur[j].Wid]++
				if moved[cur[j].Wid] >= 2 {
					// Borrow the embedded view of the
					// twice-observed writer's latest write.
					out := make([]shmem.Value, s.r)
					copy(out, cur[j].View)
					return out
				}
			}
		}
		if same {
			return values(cur)
		}
		prev = cur
	}
}
