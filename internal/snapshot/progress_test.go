package snapshot_test

import (
	"testing"

	"setagreement/internal/shmem"
	"setagreement/internal/sim"
	"setagreement/internal/snapshot"
)

// floodSchedule interleaves: writer takes `flood` steps, scanner takes 1.
func floodSchedule(rounds, flood int) []int {
	var s []int
	for i := 0; i < rounds; i++ {
		for j := 0; j < flood; j++ {
			s = append(s, 1)
		}
		s = append(s, 0)
	}
	return s
}

// runFlood runs a single scanner (proc 0) against an endless writer
// (proc 1) over one snapshot and reports whether the scanner finished.
func runFlood(t *testing.T, impl snapshot.Impl, r, flood, rounds int) bool {
	t.Helper()
	logical := shmem.Spec{Snaps: []int{r}}
	physical, wrap, err := snapshot.Wire(logical, impl, 2)
	if err != nil {
		t.Fatalf("Wire: %v", err)
	}
	scanner := sim.ProcSpec{ID: 0, Run: func(p *sim.Proc) {
		obj := snapshot.NewAtomic(wrap(p, 0), 0, r)
		_ = obj.Scan()
		p.Output(1, "done")
	}}
	writer := sim.ProcSpec{ID: 1, Run: func(p *sim.Proc) {
		obj := snapshot.NewAtomic(wrap(p, 1), 0, r)
		for i := 0; ; i++ {
			obj.Update(i%r, i)
		}
	}}
	runner, err := sim.NewRunner(physical, []sim.ProcSpec{scanner, writer})
	if err != nil {
		t.Fatalf("NewRunner: %v", err)
	}
	defer runner.Abort()
	if err := runner.RunSchedule(floodSchedule(rounds, flood)); err != nil {
		t.Fatalf("RunSchedule: %v", err)
	}
	return runner.IsDone(0)
}

// TestScannerProgressUnderFlood demonstrates the progress split between the
// constructions, the distinction Theorem 11's proof leans on (its snapshot
// is only non-blocking, so the algorithm needs the helper register H):
//
//   - the embedded-scan construction (MW) is wait-free: a scan completes in
//     a bounded number of the scanner's own steps no matter how hard a
//     writer floods it (it borrows the writer's embedded view);
//   - plain double-collect is only non-blocking: the same flood starves the
//     scanner indefinitely.
func TestScannerProgressUnderFlood(t *testing.T) {
	const r, flood, rounds = 3, 40, 400
	if !runFlood(t, snapshot.ImplMW, r, flood, rounds) {
		t.Fatal("wait-free scan starved by a flooding writer")
	}
	if runFlood(t, snapshot.ImplDoubleCollect, r, flood, rounds) {
		t.Fatal("double-collect scan unexpectedly finished under continuous flooding")
	}
	// Sanity: without flooding, double-collect scans do finish.
	if !runFlood(t, snapshot.ImplDoubleCollect, r, 0, rounds) {
		t.Fatal("double-collect scan failed without contention")
	}
}
