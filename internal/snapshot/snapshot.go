// Package snapshot provides the multi-writer snapshot objects the paper's
// algorithms are written against, in four implementations:
//
//   - Atomic: the snapshot as a primitive of the underlying memory (one
//     atomic step per operation). This is the default substrate; the paper
//     treats snapshots as given, citing register constructions [1,5,7,13].
//   - MW: a wait-free r-component multi-writer snapshot from r MWMR
//     registers using embedded scans (the construction family of Afek et
//     al. [1], multi-writer variant as used by Ellen-Fatourou-Ruppert [5]).
//   - SWEmulation: an r-component multi-writer snapshot from n single-writer
//     components (Vitányi-Awerbuch-style [13] timestamped emulation layered
//     over an inner snapshot), realizing the min(·, n) branch of Theorems
//     7/8.
//   - DoubleCollect: a non-blocking snapshot from r registers usable by
//     anonymous processes, standing in for the Guerraoui-Ruppert anonymous
//     construction [7] (see the type's documentation for the substitution).
//
// All register-based implementations are expressed against shmem.Mem
// Read/Write only, so they run on both the simulator and the native runtime,
// and their step costs are visible to the simulator's accounting.
package snapshot

import "setagreement/internal/shmem"

// Object is a multi-writer snapshot object handle held by one process.
type Object interface {
	// Update writes v to component comp.
	Update(comp int, v shmem.Value)
	// Scan returns a consistent view of all components. As with
	// shmem.Mem.Scan, the returned slice must be treated as read-only by
	// the caller and is stable; implementations may return a slice shared
	// with other scans.
	Scan() []shmem.Value
	// Components returns the component count.
	Components() int
}

// Atomic delegates to the memory's built-in snapshot object: every Update
// and Scan is a single atomic step.
type Atomic struct {
	mem   shmem.Mem
	snap  int
	comps int
}

var _ Object = (*Atomic)(nil)

// NewAtomic wraps snapshot object snap (with comps components) of mem.
func NewAtomic(mem shmem.Mem, snap, comps int) *Atomic {
	return &Atomic{mem: mem, snap: snap, comps: comps}
}

// Update implements Object.
func (a *Atomic) Update(comp int, v shmem.Value) { a.mem.Update(a.snap, comp, v) }

// Scan implements Object.
func (a *Atomic) Scan() []shmem.Value { return a.mem.Scan(a.snap) }

// Components implements Object.
func (a *Atomic) Components() int { return a.comps }
