package snapshot

import "setagreement/internal/shmem"

// Object is a multi-writer snapshot object handle held by one process.
type Object interface {
	// Update writes v to component comp.
	Update(comp int, v shmem.Value)
	// Scan returns a consistent view of all components. As with
	// shmem.Mem.Scan, the returned slice must be treated as read-only by
	// the caller and is stable; implementations may return a slice shared
	// with other scans.
	Scan() []shmem.Value
	// Components returns the component count.
	Components() int
}

// Atomic delegates to the memory's built-in snapshot object: every Update
// and Scan is a single atomic step.
type Atomic struct {
	mem   shmem.Mem
	snap  int
	comps int
}

var _ Object = (*Atomic)(nil)

// NewAtomic wraps snapshot object snap (with comps components) of mem.
func NewAtomic(mem shmem.Mem, snap, comps int) *Atomic {
	return &Atomic{mem: mem, snap: snap, comps: comps}
}

// Update implements Object.
func (a *Atomic) Update(comp int, v shmem.Value) { a.mem.Update(a.snap, comp, v) }

// Scan implements Object.
func (a *Atomic) Scan() []shmem.Value { return a.mem.Scan(a.snap) }

// Components implements Object.
func (a *Atomic) Components() int { return a.comps }
