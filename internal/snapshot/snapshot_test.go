package snapshot_test

import (
	"fmt"
	"testing"

	"setagreement/internal/core"
	"setagreement/internal/sched"
	"setagreement/internal/shmem"
	"setagreement/internal/sim"
	"setagreement/internal/snapshot"
	"setagreement/internal/spec"
)

// seqMem is a trivial single-threaded shmem.Mem for sequential semantics
// tests.
type seqMem struct {
	regs []shmem.Value
}

func newSeqMem(n int) *seqMem { return &seqMem{regs: make([]shmem.Value, n)} }

func (m *seqMem) Read(reg int) shmem.Value       { return m.regs[reg] }
func (m *seqMem) Write(reg int, v shmem.Value)   { m.regs[reg] = v }
func (m *seqMem) Update(_, _ int, _ shmem.Value) { panic("seqMem has no snapshot primitive") }
func (m *seqMem) Scan(_ int) []shmem.Value       { panic("seqMem has no snapshot primitive") }

// sequentialObjects builds each register-based implementation over a fresh
// sequential memory.
func sequentialObjects(r int) map[string]snapshot.Object {
	return map[string]snapshot.Object{
		"mw":             snapshot.NewMW(newSeqMem(r), 0, r, 0),
		"sw-emulation":   snapshot.NewSWEmulation(snapshot.NewMW(newSeqMem(4), 0, 4, 0), r, 0),
		"double-collect": snapshot.NewDoubleCollect(newSeqMem(r), 0, r, 0),
	}
}

func TestSequentialSemantics(t *testing.T) {
	for name, obj := range sequentialObjects(3) {
		t.Run(name, func(t *testing.T) {
			if got := obj.Components(); got != 3 {
				t.Fatalf("Components = %d, want 3", got)
			}
			s := obj.Scan()
			for j, v := range s {
				if v != nil {
					t.Fatalf("initial scan[%d] = %v, want nil", j, v)
				}
			}
			obj.Update(1, "a")
			obj.Update(2, 7)
			obj.Update(1, "b") // overwrite
			s = obj.Scan()
			if s[0] != nil || s[1] != "b" || s[2] != 7 {
				t.Fatalf("scan = %v, want [nil b 7]", s)
			}
		})
	}
}

func TestSequentialMultiProcess(t *testing.T) {
	// Two handles over the same memory, used alternately (sequentially):
	// later writes win.
	r := 2
	mems := map[string]func() (snapshot.Object, snapshot.Object){
		"mw": func() (snapshot.Object, snapshot.Object) {
			m := newSeqMem(r)
			return snapshot.NewMW(m, 0, r, 0), snapshot.NewMW(m, 0, r, 1)
		},
		"sw-emulation": func() (snapshot.Object, snapshot.Object) {
			m := newSeqMem(3)
			mk := func(id int) snapshot.Object {
				return snapshot.NewSWEmulation(snapshot.NewMW(m, 0, 3, id), r, id)
			}
			return mk(0), mk(1)
		},
		"double-collect": func() (snapshot.Object, snapshot.Object) {
			m := newSeqMem(r)
			return snapshot.NewDoubleCollect(m, 0, r, 0), snapshot.NewDoubleCollect(m, 0, r, 1)
		},
	}
	for name, mk := range mems {
		t.Run(name, func(t *testing.T) {
			a, b := mk()
			a.Update(0, "a0")
			b.Update(0, "b0")
			a.Update(1, "a1")
			sa, sb := a.Scan(), b.Scan()
			for _, s := range [][]shmem.Value{sa, sb} {
				if s[0] != "b0" || s[1] != "a1" {
					t.Fatalf("scan = %v, want [b0 a1]", s)
				}
			}
		})
	}
}

// snapOp is one logged operation for linearizability checking.
type snapOp struct {
	proc  int
	isUpd bool
	comp  int
	val   shmem.Value
	view  []shmem.Value
	start int // step index of first memory access
	end   int // step index of last memory access
}

// runConcurrent drives `procs` processes over one shared snapshot in the
// simulator under the given schedule, each performing its ops list
// (comp, val) updates interleaved with scans, and returns the op log.
func runConcurrent(t *testing.T, impl snapshot.Impl, r, n int, schedule []int, script func(id int, obj snapshot.Object, log func(snapOp))) []snapOp {
	t.Helper()
	logical := shmem.Spec{Snaps: []int{r}}
	physical, wrap, err := snapshot.Wire(logical, impl, n)
	if err != nil {
		t.Fatalf("Wire: %v", err)
	}
	var (
		logged []snapOp
		specs  []sim.ProcSpec
	)
	for i := 0; i < n; i++ {
		id := i
		specs = append(specs, sim.ProcSpec{ID: id, Run: func(p *sim.Proc) {
			mem := wrap(p, id)
			obj := snapshot.NewAtomic(mem, 0, r)
			script(id, obj, func(op snapOp) {
				op.proc = id
				logged = append(logged, op)
			})
		}})
	}
	runner, err := sim.NewRunner(physical, specs)
	if err != nil {
		t.Fatalf("NewRunner: %v", err)
	}
	defer runner.Abort()
	if err := runner.RunSchedule(schedule); err != nil {
		t.Fatalf("RunSchedule: %v", err)
	}
	// Drain sequentially so every op completes.
	if _, err := runner.Run(&sched.Sequential{}, 1_000_000); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return logged
}

func TestWireImplementationsRunFig3(t *testing.T) {
	// The one-shot algorithm must stay correct over every register-based
	// snapshot implementation, under contended schedules.
	params := core.Params{N: 4, M: 1, K: 2}
	alg, err := core.NewOneShot(params)
	if err != nil {
		t.Fatalf("NewOneShot: %v", err)
	}
	inputs := [][]int{{100}, {101}, {102}, {103}}
	impls := []snapshot.Impl{snapshot.ImplAtomic, snapshot.ImplMW, snapshot.ImplSWEmulation, snapshot.ImplDoubleCollect}
	for _, impl := range impls {
		t.Run(impl.String(), func(t *testing.T) {
			physical, wrap, err := snapshot.Wire(alg.Spec(), impl, params.N)
			if err != nil {
				t.Fatalf("Wire: %v", err)
			}
			for seed := int64(0); seed < 5; seed++ {
				memSpec, procs := core.WrappedSystem(alg, inputs, physical, wrap)
				r, err := sim.NewRunner(memSpec, procs)
				if err != nil {
					t.Fatalf("NewRunner: %v", err)
				}
				// Contended random prefix, then sequential finish.
				if _, err := r.Run(sched.NewRandom(seed), 3000); err != nil {
					r.Abort()
					t.Fatalf("random: %v", err)
				}
				if _, err := r.Run(&sched.Sequential{}, 2_000_000); err != nil {
					r.Abort()
					t.Fatalf("sequential: %v", err)
				}
				if !r.AllDone() {
					r.Abort()
					t.Fatalf("seed %d: processes did not finish", seed)
				}
				outs := spec.Collect(r)
				if err := spec.CheckAll(inputs, outs, params.K); err != nil {
					r.Abort()
					t.Fatalf("seed %d: %v", seed, err)
				}
				r.Abort()
			}
		})
	}
}

func TestWirePhysicalRegisterCosts(t *testing.T) {
	logical := shmem.Spec{Regs: 1, Snaps: []int{5}}
	tests := []struct {
		impl snapshot.Impl
		n    int
		want int // physical plain registers
	}{
		{impl: snapshot.ImplMW, n: 3, want: 1 + 5},
		{impl: snapshot.ImplSWEmulation, n: 3, want: 1 + 3},
		{impl: snapshot.ImplDoubleCollect, n: 3, want: 1 + 5},
	}
	for _, tt := range tests {
		t.Run(tt.impl.String(), func(t *testing.T) {
			physical, _, err := snapshot.Wire(logical, tt.impl, tt.n)
			if err != nil {
				t.Fatalf("Wire: %v", err)
			}
			if physical.Regs != tt.want || len(physical.Snaps) != 0 {
				t.Fatalf("physical = %+v, want %d plain regs", physical, tt.want)
			}
		})
	}
	// Atomic passes through.
	physical, _, err := snapshot.Wire(logical, snapshot.ImplAtomic, 3)
	if err != nil {
		t.Fatalf("Wire atomic: %v", err)
	}
	if physical.Regs != 1 || len(physical.Snaps) != 1 {
		t.Fatalf("atomic physical = %+v", physical)
	}
}

func TestScanSeesOwnUpdateUnderInterleaving(t *testing.T) {
	// Regularity smoke test: a process's scan after its own update must
	// reflect that update, under arbitrary interleavings of two writers.
	for _, impl := range []snapshot.Impl{snapshot.ImplMW, snapshot.ImplSWEmulation, snapshot.ImplDoubleCollect} {
		t.Run(impl.String(), func(t *testing.T) {
			for seed := 0; seed < 8; seed++ {
				schedule := pseudoSchedule(2, 400, seed)
				logs := runConcurrent(t, impl, 2, 2, schedule, func(id int, obj snapshot.Object, log func(snapOp)) {
					for round := 0; round < 3; round++ {
						v := fmt.Sprintf("p%d-%d", id, round)
						obj.Update(id%2, v)
						s := obj.Scan()
						log(snapOp{isUpd: false, comp: id % 2, val: v, view: s})
					}
				})
				for _, op := range logs {
					// The scanned component must hold a value
					// at least as recent as the scanner's own
					// preceding update; with one writer per
					// component it must be exactly it.
					if op.view[op.comp] != op.val {
						t.Fatalf("seed %d: scan lost own update: view=%v want %v at comp %d",
							seed, op.view, op.val, op.comp)
					}
				}
			}
		})
	}
}

// pseudoSchedule builds a deterministic pseudo-random schedule over n procs.
func pseudoSchedule(n, length, seed int) []int {
	s := make([]int, length)
	x := uint64(seed)*2654435761 + 1
	for i := range s {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		s[i] = int(x % uint64(n))
	}
	return s
}
