package snapshot

import "setagreement/internal/shmem"

// ventry is one virtual component's latest write by one process: the value
// and a Lamport timestamp. TS == 0 means "never written by this process".
type ventry struct {
	Val shmem.Value
	TS  int
}

// SWEmulation implements an r-component multi-writer snapshot from n
// single-writer components: process p's own component of an inner
// n-component snapshot holds p's latest write to every virtual component,
// each tagged with a Lamport timestamp (Vitányi-Awerbuch style [13]).
//
// An Update(j, v) scans the inner snapshot, picks ts = 1 + max timestamp
// seen for j, and republishes the process's vector with (v, ts) at j. A
// Scan reads the inner snapshot once and resolves each virtual component to
// the entry with the lexicographically largest (ts, process) pair. Because
// the inner snapshot is atomic, operations linearize at their inner
// operation; writes to a component are totally ordered by (ts, process).
//
// This realizes the min(·, n) branch of Theorems 7/8: layered over an MW
// inner snapshot used single-writer (each process updates only its own
// component), the whole object costs n registers regardless of r.
type SWEmulation struct {
	inner Object
	r     int
	n     int
	id    int // 0 ≤ id < n
}

var _ Object = (*SWEmulation)(nil)

// NewSWEmulation layers an r-component snapshot for process id over inner,
// which must have n components and be used single-writer (process p updates
// only component p).
func NewSWEmulation(inner Object, r, id int) *SWEmulation {
	return &SWEmulation{inner: inner, r: r, n: inner.Components(), id: id}
}

// Components implements Object.
func (s *SWEmulation) Components() int { return s.r }

// Update implements Object.
func (s *SWEmulation) Update(comp int, v shmem.Value) {
	views := s.inner.Scan()
	maxTS := 0
	for _, pv := range views {
		vec, ok := pv.([]ventry)
		if !ok {
			continue
		}
		if vec[comp].TS > maxTS {
			maxTS = vec[comp].TS
		}
	}
	var mine []ventry
	if vec, ok := views[s.id].([]ventry); ok {
		mine = vec
	}
	next := make([]ventry, s.r)
	copy(next, mine)
	next[comp] = ventry{Val: v, TS: maxTS + 1}
	s.inner.Update(s.id, next)
}

// Scan implements Object.
func (s *SWEmulation) Scan() []shmem.Value {
	views := s.inner.Scan()
	out := make([]shmem.Value, s.r)
	for j := 0; j < s.r; j++ {
		bestTS, bestP := 0, -1
		for p, pv := range views {
			vec, ok := pv.([]ventry)
			if !ok {
				continue
			}
			if e := vec[j]; e.TS > bestTS || (e.TS == bestTS && e.TS > 0 && p > bestP) {
				bestTS, bestP = e.TS, p
				out[j] = e.Val
			}
		}
	}
	return out
}
