package snapshot

import (
	"context"
	"fmt"

	"setagreement/internal/shmem"
)

// Impl selects how an algorithm's snapshot objects are realized.
type Impl int

const (
	// ImplAtomic uses the memory's snapshot primitive (1 step per op).
	ImplAtomic Impl = iota
	// ImplMW implements each r-component snapshot from r registers
	// (wait-free, embedded scans). Requires identified processes.
	ImplMW
	// ImplSWEmulation implements each r-component snapshot from n
	// registers used single-writer (wait-free). Requires identified
	// processes; this is the min(·, n) branch of Theorems 7/8.
	ImplSWEmulation
	// ImplDoubleCollect implements each r-component snapshot from r
	// registers, non-blocking; works for anonymous processes.
	ImplDoubleCollect
)

// String names the implementation.
func (i Impl) String() string {
	switch i {
	case ImplAtomic:
		return "atomic"
	case ImplMW:
		return "mw-waitfree"
	case ImplSWEmulation:
		return "sw-emulation"
	case ImplDoubleCollect:
		return "double-collect"
	default:
		return fmt.Sprintf("impl(%d)", int(i))
	}
}

// Wire computes the physical memory an algorithm's Spec costs under the
// chosen implementation and returns a per-process wrapper that presents the
// algorithm's logical memory over it. n is the process count (used by
// ImplSWEmulation).
//
// The wrapper maps logical plain registers [0, spec.Regs) to the same
// physical indices; each logical snapshot object is realized in a reserved
// physical register range after them (or stays a physical snapshot under
// ImplAtomic).
func Wire(spec shmem.Spec, impl Impl, n int) (shmem.Spec, func(inner shmem.Mem, id int) shmem.Mem, error) {
	if err := spec.Validate(); err != nil {
		return shmem.Spec{}, nil, err
	}
	if impl == ImplAtomic {
		return spec, func(inner shmem.Mem, _ int) shmem.Mem { return inner }, nil
	}
	if n < 1 {
		return shmem.Spec{}, nil, fmt.Errorf("snapshot: Wire needs n ≥ 1, got %d", n)
	}

	physical := shmem.Spec{Regs: spec.Regs}
	bases := make([]int, len(spec.Snaps))
	for s, r := range spec.Snaps {
		bases[s] = physical.Regs
		switch impl {
		case ImplMW, ImplDoubleCollect:
			physical.Regs += r
		case ImplSWEmulation:
			physical.Regs += n
		default:
			return shmem.Spec{}, nil, fmt.Errorf("snapshot: unknown implementation %v", impl)
		}
	}

	snaps := append([]int(nil), spec.Snaps...)
	wrap := func(inner shmem.Mem, id int) shmem.Mem {
		objs := make([]Object, len(snaps))
		for s, r := range snaps {
			switch impl {
			case ImplMW:
				objs[s] = NewMW(inner, bases[s], r, id)
			case ImplSWEmulation:
				objs[s] = NewSWEmulation(NewMW(inner, bases[s], n, id), r, id)
			case ImplDoubleCollect:
				objs[s] = NewDoubleCollect(inner, bases[s], r, id)
			}
		}
		wm := &wiredMem{inner: inner, objs: objs}
		// Every register-implemented snapshot construction exposes the
		// notifier of its underlying registers: a logical Update is some
		// number of physical writes, each of which publishes, so waiting on
		// the physical version wakes on any logical mutation. The wrapper
		// only advertises the capability when the substrate has it.
		if nt, ok := inner.(shmem.Notifier); ok {
			return &notifiedWiredMem{wiredMem: wm, nt: nt}
		}
		return wm
	}
	return physical, wrap, nil
}

// Materialize wires the spec under the chosen implementation and allocates
// the physical memory from the backend, returning the shared memory and a
// per-process wrapper. The wiring itself is backend-agnostic — every
// construction here is expressed against shmem.Mem Read/Write only — so any
// backend (mutex, lock-free, future sharded ones) can carry any Impl.
func Materialize(spec shmem.Spec, impl Impl, n int, backend shmem.Backend) (shmem.Mem, func(id int) shmem.Mem, error) {
	physical, wrap, err := Wire(spec, impl, n)
	if err != nil {
		return nil, nil, err
	}
	mem, err := backend.New(physical)
	if err != nil {
		return nil, nil, err
	}
	return mem, func(id int) shmem.Mem { return wrap(mem, id) }, nil
}

// wiredMem presents an algorithm's logical memory over register-implemented
// snapshots. It exposes bounded scans (shmem.TryScanner): wait-free
// substrates always succeed; the non-blocking double-collect may fail and
// let the caller interleave other work.
type wiredMem struct {
	inner shmem.Mem
	objs  []Object
}

var (
	_ shmem.Mem        = (*wiredMem)(nil)
	_ shmem.TryScanner = (*wiredMem)(nil)
)

func (w *wiredMem) Read(reg int) shmem.Value       { return w.inner.Read(reg) }
func (w *wiredMem) Write(reg int, v shmem.Value)   { w.inner.Write(reg, v) }
func (w *wiredMem) Update(s, c int, v shmem.Value) { w.objs[s].Update(c, v) }
func (w *wiredMem) Scan(s int) []shmem.Value       { return w.objs[s].Scan() }

func (w *wiredMem) TryScan(s, attempts int) ([]shmem.Value, bool) {
	if dc, ok := w.objs[s].(*DoubleCollect); ok {
		return dc.TryScan(attempts)
	}
	return w.objs[s].Scan(), true
}

// notifiedWiredMem is a wiredMem over a substrate with the Notifier
// capability; it forwards the substrate's notifier so the capability
// survives the wrapping. A separate type (rather than optional methods on
// wiredMem) keeps the `mem.(shmem.Notifier)` assertion honest when the
// substrate lacks the capability.
type notifiedWiredMem struct {
	*wiredMem
	nt shmem.Notifier
}

var _ shmem.Notifier = (*notifiedWiredMem)(nil)

func (m *notifiedWiredMem) Version() uint64 { return m.nt.Version() }
func (m *notifiedWiredMem) AwaitChange(ctx context.Context, v uint64) (int, error) {
	return m.nt.AwaitChange(ctx, v)
}
func (m *notifiedWiredMem) RegisterWake(v uint64, fn func()) (cancel func()) {
	return m.nt.RegisterWake(v, fn)
}
func (m *notifiedWiredMem) Waiters() int64 { return m.nt.Waiters() }
