package spec

import (
	"fmt"

	"setagreement/internal/core"
	"setagreement/internal/sim"
)

// Invariant is a predicate over configurations, checked after every step by
// RunWithInvariants. The paper's correctness proofs rest on configuration
// invariants (Lemmas 3, 12 and the validity invariants of Appendices A/B);
// these checkers make them mechanical.
type Invariant interface {
	// Name identifies the invariant in failure messages.
	Name() string
	// Check inspects the configuration after a step.
	Check(r *sim.Runner) error
}

// Lemma3 checks the one-shot algorithm's key invariant (Lemma 3 of the
// paper): in every reachable configuration, all pairs in the snapshot with
// the same identifier carry the same value.
type Lemma3 struct {
	// Snap is the snapshot object index (0 for core.OneShot).
	Snap int
}

var _ Invariant = Lemma3{}

// Name implements Invariant.
func (Lemma3) Name() string { return "Lemma 3 (per-id value uniqueness)" }

// Check implements Invariant.
func (l Lemma3) Check(r *sim.Runner) error {
	vals := make(map[int]int)
	for c, v := range r.Memory().Scan(l.Snap) {
		p, ok := v.(core.Pair)
		if !ok {
			continue
		}
		if prev, seen := vals[p.ID]; seen && prev != p.Val {
			return fmt.Errorf("component %d: id %d holds both %d and %d", c, p.ID, prev, p.Val)
		}
		vals[p.ID] = p.Val
	}
	return nil
}

// Lemma12 checks the repeated algorithm's generalization (Lemma 12): all
// t-tuples with the same identifier and instance are identical — same value
// and same history.
type Lemma12 struct {
	Snap int
}

var _ Invariant = Lemma12{}

// Name implements Invariant.
func (Lemma12) Name() string { return "Lemma 12 (per-id per-instance tuple uniqueness)" }

// Check implements Invariant.
func (l Lemma12) Check(r *sim.Runner) error {
	type key struct{ id, t int }
	tuples := make(map[key]core.RTuple)
	for c, v := range r.Memory().Scan(l.Snap) {
		tu, ok := v.(core.RTuple)
		if !ok {
			continue
		}
		k := key{tu.ID, tu.T}
		if prev, seen := tuples[k]; seen && prev != tu {
			return fmt.Errorf("component %d: id %d instance %d holds both %v and %v",
				c, tu.ID, tu.T, prev, tu)
		}
		tuples[k] = tu
	}
	return nil
}

// StoredValidity checks the validity invariant shared by all three
// algorithms (stated for Figure 5 in Appendix B and implicit for the
// others): every value stored in the snapshot under instance t is an input
// of some process's t-th Propose, and every history entry for instance t
// likewise.
type StoredValidity struct {
	Snap int
	// Inputs[i][t-1] is process i's input to instance t.
	Inputs [][]int
}

var _ Invariant = StoredValidity{}

// Name implements Invariant.
func (StoredValidity) Name() string { return "stored-value validity" }

// Check implements Invariant.
func (s StoredValidity) Check(r *sim.Runner) error {
	allowed := func(t, v int) bool {
		for _, seq := range s.Inputs {
			if t-1 < len(seq) && seq[t-1] == v {
				return true
			}
		}
		return false
	}
	for c, raw := range r.Memory().Scan(s.Snap) {
		var (
			t, v int
			his  core.History
			ok   bool
		)
		switch tu := raw.(type) {
		case nil:
			continue
		case core.Pair:
			t, v, ok = 1, tu.Val, true
		case core.RTuple:
			t, v, his, ok = tu.T, tu.Val, tu.His, true
		case core.ATuple:
			t, v, his, ok = tu.T, tu.Val, tu.His, true
		}
		if !ok {
			continue
		}
		if !allowed(t, v) {
			return fmt.Errorf("component %d stores %d, not an input of instance %d", c, v, t)
		}
		for i, hv := range his.Values() {
			if !allowed(i+1, hv) {
				return fmt.Errorf("component %d history entry %d stores %d, not an input of instance %d",
					c, i, hv, i+1)
			}
		}
	}
	return nil
}

// RunWithInvariants drives the runner with the scheduler, checking every
// invariant after every step. It stops at the first violation, returning it
// wrapped with the offending step index.
func RunWithInvariants(r *sim.Runner, s sim.Scheduler, maxSteps int, invs ...Invariant) error {
	for r.Steps() < maxSteps && !r.AllDone() {
		pid, ok := s.Next(r)
		if !ok {
			return nil
		}
		if _, err := r.Step(pid); err != nil {
			return err
		}
		if err := r.Err(); err != nil {
			return err
		}
		for _, inv := range invs {
			if err := inv.Check(r); err != nil {
				return fmt.Errorf("spec: %s violated at step %d: %w", inv.Name(), r.Steps()-1, err)
			}
		}
	}
	return nil
}
