package spec_test

import (
	"strings"
	"testing"

	"setagreement/internal/core"
	"setagreement/internal/sched"
	"setagreement/internal/shmem"
	"setagreement/internal/sim"
	"setagreement/internal/spec"
)

func inputsFor(n, instances int) [][]int {
	in := make([][]int, n)
	for i := range in {
		in[i] = make([]int, instances)
		for t := range in[i] {
			in[i][t] = 1000*(t+1) + i
		}
	}
	return in
}

func TestLemma3HoldsAlongExecutions(t *testing.T) {
	p := core.Params{N: 5, M: 2, K: 3}
	inputs := inputsFor(p.N, 1)
	for seed := int64(0); seed < 6; seed++ {
		alg, err := core.NewOneShot(p)
		if err != nil {
			t.Fatalf("NewOneShot: %v", err)
		}
		memSpec, procs := core.System(alg, inputs)
		r, err := sim.NewRunner(memSpec, procs)
		if err != nil {
			t.Fatalf("NewRunner: %v", err)
		}
		err = spec.RunWithInvariants(r, sched.NewRandom(seed), 30_000,
			spec.Lemma3{}, spec.StoredValidity{Inputs: inputs})
		r.Abort()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestLemma12HoldsAlongExecutions(t *testing.T) {
	p := core.Params{N: 4, M: 1, K: 2}
	inputs := inputsFor(p.N, 3)
	for seed := int64(0); seed < 6; seed++ {
		alg, err := core.NewRepeated(p)
		if err != nil {
			t.Fatalf("NewRepeated: %v", err)
		}
		memSpec, procs := core.System(alg, inputs)
		r, err := sim.NewRunner(memSpec, procs)
		if err != nil {
			t.Fatalf("NewRunner: %v", err)
		}
		err = spec.RunWithInvariants(r, sched.NewRandom(seed), 60_000,
			spec.Lemma12{}, spec.StoredValidity{Inputs: inputs})
		r.Abort()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestAnonymousStoredValidityHolds(t *testing.T) {
	p := core.Params{N: 4, M: 2, K: 2}
	inputs := inputsFor(p.N, 2)
	for seed := int64(0); seed < 4; seed++ {
		alg, err := core.NewAnonRepeated(p)
		if err != nil {
			t.Fatalf("NewAnonRepeated: %v", err)
		}
		memSpec, procs := core.System(alg, inputs)
		r, err := sim.NewRunner(memSpec, procs)
		if err != nil {
			t.Fatalf("NewRunner: %v", err)
		}
		err = spec.RunWithInvariants(r, sched.NewRandom(seed), 60_000,
			spec.StoredValidity{Inputs: inputs})
		r.Abort()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// violatingProgram plants a Lemma 3 violation directly.
func violatingProgram(p *sim.Proc) {
	p.Update(0, 0, core.Pair{Val: 1, ID: 7})
	p.Update(0, 1, core.Pair{Val: 2, ID: 7}) // same id, different value
}

func TestInvariantCheckersDetectViolations(t *testing.T) {
	r, err := sim.NewRunner(shmem.Spec{Snaps: []int{2}},
		[]sim.ProcSpec{{ID: 0, Run: violatingProgram}})
	if err != nil {
		t.Fatalf("NewRunner: %v", err)
	}
	defer r.Abort()
	err = spec.RunWithInvariants(r, &sched.Sequential{}, 100, spec.Lemma3{})
	if err == nil {
		t.Fatal("planted Lemma 3 violation not detected")
	}
	if !strings.Contains(err.Error(), "Lemma 3") {
		t.Fatalf("error text %q", err)
	}
}

func TestStoredValidityDetectsForeignValue(t *testing.T) {
	bad := func(p *sim.Proc) {
		p.Update(0, 0, core.RTuple{Val: 999999, ID: 0, T: 1, His: ""})
	}
	r, err := sim.NewRunner(shmem.Spec{Snaps: []int{2}},
		[]sim.ProcSpec{{ID: 0, Run: bad}})
	if err != nil {
		t.Fatalf("NewRunner: %v", err)
	}
	defer r.Abort()
	err = spec.RunWithInvariants(r, &sched.Sequential{}, 100,
		spec.StoredValidity{Inputs: [][]int{{1}, {2}}})
	if err == nil {
		t.Fatal("foreign stored value not detected")
	}
}

func TestStoredValidityDetectsCorruptHistory(t *testing.T) {
	bad := func(p *sim.Proc) {
		p.Update(0, 0, core.RTuple{Val: 1, ID: 0, T: 2, His: core.HistoryOf(777)})
	}
	r, err := sim.NewRunner(shmem.Spec{Snaps: []int{2}},
		[]sim.ProcSpec{{ID: 0, Run: bad}})
	if err != nil {
		t.Fatalf("NewRunner: %v", err)
	}
	defer r.Abort()
	err = spec.RunWithInvariants(r, &sched.Sequential{}, 100,
		spec.StoredValidity{Inputs: [][]int{{1, 1}, {2, 2}}})
	if err == nil {
		t.Fatal("corrupt history entry not detected")
	}
}

func TestLemma12DetectsConflictingTuples(t *testing.T) {
	bad := func(p *sim.Proc) {
		p.Update(0, 0, core.RTuple{Val: 1, ID: 3, T: 2, His: "x"})
		p.Update(0, 1, core.RTuple{Val: 1, ID: 3, T: 2, His: "y"}) // history differs
	}
	r, err := sim.NewRunner(shmem.Spec{Snaps: []int{2}},
		[]sim.ProcSpec{{ID: 0, Run: bad}})
	if err != nil {
		t.Fatalf("NewRunner: %v", err)
	}
	defer r.Abort()
	err = spec.RunWithInvariants(r, &sched.Sequential{}, 100, spec.Lemma12{})
	if err == nil {
		t.Fatal("conflicting tuples not detected")
	}
}
