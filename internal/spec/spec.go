// Package spec checks the three correctness properties of m-obstruction-free
// k-set agreement over simulated executions:
//
//   - Validity: every instance's outputs are among that instance's inputs,
//   - k-Agreement: at most k distinct outputs per instance,
//   - m-Obstruction-Freedom: in executions where eventually at most m
//     processes move, every mover completes its operations (checked with a
//     step budget).
//
// It also audits space usage against the paper's register-count formulas.
package spec

import (
	"fmt"
	"sort"

	"setagreement/internal/sim"
)

// Outputs is the decisions of every process: Outputs[i] lists process i's
// decisions in the order they were produced.
type Outputs [][]sim.Decision

// Collect gathers the outputs of every process of a runner.
func Collect(r *sim.Runner) Outputs {
	outs := make(Outputs, r.NumProcs())
	for i := range outs {
		outs[i] = r.Outputs(i)
	}
	return outs
}

// ByInstance groups decided values per instance number.
func (o Outputs) ByInstance() map[int][]int {
	byInst := make(map[int][]int)
	for _, decisions := range o {
		for _, d := range decisions {
			v, ok := d.Val.(int)
			if !ok {
				v = -1 << 62 // flagged by validity checking
			}
			byInst[d.Instance] = append(byInst[d.Instance], v)
		}
	}
	return byInst
}

// DistinctPerInstance returns the number of distinct decided values per
// instance.
func (o Outputs) DistinctPerInstance() map[int]int {
	out := make(map[int]int)
	for inst, vals := range o.ByInstance() {
		seen := make(map[int]bool, len(vals))
		for _, v := range vals {
			seen[v] = true
		}
		out[inst] = len(seen)
	}
	return out
}

// ViolationError describes a safety violation found by a checker.
type ViolationError struct {
	Property string // "validity", "k-agreement", "well-formedness"
	Instance int
	Detail   string
}

func (e *ViolationError) Error() string {
	return fmt.Sprintf("spec: %s violated in instance %d: %s", e.Property, e.Instance, e.Detail)
}

// CheckValidity verifies Out_i(α) ⊆ In_i(α) for every instance i:
// inputs[p][t-1] is process p's input to instance t (processes with shorter
// input slices never accessed that instance).
func CheckValidity(inputs [][]int, outs Outputs) error {
	inSet := make(map[int]map[int]bool) // instance -> allowed values
	for _, seq := range inputs {
		for t0, v := range seq {
			inst := t0 + 1
			if inSet[inst] == nil {
				inSet[inst] = make(map[int]bool)
			}
			inSet[inst][v] = true
		}
	}
	for p, decisions := range outs {
		for _, d := range decisions {
			v, ok := d.Val.(int)
			if !ok {
				return &ViolationError{
					Property: "validity",
					Instance: d.Instance,
					Detail:   fmt.Sprintf("process %d output non-int value %v", p, d.Val),
				}
			}
			if !inSet[d.Instance][v] {
				return &ViolationError{
					Property: "validity",
					Instance: d.Instance,
					Detail:   fmt.Sprintf("process %d output %d, not an input of instance %d", p, v, d.Instance),
				}
			}
		}
	}
	return nil
}

// CheckKAgreement verifies |Out_i(α)| ≤ k for every instance i.
func CheckKAgreement(outs Outputs, k int) error {
	for inst, distinct := range outs.DistinctPerInstance() {
		if distinct > k {
			vals := outs.ByInstance()[inst]
			sort.Ints(vals)
			return &ViolationError{
				Property: "k-agreement",
				Instance: inst,
				Detail:   fmt.Sprintf("%d distinct outputs > k=%d: %v", distinct, k, vals),
			}
		}
	}
	return nil
}

// CheckWellFormed verifies each process decided each instance at most once
// and in increasing instance order.
func CheckWellFormed(outs Outputs) error {
	for p, decisions := range outs {
		last := 0
		for _, d := range decisions {
			if d.Instance != last+1 {
				return &ViolationError{
					Property: "well-formedness",
					Instance: d.Instance,
					Detail:   fmt.Sprintf("process %d decided instance %d after instance %d", p, d.Instance, last),
				}
			}
			last = d.Instance
		}
	}
	return nil
}

// CheckAll runs well-formedness, validity and k-agreement.
func CheckAll(inputs [][]int, outs Outputs, k int) error {
	if err := CheckWellFormed(outs); err != nil {
		return err
	}
	if err := CheckValidity(inputs, outs); err != nil {
		return err
	}
	return CheckKAgreement(outs, k)
}

// SpaceAudit compares an algorithm's space use against its claimed register
// count. The audit has two parts:
//
//   - the memory the algorithm allocated, priced in registers (each
//     r-component snapshot costs min(r, n) registers once implemented from
//     registers, per Theorems 7, 8 and 11), must not exceed the claim, and
//   - when every component maps to its own register (component count ≤ n),
//     the distinct locations actually written must not exceed the claim
//     either.
type SpaceAudit struct {
	// LocationsWritten is the number of distinct registers/components the
	// execution actually wrote.
	LocationsWritten int
	// LocationsAllocated is the total writable memory the algorithm
	// declared.
	LocationsAllocated int
	// RegisterCost is the allocated memory priced in registers for an
	// n-process system.
	RegisterCost int
	// ClaimedRegisters is the algorithm's claimed register cost (the
	// paper's formula).
	ClaimedRegisters int
}

// Audit builds a SpaceAudit from a runner for an n-process system.
func Audit(r *sim.Runner, n, claimedRegisters int) SpaceAudit {
	return SpaceAudit{
		LocationsWritten:   r.DistinctWrites(),
		LocationsAllocated: r.Memory().NumLocations(),
		RegisterCost:       r.Memory().Spec().RegisterCost(n),
		ClaimedRegisters:   claimedRegisters,
	}
}

// Check verifies the algorithm stayed within its claim.
func (a SpaceAudit) Check() error {
	if a.RegisterCost > a.ClaimedRegisters {
		return fmt.Errorf("spec: allocated memory costs %d registers, exceeding claimed %d",
			a.RegisterCost, a.ClaimedRegisters)
	}
	if a.LocationsAllocated <= a.ClaimedRegisters && a.LocationsWritten > a.ClaimedRegisters {
		return fmt.Errorf("spec: execution wrote %d distinct locations, exceeding claimed %d registers",
			a.LocationsWritten, a.ClaimedRegisters)
	}
	return nil
}
