package spec

import (
	"errors"
	"strings"
	"testing"

	"setagreement/internal/shmem"
	"setagreement/internal/sim"
)

func TestCheckValidity(t *testing.T) {
	inputs := [][]int{{10, 20}, {11, 21}}
	tests := []struct {
		name    string
		outs    Outputs
		wantErr bool
	}{
		{
			name: "own values",
			outs: Outputs{{{Instance: 1, Val: 10}, {Instance: 2, Val: 20}}, {{Instance: 1, Val: 10}}},
		},
		{
			name: "peer values",
			outs: Outputs{{{Instance: 1, Val: 11}}, {{Instance: 1, Val: 10}}},
		},
		{
			name:    "invented value",
			outs:    Outputs{{{Instance: 1, Val: 99}}},
			wantErr: true,
		},
		{
			name:    "cross-instance leak",
			outs:    Outputs{{{Instance: 1, Val: 20}}}, // 20 is an instance-2 input
			wantErr: true,
		},
		{
			name:    "non-int output",
			outs:    Outputs{{{Instance: 1, Val: "x"}}},
			wantErr: true,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := CheckValidity(inputs, tt.outs)
			if (err != nil) != tt.wantErr {
				t.Fatalf("CheckValidity err = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestCheckKAgreement(t *testing.T) {
	outs := Outputs{
		{{Instance: 1, Val: 1}, {Instance: 2, Val: 5}},
		{{Instance: 1, Val: 2}},
		{{Instance: 1, Val: 1}},
	}
	if err := CheckKAgreement(outs, 2); err != nil {
		t.Fatalf("k=2 should pass: %v", err)
	}
	err := CheckKAgreement(outs, 1)
	if err == nil {
		t.Fatal("k=1 should fail with 2 distinct outputs")
	}
	var v *ViolationError
	if !errors.As(err, &v) {
		t.Fatalf("error type = %T, want *ViolationError", err)
	}
	if v.Property != "k-agreement" || v.Instance != 1 {
		t.Fatalf("violation = %+v", v)
	}
	if !strings.Contains(v.Error(), "k-agreement") {
		t.Fatalf("error text %q", v.Error())
	}
}

func TestCheckWellFormed(t *testing.T) {
	good := Outputs{{{Instance: 1, Val: 1}, {Instance: 2, Val: 2}}}
	if err := CheckWellFormed(good); err != nil {
		t.Fatalf("good outputs rejected: %v", err)
	}
	skipped := Outputs{{{Instance: 1, Val: 1}, {Instance: 3, Val: 2}}}
	if err := CheckWellFormed(skipped); err == nil {
		t.Fatal("skipped instance accepted")
	}
	dup := Outputs{{{Instance: 1, Val: 1}, {Instance: 1, Val: 2}}}
	if err := CheckWellFormed(dup); err == nil {
		t.Fatal("duplicate instance accepted")
	}
}

func TestDistinctPerInstance(t *testing.T) {
	outs := Outputs{
		{{Instance: 1, Val: 1}},
		{{Instance: 1, Val: 1}},
		{{Instance: 1, Val: 3}, {Instance: 2, Val: 7}},
	}
	d := outs.DistinctPerInstance()
	if d[1] != 2 || d[2] != 1 {
		t.Fatalf("DistinctPerInstance = %v", d)
	}
}

func TestAuditCheck(t *testing.T) {
	tests := []struct {
		name    string
		audit   SpaceAudit
		wantErr bool
	}{
		{
			name:  "within claim",
			audit: SpaceAudit{LocationsWritten: 4, LocationsAllocated: 5, RegisterCost: 5, ClaimedRegisters: 5},
		},
		{
			name:    "allocation exceeds claim",
			audit:   SpaceAudit{LocationsWritten: 6, LocationsAllocated: 6, RegisterCost: 6, ClaimedRegisters: 5},
			wantErr: true,
		},
		{
			name: "multiplexed regime: location audit skipped",
			// Components exceed claimed registers but the register
			// cost (capped at n per snapshot) is within the claim:
			// the snapshot is implemented from n single-writer
			// registers, so the per-location audit does not apply.
			audit: SpaceAudit{LocationsWritten: 8, LocationsAllocated: 9, RegisterCost: 6, ClaimedRegisters: 6},
		},
		{
			name:    "writes exceed claim in one-to-one regime",
			audit:   SpaceAudit{LocationsWritten: 5, LocationsAllocated: 4, RegisterCost: 4, ClaimedRegisters: 4},
			wantErr: true,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.audit.Check()
			if (err != nil) != tt.wantErr {
				t.Fatalf("Check err = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestCollect(t *testing.T) {
	prog := func(out int) sim.Program {
		return func(p *sim.Proc) {
			p.Write(0, out)
			p.Output(1, out)
		}
	}
	r, err := sim.NewRunner(
		shmem.Spec{Regs: 1},
		[]sim.ProcSpec{{ID: 0, Run: prog(5)}, {ID: 1, Run: prog(6)}},
	)
	if err != nil {
		t.Fatalf("NewRunner: %v", err)
	}
	defer r.Abort()
	for !r.AllDone() {
		for i := 0; i < 2; i++ {
			if !r.IsDone(i) {
				if _, err := r.Step(i); err != nil {
					t.Fatalf("step: %v", err)
				}
			}
		}
	}
	outs := Collect(r)
	if len(outs) != 2 || outs[0][0].Val != 5 || outs[1][0].Val != 6 {
		t.Fatalf("Collect = %v", outs)
	}
	audit := Audit(r, 2, 1)
	if audit.LocationsWritten != 1 || audit.LocationsAllocated != 1 {
		t.Fatalf("Audit = %+v", audit)
	}
}
