// Package trace converts recorded simulator executions into portable and
// human-readable forms: JSONL event streams (for archiving and diffing
// witness executions, e.g. the lower-bound adversaries' spliced runs) and
// ASCII space-time diagrams (for reading interleavings directly).
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"setagreement/internal/report"
	"setagreement/internal/sim"
)

// Event is one executed step in portable form. Values are stringified with
// %v: traces are for humans and diffing, not for reconstructing state.
type Event struct {
	Index  int      `json:"index"`
	Proc   int      `json:"proc"`
	Kind   string   `json:"kind"`
	Snap   int      `json:"snap,omitempty"`
	Reg    int      `json:"reg"`
	Val    string   `json:"val,omitempty"`
	Result string   `json:"result,omitempty"`
	Scan   []string `json:"scan,omitempty"`
}

// FromLog converts a recorded step log.
func FromLog(log []sim.StepRecord) []Event {
	events := make([]Event, len(log))
	for i, rec := range log {
		ev := Event{
			Index: rec.Index,
			Proc:  rec.Proc,
			Kind:  rec.Op.Kind.String(),
			Reg:   rec.Op.Reg,
		}
		if rec.Op.Kind == sim.OpUpdate || rec.Op.Kind == sim.OpScan {
			ev.Snap = rec.Op.Snap
		}
		if rec.Op.Val != nil {
			ev.Val = fmt.Sprintf("%v", rec.Op.Val)
		}
		if rec.Result != nil {
			ev.Result = fmt.Sprintf("%v", rec.Result)
		}
		if rec.ScanResult != nil {
			ev.Scan = make([]string, len(rec.ScanResult))
			for j, v := range rec.ScanResult {
				if v == nil {
					ev.Scan[j] = "⊥"
				} else {
					ev.Scan[j] = fmt.Sprintf("%v", v)
				}
			}
		}
		events[i] = ev
	}
	return events
}

// WriteJSONL writes one JSON object per line.
func WriteJSONL(w io.Writer, events []Event) error {
	enc := json.NewEncoder(w)
	for _, ev := range events {
		if err := enc.Encode(ev); err != nil {
			return fmt.Errorf("trace: encode event %d: %w", ev.Index, err)
		}
	}
	return nil
}

// ReadJSONL reads a JSONL event stream back.
func ReadJSONL(r io.Reader) ([]Event, error) {
	var events []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var ev Event
		if err := json.Unmarshal([]byte(text), &ev); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: read: %w", err)
	}
	return events, nil
}

// label renders an event compactly for the timeline.
func (ev Event) label() string {
	switch ev.Kind {
	case "read":
		return fmt.Sprintf("r%d?%s", ev.Reg, ev.Result)
	case "write":
		return fmt.Sprintf("r%d=%s", ev.Reg, ev.Val)
	case "update":
		return fmt.Sprintf("s%d[%d]=%s", ev.Snap, ev.Reg, ev.Val)
	case "scan":
		return fmt.Sprintf("scan s%d", ev.Snap)
	case "output":
		return fmt.Sprintf("out#%d=%s", ev.Reg, ev.Val)
	default:
		return ev.Kind
	}
}

// Timeline renders an ASCII space-time diagram: one column per process,
// one row per step, the acting process's column holding the operation.
func Timeline(events []Event, procs int) string {
	if procs <= 0 {
		for _, ev := range events {
			if ev.Proc >= procs {
				procs = ev.Proc + 1
			}
		}
	}
	width := 6
	labels := make([]string, len(events))
	for i, ev := range events {
		labels[i] = ev.label()
		if len(labels[i])+2 > width {
			width = len(labels[i]) + 2
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%6s ", "step")
	for p := 0; p < procs; p++ {
		fmt.Fprintf(&b, "%-*s", width, fmt.Sprintf("p%d", p))
	}
	b.WriteByte('\n')
	for i, ev := range events {
		fmt.Fprintf(&b, "%6d ", ev.Index)
		for p := 0; p < procs; p++ {
			cell := "·"
			if p == ev.Proc {
				cell = labels[i]
			}
			fmt.Fprintf(&b, "%-*s", width, cell)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Summary tabulates per-process operation counts.
func Summary(events []Event, procs int) *report.Table {
	if procs <= 0 {
		for _, ev := range events {
			if ev.Proc >= procs {
				procs = ev.Proc + 1
			}
		}
	}
	type counts struct{ read, write, update, scan, output int }
	per := make([]counts, procs)
	for _, ev := range events {
		if ev.Proc < 0 || ev.Proc >= procs {
			continue
		}
		c := &per[ev.Proc]
		switch ev.Kind {
		case "read":
			c.read++
		case "write":
			c.write++
		case "update":
			c.update++
		case "scan":
			c.scan++
		case "output":
			c.output++
		}
	}
	t := report.New("Per-process operation counts",
		"proc", "reads", "writes", "updates", "scans", "outputs", "total")
	for p, c := range per {
		t.Add(p, c.read, c.write, c.update, c.scan, c.output,
			c.read+c.write+c.update+c.scan+c.output)
	}
	return t
}
