package trace

import (
	"bytes"
	"strings"
	"testing"

	"setagreement/internal/shmem"
	"setagreement/internal/sim"
)

func sampleLog(t *testing.T) []sim.StepRecord {
	t.Helper()
	prog := func(p *sim.Proc) {
		p.Write(0, 5)
		_ = p.Read(0)
		p.Update(0, 1, "x")
		_ = p.Scan(0)
		p.Output(1, 5)
	}
	r, err := sim.NewRunner(shmem.Spec{Regs: 1, Snaps: []int{2}},
		[]sim.ProcSpec{{ID: 0, Run: prog}})
	if err != nil {
		t.Fatalf("NewRunner: %v", err)
	}
	defer r.Abort()
	r.Record(true)
	for !r.AllDone() {
		if _, err := r.Step(0); err != nil {
			t.Fatalf("step: %v", err)
		}
	}
	return r.Log()
}

func TestFromLog(t *testing.T) {
	events := FromLog(sampleLog(t))
	if len(events) != 5 {
		t.Fatalf("events = %d, want 5", len(events))
	}
	kinds := []string{"write", "read", "update", "scan", "output"}
	for i, want := range kinds {
		if events[i].Kind != want {
			t.Fatalf("event %d kind = %s, want %s", i, events[i].Kind, want)
		}
	}
	if events[1].Result != "5" {
		t.Fatalf("read result = %q", events[1].Result)
	}
	if len(events[3].Scan) != 2 || events[3].Scan[1] != "x" || events[3].Scan[0] != "⊥" {
		t.Fatalf("scan = %v", events[3].Scan)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	events := FromLog(sampleLog(t))
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, events); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != len(events) {
		t.Fatalf("lines = %d, want %d", lines, len(events))
	}
	back, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	if len(back) != len(events) {
		t.Fatalf("round trip lost events: %d vs %d", len(back), len(events))
	}
	for i := range events {
		if back[i].Kind != events[i].Kind || back[i].Reg != events[i].Reg ||
			back[i].Val != events[i].Val || back[i].Result != events[i].Result {
			t.Fatalf("event %d differs: %+v vs %+v", i, back[i], events[i])
		}
	}
}

func TestReadJSONLRejectsGarbage(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("not json\n")); err == nil {
		t.Fatal("garbage accepted")
	}
	events, err := ReadJSONL(strings.NewReader("\n\n"))
	if err != nil || len(events) != 0 {
		t.Fatalf("blank stream: %v, %v", events, err)
	}
}

func TestTimeline(t *testing.T) {
	events := []Event{
		{Index: 0, Proc: 0, Kind: "write", Reg: 1, Val: "7"},
		{Index: 1, Proc: 1, Kind: "read", Reg: 1, Result: "7"},
	}
	tl := Timeline(events, 2)
	lines := strings.Split(strings.TrimRight(tl, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("timeline lines = %d:\n%s", len(lines), tl)
	}
	if !strings.Contains(lines[1], "r1=7") || strings.Contains(lines[1], "r1?7") {
		t.Fatalf("row 0 wrong:\n%s", tl)
	}
	if !strings.Contains(lines[2], "r1?7") {
		t.Fatalf("row 1 wrong:\n%s", tl)
	}
	// Proc inference when procs ≤ 0.
	if got := Timeline(events, 0); !strings.Contains(got, "p1") {
		t.Fatalf("proc inference failed:\n%s", got)
	}
}

func TestSummary(t *testing.T) {
	events := FromLog(sampleLog(t))
	tab := Summary(events, 1)
	if len(tab.Rows) != 1 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	row := tab.Rows[0]
	// reads, writes, updates, scans, outputs, total
	want := []string{"0", "1", "1", "1", "1", "1", "5"}
	for i, w := range want {
		if row[i] != w {
			t.Fatalf("summary col %d = %s, want %s (row %v)", i, row[i], w, row)
		}
	}
}
