// Package workload generates parameter sweeps and input assignments for the
// experiment harness and the test suites: which (n, m, k) points to run,
// and what each process proposes in each instance.
package workload

import (
	"fmt"
	"math/rand"

	"setagreement/internal/core"
)

// Sweep enumerates parameter points.
type Sweep struct {
	// MinN and MaxN bound the process count.
	MinN, MaxN int
	// OnlyM restricts to one obstruction degree (0 = all valid m).
	OnlyM int
	// OnlyK restricts to one agreement degree (0 = all valid k).
	OnlyK int
}

// Points returns every valid parameter point of the sweep, ordered by
// (n, k, m).
func (s Sweep) Points() []core.Params {
	var out []core.Params
	for n := max(2, s.MinN); n <= s.MaxN; n++ {
		for k := 1; k < n; k++ {
			if s.OnlyK != 0 && k != s.OnlyK {
				continue
			}
			for m := 1; m <= k; m++ {
				if s.OnlyM != 0 && m != s.OnlyM {
					continue
				}
				out = append(out, core.Params{N: n, M: m, K: k})
			}
		}
	}
	return out
}

// Inputs assigns process i the value base*t + i for instance t (1-based):
// pairwise distinct within and across instances whenever n ≤ base.
func Inputs(n, instances, base int) [][]int {
	if base <= n {
		panic(fmt.Sprintf("workload: base %d must exceed n %d for distinct inputs", base, n))
	}
	in := make([][]int, n)
	for i := range in {
		in[i] = make([]int, instances)
		for t := range in[i] {
			in[i][t] = base*(t+1) + i
		}
	}
	return in
}

// IdenticalInputs gives every process the same value per instance — the
// degenerate workload where agreement is information-free (outputs must
// still equal that value, by validity).
func IdenticalInputs(n, instances, base int) [][]int {
	in := make([][]int, n)
	for i := range in {
		in[i] = make([]int, instances)
		for t := range in[i] {
			in[i][t] = base * (t + 1)
		}
	}
	return in
}

// BinaryInputs draws each input independently from {0, 1} with the given
// seed — the classic consensus workload with the minimum value diversity
// that still exercises disagreement.
func BinaryInputs(n, instances int, seed int64) [][]int {
	rng := rand.New(rand.NewSource(seed))
	in := make([][]int, n)
	for i := range in {
		in[i] = make([]int, instances)
		for t := range in[i] {
			in[i][t] = rng.Intn(2)
		}
	}
	return in
}

// SkewedInputs gives `majority` processes the value base and the rest
// distinct values — models a dominant proposal with a few dissenters.
func SkewedInputs(n, majority, base int) [][]int {
	if majority < 0 || majority > n {
		panic(fmt.Sprintf("workload: majority %d out of range for n=%d", majority, n))
	}
	in := make([][]int, n)
	for i := range in {
		v := base
		if i >= majority {
			v = base + 1 + i
		}
		in[i] = []int{v}
	}
	return in
}
