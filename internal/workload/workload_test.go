package workload

import (
	"testing"
	"testing/quick"

	"setagreement/internal/core"
)

func TestSweepPoints(t *testing.T) {
	tests := []struct {
		name string
		give Sweep
		want int
	}{
		{name: "n up to 4", give: Sweep{MinN: 2, MaxN: 4}, want: 1 + 3 + 6},
		{name: "m fixed", give: Sweep{MinN: 3, MaxN: 4, OnlyM: 1}, want: 2 + 3},
		{name: "k fixed", give: Sweep{MinN: 3, MaxN: 5, OnlyK: 2}, want: 2 + 2 + 2},
		{name: "empty", give: Sweep{MinN: 5, MaxN: 4}, want: 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			pts := tt.give.Points()
			if len(pts) != tt.want {
				t.Fatalf("points = %d, want %d (%v)", len(pts), tt.want, pts)
			}
			for _, p := range pts {
				if err := p.Validate(); err != nil {
					t.Fatalf("invalid point %v: %v", p, err)
				}
			}
		})
	}
}

func TestQuickSweepAllValid(t *testing.T) {
	prop := func(minN, maxN uint8, onlyM, onlyK uint8) bool {
		s := Sweep{
			MinN:  int(minN%8) + 2,
			MaxN:  int(maxN%8) + 2,
			OnlyM: int(onlyM % 4),
			OnlyK: int(onlyK % 4),
		}
		for _, p := range s.Points() {
			if p.Validate() != nil {
				return false
			}
			if p.N < s.MinN || p.N > s.MaxN {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestInputsDistinct(t *testing.T) {
	in := Inputs(5, 3, 1000)
	seen := make(map[int]bool)
	for _, seq := range in {
		if len(seq) != 3 {
			t.Fatalf("instance count = %d", len(seq))
		}
		for _, v := range seq {
			if seen[v] {
				t.Fatalf("duplicate input %d", v)
			}
			seen[v] = true
		}
	}
}

func TestInputsPanicsOnSmallBase(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for base ≤ n")
		}
	}()
	Inputs(10, 1, 5)
}

func TestIdenticalInputs(t *testing.T) {
	in := IdenticalInputs(3, 2, 100)
	for _, seq := range in {
		if seq[0] != 100 || seq[1] != 200 {
			t.Fatalf("inputs = %v", seq)
		}
	}
}

func TestBinaryInputsSeeded(t *testing.T) {
	a, b := BinaryInputs(4, 3, 7), BinaryInputs(4, 3, 7)
	for i := range a {
		for t0 := range a[i] {
			if a[i][t0] != b[i][t0] {
				t.Fatal("same seed diverged")
			}
			if a[i][t0] != 0 && a[i][t0] != 1 {
				t.Fatalf("non-binary input %d", a[i][t0])
			}
		}
	}
}

func TestSkewedInputs(t *testing.T) {
	in := SkewedInputs(5, 3, 42)
	distinct := make(map[int]bool)
	for _, seq := range in {
		distinct[seq[0]] = true
	}
	if len(distinct) != 3 { // 42 plus two dissenters
		t.Fatalf("distinct = %d: %v", len(distinct), in)
	}
	for i := 0; i < 3; i++ {
		if in[i][0] != 42 {
			t.Fatalf("majority member %d proposes %d", i, in[i][0])
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for bad majority")
		}
	}()
	SkewedInputs(3, 5, 1)
}

func TestSweepMatchesCoreValidation(t *testing.T) {
	// Everything Points yields must agree with core.Params.Validate, and
	// nothing valid in range is missing.
	pts := Sweep{MinN: 2, MaxN: 6}.Points()
	index := make(map[core.Params]bool, len(pts))
	for _, p := range pts {
		index[p] = true
	}
	for n := 2; n <= 6; n++ {
		for k := 1; k <= n; k++ {
			for m := 1; m <= k; m++ {
				p := core.Params{N: n, M: m, K: k}
				if (p.Validate() == nil) != index[p] {
					t.Fatalf("sweep and Validate disagree on %v", p)
				}
			}
		}
	}
}
