package setagreement

import (
	"context"
	"fmt"
	"sync"
)

// Mapped adapts a Repeated agreement object to an arbitrary comparable
// value domain T by interning values as integers. The paper's algorithms
// work over an abstract domain D; the library's core uses int, and Mapped
// restores generality for callers.
//
// Interning is local per Mapped instance, so all participants of one
// agreement object must share the same Mapped instance.
type Mapped[T comparable] struct {
	r *Repeated

	mu     sync.Mutex
	toInt  map[T]int
	fromTo []T
}

// NewMapped wraps a Repeated object with a T-valued interface.
func NewMapped[T comparable](r *Repeated) *Mapped[T] {
	return &Mapped[T]{r: r, toInt: make(map[T]int)}
}

// Propose submits process id's value for its next instance and returns the
// decided T value.
func (m *Mapped[T]) Propose(ctx context.Context, id int, v T) (T, error) {
	var zero T
	out, err := m.r.Propose(ctx, id, m.intern(v))
	if err != nil {
		return zero, err
	}
	dec, ok := m.lookup(out)
	if !ok {
		// Decided codes are always inputs of the same instance
		// (validity), and every input was interned before proposing.
		return zero, fmt.Errorf("setagreement: decided unknown code %d", out)
	}
	return dec, nil
}

func (m *Mapped[T]) intern(v T) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	if code, ok := m.toInt[v]; ok {
		return code
	}
	code := len(m.fromTo)
	m.toInt[v] = code
	m.fromTo = append(m.fromTo, v)
	return code
}

func (m *Mapped[T]) lookup(code int) (T, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if code < 0 || code >= len(m.fromTo) {
		var zero T
		return zero, false
	}
	return m.fromTo[code], true
}
