package obs

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Stage identifies one lifecycle stage of a proposal's trace.
type Stage uint8

const (
	// StageSubmit: the proposal entered the submit path (span start).
	StageSubmit Stage = iota
	// StageStart: the engine ran the proposal's first step.
	StageStart
	// StagePark: the proposal parked; Arg is the park cap in nanoseconds.
	StagePark
	// StageWake: the proposal was woken; Arg packs the engine wake reason
	// and the run-queue position it re-entered at (see WakeArg).
	StageWake
	// StageDecide: the proposal decided; Arg is submit→decide nanoseconds.
	StageDecide
	// StageDeliver: the resolved future was handed to its CompletionQueue.
	StageDeliver
	// StageCancel: the proposal's context ended before a decision.
	StageCancel
	// StageAbort: the engine closed with the proposal still in flight.
	StageAbort
	// StageFail: the proposal failed before or outside the engine — a
	// claim error (ErrInUse, ErrEvicted, ...) or a codec failure.
	StageFail
	// StageWait: one blocking wait of the synchronous Propose path; Arg
	// is 1 when a memory change (not the timeout cap) ended it.
	StageWait
)

// String names the stage.
func (s Stage) String() string {
	switch s {
	case StageSubmit:
		return "submit"
	case StageStart:
		return "start"
	case StagePark:
		return "park"
	case StageWake:
		return "wake"
	case StageDecide:
		return "decide"
	case StageDeliver:
		return "deliver"
	case StageCancel:
		return "cancel"
	case StageAbort:
		return "abort"
	case StageFail:
		return "fail"
	case StageWait:
		return "wait"
	default:
		return "stage(?)"
	}
}

// MarshalText renders the stage by name in JSON debug dumps.
func (s Stage) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

// UnmarshalText parses a stage name, so JSON debug dumps round-trip.
func (s *Stage) UnmarshalText(b []byte) error {
	for st := StageSubmit; st <= StageWait; st++ {
		if st.String() == string(b) {
			*s = st
			return nil
		}
	}
	return fmt.Errorf("obs: unknown stage %q", b)
}

// Terminal reports whether the stage ends a proposal's trace. A
// StageDeliver may still follow the terminal: delivery reports the
// resolved outcome, whatever it was.
func (s Stage) Terminal() bool {
	switch s {
	case StageDecide, StageCancel, StageAbort, StageFail:
		return true
	}
	return false
}

// Event is one timestamped span event. Events of one proposal share
// (Key, Proc) and are sequenced by Seq, so a drained ring reassembles
// into per-proposal traces (GroupSpans).
type Event struct {
	// WallNS is the wall-clock time of the event in Unix nanoseconds.
	WallNS int64 `json:"t"`
	// Key is the object key the proposal ran against ("" for standalone
	// objects).
	Key string `json:"key"`
	// Proc is the proposing process id (-1 for anonymous sessions).
	Proc int32 `json:"proc"`
	// Seq is the event's position in its span, starting at 0.
	Seq uint32 `json:"seq"`
	// Stage is the lifecycle stage.
	Stage Stage `json:"stage"`
	// Arg is the stage-specific argument (see the Stage constants).
	Arg int64 `json:"arg,omitempty"`
}

// WakeArg packs a StageWake argument: the engine wake reason in the low
// byte, the run-queue position above it.
func WakeArg(reason, pos int) int64 {
	if pos < 0 {
		pos = 0
	}
	return int64(pos)<<8 | int64(reason&0xff)
}

// WakeReasonArg unpacks the wake reason from a StageWake argument.
func WakeReasonArg(arg int64) int { return int(arg & 0xff) }

// WakePosArg unpacks the run-queue position from a StageWake argument.
func WakePosArg(arg int64) int { return int(arg >> 8) }

// Latency identifies one of the collector's stage-latency histograms.
type Latency int

const (
	// LatSubmitToStart: submit to the proposal's first engine step.
	LatSubmitToStart Latency = iota
	// LatPark: one park, park to wake.
	LatPark
	// LatWakeToDecide: the final resume (start, for never-parked
	// proposals) to the decision.
	LatWakeToDecide
	// LatSubmitToDecide: the whole async proposal, submit to decision.
	LatSubmitToDecide
	// LatDecideToDeliver: decision to completion-queue delivery.
	LatDecideToDeliver
	// LatWait: one blocking wait of the synchronous Propose path.
	LatWait
	// LatSyncPropose: one whole blocking Propose call.
	LatSyncPropose
	// NumLatencies bounds the Latency enum.
	NumLatencies
)

// String names the histogram, as keyed in Snapshot.Latencies.
func (l Latency) String() string {
	switch l {
	case LatSubmitToStart:
		return "submit_to_start"
	case LatPark:
		return "park"
	case LatWakeToDecide:
		return "wake_to_decide"
	case LatSubmitToDecide:
		return "submit_to_decide"
	case LatDecideToDeliver:
		return "decide_to_deliver"
	case LatWait:
		return "wait"
	case LatSyncPropose:
		return "sync_propose"
	default:
		return "latency(?)"
	}
}

// Recorder is the sink the instrumented hot paths record into.
// *Collector implements it, and the nil *Collector is the disabled
// recorder: every method — including those of the nil *Span StartSpan
// then returns — is a zero-allocation no-op, so call sites never branch
// on whether observability is on.
type Recorder interface {
	// StartSpan opens a proposal trace keyed by (key, proc) and emits
	// its StageSubmit event.
	StartSpan(key string, proc int32) *Span
	// Record appends one event to the ring (never blocking; dropped with
	// accounting when the ring is full). A zero WallNS is stamped.
	Record(ev Event)
	// Observe records d into the l histogram, striped by hint.
	Observe(l Latency, d time.Duration, hint int)
}

var _ Recorder = (*Collector)(nil)

// Collector owns one observability domain: the stage-latency histograms,
// the lifecycle counters and the bounded event ring. One collector is
// typically shared by an arena (WithObservability) and everything that
// serves it — engine, completion queues, the obshttp handler. All methods
// are safe for concurrent use, and all are nil-receiver-safe no-ops, so a
// nil *Collector is the disabled configuration.
type Collector struct {
	ring *EventRing
	lat  [NumLatencies]Histogram

	spansStarted  atomic.Uint64
	spansDecided  atomic.Uint64
	spansCanceled atomic.Uint64
	spansAborted  atomic.Uint64
	spansFailed   atomic.Uint64
	deliveries    atomic.Uint64
	parks         atomic.Uint64
	wakes         atomic.Uint64
	soloRuns      atomic.Uint64
	syncWaits     atomic.Uint64
	syncProposes  atomic.Uint64
	batches       atomic.Uint64
	batchProps    atomic.Uint64
	drains        atomic.Uint64
	drainsActive  atomic.Int64
	engineCloses  atomic.Uint64
	closeAborted  atomic.Uint64
}

// CollectorOption configures NewCollector.
type CollectorOption func(*collectorConfig)

type collectorConfig struct {
	ringSize int
}

// WithRingSize sets the event ring's capacity (rounded up to a power of
// two; default 4096). Size it to the burst of events between Snapshot
// drains: overflow is safe — events drop with accounting — but dropped
// events leave gaps in the debug traces.
func WithRingSize(n int) CollectorOption {
	return func(c *collectorConfig) {
		if n > 0 {
			c.ringSize = n
		}
	}
}

// NewCollector builds a collector.
func NewCollector(opts ...CollectorOption) *Collector {
	cfg := collectorConfig{ringSize: 4096}
	for _, op := range opts {
		op(&cfg)
	}
	return &Collector{ring: NewEventRing(cfg.ringSize)}
}

// spanHint derives the histogram striping hint for a span: a cheap FNV of
// the key, offset by the proc id, so concurrent proposals of one key
// still land on different stripes.
func spanHint(key string, proc int32) int {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint32(key[i])) * 16777619
	}
	return int(h) + int(proc)
}

// Record implements Recorder.
func (c *Collector) Record(ev Event) {
	if c == nil {
		return
	}
	if ev.WallNS == 0 {
		ev.WallNS = time.Now().UnixNano()
	}
	c.ring.TryPush(ev)
}

// Observe implements Recorder.
func (c *Collector) Observe(l Latency, d time.Duration, hint int) {
	if c == nil || l < 0 || l >= NumLatencies {
		return
	}
	c.lat[l].ObserveHint(d, hint)
}

// Wait records one blocking wait of the synchronous Propose path: the
// wait histogram plus a StageWait event. woke reports whether a memory
// change (rather than the timeout cap) ended the wait.
func (c *Collector) Wait(key string, proc int32, d time.Duration, woke bool) {
	if c == nil {
		return
	}
	c.syncWaits.Add(1)
	c.lat[LatWait].ObserveHint(d, spanHint(key, proc))
	var arg int64
	if woke {
		arg = 1
	}
	c.Record(Event{Key: key, Proc: proc, Stage: StageWait, Arg: arg})
}

// SoloRun counts one yield point skipped by solo detection: the proposal
// had seen no foreign write since its previous yield and kept stepping.
// These are the solo windows the paper's m-obstruction-freedom argument
// turns into guaranteed decisions.
func (c *Collector) SoloRun() {
	if c == nil {
		return
	}
	c.soloRuns.Add(1)
}

// SyncPropose records one completed blocking Propose.
func (c *Collector) SyncPropose(d time.Duration, hint int) {
	if c == nil {
		return
	}
	c.syncProposes.Add(1)
	c.lat[LatSyncPropose].ObserveHint(d, hint)
}

// DrainStarted implements the engine's Observer: a drain goroutine
// spawned.
func (c *Collector) DrainStarted() {
	if c == nil {
		return
	}
	c.drains.Add(1)
	c.drainsActive.Add(1)
}

// DrainStopped implements the engine's Observer: a drain goroutine
// exited.
func (c *Collector) DrainStopped() {
	if c == nil {
		return
	}
	c.drainsActive.Add(-1)
}

// BatchExpanded implements the engine's Observer: one batch descriptor of
// n proposals was materialized into its per-proposal task slab.
func (c *Collector) BatchExpanded(n int) {
	if c == nil {
		return
	}
	c.batches.Add(1)
	c.batchProps.Add(uint64(n))
}

// EngineClosed implements the engine's Observer: the engine shut down,
// aborting the given number of queued and parked proposals.
func (c *Collector) EngineClosed(aborted int) {
	if c == nil {
		return
	}
	c.engineCloses.Add(1)
	c.closeAborted.Add(uint64(aborted))
}

// Snapshot is the structured observability snapshot: the per-stage time
// breakdown (latency histograms), the lifecycle counters, point-in-time
// gauges, and — from draining snapshots — the recent-event ring.
type Snapshot struct {
	// TakenAt is when the snapshot was captured.
	TakenAt time.Time `json:"taken_at"`
	// Latencies maps Latency names (see Latency.String) to their
	// histograms; empty histograms are omitted.
	Latencies map[string]HistogramSnapshot `json:"latencies"`
	// Counters holds the monotone lifecycle counters.
	Counters map[string]uint64 `json:"counters"`
	// Gauges holds point-in-time values (engine drains active; the
	// arena's Observe adds its own).
	Gauges map[string]int64 `json:"gauges"`
	// Events is the drained recent-event ring, in ring order (only from
	// Snapshot(true); each event appears in exactly one such snapshot).
	Events []Event `json:"events,omitempty"`
	// DroppedEvents counts events ever dropped on a full ring.
	DroppedEvents uint64 `json:"dropped_events"`
}

// Snapshot captures the collector's state. drain=true also consumes the
// buffered events into Events — the debug-dump mode; metrics scrapes pass
// false and leave the ring for the debug surface. A nil collector
// snapshots to nil.
func (c *Collector) Snapshot(drain bool) *Snapshot {
	if c == nil {
		return nil
	}
	s := &Snapshot{
		TakenAt:   time.Now(),
		Latencies: make(map[string]HistogramSnapshot, NumLatencies),
		Counters: map[string]uint64{
			"spans_started":    c.spansStarted.Load(),
			"spans_decided":    c.spansDecided.Load(),
			"spans_canceled":   c.spansCanceled.Load(),
			"spans_aborted":    c.spansAborted.Load(),
			"spans_failed":     c.spansFailed.Load(),
			"deliveries":       c.deliveries.Load(),
			"parks":            c.parks.Load(),
			"wakes":            c.wakes.Load(),
			"solo_runs":        c.soloRuns.Load(),
			"sync_waits":       c.syncWaits.Load(),
			"sync_proposes":    c.syncProposes.Load(),
			"batches_expanded": c.batches.Load(),
			"batch_proposals":  c.batchProps.Load(),
			"drains_spawned":   c.drains.Load(),
			"engine_closes":    c.engineCloses.Load(),
			"close_aborted":    c.closeAborted.Load(),
		},
		Gauges: map[string]int64{
			"drains_active": c.drainsActive.Load(),
		},
		DroppedEvents: c.ring.Dropped(),
	}
	for l := Latency(0); l < NumLatencies; l++ {
		if hs := c.lat[l].Snapshot(); hs.Count > 0 {
			s.Latencies[l.String()] = hs
		}
	}
	if drain {
		s.Events = c.ring.Drain()
	}
	return s
}

// TraceKey identifies one proposal's trace: the object key and proc id
// its span was opened with.
type TraceKey struct {
	Key  string
	Proc int32
}

// GroupSpans reassembles a drained event slice into per-proposal traces,
// preserving ring order within each trace. StageWait events (the sync
// path, which has no spans) group under their (key, proc) too; filter by
// stage if that mixing matters.
func GroupSpans(events []Event) map[TraceKey][]Event {
	out := make(map[TraceKey][]Event)
	for _, ev := range events {
		k := TraceKey{Key: ev.Key, Proc: ev.Proc}
		out[k] = append(out[k], ev)
	}
	return out
}
