package obs

import (
	"testing"
	"time"
)

// TestNilCollectorIsDisabledRecorder: the nil *Collector and the nil
// *Span it hands out are the zero-cost disabled path — every method a
// no-op, with zero allocations.
func TestNilCollectorIsDisabledRecorder(t *testing.T) {
	var c *Collector
	allocs := testing.AllocsPerRun(100, func() {
		sp := c.StartSpan("key", 3)
		sp.Started()
		sp.Parked(time.Millisecond)
		sp.Woken(1, time.Microsecond, 2)
		sp.Decided()
		sp.Delivered()
		sp.Canceled()
		sp.Aborted()
		sp.Failed()
		c.Record(Event{Stage: StageWait})
		c.Observe(LatWait, time.Microsecond, 0)
		c.Wait("key", 3, time.Microsecond, true)
		c.SoloRun()
		c.SyncPropose(time.Microsecond, 0)
		c.DrainStarted()
		c.DrainStopped()
		c.BatchExpanded(8)
		c.EngineClosed(2)
	})
	if allocs != 0 {
		t.Fatalf("disabled recorder allocated %.1f times per run, want 0", allocs)
	}
	if s := c.Snapshot(true); s != nil {
		t.Fatal("nil collector snapshot should be nil")
	}
}

// TestSpanLifecycle walks one span through the full happy path and checks
// the emitted trace and the derived counters/histograms.
func TestSpanLifecycle(t *testing.T) {
	c := NewCollector(WithRingSize(64))
	sp := c.StartSpan("acct-1", 2)
	sp.Started()
	sp.Parked(5 * time.Millisecond)
	sp.Woken(1, 80*time.Microsecond, 3)
	sp.Decided()
	sp.Delivered()

	s := c.Snapshot(true)
	if got := s.Counters["spans_started"]; got != 1 {
		t.Errorf("spans_started = %d", got)
	}
	if got := s.Counters["spans_decided"]; got != 1 {
		t.Errorf("spans_decided = %d", got)
	}
	if got := s.Counters["parks"]; got != 1 {
		t.Errorf("parks = %d", got)
	}
	if got := s.Counters["wakes"]; got != 1 {
		t.Errorf("wakes = %d", got)
	}
	if got := s.Counters["deliveries"]; got != 1 {
		t.Errorf("deliveries = %d", got)
	}
	wantStages := []Stage{StageSubmit, StageStart, StagePark, StageWake, StageDecide, StageDeliver}
	if len(s.Events) != len(wantStages) {
		t.Fatalf("got %d events, want %d: %v", len(s.Events), len(wantStages), s.Events)
	}
	for i, ev := range s.Events {
		if ev.Stage != wantStages[i] {
			t.Errorf("event %d stage = %v, want %v", i, ev.Stage, wantStages[i])
		}
		if ev.Seq != uint32(i) {
			t.Errorf("event %d seq = %d", i, ev.Seq)
		}
		if ev.Key != "acct-1" || ev.Proc != 2 {
			t.Errorf("event %d keyed (%q, %d)", i, ev.Key, ev.Proc)
		}
		if ev.WallNS == 0 {
			t.Errorf("event %d has no timestamp", i)
		}
	}
	// The wake event round-trips its packed argument.
	wake := s.Events[3]
	if WakeReasonArg(wake.Arg) != 1 || WakePosArg(wake.Arg) != 3 {
		t.Errorf("wake arg %d unpacked to (%d, %d)", wake.Arg, WakeReasonArg(wake.Arg), WakePosArg(wake.Arg))
	}
	// The park event carries its cap.
	if got := time.Duration(s.Events[2].Arg); got != 5*time.Millisecond {
		t.Errorf("park cap arg = %v", got)
	}
	// Every stage histogram saw its observation.
	for _, l := range []Latency{LatSubmitToStart, LatPark, LatWakeToDecide, LatSubmitToDecide, LatDecideToDeliver} {
		if hs := s.Latencies[l.String()]; hs.Count != 1 {
			t.Errorf("latency %v count = %d, want 1", l, hs.Count)
		}
	}
	if hs := s.Latencies[LatPark.String()]; hs.Quantile(0.5) < 64*time.Microsecond || hs.Quantile(0.5) > 132*time.Microsecond {
		t.Errorf("park p50 = %v, want within the 80µs bucket", hs.Quantile(0.5))
	}
	// The draining snapshot consumed the events.
	if s2 := c.Snapshot(true); len(s2.Events) != 0 {
		t.Fatalf("second drain returned %d events", len(s2.Events))
	}
}

func TestSnapshotNonDrainingKeepsEvents(t *testing.T) {
	c := NewCollector()
	c.StartSpan("k", 0).Decided()
	if s := c.Snapshot(false); len(s.Events) != 0 {
		t.Fatal("non-draining snapshot returned events")
	}
	if s := c.Snapshot(true); len(s.Events) != 2 {
		t.Fatalf("drain after peek returned %d events, want 2", len(s.Events))
	}
}

func TestWakeArgPacking(t *testing.T) {
	for _, c := range []struct{ reason, pos int }{{0, 0}, {1, 0}, {3, 511}, {2, 1 << 20}, {1, -5}} {
		arg := WakeArg(c.reason, c.pos)
		wantPos := c.pos
		if wantPos < 0 {
			wantPos = 0
		}
		if WakeReasonArg(arg) != c.reason || WakePosArg(arg) != wantPos {
			t.Errorf("WakeArg(%d, %d) unpacked to (%d, %d)", c.reason, c.pos, WakeReasonArg(arg), WakePosArg(arg))
		}
	}
}

func TestGroupSpans(t *testing.T) {
	events := []Event{
		{Key: "a", Proc: 0, Seq: 0, Stage: StageSubmit},
		{Key: "b", Proc: 0, Seq: 0, Stage: StageSubmit},
		{Key: "a", Proc: 1, Seq: 0, Stage: StageSubmit},
		{Key: "a", Proc: 0, Seq: 1, Stage: StageDecide},
	}
	groups := GroupSpans(events)
	if len(groups) != 3 {
		t.Fatalf("got %d groups, want 3", len(groups))
	}
	a0 := groups[TraceKey{Key: "a", Proc: 0}]
	if len(a0) != 2 || a0[0].Stage != StageSubmit || a0[1].Stage != StageDecide {
		t.Fatalf("trace a/0 = %v", a0)
	}
}

func TestStageTerminal(t *testing.T) {
	terminal := map[Stage]bool{StageDecide: true, StageCancel: true, StageAbort: true, StageFail: true}
	for s := StageSubmit; s <= StageWait; s++ {
		if s.Terminal() != terminal[s] {
			t.Errorf("%v.Terminal() = %v", s, s.Terminal())
		}
	}
}

func BenchmarkSpanLifecycle(b *testing.B) {
	c := NewCollector(WithRingSize(1 << 16))
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			sp := c.StartSpan("bench", 1)
			sp.Started()
			sp.Parked(time.Millisecond)
			sp.Woken(1, time.Microsecond, 0)
			sp.Decided()
		}
	})
}
