// Package obs is the production observability layer: lock-free mergeable
// latency histograms, per-proposal lifecycle tracing into a bounded event
// ring, and the structured snapshot the export surfaces (Arena.Observe,
// obs/obshttp, sabench -table obs) serve from.
//
// The package is deliberately a leaf — it imports only the standard
// library — so both the public setagreement package and internal/engine
// can record into one Collector without a dependency cycle.
//
// # The zero-cost disabled path
//
// Everything hangs off a *Collector, and the nil *Collector is the
// disabled recorder: every method on it — and on the nil *Span it hands
// out — is a nil-check no-op that performs zero allocations. The library
// therefore calls through unconditionally (no "if enabled" scattered over
// the hot paths), and with observability off (the default) solo
// Propose/ProposeAsync keep their committed allocation ceilings exactly
// (TestObservabilityDisabledOverhead).
//
// # What is recorded
//
// Each asynchronous proposal gets a Span keyed by (object key, proc id).
// The span emits one timestamped Event per lifecycle stage — submit,
// first engine step, park (with the cap), wake (with the engine wake
// reason and run-queue position), decision, completion-queue delivery,
// and exactly one terminal among decided/canceled/aborted/failed — into
// the collector's bounded MPMC ring. Producers never block: when the ring
// is full the event is dropped and the drop counter incremented, so
// tracing can never stall the engine. Stage latencies (submit→start,
// park time, wake→decide, submit→decide, decide→delivery, blocking waits
// of the synchronous path) feed log-bucketed histograms that are
// lock-free on the write side and mergeable on the read side.
//
// Under the paper's m-obstruction-freedom argument
// (conf_podc_Delporte-Gallet15), the park/wake/solo-run record is the
// observable footprint of the progress property itself: solo runs are
// the windows in which termination is guaranteed, and the park/wake
// cadence shows how the schedule produced them.
package obs
