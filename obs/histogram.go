package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// NumBuckets is the bucket count of every histogram. Bucket 0 counts
// non-positive durations; bucket b ≥ 1 counts durations in
// [2^(b-1), 2^b) nanoseconds — power-of-two (log-spaced) buckets, so 47
// of them cover 1ns up to ~1.6 days and the top bucket absorbs the rest.
const NumBuckets = 48

// histShards stripes the write side of a Histogram: concurrent observers
// with different hints land on different count arrays, so the hot path is
// one uncontended atomic add. Must be a power of two.
const histShards = 8

// Histogram is a lock-free log-bucketed latency histogram: fixed
// power-of-two buckets, per-shard atomic.Uint64 count arrays, no
// allocation and no locking on the write side ever. Reads (Snapshot) walk
// the shards and fold them into one mergeable HistogramSnapshot. The zero
// Histogram is ready to use.
type Histogram struct {
	shards [histShards]histShard
}

// histShard is one write stripe. The trailing pad keeps adjacent shards'
// hot tails out of one cache line.
type histShard struct {
	counts [NumBuckets]atomic.Uint64
	sumNS  atomic.Int64
	_      [56]byte
}

// bucketOf maps a duration to its bucket: the bit length of the
// nanosecond count.
func bucketOf(d time.Duration) int {
	if d <= 0 {
		return 0
	}
	b := bits.Len64(uint64(d))
	if b >= NumBuckets {
		return NumBuckets - 1
	}
	return b
}

// BucketBound returns the exclusive upper bound of bucket i: every
// duration counted in bucket i is strictly below it (0 for bucket 0,
// which counts only non-positive durations; the top bucket is unbounded
// and returns the maximum duration).
func BucketBound(i int) time.Duration {
	switch {
	case i <= 0:
		return 0
	case i >= NumBuckets-1:
		return time.Duration(math.MaxInt64)
	default:
		return time.Duration(1) << uint(i)
	}
}

// Observe records one duration. Safe for any number of concurrent
// callers; callers that hold a natural striping value should prefer
// ObserveHint.
func (h *Histogram) Observe(d time.Duration) { h.ObserveHint(d, 0) }

// ObserveHint records one duration, striping the update across the
// histogram's internal shards by hint. Any int works (the collector
// passes a hash of the span's object key and proc id, so concurrent
// proposals spread naturally); equal hints merely share a stripe.
func (h *Histogram) ObserveHint(d time.Duration, hint int) {
	s := &h.shards[uint(hint)%histShards]
	s.counts[bucketOf(d)].Add(1)
	if d > 0 {
		s.sumNS.Add(int64(d))
	}
}

// HistogramSnapshot is a point-in-time fold of a Histogram, mergeable
// across histograms (roll-up over shards, engines or time windows) and
// JSON-serializable for the debug surface.
type HistogramSnapshot struct {
	// Counts[b] is the number of observations in bucket b (see
	// BucketBound for the bucket geometry).
	Counts [NumBuckets]uint64 `json:"counts"`
	// Count is the total number of observations.
	Count uint64 `json:"count"`
	// SumNS is the sum of all positive observations, in nanoseconds.
	SumNS int64 `json:"sum_ns"`
}

// Snapshot folds the histogram's shards into one snapshot. Concurrent
// observes may or may not be included; each lands in at most one of any
// two successive snapshots' deltas.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	for i := range h.shards {
		sh := &h.shards[i]
		for b := 0; b < NumBuckets; b++ {
			c := sh.counts[b].Load()
			s.Counts[b] += c
			s.Count += c
		}
		s.SumNS += sh.sumNS.Load()
	}
	return s
}

// Merge adds o's observations into s.
func (s *HistogramSnapshot) Merge(o HistogramSnapshot) {
	for b := range s.Counts {
		s.Counts[b] += o.Counts[b]
	}
	s.Count += o.Count
	s.SumNS += o.SumNS
}

// Mean returns the mean observed duration, 0 when empty.
func (s HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.SumNS / int64(s.Count))
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by locating the bucket
// the rank falls in and interpolating linearly within it — the usual
// log-bucket estimate, exact to within one bucket's width.
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for b := 0; b < NumBuckets; b++ {
		c := s.Counts[b]
		if c == 0 {
			continue
		}
		if cum+c >= rank {
			var lo int64
			if b > 0 {
				lo = int64(1) << uint(b-1)
			}
			hi := int64(1) << uint(b)
			if b == 0 {
				hi = 0
			}
			frac := float64(rank-cum) / float64(c)
			return time.Duration(lo) + time.Duration(frac*float64(hi-lo))
		}
		cum += c
	}
	return 0
}
