package obs

import (
	"sync"
	"testing"
	"time"
)

func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		d      time.Duration
		bucket int
	}{
		{-5, 0},
		{0, 0},
		{1, 1},
		{2, 2},
		{3, 2},
		{4, 3},
		{1023, 10},
		{1024, 11},
		{time.Duration(1) << 50, NumBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketOf(c.d); got != c.bucket {
			t.Errorf("bucketOf(%d) = %d, want %d", c.d, got, c.bucket)
		}
	}
	for i := 1; i < NumBuckets-1; i++ {
		if bucketOf(BucketBound(i)-1) != i {
			t.Errorf("BucketBound(%d)-1 not in bucket %d", i, i)
		}
		if bucketOf(BucketBound(i)) != i+1 {
			t.Errorf("BucketBound(%d) should open bucket %d", i, i+1)
		}
	}
}

func TestHistogramSnapshotAndQuantile(t *testing.T) {
	var h Histogram
	// 100 observations at ~1µs, 10 at ~1ms: p50 must land in the µs
	// bucket, p99 in the ms bucket.
	for i := 0; i < 100; i++ {
		h.ObserveHint(time.Microsecond, i)
	}
	for i := 0; i < 10; i++ {
		h.Observe(time.Millisecond)
	}
	s := h.Snapshot()
	if s.Count != 110 {
		t.Fatalf("Count = %d, want 110", s.Count)
	}
	wantSum := int64(100*time.Microsecond + 10*time.Millisecond)
	if s.SumNS != wantSum {
		t.Fatalf("SumNS = %d, want %d", s.SumNS, wantSum)
	}
	p50 := s.Quantile(0.5)
	if p50 < 512*time.Nanosecond || p50 > 2*time.Microsecond {
		t.Errorf("p50 = %v, want ~1µs", p50)
	}
	p99 := s.Quantile(0.99)
	if p99 < 512*time.Microsecond || p99 > 2*time.Millisecond {
		t.Errorf("p99 = %v, want ~1ms", p99)
	}
	if m := s.Mean(); m < 80*time.Microsecond || m > 120*time.Microsecond {
		t.Errorf("Mean = %v, want ~91µs", m)
	}
}

func TestHistogramQuantileEdges(t *testing.T) {
	var empty HistogramSnapshot
	if empty.Quantile(0.5) != 0 || empty.Mean() != 0 {
		t.Error("empty snapshot should quantile to 0")
	}
	var h Histogram
	h.Observe(time.Second)
	s := h.Snapshot()
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		got := s.Quantile(q)
		if got < 512*time.Millisecond || got > 2*time.Second {
			t.Errorf("Quantile(%g) = %v, want ~1s", q, got)
		}
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	a.Observe(time.Microsecond)
	b.Observe(time.Millisecond)
	b.Observe(time.Millisecond)
	s := a.Snapshot()
	s.Merge(b.Snapshot())
	if s.Count != 3 {
		t.Fatalf("merged Count = %d, want 3", s.Count)
	}
	if want := int64(time.Microsecond + 2*time.Millisecond); s.SumNS != want {
		t.Fatalf("merged SumNS = %d, want %d", s.SumNS, want)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const goroutines, per = 8, 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.ObserveHint(time.Duration(i%1000)*time.Nanosecond, g)
			}
		}(g)
	}
	wg.Wait()
	if s := h.Snapshot(); s.Count != goroutines*per {
		t.Fatalf("Count = %d, want %d", s.Count, goroutines*per)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	var h Histogram
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			h.ObserveHint(time.Microsecond, i)
			i++
		}
	})
}
