// Package obshttp serves an obs.Collector over HTTP: a Prometheus
// text-format metrics endpoint, a JSON debug dump of the full snapshot
// (including the drained recent-event ring, reassembled per proposal),
// and the runtime's pprof endpoints — whose profiles carry the labels
// the instrumented library sets (sa_key and sa_wake around proposal
// steps, sa_role on engine drain goroutines), so CPU samples attribute
// to object keys and lifecycle stages.
//
// The package depends only on the standard library and the obs package;
// mount the handler wherever the application serves HTTP:
//
//	col := obs.NewCollector()
//	ar, _ := setagreement.NewArena[int](n, k,
//	        setagreement.WithObjectOptions(setagreement.WithObservability(col)))
//	go http.ListenAndServe("localhost:6060", obshttp.Handler(col))
//
// Endpoints:
//
//	/metrics      Prometheus text exposition: per-stage latency
//	              histograms (sa_stage_latency_seconds), lifecycle
//	              counters (sa_*_total) and gauges. Non-draining — the
//	              event ring is left for the debug surface.
//	/debug/obs    The full obs.Snapshot as JSON, draining the event
//	              ring (each event appears in exactly one response);
//	              ?drain=0 leaves the ring untouched — histograms,
//	              counters and gauges only, no events or traces.
//	/debug/pprof/ The standard runtime profiles.
package obshttp

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"time"

	"setagreement/obs"
)

// Snapshotter is the handler's view of an observability source: the
// *obs.Collector itself, or any wrapper that enriches its snapshot (an
// Arena's Observe method, adapted with SnapshotterFunc).
type Snapshotter interface {
	Snapshot(drain bool) *obs.Snapshot
}

// SnapshotterFunc adapts a snapshot function — e.g. an Arena's Observe
// method value — to the Snapshotter interface.
type SnapshotterFunc func(drain bool) *obs.Snapshot

// Snapshot implements Snapshotter.
func (f SnapshotterFunc) Snapshot(drain bool) *obs.Snapshot { return f(drain) }

// Handler builds the HTTP handler serving s. A nil snapshot (a nil
// collector, or observability not configured) answers 503 on the data
// endpoints; the pprof endpoints always work.
func Handler(s Snapshotter) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		snap := s.Snapshot(false)
		if snap == nil {
			http.Error(w, "observability not configured", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		writeMetrics(w, snap)
	})
	mux.HandleFunc("/debug/obs", func(w http.ResponseWriter, r *http.Request) {
		drain := r.URL.Query().Get("drain") != "0"
		snap := s.Snapshot(drain)
		if snap == nil {
			http.Error(w, "observability not configured", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(debugDump(snap))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// dump is the /debug/obs response shape: the snapshot plus the drained
// events regrouped into per-proposal traces for human consumption.
type dump struct {
	*obs.Snapshot
	// Traces maps "key/proc" to that proposal's events, in ring order.
	Traces map[string][]obs.Event `json:"traces,omitempty"`
}

func debugDump(s *obs.Snapshot) dump {
	d := dump{Snapshot: s}
	if len(s.Events) > 0 {
		d.Traces = make(map[string][]obs.Event)
		for k, evs := range obs.GroupSpans(s.Events) {
			d.Traces[fmt.Sprintf("%s/%d", k.Key, k.Proc)] = evs
		}
	}
	return d
}

// writeMetrics renders the snapshot in the Prometheus text exposition
// format (version 0.0.4). Histogram buckets are the obs package's
// power-of-two nanosecond bounds, converted to seconds; buckets above
// the highest populated one are elided (+Inf carries the total).
func writeMetrics(w http.ResponseWriter, s *obs.Snapshot) {
	fmt.Fprintf(w, "# HELP sa_stage_latency_seconds Per-stage proposal latency.\n")
	fmt.Fprintf(w, "# TYPE sa_stage_latency_seconds histogram\n")
	for _, stage := range sortedKeys(s.Latencies) {
		hs := s.Latencies[stage]
		top := 0
		for i, c := range hs.Counts {
			if c > 0 {
				top = i
			}
		}
		cum := uint64(0)
		for i := 0; i <= top; i++ {
			cum += hs.Counts[i]
			le := formatLE(obs.BucketBound(i))
			fmt.Fprintf(w, "sa_stage_latency_seconds_bucket{stage=%q,le=%q} %d\n", stage, le, cum)
		}
		fmt.Fprintf(w, "sa_stage_latency_seconds_bucket{stage=%q,le=\"+Inf\"} %d\n", stage, hs.Count)
		fmt.Fprintf(w, "sa_stage_latency_seconds_sum{stage=%q} %s\n", stage, formatSeconds(hs.SumNS))
		fmt.Fprintf(w, "sa_stage_latency_seconds_count{stage=%q} %d\n", stage, hs.Count)
	}
	for _, name := range sortedKeys(s.Counters) {
		fmt.Fprintf(w, "# TYPE sa_%s_total counter\n", name)
		fmt.Fprintf(w, "sa_%s_total %d\n", name, s.Counters[name])
	}
	fmt.Fprintf(w, "# TYPE sa_trace_dropped_events_total counter\n")
	fmt.Fprintf(w, "sa_trace_dropped_events_total %d\n", s.DroppedEvents)
	for _, name := range sortedKeys(s.Gauges) {
		fmt.Fprintf(w, "# TYPE sa_%s gauge\n", name)
		fmt.Fprintf(w, "sa_%s %d\n", name, s.Gauges[name])
	}
}

// formatLE renders a bucket's upper bound in seconds. The top bucket's
// bound (MaxInt64 ns) has no finite rendering Prometheus accepts cleanly,
// so it maps to +Inf.
func formatLE(bound time.Duration) string {
	if bound >= math.MaxInt64 {
		return "+Inf"
	}
	return formatSeconds(int64(bound))
}

// formatSeconds renders nanoseconds as a decimal seconds literal.
func formatSeconds(ns int64) string {
	return strconv.FormatFloat(float64(ns)/1e9, 'g', -1, 64)
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
