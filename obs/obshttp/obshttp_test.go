package obshttp

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"setagreement/obs"
)

// seedCollector runs one full span plus a sync wait through a collector.
func seedCollector() *obs.Collector {
	c := obs.NewCollector(obs.WithRingSize(64))
	sp := c.StartSpan("k1", 0)
	sp.Started()
	sp.Parked(time.Millisecond)
	sp.Woken(1, 50*time.Microsecond, 0)
	sp.Decided()
	sp.Delivered()
	c.Wait("k1", 1, 30*time.Microsecond, true)
	return c
}

func get(t *testing.T, h *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := h.Client().Get(h.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return resp.StatusCode, string(body)
}

func TestMetricsEndpoint(t *testing.T) {
	srv := httptest.NewServer(Handler(seedCollector()))
	defer srv.Close()
	code, body := get(t, srv, "/metrics")
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	for _, want := range []string{
		"# TYPE sa_stage_latency_seconds histogram",
		`sa_stage_latency_seconds_bucket{stage="park",le="+Inf"} 1`,
		`sa_stage_latency_seconds_count{stage="submit_to_decide"} 1`,
		"sa_spans_started_total 1",
		"sa_spans_decided_total 1",
		"sa_deliveries_total 1",
		"sa_sync_waits_total 1",
		"sa_trace_dropped_events_total 0",
		"# TYPE sa_drains_active gauge",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics output missing %q\n%s", want, body)
		}
	}
	// Bucket lines are cumulative and monotone within each stage; the park
	// bucket for its 50µs observation must appear with a finite bound.
	if !strings.Contains(body, `sa_stage_latency_seconds_bucket{stage="park",le="6.5536e-05"} 1`) {
		t.Errorf("park histogram missing the 65.536µs bucket line\n%s", body)
	}
}

func TestMetricsDoesNotDrainEvents(t *testing.T) {
	c := seedCollector()
	srv := httptest.NewServer(Handler(c))
	defer srv.Close()
	get(t, srv, "/metrics")
	if s := c.Snapshot(true); len(s.Events) == 0 {
		t.Fatal("metrics scrape consumed the event ring")
	}
}

func TestDebugObsDrains(t *testing.T) {
	srv := httptest.NewServer(Handler(seedCollector()))
	defer srv.Close()

	// A peek leaves the ring intact.
	code, body := get(t, srv, "/debug/obs?drain=0")
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	var peek struct {
		Events []obs.Event `json:"events"`
	}
	if err := json.Unmarshal([]byte(body), &peek); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if len(peek.Events) != 0 {
		t.Fatalf("peek returned %d events, want 0 (non-draining)", len(peek.Events))
	}

	// The draining dump returns the events grouped into traces…
	_, body = get(t, srv, "/debug/obs")
	var d struct {
		Events []obs.Event            `json:"events"`
		Traces map[string][]obs.Event `json:"traces"`
	}
	if err := json.Unmarshal([]byte(body), &d); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if len(d.Events) != 7 { // 6 span events + 1 sync wait
		t.Fatalf("dump has %d events, want 7: %s", len(d.Events), body)
	}
	tr := d.Traces["k1/0"]
	if len(tr) != 6 {
		t.Fatalf("trace k1/0 has %d events, want 6", len(tr))
	}
	for i, ev := range tr {
		if ev.Seq != uint32(i) {
			t.Errorf("trace event %d has seq %d", i, ev.Seq)
		}
	}

	// …and consumes them: the next drain is empty.
	_, body = get(t, srv, "/debug/obs")
	var again struct {
		Events []obs.Event `json:"events"`
	}
	if err := json.Unmarshal([]byte(body), &again); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if len(again.Events) != 0 {
		t.Fatalf("second drain returned %d events", len(again.Events))
	}
}

func TestNilCollectorAnswers503(t *testing.T) {
	var c *obs.Collector
	srv := httptest.NewServer(Handler(c))
	defer srv.Close()
	if code, _ := get(t, srv, "/metrics"); code != 503 {
		t.Errorf("/metrics on nil collector: status %d, want 503", code)
	}
	if code, _ := get(t, srv, "/debug/obs"); code != 503 {
		t.Errorf("/debug/obs on nil collector: status %d, want 503", code)
	}
}

func TestSnapshotterFunc(t *testing.T) {
	c := seedCollector()
	enriched := SnapshotterFunc(func(drain bool) *obs.Snapshot {
		s := c.Snapshot(drain)
		s.Gauges["custom"] = 42
		return s
	})
	srv := httptest.NewServer(Handler(enriched))
	defer srv.Close()
	_, body := get(t, srv, "/metrics")
	if !strings.Contains(body, "sa_custom 42") {
		t.Errorf("enriched gauge missing:\n%s", body)
	}
}

func TestPprofMounted(t *testing.T) {
	srv := httptest.NewServer(Handler(seedCollector()))
	defer srv.Close()
	if code, _ := get(t, srv, "/debug/pprof/cmdline"); code != 200 {
		t.Errorf("/debug/pprof/cmdline: status %d", code)
	}
}
