package obs

import "sync/atomic"

// EventRing is the bounded multi-producer multi-consumer ring buffer the
// collector's lifecycle events flow through (a Vyukov-style array queue:
// one sequence word per slot arbitrates producers and consumers without
// locks). Producers never block and never spin on a full ring: TryPush on
// a full ring drops the event and increments the drop counter, so the
// recorder hot path — engine workers mid-Advance — can never stall on
// tracing. Consumers drain with TryPop/Drain; a drained event is returned
// exactly once.
type EventRing struct {
	mask  uint64
	slots []ringSlot

	_     [56]byte // keep head, tail and drops on separate cache lines
	head  atomic.Uint64
	_     [56]byte
	tail  atomic.Uint64
	_     [56]byte
	drops atomic.Uint64
}

// ringSlot carries one event plus the sequence word that hands the slot
// back and forth: seq == pos means free for the producer of ticket pos,
// seq == pos+1 means filled for the consumer of ticket pos.
type ringSlot struct {
	seq atomic.Uint64
	ev  Event
}

// NewEventRing builds a ring with capacity ≥ size, rounded up to a power
// of two (minimum 2).
func NewEventRing(size int) *EventRing {
	n := 2
	for n < size {
		n <<= 1
	}
	r := &EventRing{mask: uint64(n - 1), slots: make([]ringSlot, n)}
	for i := range r.slots {
		r.slots[i].seq.Store(uint64(i))
	}
	return r
}

// Cap returns the ring's capacity.
func (r *EventRing) Cap() int { return len(r.slots) }

// Dropped returns the number of events dropped by TryPush on a full ring.
func (r *EventRing) Dropped() uint64 { return r.drops.Load() }

// TryPush appends ev, reporting false (and counting a drop) when the ring
// is full. It never blocks: a producer that loses a ticket race retries on
// a fresh ticket, and fullness is detected in one slot read.
func (r *EventRing) TryPush(ev Event) bool {
	pos := r.head.Load()
	for {
		s := &r.slots[pos&r.mask]
		seq := s.seq.Load()
		switch d := int64(seq) - int64(pos); {
		case d == 0:
			if r.head.CompareAndSwap(pos, pos+1) {
				s.ev = ev
				s.seq.Store(pos + 1)
				return true
			}
			pos = r.head.Load()
		case d < 0:
			// The slot still holds an unconsumed event a full lap behind:
			// the ring is full. Drop rather than wait.
			r.drops.Add(1)
			return false
		default:
			pos = r.head.Load()
		}
	}
}

// TryPop removes the oldest event, reporting false when the ring is empty.
func (r *EventRing) TryPop() (Event, bool) {
	pos := r.tail.Load()
	for {
		s := &r.slots[pos&r.mask]
		seq := s.seq.Load()
		switch d := int64(seq) - int64(pos+1); {
		case d == 0:
			if r.tail.CompareAndSwap(pos, pos+1) {
				ev := s.ev
				s.seq.Store(pos + r.mask + 1)
				return ev, true
			}
			pos = r.tail.Load()
		case d < 0:
			return Event{}, false
		default:
			pos = r.tail.Load()
		}
	}
}

// Drain pops every buffered event in ring order. Events pushed
// concurrently with the drain may land in this batch or the next.
func (r *EventRing) Drain() []Event {
	var out []Event
	for {
		ev, ok := r.TryPop()
		if !ok {
			return out
		}
		out = append(out, ev)
	}
}
