package obs

import (
	"sync"
	"testing"
)

func TestEventRingFIFO(t *testing.T) {
	r := NewEventRing(8)
	if r.Cap() != 8 {
		t.Fatalf("Cap = %d, want 8", r.Cap())
	}
	for i := 0; i < 5; i++ {
		if !r.TryPush(Event{Seq: uint32(i)}) {
			t.Fatalf("push %d failed on non-full ring", i)
		}
	}
	for i := 0; i < 5; i++ {
		ev, ok := r.TryPop()
		if !ok || ev.Seq != uint32(i) {
			t.Fatalf("pop %d = (%v, %v)", i, ev.Seq, ok)
		}
	}
	if _, ok := r.TryPop(); ok {
		t.Fatal("pop on empty ring succeeded")
	}
}

func TestEventRingOverflowDrops(t *testing.T) {
	r := NewEventRing(4)
	for i := 0; i < 4; i++ {
		if !r.TryPush(Event{Seq: uint32(i)}) {
			t.Fatalf("push %d failed", i)
		}
	}
	if r.TryPush(Event{Seq: 99}) {
		t.Fatal("push on full ring succeeded")
	}
	if r.Dropped() != 1 {
		t.Fatalf("Dropped = %d, want 1", r.Dropped())
	}
	// The buffered events survive the overflow intact.
	evs := r.Drain()
	if len(evs) != 4 {
		t.Fatalf("Drain returned %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		if ev.Seq != uint32(i) {
			t.Fatalf("event %d has Seq %d after overflow", i, ev.Seq)
		}
	}
	// The ring is reusable after a drain.
	if !r.TryPush(Event{Seq: 7}) {
		t.Fatal("push after drain failed")
	}
}

func TestEventRingSizeRounding(t *testing.T) {
	for _, c := range []struct{ in, want int }{{0, 2}, {1, 2}, {3, 4}, {4, 4}, {5, 8}, {4096, 4096}} {
		if got := NewEventRing(c.in).Cap(); got != c.want {
			t.Errorf("NewEventRing(%d).Cap() = %d, want %d", c.in, got, c.want)
		}
	}
}

// TestEventRingConcurrent hammers the ring from concurrent producers and
// one draining consumer; under -race this is the memory-safety proof for
// the slot handoff. Every pushed event must be drained exactly once, and
// pushes+drops must account for every attempt.
func TestEventRingConcurrent(t *testing.T) {
	r := NewEventRing(64)
	const producers, per = 8, 5000
	doneProducing := make(chan struct{})
	var pushed [producers]int64
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if r.TryPush(Event{Proc: int32(p), Seq: uint32(i)}) {
					pushed[p]++
				}
			}
		}(p)
	}
	done := make(chan struct{})
	var drained int64
	var lastSeq [producers]int64
	for p := range lastSeq {
		lastSeq[p] = -1
	}
	go func() {
		defer close(done)
		check := func(evs []Event) bool {
			for _, ev := range evs {
				drained++
				// Per producer the ring preserves push order, so Seq must
				// strictly increase within a producer.
				if int64(ev.Seq) <= lastSeq[ev.Proc] {
					t.Errorf("producer %d: seq %d after %d", ev.Proc, ev.Seq, lastSeq[ev.Proc])
					return false
				}
				lastSeq[ev.Proc] = int64(ev.Seq)
			}
			return true
		}
		for {
			// Observe completion BEFORE the drain: a producer that won its
			// head ticket can be preempted before publishing the slot, so a
			// drain concurrent with production may legitimately come up
			// empty. Once doneProducing is closed every push is complete and
			// a single final drain empties the ring.
			select {
			case <-doneProducing:
				check(r.Drain())
				return
			default:
			}
			if !check(r.Drain()) {
				return
			}
		}
	}()
	wg.Wait()
	close(doneProducing)
	<-done
	var total int64
	for p := range pushed {
		total += pushed[p]
	}
	if drained != total {
		t.Fatalf("drained %d events, pushed %d", drained, total)
	}
	if got := int64(r.Dropped()) + total; got != producers*per {
		t.Fatalf("pushed+dropped = %d, want %d", got, producers*per)
	}
}
