package obs

import (
	"sync/atomic"
	"time"
)

// Span is one proposal's lifecycle trace: opened on the submit path
// (Collector.StartSpan), advanced by the engine adapter at each stage,
// closed by exactly one terminal call. Each stage method records its
// latency into the collector's histograms and emits one sequenced Event
// into the ring.
//
// A nil *Span — what StartSpan on a nil (disabled) Collector returns —
// is fully usable: every method is a zero-allocation no-op. Span methods
// are called from whichever goroutine holds the proposal at that stage
// (the submitter, then engine workers, then the resolver); the engine's
// ownership handoffs order them, so the span needs no locking of its own.
type Span struct {
	c    *Collector
	key  string
	proc int32
	hint int

	// seq numbers the span's events. Atomic because delivery may run on
	// a completion-queue registrar racing no one but sequenced only
	// through the future's resolution handoff.
	seq atomic.Uint32

	submit time.Time // StartSpan
	resume time.Time // last Started/Woken
	decide time.Time // Decided
}

// StartSpan opens a proposal trace keyed by (key, proc), emitting its
// StageSubmit event. On a nil collector it returns the nil span, keeping
// the disabled path allocation-free.
func (c *Collector) StartSpan(key string, proc int32) *Span {
	if c == nil {
		return nil
	}
	c.spansStarted.Add(1)
	s := &Span{c: c, key: key, proc: proc, hint: spanHint(key, proc), submit: time.Now()}
	s.emit(StageSubmit, 0)
	return s
}

// emit appends the span's next sequenced event.
func (s *Span) emit(st Stage, arg int64) {
	s.c.Record(Event{
		Key:   s.key,
		Proc:  s.proc,
		Seq:   s.seq.Add(1) - 1,
		Stage: st,
		Arg:   arg,
	})
}

// Started marks the proposal's first engine step.
func (s *Span) Started() {
	if s == nil {
		return
	}
	now := time.Now()
	s.resume = now
	s.c.lat[LatSubmitToStart].ObserveHint(now.Sub(s.submit), s.hint)
	s.emit(StageStart, 0)
}

// Parked marks one park; cap is the park's timeout cap.
func (s *Span) Parked(cap time.Duration) {
	if s == nil {
		return
	}
	s.c.parks.Add(1)
	s.emit(StagePark, int64(cap))
}

// Woken marks one wake: reason is the engine's wake reason, waited how
// long the proposal was parked, pos the run-queue position it re-entered
// at.
func (s *Span) Woken(reason int, waited time.Duration, pos int) {
	if s == nil {
		return
	}
	s.c.wakes.Add(1)
	s.resume = time.Now()
	s.c.lat[LatPark].ObserveHint(waited, s.hint)
	s.emit(StageWake, WakeArg(reason, pos))
}

// Decided closes the span with a decision.
func (s *Span) Decided() {
	if s == nil {
		return
	}
	now := time.Now()
	s.decide = now
	s.c.spansDecided.Add(1)
	resume := s.resume
	if resume.IsZero() {
		resume = s.submit
	}
	s.c.lat[LatWakeToDecide].ObserveHint(now.Sub(resume), s.hint)
	s.c.lat[LatSubmitToDecide].ObserveHint(now.Sub(s.submit), s.hint)
	s.emit(StageDecide, int64(now.Sub(s.submit)))
}

// Delivered marks the resolved future's handoff to its CompletionQueue.
// It may follow any terminal — delivery reports the outcome, whatever it
// was — and contributes to the decide→deliver histogram only after a
// decision.
func (s *Span) Delivered() {
	if s == nil {
		return
	}
	s.c.deliveries.Add(1)
	if !s.decide.IsZero() {
		s.c.lat[LatDecideToDeliver].ObserveHint(time.Since(s.decide), s.hint)
	}
	s.emit(StageDeliver, 0)
}

// Canceled closes the span: the proposal's context ended first.
func (s *Span) Canceled() {
	if s == nil {
		return
	}
	s.c.spansCanceled.Add(1)
	s.emit(StageCancel, 0)
}

// Aborted closes the span: the engine shut down with the proposal in
// flight.
func (s *Span) Aborted() {
	if s == nil {
		return
	}
	s.c.spansAborted.Add(1)
	s.emit(StageAbort, 0)
}

// Failed closes the span: the proposal failed before or outside the
// engine (a claim error, a codec failure).
func (s *Span) Failed() {
	if s == nil {
		return
	}
	s.c.spansFailed.Add(1)
	s.emit(StageFail, 0)
}
