package setagreement_test

import (
	"context"
	"testing"

	sa "setagreement"
	"setagreement/obs"
)

// soloAllocsWith measures steady-state allocations of one solo proposal
// (blocking or engine-driven) on a fresh repeated object built with the
// given extra options — the observability guard's probe.
func soloAllocsWith(t *testing.T, async bool, opts ...sa.Option) float64 {
	t.Helper()
	ctx := context.Background()
	r, err := sa.NewRepeated[int](4, 1, opts...)
	if err != nil {
		t.Fatalf("NewRepeated: %v", err)
	}
	h, err := r.Proc(0)
	if err != nil {
		t.Fatalf("Proc: %v", err)
	}
	propose := func() {
		var err error
		if async {
			_, err = h.ProposeAsync(ctx, 7).Value()
		} else {
			_, err = h.Propose(ctx, 7)
		}
		if err != nil {
			t.Fatalf("propose: %v", err)
		}
	}
	for i := 0; i < 5; i++ {
		propose() // warm past one-time costs
	}
	return testing.AllocsPerRun(100, propose)
}

// TestObservabilityDisabledOverhead is the observability layer's standing
// guarantee: with no collector configured (the default, and the explicit
// WithObservability(nil)), the instrumentation seams threaded through
// Propose, ProposeAsync and the engine add zero allocations — the
// measured cost is identical to the uninstrumented baseline and stays
// within the pre-observability ceilings of alloc_guard_test.go.
func TestObservabilityDisabledOverhead(t *testing.T) {
	for _, tc := range []struct {
		name    string
		async   bool
		ceiling float64
	}{
		{"Propose", false, soloProposeAllocCeiling},
		{"ProposeAsync", true, soloProposeAsyncAllocCeiling},
	} {
		t.Run(tc.name, func(t *testing.T) {
			base := soloAllocsWith(t, tc.async)
			if base > tc.ceiling {
				t.Errorf("default solo %s allocates %.2f/op, ceiling %.0f",
					tc.name, base, tc.ceiling)
			}
			if explicit := soloAllocsWith(t, tc.async, sa.WithObservability(nil)); explicit != base {
				t.Errorf("WithObservability(nil) solo %s allocates %.2f/op, baseline %.2f — the disabled path must be free",
					tc.name, explicit, base)
			}
		})
	}
}

// benchSoloPropose is the shared body of the enabled-vs-disabled cost
// benchmarks: steady-state solo proposals on one repeated object.
func benchSoloPropose(b *testing.B, async bool, opts ...sa.Option) {
	ctx := context.Background()
	r, err := sa.NewRepeated[int](4, 1, opts...)
	if err != nil {
		b.Fatalf("NewRepeated: %v", err)
	}
	h, err := r.Proc(0)
	if err != nil {
		b.Fatalf("Proc: %v", err)
	}
	for i := 0; i < 5; i++ {
		if _, err := h.Propose(ctx, i); err != nil {
			b.Fatalf("warmup: %v", err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if async {
			if _, err := h.ProposeAsync(ctx, i).Value(); err != nil {
				b.Fatalf("ProposeAsync: %v", err)
			}
		} else {
			if _, err := h.Propose(ctx, i); err != nil {
				b.Fatalf("Propose: %v", err)
			}
		}
	}
}

// BenchmarkObservability compares the proposal hot paths with tracing off
// (the default every existing benchmark measures) and on (a live
// collector recording spans, histogram observations and ring events), on
// both the blocking and the engine-driven path. CI's bench job runs it so
// the enabled-path cost stays a conscious number, not a surprise.
func BenchmarkObservability(b *testing.B) {
	b.Run("disabled/sync", func(b *testing.B) { benchSoloPropose(b, false) })
	b.Run("disabled/async", func(b *testing.B) { benchSoloPropose(b, true) })
	b.Run("enabled/sync", func(b *testing.B) {
		benchSoloPropose(b, false, sa.WithObservability(obs.NewCollector()))
	})
	b.Run("enabled/async", func(b *testing.B) {
		benchSoloPropose(b, true, sa.WithObservability(obs.NewCollector()))
	})
}
