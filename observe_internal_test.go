package setagreement

import (
	"context"
	"errors"
	"testing"
	"time"

	"setagreement/obs"
)

// TestObservabilityEngineClosedTrace: closing the engine over a parked
// proposal terminates its trace in exactly one abort event, and the
// engine-side counters (engine_closes, close_aborted, spans_aborted)
// account for it. Whitebox: reaches through the runtime to Close the
// engine the way TestAsyncEngineShutdownWithParked does.
func TestObservabilityEngineClosedTrace(t *testing.T) {
	col := obs.NewCollector()
	r, err := NewRepeated[int](2, 1,
		WithSnapshot(SnapshotWaitFree),
		WithWaitStrategy(WaitNotify),
		WithBackoff(time.Hour, time.Hour, 1),
		WithObservability(col))
	if err != nil {
		t.Fatalf("NewRepeated: %v", err)
	}
	h, err := r.Proc(0)
	if err != nil {
		t.Fatalf("Proc: %v", err)
	}
	fut := h.ProposeAsync(context.Background(), 41)
	awaitEngineParked(t, r, 1)

	r.rt.eng.get().Close()
	select {
	case <-fut.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("engine Close did not resolve the parked proposal")
	}
	if _, err := fut.Value(); !errors.Is(err, ErrEngineClosed) {
		t.Fatalf("future resolved with %v, want ErrEngineClosed", err)
	}

	snap := col.Snapshot(true)
	for counter, want := range map[string]uint64{
		"engine_closes": 1,
		"close_aborted": 1,
		"spans_aborted": 1,
		"spans_decided": 0,
	} {
		if got := snap.Counters[counter]; got != want {
			t.Errorf("counter %s = %d, want %d", counter, got, want)
		}
	}
	key := obs.TraceKey{Key: "", Proc: 0}
	evs := obs.GroupSpans(snap.Events)[key]
	if len(evs) == 0 {
		t.Fatal("no trace for the aborted proposal")
	}
	aborts := 0
	for i, ev := range evs {
		if ev.Seq != uint32(i) {
			t.Errorf("event %d has seq %d — trace not totally ordered", i, ev.Seq)
		}
		switch {
		case ev.Stage == obs.StageAbort:
			aborts++
		case ev.Stage.Terminal():
			t.Errorf("aborted trace carries terminal %v", ev.Stage)
		}
	}
	if aborts != 1 {
		t.Errorf("trace has %d abort events, want exactly 1: %v", aborts, evs)
	}
	if last := evs[len(evs)-1]; last.Stage != obs.StageAbort {
		t.Errorf("trace ends in %v, want abort", last.Stage)
	}
}
