package setagreement_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	sa "setagreement"
	"setagreement/obs"
)

// obsArena builds a two-contender consensus arena recording into col.
func obsArena(t *testing.T, col *obs.Collector) *sa.Arena[int] {
	t.Helper()
	ar, err := sa.NewArena[int](2, 1, sa.WithObjectOptions(
		sa.WithWaitStrategy(sa.WaitNotify),
		sa.WithBackoff(50*time.Microsecond, 2*time.Millisecond, 16),
		sa.WithObservability(col)))
	if err != nil {
		t.Fatalf("NewArena: %v", err)
	}
	return ar
}

// checkTrace asserts the per-proposal trace invariants the ISSUE demands:
// the trace is totally ordered (Seq dense from 0), opens with its submit
// event, and terminates in exactly one terminal stage — with at most one
// delivery event, and nothing else, after it. It returns the terminal.
func checkTrace(t *testing.T, key obs.TraceKey, evs []obs.Event) obs.Stage {
	t.Helper()
	if len(evs) == 0 {
		t.Fatalf("trace %s/%d is empty", key.Key, key.Proc)
	}
	if evs[0].Stage != obs.StageSubmit {
		t.Errorf("trace %s/%d opens with %v, want submit", key.Key, key.Proc, evs[0].Stage)
	}
	terminal := obs.Stage(0)
	terminals := 0
	for i, ev := range evs {
		if ev.Seq != uint32(i) {
			t.Errorf("trace %s/%d event %d has seq %d — not totally ordered",
				key.Key, key.Proc, i, ev.Seq)
		}
		if ev.WallNS <= 0 {
			t.Errorf("trace %s/%d event %d has no timestamp", key.Key, key.Proc, i)
		}
		if ev.Stage.Terminal() {
			terminal = ev.Stage
			terminals++
		} else if terminals > 0 && ev.Stage != obs.StageDeliver {
			t.Errorf("trace %s/%d has %v after its terminal", key.Key, key.Proc, ev.Stage)
		}
	}
	if terminals != 1 {
		t.Errorf("trace %s/%d has %d terminal events, want exactly 1: %v",
			key.Key, key.Proc, terminals, evs)
	}
	return terminal
}

// TestObservabilityTraceExactlyOnce: every proposal of a batch fan-out
// leaves exactly one complete trace — submit first, Seq dense, exactly one
// terminal (here: decided), delivery after it — and the lifecycle counters
// agree with the trace count.
func TestObservabilityTraceExactlyOnce(t *testing.T) {
	const keys = 64
	col := obs.NewCollector(obs.WithRingSize(1 << 13))
	ar := obsArena(t, col)
	ctx := context.Background()

	ops := make([]sa.BatchOp[int], 0, 2*keys)
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("exactly-%04d", i)
		ops = append(ops,
			sa.BatchOp[int]{Key: k, Proc: 0, Value: 2 * i},
			sa.BatchOp[int]{Key: k, Proc: 1, Value: 2*i + 1})
	}
	batch, err := ar.SubmitBatch(ctx, ops)
	if err != nil {
		t.Fatalf("SubmitBatch: %v", err)
	}
	q := sa.NewCompletionQueue[int]()
	defer q.Close()
	if err := batch.Register(q); err != nil {
		t.Fatalf("Register: %v", err)
	}
	for seen := 0; seen < batch.Len(); seen++ {
		c, err := q.Next(ctx)
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if _, err := c.Value(); err != nil {
			t.Fatalf("proposal %d: %v", c.Tag, err)
		}
	}

	snap := col.Snapshot(true)
	if snap.DroppedEvents != 0 {
		t.Fatalf("ring dropped %d events despite headroom", snap.DroppedEvents)
	}
	traces := obs.GroupSpans(snap.Events)
	if len(traces) != 2*keys {
		t.Fatalf("got %d traces, want %d", len(traces), 2*keys)
	}
	for key, evs := range traces {
		if terminal := checkTrace(t, key, evs); terminal != obs.StageDecide {
			t.Errorf("trace %s/%d terminated in %v, want decide", key.Key, key.Proc, terminal)
		}
		if last := evs[len(evs)-1]; last.Stage != obs.StageDeliver {
			t.Errorf("trace %s/%d ends in %v, want deliver (registered with a queue)",
				key.Key, key.Proc, last.Stage)
		}
	}
	for counter, want := range map[string]uint64{
		"spans_started":  2 * keys,
		"spans_decided":  2 * keys,
		"deliveries":     2 * keys,
		"spans_canceled": 0,
		"spans_aborted":  0,
		"spans_failed":   0,
	} {
		if got := snap.Counters[counter]; got != want {
			t.Errorf("counter %s = %d, want %d", counter, got, want)
		}
	}
}

// TestObservabilityTraceCanceled covers both cancellation shapes: a
// proposal submitted under an already-dead context traces submit→cancel
// without ever starting, and a proposal cancelled while parked traces
// through its park to a single cancel terminal.
func TestObservabilityTraceCanceled(t *testing.T) {
	t.Run("DeadOnSubmit", func(t *testing.T) {
		col := obs.NewCollector()
		ar := obsArena(t, col)
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		h, err := ar.Object("dead").Proc(0)
		if err != nil {
			t.Fatalf("Proc: %v", err)
		}
		if _, err := h.ProposeAsync(ctx, 1).Value(); !errors.Is(err, context.Canceled) {
			t.Fatalf("future resolved with %v, want context.Canceled", err)
		}
		snap := col.Snapshot(true)
		traces := obs.GroupSpans(snap.Events)
		evs := traces[obs.TraceKey{Key: "dead", Proc: 0}]
		if terminal := checkTrace(t, obs.TraceKey{Key: "dead", Proc: 0}, evs); terminal != obs.StageCancel {
			t.Errorf("dead-context trace terminated in %v, want cancel", terminal)
		}
		if got := snap.Counters["spans_canceled"]; got != 1 {
			t.Errorf("spans_canceled = %d, want 1", got)
		}
	})
	t.Run("WhileParked", func(t *testing.T) {
		// Conservative solo detection plus hour-long caps: the proposal
		// parks at its first yield and stays parked until cancelled —
		// newParkedAsync's construction, instrumented.
		col := obs.NewCollector()
		r, err := sa.NewRepeated[int](2, 1,
			sa.WithSnapshot(sa.SnapshotWaitFree),
			sa.WithWaitStrategy(sa.WaitNotify),
			sa.WithBackoff(time.Hour, time.Hour, 1),
			sa.WithObservability(col))
		if err != nil {
			t.Fatalf("NewRepeated: %v", err)
		}
		h, err := r.Proc(0)
		if err != nil {
			t.Fatalf("Proc: %v", err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		fut := h.ProposeAsync(ctx, 41)
		deadline := time.Now().Add(10 * time.Second)
		for col.Snapshot(false).Counters["parks"] == 0 {
			if time.Now().After(deadline) {
				t.Fatal("proposal never parked")
			}
			time.Sleep(time.Millisecond)
		}
		cancel()
		if err := fut.Err(); !errors.Is(err, context.Canceled) {
			t.Fatalf("future resolved with %v, want context.Canceled", err)
		}
		snap := col.Snapshot(true)
		key := obs.TraceKey{Key: "", Proc: 0} // standalone object: no arena key
		evs := obs.GroupSpans(snap.Events)[key]
		if terminal := checkTrace(t, key, evs); terminal != obs.StageCancel {
			t.Errorf("parked-cancel trace terminated in %v, want cancel", terminal)
		}
		parks := 0
		for _, ev := range evs {
			if ev.Stage == obs.StagePark {
				parks++
			}
		}
		if parks == 0 {
			t.Errorf("parked-cancel trace has no park event: %v", evs)
		}
	})
}

// TestObservabilityRingOverflow floods a deliberately tiny ring from
// concurrent proposers: overflow must be accounted in the drop counter
// while every event that does land stays well-formed — valid stage, its
// proposal's key, a timestamp — and every surviving trace stays in Seq
// order. Run under -race in CI.
func TestObservabilityRingOverflow(t *testing.T) {
	col := obs.NewCollector(obs.WithRingSize(16))
	ar := obsArena(t, col)
	ctx := context.Background()

	const workers, keysPer = 4, 32
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < keysPer; i++ {
				k := fmt.Sprintf("flood-%d-%04d", w, i)
				h0, err := ar.Object(k).Proc(0)
				if err != nil {
					t.Errorf("Proc: %v", err)
					return
				}
				h1, err := ar.Object(k).Proc(1)
				if err != nil {
					t.Errorf("Proc: %v", err)
					return
				}
				f0 := h0.ProposeAsync(ctx, 2*i)
				f1 := h1.ProposeAsync(ctx, 2*i+1)
				if _, err := f0.Value(); err != nil {
					t.Errorf("%s/0: %v", k, err)
				}
				if _, err := f1.Value(); err != nil {
					t.Errorf("%s/1: %v", k, err)
				}
			}
		}(w)
	}
	wg.Wait()

	snap := col.Snapshot(true)
	if snap.DroppedEvents == 0 {
		t.Fatalf("no drops recorded: %d proposals' events through a 16-slot ring", workers*keysPer*2)
	}
	for _, ev := range snap.Events {
		if ev.Stage > obs.StageWait {
			t.Errorf("corrupt event stage %d: %+v", ev.Stage, ev)
		}
		if ev.Key == "" || ev.WallNS <= 0 {
			t.Errorf("corrupt event fields: %+v", ev)
		}
	}
	for key, evs := range obs.GroupSpans(snap.Events) {
		prev := int64(-1)
		for _, ev := range evs {
			if int64(ev.Seq) <= prev {
				t.Errorf("trace %s/%d out of order under overflow: %v", key.Key, key.Proc, evs)
				break
			}
			prev = int64(ev.Seq)
		}
	}
	// The histograms are ring-independent: every proposal still observed.
	if hs := snap.Latencies["submit_to_decide"]; hs.Count != uint64(workers*keysPer*2) {
		t.Errorf("submit_to_decide count = %d, want %d (histograms must not drop)",
			hs.Count, workers*keysPer*2)
	}
}
